// Package mmd implements the transformation-based reversible synthesis
// algorithm of Miller, Maslov and Dueck ("A transformation based algorithm
// for reversible logic synthesis", DAC 2003) restricted to Toffoli gates —
// the method the paper compares against in Table I (reference [7]).
//
// The algorithm scans the truth table in lexicographic input order and, for
// each row x whose current output f(x) differs from x, appends Toffoli
// gates on the output side that map f(x) to x without disturbing any
// earlier (already fixed) row. Because rows 0..x−1 already map to
// themselves, f(x) ≥ x for the first unfixed row, and gates whose control
// set is contained in the current output value only touch rows whose
// output is a superset of the controls — all of which are ≥ x. The
// bidirectional variant may instead (or additionally) apply gates on the
// input side when that is cheaper, exactly as in the original paper.
package mmd

import (
	"math/bits"

	ibits "repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/perm"
)

// Direction selects the algorithm variant.
type Direction int

const (
	// Unidirectional applies gates on the output side only.
	Unidirectional Direction = iota
	// Bidirectional chooses, row by row, the cheaper of fixing the row
	// from the output side or from the input side.
	Bidirectional
)

// Synthesize returns a Toffoli cascade realizing the reversible function p.
// The result is always found: the algorithm is constructive and needs at
// most (n−1)·2^n + 1 gates. The caller may Simplify() the result; the
// numbers reported in the paper's Table I for [7] include no template
// post-processing, so neither does this function.
func Synthesize(p perm.Perm, dir Direction) *circuit.Circuit {
	n := p.Vars()
	if n < 0 {
		panic("mmd: invalid permutation size")
	}
	f := append(perm.Perm(nil), p...) // current function, mutated as output gates apply
	g := perm.Perm(nil)               // inverse view for input-side gates
	if dir == Bidirectional {
		g = f.Inverse()
	}

	var outGates []circuit.Gate // applied after the original function, collected in application order
	var inGates []circuit.Gate  // applied before the original function, collected in application order

	// applyOut composes gate t at the output side: f ← t ∘ f.
	applyOut := func(gt circuit.Gate) {
		for x := range f {
			f[x] = gt.Apply(f[x])
		}
		if g != nil {
			g = f.Inverse()
		}
		outGates = append(outGates, gt)
	}
	// applyIn composes gate t at the input side: f ← f ∘ t. Gates are
	// self-inverse, so f∘t maps t(x) to the old f(x); equivalently the
	// inverse function g gets the gate on its output side.
	applyIn := func(gt circuit.Gate) {
		for x := range g {
			g[x] = gt.Apply(g[x])
		}
		f = g.Inverse()
		inGates = append(inGates, gt)
	}

	// Step 0 of the MMD paper: map f(0) to 0 with NOT gates (output side).
	if dir == Bidirectional && g != nil && cost(uint32(0), g[0]) < cost(uint32(0), f[0]) {
		for _, gt := range notGates(g[0]) {
			applyIn(gt)
		}
	}
	for _, gt := range notGates(f[0]) {
		applyOut(gt)
	}

	for x := 1; x < len(f); x++ {
		if f[x] == uint32(x) {
			continue
		}
		if dir == Bidirectional && cost(uint32(x), g[x]) < cost(uint32(x), f[x]) {
			// Fixing the inverse function's row x with output-side gates
			// on g is the same as input-side gates on f.
			for _, gt := range rowGates(uint32(x), g[x]) {
				applyIn(gt)
			}
			continue
		}
		for _, gt := range rowGates(uint32(x), f[x]) {
			applyOut(gt)
		}
	}

	// The accumulated transformations satisfy O ∘ p ∘ I = identity, where
	// O = outGk∘…∘outG1 (each output gate composed on the left) and
	// I = in1∘…∘inm (each input gate composed on the right, so the most
	// recently added input gate acts first). Every Toffoli gate is
	// self-inverse, hence p = O⁻¹ ∘ I⁻¹, which as a cascade read from the
	// circuit inputs is: in1, in2, …, inm, outGk, …, outG1.
	c := circuit.New(n)
	c.Gates = append(c.Gates, inGates...)
	for i := len(outGates) - 1; i >= 0; i-- {
		c.Append(outGates[i])
	}
	return c
}

// rowGates returns the output-side gates mapping value y to value x (x < y
// is guaranteed by the scan invariant... x ≤ y bitwise-wise is not; both
// phases are needed) without affecting any value < x. First, bits in x
// missing from y are set using controls drawn from y's current ones;
// then bits of y not in x are cleared using controls drawn from x's ones
// plus the remaining extra ones (minus the target).
func rowGates(x, y uint32) []circuit.Gate {
	var gates []circuit.Gate
	// Phase 1: set the bits present in x but missing from y. Controls:
	// all ones of the current y (the target is not among them).
	for {
		add := x &^ y
		if add == 0 {
			break
		}
		t := bits.TrailingZeros32(add)
		gates = append(gates, circuit.Gate{Target: t, Controls: ibits.Mask(y)})
		y |= 1 << uint(t)
	}
	// Phase 2: clear bits p ∈ y&^x. Controls: all ones of y except the
	// target itself; since y ⊇ x now, controls ⊇ x's ones minus nothing.
	for {
		rm := y &^ x
		if rm == 0 {
			break
		}
		t := bits.TrailingZeros32(rm)
		b := uint32(1) << uint(t)
		gates = append(gates, circuit.Gate{Target: t, Controls: ibits.Mask(y &^ b)})
		y &^= b
	}
	return gates
}

// notGates maps value y to 0 with unconditioned NOT gates.
func notGates(y uint32) []circuit.Gate {
	var gates []circuit.Gate
	for y != 0 {
		t := bits.TrailingZeros32(y)
		gates = append(gates, circuit.Gate{Target: t})
		y &^= 1 << uint(t)
	}
	return gates
}

// cost estimates how many gates rowGates would emit to map y to x: the
// Hamming distance (each differing bit costs one gate).
func cost(x, y uint32) int { return bits.OnesCount32(x ^ y) }
