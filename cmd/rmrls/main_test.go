package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/obs"
)

func TestLoadSpecPermLiteral(t *testing.T) {
	spec, p, _, err := loadSpec("", false, false, 0, []string{"{1, 0, 7, 2, 3, 4, 5, 6}"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 3 || p == nil {
		t.Errorf("spec.N=%d p=%v", spec.N, p)
	}
}

func TestLoadSpecBench(t *testing.T) {
	spec, p, _, err := loadSpec("graycode6", false, false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 6 || p == nil {
		t.Errorf("bench load broken: n=%d", spec.N)
	}
	if _, _, _, err := loadSpec("nonesuch", false, false, 0, nil); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestLoadSpecPPRMFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.pprm")
	if err := os.WriteFile(path, []byte("a' = a ^ 1\nb' = b ^ c ^ ac\nc' = b ^ ab ^ ac\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, p, _, err := loadSpec("", true, false, 3, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 3 || p == nil {
		t.Error("pprm file load broken")
	}
	// Non-reversible PPRM must be rejected.
	bad := filepath.Join(dir, "bad.pprm")
	os.WriteFile(bad, []byte("a' = b\nb' = b\n"), 0o644)
	if _, _, _, err := loadSpec("", true, false, 2, []string{bad}); err == nil {
		t.Error("non-reversible PPRM should fail")
	}
}

func TestLoadSpecPermFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.perm")
	os.WriteFile(path, []byte("{1, 0, 3, 2}"), 0o644)
	spec, _, _, err := loadSpec("", false, false, 0, []string{path})
	if err != nil || spec.N != 2 {
		t.Errorf("perm file load broken: %v", err)
	}
}

func TestLoadSpecErrors(t *testing.T) {
	if _, _, _, err := loadSpec("", false, false, 0, nil); err == nil {
		t.Error("missing argument should fail")
	}
	if _, _, _, err := loadSpec("", true, false, 0, []string{"x"}); err == nil {
		t.Error("pprm without -n should fail")
	}
	if _, _, _, err := loadSpec("", false, false, 0, []string{"{0, 0}"}); err == nil {
		t.Error("invalid permutation should fail")
	}
}

func TestRunSuccessExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"{1, 0, 3, 2}"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "verified") {
		t.Errorf("success output missing verification line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "stop=solved") {
		t.Errorf("stats line missing stop reason:\n%s", out.String())
	}
}

// TestRunMetricsJSON: -metrics-json must produce a parseable JSON-lines
// file whose final snapshot is done, solved, and agrees with the printed
// gate count.
func TestRunMetricsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	var out, errb bytes.Buffer
	code := run(context.Background(),
		[]string{"-metrics-json", path, "-progress", "-bench", "rd53"},
		&out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var last obs.ProgressSnapshot
	lines := 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var snap obs.ProgressSnapshot
		if err := json.Unmarshal([]byte(line), &snap); err != nil {
			t.Fatalf("unparseable metrics line %q: %v", line, err)
		}
		lines++
		if snap.Label == "rmrls" {
			last = snap
		}
	}
	if lines == 0 {
		t.Fatal("metrics file is empty")
	}
	if !last.Done || last.Stop != "solved" {
		t.Errorf("final snapshot done=%v stop=%q, want a solved run", last.Done, last.Stop)
	}
	// The snapshot's best circuit must agree with the printed stats line.
	var printed int
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "# gates=") {
			fmt.Sscanf(line, "# gates=%d", &printed)
		}
	}
	if printed == 0 || last.BestGates != printed {
		t.Errorf("final snapshot best_gates=%d, printed gates=%d", last.BestGates, printed)
	}
	if last.Steps != last.Nodes && last.Steps <= 0 {
		t.Errorf("final snapshot has no work recorded: %+v", last)
	}
	// The TTY progress sink writes to stderr and must end with a newline so
	// subsequent diagnostics start on a fresh line.
	if errb.Len() > 0 && !strings.HasSuffix(errb.String(), "\n") {
		t.Errorf("progress output does not end in newline: %q", errb.String())
	}
}

// TestRunNoCircuitExitsNonZero: the swap function needs three gates, so
// -maxgates 1 makes the search provably fail; the exit code must be
// non-zero and stderr must name the stop reason.
func TestRunNoCircuitExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-maxgates", "1", "{0, 2, 1, 3}"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "no circuit found") || !strings.Contains(errb.String(), "stop=") {
		t.Errorf("failure message missing diagnostics: %s", errb.String())
	}
}

func TestRunCanceledExitsNonZero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	// A 6-wire benchmark: too hard to solve inside the cancellation
	// latency window, so the canceled run has no circuit to print.
	code := run(ctx, []string{"-bench", "hwb6", "-time", "60s"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "stop=canceled") {
		t.Errorf("stderr does not attribute the failure to cancellation: %s", errb.String())
	}
}

func TestRunBadUsageExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"{0, 0}"}, &out, &errb); code != 1 {
		t.Errorf("invalid spec: exit code = %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-library", "bogus", "{1, 0}"}, &out, &errb); code != 1 {
		t.Errorf("bad library: exit code = %d, want 1", code)
	}
}

// swap4Spec needs a few dozen search steps — enough to interrupt with a
// small -steps budget and meaningfully resume.
const swap4Spec = "{0, 2, 1, 3, 8, 10, 9, 11, 4, 6, 5, 7, 12, 14, 13, 15}"

func TestRunCheckpointResumeFlow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	var out, errb bytes.Buffer

	// Segment 1: interrupted by the step budget, leaves a checkpoint.
	code := run(context.Background(), []string{"-checkpoint", path, "-steps", "3", swap4Spec}, &out, &errb)
	if code != 2 {
		t.Fatalf("segment 1 exit code = %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "checkpoint saved") {
		t.Errorf("stderr does not announce the saved checkpoint: %s", errb.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint on disk: %v", err)
	}

	// Segment 2: resumes and finishes; success removes the checkpoint.
	out.Reset()
	errb.Reset()
	code = run(context.Background(), []string{"-checkpoint", path, "-resume", swap4Spec}, &out, &errb)
	if code != 0 {
		t.Fatalf("segment 2 exit code = %d; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "resumed from checkpoint") {
		t.Errorf("stderr does not announce the resume: %s", errb.String())
	}
	if !strings.Contains(out.String(), "verified") {
		t.Errorf("resumed run not verified:\n%s", out.String())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after the run completed: %v", err)
	}
}

func TestRunResumeDamagedCheckpointFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-checkpoint", path, "-resume", "{1, 0, 3, 2}"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "cannot resume") || !strings.Contains(errb.String(), "starting fresh") {
		t.Errorf("damaged checkpoint not diagnosed: %s", errb.String())
	}
}

func TestRunResumeMissingCheckpointIsSilent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "none.ckpt")
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-checkpoint", path, "-resume", "{1, 0, 3, 2}"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d; stderr: %s", code, errb.String())
	}
	if strings.Contains(errb.String(), "cannot resume") {
		t.Errorf("missing checkpoint should start fresh silently: %s", errb.String())
	}
}

func TestRunCheckpointFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-resume", "{1, 0}"}, &out, &errb); code != 1 {
		t.Errorf("-resume without -checkpoint: exit code = %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-portfolio", "-checkpoint", "x.ckpt", "{1, 0}"}, &out, &errb); code != 1 {
		t.Errorf("-portfolio with -checkpoint: exit code = %d, want 1", code)
	}
}

// TestHandleSignals drives the two-stage interrupt protocol: the first
// signal cancels the context, the second exits with 130.
func TestHandleSignals(t *testing.T) {
	sig := make(chan os.Signal, 2)
	ctx, cancel := context.WithCancel(context.Background())
	exited := make(chan int, 1)
	var errb bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		handleSignals(sig, cancel, &errb, func(code int) { exited <- code })
	}()

	sig <- os.Interrupt
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first interrupt did not cancel the context")
	}
	select {
	case code := <-exited:
		t.Fatalf("first interrupt exited with %d", code)
	default:
	}

	sig <- os.Interrupt
	select {
	case code := <-exited:
		if code != 130 {
			t.Fatalf("second interrupt exited with %d, want 130", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second interrupt did not force an exit")
	}
	<-done
	if !strings.Contains(errb.String(), "interrupt") {
		t.Errorf("no interrupt notice on stderr: %s", errb.String())
	}
}

func TestLoadSpecPLAFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "maj.pla")
	os.WriteFile(path, []byte(".i 3\n.o 1\n111 1\n110 1\n101 1\n011 1\n000 0\n001 0\n010 0\n100 0\n.e\n"), 0o644)
	spec, p, pla, err := loadSpec("", false, true, 0, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 3 || p == nil {
		t.Errorf("PLA load: n=%d", spec.N)
	}
	if pla == nil || pla.pt == nil || pla.emb == nil {
		t.Error("PLA load lost the partial table or embedding")
	}
}

// TestRunInjectedMiscompileExitsThree: with the engine-side fault hook
// corrupting every found circuit, the CLI must refuse to print a circuit
// and exit 3 with the counterexample and the rejected cascade on stderr.
func TestRunInjectedMiscompileExitsThree(t *testing.T) {
	core.CorruptResultHook = func(c *circuit.Circuit) { c.Append(circuit.Gate{Target: 0}) }
	defer func() { core.CorruptResultHook = nil }()

	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"{1, 0, 3, 2}"}, &out, &errb)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "VERIFICATION FAILED") {
		t.Errorf("stderr does not flag the verification failure: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "rejected cascade:") {
		t.Errorf("stderr does not carry the rejected cascade: %s", errb.String())
	}
	if strings.Contains(out.String(), "TOF") {
		t.Errorf("a wrong circuit leaked to stdout:\n%s", out.String())
	}
}

// TestRunNoVerifyOptsOut: -noverify disables the gate; the corrupted
// circuit goes through (exit 0) but without any "# verified" claim.
func TestRunNoVerifyOptsOut(t *testing.T) {
	core.CorruptResultHook = func(c *circuit.Circuit) { c.Append(circuit.Gate{Target: 0}) }
	defer func() { core.CorruptResultHook = nil }()

	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-noverify", "{1, 0, 3, 2}"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "# verified") {
		t.Errorf("-noverify run still claims verification:\n%s", out.String())
	}
}

// TestRunStagePipelineVerified: every post-search transform is re-checked
// by the oracle; the run must still verify end to end.
func TestRunStagePipelineVerified(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(),
		[]string{"-simplify", "-peephole", "-lower", "{1, 0, 7, 2, 3, 4, 5, 6}"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "# verified: circuit realizes the specification") {
		t.Errorf("pipeline output missing verification line:\n%s", out.String())
	}
}

// TestRunPLAVerifiedAgainstCareBits: an embedded PLA run must check the
// final cascade against the original partial table, not only the embedded
// permutation, and say so.
func TestRunPLAVerifiedAgainstCareBits(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "maj.pla")
	os.WriteFile(path, []byte(".i 3\n.o 1\n111 1\n110 1\n101 1\n011 1\n000 0\n001 0\n010 0\n100 0\n.e\n"), 0o644)
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-pla", "-time", "30s", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "matches the PLA on every care bit") {
		t.Errorf("PLA run missing the don't-care-aware verification line:\n%s", out.String())
	}
}
