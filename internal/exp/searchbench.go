package exp

import (
	"fmt"
	"io"

	"repro/internal/bench"
)

// WriteSearchBench renders the benchmark-trajectory harness report (see
// internal/bench.RunSearchBench and docs/PERFORMANCE.md) as the two
// human-readable tables the `experiments searchbench` subcommand prints;
// cmd/benchjson emits the same report as JSON for the checked-in
// BENCH_search.json trajectory file.
func WriteSearchBench(w io.Writer, r *bench.SearchReport) {
	header := []string{"workload", "fns", "expansions off", "expansions on",
		"reduction", "hit rate", "allocs/exp off", "allocs/exp on", "nodes/s off", "nodes/s on"}
	var rows [][]string
	for _, c := range r.Workloads {
		rows = append(rows, []string{
			c.Workload, itoa(c.Off.Functions),
			fmt.Sprintf("%d", c.Off.Expansions), fmt.Sprintf("%d", c.On.Expansions),
			fmt.Sprintf("%.1f%%", 100*c.ExpansionReduction),
			fmt.Sprintf("%.2f", c.On.DedupHitRate),
			fmt.Sprintf("%.1f", c.Off.AllocsPerExpansion),
			fmt.Sprintf("%.1f", c.On.AllocsPerExpansion),
			fmt.Sprintf("%.0f", c.Off.NodesPerSec),
			fmt.Sprintf("%.0f", c.On.NodesPerSec),
		})
	}
	writeTable(w, header, rows)

	if len(r.Examples) == 0 {
		return
	}
	fmt.Fprintln(w)
	header = []string{"example", "gates off", "gates on", "paper", "steps off", "steps on", "hit rate"}
	rows = rows[:0]
	for _, e := range r.Examples {
		rows = append(rows, []string{
			e.Name, itoa(e.GatesOff), itoa(e.GatesOn), itoa(e.PaperGates),
			itoa(e.StepsOff), itoa(e.StepsOn), fmt.Sprintf("%.2f", e.HitRate),
		})
	}
	writeTable(w, header, rows)
}
