package bench

// Extended benchmark families beyond Table IV. The paper notes that its
// tool could not synthesize some members of the ham#, hwb#, and #sym
// families "due to memory constraints"; these registrations make those
// families available so the reproduction can report where this
// implementation stands on them. Published reference results are not
// quoted (the paper shows none), so rows carry only our measurements.

import (
	"fmt"

	"repro/internal/tt"
)

func init() {
	registerExtended()
}

func registerExtended() {
	// Larger hidden-weighted-bit functions (reversible as defined:
	// rotate the input left by its weight).
	for _, n := range []int{5, 6, 8} {
		b := fromPerm(fmt.Sprintf("hwb%d", n),
			"hidden weighted bit: input rotated left by its weight", hwb(n), n)
		register(b)
	}

	// Larger weight-counting functions (rd53's siblings from MCNC):
	// rd73 counts ones of 7 inputs into 3 bits; rd84 of 8 into 4.
	for _, rd := range []struct{ in, out int }{{7, 3}, {8, 4}} {
		b := fromTable(fmt.Sprintf("rd%d%d", rd.in, rd.out),
			fmt.Sprintf("%d-bit binary count of ones of %d inputs", rd.out, rd.in),
			tt.FromFunc(rd.in, rd.out, func(x uint32) uint32 {
				return uint32(tt.OnesCount(x)) & (1<<uint(rd.out) - 1)
			}))
		register(b)
	}

	// Symmetric threshold functions: Nsym outputs 1 iff the input weight
	// lies in the function's band (6sym: 2–4; 9sym: 3–6, the usual MCNC
	// definitions).
	sym := func(n, lo, hi int) *Benchmark {
		return fromTable(fmt.Sprintf("%dsym", n),
			fmt.Sprintf("1 iff the weight of %d inputs is in [%d,%d]", n, lo, hi),
			tt.FromFunc(n, 1, func(x uint32) uint32 {
				w := tt.OnesCount(x)
				if w >= lo && w <= hi {
					return 1
				}
				return 0
			}))
	}
	register(sym(6, 2, 4))
	register(sym(9, 3, 6))

	// nth_prime-style small arithmetic: the 4-bit modular multiplier
	// y = 3x mod 16 is reversible outright (3 is odd).
	mul3 := make([]int, 16)
	for x := 0; x < 16; x++ {
		mul3[x] = (3 * x) % 16
	}
	register(fromPerm("mul3mod16", "y = 3x mod 16 (odd-constant modular multiplier)", mul3, 4))

	// A long cycle: the (2^6)-cycle x ↦ x+1 mod 64, the 6-variable
	// relative of Examples 6 and 7.
	inc := make([]int, 64)
	for x := 0; x < 64; x++ {
		inc[x] = (x + 1) % 64
	}
	register(fromPerm("shiftleft6", "wraparound shift left by one (6 variables)", inc, 6))
}

// ExtendedFamilies returns the extra benchmarks in a stable order.
func ExtendedFamilies() []*Benchmark {
	names := []string{"hwb5", "hwb6", "hwb8", "rd73", "rd84", "6sym", "9sym",
		"mul3mod16", "shiftleft6"}
	out := make([]*Benchmark, len(names))
	for i, n := range names {
		b, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out[i] = b
	}
	return out
}
