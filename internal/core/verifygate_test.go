package core

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
	"repro/internal/verify"
)

// corruptAppendNot is the canonical injected miscompile: appending an
// unconditional NOT always changes the realized function.
func corruptAppendNot(c *circuit.Circuit) { c.Append(circuit.Gate{Target: 0}) }

func gateTestSpec(t *testing.T, n int, seed uint64) (*pprm.Spec, perm.Perm) {
	t.Helper()
	src := rng.New(seed)
	p := perm.Random(n, src)
	spec, err := pprm.FromPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	return spec, p
}

func TestVerifyGatePassesCorrectCircuits(t *testing.T) {
	spec, p := gateTestSpec(t, 4, 1)
	res := Synthesize(spec, DefaultOptions())
	if !res.Found {
		t.Fatalf("no circuit found (stop=%s)", res.StopReason)
	}
	if !res.Verified {
		t.Error("found circuit not marked Verified by the always-on gate")
	}
	if err := verify.Circuit(verify.StageSearch, res.Circuit, p); err != nil {
		t.Errorf("returned circuit actually wrong: %v", err)
	}
}

func TestVerifyGateCatchesInjectedMiscompile(t *testing.T) {
	CorruptResultHook = corruptAppendNot
	defer func() { CorruptResultHook = nil }()

	spec, _ := gateTestSpec(t, 4, 2)
	res := Synthesize(spec, DefaultOptions())
	if res.Found || res.Circuit != nil {
		t.Fatalf("corrupted circuit escaped the gate: found=%v circuit=%v", res.Found, res.Circuit)
	}
	if res.StopReason != StopVerifyFailed {
		t.Errorf("stop = %s, want %s", res.StopReason, StopVerifyFailed)
	}
	if res.Verified {
		t.Error("rejected result marked Verified")
	}
	var verr *verify.Error
	if !errors.As(res.Err, &verr) {
		t.Fatalf("Err is %T (%v), want *verify.Error", res.Err, res.Err)
	}
	if verr.Stage != verify.StageSearch {
		t.Errorf("stage = %q, want %q", verr.Stage, verify.StageSearch)
	}
	if verr.Circuit == "" {
		t.Error("typed error does not carry the rejected cascade")
	}
}

func TestVerifyGateSkipVerifyOptsOut(t *testing.T) {
	CorruptResultHook = corruptAppendNot
	defer func() { CorruptResultHook = nil }()

	spec, p := gateTestSpec(t, 4, 3)
	opts := DefaultOptions()
	opts.SkipVerify = true
	res := Synthesize(spec, opts)
	if !res.Found {
		t.Fatalf("no circuit found (stop=%s)", res.StopReason)
	}
	if res.Verified {
		t.Error("SkipVerify run marked Verified")
	}
	// The corruption goes through unchecked — the documented cost of the
	// opt-out, and the proof the gate (not luck) catches it otherwise.
	if err := verify.Circuit(verify.StageSearch, res.Circuit, p); err == nil {
		t.Error("corrupt hook had no effect; test is vacuous")
	}
}

func TestVerifyGateWideFunctionsSkipped(t *testing.T) {
	// A function wider than verify.MaxVars cannot be tabulated; the gate
	// must skip (Verified false) rather than reject or hang. Identity on
	// 21 wires synthesizes instantly to the empty circuit.
	spec := pprm.NewSpec(verify.MaxVars + 1)
	for i := 0; i < spec.N; i++ {
		spec.Out[i].Toggle(1 << uint(i))
	}
	res := Synthesize(spec, DefaultOptions())
	if !res.Found {
		t.Fatalf("identity not synthesized (stop=%s)", res.StopReason)
	}
	if res.Verified {
		t.Error("infeasible width marked Verified")
	}
}

func TestVerifyGateOnResumePath(t *testing.T) {
	spec, _ := gateTestSpec(t, 5, 4)
	path := filepath.Join(t.TempDir(), "gate.ckpt")

	opts := DefaultOptions()
	opts.TotalSteps = 3 // too few to solve: forces a resumable stop
	opts.Checkpoint = Checkpoint{Path: path, EverySteps: 1}
	first := Synthesize(spec, opts)
	if first.Found || first.Checkpoints == 0 {
		t.Fatalf("setup: found=%v checkpoints=%d", first.Found, first.Checkpoints)
	}

	CorruptResultHook = corruptAppendNot
	defer func() { CorruptResultHook = nil }()
	opts.TotalSteps = 0
	opts.Checkpoint = Checkpoint{} // every-step fsync would dominate the resumed search
	res, err := ResumeContext(context.Background(), spec, opts, path)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.Found || res.StopReason != StopVerifyFailed {
		t.Fatalf("resume path not gated: found=%v stop=%s", res.Found, res.StopReason)
	}
}

func TestVerifyGatePortfolioPropagation(t *testing.T) {
	spec, _ := gateTestSpec(t, 4, 5)
	opts := DefaultOptions()
	run := obs.NewRun("portfolio-gate")
	opts.Observe = run
	res := SynthesizePortfolio(spec, opts, 2)
	if !res.Found {
		t.Fatalf("no circuit found (stop=%s)", res.StopReason)
	}
	if !res.Verified {
		t.Error("portfolio result lost the Verified mark in the merge")
	}
	if snap := run.Snapshot(time.Now()); !snap.Verified {
		t.Error("aggregate run snapshot not marked verified")
	}
}

func TestVerifyGatePortfolioCatchesInjectedMiscompile(t *testing.T) {
	CorruptResultHook = corruptAppendNot
	defer func() { CorruptResultHook = nil }()

	spec, _ := gateTestSpec(t, 4, 6)
	res := SynthesizePortfolio(spec, DefaultOptions(), 2)
	if res.Found || res.Circuit != nil {
		t.Fatal("corrupted circuit escaped the portfolio gate")
	}
	if res.StopReason != StopVerifyFailed {
		t.Errorf("stop = %s, want %s", res.StopReason, StopVerifyFailed)
	}
	var verr *verify.Error
	if !errors.As(res.Err, &verr) {
		t.Fatalf("Err is %T, want *verify.Error", res.Err)
	}
}

func TestDegradedOptions(t *testing.T) {
	opts := DefaultOptions()
	opts.SkipVerify = true
	d := opts.Degraded()
	if d.Dedup {
		t.Error("Degraded keeps the transposition table on")
	}
	if d.SkipVerify {
		t.Error("Degraded must re-enable the verification gate")
	}
	if !opts.Dedup {
		t.Error("Degraded mutated its receiver")
	}
	// SkipVerify must not shape a job's identity or invalidate checkpoints.
	a, b := DefaultOptions(), DefaultOptions()
	b.SkipVerify = true
	if OptionsFingerprint(&a) != OptionsFingerprint(&b) {
		t.Error("SkipVerify changes the options fingerprint")
	}
}
