package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/rng"
)

// ScalabilityConfig controls the Table V/VI/VII reproductions: random
// Toffoli cascades of 6–16 variables are generated, simulated to obtain
// their specification, and resynthesized from the PPRM expansion. The
// paper records only whether a (not necessarily minimal) solution is found
// in time, so FirstSolution mode is used.
type ScalabilityConfig struct {
	// MaxGateCount is the generated circuit length bound: 15 (Table V),
	// 20 (Table VI), or 25 (Table VII). Each generated circuit's length
	// is uniform in [1, MaxGateCount].
	MaxGateCount int
	// SamplesPerVar is the number of circuits per variable count (the
	// paper uses 500 for Table V and 1000 for VI/VII).
	SamplesPerVar int
	// MinVars/MaxVars bound the sweep (paper: 6–16).
	MinVars, MaxVars int
	Seed             uint64
	// TotalSteps bounds each synthesis deterministically.
	TotalSteps int
	// Library for generated circuits (the paper mixes GT and NCT; GT is
	// the default).
	Library circuit.Library
}

// TableVConfig, TableVIConfig, TableVIIConfig return the paper's setups
// with the given per-variable sample count.
func TableVConfig(perVar int, seed uint64) ScalabilityConfig {
	return ScalabilityConfig{MaxGateCount: 15, SamplesPerVar: perVar,
		MinVars: 6, MaxVars: 16, Seed: seed, TotalSteps: 60000}
}
func TableVIConfig(perVar int, seed uint64) ScalabilityConfig {
	return ScalabilityConfig{MaxGateCount: 20, SamplesPerVar: perVar,
		MinVars: 6, MaxVars: 16, Seed: seed, TotalSteps: 60000}
}
func TableVIIConfig(perVar int, seed uint64) ScalabilityConfig {
	return ScalabilityConfig{MaxGateCount: 25, SamplesPerVar: perVar,
		MinVars: 6, MaxVars: 16, Seed: seed, TotalSteps: 60000}
}

// ScalabilityRow is one variable count's outcome.
type ScalabilityRow struct {
	Vars    int
	Hist    Histogram
	Elapsed time.Duration
}

// ScalabilityResult is the reproduction of one of Tables V–VII.
type ScalabilityResult struct {
	Config ScalabilityConfig
	Rows   []ScalabilityRow
}

// Scalability runs the random-circuit resynthesis sweep. Canceling ctx
// ends the sweep after the in-flight synthesis; completed rows are kept
// and failures record the stop reason.
func Scalability(ctx context.Context, cfg ScalabilityConfig) *ScalabilityResult {
	res := &ScalabilityResult{Config: cfg}
	src := rng.New(cfg.Seed)
	for n := cfg.MinVars; n <= cfg.MaxVars && ctx.Err() == nil; n++ {
		row := ScalabilityRow{Vars: n}
		start := time.Now()
		for i := 0; i < cfg.SamplesPerVar && ctx.Err() == nil; i++ {
			gates := 1 + src.Intn(cfg.MaxGateCount)
			c := circuit.Random(n, gates, cfg.Library, src)
			spec := c.PPRM()
			opts := core.DefaultOptions()
			opts.FirstSolution = true
			opts.TotalSteps = cfg.TotalSteps
			opts.MaxGates = 40
			r := core.SynthesizeContext(ctx, spec, opts)
			if r.Found {
				row.Hist.Add(r.Circuit.Len())
			} else {
				row.Hist.AddFailure(r.StopReason)
			}
		}
		row.Elapsed = time.Since(start)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Write renders the sweep in the paper's bucketed form (circuit-size
// buckets of five, plus the failure column).
func (r *ScalabilityResult) Write(w io.Writer) {
	header := []string{"vars", "1-5", "6-10", "11-15", "16-20", "21-25",
		"26-30", "31-35", "36-40", "failed", "fail%", "elapsed"}
	var rows [][]string
	for _, row := range r.Rows {
		cells := []string{itoa(row.Vars)}
		for lo := 1; lo <= 36; lo += 5 {
			cells = append(cells, itoa(row.Hist.Bucket(lo, lo+4)))
		}
		cells = append(cells,
			itoa(row.Hist.Failed),
			fmt.Sprintf("%.1f", 100*float64(row.Hist.Failed)/float64(max(row.Hist.Total, 1))),
			row.Elapsed.Round(time.Millisecond).String(),
		)
		rows = append(rows, cells)
	}
	writeTable(w, header, rows)
	fmt.Fprintf(w, "random circuits with at most %d gates, %d samples per variable count\n",
		r.Config.MaxGateCount, r.Config.SamplesPerVar)
	var stops Histogram
	for _, row := range r.Rows {
		for reason, n := range row.Hist.Stops {
			for i := 0; i < n; i++ {
				stops.AddFailure(reason)
			}
		}
	}
	if s := stops.StopSummary(); s != "" {
		fmt.Fprintf(w, "failures by stop reason: %s\n", s)
	}
}
