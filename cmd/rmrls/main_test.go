package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadSpecPermLiteral(t *testing.T) {
	spec, p, err := loadSpec("", false, false, 0, []string{"{1, 0, 7, 2, 3, 4, 5, 6}"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 3 || p == nil {
		t.Errorf("spec.N=%d p=%v", spec.N, p)
	}
}

func TestLoadSpecBench(t *testing.T) {
	spec, p, err := loadSpec("graycode6", false, false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 6 || p == nil {
		t.Errorf("bench load broken: n=%d", spec.N)
	}
	if _, _, err := loadSpec("nonesuch", false, false, 0, nil); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestLoadSpecPPRMFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.pprm")
	if err := os.WriteFile(path, []byte("a' = a ^ 1\nb' = b ^ c ^ ac\nc' = b ^ ab ^ ac\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, p, err := loadSpec("", true, false, 3, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 3 || p == nil {
		t.Error("pprm file load broken")
	}
	// Non-reversible PPRM must be rejected.
	bad := filepath.Join(dir, "bad.pprm")
	os.WriteFile(bad, []byte("a' = b\nb' = b\n"), 0o644)
	if _, _, err := loadSpec("", true, false, 2, []string{bad}); err == nil {
		t.Error("non-reversible PPRM should fail")
	}
}

func TestLoadSpecPermFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.perm")
	os.WriteFile(path, []byte("{1, 0, 3, 2}"), 0o644)
	spec, _, err := loadSpec("", false, false, 0, []string{path})
	if err != nil || spec.N != 2 {
		t.Errorf("perm file load broken: %v", err)
	}
}

func TestLoadSpecErrors(t *testing.T) {
	if _, _, err := loadSpec("", false, false, 0, nil); err == nil {
		t.Error("missing argument should fail")
	}
	if _, _, err := loadSpec("", true, false, 0, []string{"x"}); err == nil {
		t.Error("pprm without -n should fail")
	}
	if _, _, err := loadSpec("", false, false, 0, []string{"{0, 0}"}); err == nil {
		t.Error("invalid permutation should fail")
	}
}

func TestLoadSpecPLAFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "maj.pla")
	os.WriteFile(path, []byte(".i 3\n.o 1\n111 1\n110 1\n101 1\n011 1\n000 0\n001 0\n010 0\n100 0\n.e\n"), 0o644)
	spec, p, err := loadSpec("", false, true, 0, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 3 || p == nil {
		t.Errorf("PLA load: n=%d", spec.N)
	}
}
