package esop

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCubeString(t *testing.T) {
	cases := []struct {
		cube Cube
		want string
	}{
		{Tautology, "1"},
		{Cube{Pos: 0b101}, "ac"},
		{Cube{Pos: 0b001, Neg: 0b010}, "aB"},
		{Cube{Neg: 0b100}, "C"},
	}
	for _, c := range cases {
		if got := c.cube.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.cube, got, c.want)
		}
		back, err := ParseCube(c.want)
		if err != nil || back != c.cube {
			t.Errorf("ParseCube(%q) = %+v, %v", c.want, back, err)
		}
	}
}

func TestParseCubeRejectsContradiction(t *testing.T) {
	if _, err := ParseCube("aA"); err == nil {
		t.Error("contradictory cube should fail to parse")
	}
}

func TestCubeContains(t *testing.T) {
	c := Cube{Pos: 0b001, Neg: 0b100} // a·¬c
	for x := uint32(0); x < 8; x++ {
		want := x&1 == 1 && x&4 == 0
		if got := c.Contains(x); got != want {
			t.Errorf("Contains(%03b) = %v, want %v", x, got, want)
		}
	}
}

func TestDistance(t *testing.T) {
	a, _ := ParseCube("abC")
	b, _ := ParseCube("aBc")
	if d := a.Distance(b); d != 2 {
		t.Errorf("distance(abC, aBc) = %d, want 2", d)
	}
	if d := a.Distance(a); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

// evalEqual checks two representations of an n-variable function pointwise.
func exprMatchesColumn(t *testing.T, e *Expr, col []bool) {
	t.Helper()
	for x := range col {
		if e.Eval(uint32(x)) != col[x] {
			t.Fatalf("expr %s: Eval(%d) = %v, want %v", e, x, e.Eval(uint32(x)), col[x])
		}
	}
}

func randomColumn(n int, src *rng.Source) []bool {
	col := make([]bool, 1<<uint(n))
	for i := range col {
		col[i] = src.Bool()
	}
	return col
}

func TestFromColumnExact(t *testing.T) {
	src := rng.New(21)
	for n := 1; n <= 5; n++ {
		for trial := 0; trial < 10; trial++ {
			col := randomColumn(n, src)
			e, err := FromColumn(col)
			if err != nil {
				t.Fatal(err)
			}
			exprMatchesColumn(t, e, col)
		}
	}
}

func TestMinimizePreservesFunction(t *testing.T) {
	src := rng.New(77)
	for n := 2; n <= 5; n++ {
		for trial := 0; trial < 15; trial++ {
			col := randomColumn(n, src)
			e, err := FromColumn(col)
			if err != nil {
				t.Fatal(err)
			}
			m := e.Minimize()
			exprMatchesColumn(t, m, col)
			if len(m.Cubes) > len(e.Cubes) {
				t.Errorf("n=%d: Minimize grew the cover %d → %d", n, len(e.Cubes), len(m.Cubes))
			}
		}
	}
}

func TestMinimizeParity(t *testing.T) {
	// Parity of 3 variables has 4 minterms; its minimal ESOP is the 3
	// single-literal cubes a ^ b ^ c.
	e, err := FromMinterms(3, []uint32{1, 2, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	m := e.Minimize()
	exprMatchesColumn(t, m, []bool{false, true, true, false, true, false, false, true})
	if len(m.Cubes) > 3 {
		t.Errorf("parity minimized to %d cubes (%s), want ≤ 3", len(m.Cubes), m)
	}
}

func TestMinimizeAND(t *testing.T) {
	// A single product needs a single cube.
	e, err := FromMinterms(2, []uint32{3})
	if err != nil {
		t.Fatal(err)
	}
	m := e.Minimize()
	if len(m.Cubes) != 1 {
		t.Errorf("ab minimized to %s", m)
	}
}

func TestFromSOP(t *testing.T) {
	// a + b over two variables: ON-set {1,2,3}.
	a, _ := ParseCube("a")
	b, _ := ParseCube("b")
	e, err := FromSOP(2, []Cube{a, b})
	if err != nil {
		t.Fatal(err)
	}
	exprMatchesColumn(t, e, []bool{false, true, true, true})
}

func TestFromSOPOverlappingCubes(t *testing.T) {
	// f = ab + bc + ac (majority) over three variables.
	ab, _ := ParseCube("ab")
	bc, _ := ParseCube("bc")
	ac, _ := ParseCube("ac")
	e, err := FromSOP(3, []Cube{ab, bc, ac})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]bool, 8)
	for x := uint32(0); x < 8; x++ {
		ones := 0
		for i := 0; i < 3; i++ {
			if x&(1<<uint(i)) != 0 {
				ones++
			}
		}
		want[x] = ones >= 2
	}
	exprMatchesColumn(t, e, want)
}

func TestToPPRMMatchesEval(t *testing.T) {
	src := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		n := 2 + src.Intn(4)
		col := randomColumn(n, src)
		e, err := FromColumn(col)
		if err != nil {
			t.Fatal(err)
		}
		ts := e.Minimize().ToPPRM()
		for x := uint32(0); x < 1<<uint(n); x++ {
			parity := false
			for _, term := range ts.Terms() {
				if x&term == term {
					parity = !parity
				}
			}
			if parity != col[x] {
				t.Fatalf("trial %d: PPRM disagrees at %d", trial, x)
			}
		}
	}
}

func TestComplementCubesDisjointAndComplete(t *testing.T) {
	f := func(pos, neg uint16) bool {
		p := uint32(pos) & 0xff
		q := uint32(neg) & 0xff &^ p
		c := Cube{Pos: p, Neg: q}
		comp := complementCubes(c)
		for x := uint32(0); x < 256; x++ {
			inComp := 0
			for _, cc := range comp {
				if cc.Contains(x) {
					inComp++
				}
			}
			if c.Contains(x) {
				if inComp != 0 {
					return false
				}
			} else if inComp != 1 { // disjoint cover: exactly one cube
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestExorlink2PreservesFunction: both rewritings of a distance-2 pair
// must realize the same function as the original pair.
func TestExorlink2PreservesFunction(t *testing.T) {
	src := rng.New(404)
	made := 0
	for trial := 0; trial < 400 && made < 60; trial++ {
		n := 3 + src.Intn(3)
		mask := uint32(1)<<uint(n) - 1
		a := Cube{Pos: uint32(src.Intn(1<<uint(n))) & mask}
		a.Neg = uint32(src.Intn(1<<uint(n))) & mask &^ a.Pos
		b := Cube{Pos: uint32(src.Intn(1<<uint(n))) & mask}
		b.Neg = uint32(src.Intn(1<<uint(n))) & mask &^ b.Pos
		if a.Distance(b) != 2 {
			continue
		}
		made++
		want := func(x uint32) bool { return a.Contains(x) != b.Contains(x) }
		for _, alt := range exorlink2(a, b) {
			for x := uint32(0); x <= mask; x++ {
				got := alt[0].Contains(x) != alt[1].Contains(x)
				if got != want(x) {
					t.Fatalf("exorlink2(%s,%s) alternative (%s,%s) wrong at %b",
						a, b, alt[0], alt[1], x)
				}
			}
		}
	}
	if made < 20 {
		t.Fatalf("only %d distance-2 pairs generated", made)
	}
}

// TestMerge1PreservesFunction checks the distance-1 merge rule.
func TestMerge1PreservesFunction(t *testing.T) {
	src := rng.New(505)
	made := 0
	for trial := 0; trial < 400 && made < 60; trial++ {
		n := 2 + src.Intn(4)
		mask := uint32(1)<<uint(n) - 1
		a := Cube{Pos: uint32(src.Intn(1<<uint(n))) & mask}
		a.Neg = uint32(src.Intn(1<<uint(n))) & mask &^ a.Pos
		b := Cube{Pos: uint32(src.Intn(1<<uint(n))) & mask}
		b.Neg = uint32(src.Intn(1<<uint(n))) & mask &^ b.Pos
		if a.Distance(b) != 1 {
			continue
		}
		made++
		m := merge1(a, b)
		for x := uint32(0); x <= mask; x++ {
			if m.Contains(x) != (a.Contains(x) != b.Contains(x)) {
				t.Fatalf("merge1(%s,%s) = %s wrong at %b", a, b, m, x)
			}
		}
	}
	if made < 20 {
		t.Fatalf("only %d distance-1 pairs generated", made)
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	src := rng.New(606)
	for trial := 0; trial < 10; trial++ {
		col := randomColumn(4, src)
		e, _ := FromColumn(col)
		m1 := e.Minimize()
		m2 := m1.Minimize()
		if len(m2.Cubes) != len(m1.Cubes) {
			t.Errorf("Minimize not idempotent: %d → %d cubes", len(m1.Cubes), len(m2.Cubes))
		}
	}
}
