// Package bench defines the reversible benchmark functions evaluated in
// Section V of the paper: the fourteen worked examples (Section V-C) and
// the Table IV benchmark suite. Specifications printed in the paper are
// quoted verbatim; functions the paper defines only in prose (graycode,
// mod-adders, hwb, rd-k, one-counts, shifters, …) are generated from their
// published definitions; ham3/ham7, whose exact specifications came from a
// benchmark page that is no longer available, are documented stand-ins
// (see DESIGN.md).
package bench

import (
	"fmt"
	"sort"

	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/tt"
)

// Published holds a comparison figure quoted in the paper's Table IV from
// Maslov's benchmark page [13] ("—" entries are absent).
type Published struct {
	Gates int
	Cost  int
}

// Benchmark is one entry of the suite.
type Benchmark struct {
	// Name as used in the paper (e.g. "rd53", "3_17", "shift10").
	Name string
	// Description of the function.
	Description string
	// Wires is the width of the reversible specification.
	Wires int
	// RealInputs and GarbageInputs are the Table IV accounting: real
	// inputs plus constant (garbage) inputs equals Wires.
	RealInputs    int
	GarbageInputs int
	// Spec is the reversible function. For wide benchmarks (the
	// shifters) Spec is nil and PPRM carries the specification.
	Spec perm.Perm
	// PPRMSpec returns the PPRM expansion of the specification.
	PPRMSpec func() (*pprm.Spec, error)
	// PaperGates and PaperCost are RMRLS's own Table IV results.
	PaperGates, PaperCost int
	// Best is the best published result from [13] (nil when the paper
	// shows "—").
	Best *Published
	// NCT marks the † rows of Table IV: comparison under the NCT library.
	NCT bool
	// StandIn marks functions whose exact paper specification was not
	// recoverable; results are comparable in character, not bit-exact.
	StandIn bool
	// Embedding is the irreversible→reversible lifting, when the
	// benchmark was built from a truth table (nil otherwise).
	Embedding *tt.Embedding
}

// pprmFromPerm adapts a permutation spec.
func pprmFromPerm(p perm.Perm) func() (*pprm.Spec, error) {
	return func() (*pprm.Spec, error) { return pprm.FromPerm(p) }
}

// fromPerm builds a benchmark whose reversible specification is given
// directly as a permutation (no embedding).
func fromPerm(name, desc string, vals []int, real int) *Benchmark {
	p := perm.MustFromInts(vals)
	return &Benchmark{
		Name:        name,
		Description: desc,
		Wires:       p.Vars(),
		RealInputs:  real,
		GarbageInputs: func() int {
			return p.Vars() - real
		}(),
		Spec:     p,
		PPRMSpec: pprmFromPerm(p),
	}
}

// fromTable embeds an irreversible truth table (Section II-A procedure).
func fromTable(name, desc string, tab *tt.Table) *Benchmark {
	e, err := tt.Embed(tab)
	if err != nil {
		panic(fmt.Sprintf("bench %s: %v", name, err))
	}
	p, err := perm.New(e.Spec)
	if err != nil {
		panic(fmt.Sprintf("bench %s: %v", name, err))
	}
	return &Benchmark{
		Name:          name,
		Description:   desc,
		Wires:         e.Wires,
		RealInputs:    tab.Inputs,
		GarbageInputs: e.Wires - tab.Inputs,
		Spec:          p,
		PPRMSpec:      pprmFromPerm(p),
		Embedding:     e,
	}
}

var registry []*Benchmark
var byName = map[string]*Benchmark{}

func register(b *Benchmark) *Benchmark {
	if _, dup := byName[b.Name]; dup {
		panic("bench: duplicate benchmark " + b.Name)
	}
	registry = append(registry, b)
	byName[b.Name] = b
	return b
}

// All returns every benchmark in registration order.
func All() []*Benchmark { return append([]*Benchmark(nil), registry...) }

// Names returns the sorted benchmark names.
func Names() []string {
	names := make([]string, 0, len(registry))
	for _, b := range registry {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	return names
}

// ByName looks a benchmark up.
func ByName(name string) (*Benchmark, error) {
	b, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q (have %v)", name, Names())
	}
	return b, nil
}

// TableIV returns the benchmarks in the paper's Table IV row order.
func TableIV() []*Benchmark {
	order := []string{
		"2of5", "rd32", "3_17", "4_49", "alu", "rd53", "xor5", "4mod5",
		"5mod5", "ham3", "ham7", "hwb4", "decod24", "shift10", "shift15",
		"shift28", "5one013", "5one245", "6one135", "6one0246",
		"majority3", "majority5", "graycode6", "graycode10", "graycode20",
		"mod5adder", "mod32adder", "mod15adder", "mod64adder",
	}
	out := make([]*Benchmark, len(order))
	for i, n := range order {
		b, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out[i] = b
	}
	return out
}

// Examples returns the Section V-C worked examples in paper order
// (Examples 1–14; Example 14's three shifter instances share one entry
// each).
func Examples() []*Benchmark {
	order := []string{
		"ex1", "shiftright3", "fredkin3", "swap3", "swap4", "shiftleft3",
		"shiftleft4", "fulladder", "rd53", "majority5", "decod24",
		"5one013", "alu", "shift10",
	}
	out := make([]*Benchmark, len(order))
	for i, n := range order {
		b, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out[i] = b
	}
	return out
}
