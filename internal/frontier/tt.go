package frontier

import (
	"sync"
	"sync/atomic"
)

// ttShards is the number of independently locked table shards. Fixed (not
// derived from the worker count) so that probe routing — and with it any
// accounting the caller derives from per-shard totals — does not change
// shape when a search is re-run wider or narrower. 64 shards keep the
// expected waiters per lock well below one even at the largest worker
// counts the engine accepts.
const ttShards = 64

// ttEntryBytes approximates the resident cost of one table entry for the
// MaxMemory accounting: key+value rounded up to Go map bucket overhead.
// Kept identical to the sequential table's estimate so single- and
// multi-worker runs meter the same ceiling the same way.
const ttEntryBytes = 32

// TT is a lock-sharded transposition table: a map from 64-bit search-state
// hashes to the shallowest depth at which the state has been queued or
// solved, striped across ttShards independently locked maps by the low
// bits of the hash. The replacement policy matches the sequential table in
// internal/core: a probe at depth ≥ the stored depth is a hit (the
// duplicate is pruned), a shallower rediscovery misses and supersedes the
// entry when recorded, and a full shard is cleared wholesale rather than
// evicted piecemeal.
//
// Seen/Record/Forget are safe for concurrent use. Reset and Entries are
// quiescent-state operations: they take every shard lock in turn, so they
// are safe to call concurrently too, but the totals they return are only
// exact when no worker is mutating the table (the engines call them at
// stop-the-world points: restarts and final accounting).
type TT struct {
	shards [ttShards]ttShard

	// Shared counters are too hot for a single cache line per probe;
	// each shard counts locally under its own lock and the totals are
	// summed on demand.
}

type ttShard struct {
	mu        sync.Mutex
	entries   map[uint64]int32
	limit     int
	hits      int64
	misses    int64
	evictions int64
	bytes     atomic.Int64 // entries × ttEntryBytes, readable without the lock
}

// NewTT returns a table bounded to limit entries in total; each shard
// clears itself wholesale when it exceeds its share.
func NewTT(limit int) *TT {
	t := &TT{}
	per := limit / ttShards
	if per < 1 {
		per = 1
	}
	for i := range t.shards {
		t.shards[i].entries = make(map[uint64]int32)
		t.shards[i].limit = per
	}
	return t
}

func (t *TT) shard(h uint64) *ttShard {
	// The search hashes are splitmix64-finalized, so the low bits are
	// already well mixed.
	return &t.shards[h%ttShards]
}

// Seen probes the table: it reports whether state h has already been
// reached at depth ≤ depth, counting the probe as a hit or miss. It never
// modifies the table — recording is the caller's decision.
func (t *TT) Seen(h uint64, depth int) bool {
	s := t.shard(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.entries[h]; ok && int(d) <= depth {
		s.hits++
		return true
	}
	s.misses++
	return false
}

// Record stores state h at the given depth, keeping the shallower of the
// new and existing depths. A full shard is cleared wholesale (counted as
// evictions) rather than evicted piecemeal.
func (t *TT) Record(h uint64, depth int) {
	s := t.shard(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.entries[h]; ok {
		if int32(depth) < d {
			s.entries[h] = int32(depth)
		}
		return
	}
	if len(s.entries) >= s.limit {
		s.evictions += int64(len(s.entries))
		clear(s.entries)
	}
	s.entries[h] = int32(depth)
	s.bytes.Store(int64(len(s.entries)) * ttEntryBytes)
}

// Forget removes the entry for state h, but only if it still records
// exactly the given depth — a shallower duplicate enqueued later keeps its
// mark even when the deeper node that first recorded the state is pruned.
func (t *TT) Forget(h uint64, depth int) {
	s := t.shard(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.entries[h]; ok && d == int32(depth) {
		delete(s.entries, h)
		s.bytes.Store(int64(len(s.entries)) * ttEntryBytes)
	}
}

// Reset drops every entry in every shard (restart or memory-pressure
// escalation), counting them as evictions.
func (t *TT) Reset() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.evictions += int64(len(s.entries))
		clear(s.entries)
		s.bytes.Store(0)
		s.mu.Unlock()
	}
}

// Bytes is the table's contribution to the MaxMemory estimate, summed
// across shards. Lock-free: each shard publishes its size atomically, so
// the sum is a consistent-enough sample for a coarse ceiling.
func (t *TT) Bytes() int64 {
	var b int64
	for i := range t.shards {
		b += t.shards[i].bytes.Load()
	}
	return b
}

// Entries returns the total number of recorded states across shards.
func (t *TT) Entries() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats returns the cumulative hit/miss/eviction counts summed across
// shards.
func (t *TT) Stats() (hits, misses, evictions int64) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		evictions += s.evictions
		s.mu.Unlock()
	}
	return hits, misses, evictions
}
