package bits

import (
	"testing"
	"testing/quick"
)

func TestBitHasCount(t *testing.T) {
	m := Bit(0) | Bit(3) | Bit(31)
	if !Has(m, 0) || !Has(m, 3) || !Has(m, 31) || Has(m, 1) {
		t.Errorf("Has misbehaves on %032b", m)
	}
	if Count(m) != 3 {
		t.Errorf("Count = %d, want 3", Count(m))
	}
}

func TestVars(t *testing.T) {
	m := Bit(2) | Bit(0) | Bit(5)
	got := Vars(m)
	want := []int{0, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestLowestVar(t *testing.T) {
	if LowestVar(0) != -1 {
		t.Error("LowestVar(0) should be -1")
	}
	if LowestVar(Bit(7)|Bit(9)) != 7 {
		t.Error("LowestVar(bit7|bit9) should be 7")
	}
}

func TestVarNameIndexRoundTrip(t *testing.T) {
	for i := 0; i < MaxVars; i++ {
		if got := VarIndex(VarName(i)); got != i {
			t.Errorf("VarIndex(VarName(%d)) = %d", i, got)
		}
	}
	for _, bad := range []string{"", "A", "x-1", "x32", "1a", "?"} {
		if VarIndex(bad) != -1 {
			t.Errorf("VarIndex(%q) should be -1", bad)
		}
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		m    Mask
		want string
	}{
		{0, "1"},
		{Bit(0), "a"},
		{Bit(0) | Bit(2), "ac"},
		{Bit(1) | Bit(2) | Bit(3), "bcd"},
	}
	for _, c := range cases {
		if got := TermString(c.m); got != c.want {
			t.Errorf("TermString(%b) = %q, want %q", c.m, got, c.want)
		}
	}
}

func TestParseTermRoundTrip(t *testing.T) {
	f := func(m uint32) bool {
		m &= 1<<26 - 1 // single-letter names only
		got, ok := ParseTerm(TermString(m))
		return ok && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseTermRejects(t *testing.T) {
	for _, bad := range []string{"", "aB", "a b", "0"} {
		if _, ok := ParseTerm(bad); ok {
			t.Errorf("ParseTerm(%q) should fail", bad)
		}
	}
}

func TestSubsetOf(t *testing.T) {
	if !SubsetOf(Bit(1), Bit(1)|Bit(2)) {
		t.Error("b ⊆ bc should hold")
	}
	if SubsetOf(Bit(0)|Bit(1), Bit(1)) {
		t.Error("ab ⊆ b should not hold")
	}
	if !SubsetOf(0, Bit(5)) {
		t.Error("∅ is a subset of everything")
	}
}

func TestReverse(t *testing.T) {
	if got := Reverse(Bit(0), 4); got != Bit(3) {
		t.Errorf("Reverse(a, 4) = %s", TermString(got))
	}
	f := func(m uint32) bool {
		m &= 1<<10 - 1
		return Reverse(Reverse(m, 10), 10) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
