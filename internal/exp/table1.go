package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mmd"
	"repro/internal/optimal"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
	"repro/internal/spectral"
)

// Table1Published holds the comparison columns quoted from the paper's
// Table I: the numbers reported for RMRLS itself, Miller et al. [7]
// (NCTS), and Kerntopf [6] (NCTS), indexed by gate count.
var Table1Published = struct {
	RMRLS, Miller, Kerntopf          []int
	RMRLSAvg, MillerAvg, KerntopfAvg float64
}{
	RMRLS:    []int{1, 12, 102, 625, 2642, 7479, 13596, 12476, 3351, 36},
	Miller:   []int{1, 15, 130, 767, 2981, 7518, 12076, 11199, 4726, 792, 110, 5},
	Kerntopf: []int{1, 15, 134, 781, 3038, 8068, 13683, 11774, 2740, 86},
	RMRLSAvg: 6.10, MillerAvg: 6.18, KerntopfAvg: 6.01,
}

// Table1Config controls the Table I reproduction.
type Table1Config struct {
	// Samples is the number of 3-variable functions synthesized; 0 means
	// all 40 320.
	Samples int
	// Seed drives the sample choice (ignored for the full run).
	Seed uint64
	// TotalSteps / ImproveSteps bound each function's search; zeros
	// select tuned defaults.
	TotalSteps, ImproveSteps int
	// SkipOptimal skips the two exhaustive-BFS columns (they cost a few
	// hundred milliseconds; benchmarks may want the synthesis loop only).
	SkipOptimal bool
}

// Table1Result is the reproduction of Table I.
type Table1Result struct {
	Ours, MMD, Spectral, OptimalNCT, OptimalNCTS Histogram
	Elapsed                                      time.Duration
}

// Table1 synthesizes reversible functions of three variables with RMRLS
// (NCT library), the MMD baseline, and exact BFS, reproducing Table I.
// Canceling ctx skips the remaining functions; completed ones are kept.
func Table1(ctx context.Context, cfg Table1Config) *Table1Result {
	start := time.Now()
	res := &Table1Result{}

	opts := core.DefaultOptions()
	opts.Library = circuit.NCT
	opts.TotalSteps = cfg.TotalSteps
	if opts.TotalSteps == 0 {
		opts.TotalSteps = 8000
	}
	opts.ImproveSteps = cfg.ImproveSteps
	if opts.ImproveSteps == 0 {
		opts.ImproveSteps = 5000
	}
	opts.MaxGates = 20

	run := func(p perm.Perm) {
		if ctx.Err() != nil {
			return
		}
		spec, err := pprm.FromPerm(p)
		if err != nil {
			panic(err)
		}
		r := core.SynthesizeContext(ctx, spec, opts)
		if !r.Found && ctx.Err() == nil {
			boosted := opts
			boosted.TotalSteps *= 20
			// A fraction of a percent of functions resist the default
			// configuration within the budget; the portfolio recovers
			// them (the paper's 60-s wall clock plays the same role).
			r = core.SynthesizePortfolioContext(ctx, spec, boosted, 0)
		}
		if r.Found {
			res.Ours.Add(r.Circuit.Len())
		} else {
			res.Ours.AddFailure(r.StopReason)
		}
		res.MMD.Add(mmd.Synthesize(p, mmd.Bidirectional).Len())
		if sres, err := spectral.Synthesize(p, 40); err == nil && sres.Found {
			res.Spectral.Add(sres.Circuit.Len())
		} else {
			res.Spectral.Add(-1)
		}
	}

	if cfg.Samples <= 0 {
		forEachPerm3(run)
	} else {
		src := rng.New(cfg.Seed)
		for i := 0; i < cfg.Samples; i++ {
			run(perm.Random(3, src))
		}
	}

	if !cfg.SkipOptimal {
		nct, _ := optimal.Distances(optimal.NCT).Histogram()
		ncts, _ := optimal.Distances(optimal.NCTS).Histogram()
		for g, c := range nct {
			res.OptimalNCT.Counts = append(res.OptimalNCT.Counts, 0)
			res.OptimalNCT.Counts[g] = c
			res.OptimalNCT.Total += c
		}
		for g, c := range ncts {
			res.OptimalNCTS.Counts = append(res.OptimalNCTS.Counts, 0)
			res.OptimalNCTS.Counts[g] = c
			res.OptimalNCTS.Total += c
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// forEachPerm3 enumerates all 40 320 permutations of {0,…,7} in
// lexicographic order.
func forEachPerm3(f func(perm.Perm)) {
	var vals [8]uint32
	var rec func(depth int, used uint16)
	rec = func(depth int, used uint16) {
		if depth == 8 {
			p := make(perm.Perm, 8)
			copy(p, vals[:])
			f(p)
			return
		}
		for v := uint32(0); v < 8; v++ {
			if used&(1<<v) == 0 {
				vals[depth] = v
				rec(depth+1, used|1<<v)
			}
		}
	}
	rec(0, 0)
}

// Write renders the reproduction beside the paper's published columns.
func (r *Table1Result) Write(w io.Writer) {
	maxG := len(r.Ours.Counts)
	for _, h := range []*Histogram{&r.MMD, &r.Spectral, &r.OptimalNCT, &r.OptimalNCTS} {
		if len(h.Counts) > maxG {
			maxG = len(h.Counts)
		}
	}
	if len(Table1Published.Miller) > maxG {
		maxG = len(Table1Published.Miller)
	}
	header := []string{"gates", "ours NCT", "MMD-bi", "spectral", "opt NCT", "opt NCTS",
		"paper:RMRLS", "paper:Miller", "paper:Kerntopf"}
	var rows [][]string
	at := func(counts []int, g int) string {
		if g < len(counts) {
			return itoa(counts[g])
		}
		return ""
	}
	for g := maxG - 1; g >= 0; g-- {
		rows = append(rows, []string{
			itoa(g),
			at(r.Ours.Counts, g), at(r.MMD.Counts, g), at(r.Spectral.Counts, g),
			at(r.OptimalNCT.Counts, g), at(r.OptimalNCTS.Counts, g),
			at(Table1Published.RMRLS, g), at(Table1Published.Miller, g),
			at(Table1Published.Kerntopf, g),
		})
	}
	rows = append(rows, []string{
		"avg",
		fmt.Sprintf("%.2f", r.Ours.Average()),
		fmt.Sprintf("%.2f", r.MMD.Average()),
		fmt.Sprintf("%.2f", r.Spectral.Average()),
		fmt.Sprintf("%.2f", r.OptimalNCT.Average()),
		fmt.Sprintf("%.2f", r.OptimalNCTS.Average()),
		fmt.Sprintf("%.2f", Table1Published.RMRLSAvg),
		fmt.Sprintf("%.2f", Table1Published.MillerAvg),
		fmt.Sprintf("%.2f", Table1Published.KerntopfAvg),
	})
	writeTable(w, header, rows)
	fmt.Fprintf(w, "functions: %d  failed: %d  elapsed: %v\n",
		r.Ours.Total, r.Ours.Failed, r.Elapsed.Round(time.Millisecond))
	if s := r.Ours.StopSummary(); s != "" {
		fmt.Fprintf(w, "failures by stop reason: %s\n", s)
	}
}
