// Command benchjson runs the search benchmark-trajectory harness
// (internal/bench.RunSearchBench) and writes the machine-readable report
// consumed as BENCH_search.json: seeded, deterministic workloads with the
// transposition table off and on, plus the paper's fourteen worked
// examples. See docs/PERFORMANCE.md for how to read the output.
//
// Usage:
//
//	benchjson [-out BENCH_search.json] [-seed 1] [-table1 400]
//	          [-random4 60] [-steps 50000] [-examplesteps 150000]
//	          [-skip-examples]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out          = fs.String("out", "BENCH_search.json", "output file (\"-\" for stdout)")
		seed         = fs.Uint64("seed", 0, "workload seed (0 = default 1)")
		table1       = fs.Int("table1", 0, "3-variable Table-I sample size (0 = default 400)")
		random4      = fs.Int("random4", 0, "4-variable random sample size (0 = default 60)")
		steps        = fs.Int("steps", 0, "per-function expansion budget (0 = default 50000)")
		exampleSteps = fs.Int("examplesteps", 0, "per-example expansion budget (0 = default 150000)")
		skipExamples = fs.Bool("skip-examples", false, "skip the worked-examples comparison")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	cfg := bench.SearchBenchConfig{
		Seed:         *seed,
		Table1Sample: *table1,
		Random4:      *random4,
		TotalSteps:   *steps,
		ExampleSteps: *exampleSteps,
		SkipExamples: *skipExamples,
	}
	report, err := bench.RunSearchBench(ctx, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		if ctx.Err() != nil {
			return 3
		}
		return 1
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}

	for _, w := range report.Workloads {
		fmt.Fprintf(stderr, "%-12s  expansions %8d -> %8d (-%.1f%%)  hit rate %.2f  allocs/exp %.1f -> %.1f\n",
			w.Workload, w.Off.Expansions, w.On.Expansions, 100*w.ExpansionReduction,
			w.On.DedupHitRate, w.Off.AllocsPerExpansion, w.On.AllocsPerExpansion)
	}
	for _, e := range report.Examples {
		fmt.Fprintf(stderr, "%-12s  gates %2d -> %2d (paper %2d)  steps %7d -> %7d\n",
			e.Name, e.GatesOff, e.GatesOn, e.PaperGates, e.StepsOff, e.StepsOn)
	}
	return 0
}
