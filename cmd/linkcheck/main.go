// Command linkcheck validates the relative links in the repository's
// markdown documentation. It scans the given files (or the repo default
// set: README.md and docs/*.md), extracts inline links and images, and
// fails with a non-zero exit listing every link whose target does not
// exist on disk. External links (http, https, mailto) and pure in-page
// anchors are skipped — this is a docs-tree integrity check, not a web
// crawler. CI runs it so a renamed doc or flag reference cannot silently
// strand readers.
//
// Usage:
//
//	linkcheck [file.md ...]
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style definitions are rare in this repo and
// intentionally out of scope.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		files = defaultSet()
	}
	broken := 0
	for _, f := range files {
		for _, b := range checkFile(f) {
			fmt.Fprintln(os.Stderr, b)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) clean\n", len(files))
}

// defaultSet is README.md plus every markdown file under docs/.
func defaultSet() []string {
	files := []string{"README.md"}
	docs, _ := filepath.Glob(filepath.Join("docs", "*.md"))
	sort.Strings(docs)
	return append(files, docs...)
}

// checkFile returns one message per broken relative link in path.
func checkFile(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var msgs []string
	dir := filepath.Dir(path)
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skip(target) {
				continue
			}
			// Strip an in-file anchor: FILE#section checks FILE.
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(dir, filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				msgs = append(msgs, fmt.Sprintf("%s:%d: broken link %q (resolved %s)", path, i+1, m[1], resolved))
			}
		}
	}
	return msgs
}

// skip reports whether target is outside this checker's scope.
func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
