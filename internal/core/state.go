package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/bits"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/snapshot"
)

// Typed resume errors. All of them mean "this snapshot cannot continue this
// run"; callers are expected to fall back to a fresh synthesis (the CLI
// does exactly that) rather than fail the job.
var (
	// ErrSpecMismatch: the snapshot was taken for a different function.
	ErrSpecMismatch = errors.New("core: snapshot is for a different function")
	// ErrOptionsMismatch: the snapshot was taken under options that shape
	// the search differently (weights, pruning, admission, dedup, ...).
	// Budgets — TimeLimit, TotalSteps, ImproveSteps, FirstSolution — are
	// free to change between segments and are not fingerprinted.
	ErrOptionsMismatch = errors.New("core: snapshot was taken under different search options")
	// ErrInvalidState: the snapshot decoded but violates a search
	// invariant (dangling parent, depth mismatch, replay divergence, ...).
	// Structurally valid files can still earn this after bit rot that
	// happens to keep the CRC intact, or from a buggy/hostile writer.
	ErrInvalidState = errors.New("core: snapshot state fails validation")
)

// optionsFingerprint hashes the decision-shaping options — everything that
// influences which nodes are generated, scored, admitted, pruned, or
// deduplicated, using resolved values so that an explicit setting equal to
// its default fingerprints identically. Budgets are deliberately excluded:
// resuming with a larger step or time budget is the whole point of a
// checkpoint.
func optionsFingerprint(o *Options) uint64 {
	h := uint64(0xcbf29ce484222325) // FNV-1a, word-at-a-time
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
	}
	mixBool := func(b bool) {
		if b {
			mix(1)
		} else {
			mix(0)
		}
	}
	alpha, beta, gamma := o.weights()
	mix(uint64(o.Library))
	mix(uint64(int64(o.MaxGates)))
	mix(uint64(int64(o.MaxSteps)))
	mix(uint64(int64(o.MaxRestarts)))
	mix(uint64(int64(o.GreedyK)))
	mixBool(o.Additional)
	mix(math.Float64bits(alpha))
	mix(math.Float64bits(beta))
	mix(math.Float64bits(gamma))
	mix(uint64(o.Admission))
	mix(uint64(int64(o.growthSlack())))
	mixBool(o.LinearElim)
	mixBool(o.PerStepElim)
	mix(uint64(int64(o.maxQueue())))
	mix(uint64(o.MaxMemory))
	mixBool(o.Dedup)
	mix(uint64(int64(o.dedupMaxEntries())))
	// The engine is fingerprinted only when it can change the trajectory:
	// the deterministic-merge engine is worker-count-invariant but batches
	// its budget checks, so it is a distinct (internally consistent) family
	// from the classic searcher; the free-running engine is its own. The
	// worker COUNT is deliberately not mixed — resuming a det-merge
	// checkpoint under a different Workers value is exact. Sequential runs
	// mix nothing, so fingerprints (and checkpoints, and cache keys) from
	// before the parallel engines existed remain valid.
	if m := o.parallelMode(); m != parSeq {
		mix(0x70617261) // "para"
		mix(uint64(m))
	}
	return h
}

// exportState serializes the complete searcher into a snapshot.State. It
// must be called at a step boundary: pending, when non-nil, is a node that
// was popped but not yet expanded (a cancellation caught mid-step after its
// counters were rolled back); it is recorded at the head of the queue so
// the resumed search pops it first.
//
// The node table holds the root, every queued node, the best solution, and
// all of their ancestors in topological order (parents before children).
// Only the root's PPRM expansion is stored; expanded interior nodes are
// flagged Materialized and re-derived on restore by replaying their
// (target, factor) substitutions, which reproduces the expansions exactly —
// including backing-array capacities, which the memory accounting depends
// on.
func (s *searcher) exportState(pending *node) *snapshot.State {
	index := make(map[*node]int)
	var order []*node
	var add func(n *node) int
	add = func(n *node) int {
		if i, ok := index[n]; ok {
			return i
		}
		if n.parent != nil {
			add(n.parent)
		}
		i := len(order)
		index[n] = i
		order = append(order, n)
		return i
	}
	add(s.root)
	var queued []int
	if pending != nil {
		queued = append(queued, add(pending))
	}
	s.pq.Ordered(func(n *node) { queued = append(queued, add(n)) })
	bestSol := -1
	if s.bestSol != nil {
		bestSol = add(s.bestSol)
	}

	st := &snapshot.State{
		SpecHash:          s.root.spec.Hash(),
		OptionsFP:         optionsFingerprint(&s.opts),
		Root:              exportSpec(s.root.spec),
		Nodes:             make([]snapshot.NodeState, len(order)),
		Queued:            queued,
		BestSol:           bestSol,
		BestDepth:         s.bestDepth,
		Steps:             s.steps,
		StepsSinceRestart: s.stepsSinceRestart,
		SolSteps:          s.solSteps,
		NodesCreated:      s.nodes,
		Restarts:          s.restarts,
		NextFirstMove:     s.nextFirstMove,
		Elapsed:           s.prevElapsed + time.Since(s.startTime),
		PeakBytes:         s.peakBytes,
	}
	for i, n := range order {
		parent := -1
		if n.parent != nil {
			parent = index[n.parent]
		}
		st.Nodes[i] = snapshot.NodeState{
			Parent:       parent,
			ID:           n.id,
			Target:       n.target,
			Factor:       uint32(n.factor),
			Depth:        n.depth,
			Terms:        n.terms,
			Elim:         n.elim,
			Priority:     n.priority,
			Hash:         n.hash,
			Materialized: n.spec != nil,
		}
	}
	for _, fm := range s.firstMoves {
		st.FirstMoves = append(st.FirstMoves, snapshot.FirstMoveState{
			Target: fm.target, Factor: uint32(fm.factor), Priority: fm.priority,
		})
	}
	if s.tt != nil {
		tt := &snapshot.TTState{
			Keys:      make([]uint64, 0, len(s.tt.entries)),
			Hits:      s.tt.hits,
			Misses:    s.tt.misses,
			Evictions: s.tt.evictions,
		}
		for k := range s.tt.entries {
			tt.Keys = append(tt.Keys, k)
		}
		sort.Slice(tt.Keys, func(i, j int) bool { return tt.Keys[i] < tt.Keys[j] })
		tt.Depths = make([]int32, len(tt.Keys))
		for i, k := range tt.Keys {
			tt.Depths[i] = s.tt.entries[k]
		}
		st.TT = tt
	}
	return st
}

func exportSpec(sp *pprm.Spec) snapshot.SpecState {
	out := snapshot.SpecState{N: sp.N, Out: make([]snapshot.TermSetState, len(sp.Out))}
	for i := range sp.Out {
		ts := &sp.Out[i]
		out.Out[i] = snapshot.TermSetState{
			Terms: append([]bits.Mask(nil), ts.Terms()...),
			Cap:   ts.Cap(),
		}
	}
	return out
}

// resumableStop reports whether a run that stopped for this reason can be
// continued from its final checkpoint: the budget-driven stops. Solved and
// exhausted runs are finished — there is nothing left to continue — and an
// internal-error abort has no trustworthy state to save.
func resumableStop(r StopReason) bool {
	switch r {
	case StopCanceled, StopDeadline, StopStepLimit, StopMemoryLimit:
		return true
	}
	return false
}

// ckptTimeStride is how many expansions pass between wall-clock cadence
// checks; time.Since on every pop would dominate small expansions.
const ckptTimeStride = 256

// maybeCheckpoint writes a periodic snapshot when the configured cadence
// (step-count or wall-clock) has elapsed. Called at the top of the search
// loop, where the searcher is at a clean step boundary.
func (s *searcher) maybeCheckpoint() {
	ck := &s.opts.Checkpoint
	if !ck.enabled() {
		return
	}
	if ck.EverySteps > 0 {
		if s.steps-s.lastCkptSteps < ck.EverySteps {
			return
		}
	} else {
		s.ckptTimeIn--
		if s.ckptTimeIn > 0 {
			return
		}
		s.ckptTimeIn = ckptTimeStride
		if time.Since(s.lastCkptTime) < ck.interval() {
			return
		}
	}
	s.writeCheckpoint(nil)
}

// writeCheckpoint snapshots the searcher (with pending, if non-nil, as the
// queue head — see exportState) and writes it atomically. Failures never
// stop the search: they are reported to Checkpoint.OnError and the previous
// on-disk checkpoint survives untouched.
func (s *searcher) writeCheckpoint(pending *node) {
	ck := &s.opts.Checkpoint
	if !ck.enabled() {
		return
	}
	st := s.exportState(pending)
	n, err := snapshot.WriteFileN(ck.FS, ck.Path, st)
	if err != nil {
		s.ckptErrs++
		if ck.OnError != nil {
			ck.OnError(err)
		}
		return
	}
	s.ckptCount++
	s.lastCkptSteps = s.steps
	s.lastCkptTime = time.Now()
	if o := s.opts.Observe; o != nil {
		o.CheckpointWritten(n)
	}
}

// restoreSearcher rebuilds a live searcher from a snapshot, validating
// every search invariant along the way. spec is the function the caller
// wants synthesized — the snapshot must be for the same function under
// fingerprint-identical options, or the typed mismatch errors are returned.
//
// Restoration is paranoid by design: the snapshot layer only guarantees the
// bytes are intact, so everything semantic is re-derived and cross-checked
// here. Materialized expansions are rebuilt by replaying substitutions from
// the root and compared against the recorded term counts (and state hashes,
// when deduplication is on); a snapshot that passes either resumes exactly
// or is rejected — it cannot put the searcher into a state the normal
// search could not reach.
func restoreSearcher(spec *pprm.Spec, opts Options, st *snapshot.State) (*searcher, error) {
	if spec.Hash() != st.SpecHash {
		return nil, ErrSpecMismatch
	}
	if optionsFingerprint(&opts) != st.OptionsFP {
		return nil, ErrOptionsMismatch
	}
	if st.Root.N != spec.N || len(st.Root.Out) != spec.N {
		return nil, fmt.Errorf("%w: root has %d variables, spec has %d", ErrSpecMismatch, st.Root.N, spec.N)
	}
	rootSpec := &pprm.Spec{N: st.Root.N, Out: make([]pprm.TermSet, st.Root.N)}
	for i := range st.Root.Out {
		ts, err := pprm.RestoreSorted(st.Root.Out[i].Terms, st.Root.Out[i].Cap)
		if err != nil {
			return nil, fmt.Errorf("%w: output %d: %v", ErrInvalidState, i, err)
		}
		rootSpec.Out[i] = ts
	}
	if !rootSpec.Equal(spec) {
		// Hash matched but the terms differ: a collision or a forgery.
		return nil, ErrSpecMismatch
	}

	s := &searcher{opts: opts, n: spec.N}
	s.alpha, s.beta, s.gamma = opts.weights()
	s.initTerms = rootSpec.Terms()
	s.maxGates = opts.MaxGates
	if s.maxGates <= 0 {
		s.maxGates = 1 << uint(min(spec.N+1, 12))
	}

	if len(st.Nodes) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrInvalidState)
	}
	r := &st.Nodes[0]
	if r.Parent != -1 || r.Target != -1 || r.Depth != 0 || !r.Materialized || r.Terms != s.initTerms {
		return nil, fmt.Errorf("%w: malformed root node", ErrInvalidState)
	}
	nodes := make([]*node, len(st.Nodes))
	nodes[0] = &node{
		spec:     rootSpec,
		id:       r.ID,
		target:   -1,
		terms:    r.Terms,
		elim:     r.Elim,
		priority: r.Priority,
		hash:     r.Hash,
	}
	for i := 1; i < len(st.Nodes); i++ {
		ns := &st.Nodes[i]
		if ns.Parent < 0 || ns.Parent >= i {
			return nil, fmt.Errorf("%w: node %d parent %d out of order", ErrInvalidState, i, ns.Parent)
		}
		parent := nodes[ns.Parent]
		ps := &st.Nodes[ns.Parent]
		if ns.Depth != ps.Depth+1 || ns.Depth > s.maxGates {
			return nil, fmt.Errorf("%w: node %d depth %d under parent depth %d", ErrInvalidState, i, ns.Depth, ps.Depth)
		}
		if ns.Target < 0 || ns.Target >= s.n {
			return nil, fmt.Errorf("%w: node %d target %d", ErrInvalidState, i, ns.Target)
		}
		factor := bits.Mask(ns.Factor)
		if uint64(ns.Factor) >= 1<<uint(s.n) || factor&bits.Bit(ns.Target) != 0 {
			return nil, fmt.Errorf("%w: node %d factor %#x invalid for target %d", ErrInvalidState, i, ns.Factor, ns.Target)
		}
		if ns.Terms < 0 || ns.Elim != ps.Terms-ns.Terms {
			return nil, fmt.Errorf("%w: node %d terms/elim inconsistent", ErrInvalidState, i)
		}
		n := &node{
			parent:   parent,
			id:       ns.ID,
			target:   ns.Target,
			factor:   factor,
			depth:    ns.Depth,
			terms:    ns.Terms,
			elim:     ns.Elim,
			priority: ns.Priority,
			hash:     ns.Hash,
		}
		if ns.Materialized {
			// Expanded interior nodes keep their expansions alive for
			// their children's lazy materialization; the invariant that a
			// materialized node's parent is materialized is what lets the
			// replay below proceed in index order.
			if !ps.Materialized {
				return nil, fmt.Errorf("%w: node %d materialized under lazy parent", ErrInvalidState, i)
			}
			cs, delta := parent.spec.SubstituteCopy(n.target, n.factor)
			if parent.terms+delta != n.terms {
				return nil, fmt.Errorf("%w: node %d replay produced %d terms, snapshot says %d",
					ErrInvalidState, i, parent.terms+delta, n.terms)
			}
			if opts.Dedup && cs.Hash() != n.hash {
				return nil, fmt.Errorf("%w: node %d replay hash mismatch", ErrInvalidState, i)
			}
			n.spec = cs
		}
		nodes[i] = n
	}
	s.root = nodes[0]

	if st.NodesCreated < len(st.Nodes) {
		return nil, fmt.Errorf("%w: node counter %d below table size %d", ErrInvalidState, st.NodesCreated, len(st.Nodes))
	}
	if st.Steps < 0 || st.StepsSinceRestart < 0 || st.StepsSinceRestart > st.Steps ||
		st.SolSteps < 0 || st.SolSteps > st.Steps || st.Restarts < 0 {
		return nil, fmt.Errorf("%w: negative or inconsistent counters", ErrInvalidState)
	}
	s.nodes = st.NodesCreated
	s.steps = st.Steps
	s.stepsSinceRestart = st.StepsSinceRestart
	s.solSteps = st.SolSteps
	s.restarts = st.Restarts

	switch {
	case st.BestSol == -1:
		if st.BestDepth != s.maxGates+1 {
			return nil, fmt.Errorf("%w: no solution but best depth %d", ErrInvalidState, st.BestDepth)
		}
	case st.BestSol >= 0 && st.BestSol < len(nodes):
		if st.Nodes[st.BestSol].Depth != st.BestDepth {
			return nil, fmt.Errorf("%w: best solution depth %d != best depth %d",
				ErrInvalidState, st.Nodes[st.BestSol].Depth, st.BestDepth)
		}
		s.bestSol = nodes[st.BestSol]
	default:
		return nil, fmt.Errorf("%w: best solution index %d", ErrInvalidState, st.BestSol)
	}
	s.bestDepth = st.BestDepth

	for _, fm := range st.FirstMoves {
		if fm.Target < 0 || fm.Target >= s.n || uint64(fm.Factor) >= 1<<uint(s.n) {
			return nil, fmt.Errorf("%w: first move (%d, %#x)", ErrInvalidState, fm.Target, fm.Factor)
		}
		s.firstMoves = append(s.firstMoves, firstMove{
			target: fm.Target, factor: bits.Mask(fm.Factor), priority: fm.Priority,
		})
	}
	if st.NextFirstMove < 0 || st.NextFirstMove > len(s.firstMoves) {
		return nil, fmt.Errorf("%w: next first move %d of %d", ErrInvalidState, st.NextFirstMove, len(s.firstMoves))
	}
	s.nextFirstMove = st.NextFirstMove

	if opts.Dedup != (st.TT != nil) {
		return nil, fmt.Errorf("%w: transposition table presence disagrees with options", ErrInvalidState)
	}
	if st.TT != nil {
		tt := st.TT
		limit := opts.dedupMaxEntries()
		if len(tt.Keys) != len(tt.Depths) || len(tt.Keys) > limit {
			return nil, fmt.Errorf("%w: transposition table shape", ErrInvalidState)
		}
		s.tt = newTranspo(limit)
		for i, k := range tt.Keys {
			if tt.Depths[i] < 0 {
				return nil, fmt.Errorf("%w: transposition depth %d", ErrInvalidState, tt.Depths[i])
			}
			s.tt.entries[k] = tt.Depths[i]
		}
		s.tt.hits = tt.Hits
		s.tt.misses = tt.Misses
		s.tt.evictions = tt.Evictions
	}

	// Rebuild the queue in recorded precedence order. Push assigns fresh,
	// increasing sequence numbers, so FIFO tie-breaking among the restored
	// nodes — and between them and any node pushed later — matches the
	// original run exactly.
	seen := make(map[int]bool, len(st.Queued))
	for _, qi := range st.Queued {
		if qi < 0 || qi >= len(nodes) || seen[qi] {
			return nil, fmt.Errorf("%w: queued index %d", ErrInvalidState, qi)
		}
		seen[qi] = true
		if st.BestSol == qi {
			return nil, fmt.Errorf("%w: solution node queued", ErrInvalidState)
		}
		n := nodes[qi]
		if n.parent != nil && n.spec == nil && n.parent.spec == nil {
			return nil, fmt.Errorf("%w: queued node %d cannot be materialized", ErrInvalidState, qi)
		}
		n.mem = memOf(n)
		s.queueBytes += n.mem
		s.pq.Push(n, n.priority)
	}

	s.peakBytes = st.PeakBytes
	if t := s.totalBytes(); t > s.peakBytes {
		s.peakBytes = t
	}
	s.prevElapsed = st.Elapsed
	if opts.TimeLimit > 0 {
		s.deadline = time.Now().Add(opts.TimeLimit - st.Elapsed)
		s.hasDeadline = true
	}
	s.pollIn = 1
	s.resumed = true
	return s, nil
}

// ResumeContext continues a checkpointed synthesis of spec from the
// snapshot at path, exactly where it left off: the resumed search performs
// the same pops, expansions, and solutions the uninterrupted run would
// have, so the final circuit and all step/node counters match it. opts must
// fingerprint-match the original run's decision-shaping options; its
// budgets (TimeLimit, TotalSteps, ImproveSteps, FirstSolution) may differ.
// TimeLimit, when set, covers the cumulative elapsed time across all
// segments, not just this one.
//
// The error is non-nil when the snapshot cannot be used — missing file
// (fs.ErrNotExist), damage (snapshot.ErrCorrupt and friends), or a typed
// mismatch (ErrSpecMismatch, ErrOptionsMismatch, ErrInvalidState). Callers
// should treat every error as "start fresh", never as a fatal condition.
func ResumeContext(ctx context.Context, spec *pprm.Spec, opts Options, path string) (Result, error) {
	st, err := snapshot.ReadFile(path)
	if err != nil {
		return Result{}, err
	}
	return ResumeStateContext(ctx, spec, opts, st)
}

// ResumeStateContext is ResumeContext for an already-decoded snapshot.
func ResumeStateContext(ctx context.Context, spec *pprm.Spec, opts Options, st *snapshot.State) (res Result, err error) {
	// The restore validation is meant to be exhaustive, but a panic from a
	// hostile snapshot must still surface as a typed error, not kill the
	// process.
	defer func() {
		if r := recover(); r != nil {
			res = Result{}
			err = fmt.Errorf("%w: %v", ErrInvalidState, r)
		}
	}()
	s, err := restoreSearcher(spec, opts, st)
	if err != nil {
		return Result{}, err
	}
	s.done = ctx.Done()
	// A resume never short-circuits through the answer cache (the caller
	// asked to continue this checkpoint), but its verified result is
	// still offered back so later equivalent requests hit.
	return cacheStore(cacheProbeFor(spec, &opts), &opts, verifyGate(spec, &opts, s.runEngine())), nil
}

// ResumePermContext is ResumeContext for a function given as a permutation.
func ResumePermContext(ctx context.Context, p perm.Perm, opts Options, path string) (Result, error) {
	spec, err := pprm.FromPerm(p)
	if err != nil {
		return Result{}, err
	}
	return ResumeContext(ctx, spec, opts, path)
}
