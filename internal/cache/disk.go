package cache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/bits"
	"repro/internal/canon"
	"repro/internal/circuit"
	"repro/internal/perm"
)

// On-disk entry format, one file per (class, fingerprint) key:
//
//	magic   "RMAC"            4 bytes
//	version 1                 1 byte
//	crc32   IEEE of payload   4 bytes little-endian
//	payload:
//	  n        1 byte                      variables
//	  rep      2^n × uint32 little-endian  class representative
//	  wires    n × 1 byte                  member→rep relabeling
//	  polarity uint32 little-endian        member→rep polarity mask
//	  gates    uint32 little-endian        gate count
//	  each gate: target 1 byte, controls uint32 little-endian
//
// The name in the directory is the key ("<class>-<fingerprint>.rmce" in
// hex), so lookups are a single stat/read with no index file to maintain
// — the store is content-addressed by construction. Any deviation from
// the format (short file, bad magic, version skew, CRC mismatch,
// structurally invalid payload) decodes to ErrCorruptEntry and reads as a
// cache miss.

const (
	entryMagic   = "RMAC"
	entryVersion = 1
	entryExt     = ".rmce"
)

// ErrCorruptEntry reports an unreadable persistent cache entry. It is
// always handled inside the cache (drop + miss); the type exists so tests
// can assert the classification.
var ErrCorruptEntry = errors.New("cache: corrupt entry")

func encodeEntry(e *entry) []byte {
	n := len(e.to.Wires)
	size := 4 + 1 + 4 + 1 + 4*len(e.rep) + n + 4 + 4 + 5*len(e.circ.Gates)
	buf := make([]byte, 0, size)
	buf = append(buf, entryMagic...)
	buf = append(buf, entryVersion)
	buf = append(buf, 0, 0, 0, 0) // CRC placeholder
	buf = append(buf, byte(n))
	for _, v := range e.rep {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	for _, w := range e.to.Wires {
		buf = append(buf, byte(w))
	}
	buf = binary.LittleEndian.AppendUint32(buf, e.to.Polarity)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.circ.Gates)))
	for _, g := range e.circ.Gates {
		buf = append(buf, byte(g.Target))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Controls))
	}
	binary.LittleEndian.PutUint32(buf[5:9], crc32.ChecksumIEEE(buf[9:]))
	return buf
}

func decodeEntry(data []byte) (*entry, error) {
	if len(data) < 9 || string(data[:4]) != entryMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptEntry)
	}
	if data[4] != entryVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorruptEntry, data[4], entryVersion)
	}
	payload := data[9:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[5:9]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptEntry)
	}
	r := reader{data: payload}
	n := int(r.byte())
	if r.err != nil || !Cacheable(n) {
		return nil, fmt.Errorf("%w: bad variable count", ErrCorruptEntry)
	}
	rep := make(perm.Perm, 1<<uint(n))
	for i := range rep {
		rep[i] = r.uint32()
	}
	wires := make([]int, n)
	for i := range wires {
		wires[i] = int(r.byte())
	}
	to := canon.Transform{Wires: wires, Polarity: r.uint32()}
	gates := int(r.uint32())
	if r.err != nil || gates < 0 || len(r.data)-r.off != 5*gates {
		return nil, fmt.Errorf("%w: bad gate table", ErrCorruptEntry)
	}
	circ := circuit.New(n)
	for i := 0; i < gates; i++ {
		g := circuit.Gate{Target: int(r.byte())}
		g.Controls = bits.Mask(r.uint32())
		circ.Append(g)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrCorruptEntry)
	}
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptEntry, err)
	}
	if err := to.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptEntry, err)
	}
	if err := circ.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptEntry, err)
	}
	return &entry{rep: rep, to: to, circ: circ}, nil
}

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) byte() byte {
	if r.err != nil || r.off >= len(r.data) {
		r.err = ErrCorruptEntry
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *reader) uint32() uint32 {
	if r.err != nil || r.off+4 > len(r.data) {
		r.err = ErrCorruptEntry
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}
