package pprm

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/perm"
	"repro/internal/rng"
)

// recomputedHash is the from-scratch reference for the incremental hash.
func recomputedHash(ts *TermSet) uint64 {
	var h uint64
	for _, t := range ts.Terms() {
		h ^= termHash(t)
	}
	return h
}

func TestHashIncrementalMatchesRecomputed(t *testing.T) {
	src := rng.New(11)
	var ts TermSet
	for i := 0; i < 2000; i++ {
		ts.Toggle(bits.Mask(src.Intn(64)))
		if got, want := ts.Hash(), recomputedHash(&ts); got != want {
			t.Fatalf("after %d toggles: hash %#x, recomputed %#x", i+1, got, want)
		}
	}
}

func TestHashThroughSubstitute(t *testing.T) {
	src := rng.New(12)
	for trial := 0; trial < 50; trial++ {
		p := perm.Random(4, src)
		s, err := FromPerm(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s.Out {
			if got, want := s.Out[i].Hash(), recomputedHash(&s.Out[i]); got != want {
				t.Fatalf("FromPerm out %d: hash %#x, recomputed %#x", i, got, want)
			}
		}
		// Random in-place substitutions keep the incremental hash exact.
		for step := 0; step < 20; step++ {
			target := src.Intn(4)
			factor := bits.Mask(src.Intn(16)) &^ bits.Bit(target)
			s.Substitute(target, factor)
			for i := range s.Out {
				if got, want := s.Out[i].Hash(), recomputedHash(&s.Out[i]); got != want {
					t.Fatalf("step %d out %d: hash %#x, recomputed %#x", step, i, got, want)
				}
			}
		}
	}
}

func TestSubstituteProbeMatchesSubstituteCopy(t *testing.T) {
	src := rng.New(13)
	var scratch []bits.Mask
	for trial := 0; trial < 50; trial++ {
		s, err := FromPerm(perm.Random(4, src))
		if err != nil {
			t.Fatal(err)
		}
		for target := 0; target < 4; target++ {
			for factor := bits.Mask(0); factor < 16; factor++ {
				if factor&bits.Bit(target) != 0 {
					continue
				}
				var delta int
				var hash uint64
				delta, hash, scratch = s.SubstituteProbe(target, factor, scratch)
				child, wantDelta := s.SubstituteCopy(target, factor)
				if delta != wantDelta {
					t.Fatalf("probe delta %d, copy delta %d (target %d factor %s)",
						delta, wantDelta, target, bits.TermString(factor))
				}
				if hash != child.Hash() {
					t.Fatalf("probe hash %#x, copy hash %#x (target %d factor %s)",
						hash, child.Hash(), target, bits.TermString(factor))
				}
			}
		}
	}
}

func TestSpecHashPositionDependent(t *testing.T) {
	// v0'=a, v1'=b vs. the swap v0'=b, v1'=a: same multiset of TermSets on
	// different outputs must hash differently.
	id := Identity(2)
	swap := NewSpec(2)
	swap.Out[0].Toggle(bits.Bit(1))
	swap.Out[1].Toggle(bits.Bit(0))
	if id.Hash() == swap.Hash() {
		t.Fatalf("identity and swap hash identically: %#x", id.Hash())
	}
}

func TestSpecHashEqualSpecsAgree(t *testing.T) {
	src := rng.New(14)
	s, err := FromPerm(perm.Random(4, src))
	if err != nil {
		t.Fatal(err)
	}
	// A clone built by a completely different toggle order hashes equally.
	rebuilt := NewSpec(4)
	for i := range s.Out {
		terms := append([]bits.Mask(nil), s.Out[i].Terms()...)
		for _, j := range src.Perm(len(terms)) {
			rebuilt.Out[i].Toggle(terms[j])
		}
	}
	if !s.Equal(rebuilt) {
		t.Fatal("rebuilt spec differs")
	}
	if s.Hash() != rebuilt.Hash() {
		t.Fatalf("equal specs hash differently: %#x vs %#x", s.Hash(), rebuilt.Hash())
	}
}

func TestEqualAllocationFree(t *testing.T) {
	a := NewTermSet(0b011, 0b101, 0b110, 0b001)
	b := a.Clone()
	c := NewTermSet(0b011, 0b101, 0b111) // different hash
	if !a.Equal(&b) || a.Equal(&c) {
		t.Fatal("Equal gives wrong answers")
	}
	if n := testing.AllocsPerRun(100, func() {
		if !a.Equal(&b) {
			t.Fatal("equal sets reported unequal")
		}
	}); n != 0 {
		t.Fatalf("Equal on equal sets allocates %v times per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if a.Equal(&c) {
			t.Fatal("unequal sets reported equal")
		}
	}); n != 0 {
		t.Fatalf("Equal hash fast path allocates %v times per run", n)
	}
}

func TestSortedCacheInvalidation(t *testing.T) {
	ts := NewTermSet(0b111, 0b001, 0b110)
	first := ts.Sorted()
	if &first[0] != &ts.Sorted()[0] {
		t.Fatal("Sorted does not cache between calls")
	}
	ts.Toggle(0b010)
	second := ts.Sorted()
	if len(second) != 4 {
		t.Fatalf("Sorted after Toggle has %d terms, want 4", len(second))
	}
	// The pre-mutation snapshot must be untouched (clones may share it).
	if len(first) != 3 || first[0] != 0b001 {
		t.Fatalf("pre-mutation Sorted slice mutated: %v", first)
	}

	// A clone shares the built cache until either side mutates.
	cl := ts.Clone()
	if &cl.Sorted()[0] != &ts.Sorted()[0] {
		t.Fatal("Clone does not share the built cache")
	}
	cl.Toggle(0b001) // removes a term from the clone only
	if len(ts.Sorted()) != 4 || len(cl.Sorted()) != 3 {
		t.Fatalf("cache sharing leaked a mutation: parent %d terms, clone %d",
			len(ts.Sorted()), len(cl.Sorted()))
	}
}
