package obs

import (
	"time"
)

// Publisher samples a Run tree on a wall-clock interval and fans the
// derived snapshots out to its sinks: the aggregate snapshot always, plus
// one per child Run (portfolio variants, sweep rows) so concurrent
// searches report individually. It owns one goroutine between Start and
// Stop; Stop emits a final snapshot set — so sinks always see the finished
// state — and closes the sinks.
type Publisher struct {
	run      *Run
	sinks    []Sink
	interval time.Duration

	// rate memory: per-label previous (time, steps) for StepsPerSec.
	prev map[string]ratePoint

	stop chan struct{}
	done chan struct{}
}

type ratePoint struct {
	nano  int64
	steps int64
}

// DefaultInterval is the snapshot cadence when none is given.
const DefaultInterval = time.Second

// NewPublisher builds a Publisher over run emitting to sinks every
// interval (DefaultInterval when interval <= 0). Nil sinks are dropped.
func NewPublisher(run *Run, interval time.Duration, sinks ...Sink) *Publisher {
	if interval <= 0 {
		interval = DefaultInterval
	}
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	return &Publisher{
		run:      run,
		sinks:    kept,
		interval: interval,
		prev:     make(map[string]ratePoint),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the sampling goroutine. It must be balanced by exactly one
// Stop.
func (p *Publisher) Start() {
	go func() {
		defer close(p.done)
		ticker := time.NewTicker(p.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				p.publish(time.Now())
			case <-p.stop:
				return
			}
		}
	}()
}

// Stop halts sampling, emits one final snapshot set (so the last thing every
// sink sees is the finished state — Done, stop reason, final best circuit),
// and closes the sinks. It blocks until the goroutine has exited.
func (p *Publisher) Stop() {
	close(p.stop)
	<-p.done
	p.publish(time.Now())
	for _, s := range p.sinks {
		s.Close()
	}
}

// publish derives and emits the current snapshot set.
func (p *Publisher) publish(now time.Time) {
	snaps := append([]ProgressSnapshot{p.run.Snapshot(now)}, p.run.ChildSnapshots(now)...)
	for i := range snaps {
		p.fillRate(&snaps[i], now)
	}
	for _, sink := range p.sinks {
		for _, snap := range snaps {
			sink.Emit(snap)
		}
	}
}

// fillRate computes StepsPerSec against the previous sample of the same
// label.
func (p *Publisher) fillRate(s *ProgressSnapshot, now time.Time) {
	key := s.Label
	if s.Aggregate {
		key = "\x00aggregate\x00" + key // a child may share the root's label
	}
	if prev, ok := p.prev[key]; ok {
		if dt := float64(now.UnixNano()-prev.nano) / 1e9; dt > 0 && s.Steps >= prev.steps {
			s.StepsPerSec = float64(s.Steps-prev.steps) / dt
		}
	}
	p.prev[key] = ratePoint{nano: now.UnixNano(), steps: s.Steps}
}
