// Package peephole implements local optimization of Toffoli cascades in
// the spirit of Shende et al.'s "Scalable simplification of reversible
// circuits" (reference [17] of the paper): sliding windows of consecutive
// gates whose combined support fits on three wires are replaced by a
// provably minimal realization from the exhaustive-BFS table of
// internal/optimal.
//
// Unlike template matching, window resynthesis is trivially sound — every
// replacement is checked to realize the same function on the window's
// support — and it is optimal *within the window*. The paper applies no
// such post-processing to its own numbers (it cites templates as other
// authors' work), so the experiment drivers do not use this package; it is
// provided as the natural extension for downstream users.
package peephole

import (
	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/optimal"
	"repro/internal/perm"
)

// Optimizer caches the optimal-synthesis table.
type Optimizer struct {
	table *optimal.Table
	// MaxWindow bounds the number of consecutive gates considered
	// (default 8).
	MaxWindow int
}

// New builds an Optimizer (computing the 3-variable BFS table once,
// ~100 ms).
func New() *Optimizer {
	return &Optimizer{table: optimal.Distances(optimal.NCT), MaxWindow: 8}
}

// Optimize repeatedly replaces reducible windows until a fixed point,
// returning a new circuit computing the same function with at most as many
// gates.
func (o *Optimizer) Optimize(c *circuit.Circuit) *circuit.Circuit {
	gates := append([]circuit.Gate(nil), c.Gates...)
	for {
		gates2, changed := o.pass(c.Wires, gates)
		gates = gates2
		if !changed {
			break
		}
	}
	out := circuit.New(c.Wires)
	out.Gates = gates
	return out
}

// pass performs one left-to-right scan, applying every profitable window
// replacement it finds. After splicing a replacement in, the scan resumes
// just before the replaced window — the replacement's head may cancel
// against the preceding gate — instead of restarting from gate 0, which
// made long cascades quadratic in the number of replacements. The scan
// terminates because every replacement strictly shrinks the cascade.
func (o *Optimizer) pass(wires int, gates []circuit.Gate) ([]circuit.Gate, bool) {
	maxw := o.MaxWindow
	if maxw <= 0 {
		maxw = 8
	}
	changed := false
	for i := 0; i < len(gates); i++ {
		var support bits.Mask
		for j := i; j < len(gates) && j < i+maxw; j++ {
			support |= gates[j].Controls | bits.Bit(gates[j].Target)
			if bits.Count(support) > 3 {
				break
			}
			windowLen := j - i + 1
			if windowLen < 2 {
				continue
			}
			repl, ok := o.resynth(wires, gates[i:j+1], support)
			if ok && len(repl) < windowLen {
				// Build the replacement's tail first so the in-place splice
				// below cannot read gates it already overwrote.
				rest := append(append([]circuit.Gate{}, repl...), gates[j+1:]...)
				gates = append(gates[:i], rest...)
				changed = true
				// Resume one gate before the window (the loop's i++ lands
				// on i-1; clamp so it lands on 0 at the cascade's start).
				if i -= 2; i < -1 {
					i = -1
				}
				break
			}
		}
	}
	return gates, changed
}

// resynth maps the window onto wires {0,1,2}, asks the optimal table for a
// minimal realization, and maps the result back. The support is padded
// with idle wires up to three, because a minimal realization may use a
// wire the window does not (e.g. as routing for a swap).
func (o *Optimizer) resynth(wires int, window []circuit.Gate, support bits.Mask) ([]circuit.Gate, bool) {
	vars := bits.Vars(support)
	for w := 0; w < wires && len(vars) < 3; w++ {
		if !bits.Has(support, w) {
			vars = append(vars, w)
		}
	}
	if len(vars) < 3 && len(vars) < wires {
		return nil, false
	}
	toLocal := map[int]int{}
	for li, v := range vars {
		toLocal[v] = li
	}
	local := circuit.New(3)
	for _, g := range window {
		lg := circuit.Gate{Target: toLocal[g.Target]}
		for _, cv := range bits.Vars(g.Controls) {
			lg.Controls |= bits.Bit(toLocal[cv])
		}
		local.Append(lg)
	}
	// Pad missing wires: the window function on unused local wires is the
	// identity, which the table handles naturally.
	p := local.Perm()
	min, err := o.table.Circuit(perm.Perm(p))
	if err != nil {
		return nil, false
	}
	repl := make([]circuit.Gate, 0, min.Len())
	for _, g := range min.Gates {
		if g.Target >= len(vars) {
			return nil, false // realization needs a wire the circuit lacks
		}
		rg := circuit.Gate{Target: vars[g.Target]}
		for _, cv := range bits.Vars(g.Controls) {
			if cv >= len(vars) {
				return nil, false
			}
			rg.Controls |= bits.Bit(vars[cv])
		}
		repl = append(repl, rg)
	}
	return repl, true
}
