package serve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
)

// worker is one pool goroutine: dequeue, execute, repeat until drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.Dequeue()
		if !ok {
			return
		}
		s.execute(j)
	}
}

// execute runs one job to a terminal state. The per-job deadline is
// enforced twice: the engine's own TimeLimit stops the search with
// StopDeadline, and a slightly larger context deadline backstops it (and
// any injected test runner) so a wedged run cannot hold the worker past its
// budget. Panics from the runner seam are isolated into a failed job, never
// a dead worker.
func (s *Server) execute(j *Job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	j.markRunning(time.Now())

	ctx := s.drainCtx
	if tl := j.opts.TimeLimit; tl > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, tl+5*time.Second)
		defer cancel()
	}

	res := s.invoke(ctx, j)

	// A drain cancellation is not a terminal outcome: when the stop is
	// resumable and a checkpoint directory is configured, the engine has
	// already flushed the final snapshot — park the job for the ledger.
	if s.draining.Load() && res.Err == nil && res.StopReason == core.StopCanceled && s.cfg.StateDir != "" {
		s.stats.interrupted.Add(1)
		j.mu.Lock()
		j.status = StatusInterrupted
		j.res = res
		j.mu.Unlock()
		select {
		case <-j.done:
		default:
			close(j.done)
		}
		return
	}

	if res.Err != nil {
		s.stats.failed.Add(1)
		j.finish(StatusFailed, res, nil, res.Err.Error(), time.Now())
		s.removeCheckpoint(j)
		return
	}

	// Verify found circuits against the tabulated function when feasible;
	// a verification failure is an engine bug surfaced as a failed job, not
	// a wrong answer handed to the client.
	var verified *bool
	if res.Found && res.Circuit != nil && j.fperm != nil && j.spec.N <= 22 {
		v := true
		if err := core.Verify(res.Circuit, j.fperm); err != nil {
			s.stats.failed.Add(1)
			j.finish(StatusFailed, res, &v, fmt.Sprintf("verification failed: %v", err), time.Now())
			s.removeCheckpoint(j)
			return
		}
		verified = &v
	}
	s.stats.completed.Add(1)
	j.finish(StatusDone, res, verified, "", time.Now())
	s.removeCheckpoint(j)
}

// invoke runs the configured runner (the real engine by default) with
// panic isolation.
func (s *Server) invoke(ctx context.Context, j *Job) (res core.Result) {
	defer func() {
		if r := recover(); r != nil {
			res = core.Result{
				StopReason: core.StopInternalError,
				Err:        fmt.Errorf("serve: job runner panicked: %v", r),
			}
		}
	}()
	if s.cfg.Runner != nil {
		return s.cfg.Runner(ctx, j)
	}
	return s.realRun(ctx, j)
}

// realRun executes the job on the RMRLS engine: checkpointing into the
// state directory when one is configured, resuming from a recovered drain
// checkpoint when present, and degrading a broken checkpoint to a fresh
// start (the resume contract: every resume error means "start fresh").
func (s *Server) realRun(ctx context.Context, j *Job) core.Result {
	opts := j.opts
	opts.Observe = j.run
	if s.cfg.StateDir != "" {
		opts.Checkpoint = core.Checkpoint{
			Path:       s.checkpointPath(j),
			Interval:   s.cfg.CheckpointInterval,
			EverySteps: s.cfg.CheckpointEverySteps,
			FS:         s.cfg.FS,
		}
	}
	if st := j.resume; st != nil {
		j.resume = nil
		res, err := core.ResumeStateContext(ctx, j.spec, opts, st)
		if err == nil {
			j.mu.Lock()
			j.resumed = true
			j.mu.Unlock()
			return res
		}
		j.mu.Lock()
		j.note = fmt.Sprintf("checkpoint unusable (%v); restarted fresh", err)
		j.mu.Unlock()
	}
	return core.SynthesizeContext(ctx, j.spec, opts)
}
