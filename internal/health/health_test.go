package health

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/snapshot"
)

// clock is a manually advanced test clock.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1000, 0)} }

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testCfg(c *clock) Config {
	return Config{Threshold: 3, BaseBackoff: time.Second, MaxBackoff: 8 * time.Second, NoJitter: true, Now: c.now}
}

var errDisk = errors.New("boom: input/output error")

func TestBreakerTripsAfterThresholdConsecutiveFailures(t *testing.T) {
	ck := newClock()
	b := NewBreaker("cache", testCfg(ck))

	// Two failures, then a success: the streak resets, no trip.
	b.Record(errDisk)
	b.Record(errDisk)
	b.Record(nil)
	for i := 0; i < 2; i++ {
		b.Record(errDisk)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after interleaved successes = %v, want closed", got)
	}
	// The third consecutive failure trips it.
	b.Record(errDisk)
	if got := b.State(); got != Open {
		t.Fatalf("state after %d consecutive failures = %v, want open", 3, got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed an operation before the backoff expired")
	}
	v := b.View()
	if v.Trips != 1 || v.Rejections != 1 {
		t.Errorf("view = %+v, want trips=1 rejections=1", v)
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	ck := newClock()
	b := NewBreaker("ckpt", testCfg(ck))
	for i := 0; i < 3; i++ {
		b.Record(errDisk)
	}
	if b.Allow() {
		t.Fatal("probe admitted before backoff")
	}
	ck.advance(time.Second) // backoff expired
	if !b.Allow() {
		t.Fatal("probe not admitted after backoff")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second probe admitted immediately")
	}
	b.Record(nil)
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected an operation")
	}
	if v := b.View(); v.Recoveries != 1 || v.Probes != 1 {
		t.Errorf("view = %+v, want recoveries=1 probes=1", v)
	}
}

func TestBreakerFailedProbeDoublesBackoffUpToCap(t *testing.T) {
	ck := newClock()
	b := NewBreaker("ledger", testCfg(ck))
	for i := 0; i < 3; i++ {
		b.Record(errDisk)
	}
	// Backoffs double 1s → 2s → 4s → 8s → 8s (cap).
	for _, want := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second} {
		// Just before the window expires the probe is rejected.
		ck.advance(want - time.Millisecond)
		if b.Allow() {
			t.Fatalf("probe admitted %v into a %v window", want-time.Millisecond, want)
		}
		ck.advance(time.Millisecond)
		if !b.Allow() {
			t.Fatalf("probe rejected after the %v window", want)
		}
		b.Record(errDisk) // probe fails, window doubles
	}
	if v := b.View(); v.Reopens != 5 || v.Trips != 1 {
		t.Errorf("view = %+v, want reopens=5 trips=1", v)
	}
}

func TestBreakerDoFastFailsWithTypedError(t *testing.T) {
	ck := newClock()
	b := NewBreaker("quarantine", testCfg(ck))
	for i := 0; i < 3; i++ {
		b.Do(func() error { return errDisk })
	}
	ran := false
	err := b.Do(func() error { ran = true; return nil })
	if ran {
		t.Fatal("Do ran the operation through an open breaker")
	}
	var eo *ErrOpen
	if !errors.As(err, &eo) || eo.Domain != "quarantine" {
		t.Fatalf("err = %v, want *ErrOpen for quarantine", err)
	}
	if !IsOpen(err) {
		t.Errorf("IsOpen(%v) = false", err)
	}
	// Recording the rejection must not extend the outage bookkeeping.
	before := b.View().Failures
	b.Record(err)
	if got := b.View().Failures; got != before {
		t.Errorf("ErrOpen was recorded as a failure (%d → %d)", before, got)
	}
}

func TestSupervisorReadyAndViews(t *testing.T) {
	ck := newClock()
	s := NewSupervisor()
	cacheDom := s.Register("cache", false, testCfg(ck))
	stateDom := s.Register("checkpoint", true, testCfg(ck))

	if ok, _ := s.Ready(); !ok {
		t.Fatal("fresh supervisor not ready")
	}
	for i := 0; i < 3; i++ {
		cacheDom.Record(errDisk)
	}
	// An optional domain tripping degrades but does not gate readiness.
	if ok, _ := s.Ready(); !ok {
		t.Fatal("optional open domain gated readiness")
	}
	if !s.Degraded() {
		t.Fatal("supervisor not degraded with an open domain")
	}
	for i := 0; i < 3; i++ {
		stateDom.Record(errDisk)
	}
	ok, name := s.Ready()
	if ok || name != "checkpoint" {
		t.Fatalf("Ready = %v/%q, want false/checkpoint", ok, name)
	}
	views := s.Views()
	if len(views) != 2 || views[0].Name != "cache" || views[1].Name != "checkpoint" {
		t.Fatalf("views = %+v, want cache then checkpoint", views)
	}
	if views[1].State != "open" || !views[1].Required {
		t.Errorf("checkpoint view = %+v, want open+required", views[1])
	}
	// Re-registering is idempotent and required is sticky.
	if got := s.Register("cache", true, testCfg(ck)); got != cacheDom {
		t.Error("Register re-created an existing domain")
	}
	if v := s.Domain("cache").View(); !v.Required {
		t.Error("required did not stick on re-register")
	}
}

func TestBreakerJitterStaysInsideWindow(t *testing.T) {
	ck := newClock()
	cfg := testCfg(ck)
	cfg.NoJitter = false
	b := NewBreaker("jitter", cfg)
	for i := 0; i < 3; i++ {
		b.Record(errDisk)
	}
	// The jittered window is within [½w, w]; a full base-backoff always
	// admits the probe.
	if b.Allow() && ck.now().Before(b.View().viewNextProbe(ck.now())) {
		t.Fatal("probe admitted before any plausible jittered window")
	}
	ck.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected after the full backoff window")
	}
}

// viewNextProbe reconstructs the earliest plausible probe time from a view.
func (v View) viewNextProbe(now time.Time) time.Time {
	return now.Add(time.Duration(v.RetryInMillis) * time.Millisecond)
}

// failFS is a snapshot.FS whose write path always fails.
type failFS struct{ err error }

func (f *failFS) CreateTemp(dir, pattern string) (snapshot.File, error) { return nil, f.err }
func (f *failFS) Rename(oldpath, newpath string) error                  { return f.err }
func (f *failFS) Remove(name string) error                              { return f.err }
func (f *failFS) SyncDir(dir string) error                              { return f.err }
func (f *failFS) ReadFile(name string) ([]byte, error)                  { return nil, f.err }

func TestGuardFSWholeWriteIsOneOutcome(t *testing.T) {
	ck := newClock()
	b := NewBreaker("store", testCfg(ck))
	dir := t.TempDir()
	g := GuardFS(nil, b)

	// Three successful atomic writes: one success each, streak clean.
	for i := 0; i < 3; i++ {
		if err := snapshot.WriteRaw(g, fmt.Sprintf("%s/f%d", dir, i), []byte("data")); err != nil {
			t.Fatalf("WriteRaw: %v", err)
		}
	}
	if v := b.View(); v.Successes != 3 || v.Failures != 0 {
		t.Fatalf("after 3 writes: %+v, want successes=3 failures=0", v)
	}

	// Persistent failure: each failed write is one failure; the third
	// trips the domain, and the fourth write does not reach the device.
	bad := GuardFS(&failFS{err: errDisk}, b)
	for i := 0; i < 3; i++ {
		if err := snapshot.WriteRaw(bad, dir+"/x", []byte("data")); err == nil {
			t.Fatal("write through failing FS succeeded")
		}
	}
	if got := b.State(); got != Open {
		t.Fatalf("state after 3 failed writes = %v, want open", got)
	}
	err := snapshot.WriteRaw(bad, dir+"/x", []byte("data"))
	if !IsOpen(err) {
		t.Fatalf("write through open domain = %v, want *ErrOpen", err)
	}

	// After the backoff, one probe goes through the (healed) real disk
	// and the domain re-closes.
	ck.advance(time.Second)
	if err := snapshot.WriteRaw(g, dir+"/probe", []byte("data")); err != nil {
		t.Fatalf("probe write: %v", err)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
}

func TestGuardFSReadFileNotExistIsSuccess(t *testing.T) {
	ck := newClock()
	b := NewBreaker("reads", testCfg(ck))
	g := GuardFS(nil, b)
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		if _, err := g.ReadFile(dir + "/missing"); err == nil {
			t.Fatal("reading a missing file succeeded")
		}
	}
	if got := b.State(); got != Closed {
		t.Fatalf("missing files tripped the breaker (state %v)", got)
	}
	if v := b.View(); v.Failures != 0 {
		t.Errorf("missing files recorded as failures: %+v", v)
	}
}

func TestGuardFSRemoveIsUngated(t *testing.T) {
	ck := newClock()
	b := NewBreaker("rm", testCfg(ck))
	for i := 0; i < 3; i++ {
		b.Record(errDisk)
	}
	dir := t.TempDir()
	g := GuardFS(nil, b)
	// Remove still reaches the device while the domain is open, and its
	// error (file does not exist) is not recorded.
	_ = g.Remove(dir + "/never-existed")
	if v := b.View(); v.Failures != 3 {
		t.Errorf("Remove outcome was recorded: %+v", v)
	}
}
