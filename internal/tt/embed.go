package tt

import (
	"fmt"
	"math/bits"
)

// Embedding records how an irreversible table was lifted to a reversible
// specification.
//
// The garbage outputs are chosen to be copies of inputs wherever that
// suffices to disambiguate repeated output vectors: a copied input stays
// on its own wire, so the corresponding expansion is already the identity
// and the synthesizer only has to build the real outputs. This mirrors the
// hand-crafted specifications used in the literature (e.g. the rd53
// specification of Miller & Dueck keeps four inputs as garbage); the paper
// itself notes that choosing the garbage assignment is an open problem.
// When input copies cannot disambiguate within the available width, the
// remaining garbage bits hold an occurrence index.
type Embedding struct {
	// Wires is the width of the reversible function.
	Wires int
	// GarbageOutputs is the number of non-original outputs (input copies
	// plus occurrence-index bits).
	GarbageOutputs int
	// ConstantInputs is the number of inputs added to balance the wire
	// count; they occupy the high wires and must be driven with 0.
	ConstantInputs int
	// CopiedInputs lists the inputs replicated to garbage outputs (each
	// stays on its own wire).
	CopiedInputs []int
	// OutputWires[j] is the wire carrying original output j.
	OutputWires []int
	// Spec is the reversible function, as a permutation on 2^Wires values.
	Spec []uint32
}

// OriginalOutput extracts the original function's output vector from a
// reversible output value produced by the embedding.
func (e *Embedding) OriginalOutput(y uint32) uint32 {
	var out uint32
	for j, w := range e.OutputWires {
		out |= (y >> uint(w) & 1) << uint(j)
	}
	return out
}

// Embed converts the table into a reversible specification following the
// paper's recipe (Section II-A): ⌈log2 p⌉ garbage outputs disambiguate the
// most frequent output vector's p occurrences, and constant inputs balance
// the wire count. The width is always the minimum the recipe allows:
// max(inputs, outputs + ⌈log2 p⌉).
func Embed(t *Table) (*Embedding, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	p := t.MaxMultiplicity()
	g0 := 0
	if p > 1 {
		g0 = bits.Len(uint(p - 1)) // ⌈log2 p⌉
	}
	wires := t.Outputs + g0
	if t.Inputs > wires {
		wires = t.Inputs
	}
	if wires > 30 {
		return nil, fmt.Errorf("tt: embedding needs %d wires (unsupported)", wires)
	}
	g := wires - t.Outputs

	copied, occBits := chooseGarbage(t, g)
	return build(t, wires, copied, occBits)
}

// chooseGarbage picks the largest set of input copies that, together with
// occBits occurrence-index bits, disambiguates every output class. k = 0
// with occBits = g always works because 2^g ≥ p.
func chooseGarbage(t *Table, g int) (copied []int, occBits int) {
	maxK := g
	if t.Inputs < maxK {
		maxK = t.Inputs
	}
	for k := maxK; k >= 1; k-- {
		budget := 1 << uint(g-k)
		if s, ok := findSubset(t, k, budget); ok {
			return s, g - k
		}
	}
	return nil, g
}

// findSubset searches (bounded) for k inputs whose values, joined with the
// output vector, split the rows into classes of size ≤ budget.
func findSubset(t *Table, k, budget int) ([]int, bool) {
	const maxTries = 8192
	tries := 0
	// Enumerate k-subsets of {0,…,Inputs−1} in lexicographic order.
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	counts := make(map[uint64]int)
	for {
		tries++
		if tries > maxTries {
			return nil, false
		}
		var mask uint32
		for _, i := range idx {
			mask |= 1 << uint(i)
		}
		clear(counts)
		ok := true
		for x, y := range t.Rows {
			key := uint64(y)<<32 | uint64(uint32(x)&mask)
			counts[key]++
			if counts[key] > budget {
				ok = false
				break
			}
		}
		if ok {
			return append([]int(nil), idx...), true
		}
		// Next combination.
		i := k - 1
		for i >= 0 && idx[i] == t.Inputs-k+i {
			i--
		}
		if i < 0 {
			return nil, false
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// xorFillValid reports whether XORing the constant-input pattern onto the
// high output wires yields a permutation: true iff the low `inputs` bits
// of the real rows' codes are pairwise distinct within each high-bit
// pattern — equivalently, no two real codes differ only in bits ≥ inputs.
func xorFillValid(realCodes []uint32, inputs, wires int) bool {
	if inputs == wires {
		return true // no constant rows to fill
	}
	low := uint32(1)<<uint(inputs) - 1
	seen := make(map[uint32]uint32, len(realCodes))
	for _, y := range realCodes {
		if prev, ok := seen[y&low]; ok && prev != y {
			return false
		}
		seen[y&low] = y
	}
	return true
}

// build lays out the reversible specification: copied inputs stay on their
// own wires; original outputs and occurrence bits take the remaining wires
// in ascending order (outputs first).
func build(t *Table, wires int, copied []int, occBits int) (*Embedding, error) {
	isCopied := make([]bool, wires)
	for _, i := range copied {
		isCopied[i] = true
	}
	var free []int
	for w := 0; w < wires; w++ {
		if !isCopied[w] {
			free = append(free, w)
		}
	}
	if len(free) != t.Outputs+occBits {
		return nil, fmt.Errorf("tt: internal layout mismatch (%d free wires, need %d)",
			len(free), t.Outputs+occBits)
	}
	outputWires := free[:t.Outputs]
	occWires := free[t.Outputs:]

	var copyMask uint32
	for _, i := range copied {
		copyMask |= 1 << uint(i)
	}

	size := 1 << uint(wires)
	spec := make([]uint32, size)
	used := make([]bool, size)
	occ := make(map[uint64]uint32, len(t.Rows))

	for x, y := range t.Rows {
		code := uint32(x) & copyMask
		for j, w := range outputWires {
			code |= (y >> uint(j) & 1) << uint(w)
		}
		key := uint64(y)<<32 | uint64(uint32(x)&copyMask)
		k := occ[key]
		occ[key] = k + 1
		for b, w := range occWires {
			code |= (k >> uint(b) & 1) << uint(w)
		}
		if int(code) >= size || used[code] {
			return nil, fmt.Errorf("tt: internal embedding collision at row %d", x)
		}
		spec[x] = code
		used[code] = true
	}

	// Fill the remaining rows (constant inputs driven non-zero).
	// Preferred scheme: row (c, x) ← spec(x) ⊕ (c << inputs), which keeps
	// the constant wires near-linear — the paper's own Fig. 2(b) fill is
	// exactly this. It is valid iff no two real codes differ only in the
	// high bits; otherwise fall back to ascending unused codes.
	if xorFillValid(spec[:len(t.Rows)], t.Inputs, wires) {
		for x := len(t.Rows); x < size; x++ {
			c := uint32(x) >> uint(t.Inputs)
			spec[x] = spec[x&(len(t.Rows)-1)] ^ c<<uint(t.Inputs)
		}
	} else {
		next := 0
		for x := len(t.Rows); x < size; x++ {
			for used[next] {
				next++
			}
			spec[x] = uint32(next)
			used[next] = true
		}
	}

	return &Embedding{
		Wires:          wires,
		GarbageOutputs: len(copied) + occBits,
		ConstantInputs: wires - t.Inputs,
		CopiedInputs:   copied,
		OutputWires:    outputWires,
		Spec:           spec,
	}, nil
}
