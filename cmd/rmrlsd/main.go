// Command rmrlsd serves reversible-logic synthesis over HTTP: a bounded
// job queue with interactive/batch priority classes, per-request budgets
// clamped against server-wide ceilings, a fixed worker pool running the
// RMRLS engine, and graceful checkpointing drain.
//
// Usage:
//
//	rmrlsd -addr :8053 -workers 4 -state /var/lib/rmrlsd
//
// API (see docs/SERVICE.md for the full contract):
//
//	POST /v1/jobs            submit a synthesis job (idempotent; ?wait blocks)
//	GET  /v1/jobs/{id}        job status and result
//	GET  /v1/jobs/{id}/stream JSON-lines progress until the job finishes
//	GET  /v1/healthz          liveness, queue depths, counters
//
// A full queue sheds with 429 + Retry-After; nothing queues unboundedly.
// On SIGTERM/SIGINT the server stops intake (503), cancels running
// searches — each flushes a crash-safe checkpoint into -state — and writes
// a ledger of unfinished jobs; the next start resumes them exactly where
// they left off. A second signal forces exit with status 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], sig, os.Stdout, os.Stderr))
}

// run is main's testable body: parse flags, start the server, block until a
// shutdown signal, drain, and return the process exit code.
func run(args []string, sig chan os.Signal, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rmrlsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8053", "host:port to serve the synthesis API on")
		workers  = fs.Int("workers", 2, "worker-pool size (concurrent syntheses)")
		queueInt = fs.Int("queue-interactive", 64, "interactive-class queue capacity")
		queueBat = fs.Int("queue-batch", 256, "batch-class queue capacity")

		maxTime  = fs.Duration("max-time", time.Minute, "per-request time-budget ceiling")
		maxSteps = fs.Int("max-steps", 0, "per-request step-budget ceiling (0 = unlimited)")
		maxMem   = fs.Int64("max-mem", 512, "per-request memory-budget ceiling in MiB")
		maxGates = fs.Int("max-gates", 0, "per-request circuit-size ceiling (0 = unlimited)")

		stateDir  = fs.String("state", "", "directory for drain checkpoints and the job ledger (empty disables drain persistence)")
		cacheDir  = fs.String("cache-dir", "", "directory for the persistent canonical-form answer cache (empty disables it)")
		ckptEvery = fs.Duration("checkpoint-interval", 30*time.Second, "periodic checkpoint cadence for running jobs")

		drainTimeout = fs.Duration("drain-timeout", 2*time.Minute, "how long a shutdown waits for running jobs to checkpoint")
		retryAfter   = fs.Duration("retry-after", time.Second, "base Retry-After hint on shed and drain responses")
		metricsAddr  = fs.String("metrics-addr", "", "also serve /debug/vars and /debug/pprof on this host:port")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "rmrlsd: unexpected arguments:", fs.Args())
		return 1
	}

	srv, err := serve.New(serve.Config{
		Workers:          *workers,
		QueueInteractive: *queueInt,
		QueueBatch:       *queueBat,
		Ceiling: core.BudgetCeiling{
			MaxTime:   *maxTime,
			MaxSteps:  *maxSteps,
			MaxMemory: *maxMem << 20,
			MaxGates:  *maxGates,
		},
		StateDir:           *stateDir,
		CacheDir:           *cacheDir,
		CheckpointInterval: *ckptEvery,
		RetryAfter:         *retryAfter,
	})
	if err != nil {
		fmt.Fprintln(stderr, "rmrlsd:", err)
		return 1
	}
	for _, note := range srv.RecoveryNotes() {
		fmt.Fprintln(stderr, "rmrlsd: recovery:", note)
	}
	if n := srv.Stats().Recovered; n > 0 {
		fmt.Fprintf(stderr, "rmrlsd: recovered %d unfinished job(s) from %s\n", n, *stateDir)
	}
	srv.Start()

	if *metricsAddr != "" {
		bound, stop, err := obs.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintln(stderr, "rmrlsd:", err)
			return 1
		}
		defer stop()
		fmt.Fprintf(stderr, "# metrics: http://%s/debug/vars and /debug/pprof\n", bound)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "rmrlsd:", err)
		return 1
	}
	httpSrv := obs.NewHTTPServer(srv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	// Printed to stdout so scripts can scrape the bound address (":0" works).
	fmt.Fprintf(stdout, "rmrlsd: listening on %s\n", ln.Addr())

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "rmrlsd:", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stderr, "rmrlsd: %v — draining (signal again to force exit)\n", s)
	}

	// Second signal forces the conventional 128+SIGINT exit; the atomic
	// checkpoint protocol keeps whatever is already on disk usable.
	forced := make(chan struct{})
	go func() {
		<-sig
		close(forced)
		os.Exit(130)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(stderr, "rmrlsd: drain:", err)
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
	}
	st := srv.Stats()
	fmt.Fprintf(stderr, "rmrlsd: drained (completed=%d interrupted=%d shed=%d)\n",
		st.Completed, st.Interrupted, st.Shed)
	select {
	case <-forced:
		return 130
	default:
	}
	return 0
}
