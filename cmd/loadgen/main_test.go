package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestRunAgainstRealServer: a small random workload against a real rmrlsd
// core must solve, pass the client-side re-check, and exit 0.
func TestRunAgainstRealServer(t *testing.T) {
	s, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})

	var out, errb bytes.Buffer
	addr := strings.TrimPrefix(ts.URL, "http://")
	code := run([]string{"-addr", addr, "-n", "4", "-c", "2", "-vars", "3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if strings.Contains(out.String(), "verifyfail=1") {
		t.Errorf("verification failures against a healthy server:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "verifyfail=0") {
		t.Errorf("report does not include the verification column:\n%s", out.String())
	}
}

// TestRunCatchesLyingServer: a stub that returns a solved response whose
// gate count disagrees with the returned cascade must be caught by the
// client-side re-check and fail the run.
func TestRunCatchesLyingServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// gates=2 but the cascade has one gate: an always-detectable lie,
		// independent of which random function the client asked for.
		w.Write([]byte(`{"id":"bogus","status":"done","result":{"found":true,"stop":"solved","circuit":"TOF1(a)","gates":2}}`))
	}))
	defer ts.Close()

	var out, errb bytes.Buffer
	addr := strings.TrimPrefix(ts.URL, "http://")
	code := run([]string{"-addr", addr, "-n", "1", "-vars", "2"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "reported gates=2") {
		t.Errorf("stderr does not name the gate-count mismatch: %s", errb.String())
	}
	if !strings.Contains(out.String(), "verifyfail=1") {
		t.Errorf("report does not count the verification failure:\n%s", out.String())
	}
}
