// Package qasm exports Toffoli cascades as OpenQASM 2.0, the interchange
// format of mainstream quantum toolchains — the application domain the
// paper motivates reversible synthesis with ("quantum gates are reversible
// by nature"). NOT, CNOT and TOF3 map to the standard x/cx/ccx gates;
// larger Toffoli gates are lowered through internal/decomp's
// borrowed-ancilla constructions, so the emitted program uses only
// standard gates.
package qasm

import (
	"fmt"
	"strings"

	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/decomp"
)

// Options controls the export.
type Options struct {
	// RegisterName is the quantum register identifier (default "q").
	RegisterName string
	// KeepLargeGates emits non-standard `mcx_k` invocations for gates
	// with more than two controls instead of decomposing them; useful
	// when the consuming toolchain lowers multi-controlled gates itself.
	KeepLargeGates bool
	// Comments adds a header and per-gate comments.
	Comments bool
}

// Export renders the cascade as an OpenQASM 2.0 program.
func Export(c *circuit.Circuit, opts Options) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	reg := opts.RegisterName
	if reg == "" {
		reg = "q"
	}
	lowered := c
	if !opts.KeepLargeGates && c.MaxGateSize() > 3 {
		var err error
		lowered, err = decomp.DecomposeCircuit(c)
		if err != nil {
			return "", fmt.Errorf("qasm: cannot lower large gates: %w (add an ancilla wire)", err)
		}
	}

	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	if opts.Comments {
		// The header must describe the program that follows — the lowered
		// circuit — not the pre-decomposition input, whose wire and gate
		// counts differ once large Toffoli gates are expanded.
		fmt.Fprintf(&b, "// %d-wire reversible cascade, %d gates\n", lowered.Wires, lowered.Len())
		if lowered != c {
			fmt.Fprintf(&b, "// lowered from %d wires, %d gates (borrowed-ancilla decomposition)\n", c.Wires, c.Len())
		}
	}
	fmt.Fprintf(&b, "qreg %s[%d];\n", reg, lowered.Wires)
	declared := map[int]bool{}
	for _, g := range lowered.Gates {
		if err := writeGate(&b, g, reg, opts, declared); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

func writeGate(b *strings.Builder, g circuit.Gate, reg string, opts Options, declared map[int]bool) error {
	controls := bits.Vars(g.Controls)
	switch len(controls) {
	case 0:
		fmt.Fprintf(b, "x %s[%d];\n", reg, g.Target)
	case 1:
		fmt.Fprintf(b, "cx %s[%d],%s[%d];\n", reg, controls[0], reg, g.Target)
	case 2:
		fmt.Fprintf(b, "ccx %s[%d],%s[%d],%s[%d];\n",
			reg, controls[0], reg, controls[1], reg, g.Target)
	default:
		if !opts.KeepLargeGates {
			return fmt.Errorf("qasm: internal: undecomposed %d-control gate", len(controls))
		}
		// Emit a gate declaration once per arity, then the invocation.
		// OpenQASM 2.0 has no native multi-control NOT; consumers with
		// mcx support can substitute their own definition.
		k := len(controls)
		if !declared[k] {
			fmt.Fprintf(b, "// opaque multi-controlled NOT with %d controls\n", k)
			fmt.Fprintf(b, "opaque mcx_%d", k)
			for i := 0; i <= k; i++ {
				if i == 0 {
					b.WriteString(" a0")
				} else {
					fmt.Fprintf(b, ",a%d", i)
				}
			}
			b.WriteString(";\n")
			declared[k] = true
		}
		fmt.Fprintf(b, "mcx_%d", k)
		for i, cw := range controls {
			if i == 0 {
				fmt.Fprintf(b, " %s[%d]", reg, cw)
			} else {
				fmt.Fprintf(b, ",%s[%d]", reg, cw)
			}
		}
		fmt.Fprintf(b, ",%s[%d];\n", reg, g.Target)
	}
	return nil
}
