// Postprocess: the downstream tool-chain around a synthesized cascade —
// peephole window optimization ([17]-style local resynthesis), Fredkin
// recognition (the paper's future-work item), NCT decomposition of large
// gates (Section II-D macros), and a circuit drawing.
package main

import (
	"fmt"
	"log"

	rmrls "repro"
)

func main() {
	// The paper's Example 5: a value swap on four variables.
	b, err := rmrls.BenchmarkByName("swap4")
	if err != nil {
		log.Fatal(err)
	}
	opts := rmrls.DefaultOptions()
	opts.TotalSteps = 100000
	res, err := rmrls.Synthesize(b.Spec, opts)
	if err != nil || !res.Found {
		log.Fatalf("synthesis failed: %v %+v", err, res)
	}
	c := res.Circuit
	fmt.Printf("synthesized (%d gates, cost %d):\n  %s\n\n", c.Len(), c.QuantumCost(), c)
	fmt.Println(c.Diagram())

	// 1. Peephole window optimization against provably minimal
	//    realizations.
	po := rmrls.NewPeepholeOptimizer()
	small := po.Optimize(c)
	fmt.Printf("\npeephole: %d → %d gates\n", c.Len(), small.Len())
	if err := rmrls.Verify(small, b.Spec); err != nil {
		log.Fatal(err)
	}

	// 2. Fredkin recognition: swap-shaped Toffoli triples become single
	//    controlled-swap gates.
	mixed := rmrls.RecognizeFredkin(small)
	fmt.Printf("fredkin form: %d gates (%d fredkin): %s\n",
		mixed.Len(), mixed.FredkinCount(), mixed)

	// 3. NCT decomposition: every large Toffoli gate becomes a
	//    borrowed-ancilla network of 3-bit gates. A gate that touches
	//    every wire is an odd permutation and provably needs an extra
	//    wire (parity obstruction), so widen the circuit by one idle
	//    wire first — the standard remedy.
	wide := &rmrls.Circuit{Wires: small.Wires + 1, Gates: small.Gates}
	nct, err := rmrls.DecomposeNCT(wide)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NCT form (+1 ancilla wire): %d gates (largest gate before: %d bits)\n",
		nct.Len(), small.MaxGateSize())
	// The widened circuit realizes spec ⊗ identity on the ancilla.
	widePerm := make(rmrls.Perm, 2*len(b.Spec))
	for x, y := range b.Spec {
		widePerm[x] = y
		widePerm[x+len(b.Spec)] = y + uint32(len(b.Spec))
	}
	if err := rmrls.Verify(nct, widePerm); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all three forms verified equivalent")
}
