// Command rmrlsd serves reversible-logic synthesis over HTTP: a bounded
// job queue with interactive/batch priority classes, per-request budgets
// clamped against server-wide ceilings, a fixed worker pool running the
// RMRLS engine, and graceful checkpointing drain.
//
// Usage:
//
//	rmrlsd -addr :8053 -workers 4 -state /var/lib/rmrlsd
//
// API (see docs/SERVICE.md for the full contract):
//
//	POST /v1/jobs            submit a synthesis job (idempotent; ?wait blocks)
//	GET  /v1/jobs/{id}        job status and result
//	GET  /v1/jobs/{id}/stream JSON-lines progress until the job finishes
//	GET  /v1/healthz          liveness, queue depths, counters, fault domains
//	GET  /v1/readyz           readiness (503 while draining or a -required
//	                          fault domain is open)
//
// A full queue sheds with 429 + Retry-After; nothing queues unboundedly.
// Persistent I/O faults in the optional dependencies (answer cache,
// checkpoints, ledger, quarantine) trip per-domain circuit breakers and
// shed the feature, never the job — see docs/OPERATIONS.md, "Degraded
// modes".
// On SIGTERM/SIGINT the server stops intake (503), cancels running
// searches — each flushes a crash-safe checkpoint into -state — and writes
// a ledger of unfinished jobs; the next start resumes them exactly where
// they left off. A second signal forces exit with status 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], sig, os.Stdout, os.Stderr))
}

// run is main's testable body: parse flags, start the server, block until a
// shutdown signal, drain, and return the process exit code.
func run(args []string, sig chan os.Signal, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rmrlsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8053", "host:port to serve the synthesis API on")
		workers  = fs.Int("workers", 2, "worker-pool size (concurrent syntheses)")
		searchW  = fs.Int("search-workers", 0, "parallel-search core budget; a job dequeued into a shallow queue claims several (deterministic-merge engine), deep queues keep jobs sequential (0 disables)")
		queueInt = fs.Int("queue-interactive", 64, "interactive-class queue capacity")
		queueBat = fs.Int("queue-batch", 256, "batch-class queue capacity")

		maxTime  = fs.Duration("max-time", time.Minute, "per-request time-budget ceiling")
		maxSteps = fs.Int("max-steps", 0, "per-request step-budget ceiling (0 = unlimited)")
		maxMem   = fs.Int64("max-mem", 512, "per-request memory-budget ceiling in MiB")
		maxGates = fs.Int("max-gates", 0, "per-request circuit-size ceiling (0 = unlimited)")

		stateDir  = fs.String("state", "", "directory for drain checkpoints and the job ledger (empty disables drain persistence)")
		cacheDir  = fs.String("cache-dir", "", "directory for the persistent canonical-form answer cache (empty disables it)")
		ckptEvery = fs.Duration("checkpoint-interval", 30*time.Second, "periodic checkpoint cadence for running jobs")

		drainTimeout = fs.Duration("drain-timeout", 2*time.Minute, "how long a shutdown waits for running jobs to checkpoint")
		retryAfter   = fs.Duration("retry-after", time.Second, "base Retry-After hint on shed and drain responses")
		metricsAddr  = fs.String("metrics-addr", "", "also serve /debug/vars and /debug/pprof on this host:port")

		rateLimit = fs.Float64("rate-limit", 0, "per-client submit rate (jobs/s, keyed by X-Client-ID else remote host; 0 disables)")
		rateBurst = fs.Int("rate-burst", 0, "per-client submit burst (0 = one second's worth plus one)")
		required  = fs.String("required", "", "comma-separated fault domains whose outage fails /v1/readyz (from: cache, checkpoint, ledger, quarantine)")
		chaosSpec = fs.String("chaos", "", "TESTING ONLY: in-process fault schedule, e.g. \"+2s fail cache enospc; +10s heal cache\" (prefixes cache/state map to -cache-dir/-state)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "rmrlsd: unexpected arguments:", fs.Args())
		return 1
	}

	var requiredDomains []string
	if *required != "" {
		known := make(map[string]bool)
		for _, d := range serve.DomainNames() {
			known[d] = true
		}
		for _, d := range strings.Split(*required, ",") {
			d = strings.TrimSpace(d)
			if d == "" {
				continue
			}
			if !known[d] {
				fmt.Fprintf(stderr, "rmrlsd: unknown fault domain %q (want one of %s)\n",
					d, strings.Join(serve.DomainNames(), ", "))
				return 1
			}
			requiredDomains = append(requiredDomains, d)
		}
	}

	// The chaos layer sits under the whole FS seam: every checkpoint,
	// ledger, cache, and quarantine write of this process goes through it,
	// so a schedule exercises the same degradation paths a real sick disk
	// would. Symbolic prefixes map to the configured directories.
	var serveFS snapshot.FS
	var chaosSched chaos.Schedule
	var chaosFS *chaos.FS
	if *chaosSpec != "" {
		sched, err := chaos.ParseSchedule(*chaosSpec)
		if err != nil {
			fmt.Fprintln(stderr, "rmrlsd:", err)
			return 1
		}
		names := map[string]string{}
		if *cacheDir != "" {
			names["cache"] = *cacheDir
		}
		if *stateDir != "" {
			names["state"] = *stateDir
		}
		chaosFS = chaos.New(nil)
		chaosSched = sched.Rewrite(names)
		serveFS = chaosFS
		fmt.Fprintf(stderr, "rmrlsd: CHAOS MODE: %d fault event(s) scheduled\n", len(chaosSched))
	}

	srv, err := serve.New(serve.Config{
		Workers:          *workers,
		SearchWorkers:    *searchW,
		QueueInteractive: *queueInt,
		QueueBatch:       *queueBat,
		Ceiling: core.BudgetCeiling{
			MaxTime:   *maxTime,
			MaxSteps:  *maxSteps,
			MaxMemory: *maxMem << 20,
			MaxGates:  *maxGates,
		},
		StateDir:           *stateDir,
		CacheDir:           *cacheDir,
		CheckpointInterval: *ckptEvery,
		RetryAfter:         *retryAfter,
		FS:                 serveFS,
		RequiredDomains:    requiredDomains,
		RateLimit:          *rateLimit,
		RateBurst:          *rateBurst,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "rmrlsd: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "rmrlsd:", err)
		return 1
	}
	if len(chaosSched) > 0 {
		stopChaos := chaosSched.Run(chaosFS, func(ev chaos.Event) {
			fmt.Fprintln(stderr, "rmrlsd: chaos:", ev)
		})
		defer stopChaos()
	}
	for _, note := range srv.RecoveryNotes() {
		fmt.Fprintln(stderr, "rmrlsd: recovery:", note)
	}
	if n := srv.Stats().Recovered; n > 0 {
		fmt.Fprintf(stderr, "rmrlsd: recovered %d unfinished job(s) from %s\n", n, *stateDir)
	}
	srv.Start()

	if *metricsAddr != "" {
		bound, stop, err := obs.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintln(stderr, "rmrlsd:", err)
			return 1
		}
		defer stop()
		fmt.Fprintf(stderr, "# metrics: http://%s/debug/vars and /debug/pprof\n", bound)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "rmrlsd:", err)
		return 1
	}
	httpSrv := obs.NewHTTPServer(srv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	// Printed to stdout so scripts can scrape the bound address (":0" works).
	fmt.Fprintf(stdout, "rmrlsd: listening on %s\n", ln.Addr())

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "rmrlsd:", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stderr, "rmrlsd: %v — draining (signal again to force exit)\n", s)
	}

	// Second signal forces the conventional 128+SIGINT exit; the atomic
	// checkpoint protocol keeps whatever is already on disk usable.
	forced := make(chan struct{})
	go func() {
		<-sig
		close(forced)
		os.Exit(130)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(stderr, "rmrlsd: drain:", err)
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
	}
	st := srv.Stats()
	fmt.Fprintf(stderr, "rmrlsd: drained (completed=%d interrupted=%d shed=%d)\n",
		st.Completed, st.Interrupted, st.Shed)
	select {
	case <-forced:
		return 130
	default:
	}
	return 0
}
