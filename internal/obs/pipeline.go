package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// PipelineOptions are the flag-level observability choices shared by the
// rmrls and experiments commands: -progress, -metrics-json, -metrics-addr,
// -metrics-interval map onto the fields one-for-one.
type PipelineOptions struct {
	// Progress enables the single-line TTY progress sink on TTYOut.
	Progress bool
	// TTYOut receives the progress line; nil selects os.Stderr. Progress
	// goes to stderr so piping the synthesized circuit stays clean.
	TTYOut io.Writer
	// JSONPath, when non-empty, appends one JSON snapshot object per line
	// to the named file.
	JSONPath string
	// Addr, when non-empty, serves /debug/vars (expvar, including the
	// progress map) and /debug/pprof on the given host:port.
	Addr string
	// Interval is the publishing cadence; 0 selects DefaultInterval.
	Interval time.Duration
}

// Enabled reports whether any observability output was requested.
func (o PipelineOptions) Enabled() bool {
	return o.Progress || o.JSONPath != "" || o.Addr != ""
}

// Pipeline is a started observability stack: sinks, publisher, and the
// optional metrics HTTP server. Stop flushes the final snapshots, closes
// the sinks, and shuts the server down.
type Pipeline struct {
	pub      *Publisher
	jsonFile *os.File
	httpStop func()
	addr     string
	once     sync.Once
}

// StartPipeline builds the sinks requested in opt, attaches them to run via
// a Publisher, and starts publishing. A nil error means Stop must be called
// exactly once. With no outputs requested it returns (nil, nil) — callers
// may Stop a nil Pipeline safely.
func StartPipeline(run *Run, opt PipelineOptions) (*Pipeline, error) {
	if !opt.Enabled() {
		return nil, nil
	}
	p := &Pipeline{}
	var sinks []Sink
	if opt.JSONPath != "" {
		f, err := os.OpenFile(opt.JSONPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("metrics json: %w", err)
		}
		p.jsonFile = f
		sinks = append(sinks, NewJSONLSink(f))
	}
	if opt.Addr != "" {
		sinks = append(sinks, NewExpvarSink(DefaultExpvarName))
		addr, stop, err := ServeMetrics(opt.Addr)
		if err != nil {
			if p.jsonFile != nil {
				p.jsonFile.Close()
			}
			return nil, fmt.Errorf("metrics server: %w", err)
		}
		p.addr, p.httpStop = addr, stop
	}
	if opt.Progress {
		out := opt.TTYOut
		if out == nil {
			out = os.Stderr
		}
		sinks = append(sinks, NewTTYSink(out))
	}
	p.pub = NewPublisher(run, opt.Interval, sinks...)
	p.pub.Start()
	return p, nil
}

// Addr returns the bound address of the metrics HTTP server ("" if none).
func (p *Pipeline) Addr() string {
	if p == nil {
		return ""
	}
	return p.addr
}

// Stop publishes the final snapshots, closes every sink, and shuts down
// the metrics server. Safe on a nil Pipeline and idempotent, so callers can
// stop eagerly (to release the terminal before printing results) and still
// keep a defer as the cleanup guarantee.
func (p *Pipeline) Stop() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		p.pub.Stop()
		if p.jsonFile != nil {
			p.jsonFile.Close()
		}
		if p.httpStop != nil {
			p.httpStop()
		}
	})
}
