package core

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
)

func mustSpec(t *testing.T, p perm.Perm) *pprm.Spec {
	t.Helper()
	spec, err := pprm.FromPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestTranspoDepthAwareReplacement pins the table's replacement contract:
// equal-or-deeper probes hit, strictly shallower probes miss and supersede
// on record, and forget only removes an entry that still carries the
// forgetting node's own depth.
func TestTranspoDepthAwareReplacement(t *testing.T) {
	tt := newTranspo(16)
	const h = 0xdeadbeef

	if tt.seen(h, 5) {
		t.Fatal("empty table reported a hit")
	}
	tt.record(h, 5)
	if !tt.seen(h, 5) || !tt.seen(h, 7) {
		t.Fatal("equal/deeper probe missed a recorded state")
	}
	if tt.seen(h, 3) {
		t.Fatal("shallower probe hit — it must supersede, not be pruned")
	}
	tt.record(h, 3)
	if !tt.seen(h, 3) {
		t.Fatal("superseded entry lost")
	}
	// A deeper re-record must not undo the shallower mark.
	tt.record(h, 9)
	if tt.seen(h, 2) {
		t.Fatal("deeper record overwrote the shallower depth")
	}
	// forget with the stale depth is a no-op; with the stored depth it
	// clears the entry.
	tt.forget(h, 5)
	if !tt.seen(h, 3) {
		t.Fatal("forget with mismatched depth removed the entry")
	}
	tt.forget(h, 3)
	if tt.seen(h, 3) {
		t.Fatal("forget with the stored depth left the entry behind")
	}
}

// TestTranspoCapacityReset: exceeding the entry cap clears the table and
// counts the dropped entries as evictions.
func TestTranspoCapacityReset(t *testing.T) {
	tt := newTranspo(4)
	for i := uint64(0); i < 4; i++ {
		tt.record(i, 1)
	}
	tt.record(100, 1) // fifth distinct state: triggers the generation reset
	if tt.evictions != 4 {
		t.Fatalf("evictions = %d, want 4", tt.evictions)
	}
	if !tt.seen(100, 1) {
		t.Fatal("entry recorded after the reset is missing")
	}
	if tt.seen(0, 1) {
		t.Fatal("pre-reset entry survived")
	}
}

// TestDedupReducesExpansions is the tentpole's core claim on a live
// search: with the transposition table on, the same function is solved
// with the same or a better circuit in fewer node expansions.
func TestDedupReducesExpansions(t *testing.T) {
	src := rng.New(42)
	functions := make([]perm.Perm, 0, 12)
	for i := 0; i < 12; i++ {
		functions = append(functions, perm.Random(3, src))
	}
	var stepsOff, stepsOn, hits int64
	for _, p := range functions {
		off := DefaultOptions()
		off.Dedup = false
		on := DefaultOptions()
		on.Dedup = true

		rOff, err := SynthesizePerm(p, off)
		if err != nil {
			t.Fatal(err)
		}
		rOn, err := SynthesizePerm(p, on)
		if err != nil {
			t.Fatal(err)
		}
		if !rOff.Found || !rOn.Found {
			t.Fatalf("%v: Found off=%v on=%v", p, rOff.Found, rOn.Found)
		}
		if err := Verify(rOn.Circuit, p); err != nil {
			t.Fatal(err)
		}
		if rOn.Circuit.Len() > rOff.Circuit.Len() {
			t.Errorf("%v: dedup worsened gates: %d > %d", p, rOn.Circuit.Len(), rOff.Circuit.Len())
		}
		stepsOff += int64(rOff.Steps)
		stepsOn += int64(rOn.Steps)
		hits += rOn.DedupHits
		if rOff.DedupHits != 0 || rOff.DedupMisses != 0 {
			t.Errorf("dedup-off run reported table traffic: %d/%d", rOff.DedupHits, rOff.DedupMisses)
		}
	}
	if hits == 0 {
		t.Error("no transposition hits across 12 random 3-variable functions")
	}
	if stepsOn >= stepsOff {
		t.Errorf("dedup did not reduce expansions: %d on vs %d off", stepsOn, stepsOff)
	}
	t.Logf("expansions: %d off → %d on (%.1f%% fewer), %d hits",
		stepsOff, stepsOn, 100*float64(stepsOff-stepsOn)/float64(stepsOff), hits)
}

// TestDedupCountersSurface: hit/miss totals appear in Result iff Dedup is
// on, and misses bound the number of pushed nodes from below is not
// required — but hits+misses must equal the number of probes, i.e. be
// positive for any non-trivial search.
func TestDedupCountersSurface(t *testing.T) {
	src := rng.New(7)
	p := perm.Random(4, src)
	opts := DefaultOptions()
	opts.Dedup = true
	r, err := SynthesizePerm(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.DedupHits+r.DedupMisses == 0 {
		t.Error("dedup enabled but no probes recorded")
	}
	if r.DedupEvictions != 0 && r.Restarts == 0 {
		t.Errorf("evictions (%d) without restarts or caps", r.DedupEvictions)
	}
}

// TestDedupPortfolioCounters: the portfolio sums the dedup telemetry of
// its variants.
func TestDedupPortfolioCounters(t *testing.T) {
	src := rng.New(9)
	p := perm.Random(3, src)
	spec := mustSpec(t, p)
	opts := DefaultOptions()
	opts.Dedup = true
	opts.TotalSteps = 5000
	r := SynthesizePortfolio(spec, opts, 1)
	if !r.Found {
		t.Fatal("portfolio found nothing")
	}
	if r.DedupHits+r.DedupMisses == 0 {
		t.Error("portfolio result carries no dedup telemetry")
	}
}
