package rmrls

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/canon"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fredkin"
	"repro/internal/mmd"
	"repro/internal/optimal"
	"repro/internal/peephole"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/tt"
	"repro/internal/verify"
)

// Re-exported core types. The facade keeps downstream users on one import
// path while the implementation lives in focused internal packages.
type (
	// Perm is a reversible function as a permutation of {0,…,2^n−1}.
	Perm = perm.Perm
	// Spec is a positive-polarity Reed–Muller expansion.
	Spec = pprm.Spec
	// Circuit is a cascade of generalized Toffoli gates.
	Circuit = circuit.Circuit
	// Gate is a single generalized Toffoli gate.
	Gate = circuit.Gate
	// Options configures the RMRLS search.
	Options = core.Options
	// Checkpoint configures durable crash-safe snapshots of a running
	// search (Options.Checkpoint); see ResumeSpecContext.
	Checkpoint = core.Checkpoint
	// Result is a synthesis outcome.
	Result = core.Result
	// StopReason records why a synthesis run returned (solved, canceled,
	// budget exhausted, …); see the Stop* constants.
	StopReason = core.StopReason
	// Event is one step of the search trace.
	Event = core.Event
	// TruthTable is a (possibly irreversible) multi-output function.
	TruthTable = tt.Table
	// Embedding is a reversible lifting of an irreversible function.
	Embedding = tt.Embedding
	// Benchmark is one entry of the paper's benchmark suite.
	Benchmark = bench.Benchmark
	// Cache is the canonical-form answer cache (Options.Cache): solved
	// classes answer repeated or relabeled requests by conjugation
	// instead of a search. See docs/CACHING.md.
	Cache = cache.Cache
	// CacheStats is a snapshot of a Cache's counters.
	CacheStats = cache.Stats
)

// Admission modes (see core.Admission).
const (
	AdmitBounded    = core.AdmitBounded
	AdmitAll        = core.AdmitAll
	AdmitCumulative = core.AdmitCumulative
	AdmitPerStep    = core.AdmitPerStep
)

// Gate libraries.
const (
	GT  = circuit.GT
	NCT = circuit.NCT
)

// Stop reasons (see core.StopReason). Every completed run reports one;
// a non-Found Result is diagnosable by inspecting it.
const (
	StopNone              = core.StopNone
	StopSolved            = core.StopSolved
	StopQueueExhausted    = core.StopQueueExhausted
	StopDeadline          = core.StopDeadline
	StopCanceled          = core.StopCanceled
	StopStepLimit         = core.StopStepLimit
	StopMemoryLimit       = core.StopMemoryLimit
	StopRestartsExhausted = core.StopRestartsExhausted
	StopInternalError     = core.StopInternalError
	StopVerifyFailed      = core.StopVerifyFailed
)

// VerifyError is the typed failure of the always-on post-synthesis
// verification gate: the search produced a circuit that an independent
// simulator rejected. A Result carrying one has Found == false and
// StopReason == StopVerifyFailed; unwrap it with errors.As to recover the
// rejected cascade and the first mismatching input. Disable the gate with
// Options.SkipVerify (functions wider than verify.MaxVars skip it
// automatically and report Result.Verified == false).
type VerifyError = verify.Error

// DefaultOptions returns the recommended synthesis configuration (greedy
// pruning, additional substitutions, restarts).
func DefaultOptions() Options { return core.DefaultOptions() }

// BasicOptions returns the paper's basic algorithm without heuristics.
func BasicOptions() Options { return core.BasicOptions() }

// Synthesize runs RMRLS on a reversible function given as a permutation.
func Synthesize(p Perm, opts Options) (Result, error) {
	return core.SynthesizePerm(p, opts)
}

// SynthesizeContext is Synthesize with cancellation: the search polls
// ctx.Done() alongside its deadline, and a canceled run returns promptly
// with the best-so-far circuit and StopReason == StopCanceled.
func SynthesizeContext(ctx context.Context, p Perm, opts Options) (Result, error) {
	return core.SynthesizePermContext(ctx, p, opts)
}

// SynthesizeSpec runs RMRLS on a PPRM expansion directly; required for
// functions too wide to tabulate (e.g. the 30-wire shift28 benchmark).
func SynthesizeSpec(s *Spec, opts Options) Result {
	return core.Synthesize(s, opts)
}

// SynthesizeSpecContext is SynthesizeSpec with cancellation.
func SynthesizeSpecContext(ctx context.Context, s *Spec, opts Options) Result {
	return core.SynthesizeContext(ctx, s, opts)
}

// Typed resume errors (see ResumeSpecContext). Every one of them means
// "start fresh", never "fail the job".
var (
	ErrSpecMismatch    = core.ErrSpecMismatch
	ErrOptionsMismatch = core.ErrOptionsMismatch
	ErrInvalidState    = core.ErrInvalidState
)

// ResumeContext continues a checkpointed synthesis of the function p from
// the snapshot at path, exactly where it left off; see Options.Checkpoint
// for how snapshots are written. Budget options (time and step limits) may
// differ from the original run's; everything that shapes the search must
// fingerprint-match or ErrOptionsMismatch is returned.
func ResumeContext(ctx context.Context, p Perm, opts Options, path string) (Result, error) {
	return core.ResumePermContext(ctx, p, opts, path)
}

// ResumeSpecContext is ResumeContext for a PPRM expansion.
func ResumeSpecContext(ctx context.Context, s *Spec, opts Options, path string) (Result, error) {
	return core.ResumeContext(ctx, s, opts, path)
}

// Verify checks that a circuit realizes the function p.
func Verify(c *Circuit, p Perm) error { return core.Verify(c, p) }

// NewCache returns a memory-only answer cache for Options.Cache.
func NewCache() *Cache { return cache.New() }

// OpenCache returns an answer cache persisted under dir (created if
// needed), so solved classes survive process restarts. An empty dir is
// memory-only.
func OpenCache(dir string) (*Cache, error) { return cache.Open(dir, nil) }

// CanonicalClass returns the canonical-form class hash of a reversible
// function: two functions share it exactly when one is the other with
// inputs/outputs relabeled and polarities flipped (guaranteed for n ≤ 3;
// a sound deterministic under-approximation above — equal hashes are
// still only ever assigned within one class).
func CanonicalClass(p Perm) (uint64, error) {
	rep, _, err := canon.Canonicalize(p)
	if err != nil {
		return 0, err
	}
	return canon.Hash(rep), nil
}

// ParseSpec parses a permutation specification in the paper's notation,
// e.g. "{1, 0, 7, 2, 3, 4, 5, 6}".
func ParseSpec(s string) (Perm, error) { return perm.Parse(s) }

// MustParseSpec is ParseSpec that panics on error, for fixed literals.
func MustParseSpec(s string) Perm {
	p, err := perm.Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePPRM parses an n-variable PPRM expansion, one output per line, e.g.
// "a' = a ^ 1\nb' = b ^ c ^ ac\nc' = b ^ ab ^ ac".
func ParsePPRM(n int, text string) (*Spec, error) { return pprm.Parse(n, text) }

// PPRMOf returns the canonical PPRM expansion of a reversible function.
func PPRMOf(p Perm) (*Spec, error) { return pprm.FromPerm(p) }

// ParseCircuit parses a cascade in the paper's notation on n wires, e.g.
// "TOF1(a) TOF3(c,a,b)".
func ParseCircuit(n int, s string) (*Circuit, error) { return circuit.Parse(n, s) }

// Embed converts an irreversible truth table into a reversible
// specification by adding garbage outputs and constant inputs
// (Section II-A of the paper).
func Embed(t *TruthTable) (*Embedding, error) { return tt.Embed(t) }

// SynthesizeMMD runs the transformation-based baseline of Miller, Maslov
// and Dueck (DAC 2003) — constructive, always succeeds. bidirectional
// selects the stronger two-sided variant.
func SynthesizeMMD(p Perm, bidirectional bool) *Circuit {
	dir := mmd.Unidirectional
	if bidirectional {
		dir = mmd.Bidirectional
	}
	return mmd.Synthesize(p, dir)
}

// OptimalDistances computes, by breadth-first search, the provably minimal
// gate count of every 3-variable reversible function over NOT+CNOT+Toffoli
// (withSwap adds the SWAP gate). Lookup individual functions with
// OptimalGateCount.
func OptimalDistances(withSwap bool) *optimal.Table {
	lib := optimal.NCT
	if withSwap {
		lib = optimal.NCTS
	}
	return optimal.Distances(lib)
}

// Benchmarks returns the paper's benchmark suite (Table IV plus the worked
// examples of Section V-C).
func Benchmarks() []*Benchmark { return bench.All() }

// BenchmarkByName looks up one benchmark, e.g. "rd53" or "shift10".
func BenchmarkByName(name string) (*Benchmark, error) { return bench.ByName(name) }

// QuantumCost returns the quantum cost of a gate of the given size on a
// circuit of the given width, per the paper's Section II-D cost model.
func QuantumCost(gateSize, wires int) int { return circuit.GateCost(gateSize, wires) }

// SynthesizeIterative improves a result by iterative tightening: repeated
// re-searches bounded strictly below the best known size.
func SynthesizeIterative(s *Spec, opts Options, rounds int) Result {
	return core.SynthesizeIterative(s, opts, rounds)
}

// SynthesizeIterativeContext is SynthesizeIterative with cancellation.
func SynthesizeIterativeContext(ctx context.Context, s *Spec, opts Options, rounds int) Result {
	return core.SynthesizeIterativeContext(ctx, s, opts, rounds)
}

// SynthesizePortfolio runs complementary search configurations in
// parallel, then tightening; the most robust entry point for hard
// benchmark functions. The merged result is deterministic under
// deterministic budgets regardless of goroutine scheduling.
func SynthesizePortfolio(s *Spec, opts Options, rounds int) Result {
	return core.SynthesizePortfolio(s, opts, rounds)
}

// SynthesizePortfolioContext is SynthesizePortfolio with cancellation:
// canceling ctx stops every configuration and returns the best circuit
// found so far.
func SynthesizePortfolioContext(ctx context.Context, s *Spec, opts Options, rounds int) Result {
	return core.SynthesizePortfolioContext(ctx, s, opts, rounds)
}

// PeepholeOptimizer performs local window resynthesis against provably
// minimal realizations (the scalable-simplification idea of the paper's
// reference [17]). Construct once (it builds the exhaustive 3-variable
// table) and reuse.
type PeepholeOptimizer = peephole.Optimizer

// NewPeepholeOptimizer builds a window optimizer.
func NewPeepholeOptimizer() *PeepholeOptimizer { return peephole.New() }

// DecomposeNCT expands every generalized Toffoli gate of a cascade into
// the NCT library (NOT, CNOT, 3-bit Toffoli) using Barenco-style
// borrowed-ancilla constructions. It fails with an error if some gate
// touches every wire (parity obstruction; widen the circuit first).
func DecomposeNCT(c *Circuit) (*Circuit, error) { return decomp.DecomposeCircuit(c) }

// MixedCascade is a cascade mixing Toffoli and generalized Fredkin gates
// (the paper's future-work extension).
type MixedCascade = fredkin.Cascade

// RecognizeFredkin rewrites swap-shaped Toffoli triples into Fredkin
// gates, shortening the cascade without changing its function.
func RecognizeFredkin(c *Circuit) *MixedCascade { return fredkin.Recognize(c) }

// RandomCircuit generates a random Toffoli cascade the way the paper's
// scalability experiments do (Section V-E); nct restricts the library.
// The seed makes workloads reproducible.
func RandomCircuit(wires, gates int, nct bool, seed uint64) (*Circuit, error) {
	if wires < 1 || wires > 30 {
		return nil, fmt.Errorf("rmrls: unsupported wire count %d", wires)
	}
	lib := circuit.GT
	if nct {
		lib = circuit.NCT
	}
	return randomCircuit(wires, gates, lib, seed), nil
}
