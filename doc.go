// Package rmrls is a Go implementation of RMRLS — the Reed–Muller
// reversible logic synthesizer of Gupta, Agrawal and Jha ("Synthesis of
// Reversible Logic", DATE 2004; journal version "An Algorithm for Synthesis
// of Reversible Logic Circuits", IEEE TCAD 25(11), 2006).
//
// A reversible function of n variables maps each n-bit input assignment to
// a unique n-bit output assignment; it is specified here either as a
// permutation of {0, …, 2^n − 1} or as a positive-polarity Reed–Muller
// (PPRM) expansion. Synthesis produces a cascade of generalized Toffoli
// gates realizing the function:
//
//	spec := rmrls.MustParseSpec("{1, 0, 7, 2, 3, 4, 5, 6}")
//	res, err := rmrls.Synthesize(spec, rmrls.DefaultOptions())
//	if err == nil && res.Found {
//		fmt.Println(res.Circuit) // TOF1(a) TOF3(c,a,b) TOF3(b,a,c)
//	}
//
// The package also exposes the building blocks a downstream user needs:
// truth-table embedding of irreversible functions (Embed), the benchmark
// suite of the paper (Benchmarks, BenchmarkByName), the
// transformation-based baseline of Miller–Maslov–Dueck (SynthesizeMMD),
// provably optimal 3-variable synthesis (OptimalDistances), quantum-cost
// accounting, and an EXORCISM-style ESOP minimizer (internal/esop).
//
// # Which doc do I read?
//
//	the algorithm itself            docs/ALGORITHM.md
//	design choices + inventory      DESIGN.md
//	search performance, dedup       docs/PERFORMANCE.md
//	long runs, checkpoint/resume    docs/OPERATIONS.md
//	live metrics, expvar/pprof      docs/OBSERVABILITY.md
//	the rmrlsd HTTP service         docs/SERVICE.md
//	the verification gate           docs/VERIFICATION.md
//	canonical forms + answer cache  docs/CACHING.md
//	paper-vs-measured numbers       EXPERIMENTS.md
//
// See the README's documentation index for one-line summaries of each.
package rmrls
