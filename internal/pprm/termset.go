package pprm

import (
	"fmt"
	"sort"

	"repro/internal/bits"
)

// TermSet is the set of product terms (with coefficient 1) of one output's
// PPRM expansion, stored as a sorted slice of term masks. The paper's C
// implementation uses sorted doubly linked lists for the same reason:
// substitutions stream through the terms in order, and copies (one per
// queued search node) are a single contiguous move.
//
// Alongside the terms the set maintains two derived values:
//
//   - hash: the XOR of the terms' Zobrist keys (see hash.go), updated in
//     O(1) per membership flip, which the synthesis search's transposition
//     table keys on;
//   - sorted: a lazily built, immutable copy of the terms in presentation
//     order (ascending literal count, then mask), invalidated on mutation.
//     Copy-on-write children share it with their parents, so the hot-path
//     candidate enumeration usually finds it already built.
//
// A TermSet is not safe for concurrent use: Sorted fills the cache on
// first call, so even logically read-only sharing across goroutines
// requires the owner to Clone first (the search clones its root spec for
// exactly this reason).
type TermSet struct {
	terms  []bits.Mask // strictly increasing
	hash   uint64      // XOR of termHash over terms
	sorted []bits.Mask // presentation-order cache; nil = not built
}

// NewTermSet builds a set from arbitrary masks; duplicate pairs cancel
// (EXOR semantics).
func NewTermSet(masks ...bits.Mask) TermSet {
	var ts TermSet
	for _, m := range masks {
		ts.Toggle(m)
	}
	return ts
}

// newSortedTermSet wraps a strictly increasing mask slice, computing its
// hash. The slice is owned by the new set.
func newSortedTermSet(terms []bits.Mask) TermSet {
	var h uint64
	for _, t := range terms {
		h ^= termHash(t)
	}
	return TermSet{terms: terms, hash: h}
}

// Len returns the number of terms.
func (ts *TermSet) Len() int { return len(ts.terms) }

// Has reports whether term t has coefficient 1.
func (ts *TermSet) Has(t bits.Mask) bool {
	i := sort.Search(len(ts.terms), func(i int) bool { return ts.terms[i] >= t })
	return i < len(ts.terms) && ts.terms[i] == t
}

// Toggle flips membership of term t and returns +1 if it was inserted, −1
// if removed.
func (ts *TermSet) Toggle(t bits.Mask) int {
	ts.hash ^= termHash(t)
	ts.sorted = nil
	i := sort.Search(len(ts.terms), func(i int) bool { return ts.terms[i] >= t })
	if i < len(ts.terms) && ts.terms[i] == t {
		ts.terms = append(ts.terms[:i], ts.terms[i+1:]...)
		return -1
	}
	ts.terms = append(ts.terms, 0)
	copy(ts.terms[i+1:], ts.terms[i:])
	ts.terms[i] = t
	return 1
}

// Clone returns a copy of the set. The presentation cache, if built, is
// shared: it is immutable once created (mutations replace it rather than
// editing in place).
func (ts *TermSet) Clone() TermSet {
	return TermSet{
		terms:  append([]bits.Mask(nil), ts.terms...),
		hash:   ts.hash,
		sorted: ts.sorted,
	}
}

// Terms returns the terms in ascending mask order. The slice aliases the
// set's storage and must not be modified.
func (ts *TermSet) Terms() []bits.Mask { return ts.terms }

// Cap returns the capacity of the backing term storage. The synthesis
// memory accounting (Spec.MemBytes) is capacity-based, so a checkpoint
// that wants a byte-identical restore must record and reproduce it.
func (ts *TermSet) Cap() int { return cap(ts.terms) }

// RestoreSorted rebuilds a TermSet from a strictly increasing term list and
// an explicit backing capacity, re-deriving the incremental hash from
// scratch. It is the snapshot subsystem's inverse of Terms/Cap: the terms
// are copied into a fresh slice of exactly the given capacity so MemBytes
// reports the same value the serialized set did. The error is non-nil when
// the list is not strictly increasing or the capacity is too small.
func RestoreSorted(terms []bits.Mask, capacity int) (TermSet, error) {
	if capacity < len(terms) {
		return TermSet{}, fmt.Errorf("pprm: restore capacity %d < %d terms", capacity, len(terms))
	}
	for i := 1; i < len(terms); i++ {
		if terms[i] <= terms[i-1] {
			return TermSet{}, fmt.Errorf("pprm: restore terms not strictly increasing at index %d", i)
		}
	}
	buf := make([]bits.Mask, len(terms), capacity)
	copy(buf, terms)
	return newSortedTermSet(buf), nil
}

// Sorted returns the terms ordered by ascending literal count, then mask —
// the deterministic presentation order used for printing and candidate
// enumeration. The result is cached until the set next mutates and is
// shared with copy-on-write clones; callers must not modify it.
func (ts *TermSet) Sorted() []bits.Mask {
	if ts.sorted != nil || len(ts.terms) == 0 {
		return ts.sorted
	}
	out := append([]bits.Mask(nil), ts.terms...)
	sort.Slice(out, func(i, j int) bool {
		ci, cj := bits.Count(out[i]), bits.Count(out[j])
		if ci != cj {
			return ci < cj
		}
		return out[i] < out[j]
	})
	ts.sorted = out
	return out
}

// Equal reports whether the two sets hold the same terms. The incremental
// hashes give a constant-time negative fast path; the element compare
// guards against 64-bit collisions on the (hash-equal) positive path.
// Either way the comparison performs no allocation.
func (ts *TermSet) Equal(o *TermSet) bool {
	if ts.hash != o.hash || len(ts.terms) != len(o.terms) {
		return false
	}
	for i, t := range ts.terms {
		if o.terms[i] != t {
			return false
		}
	}
	return true
}

// symmetricMerge replaces ts with ts Δ toggles, where toggles is sorted and
// duplicate-free, returning the change in size. scratch, if non-nil, is
// reused as the output buffer to avoid allocation.
func (ts *TermSet) symmetricMerge(toggles []bits.Mask, scratch []bits.Mask) int {
	out := scratch[:0]
	a, b := ts.terms, toggles
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	delta := len(out) - len(a)
	ts.terms = append(ts.terms[:0], out...)
	// Every toggle flips membership exactly once (the list is
	// duplicate-free), so the hash update is the XOR of their keys.
	for _, t := range toggles {
		ts.hash ^= termHash(t)
	}
	ts.sorted = nil
	return delta
}

// dedupSorted collapses duplicate pairs in a sorted toggle list (an even
// number of identical toggles cancels), in place.
func dedupSorted(ms []bits.Mask) []bits.Mask {
	out := ms[:0]
	for i := 0; i < len(ms); {
		j := i
		for j < len(ms) && ms[j] == ms[i] {
			j++
		}
		if (j-i)%2 == 1 {
			out = append(out, ms[i])
		}
		i = j
	}
	return out
}
