package exp

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pprm"
	"repro/internal/rng"
)

// ScalabilityConfig controls the Table V/VI/VII reproductions: random
// Toffoli cascades of 6–16 variables are generated, simulated to obtain
// their specification, and resynthesized from the PPRM expansion. The
// paper records only whether a (not necessarily minimal) solution is found
// in time, so FirstSolution mode is used.
type ScalabilityConfig struct {
	// MaxGateCount is the generated circuit length bound: 15 (Table V),
	// 20 (Table VI), or 25 (Table VII). Each generated circuit's length
	// is uniform in [1, MaxGateCount].
	MaxGateCount int
	// SamplesPerVar is the number of circuits per variable count (the
	// paper uses 500 for Table V and 1000 for VI/VII).
	SamplesPerVar int
	// MinVars/MaxVars bound the sweep (paper: 6–16).
	MinVars, MaxVars int
	Seed             uint64
	// TotalSteps bounds each synthesis deterministically.
	TotalSteps int
	// Library for generated circuits (the paper mixes GT and NCT; GT is
	// the default).
	Library circuit.Library

	// CheckpointDir, when non-empty, makes the sweep interruptible: every
	// completed sample is appended to an on-disk ledger, the in-flight
	// synthesis checkpoints its search state, and a rerun with the same
	// configuration replays the ledger (re-deriving each sample's workload
	// from the deterministic RNG stream without re-synthesizing) and
	// resumes the interrupted synthesis exactly where it stopped. A ledger
	// written under a different configuration is discarded, not misapplied.
	CheckpointDir string
	// CheckpointInterval is the wall-clock cadence of the in-flight
	// synthesis checkpoints; 0 selects 10 s.
	CheckpointInterval time.Duration

	// Observe, when non-nil, receives live sweep telemetry: each variable
	// count gets a child Run labeled "vars=N" whose counters accumulate
	// over that row's samples, and the run's status tracks the in-flight
	// sample index. Not part of the workload fingerprint — attaching a
	// metrics sink never invalidates a ledger.
	Observe *obs.Run
}

// fingerprint identifies the workload a ledger belongs to: every field that
// changes which samples are generated or how they are judged. The trailing
// format tag versions the ledger line shape — v2 added the per-sample
// verified flag, so a v1 ledger is discarded rather than misread.
func (c *ScalabilityConfig) fingerprint() string {
	return fmt.Sprintf("scalability maxgates=%d samples=%d vars=%d-%d seed=%d steps=%d lib=%d fmt=v2",
		c.MaxGateCount, c.SamplesPerVar, c.MinVars, c.MaxVars, c.Seed, c.TotalSteps, c.Library)
}

// TableVConfig, TableVIConfig, TableVIIConfig return the paper's setups
// with the given per-variable sample count.
func TableVConfig(perVar int, seed uint64) ScalabilityConfig {
	return ScalabilityConfig{MaxGateCount: 15, SamplesPerVar: perVar,
		MinVars: 6, MaxVars: 16, Seed: seed, TotalSteps: 60000}
}
func TableVIConfig(perVar int, seed uint64) ScalabilityConfig {
	return ScalabilityConfig{MaxGateCount: 20, SamplesPerVar: perVar,
		MinVars: 6, MaxVars: 16, Seed: seed, TotalSteps: 60000}
}
func TableVIIConfig(perVar int, seed uint64) ScalabilityConfig {
	return ScalabilityConfig{MaxGateCount: 25, SamplesPerVar: perVar,
		MinVars: 6, MaxVars: 16, Seed: seed, TotalSteps: 60000}
}

// ScalabilityRow is one variable count's outcome.
type ScalabilityRow struct {
	Vars    int
	Hist    Histogram
	Elapsed time.Duration
	// Verified counts the solved samples whose circuit passed the
	// independent verification gate (every solved sample should: the sweep
	// tops out at 16 variables, well inside the oracle's tabulation bound).
	Verified int
}

// ScalabilityResult is the reproduction of one of Tables V–VII.
type ScalabilityResult struct {
	Config ScalabilityConfig
	Rows   []ScalabilityRow
}

// Scalability runs the random-circuit resynthesis sweep. Canceling ctx
// ends the sweep after the in-flight synthesis; completed rows are kept
// and failures record the stop reason. With Config.CheckpointDir set the
// interruption is durable: a rerun replays the completed samples from the
// ledger and resumes the interrupted synthesis from its checkpoint.
func Scalability(ctx context.Context, cfg ScalabilityConfig) *ScalabilityResult {
	res := &ScalabilityResult{Config: cfg}
	src := rng.New(cfg.Seed)
	led := openLedger(&cfg)
	defer led.close()
	for n := cfg.MinVars; n <= cfg.MaxVars && ctx.Err() == nil; n++ {
		row := ScalabilityRow{Vars: n}
		var rowObs *obs.Run
		if cfg.Observe != nil {
			rowObs = cfg.Observe.Child(fmt.Sprintf("vars=%d", n))
		}
		start := time.Now()
		for i := 0; i < cfg.SamplesPerVar && ctx.Err() == nil; i++ {
			// The workload is a deterministic function of the RNG stream,
			// so replayed samples still draw from it — the generated
			// circuit is identical, only the synthesis is skipped.
			gates := 1 + src.Intn(cfg.MaxGateCount)
			c := circuit.Random(n, gates, cfg.Library, src)
			if done, outcome := led.lookup(n, i); done {
				outcome.apply(&row.Hist)
				if outcome.verified {
					row.Verified++
				}
				continue
			}
			spec := c.PPRM()
			opts := core.DefaultOptions()
			opts.FirstSolution = true
			opts.TotalSteps = cfg.TotalSteps
			opts.MaxGates = 40
			if rowObs != nil {
				rowObs.SetStatus(fmt.Sprintf("sample %d/%d", i+1, cfg.SamplesPerVar))
				opts.Observe = rowObs
			}
			var r core.Result
			if resumed, ok := led.resume(ctx, spec, opts); ok {
				r = resumed
			} else {
				opts.Checkpoint = led.checkpointOptions()
				r = core.SynthesizeContext(ctx, spec, opts)
			}
			if ctx.Err() != nil && r.StopReason == core.StopCanceled {
				// Interrupted mid-sample; its checkpoint (flushed by the
				// search) carries the partial work to the next run.
				break
			}
			if r.Found {
				row.Hist.Add(r.Circuit.Len())
				if r.Verified {
					row.Verified++
				}
			} else {
				row.Hist.AddFailure(r.StopReason)
			}
			led.append(n, i, r)
		}
		row.Elapsed = time.Since(start)
		if rowObs != nil {
			if ctx.Err() != nil {
				rowObs.Finish(core.StopCanceled.String())
			} else {
				rowObs.SetStatus(fmt.Sprintf("row complete: %d/%d solved", row.Hist.Total-row.Hist.Failed, row.Hist.Total))
				rowObs.Finish("complete")
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if cfg.Observe != nil {
		// The sweep root is a pure aggregate over the row children; finish
		// it so the final snapshot reports done with the sweep's outcome.
		stop := "complete"
		if ctx.Err() != nil {
			stop = core.StopCanceled.String()
		}
		cfg.Observe.Finish(stop)
	}
	return res
}

// sampleOutcome is one ledger entry: a found gate count or a stop reason.
type sampleOutcome struct {
	found    bool
	gates    int
	stop     core.StopReason
	verified bool
}

func (o sampleOutcome) apply(h *Histogram) {
	if o.found {
		h.Add(o.gates)
	} else {
		h.AddFailure(o.stop)
	}
}

// ledger is the durable progress record of one Scalability sweep: a
// header line fingerprinting the configuration, then one line per
// completed sample ("vars index found gates stop"). Appended and flushed
// after every sample, so a crash loses at most the in-flight one — which
// the core checkpoint covers. A nil-dir ledger is inert and costs nothing.
type ledger struct {
	dir      string
	interval time.Duration
	done     map[[2]int]sampleOutcome
	f        *os.File
	w        *bufio.Writer
	fresh    bool // no prior ledger: nothing to resume
}

func openLedger(cfg *ScalabilityConfig) *ledger {
	if cfg.CheckpointDir == "" {
		return &ledger{}
	}
	led := &ledger{
		dir:      cfg.CheckpointDir,
		interval: cfg.CheckpointInterval,
		done:     make(map[[2]int]sampleOutcome),
		fresh:    true,
	}
	if led.interval <= 0 {
		led.interval = 10 * time.Second
	}
	os.MkdirAll(cfg.CheckpointDir, 0o755)
	path := led.ledgerPath()
	fp := cfg.fingerprint()
	if data, err := os.ReadFile(path); err == nil {
		lines := splitLines(string(data))
		if len(lines) > 0 && lines[0] == fp {
			led.fresh = false
			for _, line := range lines[1:] {
				var n, i, gates, stop int
				var found, verified bool
				if _, err := fmt.Sscanf(line, "%d %d %t %d %d %t", &n, &i, &found, &gates, &stop, &verified); err == nil {
					led.done[[2]int{n, i}] = sampleOutcome{found: found, gates: gates, stop: core.StopReason(stop), verified: verified}
				}
			}
		}
		// A fingerprint mismatch means the ledger belongs to a different
		// workload: it is discarded below by truncating the file.
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		// Degrade to an in-memory-only sweep; the run still completes.
		return &ledger{}
	}
	if len(led.done) == 0 {
		f.Truncate(0)
		led.w = bufio.NewWriter(f)
		fmt.Fprintln(led.w, fp)
	} else {
		f.Seek(0, io.SeekEnd)
		led.w = bufio.NewWriter(f)
	}
	led.f = f
	led.w.Flush()
	return led
}

func (l *ledger) ledgerPath() string { return filepath.Join(l.dir, "scalability.ledger") }
func (l *ledger) ckptPath() string   { return filepath.Join(l.dir, "scalability.ckpt") }
func (l *ledger) enabled() bool      { return l.f != nil }
func (l *ledger) lookup(n, i int) (bool, sampleOutcome) {
	o, ok := l.done[[2]int{n, i}]
	return ok, o
}

func (l *ledger) checkpointOptions() core.Checkpoint {
	if !l.enabled() {
		return core.Checkpoint{}
	}
	return core.Checkpoint{Path: l.ckptPath(), Interval: l.interval}
}

// resume attempts to continue the first unfinished sample from the sweep's
// in-flight checkpoint. Any failure — no file, damage, or a snapshot for a
// different sample (spec mismatch) — falls back to a fresh synthesis.
func (l *ledger) resume(ctx context.Context, spec *pprm.Spec, opts core.Options) (core.Result, bool) {
	if !l.enabled() || l.fresh {
		return core.Result{}, false
	}
	opts.Checkpoint = l.checkpointOptions()
	r, err := core.ResumeContext(ctx, spec, opts, l.ckptPath())
	if err != nil {
		return core.Result{}, false
	}
	return r, true
}

// append records a completed sample and retires the in-flight checkpoint.
func (l *ledger) append(n, i int, r core.Result) {
	if !l.enabled() {
		return
	}
	gates := 0
	if r.Found {
		gates = r.Circuit.Len()
	}
	fmt.Fprintf(l.w, "%d %d %t %d %d %t\n", n, i, r.Found, gates, int(r.StopReason), r.Verified)
	l.w.Flush()
	os.Remove(l.ckptPath())
}

func (l *ledger) close() {
	if l.f != nil {
		l.w.Flush()
		l.f.Close()
	}
}

func splitLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if line != "" {
			out = append(out, line)
		}
	}
	return out
}

// Write renders the sweep in the paper's bucketed form (circuit-size
// buckets of five, plus the failure column).
func (r *ScalabilityResult) Write(w io.Writer) {
	header := []string{"vars", "1-5", "6-10", "11-15", "16-20", "21-25",
		"26-30", "31-35", "36-40", "failed", "fail%", "verified", "elapsed"}
	var rows [][]string
	for _, row := range r.Rows {
		cells := []string{itoa(row.Vars)}
		for lo := 1; lo <= 36; lo += 5 {
			cells = append(cells, itoa(row.Hist.Bucket(lo, lo+4)))
		}
		cells = append(cells,
			itoa(row.Hist.Failed),
			fmt.Sprintf("%.1f", 100*float64(row.Hist.Failed)/float64(max(row.Hist.Total, 1))),
			itoa(row.Verified),
			row.Elapsed.Round(time.Millisecond).String(),
		)
		rows = append(rows, cells)
	}
	writeTable(w, header, rows)
	fmt.Fprintf(w, "random circuits with at most %d gates, %d samples per variable count\n",
		r.Config.MaxGateCount, r.Config.SamplesPerVar)
	var stops Histogram
	for _, row := range r.Rows {
		for reason, n := range row.Hist.Stops {
			for i := 0; i < n; i++ {
				stops.AddFailure(reason)
			}
		}
	}
	if s := stops.StopSummary(); s != "" {
		fmt.Fprintf(w, "failures by stop reason: %s\n", s)
	}
}
