package circuit

import (
	"strings"

	"repro/internal/bits"
)

// Diagram renders the cascade in the paper's circuit-drawing style
// (Figs. 3, 7, 8): one horizontal line per wire, inputs on the left, with
// ● for control bits, ⊕ for target bits, and │ joining the wires a gate
// spans. For the Fig. 1 circuit the output is:
//
//	a ─⊕──●──●─
//	b ────⊕──│─
//	c ────●──⊕─   (controls/targets per gate column)
func (c *Circuit) Diagram() string {
	rows := make([][]rune, c.Wires)
	for w := range rows {
		rows[w] = append(rows[w], []rune(bits.VarName(w)+" ─")...)
	}
	// Wire-name widths differ once past "z"; pad to align.
	width := 0
	for w := range rows {
		if len(rows[w]) > width {
			width = len(rows[w])
		}
	}
	for w := range rows {
		for len(rows[w]) < width {
			rows[w] = append(rows[w], '─')
		}
	}
	for _, g := range c.Gates {
		lo, hi := g.Target, g.Target
		for _, v := range bits.Vars(g.Controls) {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for w := 0; w < c.Wires; w++ {
			var r rune
			switch {
			case w == g.Target:
				r = '⊕'
			case bits.Has(g.Controls, w):
				r = '●'
			case w > lo && w < hi:
				r = '│'
			default:
				r = '─'
			}
			rows[w] = append(rows[w], r, '─', '─')
		}
	}
	var b strings.Builder
	for w, row := range rows {
		if w > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(strings.TrimRight(string(row), " "))
	}
	return b.String()
}
