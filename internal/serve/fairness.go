package serve

// Per-client fairness. One chatty client must not starve everyone else's
// queue slots, so submissions pass a per-client token bucket before the
// body is even decoded. Clients are keyed by the X-Client-ID header when
// present (so a NATed fleet can still be told apart) and by remote host
// otherwise. Over-limit submissions shed with 429 + Retry-After, the same
// back-pressure contract as a full queue.

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// clientKey identifies the submitting client for fairness accounting.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return "id:" + id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}

// limiter is a lazy-refill token bucket per client key.
type limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = 1 + int(rate) // a second's worth of headroom plus one
	}
	if now == nil {
		now = time.Now
	}
	return &limiter{rate: rate, burst: float64(burst), now: now, buckets: make(map[string]*bucket)}
}

// allow takes one token from key's bucket. When the bucket is dry it
// reports false and how long until the next token accrues.
func (l *limiter) allow(key string) (bool, time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= 4096 {
			// Hard cap against key-churn abuse (spoofed client IDs): evict
			// everything idle; if nothing is, fail open rather than grow.
			l.sweepLocked(now)
			if len(l.buckets) >= 4096 {
				return true, 0
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens = min(l.burst, b.tokens+l.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// sweepLocked drops only buckets whose lazy refill has already brought
// them back to full: recreating such a bucket is indistinguishable from
// keeping it, because a fresh bucket starts full. Any wall-clock rule is
// unsound here — this sweep runs under key-churn pressure (a flood of
// spoofed X-Client-IDs keeps the map at its cap), and evicting a bucket
// that is merely old forgets the debt of a still-throttled client: its
// next submission would mint a fresh full bucket, so the abuser that
// caused the sweep also resets every active client's limit. At low
// sustained rates the refill window (burst/rate) is far longer than any
// fixed idle cutoff.
func (l *limiter) sweepLocked(now time.Time) {
	for k, b := range l.buckets {
		idle := now.Sub(b.last)
		if b.tokens+l.rate*idle.Seconds() >= l.burst {
			delete(l.buckets, k)
		}
	}
}
