package snapshot

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem seam the durable artifacts (checkpoints, ledgers,
// cache entries, quarantine evidence) read and write through. Production
// code uses DiskFS; the fault-injection harnesses wrap it — faultfs to
// crash at an exact operation index (crash-at-every-write-point recovery
// tests), chaos to inject persistent ENOSPC/EIO/read-only faults per path
// prefix (graceful-degradation soak tests), and health.GuardFS to put a
// circuit breaker in front of a fault domain.
type FS interface {
	// CreateTemp creates a new unique temporary file in dir (pattern as
	// in os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (best-effort cleanup of temp files).
	Remove(name string) error
	// SyncDir flushes the directory entry so the rename itself is durable.
	SyncDir(dir string) error
	// ReadFile reads a file whole (as in os.ReadFile). A missing file
	// must surface as an fs.ErrNotExist-wrapping error so callers can
	// tell "no artifact yet" from an I/O fault.
	ReadFile(name string) ([]byte, error)
}

// File is the writable handle CreateTemp returns.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// DiskFS is the real-filesystem FS.
var DiskFS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Some filesystems refuse fsync on directories; the rename is still
	// atomic there, only its durability window widens, so don't fail the
	// checkpoint over it.
	_ = d.Sync()
	return d.Close()
}

// WriteFile atomically replaces path with the encoded state: the image is
// written to a fresh temp file in the same directory, fsynced, closed,
// renamed over path, and the directory entry is fsynced. A crash (or an
// injected fault) at any point leaves either the previous file intact or
// the new one complete — the partially written temp file is never visible
// under path. On error the temp file is removed best-effort.
func WriteFile(fs FS, path string, st *State) error {
	_, err := WriteFileN(fs, path, st)
	return err
}

// WriteFileN is WriteFile reporting the encoded image size in bytes — the
// checkpoint write/flush telemetry the observability layer records (a
// growing snapshot mirrors a growing frontier, and sudden size jumps often
// explain checkpoint latency). The size is returned on success only.
func WriteFileN(fs FS, path string, st *State) (int64, error) {
	data := Encode(st)
	if err := WriteRaw(fs, path, data); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// WriteRaw atomically replaces path with data using the same
// temp-file+fsync+rename protocol as WriteFile. It is the byte-level seam
// the other durable artifacts in the tree (the service's drain ledger, the
// answer cache's entries) share, so one crash-enumerated write path covers
// them all.
func WriteRaw(fs FS, path string, data []byte) error {
	if fs == nil {
		fs = DiskFS
	}
	dir := filepath.Dir(path)
	f, err := fs.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: create temp: %w", err)
	}
	tmp := f.Name()
	fail := func(stage string, err error) error {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("snapshot: %s: %w", stage, err)
	}
	if _, err := f.Write(data); err != nil {
		return fail("write", err)
	}
	if err := f.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("snapshot: close: %w", err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("snapshot: rename: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("snapshot: sync dir: %w", err)
	}
	return nil
}

// ReadFile loads and decodes a snapshot. A missing file surfaces as an
// fs.ErrNotExist-wrapping error (no checkpoint yet — callers start fresh);
// damage surfaces as ErrCorrupt / ErrVersionSkew / ErrNotSnapshot.
func ReadFile(path string) (*State, error) {
	return ReadFileFS(DiskFS, path)
}

// ReadFileFS is ReadFile reading through an injectable FS, so the fault
// harnesses cover the read side of the recovery path too.
func ReadFileFS(fs FS, path string) (*State, error) {
	if fs == nil {
		fs = DiskFS
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
