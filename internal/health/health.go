// Package health is the runtime fault-domain supervisor: it wraps every
// optional dependency of a long-running synthesis process — the answer
// cache's disk store, checkpoint and ledger writes, quarantine artifacts —
// in a per-domain circuit breaker so a persistent I/O fault sheds the
// *feature*, never the *job*.
//
// Each Breaker follows the classic three-state protocol: it starts closed
// (operations flow through, failures are counted), opens after Threshold
// consecutive failures (operations are rejected instantly, so a dead disk
// costs a map lookup instead of a blocking syscall), and half-opens after
// an exponential backoff with jitter to let exactly one probe through; a
// successful probe closes the breaker again, a failed one re-opens it with
// a doubled backoff (capped at MaxBackoff).
//
// A Supervisor is a named registry of breakers — the fault domains — with
// a snapshot view for health endpoints and a readiness rule: the process
// is ready when no *required* domain is open. Domains default to optional,
// matching the design rule that the search engine needs none of them to
// produce a verified circuit.
//
// State transitions are reported to the process-wide
// rmrls.health_{trips,probes,recoveries,open_domains} expvars via
// internal/obs, so a scraper sees degradation without asking the server.
package health

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// State is a breaker's position in the closed → open → half-open cycle.
type State int

const (
	// Closed: the domain is healthy; operations flow through.
	Closed State = iota
	// Open: the domain tripped; operations are rejected until the next
	// probe time.
	Open
	// HalfOpen: a probe operation is in flight; its outcome decides
	// between Closed and a re-opened, longer backoff.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// ErrOpen is the fast-fail error a guarded operation gets while its domain
// is open: no I/O was attempted.
type ErrOpen struct {
	// Domain names the tripped fault domain.
	Domain string
	// RetryIn is how long until the next half-open probe is allowed.
	RetryIn time.Duration
}

func (e *ErrOpen) Error() string {
	return fmt.Sprintf("health: %s domain open (next probe in %v)", e.Domain, e.RetryIn.Round(time.Millisecond))
}

// IsOpen reports whether err is (or wraps) a breaker fast-fail — an
// operation that never reached the device.
func IsOpen(err error) bool {
	var eo *ErrOpen
	return errors.As(err, &eo)
}

// Config tunes one breaker. The zero value selects the documented
// defaults.
type Config struct {
	// Threshold is how many consecutive failures trip a closed breaker
	// (default 3).
	Threshold int
	// BaseBackoff is the first open window (default 500 ms); each failed
	// probe doubles it.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 30 s).
	MaxBackoff time.Duration
	// NoJitter disables the randomized backoff spread — deterministic
	// open windows for tests.
	NoJitter bool
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 500 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is one fault domain's circuit breaker. Safe for concurrent use.
// The zero value is not usable; create breakers through a Supervisor (or
// NewBreaker in tests).
type Breaker struct {
	name     string
	required bool
	cfg      Config

	mu          sync.Mutex
	state       State
	consecFails int
	backoff     time.Duration // current open window (0 until first trip)
	nextProbe   time.Time     // when Open may half-open
	changedAt   time.Time
	lastErr     string
	rng         *rand.Rand

	trips, reopens, probes, recoveries int64
	failures, successes, rejections    int64
}

// NewBreaker returns a standalone breaker (tests; production code should
// register domains on a Supervisor so they are visible in health views).
func NewBreaker(name string, cfg Config) *Breaker {
	c := cfg.withDefaults()
	seed := uint64(14695981039346656037)
	for _, b := range []byte(name) {
		seed = (seed ^ uint64(b)) * 1099511628211
	}
	return &Breaker{
		name:      name,
		cfg:       c,
		changedAt: c.Now(),
		rng:       rand.New(rand.NewSource(int64(seed))),
	}
}

// Name returns the domain name.
func (b *Breaker) Name() string { return b.name }

// State returns the current breaker state (Open reported as HalfOpen only
// while a probe is actually admitted).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether an operation may proceed. While the domain is
// open it returns false — instantly, no I/O — until the backoff expires,
// at which point it admits a single half-open probe (and pushes the next
// admission one base-backoff out, so a crowd of callers cannot stampede a
// recovering disk). Callers that proceed must Record the outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	switch b.state {
	case Closed:
		return true
	case Open, HalfOpen:
		if now.Before(b.nextProbe) {
			b.rejections++
			return false
		}
		if b.state == Open {
			b.setState(HalfOpen, now)
		}
		b.probes++
		obs.IncBreakerProbe()
		// Space out follow-up probes in case this one never reports
		// (e.g. its operation was skipped): the breaker must not wedge.
		b.nextProbe = now.Add(b.cfg.BaseBackoff)
		return true
	}
	return true
}

// Record feeds an operation outcome to the breaker: nil is a success
// (closing a half-open domain, resetting the failure streak), non-nil is
// a failure (tripping the domain at Threshold consecutive failures, or
// re-opening a half-open one with a doubled backoff). ErrOpen rejections
// must not be Recorded — they are bookkept by Allow.
func (b *Breaker) Record(err error) {
	if err != nil && IsOpen(err) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	if err == nil {
		b.successes++
		b.consecFails = 0
		if b.state != Closed {
			b.setState(Closed, now)
			b.backoff = 0
			b.recoveries++
			obs.IncBreakerRecovery()
			obs.AddOpenDomains(-1)
		}
		return
	}
	b.failures++
	b.consecFails++
	b.lastErr = err.Error()
	switch b.state {
	case Closed:
		if b.consecFails < b.cfg.Threshold {
			return
		}
		b.trips++
		obs.IncBreakerTrip()
		obs.AddOpenDomains(1)
		b.backoff = b.cfg.BaseBackoff
		b.setState(Open, now)
		b.nextProbe = now.Add(b.jittered(b.backoff))
	case HalfOpen, Open:
		// A failed probe (or a straggling in-flight operation): back off
		// harder. The domain counts as one continuous outage, so the
		// open-domain gauge does not move again.
		b.reopens++
		b.backoff = min(2*b.backoffOrBase(), b.cfg.MaxBackoff)
		b.setState(Open, now)
		b.nextProbe = now.Add(b.jittered(b.backoff))
	}
}

// Trip forces the domain open immediately, as if Threshold consecutive
// failures had been recorded — for faults discovered outside the guarded
// I/O path, like an unusable state directory at startup. The domain heals
// the normal way: a half-open probe succeeds and it re-closes.
func (b *Breaker) Trip(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	b.failures++
	b.consecFails = max(b.consecFails+1, b.cfg.Threshold)
	if err != nil {
		b.lastErr = err.Error()
	}
	if b.state == Closed {
		b.trips++
		obs.IncBreakerTrip()
		obs.AddOpenDomains(1)
	} else {
		b.reopens++
	}
	b.backoff = b.backoffOrBase()
	b.setState(Open, now)
	b.nextProbe = now.Add(b.jittered(b.backoff))
}

// Do is the convenience guard: it fast-fails with *ErrOpen while the
// domain is open, otherwise runs op and Records its outcome.
func (b *Breaker) Do(op func() error) error {
	if !b.Allow() {
		return &ErrOpen{Domain: b.name, RetryIn: b.retryIn()}
	}
	err := op()
	b.Record(err)
	return err
}

func (b *Breaker) backoffOrBase() time.Duration {
	if b.backoff <= 0 {
		return b.cfg.BaseBackoff
	}
	return b.backoff
}

// jittered spreads a backoff over [½w, w] so breakers that tripped
// together do not probe in lockstep.
func (b *Breaker) jittered(w time.Duration) time.Duration {
	if b.cfg.NoJitter || w <= 1 {
		return w
	}
	half := w / 2
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}

func (b *Breaker) setState(s State, now time.Time) {
	b.state = s
	b.changedAt = now
}

func (b *Breaker) retryIn() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Closed {
		return 0
	}
	d := b.nextProbe.Sub(b.cfg.Now())
	if d < 0 {
		return 0
	}
	return d
}

// View is a point-in-time snapshot of one domain for health endpoints.
type View struct {
	Name     string `json:"name"`
	State    string `json:"state"`
	Required bool   `json:"required"`
	// ConsecutiveFailures is the current failure streak (resets on any
	// success).
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// Trips counts closed→open transitions; Reopens counts failed
	// half-open probes; Recoveries counts re-closes.
	Trips      int64 `json:"trips"`
	Reopens    int64 `json:"reopens,omitempty"`
	Probes     int64 `json:"probes,omitempty"`
	Recoveries int64 `json:"recoveries,omitempty"`
	// Failures/Successes/Rejections are operation totals (rejections
	// never reached the device).
	Failures   int64 `json:"failures,omitempty"`
	Successes  int64 `json:"successes,omitempty"`
	Rejections int64 `json:"rejections,omitempty"`
	// LastError is the most recent recorded failure.
	LastError string `json:"last_error,omitempty"`
	// RetryInMillis is how long until the next probe (open domains only).
	RetryInMillis int64 `json:"retry_in_ms,omitempty"`
}

// View snapshots the breaker.
func (b *Breaker) View() View {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := View{
		Name:                b.name,
		State:               b.state.String(),
		Required:            b.required,
		ConsecutiveFailures: b.consecFails,
		Trips:               b.trips,
		Reopens:             b.reopens,
		Probes:              b.probes,
		Recoveries:          b.recoveries,
		Failures:            b.failures,
		Successes:           b.successes,
		Rejections:          b.rejections,
		LastError:           b.lastErr,
	}
	if b.state != Closed {
		if d := b.nextProbe.Sub(b.cfg.Now()); d > 0 {
			v.RetryInMillis = d.Milliseconds()
		}
	}
	return v
}

// Supervisor is the registry of a process's fault domains. Safe for
// concurrent use.
type Supervisor struct {
	mu      sync.Mutex
	order   []string
	domains map[string]*Breaker
}

// NewSupervisor returns an empty supervisor.
func NewSupervisor() *Supervisor {
	return &Supervisor{domains: make(map[string]*Breaker)}
}

// Register creates (or returns) the named domain's breaker. Registering
// an existing name returns the existing breaker with required updated —
// marking a domain required is idempotent and sticky.
func (s *Supervisor) Register(name string, required bool, cfg Config) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.domains[name]; ok {
		if required {
			b.mu.Lock()
			b.required = true
			b.mu.Unlock()
		}
		return b
	}
	b := NewBreaker(name, cfg)
	b.required = required
	s.domains[name] = b
	s.order = append(s.order, name)
	return b
}

// Domain returns the named breaker, or nil if it was never registered.
func (s *Supervisor) Domain(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.domains[name]
}

// Views snapshots every domain in registration order.
func (s *Supervisor) Views() []View {
	s.mu.Lock()
	names := append([]string(nil), s.order...)
	ds := make([]*Breaker, len(names))
	for i, n := range names {
		ds[i] = s.domains[n]
	}
	s.mu.Unlock()
	out := make([]View, len(ds))
	for i, b := range ds {
		out[i] = b.View()
	}
	return out
}

// Ready reports whether every *required* domain is closed, and if not,
// the first offending domain's name. Optional domains never gate
// readiness — their features shed instead.
func (s *Supervisor) Ready() (bool, string) {
	for _, v := range s.Views() {
		if v.Required && v.State != Closed.String() {
			return false, v.Name
		}
	}
	return true, ""
}

// Degraded reports whether any domain (required or not) is away from
// closed — the "something is shedding" signal for health summaries.
func (s *Supervisor) Degraded() bool {
	for _, v := range s.Views() {
		if v.State != Closed.String() {
			return true
		}
	}
	return false
}
