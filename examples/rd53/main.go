// rd53: synthesize the MCNC rd53 benchmark (Example 9 of the paper) — the
// 3-bit count of ones of five inputs — and compare RMRLS against the
// transformation-based baseline on gate count and quantum cost.
package main

import (
	"fmt"
	"log"
	"time"

	rmrls "repro"
)

func main() {
	b, err := rmrls.BenchmarkByName("rd53")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n", b.Name, b.Description)
	fmt.Printf("wires: %d (%d real inputs + %d constants)\n\n",
		b.Wires, b.RealInputs, b.GarbageInputs)

	// Counting functions like rd53 have elimination plateaus that defeat
	// any single search configuration; the portfolio (three priority
	// shapes + iterative tightening) is the robust entry point.
	opts := rmrls.DefaultOptions()
	opts.TimeLimit = 60 * time.Second // the paper's per-benchmark limit
	opts.TotalSteps = 200000
	opts.ImproveSteps = 30000
	spec, err := rmrls.PPRMOf(b.Spec)
	if err != nil {
		log.Fatal(err)
	}
	res := rmrls.SynthesizePortfolio(spec, opts, 4)
	if !res.Found {
		log.Fatalf("no circuit found in %v", opts.TimeLimit)
	}
	if err := rmrls.Verify(res.Circuit, b.Spec); err != nil {
		log.Fatal(err)
	}

	baseline := rmrls.SynthesizeMMD(b.Spec, true)

	fmt.Printf("RMRLS:    %d gates, quantum cost %d (paper: %d gates, cost %d)\n",
		res.Circuit.Len(), res.Circuit.QuantumCost(), b.PaperGates, b.PaperCost)
	fmt.Printf("MMD:      %d gates, quantum cost %d\n",
		baseline.Len(), baseline.QuantumCost())
	if b.Best != nil {
		fmt.Printf("best[13]: %d gates, quantum cost %d\n", b.Best.Gates, b.Best.Cost)
	}
	fmt.Printf("\ncircuit: %s\n", res.Circuit)

	// Spot-check the semantics the paper quotes: {00101} has two ones.
	in := uint32(0b00101)
	out := b.Embedding.OriginalOutput(res.Circuit.Apply(in))
	fmt.Printf("\ncount of ones in 00101 = %03b (want 010)\n", out)
}
