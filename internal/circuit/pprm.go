package circuit

import "repro/internal/pprm"

// PPRM returns the positive-polarity Reed–Muller expansion of the function
// the cascade realizes, computed symbolically: gate k with target t and
// controls F corresponds to the substitution v_t = v_t ⊕ F, and the
// expansion of a cascade G1…Gk is obtained by substituting Gk, …, G1 (in
// reverse circuit order) into the identity expansion — each substitution is
// an involution, and substituting G1 into the cascade's expansion yields
// the expansion of G2…Gk.
//
// Unlike pprm.FromPerm this never touches a truth table, so it works for
// circuits far beyond exhaustive-simulation width (e.g. the 30-wire shift28
// benchmark) in time proportional to the expansion size.
func (c *Circuit) PPRM() *pprm.Spec {
	spec := pprm.Identity(c.Wires)
	for i := len(c.Gates) - 1; i >= 0; i-- {
		g := c.Gates[i]
		spec.Substitute(g.Target, g.Controls)
	}
	return spec
}
