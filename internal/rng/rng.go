// Package rng provides a small, deterministic pseudo-random number
// generator (splitmix64) used wherever the experiments need randomness.
//
// The standard library's math/rand would work, but a local generator keeps
// every experiment bit-reproducible across Go releases (math/rand's
// algorithms and default seeding have changed over time) and costs only a
// few lines.
package rng

// Source is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping is fine here: the bias for the
	// tiny n used in this repository (< 2^32) is far below anything the
	// experiments could observe.
	return int((s.Uint64() >> 1) % uint64(n))
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher–Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns a pseudo-random boolean.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }
