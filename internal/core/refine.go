package core

import (
	"repro/internal/pprm"
)

// SynthesizePortfolio runs a small portfolio of complementary search
// configurations and returns the best circuit any of them finds, followed
// by iterative tightening. No single priority shape wins everywhere:
// the default A* charge (α = −0.6) is strongest on random functions and
// arithmetic, a shallower charge (α = −0.3) traverses the elimination
// plateaus of counting functions (rd53, 2of5), and the paper-shaped
// eliminations-per-gate ordering (β·elim/depth) finds the shortest rd53
// realizations. The paper compensated with 60–180 s wall-clock budgets;
// the portfolio is the deterministic equivalent. Each variant gets the
// caller's TotalSteps budget.
func SynthesizePortfolio(spec *pprm.Spec, opts Options, rounds int) Result {
	variants := []func(*Options){
		func(o *Options) {},
		func(o *Options) {
			if o.LinearElim && o.Alpha < 0 {
				o.Alpha = -0.3
			}
		},
		func(o *Options) {
			o.LinearElim = false
			o.Alpha, o.Beta, o.Gamma = 0, 0.95, 0.05
		},
	}
	var best Result
	for _, mut := range variants {
		v := opts
		mut(&v)
		r := Synthesize(spec, v)
		best.Steps += r.Steps
		best.Nodes += r.Nodes
		best.Elapsed += r.Elapsed
		if r.Found && (!best.Found || r.Circuit.Len() < best.Circuit.Len()) {
			best.Found = true
			best.Circuit = r.Circuit
		}
	}
	if !best.Found {
		return best
	}
	tight := opts
	tight.MaxGates = best.Circuit.Len() // bound the refinement's baseline
	refined := synthesizeTightening(spec, tight, best.Circuit.Len(), rounds)
	refined.Steps += best.Steps
	refined.Nodes += best.Nodes
	refined.Elapsed += best.Elapsed
	if refined.Found && refined.Circuit.Len() < best.Circuit.Len() {
		best.Circuit = refined.Circuit
	}
	best.Steps = refined.Steps
	best.Nodes = refined.Nodes
	best.Elapsed = refined.Elapsed
	return best
}

// synthesizeTightening runs `rounds` strictly-below-bound searches.
func synthesizeTightening(spec *pprm.Spec, opts Options, gates, rounds int) Result {
	var out Result
	bound := gates
	for round := 0; round < rounds; round++ {
		if bound <= 1 {
			break
		}
		tight := opts
		tight.MaxGates = bound - 1
		tight.FirstSolution = true
		if tight.LinearElim && tight.Alpha < 0 {
			tight.Alpha = 1.5 * tight.Alpha
		}
		r := Synthesize(spec, tight)
		out.Steps += r.Steps
		out.Nodes += r.Nodes
		out.Elapsed += r.Elapsed
		if !r.Found {
			break
		}
		out.Found = true
		out.Circuit = r.Circuit
		bound = r.Circuit.Len()
	}
	return out
}

// SynthesizeIterative improves on Synthesize by iterative tightening: after
// a circuit of G gates is found, the search is re-run from scratch with
// MaxGates = G−1, so the whole budget of the next round is spent strictly
// below the best known size (where the priority focuses on shorter
// realizations), instead of on an already-found frontier. Rounds stop when
// a round finds nothing better or `rounds` re-runs have been made.
//
// This plays the role of the paper's long per-function improvement phases
// (it kept searching for up to 60–180 s after the first solution) within
// deterministic step budgets. The first round runs with the caller's
// options verbatim; tightening rounds reuse the caller's TotalSteps budget
// and stop at their first (necessarily better) solution.
func SynthesizeIterative(spec *pprm.Spec, opts Options, rounds int) Result {
	best := Synthesize(spec, opts)
	if !best.Found {
		return best
	}
	for round := 0; round < rounds; round++ {
		bound := best.Circuit.Len() - 1
		if bound <= 0 {
			break
		}
		tight := opts
		tight.MaxGates = bound
		tight.FirstSolution = true
		if tight.LinearElim && tight.Alpha < 0 {
			// Tightening rounds can afford a steeper per-gate charge: the
			// search is now looking only for strictly shorter circuits, so
			// quality-oriented ordering pays. Empirically (random
			// 5-variable functions, equal budgets) −0.9 recovers the
			// paper's Table III sizes where −0.6 alone lands ~6 gates
			// higher.
			tight.Alpha = 1.5 * tight.Alpha
		}
		r := Synthesize(spec, tight)
		best.Steps += r.Steps
		best.Nodes += r.Nodes
		best.Restarts += r.Restarts
		best.Elapsed += r.Elapsed
		if !r.Found {
			break
		}
		best.Circuit = r.Circuit
	}
	return best
}
