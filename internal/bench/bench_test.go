package bench

import (
	"fmt"
	"testing"

	"repro/internal/perm"
	"repro/internal/tt"
)

func TestRegistryComplete(t *testing.T) {
	if len(TableIV()) != 29 {
		t.Errorf("Table IV has %d rows, want 29", len(TableIV()))
	}
	if len(Examples()) != 14 {
		t.Errorf("Examples has %d entries, want 14", len(Examples()))
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestAllSpecsValid(t *testing.T) {
	for _, b := range All() {
		if b.Spec != nil {
			if err := b.Spec.Validate(); err != nil {
				t.Errorf("%s: invalid spec: %v", b.Name, err)
			}
			if b.Spec.Vars() != b.Wires {
				t.Errorf("%s: spec width %d ≠ wires %d", b.Name, b.Spec.Vars(), b.Wires)
			}
		}
		if b.RealInputs+b.GarbageInputs != b.Wires {
			t.Errorf("%s: real %d + garbage %d ≠ wires %d",
				b.Name, b.RealInputs, b.GarbageInputs, b.Wires)
		}
		spec, err := b.PPRMSpec()
		if err != nil {
			t.Errorf("%s: PPRM: %v", b.Name, err)
			continue
		}
		if spec.N != b.Wires {
			t.Errorf("%s: PPRM width %d ≠ wires %d", b.Name, spec.N, b.Wires)
		}
	}
}

func TestPPRMMatchesSpec(t *testing.T) {
	for _, b := range All() {
		if b.Spec == nil || b.Wires > 14 {
			continue // wide specs checked separately by sampling
		}
		spec, err := b.PPRMSpec()
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.ToPerm(); !got.Equal(b.Spec) {
			t.Errorf("%s: PPRM evaluates to a different function", b.Name)
		}
	}
}

func TestShifterFunction(t *testing.T) {
	// The paper's Example 14: control value s shifts the sequence by s.
	c := ShifterCircuit(4)
	p := c.Perm()
	for s := uint32(0); s < 4; s++ {
		for d := uint32(0); d < 16; d++ {
			in := s<<4 | d
			want := s<<4 | (d+s)%16
			if p[in] != want {
				t.Fatalf("shifter(s=%d, d=%d) = %d, want %d", s, d, p[in], want)
			}
		}
	}
	if c.Len() != 2*4-1 {
		t.Errorf("ShifterCircuit(4) has %d gates, want 7", c.Len())
	}
}

func TestShifterMatchesPublishedReference(t *testing.T) {
	// shift10's best published realization [13] has 19 gates = 2n−1.
	if got := ShifterCircuit(10).Len(); got != 19 {
		t.Errorf("ShifterCircuit(10) = %d gates, want 19", got)
	}
}

func TestShift28PPRMSampled(t *testing.T) {
	// shift28 is too wide to simulate exhaustively; check the symbolic
	// PPRM on sampled assignments against the arithmetic definition.
	b, err := ByName("shift28")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := b.PPRMSpec()
	if err != nil {
		t.Fatal(err)
	}
	const n = 28
	mask := uint32(1)<<n - 1
	for _, x := range []uint32{0, 1, mask, 0x0F0F0F0, 1 << 27, 3<<28 | 12345} {
		s := x >> n & 3
		d := x & mask
		want := s<<n | (d+s)&mask
		if got := spec.Eval(x); got != want {
			t.Errorf("shift28 PPRM(%#x) = %#x, want %#x", x, got, want)
		}
	}
}

func TestGraycode(t *testing.T) {
	b, err := ByName("graycode6")
	if err != nil {
		t.Fatal(err)
	}
	// Gray code of 5 is 111 ^ ... : g = x ^ (x>>1): gray(5)=7.
	if b.Spec[5] != 7 {
		t.Errorf("graycode6(5) = %d, want 7", b.Spec[5])
	}
	spec, _ := b.PPRMSpec()
	if got := spec.ToPerm(); !got.Equal(b.Spec) {
		t.Error("graycode PPRM disagrees with permutation")
	}
}

func TestHwb4Definition(t *testing.T) {
	b, err := ByName("hwb4")
	if err != nil {
		t.Fatal(err)
	}
	// weight(0b0011)=2 → rotate left 2 → 0b1100.
	if b.Spec[0b0011] != 0b1100 {
		t.Errorf("hwb4(0011) = %04b, want 1100", b.Spec[0b0011])
	}
	// weight 0 → unchanged.
	if b.Spec[0] != 0 {
		t.Errorf("hwb4(0) = %d, want 0", b.Spec[0])
	}
}

func TestModAdder(t *testing.T) {
	b, err := ByName("mod5adder")
	if err != nil {
		t.Fatal(err)
	}
	// a=3 (low wires), b=4 (high wires): b' = (3+4) mod 5 = 2.
	in := uint32(4<<3 | 3)
	want := uint32(2<<3 | 3)
	if got := b.Spec[in]; got != want {
		t.Errorf("mod5adder(a=3,b=4) = %d, want %d", got, want)
	}
	// Invalid codes map to themselves.
	in = uint32(7<<3 | 1)
	if got := b.Spec[in]; got != uint32(in) {
		t.Errorf("mod5adder on invalid code changed it")
	}
}

func TestMajorityEmbeddings(t *testing.T) {
	// majority3's auto-embedding must compute the majority on its real
	// rows (the embedding records which wire carries the output).
	b, err := ByName("majority3")
	if err != nil {
		t.Fatal(err)
	}
	if b.Embedding == nil {
		t.Fatal("majority3 should record its embedding")
	}
	for x := uint32(0); x < 8; x++ {
		want := uint32(0)
		if tt.OnesCount(x) >= 2 {
			want = 1
		}
		if got := b.Embedding.OriginalOutput(b.Spec[x]); got != want {
			t.Errorf("majority3(%03b) = %d, want %d", x, got, want)
		}
	}
}

func TestXor5IsLinear(t *testing.T) {
	b, err := ByName("xor5")
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := b.PPRMSpec()
	for i := 0; i < spec.N; i++ {
		for _, term := range spec.Out[i].Terms() {
			if term != 0 && term&(term-1) != 0 {
				t.Fatalf("xor5 expansion has nonlinear term in output %d", i)
			}
		}
	}
}

func TestPaperSpecsQuotedCorrectly(t *testing.T) {
	// Spot checks against the printed truth tables.
	alu, _ := ByName("alu")
	// Fig. 9: control 000 → F = 1 regardless of A, B.
	// Row 4 of the printed spec is 0 (see Example 13's specification).
	if alu.Spec[4] != 0 {
		t.Errorf("alu spec row 4 = %d, want 0", alu.Spec[4])
	}
	dec, _ := ByName("decod24")
	if dec.Spec[0] != 1 || dec.Spec[3] != 8 {
		t.Errorf("decod24 rows 0/3 = %d/%d, want 1/8", dec.Spec[0], dec.Spec[3])
	}
}

func TestFulladderMatchesFig2b(t *testing.T) {
	// The Example 8 spec is the Fig. 2(b) reversible augmented
	// full-adder; verify the carry/sum/propagate functions on real rows
	// (garbage input d = 0 ⇒ rows 0–7 of Fig. 2(b)).
	b, err := ByName("fulladder")
	if err != nil {
		t.Fatal(err)
	}
	for x := uint32(0); x < 8; x++ {
		a := x & 1
		bb := x >> 1 & 1
		c := x >> 2 & 1
		carry := a&bb | bb&c | a&c
		sum := a ^ bb ^ c
		prop := a ^ bb
		got := b.Spec[x]
		// Fig. 2(b) output order (c_o, s_o, p_o, g_o) with c_o the MSB.
		if got>>3&1 != carry || got>>2&1 != sum || got>>1&1 != prop {
			t.Errorf("fulladder(%03b): got %04b, want carry=%d sum=%d prop=%d",
				x, got, carry, sum, prop)
		}
	}
}

func TestStandInsAreMarked(t *testing.T) {
	for _, name := range []string{"ham3", "ham7"} {
		b, _ := ByName(name)
		if b == nil || !b.StandIn {
			t.Errorf("%s must be marked as a stand-in", name)
		}
	}
}

func TestHam7Nonlinear(t *testing.T) {
	b, _ := ByName("ham7")
	spec, _ := b.PPRMSpec()
	nonlinear := false
	for i := range spec.Out {
		for _, term := range spec.Out[i].Terms() {
			if term != 0 && term&(term-1) != 0 {
				nonlinear = true
			}
		}
	}
	if !nonlinear {
		t.Error("ham7 stand-in should be nonlinear like the original")
	}
	if err := perm.Perm(b.Spec).Validate(); err != nil {
		t.Error(err)
	}
}

func TestExtendedFamilies(t *testing.T) {
	fams := ExtendedFamilies()
	if len(fams) != 9 {
		t.Fatalf("extended families = %d", len(fams))
	}
	for _, b := range fams {
		if b.Spec == nil {
			t.Errorf("%s: missing spec", b.Name)
			continue
		}
		if err := b.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestHwbFamilyDefinition(t *testing.T) {
	for _, n := range []int{5, 6, 8} {
		b, err := ByName(fmt.Sprintf("hwb%d", n))
		if err != nil {
			t.Fatal(err)
		}
		// All-ones rotates by n ≡ 0: fixed point.
		all := uint32(1)<<uint(n) - 1
		if b.Spec[all] != all {
			t.Errorf("hwb%d(all-ones) = %d", n, b.Spec[all])
		}
	}
}

func TestSymDefinition(t *testing.T) {
	b, _ := ByName("6sym")
	// weight 3 → 1, weight 1 → 0, on the real rows via the embedding.
	if got := b.Embedding.OriginalOutput(b.Spec[0b000111]); got != 1 {
		t.Errorf("6sym(weight 3) = %d", got)
	}
	if got := b.Embedding.OriginalOutput(b.Spec[0b000001]); got != 0 {
		t.Errorf("6sym(weight 1) = %d", got)
	}
}

func TestRd73Definition(t *testing.T) {
	b, _ := ByName("rd73")
	if got := b.Embedding.OriginalOutput(b.Spec[0b1111111]); got != 7 {
		t.Errorf("rd73(weight 7) = %d", got)
	}
}

func TestMul3Mod16Reversible(t *testing.T) {
	b, _ := ByName("mul3mod16")
	if b.Spec[5] != 15 {
		t.Errorf("3·5 mod 16 = %d, want 15", b.Spec[5])
	}
}
