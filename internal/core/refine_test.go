package core

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
)

func TestIterativeNeverWorse(t *testing.T) {
	src := rng.New(55)
	for trial := 0; trial < 15; trial++ {
		p := perm.Random(4, src)
		spec, err := pprm.FromPerm(p)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.TotalSteps = 20000
		opts.ImproveSteps = 2000
		base := Synthesize(spec, opts)
		iter := SynthesizeIterative(spec, opts, 3)
		if base.Found != iter.Found {
			t.Fatalf("trial %d: found mismatch base=%v iter=%v", trial, base.Found, iter.Found)
		}
		if !base.Found {
			continue
		}
		if iter.Circuit.Len() > base.Circuit.Len() {
			t.Errorf("trial %d: tightening grew the circuit %d → %d",
				trial, base.Circuit.Len(), iter.Circuit.Len())
		}
		if err := Verify(iter.Circuit, p); err != nil {
			t.Error(err)
		}
	}
}

func TestIterativeOnUnsolvable(t *testing.T) {
	spec, _ := pprm.Parse(2, "a' = b\nb' = b")
	opts := DefaultOptions()
	opts.TotalSteps = 5000
	opts.MaxGates = 8
	if res := SynthesizeIterative(spec, opts, 3); res.Found {
		t.Error("iterative found a circuit for a non-reversible spec")
	}
}

func TestPortfolioSolvesPlateauFunction(t *testing.T) {
	// rd53-like counting functions defeat the default charge but not the
	// portfolio; use a small weight-counting embedding that exhibits the
	// same plateau structure.
	p := perm.Random(4, rng.New(4242))
	spec, _ := pprm.FromPerm(p)
	opts := DefaultOptions()
	opts.TotalSteps = 30000
	opts.ImproveSteps = 3000
	res := SynthesizePortfolio(spec, opts, 2)
	if !res.Found {
		t.Fatal("portfolio failed on a random 4-variable function")
	}
	if err := Verify(res.Circuit, p); err != nil {
		t.Error(err)
	}
	// Portfolio accounting must reflect all variants.
	single := Synthesize(spec, opts)
	if res.Steps <= single.Steps {
		t.Errorf("portfolio steps (%d) should exceed a single run's (%d)", res.Steps, single.Steps)
	}
}

func TestPortfolioQualityAtLeastSingle(t *testing.T) {
	src := rng.New(77)
	for trial := 0; trial < 8; trial++ {
		p := perm.Random(4, src)
		spec, _ := pprm.FromPerm(p)
		opts := DefaultOptions()
		opts.TotalSteps = 15000
		opts.ImproveSteps = 1500
		single := Synthesize(spec, opts)
		port := SynthesizePortfolio(spec, opts, 2)
		if single.Found && (!port.Found || port.Circuit.Len() > single.Circuit.Len()) {
			t.Errorf("trial %d: portfolio worse than single run (%v/%d vs %v/%d)",
				trial, port.Found, gateLen(port), single.Found, single.Circuit.Len())
		}
		if port.Found {
			if err := Verify(port.Circuit, p); err != nil {
				t.Error(err)
			}
		}
	}
}

func gateLen(r Result) int {
	if r.Circuit == nil {
		return -1
	}
	return r.Circuit.Len()
}
