package rmrls_test

import (
	"context"
	"fmt"
	"time"

	"repro"
)

// ExampleSynthesizeContext synthesizes the paper's Fig. 1 function under a
// cancellable context. The context bounds the whole run; a run canceled
// mid-search still returns a valid Result carrying the best-so-far circuit
// and StopReason == StopCanceled.
func ExampleSynthesizeContext() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	spec := rmrls.MustParseSpec("{1, 0, 7, 2, 3, 4, 5, 6}")
	res, err := rmrls.SynthesizeContext(ctx, spec, rmrls.DefaultOptions())
	if err != nil || !res.Found {
		fmt.Println("no circuit:", res.StopReason, err)
		return
	}
	if err := rmrls.Verify(res.Circuit, spec); err != nil {
		fmt.Println("verification failed:", err)
		return
	}
	fmt.Printf("%s\n", res.Circuit)
	fmt.Printf("gates=%d stop=%s\n", res.Circuit.Len(), res.StopReason)
	// Output:
	// TOF1(a) TOF3(c,a,b) TOF3(b,a,c)
	// gates=3 stop=solved
}
