package esop

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bits"
	"repro/internal/pprm"
)

// Expr is an EXOR sum-of-products over N variables: the function is the
// GF(2) sum of its cubes' product functions. Duplicate cubes are legal (an
// even number of copies cancels) but the constructors and Minimize keep the
// list duplicate-free.
type Expr struct {
	N     int
	Cubes []Cube
}

// Eval returns the expression's value on input assignment x.
func (e *Expr) Eval(x uint32) bool {
	parity := false
	for _, c := range e.Cubes {
		if c.Contains(x) {
			parity = !parity
		}
	}
	return parity
}

// Literals returns the total literal count, a common ESOP size measure.
func (e *Expr) Literals() int {
	n := 0
	for _, c := range e.Cubes {
		n += c.Literals()
	}
	return n
}

// Clone deep-copies the expression.
func (e *Expr) Clone() *Expr {
	return &Expr{N: e.N, Cubes: append([]Cube(nil), e.Cubes...)}
}

// String lists the cubes joined by " ^ ", or "0" for the empty expression.
func (e *Expr) String() string {
	if len(e.Cubes) == 0 {
		return "0"
	}
	parts := make([]string, len(e.Cubes))
	for i, c := range e.Cubes {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ^ ")
}

// FromMinterms builds the trivial ESOP with one full cube per minterm
// (minterms are disjoint, so their OR equals their EXOR).
func FromMinterms(n int, minterms []uint32) (*Expr, error) {
	if n < 1 || n > 30 {
		return nil, fmt.Errorf("esop: unsupported variable count %d", n)
	}
	all := uint32(1)<<uint(n) - 1
	e := &Expr{N: n}
	seen := make(map[uint32]bool, len(minterms))
	for _, m := range minterms {
		if m > all {
			return nil, fmt.Errorf("esop: minterm %d out of range for %d variables", m, n)
		}
		if seen[m] {
			return nil, fmt.Errorf("esop: duplicate minterm %d", m)
		}
		seen[m] = true
		e.Cubes = append(e.Cubes, Cube{Pos: m, Neg: ^m & all})
	}
	return e, nil
}

// FromColumn builds the minterm ESOP of a truth-table column.
func FromColumn(col []bool) (*Expr, error) {
	n := 0
	for size := 1; size < len(col); size <<= 1 {
		n++
	}
	if 1<<uint(n) != len(col) {
		return nil, fmt.Errorf("esop: column length %d is not a power of two", len(col))
	}
	var minterms []uint32
	for x, v := range col {
		if v {
			minterms = append(minterms, uint32(x))
		}
	}
	return FromMinterms(n, minterms)
}

// FromSOP converts an OR of cubes (a sum-of-products cover, not necessarily
// disjoint) into an equivalent ESOP using the classic disjoint-sharp
// expansion: c1 + rest = c1 ⊕ ¬c1·rest, with ¬c1 expanded into the disjoint
// cubes ¬l1, l1¬l2, l1l2¬l3, … over c1's literals.
func FromSOP(n int, cover []Cube) (*Expr, error) {
	if n < 1 || n > 30 {
		return nil, fmt.Errorf("esop: unsupported variable count %d", n)
	}
	e := &Expr{N: n}
	e.Cubes = orToXor(cover)
	return e, nil
}

func orToXor(cover []Cube) []Cube {
	if len(cover) == 0 {
		return nil
	}
	head, rest := cover[0], orToXor(cover[1:])
	out := []Cube{head}
	// ¬head as disjoint cubes, each ANDed with every cube of rest.
	for _, neg := range complementCubes(head) {
		for _, r := range rest {
			if c, ok := intersect(neg, r); ok {
				out = append(out, c)
			}
		}
	}
	return cancelDuplicates(out)
}

// complementCubes returns a disjoint cube cover of ¬c.
func complementCubes(c Cube) []Cube {
	var out []Cube
	var prefix Cube
	for i := 0; i < 32; i++ {
		bit := uint32(1) << uint(i)
		switch {
		case c.Pos&bit != 0:
			out = append(out, Cube{Pos: prefix.Pos, Neg: prefix.Neg | bit})
			prefix.Pos |= bit
		case c.Neg&bit != 0:
			out = append(out, Cube{Pos: prefix.Pos | bit, Neg: prefix.Neg})
			prefix.Neg |= bit
		}
	}
	return out
}

// intersect returns the AND of two cubes, reporting false when they are
// disjoint (some variable appears with opposite polarities).
func intersect(a, b Cube) (Cube, bool) {
	c := Cube{Pos: a.Pos | b.Pos, Neg: a.Neg | b.Neg}
	if c.Pos&c.Neg != 0 {
		return Cube{}, false
	}
	return c, true
}

// cancelDuplicates removes cube pairs (EXOR of two identical cubes is 0).
func cancelDuplicates(cubes []Cube) []Cube {
	count := make(map[Cube]int, len(cubes))
	for _, c := range cubes {
		count[c]++
	}
	out := cubes[:0]
	for _, c := range cubes {
		if count[c]%2 == 1 {
			out = append(out, c)
			count[c] -= 2 // keep exactly one survivor
		}
	}
	// Deterministic order.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Neg < out[j].Neg
	})
	return out
}

// ToPPRM expands the ESOP into positive-polarity Reed–Muller terms via the
// substitution ¬a = a ⊕ 1 (Section II-E): each cube with positive mask P
// and negative mask Q contributes the terms {P ∪ S : S ⊆ Q}, with an even
// number of identical terms cancelling.
func (e *Expr) ToPPRM() pprm.TermSet {
	var ts pprm.TermSet
	for _, c := range e.Cubes {
		// Iterate over all subsets S of c.Neg.
		s := uint32(0)
		for {
			ts.Toggle(bits.Mask(c.Pos | s))
			if s == c.Neg {
				break
			}
			s = (s - c.Neg) & c.Neg // next subset
		}
	}
	return ts
}
