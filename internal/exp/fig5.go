package exp

import (
	"fmt"
	"io"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/pprm"
)

// Fig5 replays the paper's Fig. 5 search walkthrough: the basic algorithm
// on the Fig. 1 function, with every queue operation written to w. The
// run reproduces the narrative — three first-level substitutions with
// a = a ⊕ 1 most attractive, the depth-3 solution via b = b ⊕ ac and
// c = c ⊕ ab, and the late pops that are pruned against bestDepth.
func Fig5(w io.Writer) error {
	p := perm.MustFromInts([]int{1, 0, 7, 2, 3, 4, 5, 6})
	spec, err := pprm.FromPerm(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 1 function %s\nPPRM (Eq. 3):\n%s\n\n", p, spec)

	opts := core.BasicOptions()
	opts.Trace = func(e core.Event) {
		kind := map[core.EventKind]string{
			core.EventPush:     "push",
			core.EventPop:      "pop",
			core.EventSolution: "solution",
			core.EventRestart:  "restart",
		}[e.Kind]
		sub := "(root)"
		if e.Target >= 0 {
			sub = fmt.Sprintf("%s = %s ^ %s", bits.VarName(e.Target),
				bits.VarName(e.Target), bits.TermString(e.Factor))
		}
		fmt.Fprintf(w, "%-8s node %-3d depth %d  %-12s terms=%-2d elim=%-2d priority=%.2f\n",
			kind, e.ID, e.Depth, sub, e.Terms, e.Elim, e.Priority)
	}
	res := core.Synthesize(spec, opts)
	if !res.Found {
		return fmt.Errorf("fig5: walkthrough failed to find the solution")
	}
	fmt.Fprintf(w, "\nsolution (Fig. 3(d)): %s  — %d gates, %d steps\n",
		res.Circuit, res.Circuit.Len(), res.Steps)
	return nil
}
