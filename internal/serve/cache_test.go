package serve

import (
	"context"
	"testing"
	"time"
)

// permRequest is a small 3-variable workload the cache handles exactly.
func permRequest(spec string) Request {
	return Request{
		Spec:   SpecInput{Perm: spec},
		Budget: Budget{Steps: 2_000_000, TimeMillis: 55000},
	}
}

func drainAll(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Drain(ctx)
}

// TestCacheHitSurvivesRestart is the satellite-bugfix regression: a request
// answered cold by a worker, the server restarted over the same state and
// cache directories, and the same request re-submitted must be answered
// from the persistent answer cache — registered as a real job under its
// idempotency key with source "cache", a verified result, and exactly the
// gates the cold run produced.
func TestCacheHitSurvivesRestart(t *testing.T) {
	stateDir, cacheDir := t.TempDir(), t.TempDir()
	cfg := drainCfg(stateDir)
	cfg.CacheDir = cacheDir
	const spec = "{1, 0, 7, 2, 3, 4, 5, 6}"

	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	cold := admitDirect(t, a, permRequest(spec))
	waitDone(t, cold)
	if cold.Status() != StatusDone {
		t.Fatalf("cold status = %s (error %q)", cold.Status(), cold.view(false).Error)
	}
	cv := cold.view(false)
	if cv.Source != sourceWorker {
		t.Fatalf("cold source = %q, want %q", cv.Source, sourceWorker)
	}
	if cv.Result == nil || !cv.Result.Found || cv.Result.CacheHit {
		t.Fatalf("cold result = %+v, want a found non-cache result", cv.Result)
	}
	if cv.Result.CanonicalClass == "" {
		t.Fatal("cold result missing canonical class (cache store did not run)")
	}
	if st := a.Stats(); st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Fatalf("cold stats = %+v, want exactly one cache miss", st)
	}

	// An identical submission while the job is still registered must
	// deduplicate — the idempotency contract outranks the cache.
	if _, deduped, err := func() (*Job, bool, error) {
		req := permRequest(spec)
		c, rerr := compileRequest(&req, a.cfg.Ceiling)
		if rerr != nil {
			t.Fatalf("compile: %v", rerr)
		}
		return a.admit(c, req)
	}(); err != nil || !deduped {
		t.Fatalf("same-session resubmit: deduped=%v err=%v, want dedup", deduped, err)
	}
	drainAll(t, a)

	// Restart over the same directories: the job registry is empty (the
	// cold job finished, so no ledger entry), but the cache is warm.
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer drainAll(t, b)
	warm := admitDirect(t, b, permRequest(spec))
	if warm.Status() != StatusDone {
		t.Fatalf("warm status = %s, want done at admission", warm.Status())
	}
	wv := warm.view(false)
	if wv.Source != sourceCache {
		t.Fatalf("warm source = %q, want %q", wv.Source, sourceCache)
	}
	if wv.Result == nil || !wv.Result.CacheHit {
		t.Fatalf("warm result = %+v, want a cache hit", wv.Result)
	}
	if wv.Result.Verified == nil || !*wv.Result.Verified {
		t.Fatal("warm result not verified")
	}
	if wv.Result.Circuit != cv.Result.Circuit || wv.Result.Gates != cv.Result.Gates {
		t.Fatalf("warm circuit differs from cold:\nwarm: %s\ncold: %s", wv.Result.Circuit, cv.Result.Circuit)
	}
	if wv.Result.CanonicalClass != cv.Result.CanonicalClass {
		t.Fatalf("class changed across restart: warm %s cold %s", wv.Result.CanonicalClass, cv.Result.CanonicalClass)
	}
	if wv.ID != cv.ID {
		t.Fatalf("warm job ID %s != cold %s (idempotency key drifted)", wv.ID, cv.ID)
	}
	// The hit is a registered job: retrievable by ID like any other.
	if got, ok := b.job(warm.ID()); !ok || got != warm {
		t.Fatal("cache-served job not retrievable from the registry")
	}
	if st := b.Stats(); st.CacheHits != 1 || st.Submitted != 1 || st.Completed != 1 {
		t.Fatalf("warm stats = %+v, want one cache-hit submission", st)
	}
}

// TestCacheServesConjugateMember: a different member of the same canonical
// class — the cold function with wires relabeled — must be answered from
// the cache by conjugation, verified, without a worker run.
func TestCacheServesConjugateMember(t *testing.T) {
	cfg := drainCfg(t.TempDir())
	cfg.CacheDir = t.TempDir()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer drainAll(t, s)

	cold := admitDirect(t, s, permRequest("{1, 0, 7, 2, 3, 4, 5, 6}"))
	waitDone(t, cold)
	if cold.Status() != StatusDone || !cold.view(false).Result.Found {
		t.Fatalf("cold run failed: %+v", cold.view(false))
	}

	// Swap wires 0<->2 of the cold spec: q[x] = T(p[T(x)]) for the
	// self-inverse bit-swap T = {0,4,2,6,1,5,3,7}.
	q := permRequest("{4, 6, 7, 5, 0, 1, 2, 3}")
	warm := admitDirect(t, s, q)
	if warm.Status() != StatusDone {
		t.Fatalf("conjugate member status = %s, want done at admission", warm.Status())
	}
	wv := warm.view(false)
	if wv.Source != sourceCache || wv.Result == nil || !wv.Result.CacheHit {
		t.Fatalf("conjugate member not served from cache: %+v", wv)
	}
	if wv.Result.Verified == nil || !*wv.Result.Verified {
		t.Fatal("derived result not verified")
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want one cache hit", st)
	}
}

// TestNoCacheConfiguredKeepsWorkerPath pins the default: without a cache
// the admission path is untouched and results carry no cache fields.
func TestNoCacheConfiguredKeepsWorkerPath(t *testing.T) {
	s, err := New(drainCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer drainAll(t, s)
	j := admitDirect(t, s, permRequest("{1, 0, 7, 2, 3, 4, 5, 6}"))
	waitDone(t, j)
	v := j.view(false)
	if v.Source != sourceWorker || v.Result.CacheHit || v.Result.CanonicalClass != "" {
		t.Fatalf("no-cache job grew cache fields: %+v", v)
	}
	if st := s.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("no-cache stats moved: %+v", st)
	}
}
