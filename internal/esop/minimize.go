package esop

// Exorlink-based heuristic minimization in the style of EXORCISM
// (Mishchenko & Perkowski, "Fast heuristic minimization of exclusive
// sum-of-products", RM 2001). The full tool iterates exorlink-2/3/4 with
// sophisticated acceptance schedules; this implementation applies the
// reductions that account for the bulk of EXORCISM's gains:
//
//	distance 0: X ⊕ X = 0                       (cube-pair cancellation)
//	distance 1: aX ⊕ āX = X, aX ⊕ X = āX, …     (cube-pair merge)
//	distance 2: both exorlink-2 rewrites, accepted when they reduce the
//	            literal count or enable a distance-0/1 reduction.
//
// The result is always function-preserving (verified by property tests);
// optimality is not claimed, matching the heuristic nature of the original.

// varState encodes a variable's appearance in a cube.
type varState int

const (
	absent varState = iota
	positive
	negative
)

func stateOf(c Cube, bit uint32) varState {
	switch {
	case c.Pos&bit != 0:
		return positive
	case c.Neg&bit != 0:
		return negative
	default:
		return absent
	}
}

func withState(c Cube, bit uint32, s varState) Cube {
	c.Pos &^= bit
	c.Neg &^= bit
	switch s {
	case positive:
		c.Pos |= bit
	case negative:
		c.Neg |= bit
	}
	return c
}

// combine is the single-variable EXOR combination used by exorlink:
// a ⊕ ā = 1, a ⊕ 1 = ā, ā ⊕ 1 = a. It is defined only for distinct states.
func combine(a, b varState) varState {
	switch {
	case a == positive && b == negative, a == negative && b == positive:
		return absent
	case a == positive && b == absent, a == absent && b == positive:
		return negative
	default: // negative/absent in either order
		return positive
	}
}

// diffBits returns the mask of variables on which the cubes differ.
func diffBits(a, b Cube) uint32 {
	return (a.Pos ^ b.Pos) | (a.Neg ^ b.Neg)
}

// merge1 merges two cubes at distance 1 into the single equivalent cube.
func merge1(a, b Cube) Cube {
	d := diffBits(a, b)
	return withState(a, d, combine(stateOf(a, d), stateOf(b, d)))
}

// exorlink2 returns the two alternative rewritings of a ⊕ b (distance
// exactly 2), each a pair of cubes.
func exorlink2(a, b Cube) [2][2]Cube {
	d := diffBits(a, b)
	u := d & (-d)
	v := d &^ u
	cu := combine(stateOf(a, u), stateOf(b, u))
	cv := combine(stateOf(a, v), stateOf(b, v))
	// Ordering [u, v]: first cube takes the combined u and a's v; the
	// second takes b's u and the combined v.
	alt1 := [2]Cube{withState(a, u, cu), withState(withState(a, u, stateOf(b, u)), v, cv)}
	// Ordering [v, u].
	alt2 := [2]Cube{withState(a, v, cv), withState(withState(a, v, stateOf(b, v)), u, cu)}
	return [2][2]Cube{alt1, alt2}
}

// Minimize iteratively applies cancellations, merges, and profitable
// exorlink-2 rewrites until a fixed point, returning a new expression.
func (e *Expr) Minimize() *Expr {
	cubes := cancelDuplicates(append([]Cube(nil), e.Cubes...))
	for {
		if !reduceOnce(&cubes) {
			break
		}
	}
	return &Expr{N: e.N, Cubes: cancelDuplicates(cubes)}
}

// reduceOnce performs the first applicable reduction, reporting whether
// anything changed.
func reduceOnce(cubes *[]Cube) bool {
	cs := *cubes
	// Distance 0/1 pairs first: they strictly shrink the cube count.
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			switch cs[i].Distance(cs[j]) {
			case 0:
				cs = append(cs[:j], cs[j+1:]...)
				cs = append(cs[:i], cs[i+1:]...)
				*cubes = cs
				return true
			case 1:
				m := merge1(cs[i], cs[j])
				cs = append(cs[:j], cs[j+1:]...)
				cs[i] = m
				*cubes = cs
				return true
			}
		}
	}
	// Exorlink-2 rewrites: accept when literals drop, or when a rewritten
	// cube is at distance ≤ 1 from a third cube (a reduction next round).
	lits := func(cs []Cube) int {
		n := 0
		for _, c := range cs {
			n += c.Literals()
		}
		return n
	}
	base := lits(cs)
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			if cs[i].Distance(cs[j]) != 2 {
				continue
			}
			for _, alt := range exorlink2(cs[i], cs[j]) {
				delta := alt[0].Literals() + alt[1].Literals() -
					cs[i].Literals() - cs[j].Literals()
				profitable := base+delta < base
				if !profitable {
					for k := 0; k < len(cs) && !profitable; k++ {
						if k == i || k == j {
							continue
						}
						if cs[k].Distance(alt[0]) <= 1 || cs[k].Distance(alt[1]) <= 1 {
							profitable = true
						}
					}
				}
				if profitable {
					cs[i], cs[j] = alt[0], alt[1]
					*cubes = cs
					return true
				}
			}
		}
	}
	return false
}
