package cache_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/canon"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mmd"
	"repro/internal/perm"
	"repro/internal/rng"
)

const fpA, fpB = 0x1111, 0x2222

// randomSpec returns a random circuit together with the permutation it
// realizes — the cheap way to mint (function, known-good cascade) pairs
// without running the synthesizer.
func randomSpec(n, gates int, src *rng.Source) (*circuit.Circuit, perm.Perm) {
	c := circuit.Random(n, gates, circuit.GT, src)
	return c, c.Perm()
}

func randomTransform(n int, src *rng.Source) canon.Transform {
	t := canon.Identity(n)
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		t.Wires[i], t.Wires[j] = t.Wires[j], t.Wires[i]
	}
	t.Polarity = uint32(src.Intn(1 << uint(n)))
	return t
}

func TestSameFunctionHitIsByteIdentical(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		// Fresh cache per trial: two random functions can share a class,
		// and a shared entry would (correctly) derive instead of echoing.
		c := cache.New()
		n := 3 + src.Intn(3)
		circ, p := randomSpec(n, 1+src.Intn(10), src)
		if _, _, err := c.Put(p, fpA, circ); err != nil {
			t.Fatal(err)
		}
		hit, ok := c.Lookup(p, fpA)
		if !ok {
			t.Fatalf("trial %d: stored function missed", trial)
		}
		if hit.Derived {
			t.Fatalf("trial %d: same-function hit reported as derived", trial)
		}
		if hit.Circuit.String() != circ.String() {
			t.Fatalf("trial %d: same-function hit not byte-identical:\n got %s\nwant %s",
				trial, hit.Circuit, circ)
		}
		if s := c.Stats(); s.Derives != 0 || s.Hits != 1 {
			t.Fatalf("trial %d: stats %+v, want one underived hit", trial, s)
		}
	}
}

func TestClassMembersHitByConjugation(t *testing.T) {
	src := rng.New(2)
	c := cache.New()
	for trial := 0; trial < 50; trial++ {
		n := 3 + src.Intn(2)
		circ, p := randomSpec(n, 1+src.Intn(8), src)
		if _, _, err := c.Put(p, fpA, circ); err != nil {
			t.Fatal(err)
		}
		q := randomTransform(n, src).Conjugate(p)
		hit, ok := c.Lookup(q, fpA)
		if n <= canon.ExactVars {
			if !ok {
				t.Fatalf("trial %d: conjugate member missed in the exact range", trial)
			}
		} else if !ok {
			continue // greedy range: a class split is a legal miss
		}
		if !hit.Circuit.Perm().Equal(q) {
			t.Fatalf("trial %d: derived circuit realizes the wrong function", trial)
		}
		if got, max := len(hit.Circuit.Gates), len(circ.Gates)+2*n; got > max {
			t.Fatalf("trial %d: derived circuit has %d gates, conjugation bound is %d", trial, got, max)
		}
	}
}

func TestFingerprintIsolation(t *testing.T) {
	src := rng.New(3)
	c := cache.New()
	circ, p := randomSpec(3, 5, src)
	if _, _, err := c.Put(p, fpA, circ); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(p, fpB); ok {
		t.Fatal("entry stored under one options fingerprint served to another")
	}
	if _, ok := c.Lookup(p, fpA); !ok {
		t.Fatal("entry missing under its own fingerprint")
	}
}

func TestPutKeepsSmallerCircuit(t *testing.T) {
	src := rng.New(4)
	c := cache.New()
	small, p := randomSpec(3, 2, src)
	// A larger realization of the same p: pad with a self-canceling NOT
	// pair.
	padded := circuit.New(3)
	padded.Append(small.Gates...)
	padded.Append(circuit.Gate{Target: 0}, circuit.Gate{Target: 0})
	if _, _, err := c.Put(p, fpA, small); err != nil {
		t.Fatal(err)
	}
	if _, stored, err := c.Put(p, fpA, padded); err != nil || stored {
		t.Fatalf("larger circuit replaced smaller one (stored=%v err=%v)", stored, err)
	}
	hit, ok := c.Lookup(p, fpA)
	if !ok || len(hit.Circuit.Gates) != len(small.Gates) {
		t.Fatalf("lookup returned %d gates, want %d", len(hit.Circuit.Gates), len(small.Gates))
	}
	if _, stored, err := c.Put(p, fpB, padded); err != nil || !stored {
		t.Fatalf("same class under a new fingerprint not stored (stored=%v err=%v)", stored, err)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	src := rng.New(5)
	c1, err := cache.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	circ, p := randomSpec(3, 6, src)
	if _, stored, err := c1.Put(p, fpA, circ); err != nil || !stored {
		t.Fatalf("put: stored=%v err=%v", stored, err)
	}
	c2, err := cache.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	hit, ok := c2.Lookup(p, fpA)
	if !ok || !hit.Circuit.Perm().Equal(p) {
		t.Fatal("entry did not survive a reopen")
	}
	// And a different member of the class hits through the same file.
	q := randomTransform(3, src).Conjugate(p)
	c3, _ := cache.Open(dir, nil)
	if hit, ok := c3.Lookup(q, fpA); !ok || !hit.Circuit.Perm().Equal(q) {
		t.Fatal("class member did not hit after reopen")
	}
	if s := c2.Stats(); s.CorruptDropped != 0 {
		t.Fatalf("clean reopen counted corruption: %+v", s)
	}
}

func TestCorruptEntryReadsAsMiss(t *testing.T) {
	src := rng.New(6)
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bitflip", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }},
		{"badmagic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"version", func(b []byte) []byte { b[4] = 99; return b }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c1, err := cache.Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			circ, p := randomSpec(3, 6, src)
			if _, _, err := c1.Put(p, fpA, circ); err != nil {
				t.Fatal(err)
			}
			files, err := filepath.Glob(filepath.Join(dir, "*.rmce"))
			if err != nil || len(files) != 1 {
				t.Fatalf("want one entry file, got %v (%v)", files, err)
			}
			data, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}
			c2, err := cache.Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := c2.Lookup(p, fpA); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			s := c2.Stats()
			if s.CorruptDropped != 1 || s.Misses != 1 {
				t.Fatalf("stats %+v, want 1 corrupt drop + 1 miss", s)
			}
			if left, _ := filepath.Glob(filepath.Join(dir, "*.rmce")); len(left) != 0 {
				t.Fatalf("corrupt file not removed: %v", left)
			}
			// The slot is reusable: re-store and hit.
			if _, stored, err := c2.Put(p, fpA, circ); err != nil || !stored {
				t.Fatalf("re-put after corruption: stored=%v err=%v", stored, err)
			}
			if _, ok := c2.Lookup(p, fpA); !ok {
				t.Fatal("re-stored entry missed")
			}
		})
	}
}

// TestPoisonedEntryIsDroppedNotServed plants an internally consistent
// entry (valid CRC, valid structures) whose circuit does not realize its
// class — the scenario the verification gate exists for.
func TestPoisonedEntryIsDroppedNotServed(t *testing.T) {
	src := rng.New(7)
	dir := t.TempDir()
	c1, err := cache.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	circ, p := randomSpec(3, 6, src)
	if _, _, err := c1.Put(p, fpA, circ); err != nil {
		t.Fatal(err)
	}
	// Copy p's (valid, CRC-clean) entry bytes to the on-disk key of a
	// *different* class: every lookup of that class then decodes a
	// representative that does not match, or — if we instead forge the
	// representative — a circuit that fails verification. Either way the
	// gate must answer miss. Learn q's key filename by storing a real
	// entry for q in a scratch directory.
	files, _ := filepath.Glob(filepath.Join(dir, "*.rmce"))
	if len(files) != 1 {
		t.Fatalf("want one entry, got %v", files)
	}
	var q perm.Perm
	var qName string
	for {
		q = perm.Random(3, src)
		scratch := t.TempDir()
		sc, _ := cache.Open(scratch, nil)
		if _, stored, _ := sc.Put(q, fpA, qCirc(q)); !stored {
			continue
		}
		sf, _ := filepath.Glob(filepath.Join(scratch, "*.rmce"))
		if len(sf) != 1 {
			t.Fatalf("scratch store wrote %v", sf)
		}
		qName = filepath.Base(sf[0])
		if qName != filepath.Base(files[0]) {
			break
		}
	}
	// Plant p's entry bytes under q's key: structurally valid, CRC-clean,
	// and wrong for every member of q's class.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, qName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := cache.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Lookup(q, fpA); ok {
		t.Fatal("planted wrong-class entry served as a hit")
	}
	if _, err := os.Stat(filepath.Join(dir, qName)); !os.IsNotExist(err) {
		t.Fatal("planted entry not dropped")
	}
}

// qCirc builds some cascade realizing q by brute force over tiny random
// circuits — only used to learn q's on-disk key.
func qCirc(q perm.Perm) *circuit.Circuit {
	// A permutation network: decompose q into transpositions on the
	// 3-variable truth table is overkill; instead synthesize via core with
	// a generous budget (3-variable functions solve in microseconds).
	opts := core.DefaultOptions()
	opts.FirstSolution = true
	res, err := core.SynthesizePerm(q, opts)
	if err != nil || !res.Found {
		panic("qCirc: 3-variable synthesis failed")
	}
	return res.Circuit
}

// TestExhaustiveThreeVariableClassCoverage is the acceptance test for the
// tentpole: store one circuit per canonical class (984 of them) and prove
// the cache answers *all* 40,320 three-variable functions from those
// entries — every hit derived by conjugation and every derived circuit
// verified to realize the requested function. Class-member circuits come
// from the deterministic MMD baseline (a fraction of a percent of 3-var
// functions defeat the default search budget, and the cache's contract
// does not care who built the cascade — it re-verifies every answer).
func TestExhaustiveThreeVariableClassCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 3-variable sweep")
	}
	c := cache.New()
	const fp = fpA
	synths := 0
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	var scan func(k int)
	total := 0
	var failed bool
	scan = func(k int) {
		if failed {
			return
		}
		if k == len(idx) {
			total++
			p := make(perm.Perm, 8)
			for i, j := range idx {
				p[i] = uint32(j)
			}
			if hit, ok := c.Lookup(p, fp); ok {
				if !hit.Circuit.Perm().Equal(p) {
					t.Errorf("cache answered %v with a circuit for a different function", p)
					failed = true
				}
				return
			}
			circ := mmd.Synthesize(p, mmd.Bidirectional)
			if !circ.Perm().Equal(p) {
				t.Errorf("mmd baseline failed for %v", p)
				failed = true
				return
			}
			synths++
			if _, stored, err := c.Put(p, fp, circ); err != nil || !stored {
				t.Errorf("put failed for %v: stored=%v err=%v", p, stored, err)
				failed = true
			}
			return
		}
		for i := k; i < len(idx); i++ {
			idx[k], idx[i] = idx[i], idx[k]
			scan(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	scan(0)
	if failed {
		t.FailNow()
	}
	if total != 40320 {
		t.Fatalf("enumerated %d functions, want 40320", total)
	}
	if synths != 984 {
		t.Fatalf("synthesized %d class representatives, want 984", synths)
	}
	s := c.Stats()
	if s.Hits != 40320-984 || s.Misses != 984 || s.Stores != 984 {
		t.Fatalf("stats %+v, want hits=%d misses=984 stores=984", s, 40320-984)
	}
	if s.VerifyRejected != 0 || s.CorruptDropped != 0 {
		t.Fatalf("stats %+v, want no rejects or corruption", s)
	}
	if s.Derives != s.Hits {
		// The enumeration never looks the same function up twice, so every
		// hit is a *different* member of a stored class and must have been
		// derived by a non-identity conjugation.
		t.Fatalf("%d of %d hits derived, want all of them", s.Derives, s.Hits)
	}
}

func TestUncacheableWidthIgnored(t *testing.T) {
	c := cache.New()
	p := perm.Identity(17)
	if _, ok := c.Lookup(p, fpA); ok {
		t.Fatal("17-variable lookup hit")
	}
	if class, stored, err := c.Put(p, fpA, circuit.New(17)); class != 0 || stored || err != nil {
		t.Fatalf("17-variable put accepted: class=%d stored=%v err=%v", class, stored, err)
	}
	if s := c.Stats(); s.Hits+s.Misses+s.Stores != 0 {
		t.Fatalf("uncacheable width moved counters: %+v", s)
	}
}

func TestPutRejectsMismatchedCircuit(t *testing.T) {
	c := cache.New()
	p := perm.Identity(3)
	if _, _, err := c.Put(p, fpA, circuit.New(4)); err == nil {
		t.Fatal("wrong-width circuit accepted")
	}
	if _, _, err := c.Put(p, fpA, nil); err == nil {
		t.Fatal("nil circuit accepted")
	}
	bad := circuit.New(3)
	bad.Append(circuit.Gate{Target: 9})
	if _, _, err := c.Put(p, fpA, bad); err == nil || !strings.Contains(err.Error(), "cache") {
		t.Fatalf("invalid circuit accepted (err=%v)", err)
	}
}
