package serve

import (
	"fmt"
	"sync"
)

// Class is a scheduling class. Interactive jobs are dequeued strictly
// before batch jobs: the pool keeps small latency-sensitive requests
// flowing even while big background syntheses saturate it. Batch jobs can
// be starved by a sustained interactive flood — by design; the interactive
// queue is small, so the flood itself sheds first.
type Class int

const (
	// Interactive is the latency-sensitive class (the default).
	Interactive Class = iota
	// Batch is the throughput class: big budgets, shed-tolerant.
	Batch
	numClasses
)

func (c Class) String() string {
	if c == Batch {
		return "batch"
	}
	return "interactive"
}

func parseClass(s string) (Class, error) {
	switch s {
	case "", "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	default:
		return 0, fmt.Errorf("unknown class %q (want \"interactive\" or \"batch\")", s)
	}
}

// FullError is the backpressure signal: the class's queue is at capacity
// and the job was shed. The HTTP layer maps it to 429 + Retry-After.
type FullError struct {
	Class Class
	Cap   int
}

func (e *FullError) Error() string {
	return fmt.Sprintf("serve: %s queue full (%d jobs)", e.Class, e.Cap)
}

// errQueueClosed is returned by Enqueue after the queue is closed (drain).
var errQueueClosed = fmt.Errorf("serve: queue closed")

// jobQueue is the bounded two-class FIFO feeding the worker pool. Enqueue
// never blocks: a full class sheds immediately (backpressure belongs at the
// edge, not in a hidden unbounded buffer). Dequeue blocks until a job or
// Close, always preferring the interactive class.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      [numClasses][]*Job
	cap    [numClasses]int
	closed bool
}

func newJobQueue(capInteractive, capBatch int) *jobQueue {
	q := &jobQueue{}
	q.cap[Interactive] = capInteractive
	q.cap[Batch] = capBatch
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Enqueue appends j to its class queue, or sheds with *FullError when the
// class is at capacity (errQueueClosed after Close).
func (q *jobQueue) Enqueue(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	c := j.class
	if len(q.q[c]) >= q.cap[c] {
		return &FullError{Class: c, Cap: q.cap[c]}
	}
	q.q[c] = append(q.q[c], j)
	q.cond.Signal()
	return nil
}

// Dequeue blocks until a job is available (interactive first, FIFO within a
// class) or the queue is closed. ok is false only on close; jobs still
// queued at close time are left in place for drainAll.
func (q *jobQueue) Dequeue() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		for c := Class(0); c < numClasses; c++ {
			if len(q.q[c]) > 0 {
				j := q.q[c][0]
				q.q[c] = q.q[c][1:]
				return j, true
			}
		}
		q.cond.Wait()
	}
}

// Close stops the queue: blocked Dequeues return, later Enqueues fail.
// Queued jobs are retained for drainAll.
func (q *jobQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// drainAll removes and returns every still-queued job (interactive first).
// Used after Close to build the drain ledger.
func (q *jobQueue) drainAll() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*Job
	for c := Class(0); c < numClasses; c++ {
		out = append(out, q.q[c]...)
		q.q[c] = nil
	}
	return out
}

// Depths reports the current per-class queue lengths.
func (q *jobQueue) Depths() (interactive, batch int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.q[Interactive]), len(q.q[Batch])
}
