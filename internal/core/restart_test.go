package core

import (
	"testing"
)

// The restart heuristic (Section IV-E) has three distinct exhaustion
// paths; each must be visible in Result.Restarts and Result.StopReason.

// TestRestartsExhaustedByMaxRestarts drives an unsolvable search into the
// restart budget: after MaxRestarts reseeds the heuristic must decline
// and the run must end with StopRestartsExhausted.
func TestRestartsExhaustedByMaxRestarts(t *testing.T) {
	opts := DefaultOptions()
	opts.Dedup = false // the transposition table prunes this spec's do-nothing first moves
	opts.MaxSteps = 5
	opts.MaxRestarts = 1
	opts.TotalSteps = 1 << 20
	res := Synthesize(unsolvableSpec(t), opts)
	if res.Found {
		t.Fatal("synthesized a non-reversible function")
	}
	if res.Restarts != 1 {
		t.Errorf("Restarts = %d, want exactly MaxRestarts = 1", res.Restarts)
	}
	if res.StopReason != StopRestartsExhausted {
		t.Errorf("StopReason = %v, want %v", res.StopReason, StopRestartsExhausted)
	}
}

// TestRestartsExhaustedByFirstMoves lets restarts run unbounded
// (MaxRestarts = 0) so the run ends only when every first move from the
// root has been tried. The a'=b, b'=b spec has three admissible first
// moves, so exactly two restarts fire before the pool drains.
func TestRestartsExhaustedByFirstMoves(t *testing.T) {
	opts := DefaultOptions()
	opts.Dedup = false // keep the full three-move restart pool this test counts
	opts.MaxSteps = 5
	opts.MaxRestarts = 0
	opts.TotalSteps = 1 << 20
	res := Synthesize(unsolvableSpec(t), opts)
	if res.Found {
		t.Fatal("synthesized a non-reversible function")
	}
	if res.Restarts != 2 {
		t.Errorf("Restarts = %d, want 2 (three first moves, root keeps one)", res.Restarts)
	}
	if res.StopReason != StopRestartsExhausted {
		t.Errorf("StopReason = %v, want %v", res.StopReason, StopRestartsExhausted)
	}
}

// TestRestartAfterQueueEmpty exercises the second restart trigger: the
// queue drains before stepsSinceRestart reaches MaxSteps, and the search
// reseeds from the next first move instead of giving up.
func TestRestartAfterQueueEmpty(t *testing.T) {
	opts := DefaultOptions()
	opts.Dedup = false      // keep the duplicate states that let the queue drain into a restart
	opts.MaxSteps = 1 << 20 // never triggers the step-count restart
	opts.MaxRestarts = 0
	opts.TotalSteps = 1 << 20
	res := Synthesize(unsolvableSpec(t), opts)
	if res.Found {
		t.Fatal("synthesized a non-reversible function")
	}
	if res.Restarts == 0 {
		t.Error("queue drained but no restart fired")
	}
	if res.StopReason != StopRestartsExhausted {
		t.Errorf("StopReason = %v, want %v", res.StopReason, StopRestartsExhausted)
	}
}

// TestQueueExhaustedWithoutRestarts: with the heuristic disabled
// (MaxSteps = 0) a drained queue is a plain exhaustion, not a restart
// failure.
func TestQueueExhaustedWithoutRestarts(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxSteps = 0
	opts.TotalSteps = 1 << 20
	res := Synthesize(unsolvableSpec(t), opts)
	if res.Found {
		t.Fatal("synthesized a non-reversible function")
	}
	if res.Restarts != 0 {
		t.Errorf("Restarts = %d with the heuristic disabled", res.Restarts)
	}
	if res.StopReason != StopQueueExhausted {
		t.Errorf("StopReason = %v, want %v", res.StopReason, StopQueueExhausted)
	}
}
