package perm

import (
	"testing"

	"repro/internal/rng"
)

func TestIdentity(t *testing.T) {
	p := Identity(3)
	if !p.IsIdentity() || p.Vars() != 3 || p.Validate() != nil {
		t.Errorf("Identity(3) broken: %v", p)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		vals []int
	}{
		{"repeat", []int{0, 0, 2, 3}},
		{"out of range", []int{0, 1, 2, 4}},
		{"not power of two", []int{0, 1, 2}},
	}
	for _, c := range cases {
		if _, err := FromInts(c.vals); err == nil {
			t.Errorf("%s: FromInts(%v) should fail", c.name, c.vals)
		}
	}
	if _, err := FromInts([]int{1, 0, -1, 2}); err == nil {
		t.Error("negative value should fail")
	}
}

func TestInverseComposeIdentity(t *testing.T) {
	src := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		p := Random(4, src)
		if !p.Compose(p.Inverse()).IsIdentity() {
			t.Fatalf("p∘p⁻¹ ≠ id for %s", p)
		}
		if !p.Inverse().Compose(p).IsIdentity() {
			t.Fatalf("p⁻¹∘p ≠ id for %s", p)
		}
	}
}

func TestComposeOrder(t *testing.T) {
	// p = NOT on bit 0; q = values +2 mod 4 (on 2 vars): check q after p.
	p := MustFromInts([]int{1, 0, 3, 2})
	q := MustFromInts([]int{2, 3, 0, 1})
	pq := p.Compose(q) // q[p[x]]
	for x := range pq {
		if pq[x] != q[p[x]] {
			t.Fatalf("Compose semantics wrong at %d", x)
		}
	}
}

func TestParity(t *testing.T) {
	if !Identity(3).IsEven() {
		t.Error("identity must be even")
	}
	// A single transposition is odd.
	tr := MustFromInts([]int{1, 0, 2, 3, 4, 5, 6, 7})
	if tr.IsEven() {
		t.Error("transposition must be odd")
	}
	// A 3-cycle is even.
	cyc := MustFromInts([]int{1, 2, 0, 3, 4, 5, 6, 7})
	if !cyc.IsEven() {
		t.Error("3-cycle must be even")
	}
	// Parity is multiplicative: composing two odd permutations is even.
	tr2 := MustFromInts([]int{0, 1, 3, 2, 4, 5, 6, 7})
	if !tr.Compose(tr2).IsEven() {
		t.Error("odd∘odd must be even")
	}
}

func TestFig1Specification(t *testing.T) {
	// The paper's Fig. 1 truth table as a permutation.
	p := MustFromInts([]int{1, 0, 7, 2, 3, 4, 5, 6})
	// Row cba=010 (x=2) maps to 111 (7) per the figure.
	if p[2] != 7 {
		t.Errorf("p[2] = %d, want 7", p[2])
	}
	// Cycle structure: (0 1)(2 7 6 5 4 3) → 1 + 5 = 6 transpositions: even.
	if !p.IsEven() {
		t.Error("Fig. 1 function should be an even permutation")
	}
}

func TestOutputBit(t *testing.T) {
	p := MustFromInts([]int{1, 0, 7, 2, 3, 4, 5, 6})
	col := p.OutputBit(0) // a_out = a ⊕ 1
	for x := 0; x < 8; x++ {
		want := x&1 == 0
		if col[x] != want {
			t.Errorf("a_out(%d) = %v, want %v", x, col[x], want)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	src := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		p := Random(3, src)
		q, err := Parse(p.String())
		if err != nil {
			t.Fatal(err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip %s → %s", p, q)
		}
	}
	if _, err := Parse("{0, 1, x}"); err == nil {
		t.Error("bad token should fail")
	}
}

func TestRandomIsUniformish(t *testing.T) {
	// First-image distribution check: P(p[0]=k) = 1/8.
	src := rng.New(1234)
	var counts [8]int
	const draws = 16000
	for i := 0; i < draws; i++ {
		counts[Random(3, src)[0]]++
	}
	want := draws / 8
	for k, c := range counts {
		if c < want*85/100 || c > want*115/100 {
			t.Errorf("P(p[0]=%d): %d draws, want ≈%d", k, c, want)
		}
	}
}

func TestVarsReturnsMinusOneOnBadSize(t *testing.T) {
	if (Perm{0, 1, 2}).Vars() != -1 {
		t.Error("Vars on non-power-of-two should be -1")
	}
}
