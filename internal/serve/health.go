package serve

// Fault-domain supervision. Every optional dependency of the service —
// the answer cache's disk store, checkpoint writes, the drain ledger,
// quarantine artifacts — runs behind a circuit breaker registered on one
// Supervisor. A persistent I/O fault trips its domain and the server
// sheds the feature, never the job: cache → transparent miss/no-store,
// checkpointing → in-memory-only (resume disabled for the window),
// quarantine → artifact logged instead of written. Degradation is
// observable on /v1/healthz (per-domain views), /v1/readyz (503 while a
// *required* domain is down), and the rmrls.health_* expvars.

import (
	"net/http"

	"repro/internal/health"
)

// Fault-domain names used by the server's supervisor; Config.RequiredDomains
// entries must come from this set.
const (
	DomainCache      = "cache"
	DomainCheckpoint = "checkpoint"
	DomainLedger     = "ledger"
	DomainQuarantine = "quarantine"
)

// DomainNames lists every fault domain the server registers, in
// registration (and health-view) order.
func DomainNames() []string {
	return []string{DomainCache, DomainCheckpoint, DomainLedger, DomainQuarantine}
}

// initHealth registers the server's fault domains on the supervisor and
// builds the guarded filesystems the I/O paths use. Required domains gate
// /v1/readyz; everything else only degrades.
func (s *Server) initHealth() {
	s.health = s.cfg.Health
	if s.health == nil {
		s.health = health.NewSupervisor()
	}
	required := make(map[string]bool, len(s.cfg.RequiredDomains))
	for _, name := range s.cfg.RequiredDomains {
		required[name] = true
	}
	reg := func(name string) *health.Breaker {
		return s.health.Register(name, required[name], s.cfg.HealthConfig)
	}
	s.domCache = reg(DomainCache)
	s.domCkpt = reg(DomainCheckpoint)
	s.domLedger = reg(DomainLedger)
	s.domQuar = reg(DomainQuarantine)

	// Checkpoints and quarantine artifacts write through guarded FS
	// wrappers: one breaker outcome per atomic write, instant *ErrOpen
	// fast-fails while the domain is open. The ledger is NOT guarded here —
	// the final drain flush deserves a real attempt even mid-outage — its
	// writes record outcomes manually (see Drain). The cache guards itself
	// through cache.Guard so memory entries keep serving while disk is shed.
	s.ckptFS = health.GuardFS(s.cfg.FS, s.domCkpt)
	s.quarFS = health.GuardFS(s.cfg.FS, s.domQuar)
}

// Ready reports whether the instance should receive traffic: not draining
// and every required fault domain closed. The string names what blocks.
func (s *Server) Ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	return s.health.Ready()
}

// Health returns the server's fault-domain supervisor (for tests and for
// embedding processes that want to watch domains directly).
func (s *Server) Health() *health.Supervisor { return s.health }

// readyView is the /v1/readyz body.
type readyView struct {
	Ready bool `json:"ready"`
	// Reason names what blocks readiness: "draining" or an open required
	// domain.
	Reason string `json:"reason,omitempty"`
}

// handleReady implements GET /v1/readyz: 200 while the instance can do
// useful work, 503 while it is draining or a *required* fault domain is
// open. Optional open domains degrade (visible on /v1/healthz) without
// failing readiness — the job still gets served, only the feature is shed.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if ok, reason := s.Ready(); !ok {
		setRetryAfter(w, s.cfg.RetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, readyView{Ready: false, Reason: reason})
		return
	}
	writeJSON(w, http.StatusOK, readyView{Ready: true})
}

// ledgerWrite is the drain ledger's manual breaker accounting: the write
// always reaches the device (no Allow gate — the final drain flush
// deserves a real attempt even mid-outage), and its outcome feeds the
// ledger domain so healthz still shows the fault.
func (s *Server) ledgerWrite(data []byte) error {
	err := writeFileAtomic(s.cfg.FS, s.ledgerPath(), data)
	s.domLedger.Record(err)
	return err
}

// readLedger reads the drain ledger through the FS seam, recording the
// outcome on the ledger domain (a missing ledger is a healthy answer).
func (s *Server) readLedger() ([]byte, error) {
	data, err := s.cfg.FS.ReadFile(s.ledgerPath())
	if err == nil || isNotExist(err) {
		s.domLedger.Record(nil)
	} else {
		s.domLedger.Record(err)
	}
	return data, err
}
