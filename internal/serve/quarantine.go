package serve

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/verify"
)

// QuarantineArtifact is the evidence file written when a job's circuit
// fails independent verification. It carries everything needed to replay
// the failure offline: the original request verbatim, the fingerprints
// that pin the engine configuration, the embedding seed for PLA inputs
// (the one nondeterministic-looking input to the pipeline — it is in fact
// a fixed constant, recorded so the replay uses the same one), and the
// rejected cascade with the first counterexample input.
type QuarantineArtifact struct {
	JobID              string    `json:"job_id"`
	IdempotencyKey     string    `json:"idempotency_key"`
	WrittenAt          time.Time `json:"written_at"`
	Attempt            string    `json:"attempt"` // "primary" or "degraded"
	Stage              string    `json:"stage"`
	Request            Request   `json:"request"`
	SpecHash           string    `json:"spec_hash"`
	OptionsFingerprint string    `json:"options_fingerprint"`
	PLAEmbedTries      int       `json:"pla_embed_tries,omitempty"`
	PLAEmbedSeed       uint64    `json:"pla_embed_seed,omitempty"`
	Wires              int       `json:"wires"`
	Circuit            string    `json:"circuit"`
	Mismatch           string    `json:"mismatch"`
}

// quarantinePath is where a job's verification-failure evidence lands.
func (s *Server) quarantinePath(j *Job, attempt string) string {
	name := "quarantine-" + j.id
	if attempt != "primary" {
		name += "-" + attempt
	}
	return filepath.Join(s.cfg.StateDir, name+".json")
}

// quarantine writes the verification-failure artifact atomically through
// the quarantine fault domain (guarded snapshot FS — same
// crash-consistency contract as checkpoints and the drain ledger).
// Returns the artifact path, or "" when no state directory is configured
// or the write failed — quarantine is best-effort evidence capture and
// must never mask the original failure. When the write fails (including a
// breaker fast-fail while the domain is open), the artifact JSON goes to
// the operational log instead: evidence survives the outage, just not
// durably.
func (s *Server) quarantine(j *Job, verr *verify.Error, attempt string) string {
	if s.cfg.StateDir == "" {
		return ""
	}
	art := QuarantineArtifact{
		JobID:              j.id,
		IdempotencyKey:     fmt.Sprintf("%016x", j.key),
		WrittenAt:          time.Now().UTC(),
		Attempt:            attempt,
		Stage:              string(verr.Stage),
		Request:            j.req,
		SpecHash:           fmt.Sprintf("%016x", j.spec.Hash()),
		OptionsFingerprint: fmt.Sprintf("%016x", core.OptionsFingerprint(&j.opts)),
		Wires:              j.spec.N,
		Circuit:            verr.Circuit,
		Mismatch:           verr.Error(),
	}
	if j.req.Spec.PLA != "" {
		art.PLAEmbedTries = plaEmbedTries
		art.PLAEmbedSeed = plaEmbedSeed
	}
	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		return ""
	}
	path := s.quarantinePath(j, attempt)
	if err := writeFileAtomic(s.quarFS, path, append(data, '\n')); err != nil {
		s.cfg.Logf("serve: quarantine write failed (%v); artifact follows\n%s", err, data)
		return ""
	}
	return path
}
