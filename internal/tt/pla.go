package tt

import (
	"fmt"
	"strings"
)

// ParsePLAPartial reads a PLA file preserving output don't-cares ('-' or
// '~' output characters) as unspecified bits, and leaves entirely
// unmentioned rows fully unspecified. Use EmbedPartial to pick a
// favourable completion.
func ParsePLAPartial(text string) (*PartialTable, error) {
	tab, care, err := parsePLA(text)
	if err != nil {
		return nil, err
	}
	return &PartialTable{Inputs: tab.Inputs, Outputs: tab.Outputs, Rows: tab.Rows, Care: care}, nil
}

// ParsePLA reads a truth table in the Berkeley PLA format used by the MCNC
// benchmark suite the paper draws rd53 from:
//
//	.i 5
//	.o 3
//	.p 32
//	00000 000
//	00001 001
//	…
//	.e
//
// Supported directives: .i, .o, .p (ignored), .ilb/.ob (ignored), .type fr
// (ignored), .e/.end. Input cubes may contain '-' (don't care), which
// expands to both values; output characters are '1', '0', and '-'/'~'
// (treated as 0 — the paper preassigns don't-care outputs, Section VI).
// Rows not mentioned default to all-zero outputs, matching the usual
// ON-set interpretation for .type fd files.
func ParsePLA(text string) (*Table, error) {
	t, _, err := parsePLA(text)
	return t, err
}

// plaRow records where and how a minterm was first specified, so a later
// respecification can be diagnosed as a harmless duplicate or a genuine
// conflict — a conflicting file describes no function at all, reversible
// or otherwise, and must never reach the embedder.
type plaRow struct {
	line      int
	out, care uint32
}

// parsePLA is the shared scanner; care[x] records which output bits of row
// x were explicitly specified as 0 or 1.
func parsePLA(text string) (*Table, []uint32, error) {
	inputs, outputs := -1, -1
	var t *Table
	var care []uint32
	seen := map[uint32]plaRow{}
	ended := false
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if ended {
			return nil, nil, fmt.Errorf("pla: line %d: content after .e terminator", lineNo+1)
		}
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".i":
				// Redefinition is rejected outright: once cubes exist the
				// table shape is committed, and a silent change would index
				// rows of the wrong width.
				if inputs >= 0 {
					return nil, nil, fmt.Errorf("pla: line %d: duplicate .i directive", lineNo+1)
				}
				if len(fields) != 2 || !parsePLAInt(fields[1], &inputs) || inputs < 1 || inputs > 24 {
					return nil, nil, fmt.Errorf("pla: line %d: bad .i", lineNo+1)
				}
			case ".o":
				if outputs >= 0 {
					return nil, nil, fmt.Errorf("pla: line %d: duplicate .o directive", lineNo+1)
				}
				if len(fields) != 2 || !parsePLAInt(fields[1], &outputs) || outputs < 1 || outputs > 30 {
					return nil, nil, fmt.Errorf("pla: line %d: bad .o", lineNo+1)
				}
			case ".p", ".ilb", ".ob", ".type":
				// informative only
			case ".e", ".end":
				ended = true
			default:
				return nil, nil, fmt.Errorf("pla: line %d: unsupported directive %s", lineNo+1, fields[0])
			}
			continue
		}
		if inputs < 0 || outputs < 0 {
			return nil, nil, fmt.Errorf("pla: line %d: cube before .i/.o", lineNo+1)
		}
		if t == nil {
			t = New(inputs, outputs)
			care = make([]uint32, len(t.Rows))
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || len(fields[0]) != inputs || len(fields[1]) != outputs {
			return nil, nil, fmt.Errorf("pla: line %d: malformed cube %q", lineNo+1, line)
		}
		var outVal, careVal uint32
		for j := 0; j < outputs; j++ {
			// Like the inputs, the leftmost output character is the most
			// significant output.
			bit := uint32(1) << uint(outputs-1-j)
			switch fields[1][j] {
			case '1':
				outVal |= bit
				careVal |= bit
			case '0':
				careVal |= bit
			case '-', '~':
				// output don't care
			default:
				return nil, nil, fmt.Errorf("pla: line %d: bad output char %q", lineNo+1, fields[1][j])
			}
		}
		if err := expandPLACube(fields[0], inputs, lineNo+1, func(x uint32) error {
			if prev, ok := seen[x]; ok {
				if prev.out == outVal && prev.care == careVal {
					return fmt.Errorf("pla: line %d: row %0*b duplicates line %d",
						lineNo+1, inputs, x, prev.line)
				}
				return fmt.Errorf("pla: line %d: row %0*b conflicts with line %d",
					lineNo+1, inputs, x, prev.line)
			}
			seen[x] = plaRow{line: lineNo + 1, out: outVal, care: careVal}
			t.Rows[x] = outVal
			care[x] = careVal
			return nil
		}); err != nil {
			return nil, nil, err
		}
	}
	if t == nil {
		return nil, nil, fmt.Errorf("pla: no cubes")
	}
	return t, care, nil
}

// parsePLAInt parses a small decimal without risking overflow: directive
// arguments beyond six digits are far past every supported shape, so they
// are rejected before the arithmetic could wrap.
func parsePLAInt(s string, out *int) bool {
	if len(s) == 0 || len(s) > 6 {
		return false
	}
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
		n = n*10 + int(r-'0')
	}
	*out = n
	return true
}

// expandPLACube enumerates the minterms of an input cube. PLA convention:
// the leftmost character is the most significant input.
func expandPLACube(cube string, inputs, lineNo int, f func(uint32) error) error {
	var dcs []int
	var base uint32
	for pos, r := range cube {
		bit := uint(inputs - 1 - pos)
		switch r {
		case '1':
			base |= 1 << bit
		case '0':
		case '-', '~':
			dcs = append(dcs, int(bit))
		default:
			return fmt.Errorf("pla: line %d: bad input char %q in cube %q", lineNo, r, cube)
		}
	}
	for m := 0; m < 1<<uint(len(dcs)); m++ {
		x := base
		for i, bit := range dcs {
			if m&(1<<uint(i)) != 0 {
				x |= 1 << uint(bit)
			}
		}
		if err := f(x); err != nil {
			return err
		}
	}
	return nil
}

// FormatPLA writes the table in PLA format (complete listing).
func (t *Table) FormatPLA() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".i %d\n.o %d\n.p %d\n", t.Inputs, t.Outputs, len(t.Rows))
	for x, y := range t.Rows {
		for pos := t.Inputs - 1; pos >= 0; pos-- {
			if x&(1<<uint(pos)) != 0 {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte(' ')
		for j := t.Outputs - 1; j >= 0; j-- {
			if y&(1<<uint(j)) != 0 {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString(".e\n")
	return b.String()
}
