package canon

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/perm"
	"repro/internal/rng"
)

func randomTransform(n int, src *rng.Source) Transform {
	w := Identity(n).Wires
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		w[i], w[j] = w[j], w[i]
	}
	return Transform{Wires: w, Polarity: uint32(src.Intn(1 << uint(n)))}
}

func TestTransformGroupLaws(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		n := 2 + src.Intn(4)
		a, b := randomTransform(n, src), randomTransform(n, src)
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		inv := a.Inverse()
		if !a.Compose(inv).IsIdentity() || !inv.Compose(a).IsIdentity() {
			t.Fatalf("n=%d: %v does not invert to identity", n, a)
		}
		comp := a.Compose(b)
		for x := uint32(0); x < 1<<uint(n); x++ {
			if comp.Apply(x) != a.Apply(b.Apply(x)) {
				t.Fatalf("n=%d: (%v∘%v)(%d) mismatch", n, a, b, x)
			}
			if inv.Apply(a.Apply(x)) != x {
				t.Fatalf("n=%d: inverse of %v fails at %d", n, a, x)
			}
		}
	}
}

func TestConjugateAgreesOnPermAndCircuit(t *testing.T) {
	src := rng.New(11)
	for trial := 0; trial < 100; trial++ {
		n := 3 + src.Intn(3)
		c := circuit.Random(n, 1+src.Intn(12), circuit.GT, src)
		tr := randomTransform(n, src)
		conj, err := tr.ConjugateCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		want := tr.Conjugate(c.Perm())
		if !conj.Perm().Equal(want) {
			t.Fatalf("n=%d t=%v: ConjugateCircuit realizes %v, want %v", n, tr, conj.Perm(), want)
		}
		if tr.IsIdentity() && conj.String() != c.String() {
			t.Fatalf("identity conjugation changed the cascade: %q vs %q", conj, c)
		}
	}
}

func TestConjugateIsGroupAction(t *testing.T) {
	src := rng.New(13)
	for trial := 0; trial < 100; trial++ {
		n := 2 + src.Intn(3)
		p := perm.Random(n, src)
		a, b := randomTransform(n, src), randomTransform(n, src)
		left := a.Conjugate(b.Conjugate(p))
		right := a.Compose(b).Conjugate(p)
		if !left.Equal(right) {
			t.Fatalf("n=%d: a(b(p)) != (a∘b)(p)", n)
		}
		if !a.Inverse().Conjugate(a.Conjugate(p)).Equal(p) {
			t.Fatalf("n=%d: conjugation by a then a⁻¹ is not identity", n)
		}
	}
}

// TestCanonicalizeExactInvariance pins the defining property of the exact
// range: every member of an orbit canonicalizes to the same representative,
// and the returned transform actually reaches it.
func TestCanonicalizeExactInvariance(t *testing.T) {
	src := rng.New(17)
	for trial := 0; trial < 300; trial++ {
		n := 1 + src.Intn(ExactVars)
		p := perm.Random(n, src)
		rep, tr, err := Canonicalize(p)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Conjugate(p).Equal(rep) {
			t.Fatalf("n=%d: returned transform does not reach the representative", n)
		}
		q := randomTransform(n, src).Conjugate(p)
		rep2, _, err := Canonicalize(q)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Equal(rep2) {
			t.Fatalf("n=%d: conjugate members canonicalize to %v and %v", n, rep, rep2)
		}
		repRep, repT, err := Canonicalize(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !repRep.Equal(rep) || !repT.Conjugate(rep).Equal(rep) {
			t.Fatalf("n=%d: representative is not a fixed point of canonicalization", n)
		}
	}
}

// TestCanonicalizeGreedySound pins the weaker contract above ExactVars:
// deterministic, and the returned transform really conjugates the input to
// the returned form (so a cache built on it can never answer wrongly).
func TestCanonicalizeGreedySound(t *testing.T) {
	src := rng.New(19)
	for trial := 0; trial < 60; trial++ {
		n := ExactVars + 1 + src.Intn(3)
		p := perm.Random(n, src)
		rep, tr, err := Canonicalize(p)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Conjugate(p).Equal(rep) {
			t.Fatalf("n=%d: greedy transform does not reach the returned form", n)
		}
		rep2, tr2, err := Canonicalize(append(perm.Perm(nil), p...))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Equal(rep2) || tr.String() != tr2.String() {
			t.Fatalf("n=%d: greedy normalization is not deterministic", n)
		}
	}
}

// classCount3 is the number of conjugacy classes the 8! = 40320 reversible
// functions of three variables fall into under the 3!·2^3 = 48 relabeling/
// polarity transforms. The value was computed by exhaustive orbit
// enumeration (Burnside-checkable: orbit sizes divide 48 and sum to 40320)
// and is pinned here as ground truth for the classifier.
const classCount3 = 984

// TestExhaustiveThreeVariableClassCount partitions all 40320 permutations
// on three variables with the classifier and checks the partition is the
// known one: exactly classCount3 classes, every orbit size dividing the
// group order, sizes summing to 40320, and every member reaching its
// representative through the returned transform.
func TestExhaustiveThreeVariableClassCount(t *testing.T) {
	const n = 3
	base := perm.Identity(n)
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	classes := make(map[uint64]int) // class hash → orbit size
	repOf := make(map[uint64]string)
	total := 0
	var scan func(k int)
	scan = func(k int) {
		if k == len(idx) {
			p := make(perm.Perm, len(base))
			for i, j := range idx {
				p[i] = uint32(j)
			}
			rep, tr, err := Canonicalize(p)
			if err != nil {
				t.Fatal(err)
			}
			if !tr.Conjugate(p).Equal(rep) {
				t.Fatalf("transform does not reach representative for %v", p)
			}
			h := Hash(rep)
			if prev, ok := repOf[h]; ok {
				if prev != rep.String() {
					t.Fatalf("hash collision between classes %s and %s", prev, rep)
				}
			} else {
				repOf[h] = rep.String()
			}
			classes[h]++
			total++
			return
		}
		for i := k; i < len(idx); i++ {
			idx[k], idx[i] = idx[i], idx[k]
			scan(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	scan(0)
	if total != 40320 {
		t.Fatalf("enumerated %d permutations, want 40320", total)
	}
	if len(classes) != classCount3 {
		t.Fatalf("classifier found %d classes, want %d", len(classes), classCount3)
	}
	sum := 0
	for h, size := range classes {
		if 48%size != 0 {
			t.Fatalf("class %016x has orbit size %d, which does not divide the group order 48", h, size)
		}
		sum += size
	}
	if sum != 40320 {
		t.Fatalf("orbit sizes sum to %d, want 40320", sum)
	}
}

func TestCanonicalizeRejectsBadInput(t *testing.T) {
	if _, _, err := Canonicalize(perm.Perm{0, 1, 2}); err == nil {
		t.Fatal("non-power-of-two table accepted")
	}
	if _, _, err := Canonicalize(perm.Perm{0, 0, 1, 1}); err == nil {
		t.Fatal("non-bijection accepted")
	}
	if _, err := (Transform{Wires: []int{0, 0}}).ConjugateCircuit(circuit.New(2)); err == nil {
		t.Fatal("invalid wire map accepted")
	}
}

func TestNextPermutationOrder(t *testing.T) {
	w := []int{0, 1, 2}
	seen := []string{}
	for {
		seen = append(seen, Transform{Wires: w}.String())
		if !nextPermutation(w) {
			break
		}
	}
	if len(seen) != 6 {
		t.Fatalf("enumerated %d wire permutations of 3, want 6", len(seen))
	}
	if seen[0] != "[0 1 2]^0" || seen[5] != "[2 1 0]^0" {
		t.Fatalf("enumeration is not lexicographic: %v", seen)
	}
}
