// Quickstart: synthesize the paper's running example (the Fig. 1
// reversible function) and print the resulting Toffoli cascade.
package main

import (
	"fmt"
	"log"

	rmrls "repro"
)

func main() {
	// A reversible function of three variables, specified as a
	// permutation of {0,…,7} (the paper's Fig. 1).
	spec := rmrls.MustParseSpec("{1, 0, 7, 2, 3, 4, 5, 6}")

	// Its canonical positive-polarity Reed–Muller expansion (Eq. 3).
	pprm, err := rmrls.PPRMOf(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PPRM expansion:")
	fmt.Println(pprm)

	// Synthesize a cascade of generalized Toffoli gates.
	res, err := rmrls.Synthesize(spec, rmrls.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatal("no circuit found")
	}
	fmt.Printf("\ncircuit: %s\n", res.Circuit)
	fmt.Printf("gates: %d   quantum cost: %d   search steps: %d\n",
		res.Circuit.Len(), res.Circuit.QuantumCost(), res.Steps)

	// Every result can be verified by exhaustive simulation.
	if err := rmrls.Verify(res.Circuit, spec); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: the cascade realizes the specification")
}
