package frontier

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// --- Bound ---

func TestBoundPublishKeepsMinimum(t *testing.T) {
	b := NewBound(100)
	if !b.Publish(40) {
		t.Fatal("Publish(40) on bound 100 should improve")
	}
	if b.Publish(40) || b.Publish(60) {
		t.Fatal("equal or worse depths must not publish")
	}
	if got := b.Load(); got != 40 {
		t.Fatalf("Load = %d, want 40", got)
	}
}

func TestBoundConcurrentPublishers(t *testing.T) {
	b := NewBound(1 << 30)
	const workers = 8
	const per = 2000
	min := int64(1 << 30)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := int64(1 << 30)
			for i := 0; i < per; i++ {
				d := rng.Int63n(1 << 20)
				b.Publish(int(d))
				if d < local {
					local = d
				}
			}
			mu.Lock()
			if local < min {
				min = local
			}
			mu.Unlock()
		}(int64(w) + 1)
	}
	wg.Wait()
	if got := int64(b.Load()); got != min {
		t.Fatalf("bound = %d, want global minimum %d", got, min)
	}
}

// --- TT ---

func TestTTDepthAwarePolicy(t *testing.T) {
	tt := NewTT(1 << 16)
	const h = 0xdeadbeefcafef00d
	if tt.Seen(h, 3) {
		t.Fatal("empty table must miss")
	}
	tt.Record(h, 3)
	if !tt.Seen(h, 3) || !tt.Seen(h, 5) {
		t.Fatal("equal-or-deeper probe must hit")
	}
	if tt.Seen(h, 2) {
		t.Fatal("shallower probe must miss (it supersedes)")
	}
	tt.Record(h, 2) // shallower supersedes
	if tt.Seen(h, 1) {
		t.Fatal("entry should now be at depth 2")
	}
	tt.Forget(h, 3) // wrong depth: must keep the shallower mark
	if !tt.Seen(h, 2) {
		t.Fatal("Forget at a stale depth must not drop the entry")
	}
	tt.Forget(h, 2)
	if tt.Entries() != 0 {
		t.Fatalf("entries = %d after exact-depth forget, want 0", tt.Entries())
	}
	tt.Record(h, 1)
	tt.Reset()
	if tt.Entries() != 0 || tt.Bytes() != 0 {
		t.Fatal("Reset must clear entries and bytes")
	}
	if _, _, ev := tt.Stats(); ev == 0 {
		t.Fatal("Reset must count evictions")
	}
}

func TestTTBytesTrackEntries(t *testing.T) {
	tt := NewTT(1 << 16)
	for i := uint64(0); i < 1000; i++ {
		tt.Record(i*0x9e3779b97f4a7c15, int(i%7))
	}
	if got, want := tt.Bytes(), int64(tt.Entries())*ttEntryBytes; got != want {
		t.Fatalf("Bytes = %d, want entries×%d = %d", got, ttEntryBytes, want)
	}
}

func TestTTConcurrentShardInterleavings(t *testing.T) {
	tt := NewTT(1 << 16)
	const workers = 8
	const per = 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				// Small key space forces cross-worker collisions on the
				// same shards and entries.
				h := uint64(rng.Intn(512)) * 0x9e3779b97f4a7c15
				d := rng.Intn(8)
				if !tt.Seen(h, d) {
					tt.Record(h, d)
				}
				if rng.Intn(16) == 0 {
					tt.Forget(h, d)
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	hits, misses, _ := tt.Stats()
	if hits+misses != workers*per {
		t.Fatalf("hits+misses = %d, want %d probes", hits+misses, workers*per)
	}
	if got, want := tt.Bytes(), int64(tt.Entries())*ttEntryBytes; got != want {
		t.Fatalf("Bytes = %d disagrees with entries = %d", got, tt.Entries())
	}
}

// --- Heap ---

type item struct {
	id  int
	mem int64
}

func itemMem(it item) int64 { return it.mem }

func TestHeapPriorityOrderFIFOTies(t *testing.T) {
	h := NewHeap(itemMem)
	h.Push(item{id: 0, mem: 1}, 1.0)
	h.Push(item{id: 1, mem: 1}, 3.0)
	h.Push(item{id: 2, mem: 1}, 3.0) // tie: FIFO after id 1
	h.Push(item{id: 3, mem: 1}, 2.0)
	want := []int{1, 2, 3, 0}
	for _, w := range want {
		v, ok := h.Pop()
		if !ok || v.id != w {
			t.Fatalf("pop = %v (ok=%v), want id %d", v, ok, w)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("empty heap must report !ok")
	}
}

func TestHeapByteAccountingExact(t *testing.T) {
	h := NewHeap(itemMem)
	var want int64
	for i := 0; i < 100; i++ {
		m := int64(10 + i)
		h.Push(item{id: i, mem: m}, float64(i%7))
		want += m
	}
	if h.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", h.Bytes(), want)
	}
	for i := 0; i < 40; i++ {
		v, _ := h.Pop()
		want -= v.mem
	}
	if h.Bytes() != want {
		t.Fatalf("Bytes after pops = %d, want %d", h.Bytes(), want)
	}
	dropped := int64(0)
	h.PruneTo(10, func(v item) { dropped += v.mem })
	if h.Bytes() != want-dropped {
		t.Fatalf("Bytes after prune = %d, want %d", h.Bytes(), want-dropped)
	}
	h.Clear(nil)
	if h.Bytes() != 0 || h.Len() != 0 {
		t.Fatal("Clear must zero accounting")
	}
}

// TestHeapStealMovesCharges is the regression test for the double-count
// class of bug: a node in flight between a victim and a thief must be
// charged at most once, so the sum of heap bytes sampled concurrently can
// never exceed the true total of queued charges.
func TestHeapStealMovesCharges(t *testing.T) {
	const heaps = 4
	const perHeap = 3000
	const mem = 128
	hs := make([]*Heap[item], heaps)
	for i := range hs {
		hs[i] = NewHeap(itemMem)
	}
	var pushed, consumed atomic.Int64
	var overCount atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < heaps; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(self) + 1))
			for i := 0; i < perHeap; i++ {
				hs[self].Push(item{id: self*perHeap + i, mem: mem}, rng.Float64())
				pushed.Add(1)
				// Interleave pops and steals with pushes.
				if i%3 == 0 {
					if _, ok := hs[self].Pop(); ok {
						consumed.Add(1)
					}
				}
				if i%5 == 0 {
					if v := Deepest(hs, self); v >= 0 {
						if _, ok := hs[v].Steal(); ok {
							consumed.Add(1)
						}
					}
				}
				// The sampled global total must never exceed what has been
				// pushed and not yet consumed — a steal that held the charge
				// on both heaps would trip this.
				var total int64
				for _, h := range hs {
					total += h.Bytes()
				}
				if total > (pushed.Load()-consumed.Load())*mem {
					overCount.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := overCount.Load(); n != 0 {
		t.Fatalf("observed %d samples where summed heap bytes exceeded live charges (double count)", n)
	}
	var remaining int64
	for _, h := range hs {
		remaining += h.Bytes()
	}
	if want := (pushed.Load() - consumed.Load()) * mem; remaining != want {
		t.Fatalf("final summed bytes = %d, want %d", remaining, want)
	}
}

// --- Pool ---

func TestPoolFirstStopWins(t *testing.T) {
	p := NewPool()
	if p.Stopped() {
		t.Fatal("fresh pool must not be stopped")
	}
	if !p.Stop(7) {
		t.Fatal("first Stop must win")
	}
	if p.Stop(9) {
		t.Fatal("second Stop must lose")
	}
	if p.Reason() != 7 {
		t.Fatalf("Reason = %d, want 7", p.Reason())
	}
	p.Resume()
	if p.Stopped() || p.Reason() != 0 {
		t.Fatal("Resume must clear the stop")
	}
}

// TestPoolWorkStealingDrain runs a miniature hash-sharded search: items
// are integers, expansion of v yields 2v+1 and 2v+2 below a limit, each
// routed to its owner heap by hash, deduplicated through the striped
// table, with idle workers stealing from the deepest peer. Every
// reachable item must be expanded exactly once and the pool must detect
// quiescence on its own — the steal/broadcast/shard interleavings the
// free-running engine depends on.
func TestPoolWorkStealingDrain(t *testing.T) {
	const workers = 8
	const limit = 20000
	hs := make([]*Heap[item], workers)
	for i := range hs {
		hs[i] = NewHeap(itemMem)
	}
	tt := NewTT(1 << 18)
	p := NewPool()
	var expanded atomic.Int64
	seenOnce := make([]atomic.Int32, limit)

	owner := func(v int) int { return (v * 0x9e37) % workers }
	push := func(v int) {
		h := uint64(v) * 0x9e3779b97f4a7c15
		if tt.Seen(h, 0) {
			return
		}
		tt.Record(h, 0)
		p.AddPending(1)
		hs[owner(v)].Push(item{id: v, mem: 64}, -float64(v))
	}
	push(0)

	p.Run(workers, func(id int) {
		idleSpins := 0
		for !p.Stopped() {
			it, ok := hs[id].Pop()
			if !ok {
				if v := Deepest(hs, id); v >= 0 {
					if it, ok = hs[v].Steal(); ok {
						p.NoteSteal()
					}
				}
			}
			if !ok {
				p.NoteIdle()
				idleSpins++
				if p.Pending() == 0 {
					p.Stop(1)
					return
				}
				runtime.Gosched()
				continue
			}
			idleSpins = 0
			seenOnce[it.id].Add(1)
			for _, c := range []int{2*it.id + 1, 2*it.id + 2} {
				if c < limit {
					push(c)
				}
			}
			expanded.Add(1)
			p.AddPending(-1)
		}
	})

	if p.Reason() != 1 {
		t.Fatalf("stop reason = %d, want quiescence (1)", p.Reason())
	}
	if got := expanded.Load(); got != limit {
		t.Fatalf("expanded %d items, want all %d reachable", got, limit)
	}
	for v := range seenOnce {
		if n := seenOnce[v].Load(); n != 1 {
			t.Fatalf("item %d expanded %d times, want exactly once", v, n)
		}
	}
	for _, h := range hs {
		if h.Len() != 0 || h.Bytes() != 0 {
			t.Fatal("heaps must be drained with zeroed accounting")
		}
	}
}
