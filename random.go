package rmrls

import (
	"repro/internal/circuit"
	"repro/internal/perm"
	"repro/internal/rng"
)

// randomCircuit isolates the deterministic-RNG plumbing from the facade.
func randomCircuit(wires, gates int, lib circuit.Library, seed uint64) *circuit.Circuit {
	return circuit.Random(wires, gates, lib, rng.New(seed))
}

// RandomFunction returns a uniformly random reversible function of n
// variables (the workload of the paper's Tables II and III), reproducible
// from the seed.
func RandomFunction(n int, seed uint64) Perm {
	return perm.Random(n, rng.New(seed))
}
