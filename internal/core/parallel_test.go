package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
)

// detKey flattens every deterministic field of a Result into one
// comparable string: the circuit (gates and gate order), all counters,
// and the stop reason. Two det-merge runs must agree on all of it.
func detKey(t *testing.T, r Result) string {
	t.Helper()
	if r.Err != nil {
		t.Fatalf("synthesis error: %v", r.Err)
	}
	gates := "<none>"
	if r.Found {
		gates = r.Circuit.String()
	}
	return fmt.Sprintf("found=%v gates=%q steps=%d nodes=%d restarts=%d stop=%v peak=%d hits=%d misses=%d evictions=%d",
		r.Found, gates, r.Steps, r.Nodes, r.Restarts, r.StopReason,
		r.PeakQueueBytes, r.DedupHits, r.DedupMisses, r.DedupEvictions)
}

// detSpecs is a small mixed workload: the Fig. 1 function plus seeded
// random 3- and 4-variable reversible functions.
func detSpecs(t *testing.T) []perm.Perm {
	t.Helper()
	src := rng.New(7)
	specs := []perm.Perm{perm.MustFromInts([]int{1, 0, 7, 2, 3, 4, 5, 6})}
	for i := 0; i < 4; i++ {
		specs = append(specs, perm.Random(3, src))
	}
	for i := 0; i < 2; i++ {
		specs = append(specs, perm.Random(4, src))
	}
	return specs
}

func TestBatchedDeterministicAcrossWorkerCounts(t *testing.T) {
	for si, p := range detSpecs(t) {
		spec, err := pprm.FromPerm(p)
		if err != nil {
			t.Fatal(err)
		}
		var want string
		for _, w := range []int{1, 2, 4, 8} {
			opts := DefaultOptions()
			opts.TotalSteps = 20000
			opts.Workers = w
			r := Synthesize(spec, opts)
			if r.Workers != w {
				t.Errorf("spec %d workers=%d: Result.Workers = %d", si, w, r.Workers)
			}
			if r.Found {
				if err := Verify(r.Circuit, p); err != nil {
					t.Errorf("spec %d workers=%d: %v", si, w, err)
				}
			}
			got := detKey(t, r)
			if w == 1 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("spec %d: workers=%d diverged from workers=1\n got: %s\nwant: %s", si, w, got, want)
			}
		}
	}
}

// TestBatchedResumeUnderDifferentWorkerCount interrupts a det-merge run
// by step budget, then resumes the same snapshot under three different
// worker counts; all resumed runs must be byte-identical. This is the
// property that lets a checkpointed job migrate between machines with
// different core counts. (Split-point invariance — matching an
// uninterrupted run node-for-node — is NOT guaranteed: a budget stop
// shifts the commit barriers, so only worker-count invariance is pinned.)
func TestBatchedResumeUnderDifferentWorkerCount(t *testing.T) {
	src := rng.New(11)
	p := perm.Random(4, src)
	spec, err := pprm.FromPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultOptions()
	base.TotalSteps = 6000
	base.ImproveSteps = 0
	base.Workers = 4

	dir := t.TempDir()
	path := filepath.Join(dir, "batched.ckpt")
	interrupted := base
	interrupted.TotalSteps = 2500
	interrupted.Checkpoint = Checkpoint{Path: path, EverySteps: 700}
	r1 := Synthesize(spec, interrupted)
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	if r1.StopReason != StopStepLimit {
		t.Fatalf("interrupted run stopped with %v, want %v", r1.StopReason, StopStepLimit)
	}
	snap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var want string
	for _, w := range []int{1, 4, 8} {
		// Each resume gets its own snapshot copy: resuming keeps
		// checkpointing to the same file, which would otherwise feed
		// the next iteration a later snapshot.
		copyPath := filepath.Join(dir, fmt.Sprintf("resume-%d.ckpt", w))
		if err := os.WriteFile(copyPath, snap, 0o644); err != nil {
			t.Fatal(err)
		}
		resumed := base
		resumed.Workers = w
		resumed.Checkpoint = Checkpoint{Path: copyPath, EverySteps: 700}
		r, err := ResumeContext(t.Context(), spec, resumed, copyPath)
		if err != nil {
			t.Fatalf("resume workers=%d: %v", w, err)
		}
		if !r.Resumed {
			t.Errorf("workers=%d: resumed run does not report Resumed", w)
		}
		if r.Found {
			if err := Verify(r.Circuit, p); err != nil {
				t.Errorf("workers=%d: %v", w, err)
			}
		}
		got := detKey(t, r)
		if w == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("resume with workers=%d diverged from workers=1\n got: %s\nwant: %s", w, got, want)
		}
	}
}

func TestParallelFingerprintFamilies(t *testing.T) {
	seq := DefaultOptions()
	seqFP := OptionsFingerprint(&seq)

	w1 := seq
	w1.Workers = 1
	w8 := seq
	w8.Workers = 8
	if got := OptionsFingerprint(&w1); got == seqFP {
		t.Error("det-merge fingerprint equals sequential; the engines are distinct trajectory families")
	}
	if OptionsFingerprint(&w1) != OptionsFingerprint(&w8) {
		t.Error("det-merge fingerprints differ across worker counts; resume across widths would be rejected")
	}

	free := seq
	free.Workers = 8
	free.FreeRunning = true
	if OptionsFingerprint(&free) == OptionsFingerprint(&w8) {
		t.Error("free-running fingerprint equals det-merge")
	}
	if OptionsFingerprint(&free) == seqFP {
		t.Error("free-running fingerprint equals sequential")
	}

	// Free-running with checkpointing degrades to det-merge, and the
	// fingerprint must say so (the checkpoint is a det-merge checkpoint).
	freeCk := free
	freeCk.Checkpoint.Path = "somewhere.ckpt"
	if OptionsFingerprint(&freeCk) != OptionsFingerprint(&w8) {
		t.Error("free-running+checkpoint does not fingerprint as det-merge despite the documented fallback")
	}
}

// TestSearchInvariantsHold drives both deterministic engines with the
// test-only step hook asserting, at every loop boundary, that the queue
// byte accounting matches a full recount and that the peak watermark is
// monotone — the regression guard for the double-count class of bug.
func TestSearchInvariantsHold(t *testing.T) {
	src := rng.New(3)
	p := perm.Random(4, src)
	spec, err := pprm.FromPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} { // 0 = sequential engine, 4 = det-merge
		opts := DefaultOptions()
		opts.TotalSteps = 4000
		opts.ImproveSteps = 0
		opts.Workers = workers
		s := newSearcher(spec, opts)
		var lastPeak int64
		checks := 0
		s.stepHook = func(s *searcher) {
			checks++
			var sum int64
			s.pq.Each(func(n *node) { sum += n.mem })
			if sum != s.queueBytes {
				t.Fatalf("workers=%d: queueBytes=%d but recount=%d (stale accounting)", workers, s.queueBytes, sum)
			}
			if s.peakBytes < lastPeak {
				t.Fatalf("workers=%d: peak watermark moved backwards: %d -> %d", workers, lastPeak, s.peakBytes)
			}
			if s.peakBytes < s.queueBytes {
				t.Fatalf("workers=%d: peak %d below live queue bytes %d", workers, s.peakBytes, s.queueBytes)
			}
			lastPeak = s.peakBytes
		}
		r := s.runEngine()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if checks == 0 {
			t.Fatalf("workers=%d: step hook never ran", workers)
		}
	}
}

// TestFreeRunningSynthesizes exercises the work-stealing engine: found
// circuits must verify, counters must be plausible, and the engine must
// also survive the restart heuristic and FirstSolution mode. Run under
// -race this is the engine's interleaving suite.
func TestFreeRunningSynthesizes(t *testing.T) {
	for si, p := range detSpecs(t) {
		spec, err := pprm.FromPerm(p)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.TotalSteps = 30000
		opts.Workers = 4
		opts.FreeRunning = true
		r := Synthesize(spec, opts)
		if r.Err != nil {
			t.Fatalf("spec %d: %v", si, r.Err)
		}
		if r.Workers != 4 {
			t.Errorf("spec %d: Result.Workers = %d, want 4", si, r.Workers)
		}
		if r.Found {
			if err := Verify(r.Circuit, p); err != nil {
				t.Errorf("spec %d: free-running circuit fails verification: %v", si, err)
			}
			if !r.Verified {
				t.Errorf("spec %d: found circuit did not pass the verification gate", si)
			}
		}
		if r.Steps <= 0 {
			t.Errorf("spec %d: Steps = %d, want > 0", si, r.Steps)
		}
	}
}

func TestFreeRunningFirstSolutionAndRestarts(t *testing.T) {
	src := rng.New(19)
	p := perm.Random(4, src)
	spec, err := pprm.FromPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Workers = 8
	opts.FreeRunning = true
	opts.FirstSolution = true
	opts.MaxSteps = 300 // force the stop-the-world restart path
	opts.TotalSteps = 60000
	r := Synthesize(spec, opts)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Found {
		if err := Verify(r.Circuit, p); err != nil {
			t.Error(err)
		}
		if r.StopReason != StopSolved {
			t.Errorf("FirstSolution stop = %v, want %v", r.StopReason, StopSolved)
		}
	}
}

// TestFreeRunningFallsBackWhenCheckpointing pins the documented
// degradation: FreeRunning with a checkpoint configured must use the
// det-merge engine, whose runs are resumable and worker-count-invariant.
func TestFreeRunningFallsBackWhenCheckpointing(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 4
	opts.FreeRunning = true
	opts.Checkpoint.Path = "x.ckpt"
	if m := opts.parallelMode(); m != parBatch {
		t.Fatalf("parallelMode = %v, want det-merge fallback", m)
	}
	opts.Checkpoint.Path = ""
	if m := opts.parallelMode(); m != parFree {
		t.Fatalf("parallelMode = %v, want free-running", m)
	}
	opts.Workers = 1
	if m := opts.parallelMode(); m != parBatch {
		t.Fatalf("parallelMode with 1 worker = %v, want det-merge (stealing needs peers)", m)
	}
	opts.Workers = 0
	if m := opts.parallelMode(); m != parSeq {
		t.Fatalf("parallelMode with 0 workers = %v, want sequential", m)
	}
}
