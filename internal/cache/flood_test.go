package cache_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/perm"
	"repro/internal/rng"
)

// TestCorruptFloodDroppedOnceCacheUsable floods the persistence directory
// with corrupt-beyond-CRC entries at real keys and checks the degraded
// behavior end to end: every lookup is a clean miss (never an error, never
// a wrong circuit), each bad file is removed on first touch and counted
// exactly once, and the cache stays fully usable — fresh stores land and
// serve from the same directory throughout.
func TestCorruptFloodDroppedOnceCacheUsable(t *testing.T) {
	dir := t.TempDir()
	writer, err := cache.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(42)
	type spec struct {
		p perm.Perm
		c *circuit.Circuit
	}
	var specs []spec
	for len(specs) < 8 {
		c, p := randomSpec(3, 2+src.Intn(6), src)
		if _, stored, err := writer.Put(p, fpA, c); err != nil {
			t.Fatal(err)
		} else if stored {
			specs = append(specs, spec{p: p, c: c})
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.rmce"))
	if err != nil || len(files) == 0 {
		t.Fatalf("setup: %d entry files (%v)", len(files), err)
	}
	// Corrupt every file past any CRC's help: truncated garbage with the
	// right extension at the right key.
	for _, f := range files {
		if err := os.WriteFile(f, []byte("\x00\xffnot an entry"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	c, err := cache.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		if _, ok := c.Lookup(sp.p, fpA); ok {
			t.Fatalf("spec %d: corrupt entry served as a hit", i)
		}
	}
	st := c.Stats()
	if st.CorruptDropped != int64(len(files)) {
		t.Fatalf("CorruptDropped = %d, want %d (one per flooded file)", st.CorruptDropped, len(files))
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*.rmce")); len(left) != 0 {
		t.Fatalf("%d corrupt files survived their first touch", len(left))
	}

	// Second pass: the files are gone, so nothing is "corrupt" anymore —
	// plain misses, the counter must not move again.
	for _, sp := range specs {
		c.Lookup(sp.p, fpA)
	}
	if again := c.Stats().CorruptDropped; again != st.CorruptDropped {
		t.Fatalf("CorruptDropped moved on the second pass: %d → %d", st.CorruptDropped, again)
	}

	// The cache is still fully usable: store, persist, and serve.
	for _, sp := range specs {
		if _, _, err := c.Put(sp.p, fpA, sp.c); err != nil {
			t.Fatalf("Put after flood: %v", err)
		}
		if _, ok := c.Lookup(sp.p, fpA); !ok {
			t.Fatal("fresh entry missed after flood")
		}
	}
	if repersisted, _ := filepath.Glob(filepath.Join(dir, "*.rmce")); len(repersisted) != len(files) {
		t.Fatalf("re-persisted %d files, want %d", len(repersisted), len(files))
	}
}
