package decomp

import (
	"errors"
	"testing"

	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/rng"
)

// gateWith builds an m-control Toffoli on the given wires.
func gateWith(target int, controls ...int) circuit.Gate {
	return circuit.NewGate(target, controls...)
}

func checkEquivalent(t *testing.T, g circuit.Gate, wires int) *circuit.Circuit {
	t.Helper()
	dec, err := Decompose(g, wires)
	if err != nil {
		t.Fatalf("Decompose(%s, %d): %v", g, wires, err)
	}
	if !dec.NCTOnly() {
		t.Fatalf("decomposition of %s contains non-NCT gates: %s", g, dec)
	}
	want := circuit.New(wires)
	want.Append(g)
	if !dec.Perm().Equal(want.Perm()) {
		t.Fatalf("decomposition of %s on %d wires computes the wrong function:\n%s", g, wires, dec)
	}
	return dec
}

func TestSmallGatesUnchanged(t *testing.T) {
	for _, g := range []circuit.Gate{
		gateWith(0),
		gateWith(0, 1),
		gateWith(2, 0, 1),
	} {
		dec := checkEquivalent(t, g, 4)
		if dec.Len() != 1 {
			t.Errorf("NCT gate %s expanded to %d gates", g, dec.Len())
		}
	}
}

func TestVChainCounts(t *testing.T) {
	// With m−2 free wires: exactly 4(m−2) TOF3 gates (Barenco Lemma 7.2).
	for m := 3; m <= 8; m++ {
		wires := m + 1 + (m - 2) // m controls + target + m−2 ancillae
		controls := make([]int, m)
		for i := range controls {
			controls[i] = i + 1
		}
		g := gateWith(0, controls...)
		dec := checkEquivalent(t, g, wires)
		if m == 3 {
			// m=3 is TOF3 itself — emitted unchanged.
			continue
		}
		if want := 4 * (m - 2); dec.Len() != want {
			t.Errorf("m=%d: %d gates, want %d", m, dec.Len(), want)
		}
	}
}

func TestSingleAncillaSplit(t *testing.T) {
	// Exactly one free wire: the recursive split must still produce a
	// correct NCT cascade.
	for wires := 5; wires <= 9; wires++ {
		controls := make([]int, wires-2)
		for i := range controls {
			controls[i] = i + 1
		}
		g := gateWith(0, controls...) // m = wires−2 → one free wire
		dec := checkEquivalent(t, g, wires)
		if dec.Len() < 4 {
			t.Errorf("wires=%d: suspiciously small decomposition (%d gates)", wires, dec.Len())
		}
	}
}

func TestNoAncillaRejected(t *testing.T) {
	g := gateWith(0, 1, 2, 3) // 3 controls on 4 wires: no free wire
	_, err := Decompose(g, 4)
	if !errors.Is(err, ErrNoAncilla) {
		t.Fatalf("err = %v, want ErrNoAncilla", err)
	}
}

func TestDirtyAncillaRestored(t *testing.T) {
	// The network must restore borrowed wires for *every* initial value —
	// checked implicitly by full-permutation equality, but spell out one
	// case: ancilla starts at 1.
	g := gateWith(0, 1, 2, 3, 4)
	dec, err := Decompose(g, 7) // wires 5,6 free
	if err != nil {
		t.Fatal(err)
	}
	in := uint32(0b1111110) // controls on, ancilla bits 5,6 = 1
	out := dec.Apply(in)
	if out>>5&1 != 1 || out>>6&1 != 1 {
		t.Errorf("ancilla not restored: %07b → %07b", in, out)
	}
	if out&1 != 1 {
		t.Errorf("target not flipped: %07b → %07b", in, out)
	}
}

func TestDecomposeCircuit(t *testing.T) {
	src := rng.New(66)
	for trial := 0; trial < 20; trial++ {
		c := circuit.Random(7, 8, circuit.GT, src)
		// Skip circuits containing a full-width gate (no free wire).
		skip := false
		for _, g := range c.Gates {
			if g.Size() == c.Wires {
				skip = true
			}
		}
		if skip {
			continue
		}
		dec, err := DecomposeCircuit(c)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !dec.NCTOnly() {
			t.Fatal("non-NCT output")
		}
		if !dec.Perm().Equal(c.Perm()) {
			t.Fatalf("trial %d: function changed", trial)
		}
	}
}

func TestRandomGatesAllWidths(t *testing.T) {
	src := rng.New(5)
	for trial := 0; trial < 60; trial++ {
		wires := 4 + src.Intn(6)
		m := 3 + src.Intn(wires-3) // controls, ≤ wires−1
		if m >= wires-0 {
			m = wires - 1
		}
		perm := src.Perm(wires)
		target := perm[0]
		var controls []int
		for _, w := range perm[1 : m+1] {
			controls = append(controls, w)
		}
		g := gateWith(target, controls...)
		if bits.Count(g.Controls)+1 == wires {
			continue // no free wire: rejected path tested elsewhere
		}
		checkEquivalent(t, g, wires)
	}
}

func TestNCTCost(t *testing.T) {
	if c, err := NCTCost(3, 5); err != nil || c != 1 {
		t.Errorf("NCTCost(3) = %d, %v", c, err)
	}
	// Plenty of ancillae → linear V-chain count.
	if c, err := NCTCost(6, 12); err != nil || c != 4*(5-2) {
		t.Errorf("NCTCost(6,12) = %d, %v; want 12", c, err)
	}
	// No free wire → error.
	if _, err := NCTCost(5, 5); !errors.Is(err, ErrNoAncilla) {
		t.Errorf("NCTCost(5,5) err = %v", err)
	}
}
