package rng

import "testing"

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	s := New(99)
	const buckets, draws = 8, 80000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: %d draws, want ≈%d", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	for trial := 0; trial < 50; trial++ {
		p := s.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("Perm(20) = %v is not a permutation", p)
			}
			seen[v] = true
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	_ = s.Uint64() // must not panic
}
