package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/pprm"
)

// portfolioVariants returns the portfolio's search configurations, derived
// from the caller's options. No single priority shape wins everywhere: the
// default A* charge (α = −0.6) is strongest on random functions and
// arithmetic, a shallower charge (α = −0.3) traverses the elimination
// plateaus of counting functions (rd53, 2of5), and the paper-shaped
// eliminations-per-gate ordering (β·elim/depth) finds the shortest rd53
// realizations. The paper compensated with 60–180 s wall-clock budgets;
// the portfolio is the deterministic equivalent. Each variant gets the
// caller's TotalSteps budget. Variant 0 is always the caller's own
// configuration, so the portfolio can never do worse than a single run.
func portfolioVariants(opts Options) []Options {
	muts := []func(*Options){
		func(o *Options) {},
		func(o *Options) {
			if o.LinearElim && o.Alpha < 0 {
				o.Alpha = -0.3
			}
		},
		func(o *Options) {
			o.LinearElim = false
			o.Alpha, o.Beta, o.Gamma = 0, 0.95, 0.05
		},
	}
	variants := make([]Options, len(muts))
	for i, mut := range muts {
		v := opts
		// A shared Trace callback would be invoked concurrently from every
		// variant's goroutine; tracing is a single-run debugging tool, so
		// the portfolio drops it rather than racing on the caller's sink.
		v.Trace = nil
		// A shared Run would have every variant overwrite the others'
		// gauges; SynthesizePortfolioContext reassigns per-variant child
		// Runs so each goroutine reports individually and the parent
		// aggregates them.
		v.Observe = nil
		mut(&v)
		variants[i] = v
	}
	return variants
}

// SynthesizePortfolio runs the portfolio with context.Background(); see
// SynthesizePortfolioContext.
func SynthesizePortfolio(spec *pprm.Spec, opts Options, rounds int) Result {
	return SynthesizePortfolioContext(context.Background(), spec, opts, rounds)
}

// SynthesizePortfolioContext runs a small portfolio of complementary
// search configurations concurrently — one goroutine per configuration,
// each with its own per-attempt context and budget — and returns the best
// circuit any of them finds, followed by sequential iterative tightening.
//
// The merge is deterministic: the winner is chosen by fewest gates, then
// lowest quantum cost, then lowest configuration index, so the returned
// circuit does not depend on goroutine scheduling. With deterministic
// per-variant budgets (TotalSteps rather than TimeLimit) repeated runs
// return byte-identical circuits. The one documented exception is
// FirstSolution mode, where the first variant to find any solution cancels
// the stragglers — the caller asked for latency, and which variant wins
// that race is inherently timing-dependent.
//
// Canceling ctx cancels every variant and the tightening phase; the Result
// then reports StopReason == StopCanceled with the best circuit found
// before the cancel. A variant that dies on an internal invariant panic
// surrenders only its own slot (its Err is surfaced when no variant
// produced anything).
func SynthesizePortfolioContext(ctx context.Context, spec *pprm.Spec, opts Options, rounds int) Result {
	start := time.Now()
	variants := portfolioVariants(opts)
	if opts.Observe != nil {
		for i := range variants {
			variants[i].Observe = opts.Observe.Child(fmt.Sprintf("variant%d", i))
		}
	}
	results := make([]Result, len(variants))

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := range variants {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The input spec is only read (each searcher clones it for its
			// root), so the variants share it without synchronization.
			results[i] = SynthesizeContext(pctx, spec, variants[i])
			if opts.FirstSolution && results[i].Found {
				cancel() // first solution cancels the stragglers
			}
		}(i)
	}
	wg.Wait()

	// The parent Run is a pure aggregate over the variant (and tighten)
	// children; the portfolio finishes it explicitly so the final snapshot
	// reports done with the merged stop reason.
	finishObs := func(r Result) Result {
		if opts.Observe != nil {
			opts.Observe.Finish(r.StopReason.String())
		}
		return r
	}

	best := mergeResults(results, ctx.Err() != nil)
	best.Elapsed = time.Since(start)
	if !best.Found {
		return finishObs(best)
	}
	tight := opts
	tight.MaxGates = best.Circuit.Len() // bound the refinement's baseline
	if opts.Observe != nil {
		// The tightening rounds get their own child run (Begin folds each
		// round's counters), keeping the parent a pure aggregate.
		tight.Observe = opts.Observe.Child("tighten")
	}
	refined := synthesizeTightening(ctx, spec, tight, best.Circuit.Len(), rounds)
	best.Steps += refined.Steps
	best.Nodes += refined.Nodes
	best.Restarts += refined.Restarts
	best.DedupHits += refined.DedupHits
	best.DedupMisses += refined.DedupMisses
	best.DedupEvictions += refined.DedupEvictions
	best.Steals += refined.Steals
	best.Idles += refined.Idles
	if refined.Found && refined.Circuit.Len() < best.Circuit.Len() {
		best.Circuit = refined.Circuit
		best.Verified = refined.Verified
	}
	if ctx.Err() != nil {
		best.StopReason = StopCanceled
	}
	if best.Verified && opts.Observe != nil {
		// Each variant verified through its own child Run; mark the parent
		// aggregate for the circuit actually returned.
		opts.Observe.SetVerified(true)
	}
	best.Elapsed = time.Since(start)
	return finishObs(best)
}

// mergeResults folds the variant results into one, independent of the
// order the goroutines finished in. The winning circuit is chosen by the
// fixed tie-break (gates, then quantum cost, then variant index — the
// loop's ascending index with strict improvement provides the last);
// steps, nodes, restarts, and the memory high-water mark aggregate over
// all variants so the portfolio's cost is visible to callers.
func mergeResults(results []Result, canceled bool) Result {
	var merged Result
	var firstErr error
	for i := range results {
		r := &results[i]
		merged.Steps += r.Steps
		merged.Nodes += r.Nodes
		merged.Restarts += r.Restarts
		merged.DedupHits += r.DedupHits
		merged.DedupMisses += r.DedupMisses
		merged.DedupEvictions += r.DedupEvictions
		merged.Steals += r.Steals
		merged.Idles += r.Idles
		if r.Workers > merged.Workers {
			merged.Workers = r.Workers
		}
		// The variants run concurrently, so their queue watermarks coexist:
		// the portfolio's worst-case footprint is the SUM of the per-variant
		// peaks, not their max. (Summing per-variant peaks still slightly
		// over-approximates — the variants need not peak at the same instant —
		// but a capacity planner wants the upper bound; taking the max here
		// under-reported a 3-variant portfolio by ~3x.)
		merged.PeakQueueBytes += r.PeakQueueBytes
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
		if r.Found && (!merged.Found || betterCircuit(r, &merged)) {
			merged.Found = true
			merged.Circuit = r.Circuit
			merged.Verified = r.Verified
		}
	}
	switch {
	case canceled:
		merged.StopReason = StopCanceled
	case merged.Found:
		merged.StopReason = StopSolved
	default:
		// Variant 0 runs the caller's own configuration; its reason is the
		// one a single Synthesize call would have reported. But if variant 0
		// died on a recovered panic while another variant ran its budget out
		// legitimately, reporting StopInternalError would misdiagnose the
		// whole portfolio as crashed: prefer the first informative
		// non-internal reason (deterministic — ascending variant index) and
		// keep the first error surfaced.
		merged.StopReason = results[0].StopReason
		if merged.StopReason == StopInternalError || merged.StopReason == StopNone {
			for i := range results {
				r := results[i].StopReason
				if r != StopInternalError && r != StopNone {
					merged.StopReason = r
					break
				}
			}
		}
		merged.Err = firstErr
	}
	return merged
}

// betterCircuit reports whether a's circuit strictly beats the incumbent
// b's: fewer gates, then lower quantum cost. Equality keeps the incumbent,
// which realizes the variant-index tie-break.
func betterCircuit(a, b *Result) bool {
	if a.Circuit.Len() != b.Circuit.Len() {
		return a.Circuit.Len() < b.Circuit.Len()
	}
	return a.Circuit.QuantumCost() < b.Circuit.QuantumCost()
}

// synthesizeTightening runs `rounds` strictly-below-bound searches.
func synthesizeTightening(ctx context.Context, spec *pprm.Spec, opts Options, gates, rounds int) Result {
	var out Result
	bound := gates
	for round := 0; round < rounds; round++ {
		if bound <= 1 || ctx.Err() != nil {
			break
		}
		tight := opts
		tight.MaxGates = bound - 1
		tight.FirstSolution = true
		if tight.LinearElim && tight.Alpha < 0 {
			tight.Alpha = 1.5 * tight.Alpha
		}
		r := SynthesizeContext(ctx, spec, tight)
		out.Steps += r.Steps
		out.Nodes += r.Nodes
		out.Restarts += r.Restarts
		out.Elapsed += r.Elapsed
		out.DedupHits += r.DedupHits
		out.DedupMisses += r.DedupMisses
		out.DedupEvictions += r.DedupEvictions
		out.Steals += r.Steals
		out.Idles += r.Idles
		if !r.Found {
			break
		}
		out.Found = true
		out.Circuit = r.Circuit
		out.Verified = r.Verified
		bound = r.Circuit.Len()
	}
	return out
}

// SynthesizeIterative is SynthesizeIterativeContext with
// context.Background().
func SynthesizeIterative(spec *pprm.Spec, opts Options, rounds int) Result {
	return SynthesizeIterativeContext(context.Background(), spec, opts, rounds)
}

// SynthesizeIterativeContext improves on Synthesize by iterative
// tightening: after a circuit of G gates is found, the search is re-run
// from scratch with MaxGates = G−1, so the whole budget of the next round
// is spent strictly below the best known size (where the priority focuses
// on shorter realizations), instead of on an already-found frontier.
// Rounds stop when a round finds nothing better, `rounds` re-runs have
// been made, or ctx is canceled (the best circuit so far is returned with
// StopReason == StopCanceled).
//
// This plays the role of the paper's long per-function improvement phases
// (it kept searching for up to 60–180 s after the first solution) within
// deterministic step budgets. The first round runs with the caller's
// options verbatim; tightening rounds reuse the caller's TotalSteps budget
// and stop at their first (necessarily better) solution.
func SynthesizeIterativeContext(ctx context.Context, spec *pprm.Spec, opts Options, rounds int) Result {
	best := SynthesizeContext(ctx, spec, opts)
	if !best.Found {
		return best
	}
	for round := 0; round < rounds; round++ {
		if ctx.Err() != nil {
			best.StopReason = StopCanceled
			break
		}
		bound := best.Circuit.Len() - 1
		if bound <= 0 {
			break
		}
		tight := opts
		tight.MaxGates = bound
		tight.FirstSolution = true
		if tight.LinearElim && tight.Alpha < 0 {
			// Tightening rounds can afford a steeper per-gate charge: the
			// search is now looking only for strictly shorter circuits, so
			// quality-oriented ordering pays. Empirically (random
			// 5-variable functions, equal budgets) −0.9 recovers the
			// paper's Table III sizes where −0.6 alone lands ~6 gates
			// higher.
			tight.Alpha = 1.5 * tight.Alpha
		}
		r := SynthesizeContext(ctx, spec, tight)
		best.Steps += r.Steps
		best.Nodes += r.Nodes
		best.Restarts += r.Restarts
		best.Elapsed += r.Elapsed
		best.DedupHits += r.DedupHits
		best.DedupMisses += r.DedupMisses
		best.DedupEvictions += r.DedupEvictions
		best.Steals += r.Steals
		best.Idles += r.Idles
		// Rounds run one after another, so the overall watermark is the max
		// of the per-round peaks (contrast mergeResults, where concurrent
		// variants' peaks add).
		if r.PeakQueueBytes > best.PeakQueueBytes {
			best.PeakQueueBytes = r.PeakQueueBytes
		}
		if !r.Found {
			if r.StopReason == StopCanceled {
				best.StopReason = StopCanceled
			}
			break
		}
		best.Circuit = r.Circuit
		best.Verified = r.Verified
	}
	return best
}
