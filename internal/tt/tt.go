// Package tt models (possibly irreversible) multi-output truth tables and
// implements the paper's conversion of an irreversible function into a
// reversible specification (Section II-A): if the most frequent output
// vector occurs p times, ⌈log2 p⌉ garbage outputs are appended to make the
// input→output mapping unique, and constant garbage inputs are added to
// balance the input and output counts.
package tt

import (
	"fmt"
	"math/bits"
)

// Table is a completely specified Boolean function with Inputs input
// variables and Outputs output variables. Rows[x] holds the output vector
// for input assignment x; input variable 0 is the least significant bit of
// x and output variable 0 the least significant bit of Rows[x].
type Table struct {
	Inputs  int
	Outputs int
	Rows    []uint32
}

// New returns an all-zero table of the given shape.
func New(inputs, outputs int) *Table {
	return &Table{Inputs: inputs, Outputs: outputs, Rows: make([]uint32, 1<<uint(inputs))}
}

// FromFunc builds a table by evaluating f on every input assignment.
func FromFunc(inputs, outputs int, f func(x uint32) uint32) *Table {
	t := New(inputs, outputs)
	for x := range t.Rows {
		t.Rows[x] = f(uint32(x)) & (1<<uint(outputs) - 1)
	}
	return t
}

// Validate checks structural consistency.
func (t *Table) Validate() error {
	if t.Inputs < 0 || t.Inputs > 30 || t.Outputs < 1 || t.Outputs > 30 {
		return fmt.Errorf("tt: unsupported shape %d→%d", t.Inputs, t.Outputs)
	}
	if len(t.Rows) != 1<<uint(t.Inputs) {
		return fmt.Errorf("tt: %d rows for %d inputs", len(t.Rows), t.Inputs)
	}
	for x, y := range t.Rows {
		if y >= 1<<uint(t.Outputs) {
			return fmt.Errorf("tt: row %d output %d out of range", x, y)
		}
	}
	return nil
}

// MaxMultiplicity returns p, the number of occurrences of the most frequent
// output vector. p == 1 iff the function is injective.
func (t *Table) MaxMultiplicity() int {
	counts := make(map[uint32]int, len(t.Rows))
	p := 0
	for _, y := range t.Rows {
		counts[y]++
		if counts[y] > p {
			p = counts[y]
		}
	}
	return p
}

// IsReversible reports whether the table already describes a reversible
// function (square and injective).
func (t *Table) IsReversible() bool {
	return t.Inputs == t.Outputs && t.MaxMultiplicity() == 1
}

// OnesCount is a convenience for weight-based benchmark functions.
func OnesCount(x uint32) int { return bits.OnesCount32(x) }
