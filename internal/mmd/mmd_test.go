package mmd

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/rng"
)

func TestIdentity(t *testing.T) {
	for n := 1; n <= 4; n++ {
		c := Synthesize(perm.Identity(n), Unidirectional)
		if c.Len() != 0 {
			t.Errorf("n=%d: identity synthesized with %d gates", n, c.Len())
		}
	}
}

func TestAllTwoVariableFunctions(t *testing.T) {
	// All 4! = 24 reversible functions of two variables, both variants.
	var vals [4]uint32
	var rec func(depth int, used uint8)
	count := 0
	rec = func(depth int, used uint8) {
		if depth == 4 {
			p, err := perm.New(vals[:])
			if err != nil {
				t.Fatal(err)
			}
			count++
			for _, dir := range []Direction{Unidirectional, Bidirectional} {
				c := Synthesize(p, dir)
				if !c.Perm().Equal(p) {
					t.Fatalf("dir=%d: circuit %s does not realize %s", dir, c, p)
				}
			}
			return
		}
		for v := uint32(0); v < 4; v++ {
			if used&(1<<v) == 0 {
				vals[depth] = v
				rec(depth+1, used|1<<v)
			}
		}
	}
	rec(0, 0)
	if count != 24 {
		t.Fatalf("enumerated %d functions, want 24", count)
	}
}

func TestExhaustiveThreeVariableSample(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		p := perm.Random(3, src)
		for _, dir := range []Direction{Unidirectional, Bidirectional} {
			c := Synthesize(p, dir)
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			if !c.Perm().Equal(p) {
				t.Fatalf("trial=%d dir=%d: circuit %s realizes %s, want %s",
					trial, dir, c, c.Perm(), p)
			}
		}
	}
}

func TestLargerFunctions(t *testing.T) {
	src := rng.New(99)
	for n := 4; n <= 7; n++ {
		for trial := 0; trial < 5; trial++ {
			p := perm.Random(n, src)
			c := Synthesize(p, Bidirectional)
			if !c.Perm().Equal(p) {
				t.Fatalf("n=%d trial=%d: wrong circuit", n, trial)
			}
		}
	}
}

func TestBidirectionalNoWorse(t *testing.T) {
	// Bidirectional is a strict generalization; on average it should not
	// be (much) worse. Check it never exceeds unidirectional by a large
	// factor on a sample — a smoke test for the direction-choice logic.
	src := rng.New(7)
	worse := 0
	for trial := 0; trial < 100; trial++ {
		p := perm.Random(3, src)
		u := Synthesize(p, Unidirectional).Len()
		b := Synthesize(p, Bidirectional).Len()
		if b > u {
			worse++
		}
	}
	if worse > 20 {
		t.Errorf("bidirectional worse than unidirectional in %d/100 cases", worse)
	}
}
