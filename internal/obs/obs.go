// Package obs is the run-scoped observability layer for long syntheses:
// live expansion rates, queue pressure, dedup effectiveness, best-so-far
// circuits, and checkpoint freshness for searches that run for millions of
// node expansions (the paper's Tables V–VII workloads).
//
// The design keeps the search hot path untouched. A searcher holds a *Run
// and stores plain integers into its atomic counters — no locks, no
// allocation, no map lookups — and it does so only at the existing
// pollStride boundaries (every 64 expansions), the same cadence it already
// pays for deadline/cancellation polling. A Publisher goroutine samples the
// Run on a wall-clock interval, derives ProgressSnapshots (rates, budget
// remaining, checkpoint age), and fans them out to pluggable sinks: JSON
// lines for machines, expvar for scrapers, a single overwritten TTY line
// for humans. With no Publisher attached a Run costs a handful of atomic
// stores per stride and nothing else.
//
// Runs form a two-level tree: the parallel portfolio gives each variant its
// own child Run (labeled, individually reported) and the parent aggregates
// them; the Table V–VII sweeps give each table row a child Run that
// accumulates over that row's samples. A Run survives multiple searcher
// attachments — Begin folds the previous attempt's counters into a base, so
// sweeps and tightening rounds report cumulative work.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counters is one searcher-side sample: the complete set of counters and
// gauges a search updates at a poll boundary. Passed by value so the hot
// path never allocates.
type Counters struct {
	Steps          int64 // node expansions (priority-queue pops)
	Nodes          int64 // search-tree nodes created
	Restarts       int64 // restart-heuristic firings
	QueueLen       int64 // queued nodes right now
	QueueBytes     int64 // approximate bytes pinned by queued nodes
	TotalBytes     int64 // queue plus transposition table, the MaxMemory estimate
	PeakBytes      int64 // high-water TotalBytes
	DedupHits      int64 // transposition-table prunes
	DedupMisses    int64 // transposition-table probes that found nothing
	DedupEvictions int64 // transposition-table entries dropped
	Steals         int64 // work items taken from a peer's queue (parallel search)
	Idles          int64 // empty-handed scans by an idle worker (parallel search)
}

// cumulative are the Counters fields that accumulate across attempts (the
// gauges — QueueLen, QueueBytes, TotalBytes — restart from zero with every
// fresh searcher and are not summed).
func (c *Counters) addCumulative(d Counters) {
	c.Steps += d.Steps
	c.Nodes += d.Nodes
	c.Restarts += d.Restarts
	c.DedupHits += d.DedupHits
	c.DedupMisses += d.DedupMisses
	c.DedupEvictions += d.DedupEvictions
	c.Steals += d.Steals
	c.Idles += d.Idles
	if d.PeakBytes > c.PeakBytes {
		c.PeakBytes = d.PeakBytes
	}
}

// Run is one observed synthesis: a set of atomic counters the searcher
// updates and the Publisher samples. The zero value is not usable; create
// Runs with NewRun and children with Child. All methods are safe for
// concurrent use — updates come from searcher goroutines while snapshots
// come from the publisher's.
type Run struct {
	label string

	// Live counters of the current attempt, stored wholesale by Update.
	cur [countersFields]atomic.Int64
	// Counters folded in from completed attempts (Begin folds cur here, so
	// a Run reused across portfolio tightening rounds or sweep samples
	// reports cumulative totals).
	base Counters

	startNano   atomic.Int64 // first Begin, unix nanoseconds
	budgetSteps atomic.Int64 // TotalSteps across the current attempt; 0 = none
	budgetTime  atomic.Int64 // TimeLimit in ns; 0 = none
	maxMemory   atomic.Int64 // MaxMemory ceiling; 0 = none

	bestGates atomic.Int64 // fewest gates of any solution; -1 = none yet
	bestCost  atomic.Int64 // quantum cost of that solution

	checkpoints   atomic.Int64 // snapshots written successfully
	lastCkptNano  atomic.Int64 // unix ns of the last successful write; 0 = never
	lastCkptBytes atomic.Int64 // size of the last snapshot image

	doneFlag atomic.Bool
	verified atomic.Bool // result passed the independent verification gate

	mu       sync.Mutex // guards children, status, stopReason, base
	children []*Run
	status   string // free-form phase note ("vars=9 sample 37/60")
	stop     string // final stop reason once done
}

// Indices into Run.cur, one per Counters field.
const (
	cSteps = iota
	cNodes
	cRestarts
	cQueueLen
	cQueueBytes
	cTotalBytes
	cPeakBytes
	cDedupHits
	cDedupMisses
	cDedupEvictions
	cSteals
	cIdles
	countersFields
)

// NewRun creates a root Run with the given display label.
func NewRun(label string) *Run {
	r := &Run{label: label}
	r.bestGates.Store(-1)
	return r
}

// Child creates and registers a labeled child Run: a portfolio variant, a
// sweep row. The parent's snapshot aggregates all children.
func (r *Run) Child(label string) *Run {
	c := NewRun(label)
	r.mu.Lock()
	r.children = append(r.children, c)
	r.mu.Unlock()
	return c
}

// Label returns the Run's display label.
func (r *Run) Label() string { return r.label }

// Begin attaches a fresh searcher to the Run: it records the attempt's
// budgets and, when the Run was already used by a previous attempt, folds
// that attempt's counters into the cumulative base so totals keep growing
// monotonically. The start time is set once, by the first Begin.
func (r *Run) Begin(totalSteps int64, timeLimit time.Duration, maxMemory int64) {
	r.startNano.CompareAndSwap(0, time.Now().UnixNano())
	r.mu.Lock()
	r.base.addCumulative(r.load())
	r.mu.Unlock()
	for i := range r.cur {
		r.cur[i].Store(0)
	}
	r.budgetSteps.Store(totalSteps)
	r.budgetTime.Store(int64(timeLimit))
	r.maxMemory.Store(maxMemory)
	r.doneFlag.Store(false)
}

// Update stores a complete counter sample. Called by the searcher at
// pollStride boundaries only — never per node.
func (r *Run) Update(c Counters) {
	r.cur[cSteps].Store(c.Steps)
	r.cur[cNodes].Store(c.Nodes)
	r.cur[cRestarts].Store(c.Restarts)
	r.cur[cQueueLen].Store(c.QueueLen)
	r.cur[cQueueBytes].Store(c.QueueBytes)
	r.cur[cTotalBytes].Store(c.TotalBytes)
	r.cur[cPeakBytes].Store(c.PeakBytes)
	r.cur[cDedupHits].Store(c.DedupHits)
	r.cur[cDedupMisses].Store(c.DedupMisses)
	r.cur[cDedupEvictions].Store(c.DedupEvictions)
	r.cur[cSteals].Store(c.Steals)
	r.cur[cIdles].Store(c.Idles)
}

// load reads the current attempt's counters.
func (r *Run) load() Counters {
	return Counters{
		Steps:          r.cur[cSteps].Load(),
		Nodes:          r.cur[cNodes].Load(),
		Restarts:       r.cur[cRestarts].Load(),
		QueueLen:       r.cur[cQueueLen].Load(),
		QueueBytes:     r.cur[cQueueBytes].Load(),
		TotalBytes:     r.cur[cTotalBytes].Load(),
		PeakBytes:      r.cur[cPeakBytes].Load(),
		DedupHits:      r.cur[cDedupHits].Load(),
		DedupMisses:    r.cur[cDedupMisses].Load(),
		DedupEvictions: r.cur[cDedupEvictions].Load(),
		Steals:         r.cur[cSteals].Load(),
		Idles:          r.cur[cIdles].Load(),
	}
}

// Solution records a found circuit; only improvements (fewer gates) stick,
// so the Run always reports the best-so-far like Result does.
func (r *Run) Solution(gates, quantumCost int) {
	for {
		cur := r.bestGates.Load()
		if cur != -1 && int64(gates) >= cur {
			return
		}
		if r.bestGates.CompareAndSwap(cur, int64(gates)) {
			r.bestCost.Store(int64(quantumCost))
			return
		}
	}
}

// CheckpointWritten records one successful snapshot write of the given
// encoded size.
func (r *Run) CheckpointWritten(bytes int64) {
	r.checkpoints.Add(1)
	r.lastCkptBytes.Store(bytes)
	r.lastCkptNano.Store(time.Now().UnixNano())
}

// SetStatus attaches a free-form phase note shown in snapshots (sweep
// drivers use it for "vars=9 sample 37/60").
func (r *Run) SetStatus(s string) {
	r.mu.Lock()
	r.status = s
	r.mu.Unlock()
}

// SetVerified records whether the run's result passed the independent
// post-synthesis verification gate (internal/verify); surfaced as the
// snapshot's Verified flag. Unlike the counters it is never cleared by
// Begin — it describes the run's final answer, not an attempt.
func (r *Run) SetVerified(v bool) { r.verified.Store(v) }

// Finish marks the Run done with the given stop reason. A later Begin
// (another attempt on the same Run) clears the done mark again.
func (r *Run) Finish(stopReason string) {
	r.mu.Lock()
	r.stop = stopReason
	r.mu.Unlock()
	r.doneFlag.Store(true)
}

// ProgressSnapshot is one derived observation of a Run, the unit every sink
// consumes. Durations are JSON-encoded as nanoseconds (Go's default);
// BestGates is -1 until a solution is found, and LastCheckpointAge is -1
// when no checkpoint has been written.
type ProgressSnapshot struct {
	Label     string    `json:"label"`
	Aggregate bool      `json:"aggregate,omitempty"` // parent roll-up over child runs
	Time      time.Time `json:"time"`
	Status    string    `json:"status,omitempty"`
	Done      bool      `json:"done"`
	Stop      string    `json:"stop,omitempty"` // stop reason once done

	Elapsed     time.Duration `json:"elapsed_ns"`
	Steps       int64         `json:"steps"`
	StepsPerSec float64       `json:"steps_per_sec"` // since the previous snapshot
	Nodes       int64         `json:"nodes"`
	Restarts    int64         `json:"restarts"`

	QueueLen   int64 `json:"queue_len"`
	QueueBytes int64 `json:"queue_bytes"`
	TotalBytes int64 `json:"total_bytes"`
	PeakBytes  int64 `json:"peak_bytes"`
	MaxMemory  int64 `json:"max_memory,omitempty"` // 0 = no ceiling

	DedupHits      int64 `json:"dedup_hits"`
	DedupMisses    int64 `json:"dedup_misses"`
	DedupEvictions int64 `json:"dedup_evictions"`
	Steals         int64 `json:"steals,omitempty"` // parallel search: items stolen from peers
	Idles          int64 `json:"idles,omitempty"`  // parallel search: empty-handed idle scans

	BestGates       int `json:"best_gates"` // -1 until a solution exists
	BestQuantumCost int `json:"best_quantum_cost,omitempty"`

	// Verified reports that the run's result passed the independent
	// verification gate; false means unchecked or no result, never "wrong"
	// (a failed check surfaces as a verify-failed stop, not a snapshot).
	Verified bool `json:"verified"`

	Checkpoints         int64         `json:"checkpoints"`
	LastCheckpointAge   time.Duration `json:"last_checkpoint_age_ns"` // -1 = never written
	LastCheckpointBytes int64         `json:"last_checkpoint_bytes,omitempty"`

	StepsBudget    int64         `json:"steps_budget,omitempty"` // TotalSteps; 0 = unbounded
	StepsRemaining int64         `json:"steps_remaining,omitempty"`
	TimeBudget     time.Duration `json:"time_budget_ns,omitempty"` // TimeLimit; 0 = unbounded
	TimeRemaining  time.Duration `json:"time_remaining_ns,omitempty"`
}

// DedupHitRate returns hits/(hits+misses), or 0 before any probe.
func (s *ProgressSnapshot) DedupHitRate() float64 {
	if probes := s.DedupHits + s.DedupMisses; probes > 0 {
		return float64(s.DedupHits) / float64(probes)
	}
	return 0
}

// totals returns the Run's cumulative counters (base + current attempt).
func (r *Run) totals() Counters {
	r.mu.Lock()
	t := r.base
	r.mu.Unlock()
	t.addCumulative(r.load())
	// Gauges reflect the live attempt only.
	t.QueueLen = r.cur[cQueueLen].Load()
	t.QueueBytes = r.cur[cQueueBytes].Load()
	t.TotalBytes = r.cur[cTotalBytes].Load()
	return t
}

// Snapshot derives the Run's ProgressSnapshot at the given instant. When the
// Run has children their counters are aggregated in (sums for counters and
// live gauges, best circuit by fewest gates, freshest checkpoint) and the
// snapshot is marked Aggregate.
func (r *Run) Snapshot(now time.Time) ProgressSnapshot {
	r.mu.Lock()
	children := append([]*Run(nil), r.children...)
	status, stop := r.status, r.stop
	r.mu.Unlock()

	t := r.totals()
	best, bestCost := r.bestGates.Load(), r.bestCost.Load()
	ckpts := r.checkpoints.Load()
	lastCkpt, lastCkptBytes := r.lastCkptNano.Load(), r.lastCkptBytes.Load()
	done := r.doneFlag.Load()
	verified := r.verified.Load()
	start := r.startNano.Load()

	for _, c := range children {
		ct := c.totals()
		t.addCumulative(ct)
		t.QueueLen += ct.QueueLen
		t.QueueBytes += ct.QueueBytes
		t.TotalBytes += ct.TotalBytes
		t.PeakBytes += ct.PeakBytes // children run concurrently: peaks add
		if bg := c.bestGates.Load(); bg != -1 && (best == -1 || bg < best) {
			best, bestCost = bg, c.bestCost.Load()
		}
		ckpts += c.checkpoints.Load()
		if lc := c.lastCkptNano.Load(); lc > lastCkpt {
			lastCkpt, lastCkptBytes = lc, c.lastCkptBytes.Load()
		}
		if cs := c.startNano.Load(); cs != 0 && (start == 0 || cs < start) {
			start = cs
		}
		done = done && c.doneFlag.Load()
		// The portfolio marks the parent for the circuit it returns; a
		// verified child also counts (sweep rows report through children).
		verified = verified || c.verified.Load()
	}

	snap := ProgressSnapshot{
		Label:               r.label,
		Aggregate:           len(children) > 0,
		Time:                now,
		Status:              status,
		Done:                done,
		Steps:               t.Steps,
		Nodes:               t.Nodes,
		Restarts:            t.Restarts,
		QueueLen:            t.QueueLen,
		QueueBytes:          t.QueueBytes,
		TotalBytes:          t.TotalBytes,
		PeakBytes:           t.PeakBytes,
		MaxMemory:           r.maxMemory.Load(),
		DedupHits:           t.DedupHits,
		DedupMisses:         t.DedupMisses,
		DedupEvictions:      t.DedupEvictions,
		Steals:              t.Steals,
		Idles:               t.Idles,
		BestGates:           int(best),
		BestQuantumCost:     int(bestCost),
		Verified:            verified,
		Checkpoints:         ckpts,
		LastCheckpointAge:   -1,
		LastCheckpointBytes: lastCkptBytes,
	}
	if done {
		snap.Stop = stop
	}
	if start != 0 {
		snap.Elapsed = now.Sub(time.Unix(0, start))
	}
	if lastCkpt != 0 {
		snap.LastCheckpointAge = now.Sub(time.Unix(0, lastCkpt))
	}
	if bs := r.budgetSteps.Load(); bs > 0 {
		snap.StepsBudget = bs
		snap.StepsRemaining = max64(0, bs-r.cur[cSteps].Load())
	}
	if bt := r.budgetTime.Load(); bt > 0 {
		snap.TimeBudget = time.Duration(bt)
		snap.TimeRemaining = maxDur(0, time.Duration(bt)-snap.Elapsed)
	}
	return snap
}

// ChildSnapshots derives one snapshot per registered child, in registration
// order; the portfolio's per-variant telemetry.
func (r *Run) ChildSnapshots(now time.Time) []ProgressSnapshot {
	r.mu.Lock()
	children := append([]*Run(nil), r.children...)
	r.mu.Unlock()
	out := make([]ProgressSnapshot, len(children))
	for i, c := range children {
		out[i] = c.Snapshot(now)
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
