// Determinism of the deterministic-merge parallel engine over the
// paper's worked examples. Lives in package core_test because it pulls
// the example set from internal/bench, which itself imports core.
package core_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// TestDetMergeWorkedExamplesAcrossWorkerCounts runs every worked
// example from the paper under -workers=1, 4 and 8 in det-merge mode
// and asserts the runs are byte-identical: same gates in the same
// order, same step/node/restart counters, same stop reason, same
// memory watermark and dedup statistics. This is the PR's acceptance
// gate for worker-count invariance.
func TestDetMergeWorkedExamplesAcrossWorkerCounts(t *testing.T) {
	for _, b := range bench.Examples() {
		t.Run(b.Name, func(t *testing.T) {
			spec, err := b.PPRMSpec()
			if err != nil {
				t.Fatal(err)
			}
			var want string
			for _, w := range []int{1, 4, 8} {
				opts := core.DefaultOptions()
				opts.TotalSteps = 30000
				opts.Workers = w
				r := core.Synthesize(spec, opts)
				if r.Err != nil {
					t.Fatalf("workers=%d: %v", w, r.Err)
				}
				gates := "<none>"
				if r.Found {
					gates = r.Circuit.String()
				}
				got := fmt.Sprintf("found=%v gates=%q steps=%d nodes=%d restarts=%d stop=%v peak=%d hits=%d misses=%d evictions=%d",
					r.Found, gates, r.Steps, r.Nodes, r.Restarts, r.StopReason,
					r.PeakQueueBytes, r.DedupHits, r.DedupMisses, r.DedupEvictions)
				if w == 1 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("workers=%d diverged from workers=1\n got: %s\nwant: %s", w, got, want)
				}
			}
		})
	}
}
