package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/snapshot"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	// StatusQueued: admitted, waiting for a worker.
	StatusQueued JobStatus = "queued"
	// StatusRunning: a worker is searching.
	StatusRunning JobStatus = "running"
	// StatusDone: the search completed (found or not — see the result's
	// stop reason).
	StatusDone JobStatus = "done"
	// StatusFailed: the search aborted on an internal error, or the found
	// circuit failed verification.
	StatusFailed JobStatus = "failed"
	// StatusInterrupted: a drain checkpointed the job mid-search; the next
	// server start resumes it.
	StatusInterrupted JobStatus = "interrupted"
)

// Job is one admitted synthesis request. Identity: the ID is the hex form
// of the idempotency key, so a retried submission finds its original job by
// construction and a restarted server re-creates jobs under their old IDs.
type Job struct {
	id     string
	key    uint64
	class  Class
	req    Request // original request, persisted in the drain ledger
	source string  // who produced the result: sourceWorker or sourceCache

	spec   *pprm.Spec
	fperm  perm.Perm
	opts   core.Options
	clamps []string

	run *obs.Run
	// resume holds the decoded drain checkpoint when the job was recovered
	// by a restart; the worker continues the search from it.
	resume *snapshot.State

	mu        sync.Mutex
	status    JobStatus
	res       core.Result
	verified  *bool
	errMsg    string
	note      string // operational note: resume fallback, clamp summary, ...
	resumed   bool
	degraded  bool // verification failure triggered a degraded re-run
	submitted time.Time
	started   time.Time
	finished  time.Time

	// Client-disconnect cancellation (interactive jobs only): watchers
	// counts the clients blocked on the synchronous submit path; when the
	// last one disconnects before the job finishes — and nothing pinned the
	// job (an async submit, a recovery) — abortC closes and the worker's
	// context is canceled, freeing the worker for clients still present.
	watchers int
	pinned   bool
	aborted  bool
	abortC   chan struct{}

	done chan struct{}
}

func newJob(c *compiled, req Request, now time.Time) *Job {
	j := &Job{
		id:        jobID(c.key),
		key:       c.key,
		class:     c.class,
		req:       req,
		source:    sourceWorker,
		spec:      c.spec,
		fperm:     c.perm,
		opts:      c.opts,
		clamps:    c.clamps,
		status:    StatusQueued,
		submitted: now,
		abortC:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	j.run = obs.NewRun(j.id)
	return j
}

// ID returns the job's stable identifier.
func (j *Job) ID() string { return j.id }

// Class returns the job's scheduling class.
func (j *Job) Class() Class { return j.class }

// Status returns the job's current lifecycle state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Done returns a channel closed when the job reaches a terminal state
// (done, failed, or interrupted by a drain).
func (j *Job) Done() <-chan struct{} { return j.done }

// Run returns the job's live observability run.
func (j *Job) Run() *obs.Run { return j.run }

func (j *Job) markRunning(now time.Time) {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = now
	j.mu.Unlock()
}

// setDegraded marks the job for its one graceful-degradation re-run (the
// worker's realRun swaps in Options.Degraded) and appends the operational
// note explaining why to the job view.
func (j *Job) setDegraded(note string) {
	j.mu.Lock()
	j.degraded = true
	if j.note != "" {
		j.note += "; "
	}
	j.note += note
	j.mu.Unlock()
}

// isDegraded reports whether the job is on its degraded re-run.
func (j *Job) isDegraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// pin exempts the job from client-disconnect cancellation: an async
// submitter will poll for the result, a recovered job has no client at
// all — in both cases the work is wanted regardless of who is connected.
// Pinning is permanent (the conservative direction: never cancel work
// someone may come back for).
func (j *Job) pin() {
	j.mu.Lock()
	j.pinned = true
	j.mu.Unlock()
}

// addWatcher registers one client blocked on the synchronous submit path.
func (j *Job) addWatcher() {
	j.mu.Lock()
	j.watchers++
	j.mu.Unlock()
}

// dropWatcher unregisters one waiting client. When the last watcher of an
// unpinned, unfinished interactive job leaves, the job is aborted: the
// worker context cancels, the engine returns best-so-far, and the worker
// moves on to jobs whose clients are still there.
func (j *Job) dropWatcher() (abortedNow bool) {
	j.mu.Lock()
	j.watchers--
	trigger := j.watchers <= 0 && !j.pinned && !j.aborted &&
		j.class == Interactive &&
		(j.status == StatusQueued || j.status == StatusRunning)
	if trigger {
		j.aborted = true
		if j.note != "" {
			j.note += "; "
		}
		j.note += "canceled: client disconnected"
	}
	j.mu.Unlock()
	if trigger {
		close(j.abortC)
	}
	return trigger
}

// abortCh is closed when client-disconnect cancellation fires.
func (j *Job) abortCh() <-chan struct{} { return j.abortC }

// wasAborted reports whether client-disconnect cancellation fired.
func (j *Job) wasAborted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.aborted
}

// redoable reports a terminal job not worth deduplicating against: it was
// aborted by client disconnect and produced no circuit, so a returning
// client deserves a fresh run, not a replay of the cancellation.
func (j *Job) redoable() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.aborted && (j.status == StatusDone || j.status == StatusFailed) && !j.res.Found
}

// finish records a terminal result. Idempotent close of done.
func (j *Job) finish(status JobStatus, res core.Result, verified *bool, errMsg string, now time.Time) {
	j.mu.Lock()
	j.status = status
	j.res = res
	j.verified = verified
	j.errMsg = errMsg
	j.finished = now
	j.mu.Unlock()
	select {
	case <-j.done:
	default:
		close(j.done)
	}
}

// JobView is the JSON shape of a job returned by the API.
type JobView struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Class  string `json:"class"`
	// Source says who produced the result: "worker" (a search ran) or
	// "cache" (the canonical-form answer cache derived it at admission).
	Source       string   `json:"source"`
	Deduplicated bool     `json:"deduplicated,omitempty"`
	Clamped      []string `json:"clamped,omitempty"`
	Note         string   `json:"note,omitempty"`
	Resumed      bool     `json:"resumed,omitempty"`
	Degraded     bool     `json:"degraded,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	Result *ResultView `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// ResultView is the JSON shape of a completed search. It deliberately
// contains only deterministic fields — no wall-clock times — so that a
// drained-and-resumed job's result is byte-identical to an uninterrupted
// run's (the property the drain tests pin).
type ResultView struct {
	Found       bool   `json:"found"`
	Stop        string `json:"stop"`
	Circuit     string `json:"circuit,omitempty"`
	Gates       int    `json:"gates,omitempty"`
	QuantumCost int    `json:"quantum_cost,omitempty"`
	Steps       int    `json:"steps"`
	Nodes       int    `json:"nodes"`
	Restarts    int    `json:"restarts"`
	DedupHits   int64  `json:"dedup_hits,omitempty"`
	DedupMisses int64  `json:"dedup_misses,omitempty"`
	Verified    *bool  `json:"verified,omitempty"`
	// CacheHit marks a result answered by the canonical-form cache; the
	// circuit was derived by conjugation and re-verified, not searched.
	CacheHit bool `json:"cache_hit,omitempty"`
	// CanonicalClass is the function's canonical class hash (hex), set
	// whenever the cache classified the request.
	CanonicalClass string `json:"canonical_class,omitempty"`
}

// view snapshots the job for JSON rendering.
func (j *Job) view(deduplicated bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:           j.id,
		Status:       string(j.status),
		Class:        j.class.String(),
		Source:       j.source,
		Deduplicated: deduplicated,
		Clamped:      j.clamps,
		Note:         j.note,
		Resumed:      j.resumed,
		Degraded:     j.degraded,
		SubmittedAt:  j.submitted,
		Error:        j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.status == StatusDone || j.status == StatusFailed {
		r := &ResultView{
			Found:       j.res.Found,
			Stop:        j.res.StopReason.String(),
			Steps:       j.res.Steps,
			Nodes:       j.res.Nodes,
			Restarts:    j.res.Restarts,
			DedupHits:   j.res.DedupHits,
			DedupMisses: j.res.DedupMisses,
			Verified:    j.verified,
			CacheHit:    j.res.CacheHit,
		}
		if j.res.CanonicalClass != 0 {
			r.CanonicalClass = fmt.Sprintf("%016x", j.res.CanonicalClass)
		}
		if j.res.Found && j.res.Circuit != nil {
			r.Circuit = j.res.Circuit.String()
			r.Gates = j.res.Circuit.Len()
			r.QuantumCost = j.res.Circuit.QuantumCost()
		}
		v.Result = r
	}
	return v
}
