// Package core implements RMRLS, the paper's Reed–Muller reversible logic
// synthesis algorithm (Section IV): a priority-queue search over PPRM
// substitutions v_i = v_i ⊕ factor, each of which becomes one generalized
// Toffoli gate in the synthesized cascade.
package core

import (
	"time"

	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

// Options configures a synthesis run. The zero value requests the basic
// algorithm of Fig. 4 with the paper's priority weights and no resource
// limits; DefaultOptions returns the configuration matching the paper's
// experimental setup (additional substitutions, greedy pruning, restarts).
type Options struct {
	// Library selects the target gate library. GT (the default) allows
	// any generalized Toffoli gate; NCT restricts candidate factors to at
	// most two literals so every gate is a NOT, CNOT, or 3-bit Toffoli.
	Library circuit.Library

	// MaxGates bounds the synthesized circuit size (the paper's
	// "maximum circuit size" option: 40 for 4-variable runs, 60 for
	// 5-variable runs). 0 means unbounded.
	MaxGates int

	// TimeLimit aborts the search after the given wall-clock duration
	// (the paper's per-function synthesis timer). 0 means no limit.
	TimeLimit time.Duration

	// MaxSteps is the restart heuristic of Section IV-E: if no solution
	// has been found after this many node expansions, the search restarts
	// from the first level of the tree with a different first
	// substitution. 0 disables restarts.
	MaxSteps int

	// TotalSteps bounds the total number of node expansions across all
	// restarts, making a run's work deterministic regardless of machine
	// speed. The experiment drivers use it as the reproducible stand-in
	// for the paper's wall-clock limits. 0 means unbounded.
	TotalSteps int

	// MaxRestarts bounds how many alternative first-level substitutions
	// the restart heuristic tries. 0 means "all of them".
	MaxRestarts int

	// GreedyK enables the greedy pruning heuristic of Section IV-E: only
	// the best K substitutions per input variable are queued at each
	// node. 0 keeps every substitution (the basic algorithm). The paper
	// uses K in 3–5.
	GreedyK int

	// Additional enables the additional substitution types of Section
	// IV-D: factors from v_out,i even when the bare term v_i is absent,
	// and the unconditional substitution v_i = v_i ⊕ 1.
	Additional bool

	// Alpha, Beta, Gamma are the priority weights of Eq. (4). All-zero
	// selects the paper's tuned values 0.3, 0.6, 0.1.
	Alpha, Beta, Gamma float64

	// Admission selects the queue-admission rule; see the Admission
	// constants and DESIGN.md.
	Admission Admission

	// GrowthSlack is the term-count headroom of AdmitBounded: children
	// whose expansion exceeds the original size by more than this are
	// pruned. 0 selects the default of 2 (wire swaps need ≥ 1).
	GrowthSlack int

	// LinearElim replaces Eq. (4)'s β·elim/depth term with β·elim,
	// turning the priority into the A*-style objective
	// α·depth + β·elim − γ·literals. With negative α this orders nodes
	// by net progress minus a per-gate charge, which keeps productive
	// deep paths ahead of the exponentially many shallow siblings — the
	// property the published form lacks (its priority declines along
	// every path, collapsing deep searches into breadth-first floods;
	// see DESIGN.md). Required in practice for functions needing more
	// than ~20 gates.
	LinearElim bool

	// PerStepElim selects the literal pseudocode reading of Eq. (4),
	// where elim is parent.terms − child.terms. The default (false) uses
	// the cumulative reading — terms eliminated relative to the original
	// expansion, averaged per stage — which matches the paper's own
	// Fig. 5 walkthrough (see DESIGN.md).
	PerStepElim bool

	// FirstSolution stops the search at the first solution found instead
	// of continuing to improve it. The paper's scalability experiments
	// (Tables V–VII) use exactly this mode: "As soon as a solution was
	// found, we chose to move on to the next example."
	FirstSolution bool

	// ImproveSteps bounds how many further node expansions are spent
	// improving the solution after the first one is found. 0 means
	// unbounded (run until the queue empties or another limit fires).
	ImproveSteps int

	// MaxQueue bounds the number of queued nodes; when exceeded, the
	// lowest-priority half is discarded. A coarse node-count companion to
	// MaxMemory. 0 selects a generous default.
	MaxQueue int

	// MaxMemory bounds the approximate bytes pinned by queued search
	// nodes (node structs plus materialized PPRM expansions) — the
	// byte-accounted version of the paper's 768-MB memory ceiling, which
	// MaxQueue can only fake by node count. When the estimate exceeds the
	// limit the lowest-priority half of the queue is discarded; if even
	// that cannot get back under the ceiling the run stops with
	// StopMemoryLimit and reports its best-so-far circuit. 0 disables the
	// ceiling. Result.PeakQueueBytes reports the high-water mark.
	MaxMemory int64

	// Dedup enables the transposition table: child states whose full PPRM
	// expansion hash-matches a state already queued or solved at the same
	// or a shallower depth are pruned instead of cloned and enqueued. The
	// search tree re-derives identical states along different substitution
	// orders, so deduplication typically removes a large fraction of the
	// queue traffic at the cost of one map probe per candidate; measured
	// numbers are tracked in BENCH_search.json (see docs/PERFORMANCE.md).
	//
	// This is a documented deviation from the paper, whose Fig. 4
	// pseudocode has no visited check (DESIGN.md, deviation 8). The table
	// is cleared on every restart and un-learns nodes evicted by the
	// queue/memory caps, so it never permanently blocks a path to an
	// unexplored state, and its depth-aware replacement never blocks a
	// strictly shorter path to any state. Off in the zero value (the
	// literal Fig. 4 algorithm); on in DefaultOptions.
	Dedup bool

	// DedupMaxEntries caps the transposition table size; when the cap is
	// reached the table is cleared wholesale and counts the dropped
	// entries in Result.DedupEvictions. 0 selects the default of 2^20
	// entries (≈ 32 MB under the MaxMemory accounting). The table's bytes
	// count toward MaxMemory regardless of this cap.
	DedupMaxEntries int

	// Trace, when non-nil, receives an event for every node push, pop,
	// and solution. Used to reproduce the Fig. 5 search walkthrough.
	Trace func(Event)

	// Observe, when non-nil, receives live run telemetry: the searcher
	// stores its counters into the Run's atomics at the existing pollStride
	// boundaries (never per node — the hot path stays allocation-free and
	// the expansion trajectory is bit-identical to an unobserved run) and
	// records solution and checkpoint events as they happen. Attach an
	// obs.Publisher with sinks to turn the counters into periodic
	// ProgressSnapshots; see internal/obs and docs/OBSERVABILITY.md.
	// Unlike Trace, Observe is cheap enough for production runs and is
	// honored by the parallel portfolio (each variant reports through its
	// own child Run).
	Observe *obs.Run

	// Checkpoint configures periodic crash-safe snapshots of the complete
	// searcher state; the zero value disables them. See the Checkpoint type
	// and ResumeContext.
	Checkpoint Checkpoint

	// Cache, when non-nil, consults the canonical-form answer cache
	// (internal/cache) before searching: a request equivalent to a
	// previously synthesized one — up to wire relabeling and polarity —
	// is answered by conjugating the stored cascade, re-verified through
	// the independent oracle, in place of a search. Verified results of
	// cache-eligible width are stored back after synthesis. Like
	// SkipVerify, the cache never changes what a search would compute, so
	// it is excluded from OptionsFingerprint: toggling it neither
	// invalidates checkpoints nor changes a job's identity. Resumed runs
	// (ResumeContext) bypass the lookup — a resume must continue its
	// checkpoint, not short-circuit it — but do store their verified
	// result. SkipVerify results are never cached.
	Cache *cache.Cache

	// Workers selects the parallel search engine and its goroutine count.
	// 0 (the default) runs the classic single-goroutine searcher. Any
	// value ≥ 1 selects the deterministic-merge engine: candidate
	// generation (the PPRM probe/score/sort math, the bulk of an
	// expansion's cost) fans out across min(Workers, batch) goroutines
	// while every queue, transposition-table, and counter mutation is
	// merged sequentially in a fixed batch order — so the search
	// trajectory, the Result counters, and every checkpoint are
	// byte-identical across Workers=1, 4, 8, ... and across runs. That
	// invariance is what lets checkpoints resume under a different worker
	// count and lets the answer cache treat differently-parallel runs as
	// the same job. See also FreeRunning for the non-deterministic engine.
	Workers int

	// FreeRunning, with Workers ≥ 2, replaces the deterministic-merge
	// engine with the work-stealing free-running engine: each worker owns
	// a shard of the frontier (states hash-route to their owner), idle
	// workers steal from the deepest peer queue, and the first verified
	// solution wins. Fastest wall-clock, but the pop order — and therefore
	// Steps/Nodes counters and which equally-good circuit is found — can
	// differ run to run. Incompatible with Checkpoint (a nondeterministic
	// trajectory cannot be resumed exactly) and Trace; when Checkpoint is
	// enabled the engine silently falls back to deterministic merge, and
	// Trace is ignored. The answer cache still works: hits are keyed on
	// the canonical class and results are independently verified.
	FreeRunning bool

	// SkipVerify disables the always-on post-synthesis verification gate.
	// By default every found circuit is re-simulated gate by gate by the
	// independent internal/verify oracle against the input specification
	// before the Result is returned (when the function is narrow enough to
	// tabulate; see verify.MaxVars), and a mismatch turns the Result into a
	// typed StopVerifyFailed failure instead of a wrong answer. The gate is
	// post-hoc — it never changes the search trajectory — and is excluded
	// from OptionsFingerprint, so toggling it neither invalidates
	// checkpoints nor changes a job's identity. Set it only to benchmark
	// the bare search loop.
	SkipVerify bool
}

// Degraded returns a copy of o for the graceful-degradation re-run after a
// verification failure: the optimizer layers able to corrupt a search-wide
// result — currently the transposition table, which prunes paths based on
// derived state — are disabled, while the verification gate itself stays
// on. The point of the re-run is less machinery, not less checking.
func (o Options) Degraded() Options {
	o.Dedup = false
	o.SkipVerify = false
	o.Cache = nil
	return o
}

// Checkpoint configures durable snapshots of a running search. When Path is
// non-empty the search periodically serializes its complete state (queue,
// expansions, transposition table, counters, best-so-far solution) to Path
// via an atomic temp-file + fsync + rename protocol, and flushes one final
// snapshot when it stops for a resumable reason (cancellation, deadline,
// step or memory limit). ResumeContext continues such a run exactly: the
// resumed search pops, expands, and solves in the same order as the
// uninterrupted one would have.
//
// Checkpointing never fails the search: a write error is reported to
// OnError (if set) and the run continues; the previous checkpoint, if any,
// remains intact on disk thanks to the atomic replace.
type Checkpoint struct {
	// Path is the checkpoint file; empty disables checkpointing.
	Path string

	// Interval is the minimum wall-clock time between periodic
	// checkpoints. 0 selects 30 s. Ignored when EverySteps > 0.
	Interval time.Duration

	// EverySteps, when > 0, checkpoints every N node expansions instead of
	// on a wall-clock cadence — the deterministic mode the resume tests
	// use.
	EverySteps int

	// FS overrides the filesystem the checkpoint is written through; nil
	// selects the real disk. The fault-injection harness substitutes a
	// crashing implementation here.
	FS snapshot.FS

	// OnError, when non-nil, receives checkpoint write failures. The
	// search continues either way.
	OnError func(error)
}

// enabled reports whether checkpointing is configured.
func (c *Checkpoint) enabled() bool { return c.Path != "" }

// interval resolves the wall-clock cadence.
func (c *Checkpoint) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 30 * time.Second
}

// Admission is the rule deciding which child nodes enter the priority
// queue. The paper is internally inconsistent here: Fig. 4 line 31 demands a
// strictly decreasing term count ("childNode.elim > 0"), but the Fig. 5
// walkthrough queues a node whose substitution *increases* the count, the
// convergence proof states that all candidates are queued, and Table I
// reports success on functions (wire swaps among them) for which every
// synthesis path must pass through states with more terms than both the
// initial and final expansions.
//
// AdmitBounded, the default, reconciles all three: a child is queued when
// its expansion has grown by at most GrowthSlack terms over the original
// one, or when it strictly shrinks its parent (recovery moves are always
// worth keeping). It admits every node the Fig. 5 walkthrough queues,
// synthesizes the swap-like functions the strict rules provably cannot,
// and still prunes the unproductive branches that make an admit-everything
// search degenerate into blind depth-first descent. The remaining modes
// implement the stricter textual readings and the proof's admit-everything
// reading for ablation.
type Admission int

const (
	// AdmitBounded queues a child iff
	// terms ≤ initTerms + GrowthSlack or terms < parent.terms.
	AdmitBounded Admission = iota
	// AdmitAll queues every legal candidate; Eq. (4) alone ranks them
	// (the convergence proof's reading).
	AdmitAll
	// AdmitCumulative queues a child only when its expansion is smaller
	// than the original one (matches the Fig. 5 numbers exactly).
	AdmitCumulative
	// AdmitPerStep is the literal Fig. 4 line 31: a child must have
	// strictly fewer terms than its parent. The v_i = v_i ⊕ 1
	// substitution is exempt (Section IV-D) in the strict modes.
	AdmitPerStep
)

func (a Admission) String() string {
	switch a {
	case AdmitAll:
		return "all"
	case AdmitCumulative:
		return "cumulative"
	case AdmitPerStep:
		return "per-step"
	default:
		return "bounded"
	}
}

// DefaultOptions returns the configuration matching the paper's
// experimental setup — additional substitutions on, greedy pruning with
// k = 4, restarts after 10 000 fruitless expansions — with one empirically
// forced change: the priority is the A*-style linear objective
// 0.6·elim − 0.6·depth − 0.1·literals instead of Eq. (4)'s published
// 0.3·depth + 0.6·elim/depth − 0.1·literals. With the published form every
// path's priority decays toward α·depth, deep garbage outranks shallow
// promise, and the search reproduces almost none of the paper's reported
// capability (see DESIGN.md, deviation 3, and the BenchmarkAblationWeights
// benches). BasicOptions keeps the published form.
// It also bounds the post-solution improvement phase (the paper bounds it
// with its wall-clock timer; draining the whole queue below the best depth
// can take orders of magnitude longer than finding the solution). Set
// ImproveSteps to 0 explicitly for an exhaustive improvement phase.
func DefaultOptions() Options {
	return Options{
		Additional:   true,
		GreedyK:      4,
		MaxSteps:     10000,
		ImproveSteps: 20000,
		Alpha:        -0.6,
		Beta:         0.6,
		Gamma:        0.1,
		LinearElim:   true,
		MaxMemory:    768 << 20, // the paper's memory ceiling
		Dedup:        true,
	}
}

// BasicOptions returns the basic algorithm of Fig. 4 without the Section
// IV-E heuristics and without the transposition table (complete given
// enough time and memory, practical only up to about five variables).
func BasicOptions() Options {
	return Options{}
}

// dedupMaxEntries resolves the transposition-table size cap.
func (o *Options) dedupMaxEntries() int {
	if o.DedupMaxEntries > 0 {
		return o.DedupMaxEntries
	}
	return 1 << 20
}

func (o *Options) weights() (a, b, g float64) {
	if o.Alpha == 0 && o.Beta == 0 && o.Gamma == 0 {
		return 0.3, 0.6, 0.1
	}
	return o.Alpha, o.Beta, o.Gamma
}

// growthSlack resolves the AdmitBounded term-count headroom.
func (o *Options) growthSlack() int {
	if o.GrowthSlack > 0 {
		return o.GrowthSlack
	}
	return 2
}

func (o *Options) maxQueue() int {
	if o.MaxQueue > 0 {
		return o.MaxQueue
	}
	return 1 << 18
}

// parMode identifies which search engine a run uses; see Options.Workers.
type parMode int

const (
	parSeq   parMode = iota // classic single-goroutine searcher
	parBatch                // deterministic-merge batch engine
	parFree                 // work-stealing free-running engine
)

func (m parMode) String() string {
	switch m {
	case parBatch:
		return "det-merge"
	case parFree:
		return "free-running"
	default:
		return "sequential"
	}
}

// parallelMode resolves the engine from Workers/FreeRunning, applying the
// documented fallback: free-running demands ≥ 2 workers and cannot
// checkpoint (its trajectory is not resumable), so those configurations
// degrade to the deterministic-merge engine instead of failing.
func (o *Options) parallelMode() parMode {
	if o.Workers <= 0 {
		return parSeq
	}
	if o.FreeRunning && o.Workers >= 2 && !o.Checkpoint.enabled() {
		return parFree
	}
	return parBatch
}

// EventKind distinguishes search-trace events.
type EventKind int

const (
	// EventPush fires when a node is inserted into the priority queue.
	EventPush EventKind = iota
	// EventPop fires when a node is removed for expansion.
	EventPop
	// EventSolution fires when a node completes a circuit better than
	// the best known one.
	EventSolution
	// EventRestart fires when the restart heuristic reseeds the queue.
	EventRestart
)

// Event is one step of the search trace.
type Event struct {
	Kind     EventKind
	ID       int     // node id (0 = root, then creation order)
	Parent   int     // parent node id (-1 for root)
	Depth    int     // gates on the path from the root
	Target   int     // substitution target variable (-1 for root)
	Factor   uint32  // substitution factor mask
	Terms    int     // terms in the node's PPRM expansion
	Elim     int     // terms eliminated by the node's substitution
	Priority float64 // queue priority
}
