package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one step of a fault schedule: at offset After from the start
// of the run, fail or heal a path prefix.
type Event struct {
	After  time.Duration
	Heal   bool // false: fail with Mode
	Prefix string
	Mode   Mode
}

func (e Event) String() string {
	if e.Heal {
		return fmt.Sprintf("+%v heal %s", e.After, e.Prefix)
	}
	return fmt.Sprintf("+%v fail %s %v", e.After, e.Prefix, e.Mode)
}

// Schedule is an ordered fault script.
type Schedule []Event

// ParseSchedule parses the CLI spelling of a fault script: semicolon- or
// comma-separated events, each
//
//	+<dur> fail <prefix> <mode>
//	+<dur> heal <prefix>
//
// e.g. "+2s fail cache enospc; +8s heal cache; +10s fail state eio".
// The leading '+' on the duration is optional. Prefixes are opaque
// strings here; the caller may map symbolic names (cache, state) to real
// directories before arming the schedule.
func ParseSchedule(s string) (Schedule, error) {
	var sched Schedule
	for _, raw := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == ',' }) {
		fields := strings.Fields(raw)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("chaos: bad event %q (want \"+<dur> fail <prefix> <mode>\" or \"+<dur> heal <prefix>\")", strings.TrimSpace(raw))
		}
		after, err := time.ParseDuration(strings.TrimPrefix(fields[0], "+"))
		if err != nil {
			return nil, fmt.Errorf("chaos: bad event %q: %v", strings.TrimSpace(raw), err)
		}
		if after < 0 {
			return nil, fmt.Errorf("chaos: bad event %q: negative offset", strings.TrimSpace(raw))
		}
		ev := Event{After: after, Prefix: fields[2]}
		switch strings.ToLower(fields[1]) {
		case "heal":
			if len(fields) != 3 {
				return nil, fmt.Errorf("chaos: bad event %q: heal takes no mode", strings.TrimSpace(raw))
			}
			ev.Heal = true
		case "fail":
			if len(fields) != 4 {
				return nil, fmt.Errorf("chaos: bad event %q: fail needs a mode", strings.TrimSpace(raw))
			}
			ev.Mode, err = ParseMode(fields[3])
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("chaos: bad event %q: unknown verb %q", strings.TrimSpace(raw), fields[1])
		}
		sched = append(sched, ev)
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].After < sched[j].After })
	return sched, nil
}

// Rewrite maps symbolic prefixes to concrete paths (e.g. "cache" →
// "/var/lib/rmrlsd/cache"). Prefixes with no mapping pass through.
func (s Schedule) Rewrite(names map[string]string) Schedule {
	out := make(Schedule, len(s))
	for i, ev := range s {
		if p, ok := names[ev.Prefix]; ok {
			ev.Prefix = p
		}
		out[i] = ev
	}
	return out
}

// Run replays the schedule against fs in a goroutine, calling onEvent (if
// non-nil) as each event fires. The returned stop function cancels any
// events still pending; it does not heal faults already injected.
func (s Schedule) Run(fs *FS, onEvent func(Event)) (stop func()) {
	done := make(chan struct{})
	go func() {
		start := time.Now()
		for _, ev := range s {
			wait := ev.After - time.Since(start)
			if wait > 0 {
				select {
				case <-done:
					return
				case <-time.After(wait):
				}
			} else {
				select {
				case <-done:
					return
				default:
				}
			}
			if ev.Heal {
				fs.Heal(ev.Prefix)
			} else {
				fs.Fail(ev.Prefix, ev.Mode)
			}
			if onEvent != nil {
				onEvent(ev)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
