package core

import (
	"errors"
	"testing"

	"repro/internal/bits"
	"repro/internal/perm"
	"repro/internal/pprm"
)

// TestNonReversibleSpecTerminates feeds the search a PPRM that does not
// describe a reversible function. No cascade can reduce it to the
// identity, so the search must terminate without a solution instead of
// running forever or inventing a circuit.
func TestNonReversibleSpecTerminates(t *testing.T) {
	spec, err := pprm.Parse(2, "a' = b\nb' = b") // a is lost: not invertible
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.TotalSteps = 20000
	opts.MaxGates = 12
	res := Synthesize(spec, opts)
	if res.Found {
		t.Fatalf("found a circuit for a non-reversible spec: %s", res.Circuit)
	}
}

func TestConstantZeroSpecTerminates(t *testing.T) {
	spec := pprm.NewSpec(2) // every output constant 0
	opts := DefaultOptions()
	opts.TotalSteps = 20000
	opts.MaxGates = 12
	if res := Synthesize(spec, opts); res.Found {
		t.Fatal("found a circuit for the constant-0 spec")
	}
}

func TestSynthesizePermRejectsInvalid(t *testing.T) {
	if _, err := SynthesizePerm(perm.Perm{0, 0, 1, 1}, DefaultOptions()); err == nil {
		t.Error("invalid permutation should be rejected")
	}
	if _, err := SynthesizePerm(perm.Perm{0, 1, 2}, DefaultOptions()); err == nil {
		t.Error("non-power-of-two permutation should be rejected")
	}
}

// TestSingleVariableFunctions covers both 1-variable reversible functions.
func TestSingleVariableFunctions(t *testing.T) {
	id, _ := SynthesizePerm(perm.Perm{0, 1}, DefaultOptions())
	if !id.Found || id.Circuit.Len() != 0 {
		t.Errorf("identity: %+v", id)
	}
	not, _ := SynthesizePerm(perm.Perm{1, 0}, DefaultOptions())
	if !not.Found || not.Circuit.Len() != 1 {
		t.Errorf("NOT: %+v", not)
	}
	if not.Found {
		g := not.Circuit.Gates[0]
		if g.Target != 0 || g.Controls != bits.Mask(0) {
			t.Errorf("NOT circuit = %s", not.Circuit)
		}
	}
}

// TestAllSwaps verifies every wire-swap of three variables synthesizes —
// the family that strict term-monotone admission provably cannot handle.
func TestAllSwaps(t *testing.T) {
	swaps := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	for _, s := range swaps {
		p := make(perm.Perm, 8)
		for x := uint32(0); x < 8; x++ {
			a := x >> uint(s[0]) & 1
			b := x >> uint(s[1]) & 1
			y := x
			if a != b {
				y ^= 1<<uint(s[0]) | 1<<uint(s[1])
			}
			p[x] = y
		}
		res, err := SynthesizePerm(p, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Errorf("swap(%d,%d) not synthesized", s[0], s[1])
			continue
		}
		if res.Circuit.Len() != 3 {
			t.Errorf("swap(%d,%d) used %d gates; 3 CNOTs suffice", s[0], s[1], res.Circuit.Len())
		}
		if err := Verify(res.Circuit, p); err != nil {
			t.Error(err)
		}
	}
}

// TestMergePrefersInformativeStopReason is the regression test for the
// portfolio diagnosis bug: when no variant finds a circuit, the merged
// StopReason came unconditionally from variant 0. If variant 0 died on a
// recovered panic (StopInternalError) while the others legitimately ran
// their budgets out, callers saw a misleading crash diagnosis instead of
// the real "budget exhausted" answer.
func TestMergePrefersInformativeStopReason(t *testing.T) {
	crash := errors.New("search invariant violated: test")
	results := []Result{
		{StopReason: StopInternalError, Err: crash},
		{StopReason: StopRestartsExhausted},
		{StopReason: StopStepLimit},
	}
	merged := mergeResults(results, false)
	if merged.StopReason != StopRestartsExhausted {
		t.Errorf("merged StopReason = %v, want %v (first informative reason)",
			merged.StopReason, StopRestartsExhausted)
	}
	if !errors.Is(merged.Err, crash) {
		t.Errorf("merged Err = %v, want the variant-0 crash surfaced", merged.Err)
	}

	// Variant 0's reason stays authoritative when it is informative: it ran
	// the caller's own configuration.
	results = []Result{
		{StopReason: StopStepLimit},
		{StopReason: StopInternalError, Err: crash},
		{StopReason: StopRestartsExhausted},
	}
	merged = mergeResults(results, false)
	if merged.StopReason != StopStepLimit {
		t.Errorf("merged StopReason = %v, want variant 0's %v", merged.StopReason, StopStepLimit)
	}
	if !errors.Is(merged.Err, crash) {
		t.Errorf("merged Err = %v, want the crash surfaced", merged.Err)
	}

	// All variants crashed: internal error is then the honest answer.
	results = []Result{
		{StopReason: StopInternalError, Err: crash},
		{StopReason: StopInternalError, Err: crash},
		{StopReason: StopInternalError, Err: crash},
	}
	if merged = mergeResults(results, false); merged.StopReason != StopInternalError {
		t.Errorf("merged StopReason = %v, want %v when every variant crashed",
			merged.StopReason, StopInternalError)
	}

	// Cancellation outranks everything.
	results = []Result{
		{StopReason: StopInternalError, Err: crash},
		{StopReason: StopCanceled},
		{StopReason: StopCanceled},
	}
	if merged = mergeResults(results, true); merged.StopReason != StopCanceled {
		t.Errorf("merged StopReason = %v, want %v on canceled context", merged.StopReason, StopCanceled)
	}
}

// TestStrictAdmissionCannotSwap documents the paper inconsistency: the
// literal Fig. 4 line 31 rule fails on a wire swap.
func TestStrictAdmissionCannotSwap(t *testing.T) {
	p := perm.MustFromInts([]int{0, 2, 1, 3, 4, 6, 5, 7}) // swap wires 0,1
	opts := DefaultOptions()
	opts.Admission = AdmitPerStep
	opts.TotalSteps = 50000
	res, err := SynthesizePerm(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("per-step admission synthesized a swap (%s); the impossibility argument is wrong", res.Circuit)
	}
}
