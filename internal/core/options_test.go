package core

import (
	"testing"
	"time"

	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
)

func TestWeightsDefault(t *testing.T) {
	o := BasicOptions()
	a, b, g := o.weights()
	if a != 0.3 || b != 0.6 || g != 0.1 {
		t.Errorf("zero-value weights = %v,%v,%v; want the paper's 0.3,0.6,0.1", a, b, g)
	}
	o2 := Options{Alpha: 0.5, Beta: 0.4, Gamma: 0.1}
	a, b, g = o2.weights()
	if a != 0.5 || b != 0.4 || g != 0.1 {
		t.Errorf("explicit weights not honored")
	}
}

func TestAdmissionStrings(t *testing.T) {
	cases := map[Admission]string{
		AdmitBounded:    "bounded",
		AdmitAll:        "all",
		AdmitCumulative: "cumulative",
		AdmitPerStep:    "per-step",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestFirstSolutionStopsEarly(t *testing.T) {
	p := perm.MustFromInts([]int{1, 0, 7, 2, 3, 4, 5, 6})
	opts := DefaultOptions()
	opts.FirstSolution = true
	res, err := SynthesizePerm(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no solution")
	}
	full := DefaultOptions()
	resFull, _ := SynthesizePerm(p, full)
	if res.Steps > resFull.Steps {
		t.Errorf("FirstSolution ran longer (%d) than the full search (%d)", res.Steps, resFull.Steps)
	}
}

func TestTotalStepsDeterministic(t *testing.T) {
	src := rng.New(77)
	p := perm.Random(4, src)
	opts := DefaultOptions()
	opts.TotalSteps = 3000
	a, _ := SynthesizePerm(p, opts)
	b, _ := SynthesizePerm(p, opts)
	if a.Found != b.Found || a.Steps != b.Steps || a.Nodes != b.Nodes {
		t.Errorf("same inputs, different runs: %+v vs %+v", a, b)
	}
	if a.Found && a.Circuit.String() != b.Circuit.String() {
		t.Errorf("nondeterministic circuits: %s vs %s", a.Circuit, b.Circuit)
	}
}

func TestTimeLimitRespected(t *testing.T) {
	// A 6-variable random function with a microscopic time budget must
	// return quickly (found or not).
	p := perm.Random(6, rng.New(5))
	opts := DefaultOptions()
	opts.TimeLimit = 30 * time.Millisecond
	start := time.Now()
	if _, err := SynthesizePerm(p, opts); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("run took %v with a 30ms limit", elapsed)
	}
}

func TestMaxGatesBoundsSolution(t *testing.T) {
	src := rng.New(31)
	for trial := 0; trial < 10; trial++ {
		p := perm.Random(3, src)
		opts := DefaultOptions()
		opts.MaxGates = 9
		res, err := SynthesizePerm(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found && res.Circuit.Len() > 9 {
			t.Fatalf("MaxGates=9 produced %d gates", res.Circuit.Len())
		}
	}
}

func TestRestartsFire(t *testing.T) {
	// A tiny MaxSteps forces restarts on any function that is not solved
	// immediately.
	p := perm.Random(4, rng.New(42))
	opts := DefaultOptions()
	opts.MaxSteps = 5
	opts.TotalSteps = 500
	res, err := SynthesizePerm(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		return // solved before restarting; nothing to assert
	}
	if res.Restarts == 0 {
		t.Error("expected restarts with MaxSteps=5")
	}
}

func TestMaxRestartsHonored(t *testing.T) {
	p := perm.Random(5, rng.New(43))
	opts := DefaultOptions()
	opts.MaxSteps = 10
	opts.MaxRestarts = 3
	opts.TotalSteps = 100000
	opts.MaxGates = 10 // likely unsatisfiable: forces restart exhaustion
	res, err := SynthesizePerm(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts > 3 {
		t.Errorf("restarts = %d, want ≤ 3", res.Restarts)
	}
}

func TestMaxQueuePrunes(t *testing.T) {
	p := perm.Random(5, rng.New(44))
	opts := DefaultOptions()
	opts.MaxQueue = 64
	opts.TotalSteps = 2000
	if _, err := SynthesizePerm(p, opts); err != nil {
		t.Fatal(err)
	}
	// Success criterion: no panic, bounded memory; the search remains
	// functional afterwards.
}

func TestTraceEventsConsistent(t *testing.T) {
	var pops, pushes, solutions int
	opts := DefaultOptions()
	opts.Trace = func(e Event) {
		switch e.Kind {
		case EventPop:
			pops++
		case EventPush:
			pushes++
		case EventSolution:
			solutions++
		}
	}
	p := perm.MustFromInts([]int{1, 0, 7, 2, 3, 4, 5, 6})
	res, err := SynthesizePerm(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pops != res.Steps {
		t.Errorf("trace pops %d ≠ result steps %d", pops, res.Steps)
	}
	if pops > pushes {
		t.Errorf("more pops (%d) than pushes (%d)", pops, pushes)
	}
	if res.Found && solutions == 0 {
		t.Error("found a solution but no solution event")
	}
}

func TestSynthesizeSpecDirect(t *testing.T) {
	spec, err := pprm.Parse(3, "a' = a ^ 1\nb' = b ^ c ^ ac\nc' = b ^ ab ^ ac")
	if err != nil {
		t.Fatal(err)
	}
	res := Synthesize(spec, DefaultOptions())
	if !res.Found || res.Circuit.Len() != 3 {
		t.Fatalf("direct Spec synthesis failed: %+v", res)
	}
	// The input spec must not be mutated by the search.
	want, _ := pprm.Parse(3, "a' = a ^ 1\nb' = b ^ c ^ ac\nc' = b ^ ab ^ ac")
	if !spec.Equal(want) {
		t.Error("Synthesize mutated its input Spec")
	}
}

func TestVerifyRejectsWrongCircuit(t *testing.T) {
	p := perm.MustFromInts([]int{1, 0, 7, 2, 3, 4, 5, 6})
	res, err := SynthesizePerm(p, DefaultOptions())
	if err != nil || !res.Found {
		t.Fatal("setup failed")
	}
	wrong := perm.Identity(3)
	if Verify(res.Circuit, wrong) == nil {
		t.Error("Verify accepted a circuit for the wrong function")
	}
	if Verify(nil, p) == nil {
		t.Error("Verify accepted a nil circuit")
	}
}
