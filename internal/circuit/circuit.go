// Package circuit models cascades of generalized Toffoli gates, the target
// technology of the synthesis algorithm (Section II-B of the paper).
//
// An n-bit Toffoli gate TOFn(x1, …, xn−1, xn) passes its first n−1 inputs
// (the control bits) unchanged and inverts the nth input (the target bit)
// iff all controls are 1. TOF1 is the NOT gate and TOF2 the CNOT/Feynman
// gate. A reversible circuit is a cascade of such gates with no fanout and
// no feedback, so the model is simply an ordered gate list.
package circuit

import (
	"fmt"
	"strings"

	"repro/internal/bits"
	"repro/internal/perm"
	"repro/internal/rng"
)

// Gate is a single generalized Toffoli gate: Target is the wire index whose
// value is inverted when every wire in Controls is 1. An empty Controls set
// makes the gate a NOT; a single control makes it a CNOT.
type Gate struct {
	Target   int
	Controls bits.Mask
}

// NewGate builds a gate from a target wire and a list of control wires.
// It panics if the target is listed as a control, which the gate definition
// forbids (a wire cannot be both target and control).
func NewGate(target int, controls ...int) Gate {
	var m bits.Mask
	for _, c := range controls {
		if c == target {
			panic(fmt.Sprintf("circuit: wire %d is both target and control", target))
		}
		m |= bits.Bit(c)
	}
	return Gate{Target: target, Controls: m}
}

// Size returns the gate's bit width: controls + 1 (so NOT is 1, CNOT is 2,
// the classic Toffoli is 3).
func (g Gate) Size() int { return bits.Count(g.Controls) + 1 }

// Valid reports whether the gate fits on n wires and its target is not
// among its controls.
func (g Gate) Valid(n int) bool {
	if g.Target < 0 || g.Target >= n {
		return false
	}
	if bits.Has(g.Controls, g.Target) {
		return false
	}
	return g.Controls < 1<<uint(n)
}

// Apply returns the gate's effect on an input assignment x.
func (g Gate) Apply(x uint32) uint32 {
	if x&g.Controls == g.Controls {
		return x ^ bits.Bit(g.Target)
	}
	return x
}

// String renders the gate in the paper's notation, e.g. "TOF3(c,a,b)" for a
// gate controlled by wires c and a with target b. Controls are listed in
// descending wire order, matching the paper's examples, and the target is
// always last.
func (g Gate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TOF%d(", g.Size())
	vars := bits.Vars(g.Controls)
	for i := len(vars) - 1; i >= 0; i-- {
		b.WriteString(bits.VarName(vars[i]))
		b.WriteByte(',')
	}
	b.WriteString(bits.VarName(g.Target))
	b.WriteByte(')')
	return b.String()
}

// Circuit is a cascade of Toffoli gates on Wires wires, applied in slice
// order from circuit inputs to circuit outputs.
type Circuit struct {
	Wires int
	Gates []Gate
}

// New returns an empty circuit on n wires.
func New(n int) *Circuit { return &Circuit{Wires: n} }

// Append adds gates at the output end of the cascade.
func (c *Circuit) Append(gates ...Gate) { c.Gates = append(c.Gates, gates...) }

// Prepend adds a gate at the input end of the cascade.
func (c *Circuit) Prepend(g Gate) {
	c.Gates = append([]Gate{g}, c.Gates...)
}

// Len returns the gate count, the paper's primary cost metric.
func (c *Circuit) Len() int { return len(c.Gates) }

// Validate checks every gate against the circuit width.
func (c *Circuit) Validate() error {
	if c.Wires < 1 || c.Wires > bits.MaxVars {
		return fmt.Errorf("circuit: invalid wire count %d", c.Wires)
	}
	for i, g := range c.Gates {
		if !g.Valid(c.Wires) {
			return fmt.Errorf("circuit: gate %d (%s) invalid on %d wires", i, g, c.Wires)
		}
	}
	return nil
}

// Apply runs the cascade on a single input assignment.
func (c *Circuit) Apply(x uint32) uint32 {
	for _, g := range c.Gates {
		x = g.Apply(x)
	}
	return x
}

// Perm simulates the circuit on every input assignment and returns the
// reversible function it realizes.
func (c *Circuit) Perm() perm.Perm {
	p := make(perm.Perm, 1<<uint(c.Wires))
	for x := range p {
		p[x] = c.Apply(uint32(x))
	}
	return p
}

// Inverse returns the circuit computing the inverse function: the gates in
// reverse order (every Toffoli gate is self-inverse).
func (c *Circuit) Inverse() *Circuit {
	inv := New(c.Wires)
	inv.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		inv.Gates[len(c.Gates)-1-i] = g
	}
	return inv
}

// MaxGateSize returns the size of the largest gate, or 0 for an empty
// circuit.
func (c *Circuit) MaxGateSize() int {
	max := 0
	for _, g := range c.Gates {
		if s := g.Size(); s > max {
			max = s
		}
	}
	return max
}

// NCTOnly reports whether every gate is in the NCT library (NOT, CNOT,
// 3-bit Toffoli). Table I and the benchmarks marked † in Table IV are
// compared under this restricted library.
func (c *Circuit) NCTOnly() bool { return c.MaxGateSize() <= 3 }

// String renders the cascade in the paper's style:
// "TOF3(c,a,b) TOF3(c,b,a) TOF1(a)". The empty circuit renders as
// "(identity)".
func (c *Circuit) String() string {
	if len(c.Gates) == 0 {
		return "(identity)"
	}
	parts := make([]string, len(c.Gates))
	for i, g := range c.Gates {
		parts[i] = g.String()
	}
	return strings.Join(parts, " ")
}

// Parse parses a cascade in the String format on n wires.
func Parse(n int, s string) (*Circuit, error) {
	c := New(n)
	for _, tok := range strings.Fields(s) {
		g, err := parseGate(tok)
		if err != nil {
			return nil, err
		}
		if !g.Valid(n) {
			return nil, fmt.Errorf("circuit: gate %q does not fit on %d wires", tok, n)
		}
		c.Append(g)
	}
	return c, nil
}

func parseGate(tok string) (Gate, error) {
	open := strings.IndexByte(tok, '(')
	if !strings.HasPrefix(tok, "TOF") || open < 0 || !strings.HasSuffix(tok, ")") {
		return Gate{}, fmt.Errorf("circuit: bad gate token %q", tok)
	}
	args := strings.Split(tok[open+1:len(tok)-1], ",")
	if len(args) == 0 {
		return Gate{}, fmt.Errorf("circuit: gate %q has no wires", tok)
	}
	var g Gate
	for i, a := range args {
		v := bits.VarIndex(strings.TrimSpace(a))
		if v < 0 {
			return Gate{}, fmt.Errorf("circuit: bad wire name %q in %q", a, tok)
		}
		if i == len(args)-1 {
			g.Target = v
		} else {
			g.Controls |= bits.Bit(v)
		}
	}
	if bits.Has(g.Controls, g.Target) {
		return Gate{}, fmt.Errorf("circuit: target repeated as control in %q", tok)
	}
	return g, nil
}

// Random returns a circuit of exactly `gates` gates drawn from src, built
// the way the scalability experiments (Tables V–VII) construct their
// workloads: each gate picks a uniform target; under the GT library the
// number of controls is uniform in [0, n−1] and the control set is a
// uniform subset of that size; under NCT the gate is a uniform NOT, CNOT,
// or TOF3.
func Random(n, gates int, library Library, src *rng.Source) *Circuit {
	c := New(n)
	for i := 0; i < gates; i++ {
		target := src.Intn(n)
		var controls int
		switch library {
		case NCT:
			controls = src.Intn(min(3, n))
		default:
			controls = src.Intn(n)
		}
		var m bits.Mask
		avail := make([]int, 0, n-1)
		for w := 0; w < n; w++ {
			if w != target {
				avail = append(avail, w)
			}
		}
		for j := 0; j < controls; j++ {
			k := src.Intn(len(avail))
			m |= bits.Bit(avail[k])
			avail[k] = avail[len(avail)-1]
			avail = avail[:len(avail)-1]
		}
		c.Append(Gate{Target: target, Controls: m})
	}
	return c
}

// Library identifies a reversible gate library.
type Library int

const (
	// GT is the generalized Toffoli library: TOFn for every n, the
	// library the synthesis algorithm targets.
	GT Library = iota
	// NCT restricts gates to NOT, CNOT and the 3-bit Toffoli.
	NCT
)

func (l Library) String() string {
	if l == NCT {
		return "NCT"
	}
	return "GT"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
