package pprm

import (
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/perm"
	"repro/internal/rng"
)

func fig1() perm.Perm {
	return perm.MustFromInts([]int{1, 0, 7, 2, 3, 4, 5, 6})
}

func TestFromPermFig1(t *testing.T) {
	s, err := FromPerm(fig1())
	if err != nil {
		t.Fatal(err)
	}
	// Eq. (3) of the paper.
	want := map[int][]string{
		0: {"1", "a"},
		1: {"b", "c", "ac"},
		2: {"b", "ab", "ac"},
	}
	for out, terms := range want {
		if s.Out[out].Len() != len(terms) {
			t.Fatalf("output %d has %d terms, want %d", out, s.Out[out].Len(), len(terms))
		}
		for _, ts := range terms {
			m, _ := bits.ParseTerm(ts)
			if !s.Out[out].Has(m) {
				t.Errorf("output %d missing term %s", out, ts)
			}
		}
	}
}

func TestRoundTripPermPPRMPerm(t *testing.T) {
	src := rng.New(4)
	for n := 1; n <= 6; n++ {
		for trial := 0; trial < 20; trial++ {
			p := perm.Random(n, src)
			s, err := FromPerm(p)
			if err != nil {
				t.Fatal(err)
			}
			if !s.ToPerm().Equal(p) {
				t.Fatalf("n=%d: PPRM round trip changed the function", n)
			}
		}
	}
}

func TestMobiusInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		// Pad to a power of two of sensible size.
		col := make([]byte, 64)
		for i := range col {
			if i < len(raw) {
				col[i] = raw[i] & 1
			}
		}
		orig := append([]byte(nil), col...)
		mobius(col)
		mobius(col)
		for i := range col {
			if col[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdentitySpec(t *testing.T) {
	s := Identity(5)
	if !s.IsIdentity() {
		t.Error("Identity spec should be the identity")
	}
	if s.Terms() != 5 {
		t.Errorf("identity has %d terms, want 5", s.Terms())
	}
	if !s.ToPerm().IsIdentity() {
		t.Error("identity spec evaluates to a different function")
	}
}

func TestSubstituteSemantics(t *testing.T) {
	// Substituting v = v ⊕ f into the PPRM of function g yields the PPRM
	// of g ∘ T where T is the Toffoli gate (target v, controls f) —
	// verified pointwise on random cases.
	src := rng.New(10)
	for trial := 0; trial < 60; trial++ {
		n := 2 + src.Intn(4)
		p := perm.Random(n, src)
		s, err := FromPerm(p)
		if err != nil {
			t.Fatal(err)
		}
		target := src.Intn(n)
		factor := bits.Mask(src.Intn(1<<uint(n))) &^ bits.Bit(target)
		s.Substitute(target, factor)

		// g ∘ T: apply the gate first, then the original function.
		got := s.ToPerm()
		for x := uint32(0); x < uint32(len(p)); x++ {
			tx := x
			if x&factor == factor {
				tx ^= bits.Bit(target)
			}
			if got[tx] != p[x] {
				t.Fatalf("trial %d: substitution semantics wrong (n=%d target=%d factor=%s)",
					trial, n, target, bits.TermString(factor))
			}
		}
	}
}

func TestSubstituteInvolution(t *testing.T) {
	src := rng.New(11)
	for trial := 0; trial < 40; trial++ {
		n := 2 + src.Intn(4)
		p := perm.Random(n, src)
		s, _ := FromPerm(p)
		orig := s.Clone()
		target := src.Intn(n)
		factor := bits.Mask(src.Intn(1<<uint(n))) &^ bits.Bit(target)
		d1 := s.Substitute(target, factor)
		d2 := s.Substitute(target, factor)
		if d1+d2 != 0 {
			t.Fatalf("deltas %d + %d should cancel", d1, d2)
		}
		if !s.Equal(orig) {
			t.Fatal("double substitution is not the identity")
		}
	}
}

func TestSubstituteDeltaMatchesSubstitute(t *testing.T) {
	src := rng.New(12)
	var buf []bits.Mask
	for trial := 0; trial < 60; trial++ {
		n := 2 + src.Intn(4)
		p := perm.Random(n, src)
		s, _ := FromPerm(p)
		target := src.Intn(n)
		factor := bits.Mask(src.Intn(1<<uint(n))) &^ bits.Bit(target)
		var want int
		want, buf = s.SubstituteDelta(target, factor, buf)
		got := s.Substitute(target, factor)
		if got != want {
			t.Fatalf("SubstituteDelta = %d, Substitute = %d", want, got)
		}
	}
}

func TestSubstituteCopyMatchesInPlace(t *testing.T) {
	src := rng.New(13)
	for trial := 0; trial < 60; trial++ {
		n := 2 + src.Intn(4)
		p := perm.Random(n, src)
		s, _ := FromPerm(p)
		target := src.Intn(n)
		factor := bits.Mask(src.Intn(1<<uint(n))) &^ bits.Bit(target)
		cp, delta := s.SubstituteCopy(target, factor)
		wantDelta := s.Substitute(target, factor) // mutates s
		if delta != wantDelta {
			t.Fatalf("delta %d, want %d", delta, wantDelta)
		}
		if !cp.Equal(s) {
			t.Fatal("SubstituteCopy result differs from in-place result")
		}
	}
}

func TestSubstitutePanicsOnIllegalFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("factor containing target must panic")
		}
	}()
	s := Identity(2)
	s.Substitute(0, bits.Bit(0))
}

func TestStringParseRoundTrip(t *testing.T) {
	src := rng.New(14)
	for trial := 0; trial < 25; trial++ {
		n := 1 + src.Intn(5)
		p := perm.Random(n, src)
		s, _ := FromPerm(p)
		back, err := Parse(n, s.String())
		if err != nil {
			t.Fatalf("parse of\n%s\nfailed: %v", s, err)
		}
		if !back.Equal(s) {
			t.Fatalf("round trip changed expansion:\n%s\nvs\n%s", s, back)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		n    int
		text string
	}{
		{2, "a' = a"},                 // b missing
		{2, "a' = a\nb' = b\na' = 1"}, // duplicate
		{2, "a' = a ^ c\nb' = b"},     // variable beyond n
		{2, "a' = a ^\nb' = b"},       // empty term
		{2, "q' = a\nb' = b"},         // unknown output
		{2, "a' a\nb' = b"},           // missing =
	}
	for _, c := range cases {
		if _, err := Parse(c.n, c.text); err == nil {
			t.Errorf("Parse(%q) should fail", c.text)
		}
	}
}

func TestParseAcceptsSpellings(t *testing.T) {
	for _, text := range []string{
		"a' = 1 ^ a\nb' = b",
		"a_out = 1 ⊕ a\nb_out = b",
		"ao = 1 + a\nbo = b",
		"# comment\na = 1 ^ a\n\nb = b",
	} {
		s, err := Parse(2, text)
		if err != nil {
			t.Errorf("Parse(%q): %v", text, err)
			continue
		}
		if !s.Out[0].Has(0) || !s.Out[0].Has(bits.Bit(0)) || s.Out[0].Len() != 2 {
			t.Errorf("Parse(%q) wrong expansion: %s", text, s)
		}
	}
}

func TestTermSetBasics(t *testing.T) {
	var ts TermSet
	if ts.Len() != 0 || ts.Has(3) {
		t.Error("zero TermSet should be empty")
	}
	if ts.Toggle(5) != 1 || !ts.Has(5) {
		t.Error("Toggle insert failed")
	}
	if ts.Toggle(5) != -1 || ts.Has(5) {
		t.Error("Toggle remove failed")
	}
	ts = NewTermSet(1, 2, 3, 2) // the pair of 2s cancels
	if ts.Len() != 2 || !ts.Has(1) || !ts.Has(3) || ts.Has(2) {
		t.Errorf("NewTermSet EXOR semantics wrong: %v", ts.Terms())
	}
}

func TestTermSetSortedOrder(t *testing.T) {
	ts := NewTermSet(0b111, 0b1, 0b110, 0)
	got := ts.Sorted()
	// Ascending literal count then value: 1(const), a, bc, abc.
	want := []bits.Mask{0, 0b1, 0b110, 0b111}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
}

func TestEvalAgainstToPerm(t *testing.T) {
	src := rng.New(15)
	for trial := 0; trial < 20; trial++ {
		n := 1 + src.Intn(5)
		p := perm.Random(n, src)
		s, _ := FromPerm(p)
		for x := uint32(0); x < uint32(len(p)); x++ {
			if s.Eval(x) != p[x] {
				t.Fatalf("Eval(%d) = %d, want %d", x, s.Eval(x), p[x])
			}
		}
	}
}
