package tt

import (
	"strings"
	"testing"
)

const rd53PLA = `
# rd53: count the ones of five inputs
.i 5
.o 3
.type fr
00000 000
00001 001
00010 001
00100 001
01000 001
10000 001
.e
`

func TestParsePLABasics(t *testing.T) {
	tab, err := ParsePLA(rd53PLA)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Inputs != 5 || tab.Outputs != 3 {
		t.Fatalf("shape %d→%d", tab.Inputs, tab.Outputs)
	}
	// PLA convention: leftmost input char is the MSB.
	if tab.Rows[0] != 0 {
		t.Errorf("row 00000 = %d", tab.Rows[0])
	}
	if tab.Rows[1] != 1 { // "00001" = x0
		t.Errorf("row 00001 = %d", tab.Rows[1])
	}
	if tab.Rows[16] != 1 { // "10000" = x4
		t.Errorf("row 10000 = %d", tab.Rows[16])
	}
	if tab.Rows[3] != 0 { // unspecified row defaults to 0
		t.Errorf("unspecified row = %d", tab.Rows[3])
	}
}

func TestParsePLADontCareInputs(t *testing.T) {
	tab, err := ParsePLA(".i 3\n.o 1\n1-1 1\n.e")
	if err != nil {
		t.Fatal(err)
	}
	// "1-1": MSB=1, LSB=1, middle either → rows 101 (5) and 111 (7).
	for x, want := range map[int]uint32{5: 1, 7: 1, 1: 0, 4: 0} {
		if tab.Rows[x] != want {
			t.Errorf("row %03b = %d, want %d", x, tab.Rows[x], want)
		}
	}
}

func TestParsePLAErrors(t *testing.T) {
	cases := []string{
		"",                            // empty
		".i 2\n01 1",                  // cube before .o
		".i 2\n.o 1\n0 1",             // wrong cube width
		".i 2\n.o 1\n0x 1",            // bad input char
		".i 2\n.o 1\n01 x",            // bad output char
		".i 2\n.o 1\n01 1\n01 1",      // duplicate row
		".i 2\n.o 1\n-- 1\n0- 0",      // overlap via don't cares
		".qq 3",                       // unknown directive
		".i 0\n.o 1\n 1",              // bad .i
		".i 1\n.o 1\n0 1\n.i 2\n01 1", // .i redefined after a cube
		".i 2\n.i 2\n.o 1\n01 1",      // duplicate .i
		".i 2\n.o 1\n.o 1\n01 1",      // duplicate .o
		".i 99999999999999999\n.o 1",  // .i overflow
		".i 2\n.o 1\n01 1\n.e\n10 1",  // cube after terminator
		".i 2\n.o 1\n01 1\n.e\n.i 2",  // directive after terminator
	}
	for _, c := range cases {
		if _, err := ParsePLA(c); err == nil {
			t.Errorf("ParsePLA(%q) should fail", c)
		}
	}
}

// TestParsePLADiagnostics checks that respecified rows are diagnosed with
// both line numbers, distinguishing harmless duplicates from genuine
// conflicts (a conflicting file describes no function at all).
func TestParsePLADiagnostics(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{".i 2\n.o 1\n01 1\n01 1", []string{"line 4", "duplicates line 3"}},
		{".i 2\n.o 1\n01 1\n01 0", []string{"line 4", "conflicts with line 3"}},
		{".i 2\n.o 1\n-- 1\n0- 0", []string{"line 4", "conflicts with line 3"}},
		{".i 1\n.o 1\n0 1\n.i 2\n01 1", []string{"line 4", "duplicate .i"}},
		{".i 2\n.o 1\n01 1\n.e\n10 1", []string{"line 5", "after .e"}},
		{".i 2\n.o 1\n0z 1", []string{"line 3", "bad input char"}},
	}
	for _, c := range cases {
		_, err := ParsePLA(c.text)
		if err == nil {
			t.Errorf("ParsePLA(%q) should fail", c.text)
			continue
		}
		for _, want := range c.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("ParsePLA(%q) error %q missing %q", c.text, err, want)
			}
		}
	}
}

func TestPLAFormatRoundTrip(t *testing.T) {
	orig := FromFunc(4, 2, func(x uint32) uint32 { return (x * 3) & 3 })
	back, err := ParsePLA(orig.FormatPLA())
	if err != nil {
		t.Fatal(err)
	}
	if back.Inputs != orig.Inputs || back.Outputs != orig.Outputs {
		t.Fatal("shape changed")
	}
	for x := range orig.Rows {
		if back.Rows[x] != orig.Rows[x] {
			t.Fatalf("row %d: %d vs %d", x, back.Rows[x], orig.Rows[x])
		}
	}
}

func TestParsePLAThenEmbed(t *testing.T) {
	// Full pipeline: PLA text → table → reversible spec.
	var b strings.Builder
	b.WriteString(".i 3\n.o 1\n")
	b.WriteString("111 1\n110 1\n101 1\n011 1\n") // majority
	b.WriteString(".e\n")
	tab, err := ParsePLA(b.String())
	if err != nil {
		t.Fatal(err)
	}
	e, err := Embed(tab)
	if err != nil {
		t.Fatal(err)
	}
	if e.Wires != 3 {
		t.Errorf("majority embedding uses %d wires, want 3", e.Wires)
	}
}
