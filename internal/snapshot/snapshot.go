// Package snapshot implements the durable checkpoint format for long
// synthesis runs: a versioned, CRC32-checksummed binary serialization of
// the complete RMRLS searcher state (priority-queue nodes, PPRM term sets,
// transposition table, counters, best-so-far solution), written atomically
// via temp-file + fsync + rename so a crash at any instant leaves either
// the previous checkpoint or the new one — never a torn file that parses.
//
// The package deliberately splits responsibilities: it owns the byte
// format and the crash-safe file protocol, while internal/core owns the
// semantic mapping between a live searcher and a State. Decode performs
// structural validation only (bounds, counts, checksums); core re-derives
// and cross-checks every search invariant before resuming, so a snapshot
// that passes both layers either resumes exactly or is rejected with a
// typed error — it can never panic the process or smuggle in a wrong
// circuit past core.Verify.
//
// Format (all integers little-endian; varints are encoding/binary):
//
//	magic   [6]byte "RMSNAP"
//	version uint16
//	length  uint32  — payload byte count; file size must equal 16+length
//	crc     uint32  — IEEE CRC32 of the payload
//	payload — field stream in the order Encode writes it
//
// Version policy (see DESIGN.md): the version is bumped on any layout
// change; readers reject versions they do not know with ErrVersionSkew
// instead of guessing. Checkpoints are short-lived operational artifacts,
// not archival data — there is no cross-version migration.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"repro/internal/bits"
)

// Version is the current snapshot format version.
const Version = 1

const (
	magic      = "RMSNAP"
	headerSize = len(magic) + 2 + 4 + 4
)

// Typed recovery errors. Callers distinguish "this file cannot be used,
// start fresh" (all of these) from I/O errors such as a missing file.
var (
	// ErrNotSnapshot reports that the file does not begin with the
	// snapshot magic — it is some other file, not a damaged checkpoint.
	ErrNotSnapshot = errors.New("snapshot: not a snapshot file")
	// ErrVersionSkew reports a well-formed header whose version this
	// build does not understand (written by a newer or older build).
	ErrVersionSkew = errors.New("snapshot: unsupported format version")
	// ErrCorrupt reports truncation, checksum mismatch, or a payload
	// that does not decode — a torn or bit-damaged file.
	ErrCorrupt = errors.New("snapshot: corrupt or truncated")
)

// TermSetState is one output's PPRM term set: the strictly increasing term
// masks plus the backing capacity (the search's memory accounting is
// capacity-based, so an exact restore must reproduce it).
type TermSetState struct {
	Terms []bits.Mask
	Cap   int
}

// SpecState is a full PPRM expansion — only the search root's expansion is
// stored; every other node's expansion is delta-encoded implicitly as its
// (target, factor) substitution and re-derived by replay on restore.
type SpecState struct {
	N   int
	Out []TermSetState
}

// NodeState is one search-tree node. Nodes are stored in topological order
// (Parent < index for every non-root node); index 0 is the root.
type NodeState struct {
	Parent       int // index into State.Nodes; -1 for the root
	ID           int
	Target       int // substitution target variable; -1 for the root
	Factor       uint32
	Depth        int
	Terms        int
	Elim         int
	Priority     float64
	Hash         uint64
	Materialized bool // node held a materialized expansion when saved
}

// FirstMoveState is one entry of the restart heuristic's first-move list.
type FirstMoveState struct {
	Target   int
	Factor   uint32
	Priority float64
}

// TTState is the transposition table: keys sorted ascending (map order is
// not deterministic; sorting makes encoding canonical) with parallel
// depths, plus the run's probe counters.
type TTState struct {
	Keys      []uint64
	Depths    []int32
	Hits      int64
	Misses    int64
	Evictions int64
}

// State is the complete serializable searcher state. See internal/core's
// export/restore for the exact mapping to a live search.
type State struct {
	// SpecHash is pprm.Spec.Hash of the function being synthesized; resume
	// refuses a snapshot taken for a different function.
	SpecHash uint64
	// OptionsFP fingerprints the decision-shaping synthesis options (see
	// core's fingerprint); budgets (time/step limits) are free to change
	// between segments, everything that shapes the search tree is not.
	OptionsFP uint64
	// Root is the root PPRM expansion (the function under synthesis).
	Root SpecState
	// Nodes holds the root, every queued node, the best solution, and all
	// of their ancestors, in topological order.
	Nodes []NodeState
	// Queued lists indices into Nodes in queue precedence order (highest
	// priority first, FIFO among ties) — the order Pop would drain them.
	Queued []int
	// BestSol is the best solution's index into Nodes, or -1.
	BestSol   int
	BestDepth int

	Steps             int
	StepsSinceRestart int
	SolSteps          int
	NodesCreated      int
	Restarts          int

	FirstMoves    []FirstMoveState
	NextFirstMove int

	// Elapsed is the cumulative synthesis wall-clock across all segments.
	Elapsed time.Duration
	// PeakBytes is the high-water accounted memory across all segments.
	PeakBytes int64

	// TT is the transposition table; nil when deduplication is off.
	TT *TTState
}

// Encode serializes the state into a complete snapshot file image
// (header + checksummed payload).
func Encode(st *State) []byte {
	var e encoder
	e.u64(st.SpecHash)
	e.u64(st.OptionsFP)
	e.uvarint(uint64(st.Root.N))
	for i := range st.Root.Out {
		ts := &st.Root.Out[i]
		e.uvarint(uint64(ts.Cap))
		e.uvarint(uint64(len(ts.Terms)))
		prev := int64(-1)
		for _, t := range ts.Terms {
			e.uvarint(uint64(int64(t) - prev)) // strictly increasing ⇒ delta ≥ 1
			prev = int64(t)
		}
	}
	e.uvarint(uint64(len(st.Nodes)))
	for i := range st.Nodes {
		n := &st.Nodes[i]
		e.varint(int64(n.Parent))
		e.uvarint(uint64(n.ID))
		e.varint(int64(n.Target))
		e.uvarint(uint64(n.Factor))
		e.uvarint(uint64(n.Depth))
		e.uvarint(uint64(n.Terms))
		e.varint(int64(n.Elim))
		e.f64(n.Priority)
		e.u64(n.Hash)
		if n.Materialized {
			e.byte(1)
		} else {
			e.byte(0)
		}
	}
	e.uvarint(uint64(len(st.Queued)))
	for _, q := range st.Queued {
		e.uvarint(uint64(q))
	}
	e.varint(int64(st.BestSol))
	e.uvarint(uint64(st.BestDepth))
	e.uvarint(uint64(st.Steps))
	e.uvarint(uint64(st.StepsSinceRestart))
	e.uvarint(uint64(st.SolSteps))
	e.uvarint(uint64(st.NodesCreated))
	e.uvarint(uint64(st.Restarts))
	e.uvarint(uint64(len(st.FirstMoves)))
	for i := range st.FirstMoves {
		fm := &st.FirstMoves[i]
		e.uvarint(uint64(fm.Target))
		e.uvarint(uint64(fm.Factor))
		e.f64(fm.Priority)
	}
	e.uvarint(uint64(st.NextFirstMove))
	e.uvarint(uint64(st.Elapsed))
	e.uvarint(uint64(st.PeakBytes))
	if st.TT == nil {
		e.byte(0)
	} else {
		e.byte(1)
		e.uvarint(uint64(st.TT.Hits))
		e.uvarint(uint64(st.TT.Misses))
		e.uvarint(uint64(st.TT.Evictions))
		e.uvarint(uint64(len(st.TT.Keys)))
		prev := uint64(0)
		for i, k := range st.TT.Keys {
			if i == 0 {
				e.u64(k)
			} else {
				e.uvarint(k - prev) // sorted ascending, distinct ⇒ delta ≥ 1
			}
			prev = k
		}
		for _, d := range st.TT.Depths {
			e.uvarint(uint64(d))
		}
	}

	payload := e.buf
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// Decode parses a snapshot file image, verifying magic, version, length,
// and checksum, and structurally validating the payload (every count is
// bounds-checked against the remaining bytes before allocation, so a
// corrupted count cannot force a huge allocation). Semantic validation —
// search invariants, spec and options identity — is internal/core's job.
func Decode(data []byte) (*State, error) {
	if len(data) < headerSize || string(data[:len(magic)]) != magic {
		if len(data) >= len(magic) && string(data[:len(magic)]) == magic {
			return nil, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(data))
		}
		return nil, ErrNotSnapshot
	}
	ver := binary.LittleEndian.Uint16(data[len(magic):])
	if ver != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersionSkew, ver, Version)
	}
	plen := binary.LittleEndian.Uint32(data[len(magic)+2:])
	crc := binary.LittleEndian.Uint32(data[len(magic)+6:])
	payload := data[headerSize:]
	if uint32(len(payload)) != plen {
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorrupt, len(payload), plen)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}

	d := &decoder{b: payload}
	st := &State{}
	st.SpecHash = d.u64()
	st.OptionsFP = d.u64()
	st.Root.N = int(d.count(bits.MaxVars, 1))
	st.Root.Out = make([]TermSetState, st.Root.N)
	for i := range st.Root.Out {
		ts := &st.Root.Out[i]
		ts.Cap = int(d.uvarint())
		n := d.count(uint64(len(d.b)), 1)
		ts.Terms = make([]bits.Mask, n)
		prev := int64(-1)
		for j := range ts.Terms {
			v := prev + int64(d.uvarint())
			if v < 0 || v > math.MaxUint32 || v <= prev {
				d.fail("term out of range")
				break
			}
			ts.Terms[j] = bits.Mask(v)
			prev = v
		}
		if ts.Cap < len(ts.Terms) || ts.Cap > len(ts.Terms)+1<<24 {
			d.fail("implausible term capacity")
		}
	}
	nNodes := d.count(uint64(len(d.b)), minNodeBytes)
	st.Nodes = make([]NodeState, nNodes)
	for i := range st.Nodes {
		n := &st.Nodes[i]
		n.Parent = int(d.varint())
		n.ID = int(d.uvarint())
		n.Target = int(d.varint())
		n.Factor = uint32(d.uvarint())
		n.Depth = int(d.uvarint())
		n.Terms = int(d.uvarint())
		n.Elim = int(d.varint())
		n.Priority = d.f64()
		n.Hash = d.u64()
		n.Materialized = d.byte() != 0
	}
	nQueued := d.count(uint64(len(d.b)), 1)
	st.Queued = make([]int, nQueued)
	for i := range st.Queued {
		st.Queued[i] = int(d.uvarint())
	}
	st.BestSol = int(d.varint())
	st.BestDepth = int(d.uvarint())
	st.Steps = int(d.uvarint())
	st.StepsSinceRestart = int(d.uvarint())
	st.SolSteps = int(d.uvarint())
	st.NodesCreated = int(d.uvarint())
	st.Restarts = int(d.uvarint())
	nMoves := d.count(uint64(len(d.b)), 10)
	st.FirstMoves = make([]FirstMoveState, nMoves)
	for i := range st.FirstMoves {
		fm := &st.FirstMoves[i]
		fm.Target = int(d.uvarint())
		fm.Factor = uint32(d.uvarint())
		fm.Priority = d.f64()
	}
	st.NextFirstMove = int(d.uvarint())
	st.Elapsed = time.Duration(d.uvarint())
	st.PeakBytes = int64(d.uvarint())
	if d.byte() != 0 {
		tt := &TTState{}
		tt.Hits = int64(d.uvarint())
		tt.Misses = int64(d.uvarint())
		tt.Evictions = int64(d.uvarint())
		nKeys := d.count(uint64(len(d.b)), 1)
		tt.Keys = make([]uint64, nKeys)
		for i := range tt.Keys {
			if i == 0 {
				tt.Keys[i] = d.u64()
			} else {
				tt.Keys[i] = tt.Keys[i-1] + d.uvarint()
				if tt.Keys[i] <= tt.Keys[i-1] {
					d.fail("transposition keys not increasing")
					break
				}
			}
		}
		tt.Depths = make([]int32, nKeys)
		for i := range tt.Depths {
			tt.Depths[i] = int32(d.uvarint())
		}
		st.TT = tt
	}

	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, d.err)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.b))
	}
	return st, nil
}

// minNodeBytes is the smallest possible encoded node (seven 1-byte varints
// + two fixed 8-byte words + flag byte); used to bound the node count a
// corrupted header can request before allocation.
const minNodeBytes = 7 + 8 + 8 + 1

type encoder struct{ buf []byte }

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) u64(v uint64)     { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) f64(v float64)    { e.u64(math.Float64bits(v)) }
func (e *encoder) byte(v byte)      { e.buf = append(e.buf, v) }

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = errors.New(msg)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("short fixed64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("short byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// count reads an element count and rejects values that could not possibly
// fit in the remaining payload (each element needs at least minBytes),
// so a flipped length byte cannot trigger a gigantic allocation.
func (d *decoder) count(limit uint64, minBytes int) uint64 {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > limit || v*uint64(minBytes) > uint64(len(d.b)) {
		d.fail("implausible element count")
		return 0
	}
	return v
}
