// Command rmrls synthesizes reversible functions into Toffoli-gate
// cascades using the Reed–Muller reversible logic synthesis algorithm.
//
// Usage:
//
//	rmrls [flags] '{1, 0, 7, 2, 3, 4, 5, 6}'   # permutation specification
//	rmrls [flags] -pprm -n 3 spec.pprm          # PPRM file, one output per line
//	rmrls [flags] -bench rd53                   # a named paper benchmark
//
// The output is the synthesized cascade in the paper's notation, its gate
// count and quantum cost, and (where feasible) a simulation-based
// verification verdict.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fredkin"
	"repro/internal/mmd"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/tt"
)

func main() {
	var (
		benchName = flag.String("bench", "", "synthesize a named paper benchmark (see -list)")
		list      = flag.Bool("list", false, "list available benchmark names and exit")
		isPPRM    = flag.Bool("pprm", false, "treat the argument as a PPRM file instead of a permutation")
		isPLA     = flag.Bool("pla", false, "treat the argument as a PLA truth-table file (don't-cares allowed); the function is embedded before synthesis")
		vars      = flag.Int("n", 0, "variable count (required with -pprm)")
		timeLimit = flag.Duration("time", 30*time.Second, "synthesis time limit")
		steps     = flag.Int("steps", 0, "deterministic step limit (0 = none)")
		maxGates  = flag.Int("maxgates", 0, "maximum circuit size (0 = automatic)")
		greedyK   = flag.Int("k", 4, "greedy pruning width (0 = keep all substitutions)")
		basic     = flag.Bool("basic", false, "use the basic algorithm (no heuristics)")
		library   = flag.String("library", "gt", "gate library: gt or nct")
		first     = flag.Bool("first", false, "stop at the first solution found")
		simplify  = flag.Bool("simplify", false, "apply peephole simplification to the result")
		baseline  = flag.Bool("mmd", false, "also run the transformation-based baseline")
		portfolio = flag.Bool("portfolio", false, "run the search portfolio + tightening (slower, better circuits)")
		fredkinF  = flag.Bool("fredkin", false, "report the mixed Fredkin/Toffoli form of the result")
		diagram   = flag.Bool("diagram", false, "draw the circuit")
		trace     = flag.Bool("trace", false, "print the search trace (pops/pushes/solutions)")
		quiet     = flag.Bool("q", false, "print only the circuit")
	)
	flag.Parse()

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-12s %2d wires  %s\n", b.Name, b.Wires, b.Description)
		}
		return
	}

	spec, p, err := loadSpec(*benchName, *isPPRM, *isPLA, *vars, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmrls:", err)
		os.Exit(1)
	}

	opts := core.DefaultOptions()
	if *basic {
		opts = core.BasicOptions()
	}
	opts.TimeLimit = *timeLimit
	opts.TotalSteps = *steps
	opts.MaxGates = *maxGates
	opts.GreedyK = *greedyK
	opts.FirstSolution = *first
	switch strings.ToLower(*library) {
	case "gt":
	case "nct":
		opts.Library = circuit.NCT
	default:
		fmt.Fprintf(os.Stderr, "rmrls: unknown library %q\n", *library)
		os.Exit(1)
	}
	if *trace {
		opts.Trace = printEvent
	}

	var res core.Result
	if *portfolio {
		res = core.SynthesizePortfolio(spec, opts, 4)
	} else {
		res = core.Synthesize(spec, opts)
	}
	if !res.Found {
		fmt.Fprintf(os.Stderr, "rmrls: no circuit found within limits (%d steps, %d restarts, %v)\n",
			res.Steps, res.Restarts, res.Elapsed.Round(time.Millisecond))
		os.Exit(2)
	}
	c := res.Circuit
	if *simplify {
		c = c.Simplify()
	}
	fmt.Println(c)
	if !*quiet {
		fmt.Printf("# gates=%d quantum-cost=%d steps=%d nodes=%d elapsed=%v\n",
			c.Len(), c.QuantumCost(), res.Steps, res.Nodes, res.Elapsed.Round(time.Microsecond))
		if p != nil && spec.N <= 22 {
			if err := core.Verify(c, p); err != nil {
				fmt.Fprintln(os.Stderr, "rmrls: VERIFICATION FAILED:", err)
				os.Exit(3)
			}
			fmt.Println("# verified: circuit realizes the specification")
		}
	}

	if *diagram {
		fmt.Println(c.Diagram())
	}
	if *fredkinF {
		mixed := fredkin.Recognize(c)
		fmt.Printf("# fredkin form (%d gates, %d fredkin): %s\n",
			mixed.Len(), mixed.FredkinCount(), mixed)
	}
	if *baseline && p != nil {
		b := mmd.Synthesize(p, mmd.Bidirectional)
		fmt.Printf("# baseline (Miller/Maslov/Dueck bidirectional): %d gates, cost %d\n",
			b.Len(), b.QuantumCost())
	}
}

// loadSpec resolves the three input modes to a PPRM expansion (and, where
// available, a permutation for verification).
func loadSpec(benchName string, isPPRM, isPLA bool, vars int, args []string) (*pprm.Spec, perm.Perm, error) {
	if benchName != "" {
		b, err := bench.ByName(benchName)
		if err != nil {
			return nil, nil, err
		}
		spec, err := b.PPRMSpec()
		return spec, b.Spec, err
	}
	if len(args) != 1 {
		return nil, nil, fmt.Errorf("expected exactly one specification argument (or -bench/-list)")
	}
	arg := args[0]
	if isPLA {
		text, err := os.ReadFile(arg)
		if err != nil {
			return nil, nil, err
		}
		pt, err := tt.ParsePLAPartial(string(text))
		if err != nil {
			return nil, nil, err
		}
		emb, _, err := tt.EmbedPartial(pt, 16, 1)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "# embedded: %d wires, %d garbage outputs, %d constant inputs, %d don't-care bits assigned\n",
			emb.Wires, emb.GarbageOutputs, emb.ConstantInputs, pt.DontCareBits())
		p := perm.Perm(emb.Spec)
		spec, err := pprm.FromPerm(p)
		return spec, p, err
	}
	if isPPRM {
		if vars < 1 || vars > bits.MaxVars {
			return nil, nil, fmt.Errorf("-pprm requires -n between 1 and %d", bits.MaxVars)
		}
		text, err := os.ReadFile(arg)
		if err != nil {
			return nil, nil, err
		}
		spec, err := pprm.Parse(vars, string(text))
		if err != nil {
			return nil, nil, err
		}
		if vars <= 22 {
			p := spec.ToPerm()
			if err := p.Validate(); err != nil {
				return nil, nil, fmt.Errorf("PPRM does not describe a reversible function: %v", err)
			}
			return spec, p, nil
		}
		return spec, nil, nil
	}
	text := arg
	if data, err := os.ReadFile(arg); err == nil {
		text = string(data)
	}
	p, err := perm.Parse(text)
	if err != nil {
		return nil, nil, err
	}
	spec, err := pprm.FromPerm(p)
	return spec, p, err
}

func printEvent(e core.Event) {
	kind := map[core.EventKind]string{
		core.EventPush:     "push",
		core.EventPop:      "pop ",
		core.EventSolution: "SOLN",
		core.EventRestart:  "rstr",
	}[e.Kind]
	sub := "-"
	if e.Target >= 0 {
		sub = fmt.Sprintf("%s=%s^%s", bits.VarName(e.Target), bits.VarName(e.Target), bits.TermString(e.Factor))
	}
	fmt.Printf("# %s id=%-6d parent=%-6d depth=%-2d %-14s terms=%-3d elim=%-3d prio=%.3f\n",
		kind, e.ID, e.Parent, e.Depth, sub, e.Terms, e.Elim, e.Priority)
}
