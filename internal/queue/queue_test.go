package queue

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

func TestEmpty(t *testing.T) {
	var q Queue[int]
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue should report !ok")
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue should report !ok")
	}
	if q.Len() != 0 {
		t.Error("empty queue has nonzero Len")
	}
}

func TestMaxHeapOrder(t *testing.T) {
	var q Queue[string]
	q.Push("low", 1)
	q.Push("high", 10)
	q.Push("mid", 5)
	for _, want := range []string{"high", "mid", "low"} {
		got, ok := q.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %q (%v), want %q", got, ok, want)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(i, 7.0)
	}
	for i := 0; i < 100; i++ {
		got, _ := q.Pop()
		if got != i {
			t.Fatalf("equal-priority pop %d = %d, want insertion order", i, got)
		}
	}
}

func TestRandomizedAgainstSort(t *testing.T) {
	src := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		var q Queue[int]
		n := 200 + src.Intn(300)
		prios := make([]float64, n)
		for i := range prios {
			prios[i] = float64(src.Intn(50)) // many ties
			q.Push(i, prios[i])
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return prios[idx[a]] > prios[idx[b]] })
		for i := 0; i < n; i++ {
			got, ok := q.Pop()
			if !ok || got != idx[i] {
				t.Fatalf("trial %d pos %d: got %d, want %d", trial, i, got, idx[i])
			}
		}
	}
}

func TestClear(t *testing.T) {
	var q Queue[int]
	q.Push(1, 1)
	q.Push(2, 2)
	q.Clear()
	if q.Len() != 0 {
		t.Error("Clear left items behind")
	}
	q.Push(3, 3)
	if v, ok := q.Pop(); !ok || v != 3 {
		t.Error("queue unusable after Clear")
	}
}

func TestPruneTo(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(i, float64(i))
	}
	q.PruneTo(10)
	if q.Len() != 10 {
		t.Fatalf("Len after PruneTo(10) = %d", q.Len())
	}
	// Survivors must be the ten highest priorities, still popped in order.
	for want := 99; want >= 90; want-- {
		got, _ := q.Pop()
		if got != want {
			t.Fatalf("post-prune pop = %d, want %d", got, want)
		}
	}
}

func TestPruneToNoOpWhenSmall(t *testing.T) {
	var q Queue[int]
	q.Push(1, 1)
	q.PruneTo(10)
	if q.Len() != 1 {
		t.Error("PruneTo shrank a small queue")
	}
}

// TestPruneToHeapInvariant checks the max-heap property directly on the
// backing array after a prune, rather than inferring it from pop order:
// every parent must have precedence over both children.
func TestPruneToHeapInvariant(t *testing.T) {
	src := rng.New(31)
	for trial := 0; trial < 10; trial++ {
		var q Queue[int]
		n := 500 + src.Intn(500)
		for i := 0; i < n; i++ {
			q.Push(i, float64(src.Intn(40)))
		}
		keep := 1 + src.Intn(n)
		q.PruneTo(keep)
		for i := 1; i < len(q.items); i++ {
			parent := (i - 1) / 2
			if q.less(i, parent) {
				t.Fatalf("trial %d: heap property violated at index %d after PruneTo(%d)",
					trial, i, keep)
			}
		}
	}
}

// TestPruneToKeepsFIFOWithinTies: when the cut falls inside a group of
// equal priorities, the earlier-inserted entries must survive — the same
// FIFO rule that orders pops.
func TestPruneToKeepsFIFOWithinTies(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 20; i++ {
		q.Push(i, 3.0) // all tied
	}
	q.PruneTo(7)
	for want := 0; want < 7; want++ {
		got, ok := q.Pop()
		if !ok || got != want {
			t.Fatalf("post-prune pop = %d (%v), want %d (insertion order)", got, ok, want)
		}
	}
}

func TestPruneToZero(t *testing.T) {
	var q Queue[int]
	q.Push(1, 1)
	q.Push(2, 2)
	q.PruneTo(0)
	if q.Len() != 0 {
		t.Errorf("Len after PruneTo(0) = %d", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop after PruneTo(0) returned an item")
	}
}

// TestEachVisitsAll: Each must visit every queued item exactly once —
// the searcher relies on it to recount queue memory after a prune.
func TestEachVisitsAll(t *testing.T) {
	var q Queue[int]
	seen := make(map[int]int)
	q.Each(func(int) { t.Error("Each on empty queue called f") })
	for i := 0; i < 50; i++ {
		q.Push(i, float64(i%7))
	}
	q.Pop()
	q.Pop()
	q.Each(func(v int) { seen[v]++ })
	if len(seen) != q.Len() {
		t.Fatalf("Each visited %d distinct items, queue holds %d", len(seen), q.Len())
	}
	for v, c := range seen {
		if c != 1 {
			t.Errorf("Each visited %d %d times", v, c)
		}
	}
}

func TestPruneKeepsHeapValid(t *testing.T) {
	// Store each item's priority as its value so pop order is checkable
	// after a prune.
	src := rng.New(13)
	var q Queue[float64]
	for i := 0; i < 1000; i++ {
		p := float64(src.Intn(100))
		q.Push(p, p)
	}
	q.PruneTo(333)
	if q.Len() != 333 {
		t.Fatalf("Len after prune = %d", q.Len())
	}
	last := 1e18
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if v > last {
			t.Fatalf("pop priority %v after %v: heap order broken by prune", v, last)
		}
		last = v
	}
}

// TestPruneToFuncDiscards: the discard callback sees exactly the dropped
// items (the lowest-precedence tail), each exactly once.
func TestPruneToFuncDiscards(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 20; i++ {
		q.Push(i, float64(i))
	}
	discarded := map[int]int{}
	q.PruneToFunc(5, func(v int) { discarded[v]++ })
	if q.Len() != 5 {
		t.Fatalf("Len after PruneToFunc(5) = %d", q.Len())
	}
	if len(discarded) != 15 {
		t.Fatalf("discard callback saw %d items, want 15", len(discarded))
	}
	for v, n := range discarded {
		if v >= 15 {
			t.Errorf("high-priority item %d was discarded", v)
		}
		if n != 1 {
			t.Errorf("item %d discarded %d times", v, n)
		}
	}
	// No callback when nothing is dropped.
	q.PruneToFunc(10, func(v int) { t.Errorf("discarded %d from a small queue", v) })
}
