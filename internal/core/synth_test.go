package core

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
)

// fig1 is the reversible function of Fig. 1, specification {1,0,7,2,3,4,5,6}.
func fig1(t *testing.T) perm.Perm {
	t.Helper()
	p, err := perm.FromInts([]int{1, 0, 7, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatalf("fig1 spec: %v", err)
	}
	return p
}

func TestFig1PPRM(t *testing.T) {
	// Eq. (3): a' = a ⊕ 1; b' = b ⊕ c ⊕ ac; c' = b ⊕ ab ⊕ ac.
	spec, err := pprm.FromPerm(fig1(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := pprm.Parse(3, "a' = a ^ 1\nb' = b ^ c ^ ac\nc' = b ^ ab ^ ac")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Equal(want) {
		t.Errorf("PPRM of Fig. 1 =\n%s\nwant\n%s", spec, want)
	}
}

func TestFig1BasicSynthesis(t *testing.T) {
	p := fig1(t)
	res, err := SynthesizePerm(p, BasicOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no solution found")
	}
	if res.Circuit.Len() != 3 {
		t.Errorf("gate count = %d, want 3 (paper Fig. 3(d)); circuit: %s", res.Circuit.Len(), res.Circuit)
	}
	if err := Verify(res.Circuit, p); err != nil {
		t.Error(err)
	}
}

// TestFig5Walkthrough replays the search trace of Fig. 5 and checks the
// paper's narrative: three substitutions at the first level with a = a ⊕ 1
// most attractive, two at the second, the solution a=a⊕1, b=b⊕ac, c=c⊕ab at
// depth 3, and no better solution afterwards.
func TestFig5Walkthrough(t *testing.T) {
	var events []Event
	opts := BasicOptions()
	opts.Trace = func(e Event) { events = append(events, e) }
	res, err := SynthesizePerm(fig1(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Circuit.Len() != 3 {
		t.Fatalf("expected depth-3 solution, got %+v", res)
	}

	// First pop is the root; its expansion must push exactly the three
	// level-1 nodes of Fig. 5(b): a=a⊕1, b=b⊕c, b=b⊕ac.
	var level1 []Event
	for _, e := range events {
		if e.Kind == EventPush && e.Depth == 1 {
			level1 = append(level1, e)
		}
	}
	if len(level1) != 3 {
		t.Fatalf("level-1 pushes = %d, want 3: %+v", len(level1), level1)
	}
	type sub struct {
		target int
		factor bits.Mask
	}
	seen := map[sub]bool{}
	for _, e := range level1 {
		seen[sub{e.Target, e.Factor}] = true
	}
	for _, want := range []sub{
		{0, 0},                         // a = a ⊕ 1
		{1, bits.Bit(2)},               // b = b ⊕ c
		{1, bits.Bit(0) | bits.Bit(2)}, // b = b ⊕ ac
	} {
		if !seen[want] {
			t.Errorf("missing level-1 substitution %s = %s ⊕ %s",
				bits.VarName(want.target), bits.VarName(want.target), bits.TermString(want.factor))
		}
	}

	// The second pop must be a = a ⊕ 1 (highest priority, Fig. 5(b)).
	pops := 0
	for _, e := range events {
		if e.Kind != EventPop {
			continue
		}
		pops++
		if pops == 2 {
			if e.Target != 0 || e.Factor != 0 {
				t.Errorf("second pop is %s ⊕ %s, want a ⊕ 1",
					bits.VarName(e.Target), bits.TermString(e.Factor))
			}
		}
	}

	// Exactly one solution event, at depth 3.
	var solutions []Event
	for _, e := range events {
		if e.Kind == EventSolution {
			solutions = append(solutions, e)
		}
	}
	if len(solutions) != 1 || solutions[0].Depth != 3 {
		t.Errorf("solutions = %+v, want one at depth 3", solutions)
	}

	// The synthesized cascade is Fig. 3(d): TOF1(a) TOF3(a,c,b) TOF3(a,b,c).
	want := "TOF1(a) TOF3(c,a,b) TOF3(b,a,c)"
	if got := res.Circuit.String(); got != want {
		t.Errorf("circuit = %s, want %s", got, want)
	}
}

func TestAdditionalSubstitutionsFig6(t *testing.T) {
	// With the Section IV-D extensions the first level also offers
	// b=b⊕1, c=c⊕1, c=c⊕b, c=c⊕ab (Fig. 6).
	var level1 int
	opts := BasicOptions()
	opts.Additional = true
	// Fig. 6 illustrates the full candidate set; AdmitAll queues exactly
	// the nodes drawn there (the default bounded admission drops the two
	// term-increasing ⊕1 nodes).
	opts.Admission = AdmitAll
	opts.Trace = func(e Event) {
		if e.Kind == EventPush && e.Depth == 1 {
			level1++
		}
	}
	if _, err := SynthesizePerm(fig1(t), opts); err != nil {
		t.Fatal(err)
	}
	if level1 != 7 {
		t.Errorf("level-1 substitutions with extensions = %d, want 7 (Fig. 6)", level1)
	}
}

func TestIdentityIsEmptyCircuit(t *testing.T) {
	res, err := SynthesizePerm(perm.Identity(4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Circuit.Len() != 0 {
		t.Errorf("identity should synthesize to the empty cascade, got %+v", res)
	}
}

func TestRandomRoundTrip(t *testing.T) {
	src := rng.New(7)
	for n := 1; n <= 4; n++ {
		for trial := 0; trial < 25; trial++ {
			p := perm.Random(n, src)
			opts := DefaultOptions()
			opts.MaxGates = 60
			res, err := SynthesizePerm(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found {
				t.Fatalf("n=%d trial=%d: no solution for %s", n, trial, p)
			}
			if err := Verify(res.Circuit, p); err != nil {
				t.Fatalf("n=%d trial=%d: %v", n, trial, err)
			}
		}
	}
}

func TestNCTLibraryRestriction(t *testing.T) {
	src := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		p := perm.Random(3, src)
		opts := DefaultOptions()
		opts.Library = circuit.NCT
		opts.MaxGates = 20
		res, err := SynthesizePerm(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("trial %d: no NCT solution for %s", trial, p)
		}
		if !res.Circuit.NCTOnly() {
			t.Fatalf("trial %d: circuit %s uses gates beyond NCT", trial, res.Circuit)
		}
		if err := Verify(res.Circuit, p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAllTwoVariableFunctionsComplete: the search must synthesize every
// one of the 24 reversible functions of two variables (including the wire
// swap, the admission counterexample).
func TestAllTwoVariableFunctionsComplete(t *testing.T) {
	var vals [4]uint32
	count := 0
	var rec func(depth int, used uint8)
	rec = func(depth int, used uint8) {
		if depth == 4 {
			p := make(perm.Perm, 4)
			copy(p, vals[:])
			count++
			res, err := SynthesizePerm(p, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found {
				t.Errorf("2-var function %s not synthesized", p)
				return
			}
			if err := Verify(res.Circuit, p); err != nil {
				t.Error(err)
			}
			return
		}
		for v := uint32(0); v < 4; v++ {
			if used&(1<<v) == 0 {
				vals[depth] = v
				rec(depth+1, used|1<<v)
			}
		}
	}
	rec(0, 0)
	if count != 24 {
		t.Fatalf("enumerated %d functions", count)
	}
}

// TestLinearPriorityOrdersProductivePathsFirst is a focused regression for
// the A* property: on a function needing ~14 gates, the default options
// must find a solution in far fewer steps than the published-weight
// configuration explores without success.
func TestLinearPriorityOrdersProductivePathsFirst(t *testing.T) {
	p := perm.MustFromInts([]int{4, 10, 8, 13, 7, 3, 14, 12, 9, 15, 0, 6, 2, 1, 11, 5})
	opts := DefaultOptions()
	opts.TotalSteps = 60000
	res, err := SynthesizePerm(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("default options failed on the development hard case")
	}
	paper := opts
	paper.Alpha, paper.Beta, paper.Gamma = 0.3, 0.6, 0.1
	paper.LinearElim = false
	paperRes, _ := SynthesizePerm(p, paper)
	if paperRes.Found && paperRes.Steps < res.Steps {
		t.Logf("note: published weights solved it too (%d vs %d steps)", paperRes.Steps, res.Steps)
	}
}
