package verify

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/mmd"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
	"repro/internal/tt"
)

func TestSimulateAgainstCircuitPerm(t *testing.T) {
	// The oracle's independent simulation must agree with the production
	// path (Circuit.Perm) on random well-formed cascades: a disagreement
	// here means one of the two gate interpreters is wrong.
	src := rng.New(7)
	for n := 1; n <= 6; n++ {
		for trial := 0; trial < 20; trial++ {
			c := circuit.Random(n, 1+src.Intn(12), circuit.GT, src)
			got, verr := Simulate(StageSearch, c)
			if verr != nil {
				t.Fatalf("n=%d: %v", n, verr)
			}
			want := c.Perm()
			for x := range want {
				if got[x] != want[x] {
					t.Fatalf("n=%d circuit %v: oracle %d → %d, production %d", n, c, x, got[x], want[x])
				}
			}
		}
	}
}

func TestSimulateRejectsMalformedGates(t *testing.T) {
	cases := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"target out of range", &circuit.Circuit{Wires: 2, Gates: []circuit.Gate{{Target: 2}}}},
		{"controls out of range", &circuit.Circuit{Wires: 2, Gates: []circuit.Gate{{Target: 0, Controls: 1 << 5}}}},
		{"self-controlled", &circuit.Circuit{Wires: 2, Gates: []circuit.Gate{{Target: 1, Controls: 1 << 1}}}},
	}
	for _, tc := range cases {
		if _, verr := Simulate(StageSearch, tc.c); verr == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, verr := Simulate(StageSearch, nil); verr == nil {
		t.Error("nil circuit accepted")
	}
	wide := circuit.New(MaxVars + 1)
	if _, verr := Simulate(StageSearch, wide); verr == nil {
		t.Error("infeasible width accepted")
	}
}

func TestCircuitDetectsMismatchWithAttribution(t *testing.T) {
	c := circuit.New(3)
	c.Append(circuit.Gate{Target: 0, Controls: bits.Bit(1) | bits.Bit(2)}) // TOF3(c,b,a)
	p := c.Perm()
	if err := Circuit(StagePeephole, c, p); err != nil {
		t.Fatalf("correct circuit rejected: %v", err)
	}
	// Corrupt one gate: the check must fail, name the stage, and report a
	// concrete counterexample input.
	bad := circuit.New(3)
	bad.Append(circuit.Gate{Target: 1, Controls: bits.Bit(0) | bits.Bit(2)})
	err := Circuit(StagePeephole, bad, p)
	if err == nil {
		t.Fatal("corrupted circuit accepted")
	}
	var verr *Error
	if !errors.As(err, &verr) {
		t.Fatalf("error is %T, want *verify.Error", err)
	}
	if verr.Stage != StagePeephole {
		t.Errorf("stage = %q, want %q", verr.Stage, StagePeephole)
	}
	if got := bad.Perm()[verr.Input]; got != verr.Got || p[verr.Input] != verr.Want {
		t.Errorf("counterexample does not reproduce: input %d got %d/%d want %d/%d",
			verr.Input, got, verr.Got, p[verr.Input], verr.Want)
	}
	if verr.Circuit != bad.String() {
		t.Errorf("error carries circuit %q, want %q", verr.Circuit, bad.String())
	}
	if !strings.Contains(verr.Error(), "peephole") {
		t.Errorf("message %q does not name the stage", verr.Error())
	}
}

func TestSpecIndependentEvaluation(t *testing.T) {
	// Random reversible functions: the subset-XOR tabulation of the PPRM
	// expansion must reproduce the permutation the expansion was built from.
	src := rng.New(11)
	for n := 1; n <= 6; n++ {
		for trial := 0; trial < 10; trial++ {
			p := perm.Random(n, src)
			spec, err := pprm.FromPerm(p)
			if err != nil {
				t.Fatal(err)
			}
			want := specTable(spec)
			for x := range p {
				if want[x] != p[x] {
					t.Fatalf("n=%d: specTable[%d] = %d, want %d", n, x, want[x], p[x])
				}
			}
		}
	}
}

func TestSpecChecksCascade(t *testing.T) {
	src := rng.New(13)
	p := perm.Random(4, src)
	spec, err := pprm.FromPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	c := mmd.Synthesize(p, mmd.Unidirectional)
	if err := Spec(StageSearch, c, spec); err != nil {
		t.Fatalf("correct cascade rejected: %v", err)
	}
	c.Gates[0].Target = (c.Gates[0].Target + 1) % 4
	c.Gates[0].Controls &^= bits.Bit(c.Gates[0].Target)
	if err := Spec(StageSearch, c, spec); err == nil {
		t.Fatal("corrupted cascade accepted")
	}
}

func TestTransformAcceptsEquivalentRejectsBroken(t *testing.T) {
	src := rng.New(17)
	c := circuit.Random(4, 8, circuit.GT, src)
	simplified := c.Simplify()
	if err := Transform(StageSimplify, c, simplified); err != nil {
		t.Fatalf("simplify flagged as miscompile: %v", err)
	}
	// Dropping a non-cancelling gate changes the function.
	broken := circuit.New(4)
	broken.Append(c.Gates[1:]...)
	if bp, cp := broken.Perm(), c.Perm(); !bp.Equal(cp) {
		err := Transform(StageSimplify, c, broken)
		var verr *Error
		if !errors.As(err, &verr) || verr.Stage != StageSimplify {
			t.Fatalf("broken transform: got %v", err)
		}
	}
}

func TestTransformAllowsCleanAncillaWidening(t *testing.T) {
	// A lowering pass may add wires; any ancilla value must pass through
	// unchanged and the base function must be preserved on every slice.
	before := circuit.New(2)
	before.Append(circuit.Gate{Target: 0, Controls: bits.Bit(1)})
	after := circuit.New(3)
	after.Append(circuit.Gate{Target: 0, Controls: bits.Bit(1)})
	if err := Transform(StageDecomp, before, after); err != nil {
		t.Fatalf("clean widening rejected: %v", err)
	}
	// A version that flips the ancilla is a miscompile.
	dirty := circuit.New(3)
	dirty.Append(circuit.Gate{Target: 0, Controls: bits.Bit(1)}, circuit.Gate{Target: 2})
	if err := Transform(StageDecomp, before, dirty); err == nil {
		t.Fatal("dirty ancilla accepted")
	}
	narrowed := circuit.New(1)
	if err := Transform(StageDecomp, before, narrowed); err == nil {
		t.Fatal("narrowing accepted")
	}
}

func TestPLADontCareAware(t *testing.T) {
	// A half-specified single-output function: row 0 and 1 cared, rows 2–3
	// don't-care. Any circuit agreeing on the cared bits must pass, however
	// it fills the rest.
	pt := &tt.PartialTable{Inputs: 2, Outputs: 1,
		Rows: []uint32{1, 0, 0, 0}, Care: []uint32{1, 1, 0, 0}}
	emb, _, err := tt.EmbedPartial(pt, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := perm.Perm(emb.Spec)
	c := mmd.Synthesize(p, mmd.Unidirectional)
	if err := PLA(StageSearch, c, emb, pt); err != nil {
		t.Fatalf("embedding's own realization rejected: %v", err)
	}
	// Flip the wire carrying the real output: cared rows now disagree.
	bad := circuit.New(emb.Wires)
	bad.Append(c.Gates...)
	bad.Append(circuit.Gate{Target: emb.OutputWires[0]})
	err = PLA(StageSearch, bad, emb, pt)
	var verr *Error
	if !errors.As(err, &verr) {
		t.Fatalf("corrupted output accepted (err=%v)", err)
	}
	if int(verr.Input) >= len(pt.Rows) {
		t.Errorf("counterexample input %d outside the real input range", verr.Input)
	}
	// Flipping only don't-care garbage must NOT fail the check: append a
	// NOT on a garbage wire (any wire that is not an output wire).
	garbageWire := -1
	for w := 0; w < emb.Wires; w++ {
		if w != emb.OutputWires[0] {
			garbageWire = w
			break
		}
	}
	if garbageWire >= 0 {
		free := circuit.New(emb.Wires)
		free.Append(c.Gates...)
		free.Append(circuit.Gate{Target: garbageWire})
		if err := PLA(StageSearch, free, emb, pt); err != nil {
			t.Fatalf("don't-care-only deviation rejected: %v", err)
		}
	}
}

func TestRelabelMetamorphic(t *testing.T) {
	src := rng.New(23)
	maps := [][]int{{1, 0, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
	for trial := 0; trial < 10; trial++ {
		c := circuit.Random(4, 1+src.Intn(10), circuit.GT, src)
		p, verr := Simulate(StageSearch, c)
		if verr != nil {
			t.Fatal(verr)
		}
		for _, m := range maps {
			rc, err := RelabelCircuit(c, m)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := RelabelPerm(p, m)
			if err != nil {
				t.Fatal(err)
			}
			if err := Circuit(StageSearch, rc, rp); err != nil {
				t.Fatalf("map %v breaks the conjugation invariant: %v", m, err)
			}
		}
	}
	if _, err := RelabelCircuit(circuit.New(3), []int{0, 1}); err == nil {
		t.Error("short wire map accepted")
	}
	if _, err := RelabelPerm(perm.Identity(3), []int{0, 0, 1}); err == nil {
		t.Error("non-permutation wire map accepted")
	}
}

func TestFeasible(t *testing.T) {
	for _, tc := range []struct {
		n  int
		ok bool
	}{{0, false}, {1, true}, {MaxVars, true}, {MaxVars + 1, false}} {
		if Feasible(tc.n) != tc.ok {
			t.Errorf("Feasible(%d) = %v, want %v", tc.n, !tc.ok, tc.ok)
		}
	}
}
