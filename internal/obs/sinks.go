package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sync"
	"time"
)

// Sink consumes ProgressSnapshots. Emit may be called from the publisher
// goroutine at any cadence; implementations serialize internally. Close
// flushes whatever the sink buffers and is called exactly once, after the
// final snapshot.
type Sink interface {
	Emit(ProgressSnapshot) error
	Close() error
}

// JSONLSink writes one JSON object per snapshot per line — the
// machine-readable firehose (-metrics-json). Safe for concurrent Emit.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewJSONLSink wraps w; the caller keeps ownership of the underlying file.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w, enc: json.NewEncoder(w)}
}

func (s *JSONLSink) Emit(snap ProgressSnapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(&snap)
}

func (s *JSONLSink) Close() error { return nil }

// TTYSink renders the run's top-level snapshot as a single line rewritten
// in place with a carriage return — the human view (-progress). Only the
// first label it sees (the Publisher emits the root snapshot first) is
// rendered, so per-variant child snapshots do not fight over the one line.
// Close terminates the line with a newline so the shell prompt is not
// overwritten.
type TTYSink struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	bound bool
	wrote bool
}

func NewTTYSink(w io.Writer) *TTYSink { return &TTYSink{w: w} }

func (s *TTYSink) Emit(snap ProgressSnapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.bound {
		s.label, s.bound = snap.Label, true
	}
	if snap.Label != s.label {
		return nil
	}
	line := formatProgressLine(&snap)
	// Pad to blank out any longer previous line before the carriage return.
	_, err := fmt.Fprintf(s.w, "\r%-110s", line)
	s.wrote = true
	return err
}

func (s *TTYSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wrote {
		_, err := fmt.Fprintln(s.w)
		return err
	}
	return nil
}

// formatProgressLine is the single-line human rendering of a snapshot.
func formatProgressLine(s *ProgressSnapshot) string {
	best := "none"
	if s.BestGates >= 0 {
		best = fmt.Sprintf("%dg/qc%d", s.BestGates, s.BestQuantumCost)
	}
	line := fmt.Sprintf("%s %s | %s steps (%s/s) q=%s/%s best=%s",
		s.Label,
		s.Elapsed.Round(time.Second),
		countString(s.Steps),
		countString(int64(s.StepsPerSec)),
		countString(s.QueueLen),
		byteString(s.TotalBytes),
		best)
	if probes := s.DedupHits + s.DedupMisses; probes > 0 {
		line += fmt.Sprintf(" dedup=%.0f%%", 100*s.DedupHitRate())
	}
	if s.Restarts > 0 {
		line += fmt.Sprintf(" rstr=%d", s.Restarts)
	}
	if s.Checkpoints > 0 && s.LastCheckpointAge >= 0 {
		line += fmt.Sprintf(" ckpt=%s ago", s.LastCheckpointAge.Round(time.Second))
	}
	if s.StepsBudget > 0 {
		line += fmt.Sprintf(" budget=%s left", countString(s.StepsRemaining))
	} else if s.TimeBudget > 0 {
		line += fmt.Sprintf(" budget=%s left", s.TimeRemaining.Round(time.Second))
	}
	if s.Status != "" {
		line += " [" + s.Status + "]"
	}
	if s.Done {
		line += " done"
		if s.Stop != "" {
			line += " (" + s.Stop + ")"
		}
	}
	return line
}

// countString renders large counts compactly (1234567 → "1.23M").
func countString(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", float64(v)/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// byteString renders byte sizes in binary units.
func byteString(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}

// ExpvarSink publishes the latest snapshot per label as one expvar variable
// (a JSON object keyed by label), served at /debug/vars by ServeMetrics or
// any expvar-aware scraper.
//
// expvar's registry is append-only and process-global, so the underlying
// variable is registered once per name and reused by later sinks with the
// same name — creating a second sink for a finished run simply overwrites
// the labels it emits.
type ExpvarSink struct {
	v *expvarProgress
}

// DefaultExpvarName is the registry name used by NewExpvarSink.
const DefaultExpvarName = "rmrls.progress"

var expvarMu sync.Mutex

// NewExpvarSink returns a sink publishing under the given expvar name
// (DefaultExpvarName when empty).
func NewExpvarSink(name string) *ExpvarSink {
	if name == "" {
		name = DefaultExpvarName
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if existing, ok := expvar.Get(name).(*expvarProgress); ok {
		return &ExpvarSink{v: existing}
	}
	v := &expvarProgress{snaps: make(map[string]ProgressSnapshot)}
	expvar.Publish(name, v)
	return &ExpvarSink{v: v}
}

func (s *ExpvarSink) Emit(snap ProgressSnapshot) error {
	s.v.mu.Lock()
	s.v.snaps[snap.Label] = snap
	s.v.mu.Unlock()
	return nil
}

func (s *ExpvarSink) Close() error { return nil }

// expvarProgress is the registered expvar.Var: label → latest snapshot.
type expvarProgress struct {
	mu    sync.Mutex
	snaps map[string]ProgressSnapshot
}

func (v *expvarProgress) String() string {
	v.mu.Lock()
	data, err := json.Marshal(v.snaps) // Marshal orders map keys
	v.mu.Unlock()
	if err != nil {
		return "{}"
	}
	return string(data)
}
