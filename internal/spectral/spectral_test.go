package spectral

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/rng"
)

func TestWHTParseval(t *testing.T) {
	// Σ Ŵ(w)² = 2^n · 2^n for any Boolean function (±1 encoding).
	src := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 2 + src.Intn(4)
		size := 1 << uint(n)
		col := make([]int32, size)
		for i := range col {
			if src.Bool() {
				col[i] = 1
			} else {
				col[i] = -1
			}
		}
		WHT(col)
		sum := int64(0)
		for _, v := range col {
			sum += int64(v) * int64(v)
		}
		if sum != int64(size)*int64(size) {
			t.Fatalf("Parseval violated: %d ≠ %d", sum, size*size)
		}
	}
}

func TestWHTConstant(t *testing.T) {
	// Constant +1 transforms to a delta at frequency 0.
	col := []int32{1, 1, 1, 1}
	WHT(col)
	if col[0] != 4 || col[1] != 0 || col[2] != 0 || col[3] != 0 {
		t.Errorf("WHT(const) = %v", col)
	}
}

func TestWHTInvolutionUpToScale(t *testing.T) {
	src := rng.New(3)
	col := make([]int32, 16)
	for i := range col {
		col[i] = int32(src.Intn(7)) - 3
	}
	orig := append([]int32(nil), col...)
	WHT(col)
	WHT(col)
	for i := range col {
		if col[i] != orig[i]*16 {
			t.Fatalf("WHT² ≠ 2^n·id at %d", i)
		}
	}
}

func TestComplexityIdentityZero(t *testing.T) {
	for n := 1; n <= 5; n++ {
		if Complexity(perm.Identity(n)) != 0 {
			t.Errorf("identity complexity nonzero at n=%d", n)
		}
	}
}

func TestComplexityMatchesSpectral(t *testing.T) {
	src := rng.New(4)
	for trial := 0; trial < 30; trial++ {
		p := perm.Random(2+src.Intn(4), src)
		if Complexity(p) != ComplexitySpectral(p) {
			t.Fatalf("direct (%d) and spectral (%d) complexity disagree for %s",
				Complexity(p), ComplexitySpectral(p), p)
		}
	}
}

func TestComplexityNOT(t *testing.T) {
	// NOT on wire 0 of 2 wires: output bit 0 differs on all 4 rows.
	p := perm.MustFromInts([]int{1, 0, 3, 2})
	if got := Complexity(p); got != 4 {
		t.Errorf("Complexity(NOT) = %d, want 4", got)
	}
}

func TestSynthesizeSmallFunctions(t *testing.T) {
	src := rng.New(6)
	found := 0
	for trial := 0; trial < 40; trial++ {
		p := perm.Random(3, src)
		res, err := Synthesize(p, 40)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			continue // greedy dead ends are expected (no backtracking)
		}
		found++
		if !res.Circuit.Perm().Equal(p) {
			t.Fatalf("trial %d: wrong circuit", trial)
		}
	}
	// The greedy method should still handle a decent share (the paper
	// says the method "holds promise").
	if found < 38 {
		t.Errorf("greedy spectral found only %d/40", found)
	}
}

func TestSynthesizeIdentity(t *testing.T) {
	res, err := Synthesize(perm.Identity(3), 10)
	if err != nil || !res.Found || res.Circuit.Len() != 0 {
		t.Errorf("identity: %+v, %v", res, err)
	}
}

func TestSynthesizeRejectsInvalid(t *testing.T) {
	if _, err := Synthesize(perm.Perm{0, 0}, 5); err == nil {
		t.Error("invalid permutation should error")
	}
}

func TestSynthesizeLinearFunctions(t *testing.T) {
	// Gray-code-style linear functions are easy for the greedy method.
	size := 16
	p := make(perm.Perm, size)
	for x := 0; x < size; x++ {
		p[x] = uint32(x) ^ uint32(x)>>1
	}
	res, err := Synthesize(p, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("greedy failed on the Gray-code converter")
	}
	if !res.Circuit.Perm().Equal(p) {
		t.Fatal("wrong circuit")
	}
}
