// Package queue provides the max-heap priority queue used by the synthesis
// search (Section IV-C: "A priority queue, implemented as a max heap, is
// utilized to determine which node is processed next").
//
// Ties are broken by insertion order (FIFO), which keeps the search
// deterministic — important both for reproducing runs and for matching the
// behaviour of a sequential C implementation.
package queue

import "sort"

// Queue is a max-heap of values with float64 priorities. The zero value is
// an empty queue ready for use.
type Queue[T any] struct {
	items []entry[T]
	seq   uint64
}

type entry[T any] struct {
	value    T
	priority float64
	seq      uint64
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Clear discards all queued items (used by the restart heuristic).
func (q *Queue[T]) Clear() {
	q.items = q.items[:0]
}

// PruneTo keeps only the k highest-precedence items, discarding the rest.
// The search uses it to bound memory on large functions. A descending-sorted
// array satisfies the max-heap property, so the rebuild is a sort.
func (q *Queue[T]) PruneTo(k int) {
	q.PruneToFunc(k, nil)
}

// PruneToFunc is PruneTo with a callback: discard, if non-nil, is invoked
// once for every dropped item before its slot is released. The search uses
// it to un-register pruned nodes from its transposition table (a pruned
// node was never expanded, so leaving it marked as visited could block the
// only path to an unexplored state) and to recycle their allocations.
func (q *Queue[T]) PruneToFunc(k int, discard func(T)) {
	if len(q.items) <= k {
		return
	}
	sortEntries(q.items)
	tail := q.items[k:]
	for i := range tail {
		if discard != nil {
			discard(tail[i].value)
		}
		tail[i] = entry[T]{}
	}
	q.items = q.items[:k]
}

// sortEntries sorts descending by precedence (priority, then insertion
// order).
func sortEntries[T any](items []entry[T]) {
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if a.priority != b.priority {
			return a.priority > b.priority
		}
		return a.seq < b.seq
	})
}

// Push inserts v with the given priority.
func (q *Queue[T]) Push(v T, priority float64) {
	q.items = append(q.items, entry[T]{value: v, priority: priority, seq: q.seq})
	q.seq++
	q.up(len(q.items) - 1)
}

// Pop removes and returns the highest-priority item. The boolean is false
// when the queue is empty.
func (q *Queue[T]) Pop() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	top := q.items[0].value
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = entry[T]{} // release reference
	q.items = q.items[:last]
	if len(q.items) > 0 {
		q.down(0)
	}
	return top, true
}

// Each calls f for every queued item, in unspecified (heap-array) order.
// The search uses it to rebuild memory accounting after a prune.
func (q *Queue[T]) Each(f func(T)) {
	for i := range q.items {
		f(q.items[i].value)
	}
}

// Ordered calls f for every queued item in precedence order: highest
// priority first, FIFO among ties — exactly the order Pop would drain them.
// It sorts the backing array in place, which is safe mid-search because a
// descending-sorted array satisfies the max-heap property (the same fact
// PruneTo relies on). The snapshot subsystem uses it to serialize the queue
// so that a rebuilt queue, re-Pushed in this order, pops identically.
func (q *Queue[T]) Ordered(f func(T)) {
	sortEntries(q.items)
	for i := range q.items {
		f(q.items[i].value)
	}
}

// Peek returns the highest-priority item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	return q.items[0].value, true
}

// less reports whether item i has strictly higher precedence than item j:
// higher priority, or equal priority and earlier insertion.
func (q *Queue[T]) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.seq < b.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		best := i
		if l := 2*i + 1; l < n && q.less(l, best) {
			best = l
		}
		if r := 2*i + 2; r < n && q.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
}
