// Package decomp decomposes generalized Toffoli gates into the NCT library
// (NOT, CNOT, 3-bit Toffoli), making the paper's Section II-D discussion
// concrete: "an n-bit Toffoli (n > 3) gate … gates are expected to be
// macros that will be implemented by elementary gates", with the bounds of
// Barenco et al. [12].
//
// Two constructions are implemented, chosen automatically per gate:
//
//   - The V-chain (Barenco Lemma 7.2 shape): a gate with m controls and at
//     least m−2 free wires available as borrowed (dirty) ancillae expands
//     into 4(m−2) three-bit Toffoli gates. Ancillae are restored, so any
//     idle wire qualifies regardless of its value.
//
//   - The recursive split (Barenco Lemma 7.3): with at least one free
//     wire, C^m(X→t) = B A B A where A = C^⌈m/2⌉(X₁→a) and
//     B = C^(m−⌈m/2⌉+1)(X₂∪{a}→t); each half recursively decomposes,
//     using the other half's controls as its borrowed ancillae.
//
// A gate with no free wire at all (m = wires−1, wires ≥ 4) is *provably*
// not decomposable over NCT: it is an odd permutation (it transposes one
// pair of rows), while on four or more wires every NOT, CNOT, and TOF3
// flips 2^(wires−1), 2^(wires−2), resp. 2^(wires−3) ≥ 2 rows — all even
// permutations — so no cascade of them is odd. Decompose returns
// ErrNoAncilla in that case; the caller must widen the circuit.
package decomp

import (
	"errors"
	"fmt"

	"repro/internal/bits"
	"repro/internal/circuit"
)

// ErrNoAncilla reports a gate that uses every wire of the circuit: such a
// gate is an odd permutation and cannot be built from NCT gates on the
// same wires (see the package comment for the parity argument).
var ErrNoAncilla = errors.New("decomp: gate touches every wire; NCT decomposition needs a free wire (parity obstruction)")

// Decompose expands one generalized Toffoli gate into an equivalent NCT
// cascade on the same number of wires. Gates already in NCT are returned
// unchanged (as a single-gate cascade).
func Decompose(g circuit.Gate, wires int) (*circuit.Circuit, error) {
	if !g.Valid(wires) {
		return nil, fmt.Errorf("decomp: invalid gate %s on %d wires", g, wires)
	}
	out := circuit.New(wires)
	if err := emit(out, g); err != nil {
		return nil, err
	}
	return out, nil
}

// DecomposeCircuit expands every gate of a cascade into NCT.
func DecomposeCircuit(c *circuit.Circuit) (*circuit.Circuit, error) {
	out := circuit.New(c.Wires)
	for _, g := range c.Gates {
		if err := emit(out, g); err != nil {
			return nil, fmt.Errorf("decomp: gate %s: %w", g, err)
		}
	}
	return out, nil
}

// emit appends the NCT expansion of g to out.
func emit(out *circuit.Circuit, g circuit.Gate) error {
	m := bits.Count(g.Controls)
	if m <= 2 {
		out.Append(g)
		return nil
	}
	used := g.Controls | bits.Bit(g.Target)
	var free []int
	for w := 0; w < out.Wires; w++ {
		if !bits.Has(used, w) {
			free = append(free, w)
		}
	}
	if len(free) == 0 {
		return ErrNoAncilla
	}
	if len(free) >= m-2 {
		vChain(out, g, free)
		return nil
	}
	return split(out, g, free[0])
}

// vChain emits the 4(m−2)-Toffoli borrowed-ancilla network.
func vChain(out *circuit.Circuit, g circuit.Gate, free []int) {
	controls := bits.Vars(g.Controls) // x1 … xm, ascending
	m := len(controls)
	anc := free[:m-2] // a1 … a(m−2)

	// G0 = T(xm, a(m−2) → t); Gj = T(x(m−j), a(m−2−j) → a(m−1−j));
	// G(m−2) = T(x2, x1 → a1). Network: G0 B G0 B with
	// B = G1 … G(m−3) G(m−2) G(m−3) … G1.
	g0 := circuit.NewGate(g.Target, controls[m-1], anc[m-3])
	var inner []circuit.Gate
	for j := 1; j <= m-3; j++ {
		inner = append(inner, circuit.NewGate(anc[m-2-j], controls[m-1-j], anc[m-3-j]))
	}
	last := circuit.NewGate(anc[0], controls[1], controls[0])
	b := append(append(append([]circuit.Gate{}, inner...), last), reversed(inner)...)

	out.Append(g0)
	out.Append(b...)
	out.Append(g0)
	out.Append(b...)
}

// split emits the recursive two-halves network B A B A around ancilla a.
func split(out *circuit.Circuit, g circuit.Gate, a int) error {
	controls := bits.Vars(g.Controls)
	m := len(controls)
	m1 := (m + 1) / 2
	var x1, x2 bits.Mask
	for i, c := range controls {
		if i < m1 {
			x1 |= bits.Bit(c)
		} else {
			x2 |= bits.Bit(c)
		}
	}
	gateA := circuit.Gate{Target: a, Controls: x1}
	gateB := circuit.Gate{Target: g.Target, Controls: x2 | bits.Bit(a)}
	for _, sub := range []circuit.Gate{gateB, gateA, gateB, gateA} {
		if err := emit(out, sub); err != nil {
			return err
		}
	}
	return nil
}

func reversed(gs []circuit.Gate) []circuit.Gate {
	out := make([]circuit.Gate, len(gs))
	for i, g := range gs {
		out[len(gs)-1-i] = g
	}
	return out
}

// NCTCost returns the number of three-bit-Toffoli-equivalent elementary
// blocks in the NCT expansion of a gate with the given size on the given
// circuit width: a macro-level counterpart of the quantum-cost table in
// internal/circuit (which counts optimized elementary operations rather
// than TOF3 macros).
func NCTCost(size, wires int) (int, error) {
	if size <= 3 {
		return 1, nil
	}
	g := circuit.Gate{Target: 0}
	for c := 1; c < size; c++ {
		g.Controls |= bits.Bit(c)
	}
	c, err := Decompose(g, wires)
	if err != nil {
		return 0, err
	}
	return c.Len(), nil
}
