package core

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/queue"
)

// Result reports the outcome of a synthesis run.
type Result struct {
	// Circuit is the best cascade found (nil when Found is false). Gates
	// appear in input→output order; gate k realizes the k-th substitution
	// on the path from the search-tree root to the best solution node.
	Circuit *circuit.Circuit
	// Found reports whether any solution was found within the limits.
	Found bool
	// Steps is the number of node expansions (priority-queue pops).
	Steps int
	// Nodes is the number of search-tree nodes created (enqueued children
	// plus solutions; candidates pruned before allocation are not
	// counted).
	Nodes int
	// Restarts is how many times the restart heuristic fired.
	Restarts int
	// Elapsed is the wall-clock synthesis time.
	Elapsed time.Duration
	// StopReason records why the run returned; Found and StopReason are
	// independent (a run can be canceled after finding its best circuit,
	// in which case Found is true and StopReason is StopCanceled).
	StopReason StopReason
	// PeakQueueBytes is the approximate high-water memory of queued
	// search nodes (node structs plus materialized expansions) plus the
	// transposition table, in bytes. See Options.MaxMemory for what the
	// estimate covers.
	PeakQueueBytes int64
	// DedupHits counts candidate children pruned by the transposition
	// table: their full PPRM state had already been queued or solved at
	// the same or a shallower depth. Zero when Options.Dedup is off.
	DedupHits int64
	// DedupMisses counts transposition-table probes that found no
	// equal-or-shallower entry; DedupHits+DedupMisses is the total number
	// of probed candidates. Zero when Options.Dedup is off.
	DedupMisses int64
	// DedupEvictions counts transposition-table entries dropped by
	// restarts, the DedupMaxEntries cap, or memory-pressure resets. Zero
	// when Options.Dedup is off.
	DedupEvictions int64
	// Resumed reports that this run continued from a checkpoint
	// (ResumeContext) rather than starting fresh. Counters (Steps, Nodes,
	// Restarts, the dedup counters) and Elapsed are cumulative across all
	// segments of the run.
	Resumed bool
	// Checkpoints is how many snapshots this segment wrote successfully,
	// including the final flush on a resumable stop. Zero when
	// Options.Checkpoint is unset.
	Checkpoints int
	// CheckpointErrors is how many snapshot writes failed this segment.
	// Failures never stop the search — resumability degrades, the job
	// does not — so a nonzero count with Found=true means "answer is
	// good, durability was not"; callers deciding whether to trust resume
	// state should look here (and at Checkpoint.OnError for the errors
	// themselves).
	CheckpointErrors int
	// CacheHit reports that the circuit came from the canonical-form
	// answer cache (Options.Cache) — derived by conjugating a stored
	// cascade and re-verified — rather than from a search. Steps, Nodes,
	// and the other search counters are zero on a hit.
	CacheHit bool
	// CanonicalClass is the canonical-form class hash of the input
	// specification (see internal/canon). Nonzero only when Options.Cache
	// was consulted; equal classes mean the specifications are equivalent
	// up to wire relabeling and polarity (exactly so for ≤3 variables,
	// one-sidedly above).
	CanonicalClass uint64
	// Verified reports that the independent post-synthesis gate
	// (internal/verify) re-simulated Circuit gate by gate and its
	// permutation matches the input specification. False when no circuit
	// was found or when the gate was skipped — Options.SkipVerify set, or
	// the function too wide to tabulate (verify.Feasible). A found circuit
	// with Verified false is unchecked, not wrong; a circuit that fails the
	// gate never reaches the caller (StopVerifyFailed instead).
	Verified bool
	// Workers is the number of search goroutines the run actually used:
	// 0 for the classic sequential engine, Options.Workers otherwise. The
	// deterministic-merge engine's other counters are identical for every
	// Workers value; the free-running engine's Steps/Nodes sum its
	// workers' counters and can differ run to run.
	Workers int
	// Steals counts work items taken from a peer's queue by an idle
	// worker (free-running engine only; zero otherwise).
	Steals int64
	// Idles counts empty-handed scans — an idle worker finding neither
	// local work nor anything to steal (free-running engine only).
	Idles int64
	// Err is non-nil only when the run was aborted by a recovered internal
	// invariant panic (StopReason == StopInternalError). The rest of the
	// Result is zero in that case; the process survives.
	Err error
}

// Synthesize runs the RMRLS search on a PPRM expansion and returns the best
// Toffoli cascade found. The input Spec is not modified. It is equivalent
// to SynthesizeContext with context.Background().
func Synthesize(spec *pprm.Spec, opts Options) Result {
	return SynthesizeContext(context.Background(), spec, opts)
}

// SynthesizeContext is Synthesize with cancellation: the search polls
// ctx.Done() alongside its wall-clock deadline every pollStride expansions,
// so a cancel is observed within a bounded (and small) amount of work. On
// cancellation the Result carries StopReason == StopCanceled together with
// the best-so-far circuit and the usual telemetry — a canceled run still
// yields a usable partial answer, matching the paper's best-so-far
// reporting under its wall-clock timer.
//
// Internal invariant panics (pprm, circuit) are recovered and converted
// into a Result with Err set instead of killing the process, so a server
// or portfolio driving many searches survives a single bad attempt.
func SynthesizeContext(ctx context.Context, spec *pprm.Spec, opts Options) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{
				StopReason: StopInternalError,
				Err:        fmt.Errorf("core: synthesis aborted by internal error: %v", r),
			}
			if opts.Observe != nil {
				opts.Observe.Finish(StopInternalError.String())
			}
		}
	}()
	hit, probe, ok := cacheLookup(spec, &opts)
	if ok {
		return hit
	}
	s := newSearcher(spec, opts)
	s.done = ctx.Done()
	return cacheStore(probe, &opts, verifyGate(spec, &opts, s.runEngine()))
}

// SynthesizePerm synthesizes a reversible function given as a permutation:
// it computes the canonical PPRM expansion and searches. The error is
// non-nil only if p is not a valid reversible function.
func SynthesizePerm(p perm.Perm, opts Options) (Result, error) {
	return SynthesizePermContext(context.Background(), p, opts)
}

// SynthesizePermContext is SynthesizePerm with cancellation; see
// SynthesizeContext for the cancellation contract.
func SynthesizePermContext(ctx context.Context, p perm.Perm, opts Options) (Result, error) {
	spec, err := pprm.FromPerm(p)
	if err != nil {
		return Result{}, err
	}
	return SynthesizeContext(ctx, spec, opts), nil
}

// node is one vertex of the search tree. Interior nodes keep only the
// substitution that created them (the paper's memory optimization); the
// PPRM expansion is held only while the node waits in the priority queue
// and is released on expansion.
type node struct {
	parent   *node
	spec     *pprm.Spec
	id       int
	target   int
	factor   bits.Mask
	depth    int
	terms    int
	elim     int // per-step: parent.terms − terms
	priority float64
	mem      int64  // approximate bytes charged when queued (see memOf)
	hash     uint64 // transposition hash of the node's PPRM state
}

// nodeBytes approximates the resident size of one node struct plus its
// priority-queue entry. Exactness does not matter — the memory ceiling is
// the paper's coarse 768-MB abort condition, not an allocator.
const nodeBytes = 96 + 32

// memOf estimates the bytes a node pins while it waits in the queue: its
// own struct plus its materialized PPRM expansion, if any (most queued
// nodes are lazy and carry none). Ancestor expansions kept alive through
// the parent chain are shared among many queued nodes and are not charged;
// the estimate is deliberately a lower bound, like the node-count stand-in
// it replaces, but it scales with expansion size instead of pretending all
// nodes cost the same.
func memOf(n *node) int64 {
	b := int64(nodeBytes)
	if n.spec != nil {
		b += n.spec.MemBytes()
	}
	return b
}

type searcher struct {
	opts               Options
	alpha, beta, gamma float64
	n                  int
	initTerms          int
	pq                 queue.Queue[*node]
	root               *node
	bestDepth          int
	bestSol            *node
	steps              int
	stepsSinceRestart  int
	solSteps           int
	nodes              int
	restarts           int
	firstMoves         []firstMove
	nextFirstMove      int
	deadline           time.Time
	hasDeadline        bool
	done               <-chan struct{} // ctx.Done(); nil = not cancellable
	pollIn             int             // expansions until the next limit poll
	queueBytes         int64           // approximate bytes of queued nodes
	peakBytes          int64
	maxGates           int
	tt                 *transpo // transposition table; nil when Dedup is off
	free               []*node  // recycled node structs (allocation diet)
	gen                genResult
	steals, idles      int64 // free-running engine telemetry, folded in after the pool run
	factorBuf          []bits.Mask
	deltaBuf           []bits.Mask

	// stepHook, when non-nil, runs at the top of every search-loop
	// iteration. Test-only: invariant checks (byte accounting, watermark
	// monotonicity) hook in here without perturbing the search itself.
	stepHook func(*searcher)

	// Checkpoint/resume state (see state.go). startTime is this segment's
	// run() entry; prevElapsed is the wall-clock accumulated by earlier
	// segments, so prevElapsed+time.Since(startTime) is the cumulative
	// elapsed the snapshot format stores and Result reports.
	startTime     time.Time
	prevElapsed   time.Duration
	resumed       bool
	ckptCount     int
	ckptErrs      int
	lastCkptSteps int
	lastCkptTime  time.Time
	ckptTimeIn    int // expansions until the next wall-clock cadence check
}

type firstMove struct {
	target   int
	factor   bits.Mask
	priority float64
}

type scored struct {
	factor   bits.Mask
	terms    int
	elim     int
	priority float64
	hash     uint64 // child state hash (SubstituteProbe)
	admit    bool
}

func newSearcher(spec *pprm.Spec, opts Options) *searcher {
	s := &searcher{opts: opts, n: spec.N}
	s.alpha, s.beta, s.gamma = opts.weights()
	s.initTerms = spec.Terms()
	s.maxGates = opts.MaxGates
	if s.maxGates <= 0 {
		// Under AdmitAll the priority's α·depth term favors depth-first
		// descent, so an unbounded search could dive forever down a
		// fruitless path. Cap the depth generously: no function in the
		// paper's entire evaluation needs more than 2^(n+1) gates.
		s.maxGates = 1 << uint(min(spec.N+1, 12))
	}
	s.bestDepth = s.maxGates + 1
	s.root = &node{
		parent:   nil,
		spec:     spec.Clone(),
		id:       0,
		target:   -1,
		depth:    0,
		terms:    s.initTerms,
		priority: math.Inf(1),
	}
	s.nodes = 1
	if opts.Dedup {
		s.tt = newTranspo(opts.dedupMaxEntries())
		s.root.hash = s.root.spec.Hash()
		s.tt.record(s.root.hash, 0)
	}
	if opts.TimeLimit > 0 {
		s.deadline = time.Now().Add(opts.TimeLimit)
		s.hasDeadline = true
	}
	s.pollIn = 1 // poll on the first expansion, then every pollStride
	return s
}

// pollStride is the number of node expansions between deadline/context
// polls. The countdown is decremented once per priority-queue pop (after
// the pop, so a restart that reseeds the queue cannot postpone the next
// poll; the previous code checked s.steps&15 before the pop and so ran a
// full stride blind after every reseed). Cancellation latency is therefore
// bounded by pollStride expansions — microseconds to low milliseconds on
// benchmark-sized specs — plus one poll on the very first expansion so an
// already-expired deadline or pre-canceled context never starts real work.
const pollStride = 64

// interrupted polls the wall-clock deadline and the caller's context on
// the pollStride schedule. It is the single place both limits are checked.
func (s *searcher) interrupted() (StopReason, bool) {
	s.pollIn--
	if s.pollIn > 0 {
		return StopNone, false
	}
	s.pollIn = pollStride
	s.observe()
	if s.done != nil {
		select {
		case <-s.done:
			return StopCanceled, true
		default:
		}
	}
	if s.hasDeadline && time.Now().After(s.deadline) {
		return StopDeadline, true
	}
	return StopNone, false
}

// observe stores the searcher's counters into the attached obs.Run. It runs
// only at pollStride boundaries (the caller is interrupted) and at run
// start/finish — never per node — so observed and unobserved searches pop,
// expand, and solve identically; the only cost is a dozen atomic stores per
// stride.
func (s *searcher) observe() {
	o := s.opts.Observe
	if o == nil {
		return
	}
	c := obs.Counters{
		Steps:      int64(s.steps),
		Nodes:      int64(s.nodes),
		Restarts:   int64(s.restarts),
		QueueLen:   int64(s.pq.Len()),
		QueueBytes: s.queueBytes,
		TotalBytes: s.totalBytes(),
		PeakBytes:  s.peakBytes,
		Steals:     s.steals,
		Idles:      s.idles,
	}
	if s.tt != nil {
		c.DedupHits = s.tt.hits
		c.DedupMisses = s.tt.misses
		c.DedupEvictions = s.tt.evictions
	}
	o.Update(c)
}

// observeSolution reports a strictly improved circuit to the attached Run.
// Solutions are rare, so materializing the cascade for its quantum cost is
// off the hot path.
func (s *searcher) observeSolution(sol *node) {
	o := s.opts.Observe
	if o == nil {
		return
	}
	o.Solution(sol.depth, s.extract(sol).QuantumCost())
}

// exhaustionReason classifies a search whose queue drained and whose
// restart heuristic declined to reseed it: if restarts were never
// configured (or never had an alternative first move to try) the searched
// subspace itself is empty; otherwise the restart budget ran out.
func (s *searcher) exhaustionReason() StopReason {
	if s.opts.MaxSteps <= 0 {
		return StopQueueExhausted
	}
	if s.opts.MaxRestarts > 0 && s.restarts >= s.opts.MaxRestarts {
		return StopRestartsExhausted
	}
	if s.restarts > 0 && s.nextFirstMove >= len(s.firstMoves) {
		return StopRestartsExhausted
	}
	return StopQueueExhausted
}

// newNode hands out a node struct, reusing one from the free list when
// available. The hot path allocates one node per *pushed* child; recycled
// depth-cutoff pops and queue prunes feed the list, so steady-state search
// churn stays off the garbage collector.
func (s *searcher) newNode() *node {
	if k := len(s.free); k > 0 {
		nd := s.free[k-1]
		s.free = s.free[:k-1]
		*nd = node{}
		return nd
	}
	return &node{}
}

// recycle returns a node to the free list. Only nodes that provably have
// no remaining references may be recycled: queued-but-unexpanded nodes
// dropped by a prune or restart, and popped nodes discarded by the
// best-depth cutoff before expansion (they have no children, and solutions
// are never queued, so nothing points at them).
func (s *searcher) recycle(nd *node) {
	nd.parent = nil
	nd.spec = nil
	s.free = append(s.free, nd)
}

// discardQueued releases a queued-but-unexpanded node dropped by a queue
// or memory prune: its transposition entry is removed (it was never
// expanded — leaving it marked as visited could block the only remaining
// path to that state) and its struct is recycled.
func (s *searcher) discardQueued(n *node) {
	if s.tt != nil {
		s.tt.forget(n.hash, n.depth)
	}
	s.recycle(n)
}

// totalBytes is the MaxMemory estimate: queued nodes plus the
// transposition table.
func (s *searcher) totalBytes() int64 {
	b := s.queueBytes
	if s.tt != nil {
		b += s.tt.bytes()
	}
	return b
}

// push queues a node, charges its approximate memory, and records its
// state in the transposition table so later rediscoveries at the same or
// greater depth are pruned.
func (s *searcher) push(n *node) {
	n.mem = memOf(n)
	s.queueBytes += n.mem
	if s.tt != nil {
		s.tt.record(n.hash, n.depth)
	}
	s.notePeak()
	s.pq.Push(n, n.priority)
}

// notePeak advances the high-water memory mark. The watermark is monotone
// within an attempt by construction: it only ever ratchets upward, and
// every byte source feeding totalBytes charges a node exactly once (a
// popped node's charge is released on pop and re-charged only by the
// cancellation rollback, which happens at most once per node and is
// followed immediately by run exit — never by another push of the same
// node within the attempt).
func (s *searcher) notePeak() {
	if t := s.totalBytes(); t > s.peakBytes {
		s.peakBytes = t
	}
}

// recountQueueBytes rebuilds the memory estimate after a prune discarded
// an unknown subset of the queue.
func (s *searcher) recountQueueBytes() {
	s.queueBytes = 0
	s.pq.Each(func(n *node) { s.queueBytes += n.mem })
}

// overMemory enforces Options.MaxMemory, the byte-accounted version of the
// paper's 768-MB ceiling: when the estimate (queued nodes plus the
// transposition table) exceeds the limit the lowest-priority half of the
// queue is discarded (graceful degradation, same policy as MaxQueue); if
// that is not enough the transposition table is dropped too; if even that
// cannot get back under the ceiling the search must stop, and reports
// StopMemoryLimit.
func (s *searcher) overMemory() bool {
	limit := s.opts.MaxMemory
	if limit <= 0 || s.totalBytes() <= limit {
		return false
	}
	keep := s.pq.Len() / 2
	if keep > 0 {
		s.pq.PruneToFunc(keep, s.discardQueued)
		s.recountQueueBytes()
	}
	if s.totalBytes() <= limit {
		return false
	}
	if s.tt != nil && s.tt.bytes() > 0 {
		s.tt.reset()
		s.rerecordQueued()
	}
	return s.totalBytes() > limit
}

// rerecordQueued re-seeds a freshly cleared transposition table with the
// states that are still queued (plus the root and best solution), so the
// invariant "every queued node's state is recorded" survives a reset.
func (s *searcher) rerecordQueued() {
	if s.tt == nil {
		return
	}
	s.tt.record(s.root.hash, 0)
	if s.bestSol != nil {
		s.tt.record(s.bestSol.hash, s.bestSol.depth)
	}
	s.pq.Each(func(n *node) { s.tt.record(n.hash, n.depth) })
}

// begin runs the shared run prologue: segment timing, the Observe Begin
// event, the trivial-identity early exit, and (on a fresh run) seeding the
// queue with the root. done is true when the search is already over and
// res is the final Result.
func (s *searcher) begin() (res Result, done bool) {
	s.startTime = time.Now()
	s.lastCkptTime = s.startTime
	if o := s.opts.Observe; o != nil {
		o.Begin(int64(s.opts.TotalSteps), s.opts.TimeLimit, s.opts.MaxMemory)
	}
	if s.resumed {
		if s.bestSol != nil {
			// A resumed run may already hold a best-so-far circuit; report it
			// so the first snapshot does not pretend the run is solution-less.
			s.observeSolution(s.bestSol)
		}
		return Result{}, false
	}
	if s.root.spec.IsIdentity() {
		if o := s.opts.Observe; o != nil {
			o.Solution(0, 0)
			o.Finish(StopSolved.String())
		}
		return Result{Circuit: circuit.New(s.n), Found: true, Nodes: 1,
			Elapsed: time.Since(s.startTime), StopReason: StopSolved}, true
	}
	s.emit(EventPush, s.root)
	s.push(s.root)
	return Result{}, false
}

// finish runs the shared run epilogue: the final checkpoint flush on a
// resumable stop, Result assembly from the searcher's counters, and the
// closing Observe update. pending, when non-nil, is a node popped but not
// yet expanded when a cancellation arrived (sequential engine only); it is
// handed to the final checkpoint as the head of the queue.
func (s *searcher) finish(stop StopReason, pending *node) Result {
	if resumableStop(stop) {
		// The run can be continued later: flush a final checkpoint so the
		// on-disk state matches the exact step boundary we stopped at.
		// Non-resumable stops (solved, exhausted) leave the previous
		// periodic checkpoint in place; callers delete it on success.
		s.writeCheckpoint(pending)
	}
	res := Result{
		Steps:            s.steps,
		Nodes:            s.nodes,
		Restarts:         s.restarts,
		Elapsed:          s.prevElapsed + time.Since(s.startTime),
		StopReason:       stop,
		PeakQueueBytes:   s.peakBytes,
		Resumed:          s.resumed,
		Checkpoints:      s.ckptCount,
		CheckpointErrors: s.ckptErrs,
		Steals:           s.steals,
		Idles:            s.idles,
	}
	if s.tt != nil {
		res.DedupHits = s.tt.hits
		res.DedupMisses = s.tt.misses
		res.DedupEvictions = s.tt.evictions
	}
	if s.bestSol != nil {
		res.Found = true
		res.Circuit = s.extract(s.bestSol)
	}
	if o := s.opts.Observe; o != nil {
		s.observe() // final counters, so the last snapshot is exact
		o.Finish(stop.String())
	}
	return res
}

// runEngine dispatches to the engine selected by Options.Workers; see
// Options.Workers and Options.FreeRunning.
func (s *searcher) runEngine() Result {
	switch s.opts.parallelMode() {
	case parBatch:
		return s.runBatched()
	case parFree:
		return s.runFree()
	default:
		return s.run()
	}
}

func (s *searcher) run() Result {
	if res, done := s.begin(); done {
		return res
	}
	stop := StopNone
	// pending is a node popped but not yet expanded when a cancellation
	// arrived: its half-finished step is rolled back so the final
	// checkpoint records the clean "about to pop this node" state.
	var pending *node

	for {
		if s.stepHook != nil {
			s.stepHook(s)
		}
		s.maybeCheckpoint()
		if s.opts.TotalSteps > 0 && s.steps >= s.opts.TotalSteps {
			stop = StopStepLimit
			break
		}
		if s.bestSol != nil {
			if s.opts.FirstSolution {
				stop = StopSolved
				break
			}
			if s.opts.ImproveSteps > 0 && s.steps-s.solSteps >= s.opts.ImproveSteps {
				stop = StopSolved
				break
			}
		}
		if s.opts.MaxSteps > 0 && s.stepsSinceRestart >= s.opts.MaxSteps && s.bestSol == nil {
			if !s.restart() {
				stop = s.exhaustionReason()
				break
			}
		}
		parent, ok := s.pq.Pop()
		if !ok {
			if s.bestSol == nil && s.restart() {
				continue
			}
			if s.bestSol != nil {
				stop = StopSolved
			} else {
				stop = s.exhaustionReason()
			}
			break
		}
		s.queueBytes -= parent.mem
		s.steps++
		s.stepsSinceRestart++
		if r, halt := s.interrupted(); halt {
			stop = r
			// Roll the half-finished step back: un-count the pop and hand
			// the node to the final checkpoint as the head of the queue,
			// so the resumed run re-pops it as its first step and the
			// interrupted/uninterrupted traces stay identical.
			s.steps--
			s.stepsSinceRestart--
			s.queueBytes += parent.mem
			pending = parent
			break
		}
		s.emit(EventPop, parent)
		// A node this deep cannot lead to a circuit better than the best
		// already found (its children would need depth ≥ bestDepth). It
		// was never expanded, so nothing references it: recycle. Its
		// transposition entry stays — any rediscovery at this depth or
		// deeper would be cut here too (bestDepth only decreases).
		if parent.depth >= s.bestDepth-1 {
			s.recycle(parent)
			continue
		}
		s.expand(parent)
		if s.pq.Len() > s.opts.maxQueue() {
			s.pq.PruneToFunc(s.opts.maxQueue()/2, s.discardQueued)
			s.recountQueueBytes()
		}
		if s.overMemory() {
			stop = StopMemoryLimit
			break
		}
	}

	return s.finish(stop, pending)
}

// restart implements the Section IV-E heuristic: abandon the current
// search frontier and re-enter the tree through the next-best untried
// first-level substitution.
func (s *searcher) restart() bool {
	if s.opts.MaxSteps <= 0 {
		return false
	}
	if s.opts.MaxRestarts > 0 && s.restarts >= s.opts.MaxRestarts {
		return false
	}
	if s.nextFirstMove >= len(s.firstMoves) {
		return false
	}
	fm := s.firstMoves[s.nextFirstMove]
	s.nextFirstMove++
	s.restarts++
	s.stepsSinceRestart = 0
	// Queued nodes are unexpanded leaves — nothing references them once
	// the queue is cleared, so they feed the free list. The transposition
	// table is dropped wholesale: the restart exists to re-explore from a
	// different first move, and "visited" marks inherited from the
	// abandoned frontier would defeat it.
	s.pq.Each(s.recycle)
	s.pq.Clear()
	s.queueBytes = 0
	if s.tt != nil {
		s.tt.reset()
		s.tt.record(s.root.hash, 0)
	}

	cs, delta := s.root.spec.SubstituteCopy(fm.target, fm.factor)
	child := s.newNode()
	*child = node{
		parent: s.root,
		spec:   cs,
		id:     s.nodes,
		target: fm.target,
		factor: fm.factor,
		depth:  1,
		terms:  s.root.terms + delta,
		elim:   -delta,
	}
	if s.tt != nil {
		child.hash = cs.Hash()
	}
	s.nodes++
	child.priority = s.priorityOf(child)
	s.emit(EventRestart, child)
	s.emit(EventPush, child)
	s.push(child)
	return true
}

func (s *searcher) priorityOf(c *node) float64 {
	return s.priority(c.depth, c.terms, c.elim, c.factor)
}

// priority evaluates Eq. (4) (or its linear variant) for a node at the
// given depth with the given expansion size.
func (s *searcher) priority(depth, terms, elimStep int, factor bits.Mask) float64 {
	elim := s.initTerms - terms
	if s.opts.PerStepElim {
		elim = elimStep
	}
	d := float64(depth)
	b := float64(elim)
	if !s.opts.LinearElim {
		b /= d
	}
	return s.alpha*d + s.beta*b - s.gamma*float64(bits.Count(factor))
}

// expand generates, scores, prunes, and queues the children of parent
// (lines 18–33 of Fig. 4 plus the Section IV-D/E extensions). It is split
// into a generation half (generate: scoring, sorting, and the solution
// identity checks — pure spec math with no searcher-global state) and a
// commit half (commit: admission, transposition probes, queue pushes) so
// the parallel engines can run many generations concurrently while every
// table and queue mutation stays on one goroutine. The sequential search
// runs the two halves back to back, which performs the same operations in
// the same order as the previous fused loop.
func (s *searcher) expand(parent *node) {
	s.generate(parent, &s.gen)
	s.commit(parent, &s.gen)
}

// pcand is one generated candidate child: its score plus the solution
// prework. For candidates that could complete a circuit (terms == n) the
// generation half materializes the expansion and runs the identity check
// up front, so the commit half never has to touch spec math.
type pcand struct {
	scored
	sol      *pprm.Spec // materialized expansion when terms == n and not the identity
	identity bool       // terms == n and the expansion is the identity
}

// genTarget collects the sorted candidates for one substitution target.
type genTarget struct {
	target int
	cands  []pcand
}

// genResult is one expansion's generated children, grouped per target in
// target order. The backing arrays (outer and inner) are reused across
// expansions: next re-extends within capacity so the inner cands slices
// keep their storage.
type genResult struct {
	targets []genTarget
}

func (gr *genResult) reset() { gr.targets = gr.targets[:0] }

func (gr *genResult) next(target int) *genTarget {
	if len(gr.targets) < cap(gr.targets) {
		gr.targets = gr.targets[:len(gr.targets)+1]
	} else {
		gr.targets = append(gr.targets, genTarget{})
	}
	tg := &gr.targets[len(gr.targets)-1]
	tg.target = target
	tg.cands = tg.cands[:0]
	return tg
}

// generate scores every candidate substitution of parent into gr: one
// probe per candidate, priorities, the per-target stable sort, and the
// materialization + identity check for solution-possible candidates.
// It materializes parent's own expansion first if the node was queued
// lazily. It reads only the parent chain (immutable once expanded) and
// the searcher's scoring configuration and scratch buffers — never the
// queue, the transposition table, or any counter — so distinct searchers
// may generate distinct parents concurrently.
func (s *searcher) generate(parent *node, gr *genResult) {
	gr.reset()
	if parent.spec == nil {
		// Lazy materialization (the paper's memory optimization, one
		// step further: queued nodes store only their substitution).
		// The parent chain keeps expansions alive, so one
		// copy-on-write substitution reconstructs this node's.
		parent.spec, _ = parent.parent.spec.SubstituteCopy(parent.target, parent.factor)
	}
	spec := parent.spec
	childDepth := parent.depth + 1
	for target := 0; target < s.n; target++ {
		factors := s.factorsFor(spec, target)
		if len(factors) == 0 {
			continue
		}
		tg := gr.next(target)
		for _, f := range factors {
			// Re-applying the parent's own substitution would cancel it:
			// two identical adjacent Toffoli gates are the identity.
			if target == parent.target && f == parent.factor {
				continue
			}
			// One merge-count pass scores the candidate and (for the
			// transposition table) hashes the state it would create,
			// without materializing anything.
			var delta int
			var hash uint64
			delta, hash, s.deltaBuf = spec.SubstituteProbe(target, f, s.deltaBuf)
			childTerms := parent.terms + delta
			tg.cands = append(tg.cands, pcand{scored: scored{
				factor: f,
				terms:  childTerms,
				elim:   -delta,
				hash:   hash,
				admit:  s.admit(f, childTerms, -delta),
			}})
		}
		for i := range tg.cands {
			c := &tg.cands[i]
			c.priority = s.priority(childDepth, c.terms, c.elim, c.factor)
		}
		slices.SortStableFunc(tg.cands, func(a, b pcand) int {
			switch {
			case a.priority > b.priority:
				return -1
			case a.priority < b.priority:
				return 1
			default:
				return 0
			}
		})
		for i := range tg.cands {
			c := &tg.cands[i]
			// A child can only be the identity (a solution) if it has
			// exactly one term per output; the commit half needs the
			// materialized expansion for those, whether to report the
			// solution or to queue the near-miss with its spec attached.
			if c.terms == s.n {
				cs, _ := spec.SubstituteCopy(target, c.factor)
				if cs.IsIdentity() {
					c.identity = true
				} else {
					c.sol = cs
				}
			}
		}
	}
}

// commit admits, deduplicates, and queues the generated children of
// parent, in generated order. It owns every mutation of searcher-global
// state — queue, transposition table, counters, best solution, first
// moves — which is what makes a sequential merge of concurrently
// generated expansions deterministic.
func (s *searcher) commit(parent *node, gr *genResult) {
	isRoot := parent.depth == 0
	childDepth := parent.depth + 1
	for ti := range gr.targets {
		tg := &gr.targets[ti]
		target := tg.target
		pushed := 0
		for i := range tg.cands {
			c := &tg.cands[i]
			solutionPossible := c.terms == s.n
			inTopK := c.admit && (s.opts.GreedyK <= 0 || pushed < s.opts.GreedyK)
			if !inTopK && !solutionPossible {
				continue
			}
			if !solutionPossible && childDepth >= s.bestDepth-1 {
				// Cannot beat the best circuit (paper: "their children
				// are not added to the queue").
				continue
			}
			// Transposition check (deviation 8, see DESIGN.md): a state
			// already queued or solved at this depth or shallower will be
			// (or was) explored through that node; cloning it again here
			// can only repeat work. A strictly shallower rediscovery
			// misses and supersedes the entry when pushed below.
			if s.tt != nil && s.tt.seen(c.hash, childDepth) {
				continue
			}
			if c.identity {
				if childDepth < s.bestDepth {
					child := s.newNode()
					*child = node{
						parent:   parent,
						id:       s.nodes,
						target:   target,
						factor:   c.factor,
						depth:    childDepth,
						terms:    c.terms,
						elim:     c.elim,
						priority: c.priority,
						hash:     c.hash,
					}
					s.nodes++
					s.bestDepth = childDepth
					s.bestSol = child
					s.solSteps = s.steps
					if s.tt != nil {
						s.tt.record(c.hash, childDepth)
					}
					s.emit(EventSolution, child)
					s.observeSolution(child)
				}
				continue
			}
			if !inTopK || childDepth >= s.bestDepth-1 {
				continue
			}
			child := s.newNode()
			*child = node{
				parent:   parent,
				spec:     c.sol,
				id:       s.nodes,
				target:   target,
				factor:   c.factor,
				depth:    childDepth,
				terms:    c.terms,
				elim:     c.elim,
				priority: c.priority,
				hash:     c.hash,
			}
			s.nodes++
			pushed++
			if isRoot {
				s.firstMoves = append(s.firstMoves, firstMove{
					target: target, factor: c.factor, priority: c.priority,
				})
			}
			s.emit(EventPush, child)
			s.push(child)
		}
	}
	if isRoot {
		// Restarts try alternative first substitutions in decreasing
		// attractiveness; index 0 is the path the initial search follows.
		sort.SliceStable(s.firstMoves, func(i, j int) bool {
			return s.firstMoves[i].priority > s.firstMoves[j].priority
		})
		s.nextFirstMove = 1
	}
}

// admit implements the queue-admission rule (see the Admission type). The
// strict modes keep the Section IV-D exception for v_i = v_i ⊕ 1, which may
// always increase the term count; AdmitBounded subjects it to the same
// growth bound as every other substitution (documented deviation: an
// unconditioned exception re-opens the blind-descent pathology the bound
// exists to prevent).
func (s *searcher) admit(factor bits.Mask, childTerms, elimStep int) bool {
	switch s.opts.Admission {
	case AdmitAll:
		return true
	case AdmitCumulative:
		return (factor == 0 && s.opts.Additional) || s.initTerms-childTerms > 0
	case AdmitPerStep:
		return (factor == 0 && s.opts.Additional) || elimStep > 0
	default:
		slack := s.opts.GrowthSlack
		if slack <= 0 {
			slack = 2
		}
		return childTerms <= s.initTerms+slack || elimStep > 0
	}
}

// factorsFor enumerates the candidate factors for substitutions targeting
// the given variable, in a deterministic order. In the basic algorithm
// (Section IV-A) the bare term v_i must be present in the expansion of
// v_out,i; the additional substitutions (Section IV-D) drop that
// requirement and always offer the constant factor 1.
func (s *searcher) factorsFor(spec *pprm.Spec, target int) []bits.Mask {
	out := &spec.Out[target]
	tb := bits.Bit(target)
	factors := s.factorBuf[:0]
	bare := out.Has(tb)
	sawConst := false
	if bare || s.opts.Additional {
		for _, t := range out.Sorted() {
			if t&tb != 0 {
				continue
			}
			if s.opts.Library == circuit.NCT && bits.Count(t) > 2 {
				continue
			}
			if t == 0 {
				sawConst = true
			}
			factors = append(factors, t)
		}
	}
	if s.opts.Additional && !sawConst {
		factors = append(factors, 0)
	}
	s.factorBuf = factors[:0]
	return factors
}

// extract rebuilds the Toffoli cascade from the solution node: the path
// from the root to the solution lists the substitutions in circuit order
// (first substitution = gate nearest the inputs).
func (s *searcher) extract(sol *node) *circuit.Circuit {
	gates := make([]circuit.Gate, sol.depth)
	for n := sol; n.parent != nil; n = n.parent {
		gates[n.depth-1] = circuit.Gate{Target: n.target, Controls: n.factor}
	}
	c := circuit.New(s.n)
	c.Gates = gates
	return c
}

func (s *searcher) emit(kind EventKind, n *node) {
	if s.opts.Trace == nil {
		return
	}
	parentID := -1
	if n.parent != nil {
		parentID = n.parent.id
	}
	s.emit0(Event{
		Kind:     kind,
		ID:       n.id,
		Parent:   parentID,
		Depth:    n.depth,
		Target:   n.target,
		Factor:   n.factor,
		Terms:    n.terms,
		Elim:     n.elim,
		Priority: n.priority,
	})
}

func (s *searcher) emit0(e Event) { s.opts.Trace(e) }

// Verify checks that the circuit realizes the reversible function p,
// returning a descriptive error on mismatch. Every experiment driver calls
// it before reporting a result.
func Verify(c *circuit.Circuit, p perm.Perm) error {
	if c == nil {
		return fmt.Errorf("core: nil circuit")
	}
	got := c.Perm()
	if !got.Equal(p) {
		return fmt.Errorf("core: circuit %s realizes %s, want %s", c, got, p)
	}
	return nil
}
