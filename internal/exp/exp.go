// Package exp implements the paper's evaluation (Section V): one driver
// per table or figure, each returning structured results that
// cmd/experiments renders as text and bench_test.go exercises as Go
// benchmarks. Every experiment is deterministic given its seed and step
// budgets; EXPERIMENTS.md records the paper-vs-measured comparison.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// Histogram is a gate-count distribution: Counts[g] is the number of
// circuits synthesized with exactly g gates. Failures are tallied by the
// stop reason that ended each fruitless search, so a table's failure
// column is diagnosable (budget ran out vs. space exhausted vs. canceled).
type Histogram struct {
	Counts []int
	Total  int
	Failed int
	Stops  map[core.StopReason]int
}

// Add records a circuit of the given size (-1 for a failure).
func (h *Histogram) Add(gates int) {
	h.Total++
	if gates < 0 {
		h.Failed++
		return
	}
	for len(h.Counts) <= gates {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[gates]++
}

// AddFailure records a failed synthesis together with why it stopped.
func (h *Histogram) AddFailure(reason core.StopReason) {
	h.Add(-1)
	if h.Stops == nil {
		h.Stops = make(map[core.StopReason]int)
	}
	h.Stops[reason]++
}

// StopSummary renders the failure tally as "step-limit×12 canceled×1"
// (empty when no failures carry a reason).
func (h *Histogram) StopSummary() string {
	if len(h.Stops) == 0 {
		return ""
	}
	reasons := make([]core.StopReason, 0, len(h.Stops))
	for r := range h.Stops {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
	parts := make([]string, len(reasons))
	for i, r := range reasons {
		parts[i] = fmt.Sprintf("%s×%d", r, h.Stops[r])
	}
	return strings.Join(parts, " ")
}

// Average returns the mean gate count over successful syntheses.
func (h *Histogram) Average() float64 {
	sum, n := 0, 0
	for g, c := range h.Counts {
		sum += g * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Bucket sums counts in [lo, hi].
func (h *Histogram) Bucket(lo, hi int) int {
	total := 0
	for g := lo; g <= hi && g < len(h.Counts); g++ {
		total += h.Counts[g]
	}
	return total
}

// writeTable renders an aligned text table.
func writeTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func orDash(v int, present bool) string {
	if !present {
		return "—"
	}
	return itoa(v)
}
