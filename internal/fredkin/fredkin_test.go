package fredkin

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/perm"
	"repro/internal/rng"
)

func TestNewGateValidation(t *testing.T) {
	if _, err := NewGate(1, 1); err == nil {
		t.Error("same-wire swap should fail")
	}
	if _, err := NewGate(0, 1, 1); err == nil {
		t.Error("control overlapping swap wire should fail")
	}
	if _, err := NewGate(0, 1, 2); err != nil {
		t.Errorf("valid gate rejected: %v", err)
	}
}

func TestFredkinSemantics(t *testing.T) {
	// The classic 3-bit Fredkin gate with control c swapping a, b is the
	// paper's Example 3 specification {0,1,2,3,4,6,5,7}.
	g, err := NewGate(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := perm.MustFromInts([]int{0, 1, 2, 3, 4, 6, 5, 7})
	for x := uint32(0); x < 8; x++ {
		if g.Apply(x) != want[x] {
			t.Errorf("Apply(%03b) = %03b, want %03b", x, g.Apply(x), want[x])
		}
	}
	if g.Size() != 3 {
		t.Errorf("size = %d", g.Size())
	}
	if g.String() != "FRE3(c;a,b)" {
		t.Errorf("String = %q", g.String())
	}
}

func TestToToffoliMatchesGate(t *testing.T) {
	src := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		n := 3 + src.Intn(3)
		a := src.Intn(n)
		b := (a + 1 + src.Intn(n-1)) % n
		var controls []int
		for w := 0; w < n; w++ {
			if w != a && w != b && src.Bool() {
				controls = append(controls, w)
			}
		}
		g, err := NewGate(a, b, controls...)
		if err != nil {
			t.Fatal(err)
		}
		c := circuit.New(n)
		tg := g.ToToffoli()
		c.Append(tg[0], tg[1], tg[2])
		for x := uint32(0); x < 1<<uint(n); x++ {
			if c.Apply(x) != g.Apply(x) {
				t.Fatalf("trial %d: expansion disagrees at %b", trial, x)
			}
		}
	}
}

func TestRecognizeRoundTrip(t *testing.T) {
	// Example 3's Toffoli circuit TOF3(c,a,b) TOF3(c,b,a) TOF3(c,a,b)
	// must be recognized as a single Fredkin gate.
	c, err := circuit.Parse(3, "TOF3(c,a,b) TOF3(c,b,a) TOF3(c,a,b)")
	if err != nil {
		t.Fatal(err)
	}
	mixed := Recognize(c)
	if mixed.Len() != 1 || mixed.FredkinCount() != 1 {
		t.Fatalf("recognized %s (len %d)", mixed, mixed.Len())
	}
	if mixed.String() != "FRE3(c;b,a)" && mixed.String() != "FRE3(c;a,b)" {
		t.Errorf("mixed = %s", mixed)
	}
	// Semantics preserved in both directions.
	back := mixed.ToToffoli()
	if !back.Perm().Equal(c.Perm()) {
		t.Error("round trip changed the function")
	}
}

func TestRecognizePreservesFunction(t *testing.T) {
	src := rng.New(17)
	for trial := 0; trial < 40; trial++ {
		c := circuit.Random(4, 12, circuit.GT, src)
		mixed := Recognize(c)
		for x := uint32(0); x < 16; x++ {
			if mixed.Apply(x) != c.Apply(x) {
				t.Fatalf("trial %d: recognition changed the function", trial)
			}
		}
		if mixed.Len() > c.Len() {
			t.Fatalf("trial %d: recognition grew the cascade", trial)
		}
	}
}

func TestRecognizeLeavesPlainGates(t *testing.T) {
	c, _ := circuit.Parse(3, "TOF1(a) TOF2(b,c)")
	mixed := Recognize(c)
	if mixed.FredkinCount() != 0 || mixed.Len() != 2 {
		t.Errorf("spurious recognition: %s", mixed)
	}
}

func TestEmptyCascade(t *testing.T) {
	c := &Cascade{Wires: 2}
	if c.String() != "(identity)" || c.Len() != 0 {
		t.Error("empty cascade misbehaves")
	}
}
