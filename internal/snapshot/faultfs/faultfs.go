// Package faultfs is a deterministic fault-injection filesystem for the
// snapshot recovery tests. It wraps a real directory-backed snapshot.FS
// and simulates a process crash at an exact operation index: every
// filesystem operation before the crash point executes normally, the
// operation at the crash point optionally takes partial effect (a torn
// write persists a prefix of its bytes), and every operation after it
// fails — like a process that died mid-checkpoint and whose temp files
// linger. Enumerating crash points 0..Ops() therefore covers every
// crash-at-a-write-point schedule of the checkpoint protocol.
package faultfs

import (
	"errors"
	"sync"

	"repro/internal/snapshot"
)

// ErrInjected is returned by every operation at and after the crash point.
var ErrInjected = errors.New("faultfs: injected crash")

// FS wraps an inner snapshot.FS with a crash schedule. The zero value is
// unusable; use New.
type FS struct {
	inner snapshot.FS

	mu      sync.Mutex
	ops     int
	crashAt int // operation index that crashes; -1 = never
	tear    int // bytes a crashing Write persists before failing
	crashed bool
}

// New returns an FS that executes operations 0..crashAt-1 normally and
// crashes at operation crashAt (-1: never crash). If the crashing
// operation is a Write, tear bytes of it are persisted first — a torn
// write. Operations counted: CreateTemp, each Write, Sync, Close, Rename,
// SyncDir, Remove, ReadFile.
func New(inner snapshot.FS, crashAt, tear int) *FS {
	if inner == nil {
		inner = snapshot.DiskFS
	}
	return &FS{inner: inner, crashAt: crashAt, tear: tear}
}

// Ops returns how many operations have been attempted (including the
// crashing one). Run a schedule with crashAt=-1 first to learn the total.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point was reached.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step consumes one operation slot; it reports whether the operation may
// proceed and, for the crashing operation itself, whether it has partial
// effect.
func (f *FS) step() (proceed, atCrash bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	op := f.ops
	f.ops++
	if f.crashed {
		return false, false
	}
	if f.crashAt >= 0 && op == f.crashAt {
		f.crashed = true
		return false, true
	}
	return true, false
}

func (f *FS) CreateTemp(dir, pattern string) (snapshot.File, error) {
	ok, _ := f.step()
	if !ok {
		return nil, ErrInjected
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	ok, _ := f.step()
	if !ok {
		return ErrInjected
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	ok, _ := f.step()
	if !ok {
		return ErrInjected
	}
	return f.inner.Remove(name)
}

func (f *FS) SyncDir(dir string) error {
	ok, _ := f.step()
	if !ok {
		return ErrInjected
	}
	return f.inner.SyncDir(dir)
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	ok, _ := f.step()
	if !ok {
		return nil, ErrInjected
	}
	return f.inner.ReadFile(name)
}

type faultFile struct {
	fs    *FS
	inner snapshot.File
}

func (f *faultFile) Name() string { return f.inner.Name() }

func (f *faultFile) Write(p []byte) (int, error) {
	ok, atCrash := f.fs.step()
	if !ok {
		if atCrash {
			// Torn write: a prefix of the data reaches the disk before
			// the crash. The file is left behind exactly like a real
			// interrupted write would leave it.
			n := f.fs.tear
			if n > len(p) {
				n = len(p)
			}
			if n > 0 {
				f.inner.Write(p[:n])
			}
			f.inner.Close()
		}
		return 0, ErrInjected
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	ok, _ := f.fs.step()
	if !ok {
		return ErrInjected
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	ok, atCrash := f.fs.step()
	if !ok {
		if atCrash {
			f.inner.Close()
		}
		return ErrInjected
	}
	return f.inner.Close()
}
