package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/snapshot"
	"repro/internal/snapshot/faultfs"
)

// testPerms are small functions whose synthesis takes enough steps to
// interrupt meaningfully. (The full 14-example determinism matrix lives in
// the root package's resume tests; internal/bench imports core, so it
// cannot be imported from here.)
var testPerms = map[string]perm.Perm{
	"fredkin":    perm.MustFromInts([]int{0, 1, 2, 3, 4, 6, 5, 7}),
	"shiftright": perm.MustFromInts([]int{0, 4, 1, 5, 2, 6, 3, 7}),
	"swap4":      perm.MustFromInts([]int{0, 2, 1, 3, 8, 10, 9, 11, 4, 6, 5, 7, 12, 14, 13, 15}),
}

func resumeTestOptions() Options {
	o := DefaultOptions()
	o.MaxSteps = 200 // small enough to pull restarts into the interrupted window
	return o
}

func specFor(t *testing.T, p perm.Perm) *pprm.Spec {
	t.Helper()
	spec, err := pprm.FromPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// compareResults asserts the resumed run reproduced the uninterrupted one.
func compareResults(t *testing.T, label string, full, got Result) {
	t.Helper()
	if got.Found != full.Found || got.Steps != full.Steps || got.Nodes != full.Nodes ||
		got.Restarts != full.Restarts || got.StopReason != full.StopReason ||
		got.DedupHits != full.DedupHits || got.DedupMisses != full.DedupMisses ||
		got.DedupEvictions != full.DedupEvictions || got.PeakQueueBytes != full.PeakQueueBytes {
		t.Fatalf("%s: resumed run diverged:\n full %+v\n got %+v", label, full, got)
	}
	if full.Found {
		if got.Circuit.String() != full.Circuit.String() {
			t.Fatalf("%s: resumed circuit %s != uninterrupted %s", label, got.Circuit, full.Circuit)
		}
	}
}

// TestResumeAfterStepLimit interrupts every test function at a range of
// step budgets via TotalSteps, resumes from the final checkpoint, and
// requires the continuation to be indistinguishable from the uninterrupted
// run — same circuit, same counters, verified by simulation.
func TestResumeAfterStepLimit(t *testing.T) {
	for name, p := range testPerms {
		t.Run(name, func(t *testing.T) {
			spec := specFor(t, p)
			full := Synthesize(spec, resumeTestOptions())
			if !full.Found {
				t.Fatalf("uninterrupted run failed: %+v", full)
			}
			if err := Verify(full.Circuit, p); err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 7, full.Steps / 2, full.Steps - 1} {
				if k < 1 || k >= full.Steps {
					continue
				}
				path := filepath.Join(t.TempDir(), "run.ckpt")
				opts := resumeTestOptions()
				opts.TotalSteps = k
				opts.Checkpoint = Checkpoint{Path: path, EverySteps: 1 << 30}
				seg1 := Synthesize(spec, opts)
				if seg1.StopReason != StopStepLimit {
					t.Fatalf("k=%d: segment 1 stopped for %v", k, seg1.StopReason)
				}
				if seg1.Checkpoints == 0 {
					t.Fatalf("k=%d: no final checkpoint written", k)
				}
				opts.TotalSteps = 0
				got, err := ResumeContext(context.Background(), spec, opts, path)
				if err != nil {
					t.Fatalf("k=%d: resume: %v", k, err)
				}
				if !got.Resumed {
					t.Fatalf("k=%d: result not marked resumed", k)
				}
				compareResults(t, name, full, got)
				if err := Verify(got.Circuit, p); err != nil {
					t.Fatalf("k=%d: resumed circuit fails verification: %v", k, err)
				}
			}
		})
	}
}

// TestResumeAfterCancelMidStep cancels the context from inside the search
// (via the trace hook, between arbitrary pops) so the interrupt lands
// mid-step, and checks the rollback logic hands the pending node back to
// the resumed run without skipping or double-counting it.
func TestResumeAfterCancelMidStep(t *testing.T) {
	p := testPerms["shiftright"]
	spec := specFor(t, p)
	full := Synthesize(spec, resumeTestOptions())
	if !full.Found {
		t.Fatalf("uninterrupted run failed: %+v", full)
	}
	for _, cancelAt := range []int{1, 3, full.Steps - 1} {
		path := filepath.Join(t.TempDir(), "run.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		pops := 0
		opts := resumeTestOptions()
		opts.Checkpoint = Checkpoint{Path: path, EverySteps: 1 << 30}
		opts.Trace = func(e Event) {
			if e.Kind == EventPop {
				pops++
				if pops == cancelAt {
					cancel()
				}
			}
		}
		seg1 := SynthesizeContext(ctx, spec, opts)
		cancel()
		if seg1.StopReason != StopCanceled && seg1.StopReason != StopSolved {
			t.Fatalf("cancelAt=%d: segment 1 stopped for %v", cancelAt, seg1.StopReason)
		}
		if seg1.StopReason == StopSolved {
			continue // canceled too late to matter
		}
		opts.Trace = nil
		got, err := ResumeContext(context.Background(), spec, opts, path)
		if err != nil {
			t.Fatalf("cancelAt=%d: resume: %v", cancelAt, err)
		}
		compareResults(t, "shiftright", full, got)
		if err := Verify(got.Circuit, p); err != nil {
			t.Fatalf("cancelAt=%d: %v", cancelAt, err)
		}
	}
}

// TestResumeChain interrupts a run repeatedly — segment after segment, one
// checkpoint file carried through — and checks the final answer still
// matches the uninterrupted run.
func TestResumeChain(t *testing.T) {
	p := testPerms["swap4"]
	spec := specFor(t, p)
	full := Synthesize(spec, resumeTestOptions())
	if !full.Found {
		t.Fatalf("uninterrupted run failed: %+v", full)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	opts := resumeTestOptions()
	opts.Checkpoint = Checkpoint{Path: path, EverySteps: 1 << 30}
	stride := full.Steps/5 + 1

	opts.TotalSteps = stride
	res := Synthesize(spec, opts)
	for seg := 0; res.StopReason == StopStepLimit; seg++ {
		if seg > 10 {
			t.Fatal("chain did not terminate")
		}
		opts.TotalSteps += stride
		var err error
		res, err = ResumeContext(context.Background(), spec, opts, path)
		if err != nil {
			t.Fatalf("segment %d: %v", seg, err)
		}
	}
	compareResults(t, "swap4", full, res)
	if err := Verify(res.Circuit, p); err != nil {
		t.Fatal(err)
	}
}

// TestPeriodicCheckpointCadence checks EverySteps actually produces
// periodic snapshots, not just the final flush.
func TestPeriodicCheckpointCadence(t *testing.T) {
	p := testPerms["swap4"]
	spec := specFor(t, p)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	opts := resumeTestOptions()
	opts.TotalSteps = 50
	opts.Checkpoint = Checkpoint{Path: path, EverySteps: 10}
	res := Synthesize(spec, opts)
	// 50 steps at one checkpoint per 10, plus the final flush.
	if res.Checkpoints < 5 {
		t.Fatalf("expected ≥5 checkpoints, got %d", res.Checkpoints)
	}
	if _, err := snapshot.ReadFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointWriteFaults injects a crash into every operation of every
// periodic checkpoint write and requires: the search itself is unaffected
// (same circuit), the failure is reported through OnError, and the file
// left on disk is either a usable snapshot (resume reproduces the
// uninterrupted run) or typed-error garbage (caller falls back to fresh
// start) — never a panic, never a silently wrong circuit.
func TestCheckpointWriteFaults(t *testing.T) {
	p := testPerms["shiftright"]
	spec := specFor(t, p)
	full := Synthesize(spec, resumeTestOptions())
	if !full.Found {
		t.Fatalf("uninterrupted run failed: %+v", full)
	}

	// Count the ops of one checkpoint write.
	probe := faultfs.New(nil, -1, 0)
	{
		opts := resumeTestOptions()
		opts.TotalSteps = 3
		opts.Checkpoint = Checkpoint{Path: filepath.Join(t.TempDir(), "p.ckpt"), EverySteps: 1 << 30, FS: probe}
		Synthesize(spec, opts)
	}
	opsPerWrite := probe.Ops()

	for crashAt := 0; crashAt < opsPerWrite; crashAt++ {
		for _, tear := range []int{0, 33} {
			dir := t.TempDir()
			path := filepath.Join(dir, "run.ckpt")
			var reported []error
			ffs := faultfs.New(nil, crashAt, tear)
			opts := resumeTestOptions()
			opts.Checkpoint = Checkpoint{
				Path:       path,
				EverySteps: 2,
				FS:         ffs,
				OnError:    func(err error) { reported = append(reported, err) },
			}
			res := Synthesize(spec, opts)
			if !res.Found || res.Circuit.String() != full.Circuit.String() {
				t.Fatalf("crashAt=%d: checkpoint fault changed the search result: %+v", crashAt, res)
			}
			if !ffs.Crashed() {
				t.Fatalf("crashAt=%d: crash point never reached", crashAt)
			}
			if len(reported) == 0 {
				t.Fatalf("crashAt=%d: write failure not reported via OnError", crashAt)
			}

			// Whatever is on disk must resume cleanly or fail typed.
			got, err := ResumeContext(context.Background(), spec, resumeTestOptions(), path)
			switch {
			case err == nil:
				if !got.Found {
					t.Fatalf("crashAt=%d: resume from partial run found nothing", crashAt)
				}
				if verr := Verify(got.Circuit, p); verr != nil {
					t.Fatalf("crashAt=%d: resumed circuit fails verification: %v", crashAt, verr)
				}
				if got.Circuit.String() != full.Circuit.String() {
					t.Fatalf("crashAt=%d: resumed circuit %s != %s", crashAt, got.Circuit, full.Circuit)
				}
			case errors.Is(err, os.ErrNotExist),
				errors.Is(err, snapshot.ErrCorrupt),
				errors.Is(err, snapshot.ErrNotSnapshot),
				errors.Is(err, snapshot.ErrVersionSkew),
				errors.Is(err, ErrInvalidState):
				// Typed recovery error: graceful degradation, caller
				// starts fresh.
			default:
				t.Fatalf("crashAt=%d: untyped resume error %v", crashAt, err)
			}
		}
	}
}

// TestResumeRejectsMismatches covers the typed sentinel errors.
func TestResumeRejectsMismatches(t *testing.T) {
	p := testPerms["fredkin"]
	spec := specFor(t, p)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	opts := resumeTestOptions()
	opts.TotalSteps = 2
	opts.Checkpoint = Checkpoint{Path: path, EverySteps: 1 << 30}
	if res := Synthesize(spec, opts); res.StopReason != StopStepLimit {
		t.Fatalf("setup run stopped for %v", res.StopReason)
	}
	opts.TotalSteps = 0

	other := specFor(t, testPerms["shiftright"])
	if _, err := ResumeContext(context.Background(), other, opts, path); !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("different spec: got %v, want ErrSpecMismatch", err)
	}

	changed := opts
	changed.GreedyK = 2
	if _, err := ResumeContext(context.Background(), spec, changed, path); !errors.Is(err, ErrOptionsMismatch) {
		t.Fatalf("different options: got %v, want ErrOptionsMismatch", err)
	}

	// Budget changes are explicitly allowed.
	budget := opts
	budget.TotalSteps = 1 << 20
	budget.TimeLimit = time.Hour
	budget.FirstSolution = true
	if _, err := ResumeContext(context.Background(), spec, budget, path); err != nil {
		t.Fatalf("budget-only change rejected: %v", err)
	}
}

// TestResumeRejectsInvalidStates tampers with decoded snapshots in ways the
// CRC cannot catch (we re-encode after tampering) and requires typed
// ErrInvalidState — the semantic validation layer, as opposed to the
// snapshot package's structural one.
func TestResumeRejectsInvalidStates(t *testing.T) {
	p := testPerms["fredkin"]
	spec := specFor(t, p)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	opts := resumeTestOptions()
	opts.TotalSteps = 5
	opts.Checkpoint = Checkpoint{Path: path, EverySteps: 1 << 30}
	if res := Synthesize(spec, opts); res.StopReason != StopStepLimit {
		t.Fatalf("setup run stopped for %v", res.StopReason)
	}
	opts.TotalSteps = 0
	base, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	tampers := map[string]func(st *snapshot.State){
		"dangling parent":    func(st *snapshot.State) { st.Nodes[len(st.Nodes)-1].Parent = len(st.Nodes) },
		"self parent":        func(st *snapshot.State) { st.Nodes[1].Parent = 1 },
		"bad depth":          func(st *snapshot.State) { st.Nodes[1].Depth = 7 },
		"bad target":         func(st *snapshot.State) { st.Nodes[1].Target = 99 },
		"factor hits target": func(st *snapshot.State) { st.Nodes[1].Factor = 1 << uint(st.Nodes[1].Target) },
		"terms drift":        func(st *snapshot.State) { st.Nodes[1].Terms += 3 },
		"hash drift":         func(st *snapshot.State) { st.Nodes[1].Hash ^= 1 },
		"queued out of range": func(st *snapshot.State) {
			st.Queued[0] = len(st.Nodes) + 5
		},
		"queued duplicate": func(st *snapshot.State) {
			st.Queued = append(st.Queued, st.Queued[0])
		},
		"impossible best depth": func(st *snapshot.State) { st.BestDepth++ },
		"counter underflow":     func(st *snapshot.State) { st.SolSteps = st.Steps + 1 },
		"node counter low":      func(st *snapshot.State) { st.NodesCreated = 0 },
		"tt dropped":            func(st *snapshot.State) { st.TT = nil },
		"next first move":       func(st *snapshot.State) { st.NextFirstMove = len(st.FirstMoves) + 1 },
		"root not materialized": func(st *snapshot.State) { st.Nodes[0].Materialized = false },
	}
	for name, tamper := range tampers {
		st, err := snapshot.Decode(snapshot.Encode(base))
		if err != nil {
			t.Fatal(err)
		}
		tamper(st)
		_, err = ResumeStateContext(context.Background(), spec, opts, st)
		if !errors.Is(err, ErrInvalidState) && !errors.Is(err, ErrSpecMismatch) {
			t.Errorf("%s: got %v, want ErrInvalidState", name, err)
		}
	}
}

// TestResumeMissingFile keeps the "no checkpoint yet" path typed.
func TestResumeMissingFile(t *testing.T) {
	p := testPerms["fredkin"]
	spec := specFor(t, p)
	_, err := ResumeContext(context.Background(), spec, resumeTestOptions(),
		filepath.Join(t.TempDir(), "none.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("got %v, want ErrNotExist", err)
	}
}

// TestResumeDeadlineSpansSegments: TimeLimit counts cumulative elapsed, so
// a resume of a run whose budget is already spent stops immediately.
func TestResumeDeadlineSpansSegments(t *testing.T) {
	p := testPerms["swap4"]
	spec := specFor(t, p)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	opts := resumeTestOptions()
	opts.TotalSteps = 3
	opts.Checkpoint = Checkpoint{Path: path, EverySteps: 1 << 30}
	if res := Synthesize(spec, opts); res.StopReason != StopStepLimit {
		t.Fatalf("setup run stopped for %v", res.StopReason)
	}
	st, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st.Elapsed = time.Hour // pretend the first segment burned the budget
	opts.TotalSteps = 0
	opts.TimeLimit = time.Minute
	res, err := ResumeStateContext(context.Background(), spec, opts, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != StopDeadline {
		t.Fatalf("stopped for %v, want StopDeadline", res.StopReason)
	}
	if res.Elapsed < time.Hour {
		t.Fatalf("cumulative elapsed %v lost the prior segments", res.Elapsed)
	}
}
