package exp

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestWriteSearchBench(t *testing.T) {
	report := &bench.SearchReport{
		Workloads: []bench.WorkloadComparison{{
			Workload:           "table1-3var",
			Off:                bench.WorkloadMetrics{Functions: 40, Expansions: 1000, AllocsPerExpansion: 14.2, NodesPerSec: 300000},
			On:                 bench.WorkloadMetrics{Functions: 40, Expansions: 300, DedupHitRate: 0.5, AllocsPerExpansion: 14.9, NodesPerSec: 280000},
			ExpansionReduction: 0.7,
		}},
		Examples: []bench.ExampleComparison{{
			Name: "rd53", PaperGates: 13, GatesOff: 16, GatesOn: 12,
			StepsOff: 332221, StepsOn: 215440, HitRate: 0.32,
		}},
	}
	var sb strings.Builder
	WriteSearchBench(&sb, report)
	out := sb.String()
	for _, want := range []string{"table1-3var", "70.0%", "rd53", "expansions off", "gates on"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
