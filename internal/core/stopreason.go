package core

// StopReason records why a synthesis run returned. The paper bounds every
// run with a wall-clock timer and a 768-MB memory ceiling and reports
// best-so-far circuits; StopReason is how a caller tells a genuine
// exhaustive "no circuit exists within the gate bound" apart from a budget
// that simply ran out — and which budget it was.
//
// The zero value StopNone means "no search was run" (e.g. the Result of a
// rejected permutation); every completed run reports a non-zero reason.
type StopReason int

const (
	// StopNone is the zero value: the search never ran.
	StopNone StopReason = iota
	// StopSolved: a solution was found and the run ended because it was
	// satisfied with it — FirstSolution fired, the ImproveSteps budget was
	// spent, or the queue drained with a best circuit in hand.
	StopSolved
	// StopQueueExhausted: the priority queue drained with no solution and
	// no restart heuristic configured (or none ever applicable). Under
	// admission rules that prune, this is "the searched subspace is empty",
	// not a proof that no circuit exists.
	StopQueueExhausted
	// StopDeadline: the wall-clock TimeLimit expired.
	StopDeadline
	// StopCanceled: the caller's context was canceled (Ctrl-C, server
	// shutdown, a portfolio sibling winning, …).
	StopCanceled
	// StopStepLimit: the deterministic TotalSteps budget was spent.
	StopStepLimit
	// StopMemoryLimit: the approximate accounted memory (queued nodes
	// plus the transposition table) exceeded MaxMemory, and neither
	// pruning the queue nor resetting the table brought it back under
	// the ceiling (the paper's 768-MB abort condition).
	StopMemoryLimit
	// StopRestartsExhausted: the restart heuristic ran out of alternative
	// first-level substitutions, or hit MaxRestarts, with no solution.
	StopRestartsExhausted
	// StopInternalError: an internal invariant panic (pprm, circuit) was
	// recovered and converted into the Result's Err.
	StopInternalError
	// StopVerifyFailed: the search found a circuit but the independent
	// post-synthesis verification gate (internal/verify) rejected it — the
	// realized permutation does not match the specification. The Result's
	// Err carries the typed *verify.Error diagnosis, including the rejected
	// cascade and a counterexample input. Appended last so checkpointed and
	// ledgered numeric values of the earlier reasons stay stable.
	StopVerifyFailed
)

func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopSolved:
		return "solved"
	case StopQueueExhausted:
		return "queue-exhausted"
	case StopDeadline:
		return "deadline"
	case StopCanceled:
		return "canceled"
	case StopStepLimit:
		return "step-limit"
	case StopMemoryLimit:
		return "memory-limit"
	case StopRestartsExhausted:
		return "restarts-exhausted"
	case StopInternalError:
		return "internal-error"
	case StopVerifyFailed:
		return "verify-failed"
	default:
		return "unknown"
	}
}
