package optimal

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/rng"
)

// Table I's optimal columns (Shende et al. [16]).
var wantNCT = []int{1, 12, 102, 625, 2780, 8921, 17049, 10253, 577}
var wantNCTS = []int{1, 15, 134, 844, 3752, 11194, 17531, 6817, 32}

func TestDistancesNCT(t *testing.T) {
	tab := Distances(NCT)
	if tab.Size() != 40320 {
		t.Fatalf("reached %d functions, want 40320", tab.Size())
	}
	counts, avg := tab.Histogram()
	if len(counts) != len(wantNCT) {
		t.Fatalf("max optimal depth = %d, want %d", len(counts)-1, len(wantNCT)-1)
	}
	for d, want := range wantNCT {
		if counts[d] != want {
			t.Errorf("NCT depth %d: %d functions, want %d (Table I)", d, counts[d], want)
		}
	}
	if avg < 5.86 || avg > 5.88 {
		t.Errorf("NCT average = %.3f, want ≈5.87 (Table I)", avg)
	}
}

func TestDistancesNCTS(t *testing.T) {
	tab := Distances(NCTS)
	if tab.Size() != 40320 {
		t.Fatalf("reached %d functions, want 40320", tab.Size())
	}
	counts, avg := tab.Histogram()
	if len(counts) != len(wantNCTS) {
		t.Fatalf("max optimal depth = %d, want %d", len(counts)-1, len(wantNCTS)-1)
	}
	for d, want := range wantNCTS {
		if counts[d] != want {
			t.Errorf("NCTS depth %d: %d functions, want %d (Table I)", d, counts[d], want)
		}
	}
	if avg < 5.62 || avg > 5.64 {
		t.Errorf("NCTS average = %.3f, want ≈5.63 (Table I)", avg)
	}
}

func TestLookup(t *testing.T) {
	tab := Distances(NCT)
	if d, err := tab.Lookup(perm.Identity(3)); err != nil || d != 0 {
		t.Errorf("identity distance = %d, %v; want 0", d, err)
	}
	// Fig. 1's function: the paper's circuit (Fig. 3(d)) has 3 gates and
	// is optimal.
	p := perm.MustFromInts([]int{1, 0, 7, 2, 3, 4, 5, 6})
	if d, err := tab.Lookup(p); err != nil || d != 3 {
		t.Errorf("Fig. 1 optimal distance = %d, %v; want 3", d, err)
	}
	// A single NOT gate.
	not := perm.MustFromInts([]int{1, 0, 3, 2, 5, 4, 7, 6})
	if d, err := tab.Lookup(not); err != nil || d != 1 {
		t.Errorf("NOT distance = %d, %v; want 1", d, err)
	}
}

func TestGeneratorCounts(t *testing.T) {
	// n=3: 3 NOTs, 6 CNOTs, 3 Toffolis = 12; NCTS adds 3 SWAPs.
	if got := len(Generators(3, NCT)); got != 12 {
		t.Errorf("NCT generators = %d, want 12", got)
	}
	if got := len(Generators(3, NCTS)); got != 15 {
		t.Errorf("NCTS generators = %d, want 15", got)
	}
}

func TestCircuitReconstruction(t *testing.T) {
	tab := Distances(NCT)
	src := rngNew()
	for trial := 0; trial < 60; trial++ {
		p := perm.Random(3, src)
		want, err := tab.Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := tab.Circuit(p)
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() != want {
			t.Fatalf("reconstructed %d gates, optimal is %d", c.Len(), want)
		}
		if !c.Perm().Equal(p) {
			t.Fatalf("reconstructed circuit realizes the wrong function")
		}
	}
}

func TestCircuitReconstructionIdentity(t *testing.T) {
	tab := Distances(NCT)
	c, err := tab.Circuit(perm.Identity(3))
	if err != nil || c.Len() != 0 {
		t.Errorf("identity reconstruction: %v, %d gates", err, c.Len())
	}
}

func TestCircuitReconstructionRejectsNCTS(t *testing.T) {
	tab := Distances(NCTS)
	if _, err := tab.Circuit(perm.Identity(3)); err == nil {
		t.Error("NCTS reconstruction should be rejected")
	}
}

func rngNew() *rng.Source { return rng.New(99) }
