package pprm

import (
	"slices"

	"repro/internal/bits"
)

// State hashing for the synthesis search's transposition table.
//
// Every TermSet carries a 64-bit hash equal to the XOR of termHash over its
// members. XOR makes the hash incremental: toggling a term's membership —
// the only way a set ever changes — updates the hash with one XOR,
// regardless of set size. A Spec's hash combines the per-output hashes
// through a position-dependent finalizer (see Spec.Hash), so permuting
// expansions across outputs changes the hash.
//
// The scheme is the Zobrist hashing of game-tree search specialized to
// EXOR term sets: collisions are possible in principle (two distinct
// states sharing all 64 bits) but occur with probability ≈ m²/2⁶⁵ for m
// distinct states visited — negligible against the search's own
// heuristic pruning. The synthesis results on the paper's examples are
// verified by simulation either way.

// goldenGamma is the splitmix64 increment (2^64 / φ, odd).
const goldenGamma = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// termHash maps a product-term mask to its Zobrist key. The offset keeps
// the constant term (mask 0) away from the all-zero key, so inserting it
// changes the set hash like any other term.
func termHash(t bits.Mask) uint64 {
	return mix64(uint64(t) + goldenGamma)
}

// outSalt decorrelates identical expansions on different outputs: the
// per-output hash is passed through mix64 together with a Weyl-sequence
// salt before being folded into the Spec hash.
func outSalt(i int) uint64 {
	return goldenGamma * uint64(i+1)
}

// Hash returns the 64-bit transposition hash of the set: the XOR of the
// Zobrist keys of its terms. Equal sets always hash equally; the converse
// holds up to 64-bit collisions.
func (ts *TermSet) Hash() uint64 { return ts.hash }

// Hash returns the transposition hash of the whole expansion. It is a
// function of the multiset {(output index, term set)}: two Specs hash
// equally iff every output's expansion matches (up to 64-bit collisions).
// The per-output hashes are maintained incrementally, so this costs one
// mix per output.
func (s *Spec) Hash() uint64 {
	var h uint64
	for i := range s.Out {
		h ^= mix64(s.Out[i].hash + outSalt(i))
	}
	return h
}

// SubstituteProbe computes, without modifying or copying the Spec, the
// term-count change and the transposition hash of the expansion that
// Substitute(target, factor) would produce. The synthesis search uses it
// to score every candidate child and consult its transposition table
// before deciding which children to materialize. scratch is an optional
// reusable buffer, returned (possibly grown) for the next call.
func (s *Spec) SubstituteProbe(target int, factor bits.Mask, scratch []bits.Mask) (delta int, hash uint64, out []bits.Mask) {
	tb := bits.Bit(target)
	toggles := scratch[:0]
	for j := range s.Out {
		ts := &s.Out[j]
		toggles = toggles[:0]
		var tx uint64
		for _, t := range ts.terms {
			if t&tb != 0 {
				nt := (t &^ tb) | factor
				toggles = append(toggles, nt)
				// Toggle keys XOR-cancel in pairs exactly like the terms
				// themselves, so tx over the raw toggle list equals tx
				// over the deduplicated one.
				tx ^= termHash(nt)
			}
		}
		hash ^= mix64((ts.hash ^ tx) + outSalt(j))
		if len(toggles) == 0 {
			continue
		}
		slices.Sort(toggles)
		toggles = dedupSorted(toggles)
		// Merge-count against the sorted set: toggles already present
		// cancel (−1), absent ones insert (+1).
		a := ts.terms
		i, k := 0, 0
		for i < len(a) && k < len(toggles) {
			switch {
			case a[i] < toggles[k]:
				i++
			case a[i] > toggles[k]:
				delta++
				k++
			default:
				delta--
				i++
				k++
			}
		}
		delta += len(toggles) - k
	}
	return delta, hash, toggles
}
