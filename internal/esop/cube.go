// Package esop implements EXOR sum-of-products (ESOP) expressions over
// three-valued cubes and a heuristic exorlink minimizer in the spirit of
// EXORCISM-4 (Mishchenko & Perkowski), the tool the paper uses to convert
// reversible specifications into ESOP form before PPRM expansion (Section
// II-E). The PPRM expansion itself is canonical, so internal/pprm computes
// it exactly; this package reproduces the paper's stated pipeline and
// provides general ESOP machinery (SOP→ESOP, minimization, ESOP→PPRM).
package esop

import (
	"fmt"
	mathbits "math/bits"
	"strings"
)

// Cube is a product term over n variables in which every variable appears
// positive, negative, or not at all. It is stored as two masks: pos has a
// bit per positive literal, neg per negative literal. A variable in both
// masks is contradictory (the empty cube); helpers keep cubes canonical by
// never producing that state.
type Cube struct {
	Pos uint32
	Neg uint32
}

// Tautology is the cube with no literals (constant 1).
var Tautology = Cube{}

// Literals returns the number of literals in the cube.
func (c Cube) Literals() int {
	return onesCount(c.Pos) + onesCount(c.Neg)
}

// Contains reports whether the cube's product function is 1 on assignment x.
func (c Cube) Contains(x uint32) bool {
	return x&c.Pos == c.Pos && ^x&c.Neg == c.Neg
}

// Distance returns the number of variables on which the two cubes differ
// (have different literal states), the metric driving exorlink.
func (c Cube) Distance(o Cube) int {
	return onesCount((c.Pos ^ o.Pos) | (c.Neg ^ o.Neg))
}

// String renders the cube with lower-case letters for positive literals
// and upper-case for negative ones ("aB" = a·¬b); the tautology is "1".
func (c Cube) String() string {
	if c.Pos == 0 && c.Neg == 0 {
		return "1"
	}
	var b strings.Builder
	for i := 0; i < 32; i++ {
		bit := uint32(1) << uint(i)
		switch {
		case c.Pos&bit != 0:
			b.WriteByte(byte('a' + i%26))
		case c.Neg&bit != 0:
			b.WriteByte(byte('A' + i%26))
		}
	}
	return b.String()
}

// ParseCube parses the String format.
func ParseCube(s string) (Cube, error) {
	if s == "1" {
		return Tautology, nil
	}
	var c Cube
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
			c.Pos |= 1 << uint(r-'a')
		case r >= 'A' && r <= 'Z':
			c.Neg |= 1 << uint(r-'A')
		default:
			return Cube{}, fmt.Errorf("esop: bad literal %q in cube %q", r, s)
		}
	}
	if c.Pos&c.Neg != 0 {
		return Cube{}, fmt.Errorf("esop: contradictory cube %q", s)
	}
	return c, nil
}

func onesCount(x uint32) int { return mathbits.OnesCount32(x) }
