package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
)

// This file is the benchmark-trajectory harness: it runs seeded,
// deterministic synthesis workloads with the transposition table off and
// on, and reports the search-performance numbers that are checked in as
// BENCH_search.json so every future change has a baseline to compare
// against. docs/PERFORMANCE.md explains how to run it and how to read the
// output.

// SearchBenchConfig sizes the harness workloads. The zero value selects
// the defaults used for the checked-in BENCH_search.json.
type SearchBenchConfig struct {
	// Seed drives every pseudo-random workload; identical seeds give
	// bit-identical workloads (and, with step-bounded searches,
	// machine-independent expansion counts). Default 1.
	Seed uint64 `json:"seed"`
	// Table1Sample is the number of seeded 3-variable functions in the
	// Table-I workload (the paper's Table I averages over all 8! = 40320
	// of them; the harness samples). Default 400.
	Table1Sample int `json:"table1_sample"`
	// Random4 is the number of seeded 4-variable functions. Default 60.
	Random4 int `json:"random4"`
	// TotalSteps is the per-function expansion budget for the random
	// workloads. Default 50000.
	TotalSteps int `json:"total_steps"`
	// ExampleSteps is the per-variant expansion budget for the paper's
	// fourteen worked examples. Default 150000.
	ExampleSteps int `json:"example_steps"`
	// SkipExamples drops the (slower) worked-examples comparison.
	SkipExamples bool `json:"skip_examples,omitempty"`
}

func (c *SearchBenchConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Table1Sample == 0 {
		c.Table1Sample = 400
	}
	if c.Random4 == 0 {
		c.Random4 = 60
	}
	if c.TotalSteps == 0 {
		c.TotalSteps = 50000
	}
	if c.ExampleSteps == 0 {
		c.ExampleSteps = 150000
	}
}

// WorkloadMetrics aggregates one workload under one configuration.
// Expansion counts, gate counts, and dedup totals are deterministic for a
// given seed; the wall-clock rate and allocation figures depend on the
// machine and are meaningful only relative to the paired run.
type WorkloadMetrics struct {
	Dedup      bool `json:"dedup"`
	Functions  int  `json:"functions"`
	Solved     int  `json:"solved"`
	TotalGates int  `json:"total_gates"`
	// Expansions is the summed Result.Steps (priority-queue pops).
	Expansions int64 `json:"expansions"`
	// NodesCreated is the summed Result.Nodes.
	NodesCreated   int64   `json:"nodes_created"`
	DedupHits      int64   `json:"dedup_hits"`
	DedupMisses    int64   `json:"dedup_misses"`
	DedupEvictions int64   `json:"dedup_evictions"`
	DedupHitRate   float64 `json:"dedup_hit_rate"`
	Seconds        float64 `json:"seconds"`
	// NodesPerSec is expansions per wall-clock second (machine-dependent).
	NodesPerSec float64 `json:"nodes_per_sec"`
	// AllocsPerExpansion and BytesPerExpansion are heap-allocation deltas
	// (runtime.MemStats) divided by expansions — the allocation-diet
	// trajectory metric.
	AllocsPerExpansion float64 `json:"allocs_per_expansion"`
	BytesPerExpansion  float64 `json:"bytes_per_expansion"`
}

// WorkloadComparison pairs the dedup-off and dedup-on runs of a workload.
type WorkloadComparison struct {
	Workload string          `json:"workload"`
	Off      WorkloadMetrics `json:"off"`
	On       WorkloadMetrics `json:"on"`
	// ExpansionReduction is 1 − on.Expansions/off.Expansions: the fraction
	// of node expansions the transposition table eliminated.
	ExpansionReduction float64 `json:"expansion_reduction"`
	// Speedup is on.NodesPerSec / off.NodesPerSec (machine-dependent).
	Speedup float64 `json:"speedup"`
}

// ExampleComparison is one of the paper's worked examples, synthesized
// with the transposition table off and on. GatesOn must never exceed
// GatesOff — dedup prunes only re-derived states, so it cannot force a
// longer circuit.
type ExampleComparison struct {
	Name       string  `json:"name"`
	PaperGates int     `json:"paper_gates"`
	GatesOff   int     `json:"gates_off"`
	GatesOn    int     `json:"gates_on"`
	StepsOff   int     `json:"steps_off"`
	StepsOn    int     `json:"steps_on"`
	HitRate    float64 `json:"dedup_hit_rate"`
}

// SearchReport is the full harness output (the schema of
// BENCH_search.json).
type SearchReport struct {
	Config    SearchBenchConfig    `json:"config"`
	Workloads []WorkloadComparison `json:"workloads"`
	Examples  []ExampleComparison  `json:"examples,omitempty"`
}

// searchOpts is the harness's synthesis configuration: the repository
// defaults with a deterministic step budget instead of a wall clock.
func searchOpts(totalSteps int, dedup bool) core.Options {
	opts := core.DefaultOptions()
	opts.TotalSteps = totalSteps
	opts.Dedup = dedup
	return opts
}

// runWorkload synthesizes every function in the workload under opts and
// aggregates the metrics. Found circuits are verified by simulation; a
// verification failure panics (it would mean a search bug, not a slow
// machine).
func runWorkload(ctx context.Context, fns []perm.Perm, opts core.Options) (WorkloadMetrics, error) {
	m := WorkloadMetrics{Dedup: opts.Dedup, Functions: len(fns)}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for _, p := range fns {
		if ctx.Err() != nil {
			return m, ctx.Err()
		}
		spec, err := pprm.FromPerm(p)
		if err != nil {
			return m, err
		}
		r := core.SynthesizeContext(ctx, spec, opts)
		if r.Err != nil {
			return m, r.Err
		}
		m.Expansions += int64(r.Steps)
		m.NodesCreated += int64(r.Nodes)
		m.DedupHits += r.DedupHits
		m.DedupMisses += r.DedupMisses
		m.DedupEvictions += r.DedupEvictions
		if r.Found {
			if err := core.Verify(r.Circuit, p); err != nil {
				return m, err
			}
			m.Solved++
			m.TotalGates += r.Circuit.Len()
		}
	}
	m.Seconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	if m.Expansions > 0 {
		m.AllocsPerExpansion = float64(ms1.Mallocs-ms0.Mallocs) / float64(m.Expansions)
		m.BytesPerExpansion = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(m.Expansions)
		m.NodesPerSec = float64(m.Expansions) / m.Seconds
	}
	if probes := m.DedupHits + m.DedupMisses; probes > 0 {
		m.DedupHitRate = float64(m.DedupHits) / float64(probes)
	}
	return m, nil
}

// compareWorkload runs one workload dedup-off then dedup-on.
func compareWorkload(ctx context.Context, name string, fns []perm.Perm, totalSteps int) (WorkloadComparison, error) {
	c := WorkloadComparison{Workload: name}
	var err error
	if c.Off, err = runWorkload(ctx, fns, searchOpts(totalSteps, false)); err != nil {
		return c, fmt.Errorf("%s (dedup off): %w", name, err)
	}
	if c.On, err = runWorkload(ctx, fns, searchOpts(totalSteps, true)); err != nil {
		return c, fmt.Errorf("%s (dedup on): %w", name, err)
	}
	if c.Off.Expansions > 0 {
		c.ExpansionReduction = 1 - float64(c.On.Expansions)/float64(c.Off.Expansions)
	}
	if c.Off.NodesPerSec > 0 {
		c.Speedup = c.On.NodesPerSec / c.Off.NodesPerSec
	}
	return c, nil
}

// seededFunctions draws n random v-variable reversible functions from the
// deterministic generator.
func seededFunctions(seed uint64, v, n int) []perm.Perm {
	src := rng.New(seed)
	fns := make([]perm.Perm, n)
	for i := range fns {
		fns[i] = perm.Random(v, src)
	}
	return fns
}

// RunSearchBench executes the full harness: the seeded Table-I-style
// 3-variable sample, a seeded 4-variable random workload, and (unless
// skipped) the paper's fourteen worked examples — each with the
// transposition table off and on.
func RunSearchBench(ctx context.Context, cfg SearchBenchConfig) (*SearchReport, error) {
	cfg.fill()
	report := &SearchReport{Config: cfg}

	workloads := []struct {
		name string
		vars int
		n    int
	}{
		{"table1-3var", 3, cfg.Table1Sample},
		{"random-4var", 4, cfg.Random4},
	}
	for _, w := range workloads {
		fns := seededFunctions(cfg.Seed, w.vars, w.n)
		cmp, err := compareWorkload(ctx, w.name, fns, cfg.TotalSteps)
		if err != nil {
			return nil, err
		}
		report.Workloads = append(report.Workloads, cmp)
	}

	if !cfg.SkipExamples {
		examples, err := runExamples(ctx, cfg.ExampleSteps)
		if err != nil {
			return nil, err
		}
		report.Examples = examples
	}
	return report, nil
}

// examplePaperGates holds the gate counts of the circuits the paper
// prints for Examples 1–14 (Section V-C) — the same reference the exp
// driver reports against.
var examplePaperGates = map[string]int{
	"ex1": 4, "shiftright3": 3, "fredkin3": 3, "swap3": 6, "swap4": 7,
	"shiftleft3": 3, "shiftleft4": 4, "fulladder": 4, "rd53": 13,
	"majority5": 16, "decod24": 11, "5one013": 19, "alu": 18,
	"shift10": 27,
}

// runExamples synthesizes the Section V-C worked examples with dedup off
// and on, using the same portfolio-plus-tightening driver as the exp
// examples reproduction (some examples — rd53 among them — need the
// portfolio's priority diversity) so the gate-count comparison isolates
// the transposition table.
func runExamples(ctx context.Context, totalSteps int) ([]ExampleComparison, error) {
	var out []ExampleComparison
	for _, b := range Examples() {
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		spec, err := b.PPRMSpec()
		if err != nil {
			return nil, fmt.Errorf("example %s: %w", b.Name, err)
		}
		row := ExampleComparison{Name: b.Name, PaperGates: examplePaperGates[b.Name]}

		for _, dedup := range []bool{false, true} {
			opts := searchOpts(totalSteps, dedup)
			opts.ImproveSteps = totalSteps / 8
			r := core.SynthesizePortfolioContext(ctx, spec, opts, 4)
			if r.Err != nil {
				return nil, fmt.Errorf("example %s: %w", b.Name, r.Err)
			}
			if !r.Found {
				return nil, fmt.Errorf("example %s (dedup=%v): not solved (stop=%s)", b.Name, dedup, r.StopReason)
			}
			if b.Spec != nil && b.Wires <= 20 {
				if err := core.Verify(r.Circuit, b.Spec); err != nil {
					return nil, fmt.Errorf("example %s: %w", b.Name, err)
				}
			}
			if dedup {
				row.GatesOn = r.Circuit.Len()
				row.StepsOn = r.Steps
				if probes := r.DedupHits + r.DedupMisses; probes > 0 {
					row.HitRate = float64(r.DedupHits) / float64(probes)
				}
			} else {
				row.GatesOff = r.Circuit.Len()
				row.StepsOff = r.Steps
			}
		}
		out = append(out, row)
	}
	return out, nil
}
