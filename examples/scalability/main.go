// Scalability: reproduce the Section V-E methodology on one instance —
// generate a random reversible circuit on many wires, recover its
// specification symbolically, resynthesize it from scratch, and check the
// result by simulation.
package main

import (
	"flag"
	"fmt"
	"log"

	rmrls "repro"
)

func main() {
	wires := flag.Int("wires", 10, "circuit width (6-16 in the paper)")
	gates := flag.Int("gates", 15, "generated gate count")
	seed := flag.Uint64("seed", 7, "workload seed")
	flag.Parse()

	original, err := rmrls.RandomCircuit(*wires, *gates, false, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated (%d wires, %d gates):\n  %s\n\n", *wires, *gates, original)

	// The specification is recovered symbolically (no truth table), the
	// way the shift28 benchmark must be handled.
	spec := original.PPRM()
	fmt.Printf("PPRM of the specification: %d terms\n", spec.Terms())

	opts := rmrls.DefaultOptions()
	opts.FirstSolution = true // the paper's Tables V-VII stop at the first solution
	opts.TotalSteps = 200000
	res := rmrls.SynthesizeSpec(spec, opts)
	if !res.Found {
		log.Fatalf("resynthesis failed within %d steps", opts.TotalSteps)
	}
	fmt.Printf("\nresynthesized (%d gates, %d search steps):\n  %s\n",
		res.Circuit.Len(), res.Steps, res.Circuit)

	if *wires <= 20 {
		if err := rmrls.Verify(res.Circuit, original.Perm()); err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nverified: both circuits realize the same function")
	}
	simplified := res.Circuit.Simplify()
	if simplified.Len() < res.Circuit.Len() {
		fmt.Printf("peephole simplification: %d → %d gates\n",
			res.Circuit.Len(), simplified.Len())
	}
}
