package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestObserveDoesNotChangeSearch is the tentpole's zero-overhead contract:
// attaching a Run must not change a single expansion. Same spec, same
// options, with and without Observe — the trajectories must be identical.
func TestObserveDoesNotChangeSearch(t *testing.T) {
	spec := hardSpec(t, 7)
	opts := DefaultOptions()
	opts.TotalSteps = 30000

	bare := SynthesizeContext(context.Background(), spec, opts)

	run := obs.NewRun("test")
	opts.Observe = run
	observed := SynthesizeContext(context.Background(), spec, opts)

	if bare.Steps != observed.Steps || bare.Nodes != observed.Nodes {
		t.Fatalf("observation changed the search: steps %d→%d, nodes %d→%d",
			bare.Steps, observed.Steps, bare.Nodes, observed.Nodes)
	}
	if bare.Found != observed.Found {
		t.Fatalf("observation changed the outcome: found %v→%v", bare.Found, observed.Found)
	}
	if bare.Found && bare.Circuit.String() != observed.Circuit.String() {
		t.Fatalf("observation changed the circuit:\n%s\n%s", bare.Circuit, observed.Circuit)
	}

	snap := run.Snapshot(time.Now())
	if snap.Steps != int64(observed.Steps) {
		t.Errorf("snapshot steps = %d, result reported %d", snap.Steps, observed.Steps)
	}
	if snap.Nodes != int64(observed.Nodes) {
		t.Errorf("snapshot nodes = %d, result reported %d", snap.Nodes, observed.Nodes)
	}
	if !snap.Done {
		t.Error("run not marked done after synthesis returned")
	}
	if snap.Stop != observed.StopReason.String() {
		t.Errorf("snapshot stop = %q, result stop = %q", snap.Stop, observed.StopReason)
	}
	if observed.Found {
		if snap.BestGates != observed.Circuit.Len() {
			t.Errorf("snapshot best gates = %d, circuit has %d", snap.BestGates, observed.Circuit.Len())
		}
		if snap.BestQuantumCost != observed.Circuit.QuantumCost() {
			t.Errorf("snapshot best cost = %d, circuit costs %d", snap.BestQuantumCost, observed.Circuit.QuantumCost())
		}
	}
	if probes := snap.DedupHits + snap.DedupMisses; probes != int64(observed.DedupHits+observed.DedupMisses) {
		t.Errorf("snapshot dedup probes = %d, result reported %d",
			probes, observed.DedupHits+observed.DedupMisses)
	}
}

// TestObservePortfolioChildren checks that each portfolio variant reports
// under its own child label and that the parent aggregates their work.
func TestObservePortfolioChildren(t *testing.T) {
	spec := hardSpec(t, 3)
	opts := DefaultOptions()
	opts.TotalSteps = 5000
	run := obs.NewRun("portfolio")
	opts.Observe = run

	res := SynthesizePortfolioContext(context.Background(), spec, opts, 2)

	children := run.ChildSnapshots(time.Now())
	if len(children) < 3 {
		t.Fatalf("portfolio produced %d child runs, want ≥ 3 (variants + optional tighten)", len(children))
	}
	want := map[string]bool{"variant0": true, "variant1": true, "variant2": true, "tighten": true}
	var sum int64
	for _, c := range children {
		if !want[c.Label] {
			t.Errorf("unexpected child label %q", c.Label)
		}
		sum += c.Steps
	}
	// The children observe at stride boundaries plus once on return, so
	// their counters match the merged Result exactly.
	if res.Steps != int(sum) {
		t.Errorf("result reports %d steps but children observed %d", res.Steps, sum)
	}
	if sum == 0 {
		t.Error("no child observed any steps")
	}
	agg := run.Snapshot(time.Now())
	if !agg.Aggregate {
		t.Error("parent snapshot not marked aggregate")
	}
	if agg.Steps != sum {
		t.Errorf("aggregate steps = %d, children sum to %d", agg.Steps, sum)
	}
}

// TestObserveCheckpointTelemetry checks that checkpoint writes surface in
// the run snapshot (count, bytes, and a fresh age).
func TestObserveCheckpointTelemetry(t *testing.T) {
	spec := hardSpec(t, 11)
	opts := DefaultOptions()
	opts.TotalSteps = 20000
	opts.Checkpoint = Checkpoint{
		Path:     t.TempDir() + "/ck.snap",
		Interval: time.Nanosecond, // every stride boundary
	}
	run := obs.NewRun("ckpt")
	opts.Observe = run
	SynthesizeContext(context.Background(), spec, opts)

	snap := run.Snapshot(time.Now())
	if snap.Checkpoints == 0 {
		t.Fatal("no checkpoints observed")
	}
	if snap.LastCheckpointBytes <= 0 {
		t.Errorf("last checkpoint bytes = %d, want > 0", snap.LastCheckpointBytes)
	}
	if snap.LastCheckpointAge < 0 {
		t.Errorf("last checkpoint age = %v, want ≥ 0", snap.LastCheckpointAge)
	}
}
