package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/snapshot/faultfs"
)

// drainCfg is the shared configuration of the drain tests: a single worker
// (deterministic scheduling), step-cadenced checkpoints (deterministic
// snapshot points), and a generous ceiling so budgets never interfere.
func drainCfg(dir string) Config {
	return Config{
		Workers:              1,
		StateDir:             dir,
		CheckpointEverySteps: 5000,
		Ceiling:              core.BudgetCeiling{MaxTime: time.Minute, MaxMemory: 512 << 20},
	}
}

// rd53Request is the drain workload: rd53 bounded to 30000 deterministic
// steps, so the search runs a few hundred milliseconds — long enough to
// drain mid-run, short enough to finish fast on resume.
func rd53Request() Request {
	return Request{
		Spec:   SpecInput{Bench: "rd53"},
		Budget: Budget{Steps: 30000, TimeMillis: 55000},
	}
}

// admitDirect compiles and admits a request without the HTTP layer.
func admitDirect(t *testing.T, s *Server, req Request) *Job {
	t.Helper()
	c, rerr := compileRequest(&req, s.cfg.Ceiling)
	if rerr != nil {
		t.Fatalf("compile: %v", rerr)
	}
	j, _, err := s.admit(c, req)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	return j
}

// waitSteps polls the job's live run until it has expanded at least n
// nodes, proving the search is genuinely mid-flight.
func waitSteps(t *testing.T, j *Job, n int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.Run().Snapshot(time.Now()).Steps >= n {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("job never reached %d steps (at %d)", n, j.Run().Snapshot(time.Now()).Steps)
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s never finished (status %s)", j.ID(), j.Status())
	}
}

// resultJSON marshals only the deterministic result payload — the view the
// byte-identical acceptance check compares.
func resultJSON(t *testing.T, j *Job) []byte {
	t.Helper()
	v := j.view(false)
	if v.Result == nil {
		t.Fatalf("job %s has no result (status %s, error %q)", j.ID(), v.Status, v.Error)
	}
	data, err := json.Marshal(v.Result)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// TestDrainRestartResumesByteIdentical is the acceptance check of the
// drain machinery: SIGTERM-equivalent drain mid-search, restart, and the
// resumed job must finish with a byte-identical result to an uninterrupted
// run of the same request.
func TestDrainRestartResumesByteIdentical(t *testing.T) {
	dir := t.TempDir()

	// Uninterrupted baseline in its own state dir.
	base, err := New(drainCfg(t.TempDir()))
	if err != nil {
		t.Fatalf("New baseline: %v", err)
	}
	base.Start()
	bj := admitDirect(t, base, rd53Request())
	waitDone(t, bj)
	if bj.Status() != StatusDone {
		t.Fatalf("baseline status = %s", bj.Status())
	}
	want := resultJSON(t, bj)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	base.Drain(ctx)
	cancel()

	// Server A: drain it mid-search.
	a, err := New(drainCfg(dir))
	if err != nil {
		t.Fatalf("New a: %v", err)
	}
	a.Start()
	j := admitDirect(t, a, rd53Request())
	waitSteps(t, j, 1000)
	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	cancel()
	if j.Status() != StatusInterrupted {
		// The search outran the drain — the window is ~200 ms of steps, so
		// this means the machinery (not the timing) regressed.
		t.Fatalf("status after drain = %s, want interrupted", j.Status())
	}
	if _, err := os.Stat(filepath.Join(dir, ledgerName)); err != nil {
		t.Fatalf("ledger not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-"+j.ID()+".snap")); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Server B: restart over the same state dir; the job must be recovered
	// under the same ID, resumed from the checkpoint, and run to completion.
	b, err := New(drainCfg(dir))
	if err != nil {
		t.Fatalf("New b: %v", err)
	}
	if n := b.Stats().Recovered; n != 1 {
		t.Fatalf("recovered = %d, want 1 (notes: %v)", n, b.RecoveryNotes())
	}
	rj, ok := b.job(j.ID())
	if !ok {
		t.Fatalf("recovered job %s not found", j.ID())
	}
	b.Start()
	waitDone(t, rj)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		b.Drain(ctx)
	}()
	if rj.Status() != StatusDone {
		t.Fatalf("resumed status = %s (error %q)", rj.Status(), rj.view(false).Error)
	}
	rv := rj.view(false)
	if !rv.Resumed {
		t.Errorf("job not marked resumed — it re-ran from scratch (note: %q)", rv.Note)
	}
	got := resultJSON(t, rj)
	if string(got) != string(want) {
		t.Errorf("resumed result differs from uninterrupted run:\nresumed: %s\nbaseline: %s", got, want)
	}

	// The ledger is consumed by recovery and the checkpoint by completion:
	// a third start is clean.
	if _, err := os.Stat(filepath.Join(dir, ledgerName)); !os.IsNotExist(err) {
		t.Errorf("ledger still present after recovery: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-"+j.ID()+".snap")); !os.IsNotExist(err) {
		t.Errorf("checkpoint still present after completion: %v", err)
	}
}

// TestDrainPersistsQueuedJobs: jobs that never reached a worker survive the
// drain in the ledger and run to completion after restart.
func TestDrainPersistsQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	cfg := drainCfg(dir)
	cfg.Runner = blockingRunner(block)
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()

	mk := func(steps int) Request {
		return Request{Spec: SpecInput{Bench: "rd32"}, Budget: Budget{Steps: steps}}
	}
	running := admitDirect(t, s, mk(30000))
	q1 := admitDirect(t, s, mk(30001))
	q2 := admitDirect(t, s, mk(30002))
	waitForDepth(t, s, 2, 0)
	_ = running

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	cancel()
	close(block)
	for _, j := range []*Job{q1, q2} {
		if j.Status() != StatusInterrupted {
			t.Errorf("queued job %s = %s, want interrupted", j.ID(), j.Status())
		}
	}

	// Restart with the real engine: all three jobs (the blocked "running"
	// one included — its fake runner returned canceled) re-run and finish.
	s2, err := New(drainCfg(dir))
	if err != nil {
		t.Fatalf("New 2: %v", err)
	}
	if n := s2.Stats().Recovered; n != 3 {
		t.Fatalf("recovered = %d, want 3 (notes: %v)", n, s2.RecoveryNotes())
	}
	s2.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Drain(ctx)
	}()
	for _, id := range []string{running.ID(), q1.ID(), q2.ID()} {
		j, ok := s2.job(id)
		if !ok {
			t.Fatalf("job %s not recovered", id)
		}
		waitDone(t, j)
		if j.Status() != StatusDone {
			t.Errorf("job %s = %s after restart, want done", id, j.Status())
		}
		if v := j.view(false); v.Result == nil || !v.Result.Found {
			t.Errorf("job %s found no circuit after restart", id)
		}
	}
}

// TestLedgerWriteCrashEnumeration crashes the drain's ledger write at every
// filesystem operation (torn writes included) and proves the all-or-nothing
// property: the next start either recovers every job or none, and never
// fails to come up.
func TestLedgerWriteCrashEnumeration(t *testing.T) {
	const jobs = 3

	// Probe run: count the filesystem operations of a full drain.
	runDrain := func(dir string, crashAt int) (*faultfs.FS, error) {
		ffs := faultfs.New(nil, crashAt, 3)
		block := make(chan struct{})
		defer close(block)
		cfg := drainCfg(dir)
		cfg.FS = ffs
		cfg.Runner = blockingRunner(block)
		s, err := New(cfg)
		if err != nil {
			return ffs, fmt.Errorf("New: %w", err)
		}
		s.Start()
		for i := 0; i < jobs; i++ {
			admitDirect(t, s, Request{Spec: SpecInput{Bench: "rd32"}, Budget: Budget{Steps: 40000 + i}})
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return ffs, s.Drain(ctx)
	}

	probe, err := runDrain(t.TempDir(), -1)
	if err != nil {
		t.Fatalf("probe drain: %v", err)
	}
	total := probe.Ops()
	if total == 0 {
		t.Fatalf("probe drain performed no filesystem operations")
	}

	for crashAt := 0; crashAt < total; crashAt++ {
		t.Run(fmt.Sprintf("crash-at-%d", crashAt), func(t *testing.T) {
			dir := t.TempDir()
			if _, err := runDrain(dir, crashAt); err == nil {
				t.Fatalf("drain succeeded despite crash at op %d", crashAt)
			}
			// Restart on the possibly-damaged state dir: must come up, with
			// either the whole batch or a clean slate.
			s, err := New(drainCfg(dir))
			if err != nil {
				t.Fatalf("restart failed: %v", err)
			}
			n := s.Stats().Recovered
			if n != 0 && n != jobs {
				t.Errorf("recovered %d of %d jobs — a torn ledger leaked through (notes: %v)",
					n, jobs, s.RecoveryNotes())
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Drain(ctx)
		})
	}
}

// TestCorruptCheckpointRerunsFresh: a damaged drain checkpoint must degrade
// to a fresh re-run that still completes correctly, never a wrong result or
// a stuck job.
func TestCorruptCheckpointRerunsFresh(t *testing.T) {
	dir := t.TempDir()
	a, err := New(drainCfg(dir))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a.Start()
	j := admitDirect(t, a, rd53Request())
	waitSteps(t, j, 1000)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	cancel()

	// Vandalize the checkpoint: keep the size plausible, destroy the content.
	ckpt := filepath.Join(dir, "ckpt-"+j.ID()+".snap")
	if err := os.WriteFile(ckpt, []byte("not a snapshot at all"), 0o600); err != nil {
		t.Fatalf("corrupt: %v", err)
	}

	b, err := New(drainCfg(dir))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if n := b.Stats().Recovered; n != 1 {
		t.Fatalf("recovered = %d, want 1 (notes: %v)", n, b.RecoveryNotes())
	}
	notes := b.RecoveryNotes()
	foundNote := false
	for _, n := range notes {
		if strings.Contains(n, "checkpoint unusable") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Errorf("no 'checkpoint unusable' recovery note in %v", notes)
	}
	rj, _ := b.job(j.ID())
	b.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		b.Drain(ctx)
	}()
	waitDone(t, rj)
	v := rj.view(false)
	if rj.Status() != StatusDone || v.Result == nil || !v.Result.Found {
		t.Fatalf("fresh re-run failed: status=%s result=%+v error=%q", rj.Status(), v.Result, v.Error)
	}
	if v.Resumed {
		t.Errorf("job claims resumed from a corrupt checkpoint")
	}
}
