package rmrls

// One testing.B benchmark per table/figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. The bench
// workloads are scaled-down but shape-preserving versions of the full
// experiments; cmd/experiments runs the full-size ones.

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/mmd"
	"repro/internal/perm"
	"repro/internal/rng"
)

// BenchmarkTable1 synthesizes random 3-variable functions over NCT (the
// Table I workload).
func BenchmarkTable1(b *testing.B) {
	src := rng.New(1)
	opts := core.DefaultOptions()
	opts.Library = circuit.NCT
	opts.TotalSteps = 4000
	opts.ImproveSteps = 1500
	opts.MaxGates = 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := perm.Random(3, src)
		res, err := core.SynthesizePerm(p, opts)
		if err != nil || !res.Found {
			b.Fatalf("synthesis failed: %v %+v", err, res)
		}
	}
}

// BenchmarkTable1Optimal measures the exhaustive-BFS optimal column.
func BenchmarkTable1Optimal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := OptimalDistances(false)
		if tab.Size() != 40320 {
			b.Fatal("incomplete BFS")
		}
	}
}

// BenchmarkTable2 synthesizes random 4-variable functions (Table II).
func BenchmarkTable2(b *testing.B) {
	benchRandom(b, exp.Table2Config(0, 2))
}

// BenchmarkTable3 synthesizes random 5-variable functions (Table III).
func BenchmarkTable3(b *testing.B) {
	benchRandom(b, exp.Table3Config(0, 3))
}

func benchRandom(b *testing.B, cfg exp.RandomConfig) {
	src := rng.New(cfg.Seed)
	b.ReportAllocs()
	found := 0
	for i := 0; i < b.N; i++ {
		p := perm.Random(cfg.Vars, src)
		opts := core.DefaultOptions()
		opts.MaxGates = cfg.MaxGates
		opts.TotalSteps = cfg.TotalSteps
		opts.ImproveSteps = cfg.ImproveSteps
		res, err := core.SynthesizePerm(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Found {
			found++
		}
	}
	b.ReportMetric(float64(found)/float64(b.N), "found-rate")
}

// BenchmarkTable4 synthesizes one representative Table IV benchmark per
// iteration (decod24: mid-size, always solvable).
func BenchmarkTable4(b *testing.B) {
	bm, err := BenchmarkByName("decod24")
	if err != nil {
		b.Fatal(err)
	}
	spec, _ := bm.PPRMSpec()
	opts := core.DefaultOptions()
	opts.TotalSteps = 100000
	opts.ImproveSteps = 20000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Synthesize(spec, opts)
		if !res.Found {
			b.Fatal("decod24 failed")
		}
	}
}

// BenchmarkExamples runs the full worked-example set (Figs. 3(d), 7, 8 and
// Examples 1–8; the quick subset that synthesizes in milliseconds).
func BenchmarkExamples(b *testing.B) {
	names := []string{"ex1", "shiftright3", "fredkin3", "swap3", "swap4",
		"shiftleft3", "shiftleft4", "fulladder"}
	specs := make([]*Spec, len(names))
	for i, n := range names {
		bm, err := BenchmarkByName(n)
		if err != nil {
			b.Fatal(err)
		}
		specs[i], _ = bm.PPRMSpec()
	}
	opts := core.DefaultOptions()
	opts.TotalSteps = 50000
	opts.ImproveSteps = 10000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j, spec := range specs {
			if res := core.Synthesize(spec, opts); !res.Found {
				b.Fatalf("example %s failed", names[j])
			}
		}
	}
}

// BenchmarkTable5 resynthesizes random 8-variable circuits of ≤15 gates
// (the Table V workload at its middle variable count).
func BenchmarkTable5(b *testing.B) { benchScalability(b, 8, 15) }

// BenchmarkTable6 is the ≤20-gate variant (Table VI).
func BenchmarkTable6(b *testing.B) { benchScalability(b, 12, 20) }

// BenchmarkTable7 is the ≤25-gate variant at the top width (Table VII).
func BenchmarkTable7(b *testing.B) { benchScalability(b, 16, 25) }

func benchScalability(b *testing.B, wires, maxGates int) {
	src := rng.New(uint64(wires)*100 + uint64(maxGates))
	b.ReportAllocs()
	found := 0
	for i := 0; i < b.N; i++ {
		gates := 1 + src.Intn(maxGates)
		c := circuit.Random(wires, gates, circuit.GT, src)
		opts := core.DefaultOptions()
		opts.FirstSolution = true
		opts.TotalSteps = 60000
		opts.MaxGates = 40
		if res := core.Synthesize(c.PPRM(), opts); res.Found {
			found++
		}
	}
	b.ReportMetric(float64(found)/float64(b.N), "found-rate")
}

// BenchmarkMMDBaseline measures the transformation-based baseline on the
// Table I workload for comparison with BenchmarkTable1.
func BenchmarkMMDBaseline(b *testing.B) {
	src := rng.New(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := perm.Random(3, src)
		if c := mmd.Synthesize(p, mmd.Bidirectional); !c.Perm().Equal(p) {
			b.Fatal("baseline produced a wrong circuit")
		}
	}
}

// --- Ablations (DESIGN.md callouts) ---

func ablationWorkload(b *testing.B, mut func(*core.Options)) (foundRate, avgGates float64) {
	src := rng.New(12345)
	found, gates := 0, 0
	const sample = 1 // per b.N iteration
	total := 0
	for i := 0; i < b.N; i++ {
		for j := 0; j < sample; j++ {
			p := perm.Random(4, src)
			opts := core.DefaultOptions()
			opts.MaxGates = 40
			opts.TotalSteps = 30000
			opts.ImproveSteps = 5000
			mut(&opts)
			res, err := core.SynthesizePerm(p, opts)
			if err != nil {
				b.Fatal(err)
			}
			total++
			if res.Found {
				found++
				gates += res.Circuit.Len()
			}
		}
	}
	if found == 0 {
		return 0, 0
	}
	return float64(found) / float64(total), float64(gates) / float64(found)
}

func reportAblation(b *testing.B, foundRate, avgGates float64) {
	b.ReportMetric(foundRate, "found-rate")
	b.ReportMetric(avgGates, "avg-gates")
}

// BenchmarkAblationWeightsPaper uses the published Eq. (4) weights and
// depth division; compare its found-rate with BenchmarkAblationWeightsOurs.
func BenchmarkAblationWeightsPaper(b *testing.B) {
	fr, ag := ablationWorkload(b, func(o *core.Options) {
		o.Alpha, o.Beta, o.Gamma = 0.3, 0.6, 0.1
		o.LinearElim = false
	})
	reportAblation(b, fr, ag)
}

// BenchmarkAblationWeightsOurs uses the repository defaults.
func BenchmarkAblationWeightsOurs(b *testing.B) {
	fr, ag := ablationWorkload(b, func(o *core.Options) {})
	reportAblation(b, fr, ag)
}

// BenchmarkAblationPerStepElim scores with the per-step elim reading.
func BenchmarkAblationPerStepElim(b *testing.B) {
	fr, ag := ablationWorkload(b, func(o *core.Options) { o.PerStepElim = true })
	reportAblation(b, fr, ag)
}

// BenchmarkAblationAdmitAll removes the bounded-growth admission filter.
func BenchmarkAblationAdmitAll(b *testing.B) {
	fr, ag := ablationWorkload(b, func(o *core.Options) { o.Admission = core.AdmitAll })
	reportAblation(b, fr, ag)
}

// BenchmarkAblationAdmitPerStep applies the strict Fig. 4 line 31 rule.
func BenchmarkAblationAdmitPerStep(b *testing.B) {
	fr, ag := ablationWorkload(b, func(o *core.Options) { o.Admission = core.AdmitPerStep })
	reportAblation(b, fr, ag)
}

// BenchmarkAblationNoGreedy disables the greedy-k heuristic.
func BenchmarkAblationNoGreedy(b *testing.B) {
	fr, ag := ablationWorkload(b, func(o *core.Options) { o.GreedyK = 0 })
	reportAblation(b, fr, ag)
}

// BenchmarkAblationNoAdditional disables the Section IV-D substitutions.
func BenchmarkAblationNoAdditional(b *testing.B) {
	fr, ag := ablationWorkload(b, func(o *core.Options) { o.Additional = false })
	reportAblation(b, fr, ag)
}

// BenchmarkAblationNoRestarts disables the restart heuristic.
func BenchmarkAblationNoRestarts(b *testing.B) {
	fr, ag := ablationWorkload(b, func(o *core.Options) { o.MaxSteps = 0 })
	reportAblation(b, fr, ag)
}

// BenchmarkPPRMTransform measures the truth-table → PPRM Möbius transform
// on 16-variable functions (the substrate cost of Tables V–VII).
func BenchmarkPPRMTransform(b *testing.B) {
	src := rng.New(6)
	c := circuit.Random(16, 25, circuit.GT, src)
	p := c.Perm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PPRMOf(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymbolicPPRM measures the symbolic circuit → PPRM route used
// for wide circuits (e.g. shift28).
func BenchmarkSymbolicPPRM(b *testing.B) {
	src := rng.New(7)
	c := circuit.Random(28, 25, circuit.GT, src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if spec := c.PPRM(); spec.N != 28 {
			b.Fatal("bad spec")
		}
	}
}

// BenchmarkEmbedding measures the irreversible→reversible lifting on the
// rd53 truth table.
func BenchmarkEmbedding(b *testing.B) {
	tab := &TruthTable{Inputs: 5, Outputs: 3, Rows: make([]uint32, 32)}
	for x := range tab.Rows {
		tab.Rows[x] = uint32(popcount5(uint32(x)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Embed(tab); err != nil {
			b.Fatal(err)
		}
	}
}

func popcount5(x uint32) int {
	n := 0
	for i := 0; i < 5; i++ {
		n += int(x >> uint(i) & 1)
	}
	return n
}
