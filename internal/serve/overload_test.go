package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// blockingRunner returns a Runner that parks every job until release is
// closed (or the job's context is canceled), so tests can fill the queue
// deterministically.
func blockingRunner(release <-chan struct{}) func(context.Context, *Job) core.Result {
	return func(ctx context.Context, j *Job) core.Result {
		select {
		case <-release:
			return core.Result{Found: false, StopReason: core.StopStepLimit}
		case <-ctx.Done():
			return core.Result{Found: false, StopReason: core.StopCanceled}
		}
	}
}

// submitN posts n distinct async jobs of the given class and returns the
// HTTP status codes observed.
func submitN(t *testing.T, url string, n int, class string) []int {
	t.Helper()
	codes := make([]int, 0, n)
	for i := 0; i < n; i++ {
		// Distinct step budgets make every request a distinct job.
		body := fmt.Sprintf(`{"spec":{"bench":"rd32"},"class":%q,"budget":{"steps":%d}}`, class, 1000+i)
		resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	return codes
}

func TestQueueFullShedsWith429AndRetryAfter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, ts := startTestServer(t, Config{
		Workers:          1,
		QueueInteractive: 3,
		QueueBatch:       2,
		Runner:           blockingRunner(release),
		RetryAfter:       2 * time.Second,
	})

	// Worker 1 grabs the first job; the next 3 fill the interactive queue.
	codes := submitN(t, ts.URL, 4, "interactive")
	for i, c := range codes {
		if c != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202", i, c)
		}
	}
	waitForDepth(t, s, 3, 0)

	// The 5th interactive submit must shed, with a Retry-After that grows
	// with the queue depth: (1 + 3/1) * 2s = 8s.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"spec":{"bench":"rd32"},"budget":{"steps":9999}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if ra != 8 {
		t.Errorf("Retry-After = %d, want 8 (depth-scaled)", ra)
	}

	// The queue never grew past its cap, and the shed is counted.
	if qi, _ := s.queue.Depths(); qi != 3 {
		t.Errorf("interactive depth = %d, want 3 (bounded)", qi)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Errorf("shed counter = %d, want 1", st.Shed)
	}

	// Batch has its own cap: 2 fit, the 3rd sheds.
	codes = submitN(t, ts.URL, 3, "batch")
	want := []int{202, 202, 429}
	for i := range codes {
		if codes[i] != want[i] {
			t.Errorf("batch submit %d = %d, want %d", i, codes[i], want[i])
		}
	}
}

// TestRetryAfterCeilingRounding is the regression test for the
// depth-scaled hint rounding DOWN: with a 600 ms base and 3 jobs queued
// behind 1 worker the computed wait is (1+3/1)×600ms = 2.4 s, which
// Round(time.Second) truncated to 2 — clients came back ~17% early and
// were shed again. The header must carry the ceiling, 3.
func TestRetryAfterCeilingRounding(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, ts := startTestServer(t, Config{
		Workers:          1,
		QueueInteractive: 3,
		QueueBatch:       2,
		Runner:           blockingRunner(release),
		RetryAfter:       600 * time.Millisecond,
	})

	codes := submitN(t, ts.URL, 4, "interactive")
	for i, c := range codes {
		if c != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202", i, c)
		}
	}
	waitForDepth(t, s, 3, 0)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"spec":{"bench":"rd32"},"budget":{"steps":9999}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want %q (ceiling of 2.4s, not nearest-second 2)", ra, "3")
	}
}

func TestInteractiveDequeuesBeforeEarlierBatch(t *testing.T) {
	release := make(chan struct{}) // closed below, once the first job runs

	var mu sync.Mutex
	var order []string
	started := make(chan struct{}, 16)
	s, err := New(Config{
		Workers:          1,
		QueueInteractive: 8,
		QueueBatch:       8,
		Runner: func(ctx context.Context, j *Job) core.Result {
			mu.Lock()
			order = append(order, j.Class().String())
			mu.Unlock()
			started <- struct{}{}
			return blockingRunner(release)(ctx, j)
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Enqueue before starting the worker: batch first, then interactive.
	enqueue := func(class string, steps int) {
		t.Helper()
		body := fmt.Sprintf(`{"spec":{"bench":"rd32"},"class":%q,"budget":{"steps":%d}}`, class, steps)
		var req Request
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		c, rerr := compileRequest(&req, s.cfg.Ceiling)
		if rerr != nil {
			t.Fatalf("compile: %v", rerr)
		}
		if _, _, err := s.admit(c, req); err != nil {
			t.Fatalf("admit: %v", err)
		}
	}
	enqueue("batch", 1001)
	enqueue("batch", 1002)
	enqueue("interactive", 1003)
	enqueue("interactive", 1004)

	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})

	<-started // first job is running; release lets the rest flow
	close(release)
	for i := 0; i < 3; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatalf("job %d never started", i+2)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	// All four jobs were queued before the worker started, so the dequeue
	// order is fully deterministic: both interactive jobs jump ahead of the
	// batch jobs that arrived first.
	want := []string{"interactive", "interactive", "batch", "batch"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}

func TestPerJobDeadlineFires(t *testing.T) {
	// Real engine: hwb8 cannot finish in 150 ms, so the engine's own
	// TimeLimit stops it with StopDeadline and the job completes as
	// done/not-found (422 on the sync path).
	_, ts := startTestServer(t, Config{Workers: 1})
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1",
		`{"spec":{"bench":"hwb8"},"budget":{"time_ms":150}}`)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if v.Result == nil || v.Result.Stop != core.StopDeadline.String() {
		t.Fatalf("stop = %+v, want deadline", v.Result)
	}
	if elapsed > 10*time.Second {
		t.Errorf("deadline took %v to fire, want ~150ms", elapsed)
	}
}

func TestWedgedRunnerBackstopDeadline(t *testing.T) {
	// A runner that ignores its budget entirely: the context backstop
	// (TimeLimit + 5 s) must still reclaim the worker.
	s, ts := startTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, j *Job) core.Result {
			<-ctx.Done() // simulates a search that only stops when forced
			return core.Result{StopReason: core.StopCanceled}
		},
	})
	resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1",
		`{"spec":{"bench":"rd32"},"budget":{"time_ms":100}}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body: %s", resp.StatusCode, body)
	}
	if n := s.running.Load(); n != 0 {
		t.Errorf("running = %d after backstop, want 0", n)
	}
}

func TestRunnerPanicIsIsolated(t *testing.T) {
	s, ts := startTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, j *Job) core.Result {
			panic("boom")
		},
	})
	resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1", `{"spec":{"bench":"rd32"}}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if v.Status != string(StatusFailed) || v.Error == "" {
		t.Errorf("job = %s/%q, want failed with an error", v.Status, v.Error)
	}
	// The worker survived the panic: the next job still runs (and a failed
	// job is not deduplicated, so the retry really re-runs).
	resp2, _ := postJSON(t, ts.URL+"/v1/jobs?wait=1", `{"spec":{"bench":"rd32"}}`)
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("second submit = %d, want 500 (same panicking runner, fresh run)", resp2.StatusCode)
	}
	if st := s.Stats(); st.Failed != 2 || st.Deduplicated != 0 {
		t.Errorf("stats = %+v, want failed=2 deduplicated=0", st)
	}
}

func TestDrainingRejectsSubmitsWith503(t *testing.T) {
	s, ts := startTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", `{"spec":{"bench":"rd32"}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 without Retry-After")
	}

	// Health reports the drain.
	r2, body := getURL(t, ts.URL+"/v1/healthz")
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", r2.StatusCode)
	}
	var h healthView
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if h.Status != "draining" {
		t.Errorf("health status = %q, want draining", h.Status)
	}
}

// waitForDepth polls until the queue depths match (the workers dequeue
// asynchronously, so a fixed sleep would race).
func waitForDepth(t *testing.T, s *Server, wantI, wantB int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		qi, qb := s.queue.Depths()
		if qi == wantI && qb == wantB {
			return
		}
		time.Sleep(time.Millisecond)
	}
	qi, qb := s.queue.Depths()
	t.Fatalf("queue depths = %d/%d, want %d/%d", qi, qb, wantI, wantB)
}
