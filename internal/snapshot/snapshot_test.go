package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/bits"
)

// sampleState builds a small but fully populated state (nodes, queue,
// solution, first moves, transposition table) for format tests.
func sampleState() *State {
	return &State{
		SpecHash:  0xdeadbeefcafef00d,
		OptionsFP: 0x0123456789abcdef,
		Root: SpecState{
			N: 3,
			Out: []TermSetState{
				{Terms: []bits.Mask{1, 3, 5}, Cap: 4},
				{Terms: []bits.Mask{2}, Cap: 1},
				{Terms: []bits.Mask{0, 4, 6, 7}, Cap: 6},
			},
		},
		Nodes: []NodeState{
			{Parent: -1, ID: 0, Target: -1, Depth: 0, Terms: 8, Priority: 1e308, Materialized: true},
			{Parent: 0, ID: 1, Target: 1, Factor: 4, Depth: 1, Terms: 6, Elim: 2, Priority: 1.25, Hash: 42, Materialized: true},
			{Parent: 1, ID: 3, Target: 0, Factor: 6, Depth: 2, Terms: 5, Elim: 1, Priority: -0.5, Hash: 7},
			{Parent: 1, ID: 4, Target: 2, Factor: 1, Depth: 2, Terms: 3, Elim: 3, Priority: 2.5, Hash: 9},
		},
		Queued:            []int{3, 2},
		BestSol:           -1,
		BestDepth:         9,
		Steps:             123,
		StepsSinceRestart: 23,
		SolSteps:          0,
		NodesCreated:      5,
		Restarts:          1,
		FirstMoves: []FirstMoveState{
			{Target: 1, Factor: 4, Priority: 3.5},
			{Target: 0, Factor: 2, Priority: 1.5},
		},
		NextFirstMove: 1,
		Elapsed:       1500 * time.Millisecond,
		PeakBytes:     1 << 20,
		TT: &TTState{
			Keys:      []uint64{5, 99, 1 << 40, 1<<63 + 17},
			Depths:    []int32{1, 2, 0, 7},
			Hits:      10,
			Misses:    20,
			Evictions: 3,
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for name, st := range map[string]*State{
		"full": sampleState(),
		"minimal": {
			Root:      SpecState{N: 1, Out: []TermSetState{{Terms: nil, Cap: 0}}},
			Nodes:     []NodeState{{Parent: -1, Target: -1, Materialized: true}},
			Queued:    []int{0},
			BestSol:   -1,
			BestDepth: 1,
		},
	} {
		data := Encode(st)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		// nil and empty slices compare unequal under DeepEqual; normalize.
		if len(got.Queued) == 0 {
			got.Queued, st.Queued = nil, nil
		}
		for i := range got.Root.Out {
			if len(got.Root.Out[i].Terms) == 0 {
				got.Root.Out[i].Terms, st.Root.Out[i].Terms = nil, nil
			}
		}
		if len(got.FirstMoves) == 0 {
			got.FirstMoves, st.FirstMoves = nil, nil
		}
		if !reflect.DeepEqual(got, st) {
			t.Fatalf("%s: round trip mismatch\n got %+v\nwant %+v", name, got, st)
		}
		// Deterministic encoding: encode(decode(x)) == x byte-for-byte.
		if string(Encode(got)) != string(data) {
			t.Fatalf("%s: re-encode differs", name)
		}
	}
}

// TestDecodeTruncated verifies that every possible truncation of a valid
// snapshot is rejected with a typed error — never a panic, never success.
func TestDecodeTruncated(t *testing.T) {
	data := Encode(sampleState())
	for n := 0; n < len(data); n++ {
		st, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully: %+v", n, len(data), st)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotSnapshot) && !errors.Is(err, ErrVersionSkew) {
			t.Fatalf("truncation to %d bytes: untyped error %v", n, err)
		}
	}
}

// TestDecodeBitFlips flips every single bit of a valid snapshot and
// verifies the damage is always detected (magic, version, length, and
// payload are all covered by structural checks or the CRC).
func TestDecodeBitFlips(t *testing.T) {
	data := Encode(sampleState())
	for i := 0; i < len(data); i++ {
		for b := 0; b < 8; b++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << b
			st, err := Decode(mut)
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d went undetected: %+v", i, b, st)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotSnapshot) && !errors.Is(err, ErrVersionSkew) {
				t.Fatalf("bit flip at byte %d bit %d: untyped error %v", i, b, err)
			}
		}
	}
}

func TestDecodeVersionSkew(t *testing.T) {
	data := Encode(sampleState())
	mut := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(mut[len(magic):], Version+1)
	if _, err := Decode(mut); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("future version: got %v, want ErrVersionSkew", err)
	}
	binary.LittleEndian.PutUint16(mut[len(magic):], 0)
	if _, err := Decode(mut); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("version 0: got %v, want ErrVersionSkew", err)
	}
}

func TestDecodeNotSnapshot(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("hello"), []byte("# a PPRM file\na' = a\n")} {
		if _, err := Decode(data); !errors.Is(err, ErrNotSnapshot) {
			t.Fatalf("Decode(%q): got %v, want ErrNotSnapshot", data, err)
		}
	}
}

// TestDecodeHugeCounts verifies that a forged count field cannot force a
// huge allocation: counts are bounds-checked against the remaining bytes.
func TestDecodeHugeCounts(t *testing.T) {
	// Hand-build a payload claiming 2^60 nodes.
	var e encoder
	e.u64(1) // spec hash
	e.u64(2) // options fp
	e.uvarint(1)
	e.uvarint(0) // out[0] cap
	e.uvarint(0) // out[0] len
	e.uvarint(1 << 60)
	payload := e.buf
	data := make([]byte, 0, headerSize+len(payload))
	data = append(data, magic...)
	data = binary.LittleEndian.AppendUint16(data, Version)
	data = binary.LittleEndian.AppendUint32(data, uint32(len(payload)))
	data = binary.LittleEndian.AppendUint32(data, crc32.ChecksumIEEE(payload))
	data = append(data, payload...)
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged node count: got %v, want ErrCorrupt", err)
	}
}

func TestWriteFileReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	st := sampleState()
	if err := WriteFile(nil, path, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SpecHash != st.SpecHash || got.Steps != st.Steps {
		t.Fatalf("read back mismatch: %+v", got)
	}
	// Overwrite must leave no temp files behind.
	st.Steps = 456
	if err := WriteFile(nil, path, st); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory not clean after overwrite: %v", entries)
	}
	got, err = ReadFile(path)
	if err != nil || got.Steps != 456 {
		t.Fatalf("overwrite not visible: steps=%d err=%v", got.Steps, err)
	}
}

func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "nope.ckpt"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: got %v, want ErrNotExist", err)
	}
}

func FuzzDecode(f *testing.F) {
	f.Add(Encode(sampleState()))
	f.Add(Encode(&State{Root: SpecState{N: 1, Out: []TermSetState{{}}}, BestSol: -1}))
	f.Add([]byte(magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		// Anything Decode accepts must re-encode without panicking and
		// decode back to the same bytes (canonical form).
		if _, err := Decode(Encode(st)); err != nil {
			t.Fatalf("accepted state fails round trip: %v", err)
		}
	})
}
