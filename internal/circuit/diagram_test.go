package circuit

import (
	"strings"
	"testing"
)

func TestDiagramFig3d(t *testing.T) {
	c, err := Parse(3, "TOF1(a) TOF3(c,a,b) TOF3(b,a,c)")
	if err != nil {
		t.Fatal(err)
	}
	d := c.Diagram()
	lines := strings.Split(d, "\n")
	if len(lines) != 3 {
		t.Fatalf("diagram has %d lines, want 3:\n%s", len(lines), d)
	}
	// Every line must have the same rune length.
	l0 := len([]rune(lines[0]))
	for _, l := range lines {
		if len([]rune(l)) != l0 {
			t.Errorf("ragged diagram:\n%s", d)
		}
	}
	// Gate 1: NOT on a → ⊕ on line a, plain wires elsewhere in column 1.
	if !strings.Contains(lines[0], "⊕") {
		t.Errorf("wire a missing targets:\n%s", d)
	}
	if strings.Count(d, "⊕") != 3 {
		t.Errorf("want 3 targets, got %d:\n%s", strings.Count(d, "⊕"), d)
	}
	if strings.Count(d, "●") != 4 {
		t.Errorf("want 4 controls, got %d:\n%s", strings.Count(d, "●"), d)
	}
}

func TestDiagramSpansGap(t *testing.T) {
	// A gate with control a and target c must bridge wire b with │.
	c, _ := Parse(3, "TOF2(a,c)")
	d := c.Diagram()
	if !strings.Contains(strings.Split(d, "\n")[1], "│") {
		t.Errorf("gap wire not bridged:\n%s", d)
	}
}
