package circuit

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/perm"
	"repro/internal/rng"
)

func TestGateApply(t *testing.T) {
	// TOF3 with controls a,b and target c on 3 wires.
	g := NewGate(2, 0, 1)
	cases := []struct{ in, want uint32 }{
		{0b000, 0b000},
		{0b011, 0b111}, // both controls set → target flips
		{0b111, 0b011},
		{0b001, 0b001}, // one control → unchanged
	}
	for _, c := range cases {
		if got := g.Apply(c.in); got != c.want {
			t.Errorf("Apply(%03b) = %03b, want %03b", c.in, got, c.want)
		}
	}
}

func TestGateSizes(t *testing.T) {
	if NewGate(0).Size() != 1 {
		t.Error("NOT size should be 1")
	}
	if NewGate(0, 1).Size() != 2 {
		t.Error("CNOT size should be 2")
	}
	if NewGate(0, 1, 2, 3).Size() != 4 {
		t.Error("TOF4 size should be 4")
	}
}

func TestNewGatePanicsOnTargetControl(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("target==control must panic")
		}
	}()
	NewGate(1, 1)
}

func TestGateString(t *testing.T) {
	// Paper notation: TOF3(c,a,b) = controls c and a, target b.
	g := NewGate(1, 2, 0)
	if got := g.String(); got != "TOF3(c,a,b)" {
		t.Errorf("String = %q, want TOF3(c,a,b)", got)
	}
	if got := NewGate(0).String(); got != "TOF1(a)" {
		t.Errorf("NOT String = %q", got)
	}
}

func TestFig3dCircuit(t *testing.T) {
	// TOF1(a) TOF3(c,a,b)… the paper's Fig. 3(d) realizes Fig. 1's
	// function {1,0,7,2,3,4,5,6}.
	c, err := Parse(3, "TOF1(a) TOF3(c,a,b) TOF3(b,a,c)")
	if err != nil {
		t.Fatal(err)
	}
	want := perm.MustFromInts([]int{1, 0, 7, 2, 3, 4, 5, 6})
	if !c.Perm().Equal(want) {
		t.Errorf("Fig. 3(d) circuit realizes %s, want %s", c.Perm(), want)
	}
}

func TestExample1Circuit(t *testing.T) {
	// Example 1: TOF3(c,a,b) TOF3(c,b,a) TOF3(c,a,b) TOF1(a) realizes
	// {1, 0, 3, 2, 5, 7, 4, 6}.
	c, err := Parse(3, "TOF3(c,a,b) TOF3(c,b,a) TOF3(c,a,b) TOF1(a)")
	if err != nil {
		t.Fatal(err)
	}
	want := perm.MustFromInts([]int{1, 0, 3, 2, 5, 7, 4, 6})
	if !c.Perm().Equal(want) {
		t.Errorf("Example 1 circuit realizes %s, want %s", c.Perm(), want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"TOF2(a,a)", // repeated wire
		"TOF2(a,z)", // wire beyond width
		"NOT(a)",    // unknown mnemonic
		"TOF1()",    // no wires
		"TOF2(a b)", // bad separator
	} {
		if _, err := Parse(3, bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	src := rng.New(17)
	for trial := 0; trial < 30; trial++ {
		c := Random(5, 10, GT, src)
		back, err := Parse(5, c.String())
		if err != nil {
			t.Fatalf("round trip parse: %v (%s)", err, c)
		}
		if !back.Perm().Equal(c.Perm()) {
			t.Fatalf("round trip changed function: %s", c)
		}
	}
}

func TestInverse(t *testing.T) {
	src := rng.New(23)
	for trial := 0; trial < 20; trial++ {
		c := Random(4, 8, GT, src)
		inv := c.Inverse()
		if !c.Perm().Compose(inv.Perm()).IsIdentity() {
			t.Fatalf("inverse broken for %s", c)
		}
	}
}

func TestCircuitIsPermutation(t *testing.T) {
	src := rng.New(31)
	for trial := 0; trial < 20; trial++ {
		c := Random(6, 15, GT, src)
		if err := c.Perm().Validate(); err != nil {
			t.Fatalf("circuit simulation is not reversible: %v", err)
		}
	}
}

func TestRandomLibraryRespected(t *testing.T) {
	src := rng.New(37)
	for trial := 0; trial < 20; trial++ {
		if c := Random(8, 20, NCT, src); !c.NCTOnly() {
			t.Fatal("NCT random circuit contains large gates")
		}
	}
}

func TestRandomGateCount(t *testing.T) {
	src := rng.New(41)
	c := Random(6, 25, GT, src)
	if c.Len() != 25 {
		t.Errorf("Random circuit has %d gates, want 25", c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestQuantumCost(t *testing.T) {
	// Cost table anchors (Section II-D): NOT/CNOT 1, TOF3 5, TOF4 13,
	// TOF5 29.
	anchors := []struct{ size, wires, want int }{
		{1, 3, 1},
		{2, 3, 1},
		{3, 3, 5},
		{4, 4, 13},
		{5, 5, 29},
		{6, 6, 61},  // no free wires: 2^6 − 3
		{6, 10, 38}, // ≥3 free wires: 12·3+2
		{6, 7, 52},  // 1 free wire: 24·2+4
	}
	for _, a := range anchors {
		if got := GateCost(a.size, a.wires); got != a.want {
			t.Errorf("GateCost(%d,%d) = %d, want %d", a.size, a.wires, got, a.want)
		}
	}
}

func TestCircuitQuantumCost(t *testing.T) {
	// Example 1's circuit: three TOF3 (5 each) + one NOT = 16… the paper
	// reports the rd32 circuit at cost 8; anchor on arithmetic instead:
	c, _ := Parse(3, "TOF3(c,a,b) TOF3(c,b,a) TOF3(c,a,b) TOF1(a)")
	if got := c.QuantumCost(); got != 16 {
		t.Errorf("QuantumCost = %d, want 16", got)
	}
}

func TestSimplifyCancelsAdjacent(t *testing.T) {
	c, _ := Parse(3, "TOF3(c,a,b) TOF3(c,a,b) TOF1(a)")
	s := c.Simplify()
	if s.Len() != 1 {
		t.Errorf("Simplify left %d gates (%s), want 1", s.Len(), s)
	}
	if !s.Perm().Equal(c.Perm()) {
		t.Error("Simplify changed the function")
	}
}

func TestSimplifyAcrossCommutingGates(t *testing.T) {
	// TOF1(a) and TOF2(b,c)… a NOT on a commutes with a CNOT b→c, so the
	// twin NOTs cancel across it.
	c, _ := Parse(3, "TOF1(a) TOF2(b,c) TOF1(a)")
	s := c.Simplify()
	if s.Len() != 1 {
		t.Errorf("Simplify left %d gates (%s), want 1", s.Len(), s)
	}
	if !s.Perm().Equal(c.Perm()) {
		t.Error("Simplify changed the function")
	}
}

func TestSimplifyPreservesFunction(t *testing.T) {
	src := rng.New(53)
	for trial := 0; trial < 40; trial++ {
		c := Random(4, 12, GT, src)
		s := c.Simplify()
		if !s.Perm().Equal(c.Perm()) {
			t.Fatalf("Simplify changed function of %s", c)
		}
		if s.Len() > c.Len() {
			t.Fatalf("Simplify grew the circuit")
		}
	}
}

func TestCommutesIsSound(t *testing.T) {
	// For every pair of random gates the commutes predicate must imply
	// function equality of the two orders.
	src := rng.New(59)
	for trial := 0; trial < 200; trial++ {
		c := Random(4, 2, GT, src)
		g1, g2 := c.Gates[0], c.Gates[1]
		ab := New(4)
		ab.Append(g1, g2)
		ba := New(4)
		ba.Append(g2, g1)
		if commutes(g1, g2) && !ab.Perm().Equal(ba.Perm()) {
			t.Fatalf("commutes(%s,%s) = true but orders differ", g1, g2)
		}
	}
}

func TestValidate(t *testing.T) {
	c := New(2)
	c.Append(Gate{Target: 5})
	if c.Validate() == nil {
		t.Error("out-of-range target should fail validation")
	}
	c2 := New(2)
	c2.Append(Gate{Target: 0, Controls: bits.Bit(0)})
	if c2.Validate() == nil {
		t.Error("target-in-controls should fail validation")
	}
}

func TestPrepend(t *testing.T) {
	c := New(2)
	c.Append(NewGate(0, 1)) // CNOT b→a
	c.Prepend(NewGate(1))   // NOT b first
	want := New(2)
	want.Append(NewGate(1), NewGate(0, 1))
	if !c.Perm().Equal(want.Perm()) {
		t.Error("Prepend order wrong")
	}
}

func TestCostMonotoneInSize(t *testing.T) {
	for wires := 3; wires <= 16; wires++ {
		prev := 0
		for size := 1; size <= wires; size++ {
			c := GateCost(size, wires)
			if c < prev {
				t.Errorf("cost not monotone at size %d, wires %d: %d < %d", size, wires, c, prev)
			}
			prev = c
		}
	}
}

func TestCostMoreAncillaeNeverWorse(t *testing.T) {
	for size := 3; size <= 12; size++ {
		for wires := size; wires <= size+8; wires++ {
			if GateCost(size, wires+1) > GateCost(size, wires) {
				t.Errorf("extra free wire increased cost: size %d wires %d", size, wires)
			}
		}
	}
}

func TestDiagramRowsEqualWires(t *testing.T) {
	src := rng.New(71)
	for trial := 0; trial < 10; trial++ {
		n := 2 + src.Intn(5)
		c := Random(n, 5, GT, src)
		lines := 1
		for _, r := range c.Diagram() {
			if r == '\n' {
				lines++
			}
		}
		if lines != n {
			t.Errorf("diagram has %d lines for %d wires", lines, n)
		}
	}
}
