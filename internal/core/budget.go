package core

import (
	"fmt"
	"time"
)

// BudgetCeiling is a set of server-wide per-request resource ceilings. A
// synthesis service clamps every request's budgets against it so that no
// single request can hold a worker, the memory accountant, or the queue
// hostage: an unlimited (zero) request budget is raised to the ceiling, and
// a budget above the ceiling is cut down to it. A zero ceiling field means
// "no ceiling for that dimension" — the request's own value stands.
type BudgetCeiling struct {
	// MaxTime caps Options.TimeLimit.
	MaxTime time.Duration
	// MaxSteps caps Options.TotalSteps.
	MaxSteps int
	// MaxMemory caps Options.MaxMemory (bytes).
	MaxMemory int64
	// MaxGates caps Options.MaxGates.
	MaxGates int
}

// ClampBudget clamps the Options' budget fields (TimeLimit, TotalSteps,
// MaxMemory, MaxGates) against the ceiling and returns one human-readable
// note per adjustment, in a stable order. Only budgets are touched: the
// decision-shaping options (weights, pruning, admission, dedup) are left
// alone, so a clamped run remains checkpoint-compatible with an unclamped
// one (see optionsFingerprint — MaxMemory is the one fingerprinted field a
// ceiling can change, which is why services clamp before the first run, not
// between segments).
func (o *Options) ClampBudget(c BudgetCeiling) []string {
	var notes []string
	if c.MaxTime > 0 {
		switch {
		case o.TimeLimit == 0:
			o.TimeLimit = c.MaxTime
			notes = append(notes, fmt.Sprintf("time defaulted to ceiling %v", c.MaxTime))
		case o.TimeLimit > c.MaxTime:
			notes = append(notes, fmt.Sprintf("time clamped %v -> %v", o.TimeLimit, c.MaxTime))
			o.TimeLimit = c.MaxTime
		}
	}
	if c.MaxSteps > 0 {
		switch {
		case o.TotalSteps == 0:
			o.TotalSteps = c.MaxSteps
			notes = append(notes, fmt.Sprintf("steps defaulted to ceiling %d", c.MaxSteps))
		case o.TotalSteps > c.MaxSteps:
			notes = append(notes, fmt.Sprintf("steps clamped %d -> %d", o.TotalSteps, c.MaxSteps))
			o.TotalSteps = c.MaxSteps
		}
	}
	if c.MaxMemory > 0 {
		switch {
		case o.MaxMemory == 0:
			o.MaxMemory = c.MaxMemory
			notes = append(notes, fmt.Sprintf("memory defaulted to ceiling %d MiB", c.MaxMemory>>20))
		case o.MaxMemory > c.MaxMemory:
			notes = append(notes, fmt.Sprintf("memory clamped %d MiB -> %d MiB", o.MaxMemory>>20, c.MaxMemory>>20))
			o.MaxMemory = c.MaxMemory
		}
	}
	if c.MaxGates > 0 {
		switch {
		case o.MaxGates == 0:
			o.MaxGates = c.MaxGates
			notes = append(notes, fmt.Sprintf("max gates defaulted to ceiling %d", c.MaxGates))
		case o.MaxGates > c.MaxGates:
			notes = append(notes, fmt.Sprintf("max gates clamped %d -> %d", o.MaxGates, c.MaxGates))
			o.MaxGates = c.MaxGates
		}
	}
	return notes
}

// OptionsFingerprint hashes the decision-shaping options — everything that
// influences which nodes are generated, scored, admitted, pruned, or
// deduplicated. Two Options values with equal fingerprints drive the search
// identically; budgets that only decide when to stop (TimeLimit,
// TotalSteps, ImproveSteps, FirstSolution) are excluded. Services use it as
// the options half of an idempotency key; the checkpoint layer uses the
// same hash to gate resumes.
func OptionsFingerprint(o *Options) uint64 { return optionsFingerprint(o) }

// Resumable reports whether a run that stopped for this reason can be
// continued from its final checkpoint: the budget-driven stops (canceled,
// deadline, step limit, memory limit). Solved and exhausted runs are
// finished — there is nothing left to continue — and an internal-error
// abort has no trustworthy state to save.
func (r StopReason) Resumable() bool { return resumableStop(r) }
