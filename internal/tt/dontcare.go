package tt

import (
	"fmt"

	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
)

// PartialTable is an incompletely specified multi-output function: output
// bit j of row x is specified iff bit j of Care[x] is set; unspecified
// bits are don't-cares. The paper lists don't-care handling as future work
// ("We currently preassign values to don't-care outputs. It would be
// better if we could find a way to dynamically assign these values");
// EmbedPartial explores assignments instead of fixing one blindly.
type PartialTable struct {
	Inputs  int
	Outputs int
	Rows    []uint32
	Care    []uint32
}

// Validate checks structural consistency.
func (t *PartialTable) Validate() error {
	full := Table{Inputs: t.Inputs, Outputs: t.Outputs, Rows: t.Rows}
	if err := full.Validate(); err != nil {
		return err
	}
	if len(t.Care) != len(t.Rows) {
		return fmt.Errorf("tt: %d care masks for %d rows", len(t.Care), len(t.Rows))
	}
	outMask := uint32(1)<<uint(t.Outputs) - 1
	for x, c := range t.Care {
		if c&^outMask != 0 {
			return fmt.Errorf("tt: care mask %d out of range at row %d", c, x)
		}
		if t.Rows[x]&^c != 0 {
			return fmt.Errorf("tt: row %d sets unspecified bits", x)
		}
	}
	return nil
}

// DontCareBits returns the total number of unspecified output bits.
func (t *PartialTable) DontCareBits() int {
	n := 0
	outMask := uint32(1)<<uint(t.Outputs) - 1
	for _, c := range t.Care {
		n += t.Outputs - OnesCount(c&outMask)
	}
	return n
}

// assign materializes one completion of the don't-cares: bit j of row x
// takes choose(x, j) when unspecified.
func (t *PartialTable) assign(choose func(x int, j int) uint32) *Table {
	out := New(t.Inputs, t.Outputs)
	for x := range t.Rows {
		v := t.Rows[x]
		for j := 0; j < t.Outputs; j++ {
			if t.Care[x]>>uint(j)&1 == 0 {
				v |= choose(x, j) << uint(j)
			}
		}
		out.Rows[x] = v
	}
	return out
}

// EmbedPartial embeds an incompletely specified function, choosing among
// `tries` don't-care completions (the all-zeros and all-ones assignments
// plus seeded random ones) the completion whose reversible embedding has
// the smallest PPRM expansion — the measure the synthesis effort tracks.
// It returns the winning embedding and the completed table.
func EmbedPartial(t *PartialTable, tries int, seed uint64) (*Embedding, *Table, error) {
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	if tries < 2 {
		tries = 2
	}
	src := rng.New(seed)
	var bestE *Embedding
	var bestT *Table
	bestTerms := -1
	for i := 0; i < tries; i++ {
		var full *Table
		switch i {
		case 0:
			full = t.assign(func(int, int) uint32 { return 0 })
		case 1:
			full = t.assign(func(int, int) uint32 { return 1 })
		default:
			full = t.assign(func(int, int) uint32 { return uint32(src.Intn(2)) })
		}
		e, err := Embed(full)
		if err != nil {
			return nil, nil, err
		}
		spec, err := pprm.FromPerm(perm.Perm(e.Spec))
		if err != nil {
			return nil, nil, fmt.Errorf("tt: completion %d not reversible: %v", i, err)
		}
		if terms := spec.Terms(); bestTerms < 0 || terms < bestTerms {
			bestTerms = terms
			bestE = e
			bestT = full
		}
	}
	return bestE, bestT, nil
}
