package rmrls

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/rng"
)

// TestWarmCacheRD53 is the acceptance check of the answer cache on the
// headline benchmark: a warm-cache rd53 request is answered as a verified
// cache hit with exactly the gates cold synthesis produces, and the cold
// path itself is unchanged by the cache being attached.
func TestWarmCacheRD53(t *testing.T) {
	b, err := BenchmarkByName("rd53")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.TotalSteps = 200000
	opts.TimeLimit = 0

	cold, err := Synthesize(b.Spec, opts)
	if err != nil || !cold.Found || !cold.Verified {
		t.Fatalf("cold rd53: err=%v res=%+v", err, cold)
	}
	if cold.CacheHit || cold.CanonicalClass != 0 {
		t.Fatalf("cold run without a cache grew cache fields: %+v", cold)
	}

	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = c
	first, err := Synthesize(b.Spec, opts)
	if err != nil || !first.Found {
		t.Fatalf("first cached rd53: err=%v res=%+v", err, first)
	}
	if first.CacheHit {
		t.Fatal("first run through an empty cache reported a hit")
	}
	if first.Circuit.String() != cold.Circuit.String() {
		t.Fatalf("attaching a cache changed the cold search:\nwith: %s\nwithout: %s", first.Circuit, cold.Circuit)
	}

	second, err := Synthesize(b.Spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || !second.Verified || second.StopReason != StopSolved {
		t.Fatalf("warm rd53 not a verified cache hit: %+v", second)
	}
	if second.CanonicalClass == 0 {
		t.Fatal("warm hit missing canonical class")
	}
	if second.Circuit.String() != cold.Circuit.String() {
		t.Fatalf("warm circuit differs from cold synthesis:\nwarm: %s\ncold: %s", second.Circuit, cold.Circuit)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Stores != 1 {
		t.Fatalf("cache stats = %+v, want one miss-store-hit cycle", s)
	}
}

// TestWarmCacheThreeVariableSample re-runs a seeded sample of 3-variable
// functions through a warm cache: the second request of each function must
// be a verified hit with gates identical to its own cold synthesis (the
// identity-conjugation guarantee of the exact classifier). Functions the
// default budget cannot solve are skipped — the exhaustive class-coverage
// test in internal/cache handles every function via the MMD baseline.
func TestWarmCacheThreeVariableSample(t *testing.T) {
	src := rng.New(11)
	opts := DefaultOptions()
	opts.TimeLimit = 0
	solved := 0
	for trial := 0; trial < 40; trial++ {
		p := circuit.Random(3, 2+src.Intn(8), GT, src).Perm()
		cold, err := Synthesize(p, opts)
		if err != nil || !cold.Found {
			continue
		}
		solved++
		c := NewCache()
		warmOpts := opts
		warmOpts.Cache = c
		if first, err := Synthesize(p, warmOpts); err != nil || first.CacheHit {
			t.Fatalf("trial %d: first run err=%v hit=%v", trial, err, first.CacheHit)
		}
		second, err := Synthesize(p, warmOpts)
		if err != nil {
			t.Fatal(err)
		}
		if !second.CacheHit || !second.Verified {
			t.Fatalf("trial %d: warm request not a verified hit: %+v", trial, second)
		}
		if second.Circuit.String() != cold.Circuit.String() {
			t.Fatalf("trial %d: warm gates differ from cold synthesis:\nwarm: %s\ncold: %s",
				trial, second.Circuit, cold.Circuit)
		}
	}
	if solved < 30 {
		t.Fatalf("only %d/40 sampled functions solved cold — sample too weak to mean anything", solved)
	}
}
