package obs

import "expvar"

// Process-wide verification-gate counters, published as expvars alongside
// rmrls.progress so scrapers see gate health without a per-run pipeline. A
// verification failure is an engine bug surfacing in production — the
// counters exist to make that event impossible to miss, not to measure a
// rate (the expected value is zero, forever).
var (
	verifyFailures = expvar.NewInt("rmrls.verify_failures")
	degradedReruns = expvar.NewInt("rmrls.degraded_reruns")
)

// IncVerifyFailure counts one independent-verification failure (a circuit
// withdrawn by the gate).
func IncVerifyFailure() { verifyFailures.Add(1) }

// IncDegradedRerun counts one graceful-degradation re-run triggered by a
// verification failure.
func IncDegradedRerun() { degradedReruns.Add(1) }

// VerifyFailures returns the process-wide verification-failure count.
func VerifyFailures() int64 { return verifyFailures.Value() }

// DegradedReruns returns the process-wide degraded re-run count.
func DegradedReruns() int64 { return degradedReruns.Value() }
