package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/snapshot"
)

// ledgerName is the drain ledger file inside StateDir.
const ledgerName = "ledger.json"

// ledgerVersion is bumped on any ledger layout change; unknown versions
// are skipped at recovery (jobs lost, start clean) rather than guessed at.
const ledgerVersion = 1

// drainLedger is the persisted record of unfinished jobs: the original
// requests (recompiled at recovery — they were valid once, and revalidating
// catches a downgraded binary) plus the IDs that name their checkpoints.
type drainLedger struct {
	Version int           `json:"version"`
	Jobs    []ledgerEntry `json:"jobs"`
}

type ledgerEntry struct {
	ID      string  `json:"id"`
	Request Request `json:"request"`
}

func (s *Server) ledgerPath() string { return filepath.Join(s.cfg.StateDir, ledgerName) }

func (s *Server) checkpointPath(j *Job) string {
	return filepath.Join(s.cfg.StateDir, "ckpt-"+j.id+".snap")
}

// removeCheckpoint deletes a finished job's checkpoint (best-effort — a
// leftover file is re-judged and discarded at the next recovery).
func (s *Server) removeCheckpoint(j *Job) {
	if s.cfg.StateDir == "" {
		return
	}
	s.cfg.FS.Remove(s.checkpointPath(j))
}

// Drain gracefully stops the server: intake is closed (submits get 503),
// running searches are canceled — each flushes a final checkpoint through
// the engine's crash-safe snapshot protocol — and every unfinished job is
// persisted to the drain ledger for the next start to recover. ctx bounds
// how long Drain waits for the workers; on expiry the ledger is written
// anyway (a still-running job's periodic checkpoint, if any, survives via
// the atomic replace protocol). Idempotent; the first call wins.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.queue.Close()
	s.drainStop()

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
	case <-ctx.Done():
	}

	// Park still-queued jobs: their waiters unblock with the interrupted
	// status, and they go into the ledger untouched.
	for _, j := range s.queue.drainAll() {
		s.stats.interrupted.Add(1)
		j.mu.Lock()
		j.status = StatusInterrupted
		j.mu.Unlock()
		select {
		case <-j.done:
		default:
			close(j.done)
		}
	}

	if s.cfg.StateDir == "" {
		return nil
	}
	led := drainLedger{Version: ledgerVersion}
	s.mu.Lock()
	for _, j := range s.jobs {
		switch j.Status() {
		case StatusInterrupted, StatusQueued, StatusRunning:
			led.Jobs = append(led.Jobs, ledgerEntry{ID: j.id, Request: j.req})
		}
	}
	s.mu.Unlock()
	if len(led.Jobs) == 0 {
		s.cfg.FS.Remove(s.ledgerPath())
		return nil
	}
	data, err := json.MarshalIndent(&led, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encode ledger: %w", err)
	}
	if err := s.ledgerWrite(data); err != nil {
		return fmt.Errorf("serve: write ledger: %w", err)
	}
	return nil
}

// isNotExist reports a missing file through any number of error wraps
// (os, snapshot, chaos, and guarded filesystems all wrap differently).
func isNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// recover loads the previous process's drain ledger and re-admits its
// jobs: checkpointed searches resume exactly, the rest re-run from
// scratch. Every kind of damage degrades rather than failing the start —
// an unusable state directory trips the checkpoint and ledger fault
// domains (checkpointing goes in-memory-only, resume is disabled for the
// window, /v1/readyz fails if those domains are required), an unreadable
// ledger starts the server empty but leaves the file for a later healthy
// restart, an undecodable ledger starts empty and removes it, and an
// unreadable checkpoint re-runs that job fresh. Everything shed is
// reported in RecoveryNotes.
func (s *Server) recover() {
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		err = fmt.Errorf("serve: state dir: %w", err)
		s.recoveryNotes = append(s.recoveryNotes,
			fmt.Sprintf("state dir unusable (%v); checkpointing and drain persistence disabled until it heals", err))
		s.domCkpt.Trip(err)
		s.domLedger.Trip(err)
		s.cfg.Logf("serve: state dir unusable (%v); running without durable state", err)
		return
	}
	data, err := s.readLedger()
	if isNotExist(err) {
		return
	}
	if err != nil {
		// The ledger may be fine once the device heals: start empty but
		// leave the file in place so a later restart can recover it.
		s.recoveryNotes = append(s.recoveryNotes,
			fmt.Sprintf("ledger unreadable (%v); starting empty, file left in place", err))
		return
	}
	var led drainLedger
	if err := json.Unmarshal(data, &led); err != nil {
		s.recoveryNotes = append(s.recoveryNotes, fmt.Sprintf("ledger unreadable (%v); starting empty", err))
		s.cfg.FS.Remove(s.ledgerPath())
		return
	}
	if led.Version != ledgerVersion {
		s.recoveryNotes = append(s.recoveryNotes, fmt.Sprintf("ledger version %d unsupported; starting empty", led.Version))
		s.cfg.FS.Remove(s.ledgerPath())
		return
	}

	now := time.Now()
	for _, e := range led.Jobs {
		c, rerr := compileRequest(&e.Request, s.cfg.Ceiling)
		if rerr != nil {
			s.recoveryNotes = append(s.recoveryNotes, fmt.Sprintf("job %s: request no longer valid (%v); dropped", e.ID, rerr))
			continue
		}
		j := newJob(c, e.Request, now)
		j.pin() // no client is attached to a recovered job
		// The ledger ID names the checkpoint file; keep it even if changed
		// ceilings re-key the job, so the snapshot is found. Reads go
		// through the guarded checkpoint FS: a sick device trips the
		// domain instead of stalling recovery, and the jobs re-run fresh.
		ckptPath := filepath.Join(s.cfg.StateDir, "ckpt-"+e.ID+".snap")
		if st, err := snapshot.ReadFileFS(s.ckptFS, ckptPath); err == nil {
			j.resume = st
		} else if !isNotExist(err) {
			s.recoveryNotes = append(s.recoveryNotes, fmt.Sprintf("job %s: checkpoint unusable (%v); re-running fresh", e.ID, err))
			s.cfg.FS.Remove(ckptPath)
		}
		if e.ID != j.id {
			// Re-keyed (ceilings changed): move the checkpoint to the new
			// name so the engine's own writes and removes line up.
			if j.resume != nil {
				s.cfg.FS.Rename(ckptPath, s.checkpointPath(j))
			}
			s.recoveryNotes = append(s.recoveryNotes, fmt.Sprintf("job %s re-keyed to %s under new ceilings", e.ID, j.id))
		}
		s.mu.Lock()
		s.jobs[j.id] = j
		s.byKey[j.key] = j
		s.mu.Unlock()
		if err := s.queue.Enqueue(j); err != nil {
			s.recoveryNotes = append(s.recoveryNotes, fmt.Sprintf("job %s: re-enqueue failed (%v); dropped", j.id, err))
			s.mu.Lock()
			delete(s.jobs, j.id)
			delete(s.byKey, j.key)
			s.mu.Unlock()
			continue
		}
		s.stats.recovered.Add(1)
	}
	s.cfg.FS.Remove(s.ledgerPath())
}

// writeFileAtomic replaces path with data via the snapshot package's
// temp-file + fsync + rename protocol, through the same injectable FS seam
// — so the fault-injection harness can crash ledger writes at every
// operation, and a crash leaves the previous ledger or the new one, never
// a torn file.
func writeFileAtomic(fs snapshot.FS, path string, data []byte) error {
	return snapshot.WriteRaw(fs, path, data)
}
