package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeMetrics starts an HTTP server on addr exposing the process's expvar
// registry at /debug/vars (including every ExpvarSink's snapshots) and the
// standard pprof profiles under /debug/pprof/ — CPU and heap profiling of a
// live long synthesis without restarting it. It returns the bound address
// (useful with ":0") and a shutdown function. The server uses its own mux,
// so nothing registered on http.DefaultServeMux leaks in.
func ServeMetrics(addr string) (string, func(), error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
