package frontier

import (
	"sync"
	"sync/atomic"
)

// Pool coordinates the free-running engine's workers: it runs them,
// carries the first stop reason raised by any of them, detects quiescence
// through a pending-work count, and aggregates the steal/idle telemetry
// the observability layer reports.
//
// Pending counts items that still represent future work: incremented for
// every node enqueued on any heap, decremented when a node's expansion
// completes (or the node is discarded by a prune or cutoff). A steal
// changes nothing — the work moved, it did not finish — so "all heaps
// empty" alone never terminates a run while a peer is still expanding a
// node whose children are about to appear.
type Pool struct {
	pending atomic.Int64
	reason  atomic.Int64 // 0 = running; first Stop code wins
	steals  atomic.Int64
	idles   atomic.Int64
}

// NewPool returns an idle pool.
func NewPool() *Pool { return &Pool{} }

// AddPending adjusts the outstanding-work count by n (negative to retire
// work).
func (p *Pool) AddPending(n int) { p.pending.Add(int64(n)) }

// Pending returns the current outstanding-work count.
func (p *Pool) Pending() int64 { return p.pending.Load() }

// Stop records code as the run's stop reason; the first caller wins and
// every worker observes Stopped on its next poll. code must be nonzero.
// It reports whether this call was the one that stopped the pool.
func (p *Pool) Stop(code int) bool {
	return p.reason.CompareAndSwap(0, int64(code))
}

// Stopped reports whether any worker has raised a stop.
func (p *Pool) Stopped() bool { return p.reason.Load() != 0 }

// Reason returns the stop code, 0 while running.
func (p *Pool) Reason() int { return int(p.reason.Load()) }

// NoteSteal counts one successful steal.
func (p *Pool) NoteSteal() { p.steals.Add(1) }

// NoteIdle counts one empty-handed scan (no local work, nothing to
// steal).
func (p *Pool) NoteIdle() { p.idles.Add(1) }

// Steals returns the cumulative successful steals.
func (p *Pool) Steals() int64 { return p.steals.Load() }

// Idles returns the cumulative empty-handed scans.
func (p *Pool) Idles() int64 { return p.idles.Load() }

// Run starts workers goroutines executing fn(id) and blocks until all of
// them return. Reset of the stop reason between runs is deliberate —
// the free-running engine's restart heuristic tears the pool's workers
// down, reseeds the heaps, and runs again on the same Pool so the
// steal/idle telemetry spans the whole search.
func (p *Pool) Run(workers int, fn func(id int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			fn(id)
		}(w)
	}
	wg.Wait()
}

// Resume clears the stop reason so the same pool can run another leg
// (the free-running restart path). Telemetry and pending survive; the
// caller is responsible for having drained or reseeded pending to match
// the heaps.
func (p *Pool) Resume() { p.reason.Store(0) }
