package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/circuit"
)

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Add(3)
	h.Add(3)
	h.Add(5)
	h.Add(-1)
	if h.Total != 4 || h.Failed != 1 {
		t.Errorf("total/failed = %d/%d", h.Total, h.Failed)
	}
	if h.Average() != (3+3+5)/3.0 {
		t.Errorf("average = %v", h.Average())
	}
	if h.Bucket(1, 5) != 3 || h.Bucket(4, 10) != 1 {
		t.Error("bucket sums wrong")
	}
}

func TestTable1Sampled(t *testing.T) {
	res := Table1(context.Background(), Table1Config{Samples: 60, Seed: 1})
	if res.Ours.Total != 60 {
		t.Fatalf("ran %d functions, want 60", res.Ours.Total)
	}
	if res.Ours.Failed > 1 {
		t.Errorf("too many failures: %d/60", res.Ours.Failed)
	}
	// Optimal columns are the exact published ones.
	if res.OptimalNCT.Total != 40320 || res.OptimalNCTS.Total != 40320 {
		t.Errorf("optimal columns incomplete: %d/%d",
			res.OptimalNCT.Total, res.OptimalNCTS.Total)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	out := buf.String()
	for _, want := range []string{"avg", "paper:RMRLS", "6.10", "5.87"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

func TestRandomFunctionsSmall(t *testing.T) {
	cfg := Table2Config(8, 7)
	cfg.TotalSteps = 30000
	cfg.ImproveSteps = 4000
	res := RandomFunctions(context.Background(), cfg)
	if res.Hist.Total != 8 {
		t.Fatalf("ran %d, want 8", res.Hist.Total)
	}
	if res.Hist.Failed == res.Hist.Total {
		t.Error("every 4-variable function failed")
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "4-variable random functions") {
		t.Error("summary line missing")
	}
}

func TestScalabilitySmall(t *testing.T) {
	cfg := ScalabilityConfig{
		MaxGateCount: 10, SamplesPerVar: 4,
		MinVars: 6, MaxVars: 8, Seed: 3, TotalSteps: 20000,
		Library: circuit.GT,
	}
	res := Scalability(context.Background(), cfg)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Hist.Total != 4 {
			t.Errorf("vars %d: %d samples", row.Vars, row.Hist.Total)
		}
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "fail%") {
		t.Error("failure column missing")
	}
}

func TestBenchmarksSubset(t *testing.T) {
	res := Benchmarks(context.Background(), BenchmarkConfig{
		TotalSteps:   60000,
		ImproveSteps: 5000,
		Only:         []string{"graycode6", "xor5", "rd32"},
	})
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Found {
			t.Errorf("%s failed to synthesize", row.Bench.Name)
		}
		if !row.Verified {
			t.Errorf("%s not verified", row.Bench.Name)
		}
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "graycode6") {
		t.Error("table output missing benchmark name")
	}
}

func TestFig5Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"a = a ^ 1", "b = b ^ ac", "c = c ^ ab",
		"solution", "TOF1(a) TOF3(c,a,b) TOF3(b,a,c)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 5 trace missing %q", want)
		}
	}
}

func TestExamplesQuickSubset(t *testing.T) {
	rows := Examples(context.Background(), 40000)
	if len(rows) != 14 {
		t.Fatalf("examples = %d, want 14", len(rows))
	}
	byName := map[string]ExampleRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// The small examples must all succeed and verify.
	for _, name := range []string{"ex1", "shiftright3", "fredkin3", "swap3",
		"shiftleft3", "shiftleft4", "fulladder"} {
		r := byName[name]
		if !r.Found || !r.Verified {
			t.Errorf("%s: found=%v verified=%v", name, r.Found, r.Verified)
		}
	}
	// Gate counts should be at or below the paper's printed circuits for
	// the toy examples (ours improves some of them).
	if r := byName["shiftright3"]; r.Found && r.Gates > 3 {
		t.Errorf("shiftright3 gates = %d, paper's circuit has 3", r.Gates)
	}
}
