package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewHTTPServer returns an http.Server over h hardened for the project's
// operational endpoints: header and body reads are bounded so a stalled or
// hostile client cannot pin a connection goroutine forever, idle keep-alive
// connections are reaped, and oversized headers are rejected. The write
// timeout is generous on purpose — it must outlast a 30-second pprof CPU
// profile and the long-lived JSON-lines progress streams rmrlsd serves —
// but it is still finite, so an abandoned stream is eventually torn down.
// rmrlsd and ServeMetrics share this setup.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// ServeMetrics starts an HTTP server on addr exposing the process's expvar
// registry at /debug/vars (including every ExpvarSink's snapshots) and the
// standard pprof profiles under /debug/pprof/ — CPU and heap profiling of a
// live long synthesis without restarting it. It returns the bound address
// (useful with ":0") and a shutdown function. The server uses its own mux,
// so nothing registered on http.DefaultServeMux leaks in, and the hardened
// NewHTTPServer timeouts, so a wedged scraper cannot leak connections.
func ServeMetrics(addr string) (string, func(), error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := NewHTTPServer(mux)
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
