package cache_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/perm"
	"repro/internal/rng"
	"repro/internal/snapshot/faultfs"
)

// checkAfterCrash reopens dir with a clean filesystem and asserts the
// persistent state is safe: every Lookup either misses or answers with a
// verified circuit realizing exactly the permutation that was asked for.
// A wrong circuit is the one outcome a torn write must never produce.
func checkAfterCrash(t *testing.T, dir string, specs []perm.Perm) (hits int) {
	t.Helper()
	c, err := cache.Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	for _, p := range specs {
		hit, ok := c.Lookup(p, fpA)
		if !ok {
			continue
		}
		hits++
		got := hit.Circuit.Perm()
		if !got.Equal(p) {
			t.Fatalf("lookup after crash returned a wrong circuit:\n got %v\nwant %v", got, p)
		}
	}
	return hits
}

// TestCrashDuringPutReadsAsMissOrOldEntry enumerates every crash point of
// the atomic entry-write protocol, for a fresh write and for an overwrite
// of an existing entry, with and without a torn write at the crash point.
// After each simulated crash the cache is reopened on a clean filesystem;
// the interrupted entry must read as a miss (fresh write) or as one of the
// two correct circuits (overwrite) — never as a wrong answer.
func TestCrashDuringPutReadsAsMissOrOldEntry(t *testing.T) {
	src := rng.New(7)
	circ, p := randomSpec(3, 6, src)
	// A longer circuit for the same function: pad with a self-canceling
	// NOT pair so the overwrite scenario's second Put actually replaces.
	padded := &circuit.Circuit{Wires: circ.Wires, Gates: append([]circuit.Gate(nil), circ.Gates...)}
	padded.Gates = append(padded.Gates, circuit.Gate{Target: 0}, circuit.Gate{Target: 0})

	// Learn the op count of one entry write with a never-crashing run.
	probe := faultfs.New(nil, -1, 0)
	if c, err := cache.Open(t.TempDir(), probe); err != nil {
		t.Fatal(err)
	} else if _, _, err := c.Put(p, fpA, circ); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total == 0 {
		t.Fatal("probe run performed no filesystem operations")
	}

	for _, tear := range []int{0, 3} {
		for crashAt := 0; crashAt <= total; crashAt++ {
			// Fresh write: nothing on disk yet, Put crashes mid-protocol.
			dir := t.TempDir()
			ffs := faultfs.New(nil, crashAt, tear)
			c, err := cache.Open(dir, ffs)
			if err != nil {
				t.Fatal(err)
			}
			_, _, perr := c.Put(p, fpA, circ)
			if ffs.Crashed() && perr == nil && crashAt < total-1 {
				// Only a crash on the very last op (after rename landed)
				// may still report success.
				t.Fatalf("crashAt=%d tear=%d: Put reported success through a crash", crashAt, tear)
			}
			checkAfterCrash(t, dir, []perm.Perm{p})

			// Overwrite: a good entry already persisted, then a shorter
			// circuit for the same class crashes mid-replacement. The
			// survivor must be the old entry, the new one, or a miss.
			dir = t.TempDir()
			warm, err := cache.Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, stored, err := warm.Put(p, fpA, padded); err != nil || !stored {
				t.Fatalf("seeding overwrite scenario: stored=%v err=%v", stored, err)
			}
			ffs = faultfs.New(nil, crashAt, tear)
			c, err = cache.Open(dir, ffs)
			if err != nil {
				t.Fatal(err)
			}
			c.Put(p, fpA, circ)
			if hits := checkAfterCrash(t, dir, []perm.Perm{p}); hits != 1 {
				// The old entry was durable before the replacement began;
				// rename is atomic, so some correct entry must survive.
				t.Fatalf("crashAt=%d tear=%d: durable entry lost in overwrite crash", crashAt, tear)
			}
		}
	}
}
