package serve

// Answer-cache integration. The server drives internal/cache directly
// (rather than through core.Options.Cache) so the lookup happens at
// admission — before a queue slot or worker is spent — and so the server's
// own hit/miss counters are authoritative: the engine is never handed the
// cache, which would double-count every probe.

import (
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
)

// jobSource labels who produced a job's result.
const (
	sourceWorker = "worker"
	sourceCache  = "cache"
)

// fromCache answers a compiled request from the answer cache. On a hit it
// returns a finished job (source "cache", verified result) ready for
// registration; on a miss — or when the cache is off or cannot represent
// the request — it returns nil and the caller enqueues as usual. The
// derived circuit has already passed the independent verification gate
// inside cache.Lookup (verify.StageCache).
func (s *Server) fromCache(c *compiled, req Request) *Job {
	if s.cache == nil || c.perm == nil || !cache.Cacheable(c.perm.Vars()) {
		return nil
	}
	hit, ok := s.cache.Lookup(c.perm, core.OptionsFingerprint(&c.opts))
	if !ok {
		s.stats.cacheMisses.Add(1)
		obs.IncCacheMiss()
		return nil
	}
	s.stats.cacheHits.Add(1)
	obs.IncCacheHit()
	if hit.Derived {
		obs.IncCacheDerive()
	}
	now := time.Now()
	j := newJob(c, req, now)
	j.source = sourceCache
	j.started = now
	verified := true
	j.finish(StatusDone, core.Result{
		Circuit:        hit.Circuit,
		Found:          true,
		StopReason:     core.StopSolved,
		Verified:       true,
		CacheHit:       true,
		CanonicalClass: hit.Class,
	}, &verified, "", now)
	return j
}

// cacheStore offers a finished worker result to the answer cache and
// stamps the canonical class on it. Only results worth trusting are
// stored: found, independently verified, and produced by the job's real
// options — a degraded re-run followed a verification failure, which is
// exactly the situation a cache must not memorize.
func (s *Server) cacheStore(j *Job, res *core.Result) {
	if s.cache == nil || j.fperm == nil || !cache.Cacheable(j.fperm.Vars()) {
		return
	}
	if !res.Found || !res.Verified || res.Circuit == nil || j.isDegraded() {
		return
	}
	class, _, _ := s.cache.Put(j.fperm, core.OptionsFingerprint(&j.opts), res.Circuit)
	if class != 0 {
		res.CanonicalClass = class
	}
}
