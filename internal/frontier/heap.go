package frontier

import (
	"sync"
	"sync/atomic"

	"repro/internal/queue"
)

// Heap is one worker's slice of the logical priority frontier: a
// mutex-guarded max-heap (FIFO among priority ties, like the sequential
// queue) with byte accounting that travels with the items. The owning
// worker pushes and pops through the same lock that thieves steal
// through; contention stays low because owners touch the lock once per
// expansion while thieves only arrive when their own heap is empty.
//
// Byte accounting is the part that has to be exact: an item's charge is
// added on Push and released on Pop/Steal/prune — never both held by a
// victim and a thief — so that a global watermark sampled as the sum of
// per-heap Bytes is monotone within an attempt and never double-counts a
// node in flight between heaps.
type Heap[T any] struct {
	mu    sync.Mutex
	pq    queue.Queue[T]
	memOf func(T) int64

	len   atomic.Int64 // mirror of pq.Len(), readable without the lock
	bytes atomic.Int64 // sum of queued items' charges, ditto
}

// NewHeap returns an empty heap. memOf reports the bytes an item pins
// while queued; it must be stable for a given item between its Push and
// its Pop.
func NewHeap[T any](memOf func(T) int64) *Heap[T] {
	return &Heap[T]{memOf: memOf}
}

// Push queues v and charges its bytes.
func (h *Heap[T]) Push(v T, priority float64) {
	m := h.memOf(v)
	h.mu.Lock()
	h.pq.Push(v, priority)
	h.len.Store(int64(h.pq.Len()))
	h.bytes.Add(m)
	h.mu.Unlock()
}

// Pop removes and returns the best item, releasing its byte charge. The
// boolean is false when the heap is empty. Steal is the same operation
// performed by a non-owner; the split exists only so callers can count
// the two differently.
func (h *Heap[T]) Pop() (T, bool) {
	h.mu.Lock()
	v, ok := h.pq.Pop()
	if ok {
		h.len.Store(int64(h.pq.Len()))
		h.bytes.Add(-h.memOf(v))
	}
	h.mu.Unlock()
	return v, ok
}

// Steal is Pop for a thief: it takes the victim's current best item, so
// stolen work is always the most promising work the victim had. The byte
// charge is released here and re-charged wherever the thief's expansion
// pushes children — the charge moves, it is never held twice.
func (h *Heap[T]) Steal() (T, bool) { return h.Pop() }

// Len returns the number of queued items without taking the lock.
func (h *Heap[T]) Len() int { return int(h.len.Load()) }

// Bytes returns the queued items' byte charges without taking the lock.
func (h *Heap[T]) Bytes() int64 { return h.bytes.Load() }

// PruneTo keeps only the k best items, invoking discard (if non-nil) for
// every dropped one, and returns how many were dropped. The byte
// accounting is recomputed from the survivors, so a prune can only lower
// the heap's contribution to the global estimate.
func (h *Heap[T]) PruneTo(k int, discard func(T)) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	before := h.pq.Len()
	if before <= k {
		return 0
	}
	h.pq.PruneToFunc(k, discard)
	var b int64
	h.pq.Each(func(v T) { b += h.memOf(v) })
	h.len.Store(int64(h.pq.Len()))
	h.bytes.Store(b)
	return before - h.pq.Len()
}

// Clear drains the heap, invoking drain (if non-nil) for every item, and
// zeroes the byte accounting. Used by the restart heuristic; the restart
// re-seeds through ordinary Pushes, so a node dropped here and re-derived
// later is charged exactly once.
func (h *Heap[T]) Clear(drain func(T)) {
	h.mu.Lock()
	if drain != nil {
		h.pq.Each(drain)
	}
	h.pq.Clear()
	h.len.Store(0)
	h.bytes.Store(0)
	h.mu.Unlock()
}

// Deepest returns the index of the deepest non-empty heap other than
// self, or -1 when every peer is empty. It reads the lock-free length
// mirrors, so the answer can be stale by a few operations — good enough
// for a steal victim choice, which only needs to find *work*, not the
// precise maximum.
func Deepest[T any](heaps []*Heap[T], self int) int {
	best, bestLen := -1, 0
	for i, h := range heaps {
		if i == self {
			continue
		}
		if l := h.Len(); l > bestLen {
			best, bestLen = i, l
		}
	}
	return best
}
