package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/pprm"
)

// This file is the parallel-search harness: it runs the seeded workloads
// of the search harness under the sequential engine, the deterministic-
// merge engine at several worker counts, and the free-running
// work-stealing engine, and reports the numbers checked in as
// BENCH_parallel.json. Two kinds of facts come out: determinism facts
// (every det-merge width must produce the bit-identical trajectory —
// machine-independent) and throughput facts (wall-clock speedups —
// meaningful only on the machine whose cpus/gomaxprocs metadata the
// report carries; a single-core runner honestly reports ~1.0).

// ParallelBenchConfig sizes the parallel harness. The zero value selects
// the defaults used for the checked-in BENCH_parallel.json.
type ParallelBenchConfig struct {
	// Seed drives the pseudo-random workloads (shared with the search
	// harness generator). Default 1.
	Seed uint64 `json:"seed"`
	// Table1Sample is the number of seeded 3-variable functions.
	// Default 100.
	Table1Sample int `json:"table1_sample"`
	// Random4 is the number of seeded 4-variable functions. Default 15.
	Random4 int `json:"random4"`
	// TotalSteps is the per-function expansion budget. Default 30000.
	TotalSteps int `json:"total_steps"`
	// Widths are the det-merge worker counts to compare; the free-running
	// engine runs at the largest. Default [1, 4, 8].
	Widths []int `json:"widths"`
}

func (c *ParallelBenchConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Table1Sample == 0 {
		c.Table1Sample = 100
	}
	if c.Random4 == 0 {
		c.Random4 = 15
	}
	if c.TotalSteps == 0 {
		c.TotalSteps = 30000
	}
	if len(c.Widths) == 0 {
		c.Widths = []int{1, 4, 8}
	}
}

// EngineRow is one workload under one engine configuration.
type EngineRow struct {
	// Engine is "sequential", "det-merge", or "free-running".
	Engine string `json:"engine"`
	// Workers is the configured width (0 for the sequential engine).
	Workers     int     `json:"workers"`
	Functions   int     `json:"functions"`
	Solved      int     `json:"solved"`
	TotalGates  int     `json:"total_gates"`
	Expansions  int64   `json:"expansions"`
	Steals      int64   `json:"steals,omitempty"`
	Idles       int64   `json:"idles,omitempty"`
	Seconds     float64 `json:"seconds"`
	NodesPerSec float64 `json:"nodes_per_sec"`
	// Speedup is this row's NodesPerSec over the workload's sequential
	// row (machine-dependent; ~1.0 on a single-core runner).
	Speedup float64 `json:"speedup"`
	// Trajectory fingerprints the per-function results (found flag,
	// circuit, steps, nodes). Rows with equal fingerprints took the
	// bit-identical search trajectory; every det-merge width must agree.
	// The free-running engine makes no such promise and its fingerprint
	// varies run to run.
	Trajectory string `json:"trajectory"`
}

// ParallelWorkload compares the engines on one workload.
type ParallelWorkload struct {
	Workload string      `json:"workload"`
	Rows     []EngineRow `json:"rows"`
	// DetMergeIdentical reports whether every det-merge width produced
	// the same trajectory fingerprint. Anything but true is a bug.
	DetMergeIdentical bool `json:"det_merge_identical"`
}

// ParallelReport is the schema of BENCH_parallel.json.
type ParallelReport struct {
	Config ParallelBenchConfig `json:"config"`
	// CPUs and GOMAXPROCS are the honest context for every wall-clock
	// figure in the report: speedups measured with fewer cores than
	// workers mean "overhead only", not "the engine does not scale".
	CPUs       int                `json:"cpus"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Workloads  []ParallelWorkload `json:"workloads"`
}

// runEngineRow synthesizes every function under opts and aggregates one
// row, fingerprinting the trajectory as it goes.
func runEngineRow(ctx context.Context, fns []perm.Perm, opts core.Options, engine string) (EngineRow, error) {
	row := EngineRow{Engine: engine, Workers: opts.Workers, Functions: len(fns)}
	h := fnv.New64a()
	start := time.Now()
	for _, p := range fns {
		if ctx.Err() != nil {
			return row, ctx.Err()
		}
		spec, err := pprm.FromPerm(p)
		if err != nil {
			return row, err
		}
		r := core.SynthesizeContext(ctx, spec, opts)
		if r.Err != nil {
			return row, r.Err
		}
		row.Expansions += int64(r.Steps)
		row.Steals += r.Steals
		row.Idles += r.Idles
		gates := "<none>"
		if r.Found {
			if err := core.Verify(r.Circuit, p); err != nil {
				return row, err
			}
			row.Solved++
			row.TotalGates += r.Circuit.Len()
			gates = r.Circuit.String()
		}
		fmt.Fprintf(h, "%v|%s|%d|%d;", r.Found, gates, r.Steps, r.Nodes)
	}
	row.Seconds = time.Since(start).Seconds()
	if row.Seconds > 0 {
		row.NodesPerSec = float64(row.Expansions) / row.Seconds
	}
	row.Trajectory = fmt.Sprintf("%016x", h.Sum64())
	return row, nil
}

// compareEngines runs one workload under every engine configuration.
func compareEngines(ctx context.Context, name string, fns []perm.Perm, cfg ParallelBenchConfig) (ParallelWorkload, error) {
	w := ParallelWorkload{Workload: name, DetMergeIdentical: true}

	add := func(opts core.Options, engine string) error {
		row, err := runEngineRow(ctx, fns, opts, engine)
		if err != nil {
			return fmt.Errorf("%s (%s, %d workers): %w", name, engine, opts.Workers, err)
		}
		w.Rows = append(w.Rows, row)
		return nil
	}

	if err := add(searchOpts(cfg.TotalSteps, true), "sequential"); err != nil {
		return w, err
	}
	maxWidth := 0
	for _, width := range cfg.Widths {
		opts := searchOpts(cfg.TotalSteps, true)
		opts.Workers = width
		if err := add(opts, "det-merge"); err != nil {
			return w, err
		}
		if width > maxWidth {
			maxWidth = width
		}
	}
	if maxWidth >= 2 {
		opts := searchOpts(cfg.TotalSteps, true)
		opts.Workers = maxWidth
		opts.FreeRunning = true
		if err := add(opts, "free-running"); err != nil {
			return w, err
		}
	}

	base := w.Rows[0].NodesPerSec
	var detFP string
	for i := range w.Rows {
		r := &w.Rows[i]
		if base > 0 {
			r.Speedup = r.NodesPerSec / base
		}
		if r.Engine == "det-merge" {
			if detFP == "" {
				detFP = r.Trajectory
			} else if r.Trajectory != detFP {
				w.DetMergeIdentical = false
			}
		}
	}
	return w, nil
}

// RunParallelBench executes the parallel harness over the seeded
// 3-variable and 4-variable workloads.
func RunParallelBench(ctx context.Context, cfg ParallelBenchConfig) (*ParallelReport, error) {
	cfg.fill()
	report := &ParallelReport{
		Config:     cfg,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	workloads := []struct {
		name string
		vars int
		n    int
	}{
		{"table1-3var", 3, cfg.Table1Sample},
		{"random-4var", 4, cfg.Random4},
	}
	for _, w := range workloads {
		fns := seededFunctions(cfg.Seed, w.vars, w.n)
		cmp, err := compareEngines(ctx, w.name, fns, cfg)
		if err != nil {
			return nil, err
		}
		report.Workloads = append(report.Workloads, cmp)
	}
	return report, nil
}
