package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// startTestServer builds and starts a Server plus an httptest front end.
// Cleanup drains with a short deadline so worker goroutines never leak into
// other tests.
func startTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func TestSubmitWaitSolvesAndVerifies(t *testing.T) {
	_, ts := startTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1",
		`{"spec":{"bench":"rd32"},"budget":{"time_ms":30000}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if v.Status != string(StatusDone) {
		t.Errorf("status = %q, want done", v.Status)
	}
	if v.Result == nil || !v.Result.Found {
		t.Fatalf("result missing or not found: %+v", v.Result)
	}
	if v.Result.Verified == nil || !*v.Result.Verified {
		t.Errorf("verified = %v, want true", v.Result.Verified)
	}
	if v.Result.Gates <= 0 || v.Result.Circuit == "" {
		t.Errorf("degenerate circuit: gates=%d circuit=%q", v.Result.Gates, v.Result.Circuit)
	}
}

func TestSubmitValidationErrors(t *testing.T) {
	_, ts := startTestServer(t, Config{Workers: 1})

	cases := []struct {
		name      string
		body      string
		wantCode  int
		wantField string
		wantMsg   string // substring
	}{
		{"no spec", `{"spec":{}}`, 400, "spec", "exactly one of"},
		{"two specs", `{"spec":{"bench":"rd53","perm":"{1, 0}"}}`, 400, "spec", "exactly one of"},
		{"unknown bench", `{"spec":{"bench":"nope"}}`, 400, "spec.bench", "unknown benchmark"},
		{"bad perm", `{"spec":{"perm":"{0, 0, 1, 1}"}}`, 400, "spec.perm", ""},
		{"bad class", `{"spec":{"bench":"rd53"},"class":"turbo"}`, 400, "class", "unknown class"},
		{"negative budget", `{"spec":{"bench":"rd53"},"budget":{"time_ms":-5}}`, 400, "budget.time_ms", "non-negative"},
		{"unknown field", `{"spec":{"bench":"rd53"},"bogus":1}`, 400, "body", "unknown field"},
		{"bad json", `{"spec":`, 400, "body", "invalid JSON"},
		// The text formats reuse the parsers' line-precise diagnostics.
		{"pprm parse error", `{"spec":{"pprm":{"vars":3,"text":"a' = a\nb' = b\nwhat?!\n"}}}`,
			400, "spec.pprm.text", "line 3"},
		{"pprm vars range", `{"spec":{"pprm":{"vars":99,"text":"a' = a\n"}}}`,
			400, "spec.pprm.vars", "between 1 and"},
		{"pprm irreversible", `{"spec":{"pprm":{"vars":2,"text":"a' = a\nb' = a\n"}}}`,
			400, "spec.pprm.text", "reversible"},
		{"pla parse error", `{"spec":{"pla":".i 2\n.o 1\nxx 1\n"}}`,
			400, "spec.pla", "line"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/jobs", tc.body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, tc.wantCode, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("unmarshal error body: %v (%s)", err, body)
			}
			if eb.Error.Field != tc.wantField {
				t.Errorf("field = %q, want %q (message: %s)", eb.Error.Field, tc.wantField, eb.Error.Message)
			}
			if tc.wantMsg != "" && !strings.Contains(eb.Error.Message, tc.wantMsg) {
				t.Errorf("message %q missing %q", eb.Error.Message, tc.wantMsg)
			}
		})
	}
}

func TestIdempotencyKeyDedup(t *testing.T) {
	_, ts := startTestServer(t, Config{Workers: 2})

	submit := func(body string) JobView {
		t.Helper()
		resp, data := postJSON(t, ts.URL+"/v1/jobs?wait=1", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d; body: %s", resp.StatusCode, data)
		}
		var v JobView
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		return v
	}

	a := submit(`{"spec":{"bench":"rd32"},"budget":{"steps":30000}}`)
	b := submit(`{"spec":{"bench":"rd32"},"budget":{"steps":30000}}`)
	if a.ID != b.ID {
		t.Errorf("identical requests got different jobs: %s vs %s", a.ID, b.ID)
	}
	if !b.Deduplicated {
		t.Errorf("retry not marked deduplicated")
	}
	if a.Deduplicated {
		t.Errorf("first submission marked deduplicated")
	}

	// A different budget is a different job: it can find a different circuit.
	c := submit(`{"spec":{"bench":"rd32"},"budget":{"steps":40000}}`)
	if c.ID == a.ID {
		t.Errorf("different budgets share a job ID %s", a.ID)
	}
	// So is a different class: it schedules differently.
	d := submit(`{"spec":{"bench":"rd32"},"budget":{"steps":30000},"class":"batch"}`)
	if d.ID == a.ID {
		t.Errorf("different classes share a job ID %s", a.ID)
	}
}

func TestBudgetExhaustedWithoutCircuitIs422(t *testing.T) {
	_, ts := startTestServer(t, Config{Workers: 1})

	// hwb8 cannot be solved in 50 steps; the request is valid but the
	// budget is not enough — that is a 422, not a 4xx-validation or 5xx.
	resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1",
		`{"spec":{"bench":"hwb8"},"budget":{"steps":50}}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if v.Result == nil || v.Result.Found {
		t.Fatalf("expected a not-found result, got %+v", v.Result)
	}
	if v.Result.Stop != core.StopStepLimit.String() {
		t.Errorf("stop = %q, want %q", v.Result.Stop, core.StopStepLimit)
	}
}

func TestBudgetClampReported(t *testing.T) {
	_, ts := startTestServer(t, Config{
		Workers: 1,
		Ceiling: core.BudgetCeiling{MaxTime: time.Second, MaxSteps: 10000, MaxMemory: 64 << 20},
	})
	resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1",
		`{"spec":{"bench":"rd32"},"budget":{"time_ms":60000,"steps":999999}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(v.Clamped) != 3 { // time cut, steps cut, memory defaulted
		t.Errorf("clamps = %v, want 3 entries", v.Clamped)
	}
	joined := strings.Join(v.Clamped, "; ")
	for _, want := range []string{"time", "steps", "memory"} {
		if !strings.Contains(joined, want) {
			t.Errorf("clamps %q missing %q", joined, want)
		}
	}
}

func TestJobGetAndNotFound(t *testing.T) {
	_, ts := startTestServer(t, Config{Workers: 1})

	_, body := postJSON(t, ts.URL+"/v1/jobs?wait=1", `{"spec":{"bench":"rd32"}}`)
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	resp, data := getURL(t, ts.URL+"/v1/jobs/"+v.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job = %d; body: %s", resp.StatusCode, data)
	}
	var got JobView
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.ID != v.ID || got.Status != string(StatusDone) {
		t.Errorf("GET returned %s/%s, want %s/done", got.ID, got.Status, v.ID)
	}

	resp, _ = getURL(t, ts.URL+"/v1/jobs/doesnotexist")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job = %d, want 404", resp.StatusCode)
	}
}

func TestStreamEndpointEmitsProgressAndFinalJob(t *testing.T) {
	_, ts := startTestServer(t, Config{Workers: 1})

	// Async submit, then stream until the final {"job": ...} line.
	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"spec":{"bench":"rd53"},"budget":{"time_ms":30000}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	sresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q", ct)
	}
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	var final struct {
		Job *JobView `json:"job"`
	}
	for sc.Scan() {
		lines++
		if strings.Contains(sc.Text(), `"job"`) {
			if err := json.Unmarshal(sc.Bytes(), &final); err != nil {
				t.Fatalf("final line: %v (%s)", err, sc.Text())
			}
			break
		}
		var snap map[string]any
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("progress line %d: %v (%s)", lines, err, sc.Text())
		}
		if _, ok := snap["steps"]; !ok {
			t.Errorf("progress line missing steps: %s", sc.Text())
		}
	}
	if lines < 2 {
		t.Errorf("stream produced %d lines, want at least a snapshot and the final job", lines)
	}
	if final.Job == nil || final.Job.Status != string(StatusDone) {
		t.Errorf("final job line = %+v, want done", final.Job)
	}
}

func TestHealthz(t *testing.T) {
	s, ts := startTestServer(t, Config{Workers: 3})

	postJSON(t, ts.URL+"/v1/jobs?wait=1", `{"spec":{"bench":"rd32"}}`)
	resp, body := getURL(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h healthView
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if h.Status != "ok" || h.Workers != 3 {
		t.Errorf("health = %+v", h)
	}
	if h.Stats.Submitted != 1 || h.Stats.Completed != 1 {
		t.Errorf("stats = %+v, want submitted=1 completed=1", h.Stats)
	}
	if got := s.Stats(); got != h.Stats {
		t.Errorf("Stats() = %+v != healthz %+v", got, h.Stats)
	}
}

func TestOversizedBodyIs413(t *testing.T) {
	_, ts := startTestServer(t, Config{Workers: 1})
	big := fmt.Sprintf(`{"spec":{"pla":"%s"}}`, strings.Repeat("x", maxRequestBody+1))
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
}

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}
