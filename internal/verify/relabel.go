package verify

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/perm"
)

// Wire relabeling is the simplest member of the equivalence family the
// roadmap's canonicalization cache will exploit: conjugating a function by a
// wire permutation yields an equivalent synthesis problem whose circuit is
// the original with wires renamed. These helpers build both sides of that
// equation so the metamorphic fuzz targets can pin the invariant
//
//	Simulate(RelabelCircuit(c, m)) == RelabelPerm(Simulate(c), m)
//
// today, before any cache relies on it.

// ValidWireMap reports whether m is a permutation of the wires 0..n-1.
func ValidWireMap(m []int, n int) bool {
	if len(m) != n {
		return false
	}
	seen := make([]bool, n)
	for _, w := range m {
		if w < 0 || w >= n || seen[w] {
			return false
		}
		seen[w] = true
	}
	return true
}

// scatter moves bit w of x to bit m[w] for every wire.
func scatter(x uint32, m []int) uint32 {
	var out uint32
	for w, nw := range m {
		out |= (x >> uint(w) & 1) << uint(nw)
	}
	return out
}

// RelabelCircuit returns a copy of c with every wire w renamed to m[w].
// m must be a permutation of 0..Wires-1.
func RelabelCircuit(c *circuit.Circuit, m []int) (*circuit.Circuit, error) {
	if !ValidWireMap(m, c.Wires) {
		return nil, fmt.Errorf("verify: wire map %v is not a permutation of %d wires", m, c.Wires)
	}
	out := circuit.New(c.Wires)
	for _, g := range c.Gates {
		out.Append(circuit.Gate{
			Target:   m[g.Target],
			Controls: bits.Mask(scatter(uint32(g.Controls), m)),
		})
	}
	return out, nil
}

// RelabelPerm conjugates p by the wire permutation m: the returned function
// q satisfies q(scatter(x)) = scatter(p(x)) — relabeling both the inputs
// and the outputs, exactly what renaming the wires of a realizing circuit
// does to its permutation.
func RelabelPerm(p perm.Perm, m []int) (perm.Perm, error) {
	n := 0
	for size := len(p); size > 1; size >>= 1 {
		n++
	}
	if 1<<uint(n) != len(p) || !ValidWireMap(m, n) {
		return nil, fmt.Errorf("verify: wire map %v does not fit a %d-entry permutation", m, len(p))
	}
	q := make(perm.Perm, len(p))
	for x, y := range p {
		q[scatter(uint32(x), m)] = scatter(y, m)
	}
	return q, nil
}
