package circuit

import "testing"

// TestGateCostAllBranches pins every branch of the Section II-D cost model
// to the paper's figures: the fixed small-gate costs (sizes 1–5), the
// ancilla-rich linear regime (≥ m−3 free wires → 12(m−3)+2), the
// single-ancilla regime (≥ 1 free wire → 24(m−4)+4), and the no-ancilla
// exponential fallback (2^m − 3).
func TestGateCostAllBranches(t *testing.T) {
	cases := []struct {
		size, wires int
		want        int
		branch      string
	}{
		// Fixed costs, independent of free wires.
		{1, 1, 1, "NOT"},
		{1, 8, 1, "NOT with ancillae"},
		{2, 2, 1, "CNOT"},
		{2, 8, 1, "CNOT with ancillae"},
		{3, 3, 5, "TOF3 (Barenco et al.)"},
		{3, 9, 5, "TOF3 with ancillae"},
		{4, 4, 13, "TOF4"},
		{4, 10, 13, "TOF4 with ancillae"},
		{5, 5, 29, "TOF5"},
		{5, 11, 29, "TOF5 with ancillae"},

		// m ≥ 6, free ≥ m−3: 12(m−3)+2.
		{6, 9, 38, "size 6, exactly m−3 free"},
		{6, 12, 38, "size 6, more than m−3 free"},
		{7, 11, 50, "size 7, exactly m−3 free"},
		{8, 13, 62, "size 8, exactly m−3 free"},
		{10, 17, 86, "size 10, exactly m−3 free"},

		// m ≥ 6, 1 ≤ free < m−3: 24(m−4)+4.
		{6, 7, 52, "size 6, one free wire"},
		{6, 8, 52, "size 6, two free wires (still < m−3)"},
		{7, 8, 76, "size 7, one free wire"},
		{8, 9, 100, "size 8, one free wire"},
		{8, 12, 100, "size 8, four free wires (still < m−3)"},
		{10, 12, 148, "size 10, two free wires"},

		// m ≥ 6, no free wires: 2^m − 3.
		{6, 6, 61, "size 6, gate fills the circuit"},
		{7, 7, 125, "size 7, gate fills the circuit"},
		{8, 8, 253, "size 8, gate fills the circuit"},
	}
	for _, c := range cases {
		if got := GateCost(c.size, c.wires); got != c.want {
			t.Errorf("GateCost(size=%d, wires=%d) = %d, want %d (%s)",
				c.size, c.wires, got, c.want, c.branch)
		}
	}
}

// TestGateCostRegimeBoundaries walks the free-wire count across both regime
// changes for one gate size: the cost must step down when the first ancilla
// appears and again when the m−3rd does, and stay flat elsewhere.
func TestGateCostRegimeBoundaries(t *testing.T) {
	const size = 8
	wantByFree := map[int]int{
		0: 253, // 2^8 − 3
		1: 100, // 24·4 + 4
		4: 100, // still the single-ancilla regime
		5: 62,  // 12·5 + 2: free = m−3 unlocks the linear construction
		9: 62,  // extra ancillae beyond m−3 don't help further
	}
	for free, want := range wantByFree {
		if got := GateCost(size, size+free); got != want {
			t.Errorf("GateCost(size=%d, free=%d) = %d, want %d", size, free, got, want)
		}
	}
}

// TestQuantumCostMixedCascade sums the model over one gate of every size
// 1–6 on a 9-wire circuit: 1 + 1 + 5 + 13 + 29 + 38 = 87. Every fixed-cost
// branch and the ancilla-rich branch contribute to the same total.
func TestQuantumCostMixedCascade(t *testing.T) {
	c, err := Parse(9, "TOF1(a) TOF2(a,b) TOF3(a,b,c) TOF4(a,b,c,d) TOF5(a,b,c,d,e) TOF6(a,b,c,d,e,f)")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.QuantumCost(); got != 87 {
		t.Errorf("QuantumCost = %d, want 87", got)
	}
	// Per-gate costs through the Gate.Cost path.
	wants := []int{1, 1, 5, 13, 29, 38}
	for i, g := range c.Gates {
		if got := g.Cost(c.Wires); got != wants[i] {
			t.Errorf("gate %d (size %d): Cost = %d, want %d", i, g.Size(), got, wants[i])
		}
	}
}
