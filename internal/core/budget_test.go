package core

import (
	"strings"
	"testing"
	"time"
)

func TestClampBudgetDefaultsAndCuts(t *testing.T) {
	ceil := BudgetCeiling{
		MaxTime:   time.Minute,
		MaxSteps:  1000,
		MaxMemory: 64 << 20,
		MaxGates:  50,
	}

	o := DefaultOptions() // MaxMemory 768 MiB, everything else unbounded
	notes := o.ClampBudget(ceil)
	if o.TimeLimit != time.Minute {
		t.Errorf("TimeLimit = %v, want ceiling %v", o.TimeLimit, time.Minute)
	}
	if o.TotalSteps != 1000 {
		t.Errorf("TotalSteps = %d, want 1000", o.TotalSteps)
	}
	if o.MaxMemory != 64<<20 {
		t.Errorf("MaxMemory = %d, want %d", o.MaxMemory, int64(64<<20))
	}
	if o.MaxGates != 50 {
		t.Errorf("MaxGates = %d, want 50", o.MaxGates)
	}
	if len(notes) != 4 {
		t.Errorf("notes = %q, want 4 entries", notes)
	}
	joined := strings.Join(notes, "; ")
	if !strings.Contains(joined, "memory clamped") {
		t.Errorf("notes %q missing memory clamp", joined)
	}

	// Budgets already under the ceiling are untouched, and produce no notes.
	o = Options{TimeLimit: time.Second, TotalSteps: 10, MaxMemory: 1 << 20, MaxGates: 5}
	if notes := o.ClampBudget(ceil); len(notes) != 0 {
		t.Errorf("under-ceiling clamp produced notes %q", notes)
	}
	if o.TimeLimit != time.Second || o.TotalSteps != 10 || o.MaxMemory != 1<<20 || o.MaxGates != 5 {
		t.Errorf("under-ceiling budgets changed: %+v", o)
	}

	// A zero ceiling leaves everything alone.
	o = Options{TimeLimit: time.Hour, TotalSteps: 1 << 30}
	if notes := o.ClampBudget(BudgetCeiling{}); len(notes) != 0 {
		t.Errorf("zero ceiling produced notes %q", notes)
	}
	if o.TimeLimit != time.Hour || o.TotalSteps != 1<<30 {
		t.Errorf("zero ceiling changed budgets: %+v", o)
	}
}

func TestClampBudgetKeepsFingerprintWhenMemoryUnchanged(t *testing.T) {
	// Clamping only stop-budgets (time, steps) must not change the
	// checkpoint compatibility fingerprint.
	o := DefaultOptions()
	before := OptionsFingerprint(&o)
	o.ClampBudget(BudgetCeiling{MaxTime: time.Second, MaxSteps: 100})
	if after := OptionsFingerprint(&o); after != before {
		t.Errorf("fingerprint changed %x -> %x after time/step clamp", before, after)
	}
}

func TestStopReasonResumable(t *testing.T) {
	resumable := map[StopReason]bool{
		StopCanceled:    true,
		StopDeadline:    true,
		StopStepLimit:   true,
		StopMemoryLimit: true,
	}
	all := []StopReason{StopNone, StopSolved, StopQueueExhausted, StopDeadline,
		StopCanceled, StopStepLimit, StopMemoryLimit, StopRestartsExhausted, StopInternalError}
	for _, r := range all {
		if got := r.Resumable(); got != resumable[r] {
			t.Errorf("%v.Resumable() = %v, want %v", r, got, resumable[r])
		}
	}
}
