// Command metricscheck validates a metrics JSON-lines file produced by
// `rmrls -metrics-json` (or `experiments -metrics-json`): every line must
// be a parseable ProgressSnapshot, and the final snapshot of the named run
// must be done. With -gates it additionally checks that the final
// snapshot's best gate count matches the circuit the CLI printed — the CI
// observability smoke uses this to prove the telemetry agrees with the
// actual result.
//
// Usage:
//
//	metricscheck [-label rmrls] [-gates N] metrics.jsonl
//
// Exit status 0 if the file validates, 1 otherwise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("metricscheck", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	label := fs.String("label", "rmrls", "run label whose final snapshot is checked")
	gates := fs.Int("gates", -1, "expected final best gate count (-1 = don't check)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-label L] [-gates N] metrics.jsonl")
		return 1
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		return 1
	}
	defer f.Close()

	var last obs.ProgressSnapshot
	lines, matched := 0, 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		lines++
		var snap obs.ProgressSnapshot
		if err := json.Unmarshal(line, &snap); err != nil {
			fmt.Fprintf(os.Stderr, "metricscheck: line %d unparseable: %v\n", lines, err)
			return 1
		}
		if snap.Label == *label {
			last = snap
			matched++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		return 1
	}
	if lines == 0 {
		fmt.Fprintln(os.Stderr, "metricscheck: metrics file is empty")
		return 1
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "metricscheck: no snapshots labeled %q in %d lines\n", *label, lines)
		return 1
	}
	if !last.Done {
		fmt.Fprintf(os.Stderr, "metricscheck: final %q snapshot is not done (stop=%q)\n", *label, last.Stop)
		return 1
	}
	if *gates >= 0 && last.BestGates != *gates {
		fmt.Fprintf(os.Stderr, "metricscheck: final best_gates=%d, expected %d\n", last.BestGates, *gates)
		return 1
	}
	fmt.Printf("metricscheck: ok — %d lines, %d %q snapshots, final stop=%q best_gates=%d\n",
		lines, matched, *label, last.Stop, last.BestGates)
	return 0
}
