package qasm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/rng"
)

func TestExportSmallGates(t *testing.T) {
	c, _ := circuit.Parse(3, "TOF1(a) TOF2(a,b) TOF3(c,a,b)")
	out, err := Export(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"OPENQASM 2.0;",
		"qreg q[3];",
		"x q[0];",
		"cx q[0],q[1];",
		"ccx q[0],q[2],q[1];",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExportDecomposesLargeGates(t *testing.T) {
	c, _ := circuit.Parse(6, "TOF5(e,d,c,b,a)")
	out, err := Export(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "mcx") {
		t.Error("large gate leaked into standard export")
	}
	if !strings.Contains(out, "ccx") {
		t.Error("decomposition should use ccx gates")
	}
}

func TestExportKeepLargeGates(t *testing.T) {
	c, _ := circuit.Parse(6, "TOF5(e,d,c,b,a) TOF5(e,d,c,b,a)")
	out, err := Export(c, Options{KeepLargeGates: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "opaque mcx_4") != 1 {
		t.Errorf("mcx declaration should appear exactly once:\n%s", out)
	}
	if strings.Count(out, "mcx_4 q[") != 2 {
		t.Errorf("expected two mcx invocations:\n%s", out)
	}
}

func TestExportFullWidthGateFails(t *testing.T) {
	c, _ := circuit.Parse(4, "TOF4(d,c,b,a)")
	if _, err := Export(c, Options{}); err == nil {
		t.Error("full-width gate without ancilla should fail with advice")
	}
}

func TestExportCustomRegister(t *testing.T) {
	c, _ := circuit.Parse(2, "TOF2(a,b)")
	out, err := Export(c, Options{RegisterName: "wires", Comments: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "qreg wires[2];") || !strings.Contains(out, "// 2-wire") {
		t.Errorf("custom register/comments missing:\n%s", out)
	}
}

// TestExportCommentsMatchLoweredBody is the regression test for the header
// bug: with Comments on, a 4-control gate was described with the
// pre-decomposition wire and gate counts while the program body emitted the
// lowered cascade — self-contradictory output for any consumer that trusts
// the header. The header must describe the emitted program and note the
// original separately.
func TestExportCommentsMatchLoweredBody(t *testing.T) {
	c, _ := circuit.Parse(6, "TOF5(e,d,c,b,a)") // 4 controls: gets decomposed
	out, err := Export(c, Options{Comments: true})
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "x ") || strings.HasPrefix(line, "cx ") || strings.HasPrefix(line, "ccx ") {
			emitted++
		}
	}
	if emitted <= 1 {
		t.Fatalf("expected the 4-control gate to decompose into several gates, got %d:\n%s", emitted, out)
	}
	wantHeader := fmt.Sprintf("// 6-wire reversible cascade, %d gates", emitted)
	if !strings.Contains(out, wantHeader) {
		t.Errorf("header does not describe the emitted program: want %q in:\n%s", wantHeader, out)
	}
	if !strings.Contains(out, "// lowered from 6 wires, 1 gates") {
		t.Errorf("header should note the pre-decomposition original:\n%s", out)
	}
	// Unlowered exports must not claim a lowering happened.
	small, _ := circuit.Parse(3, "TOF3(c,a,b)")
	out, err = Export(small, Options{Comments: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "lowered from") {
		t.Errorf("unlowered export claims a lowering:\n%s", out)
	}
	if !strings.Contains(out, "// 3-wire reversible cascade, 1 gates") {
		t.Errorf("small-gate header wrong:\n%s", out)
	}
}

func TestExportRejectsInvalidCircuit(t *testing.T) {
	bad := circuit.New(2)
	bad.Append(circuit.Gate{Target: 9})
	if _, err := Export(bad, Options{}); err == nil {
		t.Error("invalid circuit should fail")
	}
}

// TestGateCounts: every emitted line for a random NCT circuit is one of
// the three standard gates, one per input gate.
func TestGateCounts(t *testing.T) {
	src := rng.New(9)
	c := circuit.Random(5, 20, circuit.NCT, src)
	out, err := Export(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gateLines := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "x ") || strings.HasPrefix(line, "cx ") || strings.HasPrefix(line, "ccx ") {
			gateLines++
		}
	}
	if gateLines != 20 {
		t.Errorf("emitted %d gate lines for 20 NCT gates", gateLines)
	}
}
