package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/health"
)

// fastBreakers is a breaker config that trips on one failure and probes
// almost immediately — degraded-path tests should not sleep for real.
var fastBreakers = health.Config{
	Threshold:   1,
	BaseBackoff: 10 * time.Millisecond,
	MaxBackoff:  50 * time.Millisecond,
	NoJitter:    true,
}

func decodeHealth(t *testing.T, body []byte) healthView {
	t.Helper()
	var hv healthView
	if err := json.Unmarshal(body, &hv); err != nil {
		t.Fatalf("unmarshal healthz: %v\n%s", err, body)
	}
	return hv
}

func domainView(t *testing.T, hv healthView, name string) health.View {
	t.Helper()
	for _, d := range hv.Domains {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("domain %q not in healthz: %+v", name, hv.Domains)
	return health.View{}
}

func TestHealthzListsAllDomainsClosed(t *testing.T) {
	_, ts := startTestServer(t, Config{Workers: 1})
	resp, body := getURL(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	hv := decodeHealth(t, body)
	if hv.Status != "ok" {
		t.Errorf("status = %q, want ok", hv.Status)
	}
	if len(hv.Domains) != len(DomainNames()) {
		t.Fatalf("%d domains, want %d", len(hv.Domains), len(DomainNames()))
	}
	for _, name := range DomainNames() {
		if d := domainView(t, hv, name); d.State != "closed" {
			t.Errorf("domain %s = %q, want closed", name, d.State)
		}
	}
}

func TestReadyzGatesOnRequiredDomainsOnly(t *testing.T) {
	s, ts := startTestServer(t, Config{
		Workers:         1,
		RequiredDomains: []string{DomainCheckpoint},
		HealthConfig:    fastBreakers,
	})
	resp, _ := getURL(t, ts.URL+"/v1/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh readyz = %d, want 200", resp.StatusCode)
	}

	// An OPTIONAL domain opening degrades healthz but keeps readyz 200.
	s.domCache.Trip(os.ErrPermission)
	resp, body := getURL(t, ts.URL+"/v1/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with optional domain open = %d, want 200", resp.StatusCode)
	}
	_, hbody := getURL(t, ts.URL+"/v1/healthz")
	if hv := decodeHealth(t, hbody); hv.Status != "degraded" {
		t.Errorf("healthz status = %q, want degraded", hv.Status)
	}

	// The REQUIRED domain opening flips readyz to 503 with the domain name.
	s.domCkpt.Trip(os.ErrPermission)
	resp, body = getURL(t, ts.URL+"/v1/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with required domain open = %d, want 503", resp.StatusCode)
	}
	var rv readyView
	if err := json.Unmarshal(body, &rv); err != nil || rv.Ready || rv.Reason != DomainCheckpoint {
		t.Fatalf("readyz body = %s (err %v), want ready=false reason=checkpoint", body, err)
	}

	// Heal: a successful probe outcome re-closes both; readyz recovers.
	time.Sleep(2 * fastBreakers.BaseBackoff)
	if !s.domCkpt.Allow() {
		t.Fatal("checkpoint probe not admitted after backoff")
	}
	s.domCkpt.Record(nil)
	resp, _ = getURL(t, ts.URL+"/v1/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after heal = %d, want 200", resp.StatusCode)
	}
}

func TestReadyz503WhileDraining(t *testing.T) {
	s, ts := startTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body := getURL(t, ts.URL+"/v1/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	var rv readyView
	if err := json.Unmarshal(body, &rv); err != nil || rv.Reason != "draining" {
		t.Fatalf("readyz body = %s, want reason=draining", body)
	}
}

func TestUnusableCacheDirDegradesToMemoryCache(t *testing.T) {
	// A file where the cache directory should be: MkdirAll fails even for
	// root, which chmod-based permission tricks do not.
	parent := t.TempDir()
	blocker := filepath.Join(parent, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := startTestServer(t, Config{
		Workers:      1,
		CacheDir:     filepath.Join(blocker, "cache"),
		HealthConfig: fastBreakers,
	})

	notes := s.RecoveryNotes()
	if len(notes) == 0 || !strings.Contains(notes[0], "cache dir unusable") {
		t.Fatalf("recovery notes = %v, want cache-dir note", notes)
	}
	_, body := getURL(t, ts.URL+"/v1/healthz")
	if d := domainView(t, decodeHealth(t, body), DomainCache); d.State != "open" {
		t.Errorf("cache domain = %q, want open", d.State)
	}

	// The service still synthesizes — and the memory-only fallback still
	// deduplicates repeat work within the process.
	resp, _ := postJSON(t, ts.URL+"/v1/jobs?wait=1",
		`{"spec":{"bench":"rd32"},"budget":{"time_ms":30000}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit with degraded cache = %d, want 200", resp.StatusCode)
	}
}

func TestUnusableStateDirDegradesNotFails(t *testing.T) {
	parent := t.TempDir()
	blocker := filepath.Join(parent, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := startTestServer(t, Config{
		Workers:         1,
		StateDir:        filepath.Join(blocker, "state"),
		RequiredDomains: []string{DomainCheckpoint},
		HealthConfig:    fastBreakers,
	})
	notes := s.RecoveryNotes()
	if len(notes) == 0 || !strings.Contains(notes[0], "state dir unusable") {
		t.Fatalf("recovery notes = %v, want state-dir note", notes)
	}

	// Degradation is visible: checkpoint (required here) and ledger open.
	resp, _ := getURL(t, ts.URL+"/v1/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503 (required checkpoint domain open)", resp.StatusCode)
	}
	_, body := getURL(t, ts.URL+"/v1/healthz")
	hv := decodeHealth(t, body)
	for _, name := range []string{DomainCheckpoint, DomainLedger} {
		if d := domainView(t, hv, name); d.State != "open" {
			t.Errorf("domain %s = %q, want open", name, d.State)
		}
	}

	// The job still gets served; checkpoint writes fast-fail inside the
	// engine without stopping the search.
	resp, body = postJSON(t, ts.URL+"/v1/jobs?wait=1",
		`{"spec":{"bench":"rd32"},"budget":{"time_ms":30000}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit with degraded state dir = %d, want 200; body: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil || v.Result == nil || !v.Result.Found {
		t.Fatalf("degraded-mode job did not solve: %s", body)
	}
}

func TestRateLimitShedsPerClient(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, ts := startTestServer(t, Config{
		Workers:   1,
		Runner:    blockingRunner(release),
		RateLimit: 0.001, // one token, then an ~17-minute refill
		RateBurst: 1,
	})

	submit := func(clientID, pla string) *http.Response {
		t.Helper()
		body := `{"spec":{"bench":"rd32"},"class":"batch"}`
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if clientID != "" {
			req.Header.Set("X-Client-ID", clientID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Client A spends its token, then sheds.
	if resp := submit("client-a", ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}
	resp := submit("client-a", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Client B is unaffected: fairness is per client, not global.
	if resp := submit("client-b", ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other client's submit = %d, want 202", resp.StatusCode)
	}
	if got := s.Stats().RateLimited; got != 1 {
		t.Errorf("RateLimited = %d, want 1", got)
	}
}

// TestClientDisconnectCancelsInteractiveJob proves the satellite contract:
// a waiting interactive client disconnecting cancels the running search
// (the worker frees up), while async submissions and batch jobs are never
// canceled by disconnects.
func TestClientDisconnectCancelsInteractiveJob(t *testing.T) {
	started := make(chan struct{}, 8)
	canceled := make(chan struct{}, 8)
	s, ts := startTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, j *Job) core.Result {
			started <- struct{}{}
			select {
			case <-ctx.Done():
				canceled <- struct{}{}
				return core.Result{StopReason: core.StopCanceled}
			case <-time.After(20 * time.Second):
				return core.Result{StopReason: core.StopStepLimit}
			}
		},
	})

	// A waiting interactive submission whose client goes away.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/jobs?wait=1",
		strings.NewReader(`{"spec":{"bench":"rd32"}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}
	cancel() // client disconnects
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("worker context not canceled after client disconnect")
	}
	<-errc
	waitFor(t, func() bool { return s.Stats().DisconnectCancels == 1 }, "disconnect cancel counted")

	// A canceled-and-unfound job is not a dedup target: the same request
	// submitted again runs fresh.
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", `{"spec":{"bench":"rd32"}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit after cancel = %d, want 202", resp.StatusCode)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("resubmitted job never started — deduplicated against the canceled one")
	}

	// That second submission was async (no ?wait): pinned, so nothing can
	// cancel it; and batch submissions are immune by class. Drain cleans up.
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestAsyncSubmitIsPinnedAgainstDisconnect(t *testing.T) {
	started := make(chan struct{}, 4)
	block := make(chan struct{})
	defer close(block)
	s, ts := startTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, j *Job) core.Result {
			started <- struct{}{}
			select {
			case <-ctx.Done():
				return core.Result{StopReason: core.StopCanceled}
			case <-block:
				return core.Result{StopReason: core.StopStepLimit}
			}
		},
	})

	// Async submit, then a waiting duplicate that disconnects: the async
	// submitter still owns the job, so no cancellation fires.
	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"spec":{"bench":"rd32"}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit = %d; %s", resp.StatusCode, body)
	}
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/jobs?wait=1",
		strings.NewReader(`{"spec":{"bench":"rd32"}}`))
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		_ = err
		close(done)
	}()
	time.Sleep(50 * time.Millisecond) // let the duplicate attach as a watcher
	cancel()
	<-done
	time.Sleep(50 * time.Millisecond)
	if got := s.Stats().DisconnectCancels; got != 0 {
		t.Fatalf("DisconnectCancels = %d, want 0 (job was pinned by the async submit)", got)
	}
}
