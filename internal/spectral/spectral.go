// Package spectral implements Walsh–Hadamard spectra of Boolean functions
// and a complexity-guided greedy synthesizer in the spirit of Miller &
// Dueck's spectral technique (reference [18] of the paper): "the best
// translation is determined to be that which results in the maximum
// positive change in the complexity measure … because there is no
// backtracking or look-ahead, an error is declared if no translation can
// be found."
//
// The exact complexity measure of [18] (based on Rademacher–Walsh spectra)
// is not recoverable in detail offline; this implementation uses the
// well-defined distance-to-identity measure
//
//	M(f) = Σ_i (2^n − Ŵ_{f_i}(e_i)) / 2
//
// where Ŵ_{f_i}(e_i) is output i's Walsh–Hadamard coefficient at the
// singleton frequency of input i (in ±1 encoding): Ŵ = 2^n exactly when
// output i equals input i, so M(f) = 0 iff f is the identity, and M counts
// the total number of disagreeing truth-table positions. The greedy
// translation loop matches [18]'s described control flow; DESIGN.md lists
// this as a documented stand-in.
package spectral

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/perm"
)

// WHT computes the in-place Walsh–Hadamard transform of the ±1-encoded
// column: out[w] = Σ_x (−1)^{f(x)} (−1)^{w·x}. The slice length must be a
// power of two.
func WHT(col []int32) {
	n := len(col)
	for step := 1; step < n; step <<= 1 {
		for x := 0; x < n; x += step << 1 {
			for j := x; j < x+step; j++ {
				a, b := col[j], col[j+step]
				col[j], col[j+step] = a+b, a-b
			}
		}
	}
}

// Spectrum returns the Walsh–Hadamard spectrum of output bit `out` of the
// reversible function p, in ±1 encoding (f=0 ↦ +1, f=1 ↦ −1).
func Spectrum(p perm.Perm, out int) []int32 {
	col := make([]int32, len(p))
	for x, y := range p {
		if y>>uint(out)&1 == 0 {
			col[x] = 1
		} else {
			col[x] = -1
		}
	}
	WHT(col)
	return col
}

// Complexity is the distance-to-identity measure M(f): the total number of
// truth-table positions at which some output differs from its input.
// M(f) = 0 iff f is the identity.
func Complexity(p perm.Perm) int {
	n := p.Vars()
	total := 0
	for x, y := range p {
		d := uint32(x) ^ y
		for i := 0; i < n; i++ {
			if d>>uint(i)&1 == 1 {
				total++
			}
		}
	}
	return total
}

// ComplexitySpectral computes the same measure through the spectra —
// provided for cross-checking: Σ_i (2^n − Ŵ_{f_i}(e_i))/2.
func ComplexitySpectral(p perm.Perm) int {
	n := p.Vars()
	total := 0
	for i := 0; i < n; i++ {
		s := Spectrum(p, i)
		total += (len(p) - int(s[1<<uint(i)])) / 2
	}
	return total
}

// Result reports a greedy spectral synthesis run.
type Result struct {
	Circuit *circuit.Circuit
	Found   bool
	Steps   int
}

// Synthesize runs the greedy translation loop: at each step every
// generalized Toffoli gate is considered at the circuit's output side, the
// one yielding the lowest complexity is applied, and synthesis fails (no
// backtracking) if no gate strictly improves the measure. maxGates bounds
// the loop.
func Synthesize(p perm.Perm, maxGates int) (Result, error) {
	n := p.Vars()
	if n < 1 {
		return Result{}, fmt.Errorf("spectral: invalid permutation size %d", len(p))
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if maxGates <= 0 {
		maxGates = 8 * len(p)
	}
	f := append(perm.Perm(nil), p...)
	// Output-side gates collected in application order; the final cascade
	// is their reverse (same reasoning as in internal/mmd).
	var applied []circuit.Gate
	cur := measureOf(f)
	res := Result{}
	for cur.prefix < len(f) && len(applied) < maxGates {
		res.Steps++
		bestGate, bestM, ok := pickGate(f, cur, n)
		if !ok {
			return res, nil // greedy dead end (cannot happen; see below)
		}
		for x := range f {
			f[x] = bestGate.Apply(f[x])
		}
		applied = append(applied, bestGate)
		cur = bestM
	}
	if cur.prefix < len(f) {
		return res, nil
	}
	c := circuit.New(n)
	for i := len(applied) - 1; i >= 0; i-- {
		c.Append(applied[i])
	}
	res.Circuit = c
	res.Found = true
	return res, nil
}

// measure is the lexicographic complexity tuple: the fixed prefix length
// (maximized), the Hamming error of the first unfixed row (minimized), and
// the total Hamming error (minimized). The transformation-based gates of
// internal/mmd each strictly improve this tuple — phase-1/2 gates reduce
// the first unfixed row's error by one without touching fixed rows — so a
// full greedy scan always has a strictly improving gate and the loop
// provably terminates with a solution, strengthening the convergence
// property the authors of [18] were still proving.
type measure struct {
	prefix   int
	firstErr int
	totalHam int
}

func (m measure) better(o measure) bool {
	if m.prefix != o.prefix {
		return m.prefix > o.prefix
	}
	if m.firstErr != o.firstErr {
		return m.firstErr < o.firstErr
	}
	return m.totalHam < o.totalHam
}

func measureOf(f perm.Perm) measure {
	m := measure{prefix: len(f)}
	for x, y := range f {
		d := popcount(uint32(x) ^ y)
		m.totalHam += d
		if d != 0 && x < m.prefix {
			m.prefix = x
			m.firstErr = d
		}
	}
	return m
}

// pickGate scans every gate (each target, each control subset) for the
// best strict lexicographic improvement.
func pickGate(f perm.Perm, cur measure, n int) (circuit.Gate, measure, bool) {
	var best circuit.Gate
	bestM := cur
	found := false
	g2 := make(perm.Perm, len(f))
	for target := 0; target < n; target++ {
		tb := bits.Bit(target)
		for controls := bits.Mask(0); controls < 1<<uint(n); controls++ {
			if controls&tb != 0 {
				continue
			}
			g := circuit.Gate{Target: target, Controls: controls}
			for x, y := range f {
				g2[x] = g.Apply(y)
			}
			m := measureOf(g2)
			if m.better(bestM) {
				bestM = m
				best = g
				found = true
			}
		}
	}
	return best, bestM, found
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
