package peephole

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/rng"
)

var (
	optOnce sync.Once
	opt     *Optimizer
)

func optimizer() *Optimizer {
	optOnce.Do(func() { opt = New() })
	return opt
}

func TestReducesKnownRedundancy(t *testing.T) {
	// Two identical adjacent Toffoli gates vanish.
	c, _ := circuit.Parse(3, "TOF3(c,a,b) TOF3(c,a,b) TOF1(a)")
	out := optimizer().Optimize(c)
	if out.Len() != 1 {
		t.Errorf("got %d gates (%s), want 1", out.Len(), out)
	}
	if !out.Perm().Equal(c.Perm()) {
		t.Error("function changed")
	}
}

func TestReducesRedundantWindow(t *testing.T) {
	// A wire swap written with 5 gates (3 CNOTs plus a cancelling NOT
	// pair) reduces to its 3-gate optimum.
	c, _ := circuit.Parse(3, "TOF2(a,b) TOF1(c) TOF2(b,a) TOF1(c) TOF2(a,b)")
	out := optimizer().Optimize(c)
	if out.Len() > 3 {
		t.Errorf("window not reduced: %d gates (%s)", out.Len(), out)
	}
	if !out.Perm().Equal(c.Perm()) {
		t.Error("function changed")
	}
}

func TestValueSwapAlreadyOptimal(t *testing.T) {
	// The paper's Example 4 function {0,1,2,4,3,5,6,7} — our synthesized
	// 5-gate cascade is provably minimal, so the optimizer must leave the
	// count alone (the paper's own printed circuit uses 6 gates).
	c, _ := circuit.Parse(3, "TOF2(c,a) TOF3(c,a,b) TOF3(b,a,c) TOF3(c,a,b) TOF2(c,a)")
	o := optimizer()
	min, err := o.table.Circuit(c.Perm())
	if err != nil {
		t.Fatal(err)
	}
	if min.Len() != 5 {
		t.Fatalf("optimal for Example 4 is %d, expected 5", min.Len())
	}
	out := o.Optimize(c)
	if out.Len() != 5 || !out.Perm().Equal(c.Perm()) {
		t.Errorf("optimizer broke an already-optimal circuit: %s", out)
	}
}

func TestWindowIsLocallyOptimal(t *testing.T) {
	// A whole 3-wire circuit is a single window, so optimization must
	// reach the global optimum for 3-wire inputs within MaxWindow gates.
	src := rng.New(12)
	o := optimizer()
	for trial := 0; trial < 30; trial++ {
		c := circuit.Random(3, 6, circuit.NCT, src)
		out := o.Optimize(c)
		if !out.Perm().Equal(c.Perm()) {
			t.Fatalf("trial %d: function changed", trial)
		}
		want, err := o.table.Circuit(c.Perm())
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() > want.Len() {
			t.Errorf("trial %d: %d gates, optimum %d", trial, out.Len(), want.Len())
		}
	}
}

func TestPreservesFunctionOnWideCircuits(t *testing.T) {
	src := rng.New(31)
	o := optimizer()
	for trial := 0; trial < 25; trial++ {
		c := circuit.Random(6, 14, circuit.GT, src)
		out := o.Optimize(c)
		if !out.Perm().Equal(c.Perm()) {
			t.Fatalf("trial %d: function changed", trial)
		}
		if out.Len() > c.Len() {
			t.Fatalf("trial %d: grew the circuit", trial)
		}
	}
}

func TestTwoWireCircuit(t *testing.T) {
	c, _ := circuit.Parse(2, "TOF2(a,b) TOF2(b,a) TOF2(a,b)")
	out := optimizer().Optimize(c)
	if !out.Perm().Equal(c.Perm()) {
		t.Error("function changed")
	}
	if out.Len() > 3 {
		t.Errorf("grew: %s", out)
	}
}

// TestPassAppliesAllWindows is the regression test for the quadratic
// restart bug: pass used to return after the FIRST profitable replacement,
// so Optimize re-scanned from gate 0 once per replacement. A single pass
// must now apply every profitable window, resuming just before each splice
// so freshly adjacent gates still cancel.
func TestPassAppliesAllWindows(t *testing.T) {
	c, _ := circuit.Parse(3, "TOF3(c,a,b) TOF3(c,a,b) TOF1(a) TOF2(a,b) TOF2(a,b)")
	o := optimizer()
	gates, changed := o.pass(3, append([]circuit.Gate(nil), c.Gates...))
	if !changed {
		t.Fatal("pass applied no replacement")
	}
	// One scan: the TOF3 pair cancels, then the resumed scan sees
	// TOF1 TOF2 TOF2 and reduces it to the lone TOF1. The pre-fix pass
	// stopped after the first cancellation, leaving 3 gates.
	if len(gates) != 1 {
		out := circuit.New(3)
		out.Gates = gates
		t.Errorf("one pass left %d gates (%s), want 1", len(gates), out)
	}
}

// TestLongCascadeCollapses drives the splice-and-resume logic through a
// 52-gate identity cascade (26 cancelling pairs): every replacement makes
// new neighbors adjacent, so resuming just before the window is what lets
// one pass cascade the cancellations. Simulation-checked fixed point.
func TestLongCascadeCollapses(t *testing.T) {
	block := "TOF3(c,a,b) TOF3(c,a,b) TOF2(a,b) TOF2(a,b) "
	c, err := circuit.Parse(3, strings.TrimSpace(strings.Repeat(block, 13)))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 52 || !c.Perm().IsIdentity() {
		t.Fatalf("bad fixture: %d gates, identity=%v", c.Len(), c.Perm().IsIdentity())
	}
	out := optimizer().Optimize(c)
	if out.Len() != 0 {
		t.Errorf("identity cascade left %d gates: %s", out.Len(), out)
	}
	if !out.Perm().Equal(c.Perm()) {
		t.Error("function changed")
	}
}

// TestFixedPointOnLongRandomCascade: optimizing a 55-gate cascade preserves
// the function, never grows it, and a second optimization finds nothing
// left to do.
func TestFixedPointOnLongRandomCascade(t *testing.T) {
	src := rng.New(77)
	o := optimizer()
	c := circuit.Random(4, 55, circuit.NCT, src)
	out := o.Optimize(c)
	if !out.Perm().Equal(c.Perm()) {
		t.Fatal("function changed")
	}
	if out.Len() > c.Len() {
		t.Fatalf("grew the circuit: %d → %d gates", c.Len(), out.Len())
	}
	again := o.Optimize(out)
	if again.Len() != out.Len() {
		t.Errorf("not a fixed point: %d → %d gates on the second run", out.Len(), again.Len())
	}
	if !again.Perm().Equal(c.Perm()) {
		t.Error("function changed on the second run")
	}
}

func TestIdentityWindow(t *testing.T) {
	// A 4-gate identity sequence disappears entirely.
	c, _ := circuit.Parse(3, "TOF2(a,b) TOF3(a,b,c) TOF2(a,b) TOF3(a,b,c)")
	// Note: these commute-cancel to identity? Verify by simulation first;
	// regardless, the optimizer must preserve the function and not grow.
	out := optimizer().Optimize(c)
	if !out.Perm().Equal(c.Perm()) {
		t.Error("function changed")
	}
	if c.Perm().IsIdentity() && out.Len() != 0 {
		t.Errorf("identity window left %d gates", out.Len())
	}
}
