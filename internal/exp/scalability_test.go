package exp

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
)

func scalabilityTestConfig(dir string) ScalabilityConfig {
	return ScalabilityConfig{
		MaxGateCount: 8, SamplesPerVar: 3,
		MinVars: 6, MaxVars: 7, Seed: 11, TotalSteps: 20000,
		Library: circuit.GT, CheckpointDir: dir,
	}
}

// rowOutcomes strips the wall-clock column so interrupted and
// uninterrupted sweeps can be compared for identical results.
func rowOutcomes(res *ScalabilityResult) []Histogram {
	var out []Histogram
	for _, row := range res.Rows {
		out = append(out, row.Hist)
	}
	return out
}

func ledgerLines(t *testing.T, dir string) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "scalability.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	return splitLines(string(data))
}

// TestScalabilityLedgerReplay proves the durable sweep: a full run leaves
// a complete ledger and no in-flight checkpoint; a rerun over a partial
// ledger replays the recorded samples (without re-appending them) and
// re-synthesizes the rest, landing on exactly the uninterrupted result.
func TestScalabilityLedgerReplay(t *testing.T) {
	ctx := context.Background()
	ref := Scalability(ctx, scalabilityTestConfig(""))

	dir := t.TempDir()
	cfg := scalabilityTestConfig(dir)
	full := Scalability(ctx, cfg)
	if !reflect.DeepEqual(rowOutcomes(full), rowOutcomes(ref)) {
		t.Fatalf("ledgered sweep diverged from plain sweep:\n%+v\nvs\n%+v",
			rowOutcomes(full), rowOutcomes(ref))
	}
	lines := ledgerLines(t, dir)
	wantLines := 1 + cfg.SamplesPerVar*(cfg.MaxVars-cfg.MinVars+1)
	if len(lines) != wantLines {
		t.Fatalf("ledger has %d lines, want %d: %q", len(lines), wantLines, lines)
	}
	if !strings.HasPrefix(lines[0], "scalability ") {
		t.Errorf("ledger header missing: %q", lines[0])
	}
	if _, err := os.Stat(filepath.Join(dir, "scalability.ckpt")); !os.IsNotExist(err) {
		t.Errorf("in-flight checkpoint not retired after the sweep: %v", err)
	}

	// Simulate a crash after three samples: keep the header plus three
	// entries and rerun.
	partial := strings.Join(lines[:4], "\n") + "\n"
	if err := os.WriteFile(filepath.Join(dir, "scalability.ledger"), []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}
	rerun := Scalability(ctx, cfg)
	if !reflect.DeepEqual(rowOutcomes(rerun), rowOutcomes(ref)) {
		t.Errorf("replayed sweep diverged:\n%+v\nvs\n%+v",
			rowOutcomes(rerun), rowOutcomes(ref))
	}
	// Replayed samples must not be re-appended: the rerun only adds the
	// three it actually synthesized.
	if lines := ledgerLines(t, dir); len(lines) != wantLines {
		t.Errorf("ledger has %d lines after replay, want %d", len(lines), wantLines)
	}
}

// TestScalabilityLedgerFingerprintMismatch: a ledger written under a
// different workload must be discarded, never misapplied.
func TestScalabilityLedgerFingerprintMismatch(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	Scalability(ctx, scalabilityTestConfig(dir))

	other := scalabilityTestConfig(dir)
	other.Seed = 12
	ref := Scalability(ctx, func() ScalabilityConfig { c := other; c.CheckpointDir = ""; return c }())
	res := Scalability(ctx, other)
	if !reflect.DeepEqual(rowOutcomes(res), rowOutcomes(ref)) {
		t.Errorf("stale ledger contaminated a different workload:\n%+v\nvs\n%+v",
			rowOutcomes(res), rowOutcomes(ref))
	}
	if lines := ledgerLines(t, dir); lines[0] != other.fingerprint() {
		t.Errorf("ledger header not rewritten: %q", lines[0])
	}
}

// TestScalabilityDamagedCheckpointFallsBack: garbage in the in-flight
// checkpoint must degrade to a fresh synthesis of that sample, not fail
// or corrupt the sweep.
func TestScalabilityDamagedCheckpointFallsBack(t *testing.T) {
	ctx := context.Background()
	ref := Scalability(ctx, scalabilityTestConfig(""))

	dir := t.TempDir()
	cfg := scalabilityTestConfig(dir)
	lines := ledgerLinesAfterFullRun(t, ctx, cfg)
	partial := strings.Join(lines[:3], "\n") + "\n"
	if err := os.WriteFile(filepath.Join(dir, "scalability.ledger"), []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "scalability.ckpt"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	res := Scalability(ctx, cfg)
	if !reflect.DeepEqual(rowOutcomes(res), rowOutcomes(ref)) {
		t.Errorf("damaged checkpoint changed the sweep:\n%+v\nvs\n%+v",
			rowOutcomes(res), rowOutcomes(ref))
	}
	if _, err := os.Stat(filepath.Join(dir, "scalability.ckpt")); !os.IsNotExist(err) {
		t.Errorf("damaged checkpoint not retired: %v", err)
	}
}

func ledgerLinesAfterFullRun(t *testing.T, ctx context.Context, cfg ScalabilityConfig) []string {
	t.Helper()
	Scalability(ctx, cfg)
	return ledgerLines(t, cfg.CheckpointDir)
}

// TestScalabilityInterruptedSweepResumes interrupts a live sweep (once
// the ledger shows progress) and proves the rerun completes it with the
// uninterrupted result — the end-to-end durability contract.
func TestScalabilityInterruptedSweepResumes(t *testing.T) {
	ref := Scalability(context.Background(), scalabilityTestConfig(""))

	dir := t.TempDir()
	cfg := scalabilityTestConfig(dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		path := filepath.Join(dir, "scalability.ledger")
		for {
			if data, err := os.ReadFile(path); err == nil && len(splitLines(string(data))) > 1 {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	Scalability(ctx, cfg) // partial; any progress is fine

	rerun := Scalability(context.Background(), cfg)
	if !reflect.DeepEqual(rowOutcomes(rerun), rowOutcomes(ref)) {
		t.Errorf("interrupted-then-rerun sweep diverged:\n%+v\nvs\n%+v",
			rowOutcomes(rerun), rowOutcomes(ref))
	}
}
