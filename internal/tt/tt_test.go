package tt

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
)

// augmented full-adder of Fig. 2(a): inputs c,b,a (a = LSB), outputs
// carry, sum, propagate.
func fullAdder() *Table {
	return FromFunc(3, 3, func(x uint32) uint32 {
		a := x & 1
		b := x >> 1 & 1
		c := x >> 2 & 1
		sum := a ^ b ^ c
		carry := a&b | b&c | a&c
		prop := a ^ b
		return carry<<2 | sum<<1 | prop // p_o is bit 0 like 'a'
	})
}

func TestMaxMultiplicity(t *testing.T) {
	// Fig. 2(a): output vectors (c_o,s_o,p_o) 011 and 101 each occur
	// twice (the † rows), everything else less.
	if got := fullAdder().MaxMultiplicity(); got != 2 {
		t.Errorf("full-adder max multiplicity = %d, want 2", got)
	}
}

func TestEmbedFullAdder(t *testing.T) {
	// One garbage output (⌈log2 2⌉ = 1) and one garbage input, exactly as
	// in Section II-A.
	e, err := Embed(fullAdder())
	if err != nil {
		t.Fatal(err)
	}
	if e.GarbageOutputs != 1 {
		t.Errorf("garbage outputs = %d, want 1", e.GarbageOutputs)
	}
	if e.ConstantInputs != 1 {
		t.Errorf("constant inputs = %d, want 1", e.ConstantInputs)
	}
	if e.Wires != 4 {
		t.Errorf("wires = %d, want 4", e.Wires)
	}
	p, err := perm.New(e.Spec)
	if err != nil {
		t.Fatalf("embedding is not reversible: %v", err)
	}
	// Real rows (constant input 0) must reproduce the original function.
	orig := fullAdder()
	for x := uint32(0); x < 8; x++ {
		if got := e.OriginalOutput(p[x]); got != orig.Rows[x] {
			t.Errorf("row %d: embedded output %03b, want %03b", x, got, orig.Rows[x])
		}
	}
}

func TestEmbedReversibleIsIdentityShape(t *testing.T) {
	// A function that is already reversible needs no garbage.
	tab := FromFunc(3, 3, func(x uint32) uint32 { return x ^ 5 })
	e, err := Embed(tab)
	if err != nil {
		t.Fatal(err)
	}
	if e.GarbageOutputs != 0 || e.ConstantInputs != 0 || e.Wires != 3 {
		t.Errorf("reversible function embedded with garbage: %+v", e)
	}
}

func TestEmbedSingleOutput(t *testing.T) {
	// AND of two inputs: multiplicity of output 0 is 3 → 2 garbage bits,
	// 3 outputs total, 3 wires, 1 constant input.
	and := FromFunc(2, 1, func(x uint32) uint32 {
		if x == 3 {
			return 1
		}
		return 0
	})
	e, err := Embed(and)
	if err != nil {
		t.Fatal(err)
	}
	if e.Wires != 3 || e.GarbageOutputs != 2 || e.ConstantInputs != 1 {
		t.Errorf("AND embedding shape wrong: %+v", e)
	}
	p, err := perm.New(e.Spec)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint32(0); x < 4; x++ {
		want := uint32(0)
		if x == 3 {
			want = 1
		}
		if e.OriginalOutput(p[x]) != want {
			t.Errorf("AND(%02b) embedded wrongly", x)
		}
	}
}

func TestEmbedRandomTables(t *testing.T) {
	src := rng.New(8)
	for trial := 0; trial < 40; trial++ {
		in := 1 + src.Intn(4)
		out := 1 + src.Intn(3)
		tab := FromFunc(in, out, func(x uint32) uint32 {
			return uint32(src.Intn(1 << uint(out)))
		})
		e, err := Embed(tab)
		if err != nil {
			t.Fatal(err)
		}
		p, err := perm.New(e.Spec)
		if err != nil {
			t.Fatalf("trial %d: not a permutation: %v", trial, err)
		}
		for x := uint32(0); x < uint32(len(tab.Rows)); x++ {
			if e.OriginalOutput(p[x]) != tab.Rows[x] {
				t.Fatalf("trial %d: row %d corrupted", trial, x)
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := &Table{Inputs: 2, Outputs: 1, Rows: []uint32{0, 1, 0}}
	if bad.Validate() == nil {
		t.Error("short row list should fail")
	}
	bad2 := &Table{Inputs: 1, Outputs: 1, Rows: []uint32{0, 2}}
	if bad2.Validate() == nil {
		t.Error("out-of-range output should fail")
	}
}

func TestIsReversible(t *testing.T) {
	if !FromFunc(2, 2, func(x uint32) uint32 { return x }).IsReversible() {
		t.Error("identity should be reversible")
	}
	if FromFunc(2, 2, func(x uint32) uint32 { return 0 }).IsReversible() {
		t.Error("constant should not be reversible")
	}
	if FromFunc(2, 1, func(x uint32) uint32 { return x & 1 }).IsReversible() {
		t.Error("non-square should not be reversible")
	}
}

func TestPartialTableValidate(t *testing.T) {
	good := &PartialTable{Inputs: 2, Outputs: 2,
		Rows: []uint32{0, 1, 2, 0}, Care: []uint32{3, 3, 3, 0}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid partial table rejected: %v", err)
	}
	if good.DontCareBits() != 2 {
		t.Errorf("DontCareBits = %d, want 2", good.DontCareBits())
	}
	bad := &PartialTable{Inputs: 2, Outputs: 2,
		Rows: []uint32{1, 0, 0, 0}, Care: []uint32{2, 3, 3, 3}}
	if bad.Validate() == nil {
		t.Error("row setting unspecified bit should fail")
	}
	short := &PartialTable{Inputs: 2, Outputs: 1, Rows: []uint32{0, 0, 0, 0}, Care: []uint32{1}}
	if short.Validate() == nil {
		t.Error("short care list should fail")
	}
}

func TestEmbedPartialHonorsCareBits(t *testing.T) {
	// AND with the output of row 0 unspecified.
	pt := &PartialTable{Inputs: 2, Outputs: 1,
		Rows: []uint32{0, 0, 0, 1}, Care: []uint32{0, 1, 1, 1}}
	e, full, err := EmbedPartial(pt, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	p, err := perm.New(e.Spec)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint32(1); x < 4; x++ { // specified rows only
		if got := e.OriginalOutput(p[x]); got != pt.Rows[x] {
			t.Errorf("row %d: got %d, want %d", x, got, pt.Rows[x])
		}
	}
	// The completed table must agree with the embedding on row 0 too.
	if got := e.OriginalOutput(p[0]); got != full.Rows[0] {
		t.Error("completed table and embedding disagree on the don't-care row")
	}
}

func TestEmbedPartialPicksSmallerExpansion(t *testing.T) {
	// A function whose don't-care completion can become linear: output =
	// parity on half the rows, unspecified elsewhere. The parity
	// completion has a tiny PPRM; the all-zeros completion does not.
	pt := &PartialTable{Inputs: 3, Outputs: 1,
		Rows: make([]uint32, 8), Care: make([]uint32, 8)}
	for x := 0; x < 8; x++ {
		if x%2 == 0 { // specify even rows with their parity
			pt.Rows[x] = uint32(OnesCount(uint32(x)) & 1)
			pt.Care[x] = 1
		}
	}
	eBest, _, err := EmbedPartial(pt, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the all-zeros completion explicitly.
	zero := pt.assign(func(int, int) uint32 { return 0 })
	eZero, err := Embed(zero)
	if err != nil {
		t.Fatal(err)
	}
	termsOf := func(e *Embedding) int {
		s, err := pprm.FromPerm(perm.Perm(e.Spec))
		if err != nil {
			t.Fatal(err)
		}
		return s.Terms()
	}
	if termsOf(eBest) > termsOf(eZero) {
		t.Errorf("EmbedPartial picked a larger expansion (%d) than all-zeros (%d)",
			termsOf(eBest), termsOf(eZero))
	}
}
