package bench

import (
	"context"
	"testing"
)

// smallConfig keeps the harness fast enough for the regular test run; the
// checked-in BENCH_search.json is produced by cmd/benchjson with the
// defaults.
func smallConfig() SearchBenchConfig {
	return SearchBenchConfig{
		Seed:         1,
		Table1Sample: 40,
		Random4:      8,
		TotalSteps:   20000,
		SkipExamples: true,
	}
}

// TestSearchBenchInvariants runs the scaled-down harness and checks the
// claims the full BENCH_search.json is published under: dedup solves the
// same functions with equal-or-fewer total gates, strictly fewer
// expansions, a nonzero hit rate, and no table traffic when disabled.
func TestSearchBenchInvariants(t *testing.T) {
	report, err := RunSearchBench(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Workloads) != 2 {
		t.Fatalf("got %d workloads, want 2", len(report.Workloads))
	}
	for _, w := range report.Workloads {
		if w.Off.Solved != w.Off.Functions || w.On.Solved != w.On.Functions {
			t.Errorf("%s: solved %d/%d off, %d/%d on", w.Workload,
				w.Off.Solved, w.Off.Functions, w.On.Solved, w.On.Functions)
		}
		if w.On.TotalGates > w.Off.TotalGates {
			t.Errorf("%s: dedup worsened total gates: %d > %d", w.Workload,
				w.On.TotalGates, w.Off.TotalGates)
		}
		// Strict reduction is the acceptance bar on the Table-I suite;
		// budget-bound workloads (every run exhausting TotalSteps) can
		// only tie, never regress.
		if w.On.Expansions > w.Off.Expansions {
			t.Errorf("%s: dedup increased expansions: %d on vs %d off",
				w.Workload, w.On.Expansions, w.Off.Expansions)
		}
		if w.Workload == "table1-3var" && w.On.Expansions >= w.Off.Expansions {
			t.Errorf("table1-3var: dedup did not reduce expansions: %d on vs %d off",
				w.On.Expansions, w.Off.Expansions)
		}
		if w.On.DedupHitRate <= 0 {
			t.Errorf("%s: zero dedup hit rate", w.Workload)
		}
		if w.Off.DedupHits != 0 || w.Off.DedupMisses != 0 {
			t.Errorf("%s: dedup-off run reported table traffic", w.Workload)
		}
		t.Logf("%s: expansions %d → %d (−%.1f%%), hit rate %.2f",
			w.Workload, w.Off.Expansions, w.On.Expansions,
			100*w.ExpansionReduction, w.On.DedupHitRate)
	}
}

// TestSearchBenchDeterministic: identical configs give identical
// deterministic fields (expansions, gates, dedup totals) across runs.
func TestSearchBenchDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.Table1Sample = 20
	cfg.Random4 = 4
	a, err := RunSearchBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSearchBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Workloads {
		wa, wb := a.Workloads[i], b.Workloads[i]
		if wa.On.Expansions != wb.On.Expansions || wa.Off.Expansions != wb.Off.Expansions {
			t.Errorf("%s: expansions differ across runs", wa.Workload)
		}
		if wa.On.TotalGates != wb.On.TotalGates || wa.Off.TotalGates != wb.Off.TotalGates {
			t.Errorf("%s: gate totals differ across runs", wa.Workload)
		}
		if wa.On.DedupHits != wb.On.DedupHits {
			t.Errorf("%s: dedup hits differ across runs", wa.Workload)
		}
	}
}

// benchFunctions is the fixed per-iteration workload for the Go
// benchmarks below (also the CI smoke target: -bench=Search -benchtime=1x).
const benchFunctions = 25

func benchmarkSearch(b *testing.B, dedup bool) {
	fns := seededFunctions(1, 3, benchFunctions)
	opts := searchOpts(20000, dedup)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := runWorkload(context.Background(), fns, opts)
		if err != nil {
			b.Fatal(err)
		}
		if m.Solved != len(fns) {
			b.Fatalf("solved %d/%d", m.Solved, len(fns))
		}
		b.ReportMetric(float64(m.Expansions), "expansions/op")
	}
}

func BenchmarkSearchDedupOff(b *testing.B) { benchmarkSearch(b, false) }
func BenchmarkSearchDedupOn(b *testing.B)  { benchmarkSearch(b, true) }
