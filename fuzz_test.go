package rmrls

// Native Go fuzz targets for every text-format parser and for the central
// algebraic invariants. `go test` exercises the seed corpus; `go test
// -fuzz=FuzzX` explores further.

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/esop"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/tt"
)

func FuzzPermParse(f *testing.F) {
	f.Add("{1, 0, 7, 2, 3, 4, 5, 6}")
	f.Add("0 1 2 3")
	f.Add("{}")
	f.Add("{1,1}")
	f.Add("{-1, 0}")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := perm.Parse(s)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid permutation %q: %v", s, err)
		}
	})
}

func FuzzCircuitParse(f *testing.F) {
	f.Add(3, "TOF1(a) TOF3(c,a,b)")
	f.Add(2, "TOF2(a,b)")
	f.Add(4, "TOF4(d,c,b,a)")
	f.Add(3, "TOF2(a,a)")
	f.Fuzz(func(t *testing.T, n int, s string) {
		if n < 1 || n > 8 {
			return
		}
		c, err := ParseCircuit(n, s)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("ParseCircuit accepted invalid cascade %q: %v", s, err)
		}
		// Round trip through String must preserve the function.
		back, err := ParseCircuit(n, c.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", c.String(), err)
		}
		if !back.Perm().Equal(c.Perm()) {
			t.Fatalf("round trip changed function for %q", s)
		}
	})
}

func FuzzPPRMParse(f *testing.F) {
	f.Add(2, "a' = a ^ 1\nb' = b")
	f.Add(3, "a' = a\nb' = b ^ ac\nc' = c")
	f.Add(2, "a = 1 + a\nb = ab")
	f.Fuzz(func(t *testing.T, n int, s string) {
		if n < 1 || n > 6 {
			return
		}
		spec, err := pprm.Parse(n, s)
		if err != nil {
			return
		}
		// String → Parse must reproduce the expansion.
		back, err := pprm.Parse(n, spec.String())
		if err != nil {
			t.Fatalf("re-parse of valid spec failed: %v", err)
		}
		if !back.Equal(spec) {
			t.Fatalf("round trip changed expansion for %q", s)
		}
	})
}

func FuzzPLAParse(f *testing.F) {
	f.Add(".i 2\n.o 1\n01 1\n.e")
	f.Add(".i 3\n.o 2\n1-1 10\n000 01\n.e")
	f.Add(".i 1\n.o 1\n0 1\n1 0")
	// Regression seeds: .i redefinition after a cube used to index rows
	// of the wrong width and panic; oversized directive arguments used to
	// wrap the int parse.
	f.Add(".i 1\n.o 1\n0 1\n.i 2\n01 1")
	f.Add(".i 99999999999999999999\n.o 1\n0 1")
	f.Add(".i 2\n.o 1\n01 1\n01 0")
	f.Add(".i 2\n.o 1\n01 1\n.e\n.i 3")
	f.Fuzz(func(t *testing.T, s string) {
		tab, err := tt.ParsePLA(s)
		if err != nil {
			return
		}
		if err := tab.Validate(); err != nil {
			t.Fatalf("ParsePLA accepted an invalid table: %v", err)
		}
		if _, err := tt.Embed(tab); err != nil {
			t.Fatalf("valid PLA table failed to embed: %v", err)
		}
	})
}

func FuzzCubeParse(f *testing.F) {
	f.Add("aB")
	f.Add("1")
	f.Add("abc")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := esop.ParseCube(s)
		if err != nil {
			return
		}
		back, err := esop.ParseCube(c.String())
		if err != nil || back != c {
			t.Fatalf("cube round trip broken for %q", s)
		}
	})
}

func FuzzSubstituteInvariants(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(0), uint16(2))
	f.Add(uint64(7), uint8(4), uint8(2), uint16(9))
	f.Fuzz(func(t *testing.T, seed uint64, vars, target uint8, factorBits uint16) {
		n := int(vars%5) + 1
		tgt := int(target) % n
		factor := bits.Mask(factorBits) & (1<<uint(n) - 1) &^ bits.Bit(tgt)
		p := RandomFunction(n, seed)
		spec, err := pprm.FromPerm(p)
		if err != nil {
			t.Fatal(err)
		}
		before := spec.Terms()
		d1 := spec.Substitute(tgt, factor)
		if spec.Terms() != before+d1 {
			t.Fatal("delta does not match term count")
		}
		d2 := spec.Substitute(tgt, factor)
		if d1+d2 != 0 {
			t.Fatal("substitution is not an involution")
		}
		if !spec.ToPerm().Equal(p) {
			t.Fatal("double substitution changed the function")
		}
	})
}
