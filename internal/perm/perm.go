// Package perm models reversible Boolean functions as permutations on the
// set {0, 1, …, 2^n − 1}, the representation used throughout Section II-A of
// the paper. A reversible function of n variables maps each n-bit input
// assignment to a unique n-bit output assignment, so its truth table is
// exactly a permutation of the 2^n integers.
//
// Input assignments are encoded with variable 0 ("a") as the least
// significant bit, matching the paper's figures where the rightmost truth
// table column is "a".
package perm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// Perm is a reversible function of Vars() variables stored as the output
// value for every input value: p[x] is the image of input assignment x.
type Perm []uint32

// Identity returns the identity permutation on n variables.
func Identity(n int) Perm {
	p := make(Perm, 1<<uint(n))
	for i := range p {
		p[i] = uint32(i)
	}
	return p
}

// New builds a Perm from the listed output values and validates it.
func New(values []uint32) (Perm, error) {
	p := Perm(append([]uint32(nil), values...))
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// FromInts builds a Perm from int output values (convenient for literal
// specifications quoted from the paper) and validates it.
func FromInts(values []int) (Perm, error) {
	u := make([]uint32, len(values))
	for i, v := range values {
		if v < 0 {
			return nil, fmt.Errorf("perm: negative output value %d at row %d", v, i)
		}
		u[i] = uint32(v)
	}
	return New(u)
}

// MustFromInts is FromInts that panics on error; for fixed specifications
// quoted from the paper.
func MustFromInts(values []int) Perm {
	p, err := FromInts(values)
	if err != nil {
		panic(err)
	}
	return p
}

// Vars returns the number of variables n, where len(p) == 2^n. It returns
// -1 if the length is not a power of two.
func (p Perm) Vars() int {
	n := 0
	for size := 1; size < len(p); size <<= 1 {
		n++
	}
	if 1<<uint(n) != len(p) {
		return -1
	}
	return n
}

// Validate checks that p is a permutation of {0, …, len(p)−1} and that its
// size is a power of two.
func (p Perm) Validate() error {
	n := p.Vars()
	if n < 0 {
		return fmt.Errorf("perm: size %d is not a power of two", len(p))
	}
	seen := make([]bool, len(p))
	for i, v := range p {
		if int(v) >= len(p) {
			return fmt.Errorf("perm: output %d at row %d out of range [0,%d)", v, i, len(p))
		}
		if seen[v] {
			return fmt.Errorf("perm: output %d repeated (function is not reversible)", v)
		}
		seen[v] = true
	}
	return nil
}

// IsIdentity reports whether p maps every input to itself.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if uint32(i) != v {
			return false
		}
	}
	return true
}

// Inverse returns the inverse permutation.
func (p Perm) Inverse() Perm {
	inv := make(Perm, len(p))
	for i, v := range p {
		inv[v] = uint32(i)
	}
	return inv
}

// Compose returns the permutation "q after p": result[x] = q[p[x]].
// Both permutations must have the same size.
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic("perm: Compose size mismatch")
	}
	out := make(Perm, len(p))
	for i, v := range p {
		out[i] = q[v]
	}
	return out
}

// Equal reports whether p and q are the same function.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsEven reports whether p is an even permutation. Shende et al. proved that
// every even permutation on n ≥ 4 wires is synthesizable over NCT without
// temporary storage; parity is therefore a useful structural probe.
func (p Perm) IsEven() bool {
	seen := make([]bool, len(p))
	transpositions := 0
	for i := range p {
		if seen[i] {
			continue
		}
		length := 0
		for j := uint32(i); !seen[j]; j = p[j] {
			seen[j] = true
			length++
		}
		transpositions += length - 1
	}
	return transpositions%2 == 0
}

// Random returns a uniformly random permutation on n variables drawn from
// src, i.e. a uniformly random reversible function (the workload of Tables
// II and III).
func Random(n int, src *rng.Source) Perm {
	size := 1 << uint(n)
	p := make(Perm, size)
	for i := range p {
		p[i] = uint32(i)
	}
	for i := size - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// OutputBit returns output bit `bit` of the function as a truth-table
// column: a slice of 2^n booleans indexed by input assignment.
func (p Perm) OutputBit(bit int) []bool {
	col := make([]bool, len(p))
	for x, y := range p {
		col[x] = y&(1<<uint(bit)) != 0
	}
	return col
}

// String renders the permutation in the paper's specification style:
// "{1, 0, 7, 2, 3, 4, 5, 6}".
func (p Perm) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	b.WriteByte('}')
	return b.String()
}

// Parse parses a specification in the String format (braces optional,
// comma- or space-separated) and validates it.
func Parse(s string) (Perm, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' || r == '\n' })
	vals := make([]int, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("perm: bad value %q: %v", f, err)
		}
		vals = append(vals, v)
	}
	return FromInts(vals)
}
