package bench

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/tt"
)

func pub(gates, cost int) *Published { return &Published{Gates: gates, Cost: cost} }

func init() {
	registerExamples()
	registerLiteratureBenchmarks()
	registerNewBenchmarks()
}

// registerExamples adds the worked examples of Section V-C whose
// specifications the paper prints verbatim.
func registerExamples() {
	register(fromPerm("ex1", "Example 1 of [7]: paper's first worked example",
		[]int{1, 0, 3, 2, 5, 7, 4, 6}, 3))
	register(fromPerm("shiftright3", "Example 2: wraparound shift right by one (3 variables)",
		[]int{7, 0, 1, 2, 3, 4, 5, 6}, 3))
	register(fromPerm("fredkin3", "Example 3: Fredkin gate realized with Toffoli gates",
		[]int{0, 1, 2, 3, 4, 6, 5, 7}, 3))
	register(fromPerm("swap3", "Example 4: swap of two adjacent values (3 variables)",
		[]int{0, 1, 2, 4, 3, 5, 6, 7}, 3))
	register(fromPerm("swap4", "Example 5: swap of two adjacent values (4 variables)",
		[]int{0, 1, 2, 3, 4, 5, 6, 8, 7, 9, 10, 11, 12, 13, 14, 15}, 4))
	register(fromPerm("shiftleft3", "Example 6: wraparound shift left by one (3 variables)",
		[]int{1, 2, 3, 4, 5, 6, 7, 0}, 3))
	register(fromPerm("shiftleft4", "Example 7: wraparound shift left by one (4 variables)",
		[]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0}, 4))
	register(fromPerm("fulladder", "Example 8: augmented full-adder (Fig. 2(b) embedding)",
		[]int{0, 7, 6, 9, 4, 11, 10, 13, 8, 15, 14, 1, 12, 3, 2, 5}, 3))
}

// registerLiteratureBenchmarks adds the Table IV functions taken from the
// literature, with the paper's own results and the best published ones.
func registerLiteratureBenchmarks() {
	b := fromTable("2of5", "outputs 1 iff exactly two of the five inputs are 1",
		tt.FromFunc(5, 1, func(x uint32) uint32 {
			if tt.OnesCount(x) == 2 {
				return 1
			}
			return 0
		}))
	b.PaperGates, b.PaperCost, b.Best = 20, 100, pub(15, 107)
	register(b)

	b = fromTable("rd32", "2-bit binary count of ones of three inputs",
		tt.FromFunc(3, 2, func(x uint32) uint32 { return uint32(tt.OnesCount(x)) }))
	b.PaperGates, b.PaperCost, b.Best, b.NCT = 4, 8, pub(4, 8), true
	register(b)

	b = fromPerm("3_17", "the 3_17 benchmark of Maslov's suite",
		[]int{7, 1, 4, 3, 0, 2, 6, 5}, 3)
	b.PaperGates, b.PaperCost, b.Best, b.NCT = 6, 14, pub(6, 12), true
	register(b)

	b = fromPerm("4_49", "the 4_49 benchmark of Maslov's suite",
		[]int{15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11}, 4)
	b.PaperGates, b.PaperCost = 13, 61
	b.Best = pub(16, 58)
	register(b)

	b = fromPerm("alu", "Example 13: 2-data-input ALU with three control signals (Fig. 9)",
		[]int{16, 17, 18, 19, 0, 20, 21, 22, 23, 24, 25, 11, 12, 26, 27, 15,
			28, 13, 14, 29, 8, 9, 10, 30, 31, 1, 2, 3, 4, 5, 6, 7}, 5)
	b.PaperGates, b.PaperCost = 18, 114
	register(b)

	b = fromTable("rd53", "Example 9: 3-bit binary count of ones of five inputs (MCNC)",
		tt.FromFunc(5, 3, func(x uint32) uint32 { return uint32(tt.OnesCount(x)) }))
	b.PaperGates, b.PaperCost, b.Best = 13, 116, pub(16, 75)
	register(b)

	b = fromPerm("xor5", "parity of five inputs replaces the first input",
		linearParity(5), 5)
	b.PaperGates, b.PaperCost, b.Best, b.NCT = 4, 4, pub(4, 4), true
	register(b)

	b = fromTable("4mod5", "outputs 1 iff the 4-bit input is divisible by 5",
		tt.FromFunc(4, 1, func(x uint32) uint32 {
			if x%5 == 0 {
				return 1
			}
			return 0
		}))
	b.PaperGates, b.PaperCost, b.Best, b.NCT = 5, 13, pub(5, 13), true
	register(b)

	b = fromTable("5mod5", "outputs 1 iff the 5-bit input is divisible by 5",
		tt.FromFunc(5, 1, func(x uint32) uint32 {
			if x%5 == 0 {
				return 1
			}
			return 0
		}))
	b.PaperGates, b.PaperCost, b.Best = 11, 91, pub(10, 90)
	register(b)

	b = fromPerm("ham3", "stand-in for the ham3 benchmark (exact spec unavailable)",
		[]int{0, 7, 1, 6, 3, 4, 2, 5}, 3)
	b.PaperGates, b.PaperCost, b.Best, b.NCT, b.StandIn = 5, 9, pub(5, 7), true, true
	register(b)

	b = &Benchmark{
		Name:        "ham7",
		Description: "stand-in for the ham7 benchmark: Hamming(7,4) encoder permutation",
		Wires:       7, RealInputs: 7,
		Spec:     hamming7(),
		PPRMSpec: pprmFromPerm(hamming7()),
		StandIn:  true,
	}
	b.PaperGates, b.PaperCost, b.Best = 24, 68, pub(23, 81)
	register(b)

	b = fromPerm("hwb4", "hidden weighted bit: input rotated left by its weight",
		hwb(4), 4)
	b.PaperGates, b.PaperCost, b.Best, b.NCT = 15, 35, pub(17, 63), true
	register(b)

	for _, g := range []struct {
		n, gates, cost int
		best           *Published
	}{
		{6, 5, 5, pub(5, 5)}, {10, 9, 9, pub(9, 9)}, {20, 19, 19, pub(19, 19)},
	} {
		gb := &Benchmark{
			Name:        fmt.Sprintf("graycode%d", g.n),
			Description: "binary-to-Gray-code converter",
			Wires:       g.n, RealInputs: g.n,
			PaperGates: g.gates, PaperCost: g.cost, Best: g.best, NCT: true,
		}
		gb.PPRMSpec = graycodePPRM(g.n)
		if g.n <= 20 {
			gb.Spec = graycodePerm(g.n)
		}
		register(gb)
	}

	for _, m := range []struct {
		name        string
		k, modulus  int
		gates, cost int
		best        *Published
	}{
		{"mod5adder", 3, 5, 19, 127, pub(21, 125)},
		{"mod32adder", 5, 32, 15, 154, nil},
		{"mod15adder", 4, 15, 10, 71, nil},
		{"mod64adder", 6, 64, 26, 333, nil},
	} {
		ab := fromPerm(m.name,
			fmt.Sprintf("(a+b) mod %d on the b wires, a preserved", m.modulus),
			modAdder(m.k, m.modulus), 2*m.k)
		ab.PaperGates, ab.PaperCost, ab.Best = m.gates, m.cost, m.best
		register(ab)
	}
}

// registerNewBenchmarks adds the functions the paper introduces.
func registerNewBenchmarks() {
	b := fromPerm("majority5", "Example 10: majority of five inputs",
		[]int{0, 1, 2, 3, 4, 5, 6, 27, 7, 8, 9, 28, 10, 29, 30, 31,
			11, 12, 13, 16, 14, 17, 18, 19, 15, 20, 21, 22, 23, 24, 25, 26}, 5)
	b.PaperGates, b.PaperCost = 16, 104
	register(b)

	b = fromTable("majority3", "majority of three inputs",
		tt.FromFunc(3, 1, func(x uint32) uint32 {
			if tt.OnesCount(x) >= 2 {
				return 1
			}
			return 0
		}))
	b.PaperGates, b.PaperCost, b.NCT = 4, 16, true
	register(b)

	b = fromPerm("decod24", "Example 11: 2:4 decoder with two garbage inputs",
		[]int{1, 2, 4, 8, 0, 3, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15}, 2)
	b.PaperGates, b.PaperCost = 11, 31
	register(b)

	b = fromPerm("5one013", "Example 12: 1 iff the input weight is 0, 1, or 3",
		[]int{16, 17, 18, 3, 19, 4, 5, 20, 21, 6, 7, 22, 8, 23, 24, 9,
			25, 10, 11, 26, 12, 27, 28, 13, 14, 29, 30, 15, 31, 0, 1, 2}, 5)
	b.PaperGates, b.PaperCost = 19, 95
	register(b)

	b = fromTable("5one245", "1 iff the input weight is 2, 4, or 5",
		tt.FromFunc(5, 1, func(x uint32) uint32 {
			switch tt.OnesCount(x) {
			case 2, 4, 5:
				return 1
			}
			return 0
		}))
	b.PaperGates, b.PaperCost = 20, 104
	register(b)

	b = fromPerm("6one135", "1 iff the input weight is odd (6 variables)",
		linearParity(6), 6)
	b.PaperGates, b.PaperCost, b.NCT = 5, 5, true
	register(b)

	b = fromPerm("6one0246", "1 iff the input weight is even (6 variables)",
		notParity(6), 6)
	b.PaperGates, b.PaperCost, b.NCT = 6, 6, true
	register(b)

	for _, s := range []struct {
		n, gates, cost int
		best           *Published
	}{
		{10, 27, 1469, pub(19, 1198)}, {15, 30, 3500, nil}, {28, 56, 14310, nil},
	} {
		sb := &Benchmark{
			Name: fmt.Sprintf("shift%d", s.n),
			Description: "Example 14: controlled wraparound shifter — two control " +
				"signals select a shift of 0–3 positions",
			Wires:      s.n + 2,
			RealInputs: s.n + 2,
			PaperGates: s.gates, PaperCost: s.cost, Best: s.best,
		}
		n := s.n
		sb.PPRMSpec = func() (*pprm.Spec, error) {
			return ShifterCircuit(n).PPRM(), nil
		}
		if s.n+2 <= 20 {
			sb.Spec = ShifterCircuit(s.n).Perm()
		}
		register(sb)
	}
}

// linearParity returns the permutation replacing input 0 with the parity of
// all n inputs (xor5, 6one135).
func linearParity(n int) []int {
	size := 1 << uint(n)
	out := make([]int, size)
	for x := 0; x < size; x++ {
		p := tt.OnesCount(uint32(x)) & 1
		out[x] = x&^1 | p
	}
	return out
}

// notParity replaces input 0 with the complement of the parity (6one0246).
func notParity(n int) []int {
	out := linearParity(n)
	for x := range out {
		out[x] ^= 1
	}
	return out
}

// hwb returns the hidden-weighted-bit permutation: the input rotated left
// by its Hamming weight.
func hwb(n int) []int {
	size := 1 << uint(n)
	out := make([]int, size)
	for x := 0; x < size; x++ {
		w := tt.OnesCount(uint32(x)) % n
		rot := (x<<uint(w) | x>>uint(n-w)) & (size - 1)
		out[x] = rot
	}
	return out
}

// hamming7 returns the stand-in ham7 permutation: data bits pass through
// and each parity wire is XORed with the Hamming(7,4) parity of the data
// bits it covers, followed by a conditioned inversion to make the function
// nonlinear (the published ham7 is nonlinear).
func hamming7() perm.Perm {
	c := circuit.New(7)
	// Parity wires 0,1,3 (1-indexed Hamming positions 1,2,4); data wires
	// 2,4,5,6 (positions 3,5,6,7).
	c.Append(
		circuit.NewGate(0, 2), circuit.NewGate(0, 4), circuit.NewGate(0, 6),
		circuit.NewGate(1, 2), circuit.NewGate(1, 5), circuit.NewGate(1, 6),
		circuit.NewGate(3, 4), circuit.NewGate(3, 5), circuit.NewGate(3, 6),
		circuit.NewGate(2, 0, 1), // nonlinear twist
	)
	return c.Perm()
}

// modAdder returns the permutation of 2k wires computing
// b ← (a+b) mod m when both halves encode values < m, and the identity on
// the remaining (invalid) codes: a occupies the low k wires, b the high k.
func modAdder(k, m int) []int {
	size := 1 << uint(2*k)
	half := 1 << uint(k)
	out := make([]int, size)
	for x := 0; x < size; x++ {
		a := x % half
		b := x / half
		if a < m && b < m {
			out[x] = a + ((a+b)%m)*half
		} else {
			out[x] = x
		}
	}
	return out
}

// graycodePerm returns the binary→Gray converter: out_i = x_i ⊕ x_{i+1}.
func graycodePerm(n int) perm.Perm {
	size := 1 << uint(n)
	p := make(perm.Perm, size)
	for x := 0; x < size; x++ {
		p[x] = uint32(x) ^ uint32(x)>>1
	}
	return p
}

// graycodePPRM returns the converter's expansion directly (n CNOT terms).
func graycodePPRM(n int) func() (*pprm.Spec, error) {
	return func() (*pprm.Spec, error) {
		s := pprm.Identity(n)
		for i := 0; i < n-1; i++ {
			s.Out[i].Toggle(bits.Bit(i + 1))
		}
		return s, nil
	}
}

// ShifterCircuit builds the reference realization of Example 14's shifter:
// a controlled increment by 1 (conditioned on control wire n) cascaded with
// a controlled increment by 2 (conditioned on control wire n+1), for
// 2n − 1 gates in total. Data wires are 0..n−1 (wire 0 = LSB); the
// function maps data value d to (d + s) mod 2^n where s is the 2-bit
// control value, matching the paper's example {0,1,…} → {2,3,…,0,1} for
// control 10.
func ShifterCircuit(n int) *circuit.Circuit {
	c := circuit.New(n + 2)
	c0, c1 := n, n+1
	// +1 controlled on c0: ripple from the top down so lower carries are
	// still the original bits.
	for i := n - 1; i >= 0; i-- {
		controls := []int{c0}
		for j := 0; j < i; j++ {
			controls = append(controls, j)
		}
		c.Append(circuit.NewGate(i, controls...))
	}
	// +2 controlled on c1: same ripple starting at bit 1.
	for i := n - 1; i >= 1; i-- {
		controls := []int{c1}
		for j := 1; j < i; j++ {
			controls = append(controls, j)
		}
		c.Append(circuit.NewGate(i, controls...))
	}
	return c
}
