package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// chaosLog is a concurrency-safe Config.Logf sink.
type chaosLog struct {
	mu    sync.Mutex
	lines []string
}

func (l *chaosLog) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *chaosLog) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ln := range l.lines {
		if strings.Contains(ln, sub) {
			return true
		}
	}
	return false
}

// submitWait posts a waiting job and returns its decoded view; every 200
// must carry an independently verified result — that is the soak's core
// invariant, checked on every single response.
func submitWait(t *testing.T, url, body string) JobView {
	t.Helper()
	resp, data := postJSON(t, url+"/v1/jobs?wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d, want 200; body: %s", resp.StatusCode, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("unmarshal job view: %v\n%s", err, data)
	}
	if v.Result != nil && v.Result.Found {
		if v.Result.Verified == nil || !*v.Result.Verified {
			t.Fatalf("200 with an unverified result: %s", data)
		}
	}
	return v
}

func domainState(t *testing.T, url, name string) string {
	t.Helper()
	_, body := getURL(t, url+"/v1/healthz")
	return domainView(t, decodeHealth(t, body), name).State
}

// TestChaosSoakRotatingFaults drives the server with the real engine while
// disk faults rotate through the fault domains: ENOSPC on the cache
// directory, then EIO on the state directory while a worker miscompile
// forces the quarantine path. Invariants held throughout: every 200 is
// verified, no submission is lost, results stay deterministic, and every
// tripped domain re-closes once its fault heals.
func TestChaosSoakRotatingFaults(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	stateDir := filepath.Join(t.TempDir(), "state")
	cfs := chaos.New(nil)
	logs := &chaosLog{}

	var srv *Server
	var attempts atomic.Int64
	var corruptNext atomic.Bool
	cfg := Config{
		Workers:      2,
		StateDir:     stateDir,
		CacheDir:     cacheDir,
		FS:           cfs,
		HealthConfig: fastBreakers,
		Logf:         logs.logf,
		Runner: corruptingRunner(&srv, &attempts, func(int64) bool {
			return corruptNext.CompareAndSwap(true, false)
		}),
	}
	s, ts := startTestServer(t, cfg)
	srv = s

	// Distinct 3-variable functions so each round generates fresh cache
	// disk traffic instead of deduplicating against earlier rounds.
	perms := []string{
		"{0, 1, 2, 3, 4, 5, 7, 6}",
		"{1, 0, 3, 2, 5, 4, 7, 6}",
		"{7, 6, 5, 4, 3, 2, 1, 0}",
		"{1, 2, 3, 4, 5, 6, 7, 0}",
		"{0, 2, 4, 6, 1, 3, 5, 7}",
	}
	permJob := func(i int) string {
		return fmt.Sprintf(`{"spec":{"perm":"%s"},"budget":{"time_ms":30000,"steps":%d}}`,
			perms[i], 500000+i)
	}

	// --- Round 1: cache device out of space. Synthesis must not notice:
	// jobs complete verified; the cache domain trips and sheds the disk.
	cfs.Fail(cacheDir, chaos.ENOSPC)
	var gates1 int
	for _, body := range []string{
		permJob(0), permJob(1),
		`{"spec":{"bench":"rd53"},"budget":{"time_ms":30000,"steps":600000}}`,
	} {
		v := submitWait(t, ts.URL, body)
		if v.Result == nil || !v.Result.Found {
			t.Fatalf("round 1 job unsolved under cache ENOSPC: %+v", v)
		}
		if strings.Contains(body, "rd53") {
			gates1 = v.Result.Gates
		}
	}
	if st := domainState(t, ts.URL, DomainCache); st != "open" {
		t.Fatalf("cache domain = %q after ENOSPC Puts, want open", st)
	}
	if w, _ := cfs.InjectedErrors(); w == 0 {
		t.Fatal("chaos FS injected no write errors — the fault never bit")
	}

	// --- Round 2: device heals. The next store is the half-open probe;
	// its success re-closes the domain.
	cfs.Heal(cacheDir)
	time.Sleep(2 * fastBreakers.BaseBackoff)
	submitWait(t, ts.URL, permJob(2))
	waitFor(t, func() bool { return domainState(t, ts.URL, DomainCache) == "closed" },
		"cache domain to re-close after heal")

	// --- Round 3: state device throws EIO while a miscompile forces a
	// quarantine write. The write fails, the evidence lands in the log,
	// the domain trips — and the client still gets a verified result from
	// the degraded re-run.
	cfs.Fail(stateDir, chaos.EIO)
	corruptNext.Store(true)
	v := submitWait(t, ts.URL, permJob(3))
	if !v.Degraded {
		t.Fatalf("miscompiled job not rerun degraded: %+v", v)
	}
	if st := domainState(t, ts.URL, DomainQuarantine); st != "open" {
		t.Fatalf("quarantine domain = %q after EIO write, want open", st)
	}
	if files, _ := filepath.Glob(filepath.Join(stateDir, "quarantine-*.json")); len(files) != 0 {
		t.Fatalf("quarantine artifact landed on a sick device: %v", files)
	}
	if !logs.contains("artifact follows") {
		t.Error("failed quarantine write did not dump the artifact to the log")
	}

	// --- Round 4: heal everything; a second miscompile probes the domain
	// shut and this time the artifact reaches disk.
	cfs.HealAll()
	time.Sleep(2 * fastBreakers.BaseBackoff)
	corruptNext.Store(true)
	v = submitWait(t, ts.URL, permJob(4))
	if !v.Degraded {
		t.Fatalf("second miscompiled job not rerun degraded: %+v", v)
	}
	waitFor(t, func() bool { return domainState(t, ts.URL, DomainQuarantine) == "closed" },
		"quarantine domain to re-close after heal")
	if files, _ := filepath.Glob(filepath.Join(stateDir, "quarantine-*.json")); len(files) == 0 {
		t.Fatal("no quarantine artifact after the device healed")
	}

	// --- Determinism across the whole soak: the same benchmark re-run
	// after every fault resolves to the same circuit size.
	v = submitWait(t, ts.URL,
		`{"spec":{"bench":"rd53"},"budget":{"time_ms":30000,"steps":600001}}`)
	if v.Result == nil || !v.Result.Found {
		t.Fatalf("final rd53 unsolved: %+v", v)
	}
	if !v.Result.CacheHit && v.Result.Gates != gates1 {
		t.Errorf("rd53 gates drifted across the soak: %d then %d", gates1, v.Result.Gates)
	}

	// No submission lost: every job this test created is terminal.
	_, body := getURL(t, ts.URL+"/v1/healthz")
	hv := decodeHealth(t, body)
	if hv.Status != "ok" {
		t.Errorf("end-of-soak status = %q, want ok (all domains healed)", hv.Status)
	}
	for _, name := range DomainNames() {
		if d := domainView(t, hv, name); d.State == "open" {
			t.Errorf("domain %s still open at end of soak", name)
		}
	}
}

// TestEnospcMidDrainRestartsClean fills the state device exactly when the
// drain ledger must be written. The drain reports the failure, every job
// still reaches a terminal state, nothing torn is left behind, and a
// restart against the same directory comes up clean and empty.
func TestEnospcMidDrainRestartsClean(t *testing.T) {
	stateDir := filepath.Join(t.TempDir(), "state")
	cfs := chaos.New(nil)
	logs := &chaosLog{}
	release := make(chan struct{})
	defer close(release)
	s, ts := startTestServer(t, Config{
		Workers:      1,
		StateDir:     stateDir,
		FS:           cfs,
		HealthConfig: fastBreakers,
		Logf:         logs.logf,
		Runner:       blockingRunner(release),
	})

	// One running job, one queued behind it — both unfinished at drain.
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/jobs",
			fmt.Sprintf(`{"spec":{"bench":"rd53"},"budget":{"steps":%d}}`, 700000+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d; %s", i, resp.StatusCode, body)
		}
	}
	waitFor(t, func() bool { return s.running.Load() == 1 }, "worker to pick up a job")

	cfs.Fail(stateDir, chaos.ENOSPC)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.Drain(ctx)
	if err == nil || !strings.Contains(err.Error(), "ledger") {
		t.Fatalf("Drain under ENOSPC = %v, want ledger write error", err)
	}

	// Both jobs are terminal — interrupted, not lost in limbo.
	st := s.Stats()
	if st.Interrupted != 2 {
		t.Fatalf("Interrupted = %d, want 2", st.Interrupted)
	}
	if got := s.health.Views(); len(got) > 0 {
		for _, d := range got {
			if d.Name == DomainLedger && d.State != "open" {
				t.Errorf("ledger domain = %q after failed drain write, want open", d.State)
			}
		}
	}

	// Nothing torn on disk: no ledger, no stray temp files.
	cfs.HealAll()
	if files, _ := filepath.Glob(filepath.Join(stateDir, "*")); len(files) != 0 {
		t.Fatalf("failed drain left files behind: %v", files)
	}

	// A restart against the same directory starts clean.
	s2, err := New(Config{Workers: 1, StateDir: stateDir, FS: cfs})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if n := s2.Stats().Recovered; n != 0 {
		t.Errorf("restart recovered %d jobs from a never-written ledger", n)
	}
	if notes := s2.RecoveryNotes(); len(notes) != 0 {
		t.Errorf("restart not clean: %v", notes)
	}
	s2.Start()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	s2.Drain(ctx2)
}
