package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunSnapshotBasics(t *testing.T) {
	r := NewRun("main")
	r.Begin(1000, 2*time.Second, 1<<20)
	r.Update(Counters{Steps: 640, Nodes: 900, Restarts: 2, QueueLen: 50,
		QueueBytes: 5000, TotalBytes: 7000, PeakBytes: 8000,
		DedupHits: 300, DedupMisses: 340, DedupEvictions: 1})
	r.Solution(14, 120)
	r.Solution(12, 100)
	r.Solution(13, 90) // worse gate count: must not stick
	r.CheckpointWritten(4096)

	s := r.Snapshot(time.Now())
	if s.Label != "main" || s.Aggregate {
		t.Errorf("label/aggregate: %+v", s)
	}
	if s.Steps != 640 || s.Nodes != 900 || s.Restarts != 2 {
		t.Errorf("counters: %+v", s)
	}
	if s.QueueLen != 50 || s.TotalBytes != 7000 || s.PeakBytes != 8000 || s.MaxMemory != 1<<20 {
		t.Errorf("gauges: %+v", s)
	}
	if s.BestGates != 12 || s.BestQuantumCost != 100 {
		t.Errorf("best: gates=%d cost=%d", s.BestGates, s.BestQuantumCost)
	}
	if s.Checkpoints != 1 || s.LastCheckpointAge < 0 || s.LastCheckpointBytes != 4096 {
		t.Errorf("checkpoint: %+v", s)
	}
	if s.StepsBudget != 1000 || s.StepsRemaining != 360 {
		t.Errorf("budget: %+v", s)
	}
	if s.DedupHitRate() < 0.46 || s.DedupHitRate() > 0.47 {
		t.Errorf("hit rate: %v", s.DedupHitRate())
	}
	if s.Done {
		t.Error("not finished yet")
	}
	r.Finish("step-limit")
	s = r.Snapshot(time.Now())
	if !s.Done || s.Stop != "step-limit" {
		t.Errorf("finish: %+v", s)
	}
}

func TestRunNoSolutionNoCheckpoint(t *testing.T) {
	r := NewRun("x")
	r.Begin(0, 0, 0)
	s := r.Snapshot(time.Now())
	if s.BestGates != -1 {
		t.Errorf("BestGates = %d before any solution", s.BestGates)
	}
	if s.LastCheckpointAge != -1 {
		t.Errorf("LastCheckpointAge = %v before any checkpoint", s.LastCheckpointAge)
	}
	if s.StepsBudget != 0 || s.TimeBudget != 0 {
		t.Errorf("budgets should be absent: %+v", s)
	}
}

// TestBeginFoldsAttempts: a Run reused across attempts (sweep samples,
// tightening rounds) reports cumulative counters.
func TestBeginFoldsAttempts(t *testing.T) {
	r := NewRun("row")
	r.Begin(100, 0, 0)
	r.Update(Counters{Steps: 100, Nodes: 150, QueueLen: 30})
	r.Begin(100, 0, 0)
	r.Update(Counters{Steps: 40, Nodes: 60, QueueLen: 7})
	s := r.Snapshot(time.Now())
	if s.Steps != 140 || s.Nodes != 210 {
		t.Errorf("cumulative counters: steps=%d nodes=%d", s.Steps, s.Nodes)
	}
	if s.QueueLen != 7 {
		t.Errorf("gauge must reflect the live attempt only: %d", s.QueueLen)
	}
	if s.StepsRemaining != 60 {
		t.Errorf("budget tracks the current attempt: remaining=%d", s.StepsRemaining)
	}
}

// TestChildAggregation: a parent Run merges its children's telemetry — the
// portfolio contract.
func TestChildAggregation(t *testing.T) {
	root := NewRun("portfolio")
	a := root.Child("variant0")
	b := root.Child("variant1")
	a.Begin(0, 0, 0)
	b.Begin(0, 0, 0)
	a.Update(Counters{Steps: 10, Nodes: 20, QueueLen: 3, TotalBytes: 100, DedupHits: 5, DedupMisses: 5})
	b.Update(Counters{Steps: 30, Nodes: 40, QueueLen: 4, TotalBytes: 200, DedupHits: 1, DedupMisses: 3})
	a.Solution(9, 33)
	b.Solution(7, 55)
	a.Finish("solved")

	s := root.Snapshot(time.Now())
	if !s.Aggregate {
		t.Error("parent snapshot must be marked aggregate")
	}
	if s.Steps != 40 || s.Nodes != 60 || s.QueueLen != 7 || s.TotalBytes != 300 {
		t.Errorf("aggregate sums: %+v", s)
	}
	if s.BestGates != 7 || s.BestQuantumCost != 55 {
		t.Errorf("aggregate best: %d/%d", s.BestGates, s.BestQuantumCost)
	}
	if s.DedupHits != 6 || s.DedupMisses != 8 {
		t.Errorf("aggregate dedup: %+v", s)
	}
	if s.Done {
		t.Error("not done until every child is")
	}
	b.Finish("solved")
	root.Finish("solved")
	if s := root.Snapshot(time.Now()); !s.Done {
		t.Error("all children done → aggregate done")
	}

	kids := root.ChildSnapshots(time.Now())
	if len(kids) != 2 || kids[0].Label != "variant0" || kids[1].Label != "variant1" {
		t.Fatalf("child snapshots: %+v", kids)
	}
	if kids[0].Steps != 10 || kids[1].Steps != 30 {
		t.Errorf("children report individually: %+v", kids)
	}
}

// TestConcurrentUpdates drives a Run from several goroutines while snapshots
// are taken — the -race proof that the telemetry layer is lock-correct.
func TestConcurrentUpdates(t *testing.T) {
	root := NewRun("race")
	var wg sync.WaitGroup
	for v := 0; v < 4; v++ {
		child := root.Child(fmt.Sprintf("v%d", v))
		wg.Add(1)
		go func(r *Run) {
			defer wg.Done()
			r.Begin(1000, time.Second, 1<<20)
			for i := 1; i <= 500; i++ {
				r.Update(Counters{Steps: int64(i), Nodes: int64(2 * i), QueueLen: int64(i % 7)})
				if i%100 == 0 {
					r.Solution(20-i/100, i)
					r.CheckpointWritten(int64(i))
				}
			}
			r.Finish("solved")
		}(child)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			root.Snapshot(time.Now())
			root.ChildSnapshots(time.Now())
		}
	}()
	wg.Wait()
	<-done
	s := root.Snapshot(time.Now())
	if s.Steps != 4*500 || s.BestGates != 15 {
		t.Errorf("final aggregate: steps=%d best=%d", s.Steps, s.BestGates)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	r := NewRun("jr")
	r.Begin(500, 0, 0)
	r.Update(Counters{Steps: 123, Nodes: 456})
	r.Solution(11, 77)
	if err := sink.Emit(r.Snapshot(time.Now())); err != nil {
		t.Fatal(err)
	}
	r.Update(Counters{Steps: 200, Nodes: 700})
	r.Finish("solved")
	if err := sink.Emit(r.Snapshot(time.Now())); err != nil {
		t.Fatal(err)
	}
	sink.Close()

	var snaps []ProgressSnapshot
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var s ProgressSnapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		snaps = append(snaps, s)
	}
	if len(snaps) != 2 {
		t.Fatalf("got %d lines", len(snaps))
	}
	if snaps[0].Steps != 123 || snaps[0].BestGates != 11 || snaps[0].Done {
		t.Errorf("first: %+v", snaps[0])
	}
	if snaps[1].Steps != 200 || !snaps[1].Done || snaps[1].Stop != "solved" {
		t.Errorf("final: %+v", snaps[1])
	}
}

func TestTTYSinkSingleLine(t *testing.T) {
	var buf bytes.Buffer
	sink := NewTTYSink(&buf)
	root := ProgressSnapshot{Label: "main", Steps: 12345, QueueLen: 10, BestGates: -1}
	child := ProgressSnapshot{Label: "variant1", Steps: 99}
	sink.Emit(root)
	sink.Emit(child) // must be ignored: one line, the root's
	root.Steps = 20000
	root.BestGates, root.BestQuantumCost = 12, 88
	sink.Emit(root)
	sink.Close()
	out := buf.String()
	if strings.Count(out, "\r") != 2 {
		t.Errorf("want 2 carriage returns (one per root emit): %q", out)
	}
	if strings.Contains(out, "variant1") {
		t.Errorf("child snapshot leaked into the TTY line: %q", out)
	}
	if !strings.Contains(out, "12g/qc88") {
		t.Errorf("best circuit missing: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("Close must terminate the line: %q", out)
	}
}

func TestExpvarSinkPublishes(t *testing.T) {
	sink := NewExpvarSink("test.progress")
	sink.Emit(ProgressSnapshot{Label: "a", Steps: 5, BestGates: -1})
	sink.Emit(ProgressSnapshot{Label: "b", Steps: 9, BestGates: 3})
	// Re-creating a sink with the same name must reuse the registered var,
	// not panic on expvar.Publish.
	sink2 := NewExpvarSink("test.progress")
	sink2.Emit(ProgressSnapshot{Label: "a", Steps: 6, BestGates: -1})

	var got map[string]ProgressSnapshot
	if err := json.Unmarshal([]byte(sink.v.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got["a"].Steps != 6 || got["b"].Steps != 9 {
		t.Errorf("published snapshots: %+v", got)
	}
}

func TestPublisherEmitsAndStops(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	root := NewRun("pub")
	child := root.Child("v0")
	child.Begin(0, 0, 0)
	child.Update(Counters{Steps: 7})
	p := NewPublisher(root, 10*time.Millisecond, sink, nil) // nil sink dropped
	p.Start()
	time.Sleep(35 * time.Millisecond)
	child.Update(Counters{Steps: 50})
	child.Finish("solved")
	root.Finish("solved")
	p.Stop()

	sc := bufio.NewScanner(&buf)
	var all []ProgressSnapshot
	for sc.Scan() {
		var s ProgressSnapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		all = append(all, s)
	}
	if len(all) < 4 { // ≥1 tick + final, × (root + child)
		t.Fatalf("too few snapshots: %d", len(all))
	}
	last := all[len(all)-1]
	penult := all[len(all)-2]
	// The final publish emits root then child.
	if !penult.Aggregate || penult.Label != "pub" || penult.Steps != 50 || !penult.Done {
		t.Errorf("final aggregate: %+v", penult)
	}
	if last.Label != "v0" || last.Steps != 50 || !last.Done {
		t.Errorf("final child: %+v", last)
	}
	sawChild := false
	for _, s := range all {
		if s.Label == "v0" {
			sawChild = true
		}
	}
	if !sawChild {
		t.Error("per-variant snapshots missing")
	}
}

func TestPublisherRates(t *testing.T) {
	r := NewRun("rate")
	r.Begin(0, 0, 0)
	p := NewPublisher(r, time.Hour) // manual publishes only
	now := time.Now()
	r.Update(Counters{Steps: 0})
	s0 := r.Snapshot(now)
	p.fillRate(&s0, now)
	if s0.StepsPerSec != 0 {
		t.Errorf("first sample has no rate: %v", s0.StepsPerSec)
	}
	r.Update(Counters{Steps: 1000})
	later := now.Add(2 * time.Second)
	s1 := r.Snapshot(later)
	p.fillRate(&s1, later)
	if s1.StepsPerSec < 499 || s1.StepsPerSec > 501 {
		t.Errorf("rate = %v, want ~500", s1.StepsPerSec)
	}
}

func TestServeMetrics(t *testing.T) {
	sink := NewExpvarSink("serve.progress")
	sink.Emit(ProgressSnapshot{Label: "srv", Steps: 42, BestGates: -1})
	addr, shutdown, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	var snaps map[string]ProgressSnapshot
	if err := json.Unmarshal(vars["serve.progress"], &snaps); err != nil {
		t.Fatalf("progress var: %v", err)
	}
	if snaps["srv"].Steps != 42 {
		t.Errorf("served snapshot: %+v", snaps)
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof endpoint: %v", resp.Status)
	}
}

func TestFormatHelpers(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want string
	}{{999, "999"}, {15000, "15.0k"}, {2_500_000, "2.50M"}, {3_000_000_000, "3.00G"}} {
		if got := countString(tc.v); got != tc.want {
			t.Errorf("countString(%d) = %q, want %q", tc.v, got, tc.want)
		}
	}
	for _, tc := range []struct {
		v    int64
		want string
	}{{512, "512B"}, {4 << 10, "4.0KiB"}, {3 << 20, "3.0MiB"}, {2 << 30, "2.00GiB"}} {
		if got := byteString(tc.v); got != tc.want {
			t.Errorf("byteString(%d) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
