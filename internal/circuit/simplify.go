package circuit

// Peephole simplification. The paper applies no template post-processing to
// its own results (it cites the template tools of Maslov et al. as separate
// work), but notes that synthesized cascades frequently contain adjacent
// sequences that cancel. This file provides the two cheapest, always-sound
// local rules as an optional extension:
//
//  1. deletion: two identical adjacent gates cancel (every Toffoli gate is
//     self-inverse);
//  2. commutation: two adjacent gates g1, g2 may be swapped when doing so
//     does not change the function, which holds when neither gate's target
//     is a control of the other, or both rules below apply trivially
//     (same target). Moving gates lets rule 1 fire across distance.
//
// Full template matching (Maslov/Dueck/Miller 2003) is beyond what the
// paper's own numbers include, so it is intentionally out of scope.

// commutes reports whether adjacent gates a and b can be exchanged without
// changing the circuit function. Two Toffoli gates commute when neither
// one's target wire is among the other's controls; they also commute when
// they share the same target (both just XOR products into that wire).
func commutes(a, b Gate) bool {
	if a.Target == b.Target {
		return true
	}
	if b.Controls&(1<<uint(a.Target)) != 0 {
		return false
	}
	if a.Controls&(1<<uint(b.Target)) != 0 {
		return false
	}
	return true
}

// Simplify repeatedly cancels equal adjacent gates, sliding gates past
// commuting neighbours to expose cancellations, until no rule applies. It
// returns a new circuit computing the same function with at most as many
// gates.
func (c *Circuit) Simplify() *Circuit {
	gates := append([]Gate(nil), c.Gates...)
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(gates); i++ {
			// Look ahead for a cancelling twin reachable through a
			// commuting window.
			for j := i + 1; j < len(gates); j++ {
				if gates[i] == gates[j] {
					gates = append(gates[:j], gates[j+1:]...)
					gates = append(gates[:i], gates[i+1:]...)
					changed = true
					break
				}
				if !commutes(gates[i], gates[j]) {
					break
				}
			}
			if changed {
				break
			}
		}
	}
	out := New(c.Wires)
	out.Gates = gates
	return out
}
