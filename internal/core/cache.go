package core

// Engine-side wiring of the canonical-form answer cache (internal/cache):
// SynthesizeContext consults the cache before constructing a searcher and
// offers every verified result back afterwards; the resume entry points
// only offer (a resume must continue its checkpoint, not short-circuit
// it). All policy — conjugation, re-verification, persistence — lives in
// the cache package; this file only decides when to ask.

import (
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/pprm"
)

// cacheProbe carries one request's cache identity (tabulated permutation,
// options fingerprint, class hash) from the pre-search lookup to the
// post-verification store so the canonicalization work is not repeated.
type cacheProbe struct {
	p     perm.Perm
	fp    uint64
	class uint64
}

// cacheProbeFor returns the probe for a cache-eligible request, nil when
// the cache is off or the specification is too wide for it.
func cacheProbeFor(spec *pprm.Spec, opts *Options) *cacheProbe {
	if opts.Cache == nil || !cache.Cacheable(spec.N) {
		return nil
	}
	return &cacheProbe{p: spec.ToPerm(), fp: optionsFingerprint(opts)}
}

// cacheLookup consults the answer cache. On a hit it returns a complete
// Result — the derived circuit has already passed the independent
// verification gate inside the cache (verify.StageCache), so it is
// reported Verified with StopSolved and zero search counters. On a miss
// the probe is returned for the post-synthesis store.
func cacheLookup(spec *pprm.Spec, opts *Options) (Result, *cacheProbe, bool) {
	probe := cacheProbeFor(spec, opts)
	if probe == nil {
		return Result{}, nil, false
	}
	hit, ok := opts.Cache.Lookup(probe.p, probe.fp)
	probe.class = hit.Class
	if !ok {
		obs.IncCacheMiss()
		return Result{}, probe, false
	}
	obs.IncCacheHit()
	if hit.Derived {
		obs.IncCacheDerive()
	}
	if o := opts.Observe; o != nil {
		o.Begin(int64(opts.TotalSteps), opts.TimeLimit, opts.MaxMemory)
		o.Solution(len(hit.Circuit.Gates), hit.Circuit.QuantumCost())
		o.SetVerified(true)
		o.Finish(StopSolved.String())
	}
	return Result{
		Circuit:        hit.Circuit,
		Found:          true,
		StopReason:     StopSolved,
		Verified:       true,
		CacheHit:       true,
		CanonicalClass: hit.Class,
	}, probe, true
}

// cacheStore stamps the class on the result and offers it to the cache
// when it is worth keeping: found, independently verified (which also
// rules out SkipVerify runs — the gate never ran), and carrying a
// circuit. A persistence failure only costs durability; the in-memory
// entry stands and the result is returned unchanged.
func cacheStore(probe *cacheProbe, opts *Options, res Result) Result {
	if probe == nil {
		return res
	}
	res.CanonicalClass = probe.class
	if opts.Cache == nil || !res.Found || !res.Verified || res.Circuit == nil {
		return res
	}
	if class, _, err := opts.Cache.Put(probe.p, probe.fp, res.Circuit); err == nil && class != 0 {
		res.CanonicalClass = class
	}
	return res
}
