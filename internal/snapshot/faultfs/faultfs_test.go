package faultfs

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/bits"
	"repro/internal/snapshot"
)

func testState(steps int) *snapshot.State {
	return &snapshot.State{
		SpecHash: 11,
		Root: snapshot.SpecState{
			N:   2,
			Out: []snapshot.TermSetState{{Terms: []bits.Mask{1}, Cap: 1}, {Terms: []bits.Mask{2, 3}, Cap: 2}},
		},
		Nodes:     []snapshot.NodeState{{Parent: -1, Target: -1, Terms: 3, Materialized: true}},
		Queued:    []int{0},
		BestSol:   -1,
		BestDepth: 4,
		Steps:     steps,
	}
}

// TestAtomicReplaceUnderEveryCrashPoint is the core crash-safety proof for
// the write protocol: with a valid snapshot A on disk, an overwrite with
// snapshot B that crashes at every possible operation index — with the
// crashing write torn at several prefix lengths — must leave the path
// readable as exactly A or exactly B. Never a mix, never corruption that
// goes undetected, never a panic.
func TestAtomicReplaceUnderEveryCrashPoint(t *testing.T) {
	// Learn the operation count of a clean overwrite.
	probeDir := t.TempDir()
	probePath := filepath.Join(probeDir, "probe.ckpt")
	if err := snapshot.WriteFile(nil, probePath, testState(1)); err != nil {
		t.Fatal(err)
	}
	probe := New(nil, -1, 0)
	if err := snapshot.WriteFile(probe, probePath, testState(2)); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 5 { // CreateTemp, Write, Sync, Close, Rename, SyncDir at minimum
		t.Fatalf("unexpectedly few operations in a clean write: %d", total)
	}

	imageLen := len(snapshot.Encode(testState(2)))
	for crashAt := 0; crashAt < total; crashAt++ {
		for _, tear := range []int{0, 1, 7, imageLen / 2, imageLen} {
			dir := t.TempDir()
			path := filepath.Join(dir, "run.ckpt")
			if err := snapshot.WriteFile(nil, path, testState(1)); err != nil {
				t.Fatal(err)
			}
			fs := New(nil, crashAt, tear)
			err := snapshot.WriteFile(fs, path, testState(2))
			if !fs.Crashed() {
				t.Fatalf("crashAt=%d: crash point never reached (total=%d)", crashAt, total)
			}
			st, rerr := snapshot.ReadFile(path)
			if rerr != nil {
				t.Fatalf("crashAt=%d tear=%d: checkpoint unreadable after crash: %v (write err: %v)", crashAt, tear, rerr, err)
			}
			if st.Steps != 1 && st.Steps != 2 {
				t.Fatalf("crashAt=%d tear=%d: impossible state Steps=%d", crashAt, tear, st.Steps)
			}
			if err != nil && st.Steps == 2 {
				// A reported failure with the new file visible is allowed
				// only when the crash hit cleanup after the rename.
				if crashAt < total-2 {
					t.Fatalf("crashAt=%d tear=%d: write failed (%v) but new snapshot visible", crashAt, tear, err)
				}
			}
		}
	}
}

// TestFreshWriteUnderEveryCrashPoint covers the no-previous-file case: a
// crashed first checkpoint must leave either no file (ErrNotExist) or the
// complete new file — a torn temp file must never be visible at the path.
func TestFreshWriteUnderEveryCrashPoint(t *testing.T) {
	probe := New(nil, -1, 0)
	probeDir := t.TempDir()
	if err := snapshot.WriteFile(probe, filepath.Join(probeDir, "p.ckpt"), testState(2)); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()

	for crashAt := 0; crashAt < total; crashAt++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "run.ckpt")
		fs := New(nil, crashAt, 9)
		werr := snapshot.WriteFile(fs, path, testState(2))
		st, rerr := snapshot.ReadFile(path)
		switch {
		case rerr == nil:
			if st.Steps != 2 {
				t.Fatalf("crashAt=%d: wrong state visible: %+v", crashAt, st)
			}
		case errors.Is(rerr, snapshot.ErrNotSnapshot), errors.Is(rerr, snapshot.ErrCorrupt):
			t.Fatalf("crashAt=%d: torn file visible at final path: %v", crashAt, rerr)
		default:
			// Missing file: fine, and the write must have reported failure.
			if werr == nil {
				t.Fatalf("crashAt=%d: write reported success but file missing", crashAt)
			}
		}
	}
}

func TestInjectedErrorIsTyped(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil, 0, 0)
	err := snapshot.WriteFile(fs, filepath.Join(dir, "x.ckpt"), testState(1))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want wrapped ErrInjected", err)
	}
}
