// Package frontier provides the concurrency primitives behind the
// shared-frontier parallel search (see internal/core's Options.Workers):
// a lock-sharded transposition table striped by the search's 64-bit
// incremental state hashes, per-worker priority heaps with byte-accounted
// work stealing, a worker pool with pending-count quiescence detection,
// and an atomic best-cost bound broadcast.
//
// The package is deliberately search-agnostic: it moves opaque items,
// hashes, priorities, and byte charges around; what a state *is* and how
// it expands stays in internal/core. Two engines are built on top of it:
//
//   - deterministic-merge (core's batched engine) uses only the Bound and
//     the parallel generation pool — every heap and table mutation stays
//     on the coordinating goroutine, so results are byte-identical across
//     runs and worker counts;
//   - free-running uses everything here concurrently — hash-sharded heap
//     ownership, striped table probes, stealing from the deepest peer —
//     trading reproducibility for raw speed.
package frontier

import "sync/atomic"

// Bound is the global best-cost broadcast: workers publish every strictly
// improved solution depth and read the current bound to prune children
// that can no longer beat it. The zero value is unusable; call NewBound
// with the search's initial bound (maxGates+1).
type Bound struct {
	v atomic.Int64
}

// NewBound returns a bound initialized to limit.
func NewBound(limit int) *Bound {
	b := &Bound{}
	b.v.Store(int64(limit))
	return b
}

// Load returns the current bound.
func (b *Bound) Load() int { return int(b.v.Load()) }

// Publish lowers the bound to depth if depth improves on it, reporting
// whether it did. Concurrent publishers race benignly: the bound only
// ever decreases, so the winner of the CAS is the smallest depth.
func (b *Bound) Publish(depth int) bool {
	for {
		cur := b.v.Load()
		if int64(depth) >= cur {
			return false
		}
		if b.v.CompareAndSwap(cur, int64(depth)) {
			return true
		}
	}
}
