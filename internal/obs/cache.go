package obs

import "expvar"

// Process-wide answer-cache counters, published as expvars alongside the
// verification-gate counters. Hits and misses measure how much of the
// workload the canonical-form cache absorbs; derives is the subset of hits
// answered for a *different* member of the stored class (a non-identity
// conjugation), which is the number that tells you the classifier — not
// just request repetition — is earning its keep.
var (
	cacheHits    = expvar.NewInt("rmrls.cache_hits")
	cacheMisses  = expvar.NewInt("rmrls.cache_misses")
	cacheDerives = expvar.NewInt("rmrls.cache_derives")
)

// IncCacheHit counts one cache lookup answered with a verified circuit.
func IncCacheHit() { cacheHits.Add(1) }

// IncCacheMiss counts one cache lookup that found no usable entry.
func IncCacheMiss() { cacheMisses.Add(1) }

// IncCacheDerive counts one cache hit answered through a non-identity
// relabeling/polarity conjugation.
func IncCacheDerive() { cacheDerives.Add(1) }

// CacheHits returns the process-wide cache-hit count.
func CacheHits() int64 { return cacheHits.Value() }

// CacheMisses returns the process-wide cache-miss count.
func CacheMisses() int64 { return cacheMisses.Value() }

// CacheDerives returns the process-wide conjugation-derived hit count.
func CacheDerives() int64 { return cacheDerives.Value() }
