package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
)

// RandomConfig controls the Table II / Table III reproductions: uniformly
// random reversible functions of a fixed variable count.
type RandomConfig struct {
	Vars    int
	Samples int
	Seed    uint64
	// MaxGates is the paper's "maximum circuit size" option (40 for
	// four variables, 60 for five).
	MaxGates int
	// TotalSteps / ImproveSteps are the deterministic stand-ins for the
	// paper's per-function wall-clock limits (60 s / 180 s).
	TotalSteps, ImproveSteps int
	// Rounds of iterative tightening spent improving each solution.
	Rounds int
}

// Table2Config returns the paper's Table II setup (sample count reduced
// from 50 000 by default; pass your own for the full run).
func Table2Config(samples int, seed uint64) RandomConfig {
	return RandomConfig{
		Vars: 4, Samples: samples, Seed: seed,
		MaxGates: 40, TotalSteps: 50000, ImproveSteps: 4000, Rounds: 3,
	}
}

// Table3Config returns the paper's Table III setup.
func Table3Config(samples int, seed uint64) RandomConfig {
	return RandomConfig{
		Vars: 5, Samples: samples, Seed: seed,
		MaxGates: 60, TotalSteps: 120000, ImproveSteps: 6000, Rounds: 3,
	}
}

// RandomResult is a gate-count distribution over random functions.
type RandomResult struct {
	Config  RandomConfig
	Hist    Histogram
	Elapsed time.Duration
}

// RandomFunctions synthesizes Samples random reversible functions,
// reproducing Tables II and III. Canceling ctx stops the sweep after the
// in-flight function; completed samples are kept and failures record the
// stop reason.
func RandomFunctions(ctx context.Context, cfg RandomConfig) *RandomResult {
	start := time.Now()
	res := &RandomResult{Config: cfg}
	src := rng.New(cfg.Seed)
	for i := 0; i < cfg.Samples && ctx.Err() == nil; i++ {
		p := perm.Random(cfg.Vars, src)
		opts := core.DefaultOptions()
		opts.MaxGates = cfg.MaxGates
		opts.TotalSteps = cfg.TotalSteps
		opts.ImproveSteps = cfg.ImproveSteps
		spec, err := pprm.FromPerm(p)
		if err != nil {
			panic(err)
		}
		r := core.SynthesizeIterativeContext(ctx, spec, opts, cfg.Rounds)
		if !r.Found && ctx.Err() == nil {
			// Rare stragglers (≲0.5%): fall back to the portfolio, the
			// deterministic stand-in for the paper's wall-clock headroom.
			r = core.SynthesizePortfolioContext(ctx, spec, opts, 0)
		}
		if r.Found {
			res.Hist.Add(r.Circuit.Len())
		} else {
			res.Hist.AddFailure(r.StopReason)
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// Write renders the distribution in the paper's row form.
func (r *RandomResult) Write(w io.Writer) {
	header := []string{"circuit size", "no. of circuits"}
	var rows [][]string
	for g, c := range r.Hist.Counts {
		if c > 0 {
			rows = append(rows, []string{itoa(g), itoa(c)})
		}
	}
	writeTable(w, header, rows)
	fmt.Fprintf(w, "%d-variable random functions: %d synthesized, %d (%.1f%%) failed, avg size %.1f, elapsed %v\n",
		r.Config.Vars, r.Hist.Total-r.Hist.Failed, r.Hist.Failed,
		100*float64(r.Hist.Failed)/float64(max(r.Hist.Total, 1)),
		r.Hist.Average(), r.Elapsed.Round(time.Millisecond))
	if s := r.Hist.StopSummary(); s != "" {
		fmt.Fprintf(w, "failures by stop reason: %s\n", s)
	}
}
