package serve

import (
	"encoding/json"
	"fmt"
	"testing"
)

// TestClaimSearchWorkersScalesWithQueueDepth pins the scheduling policy:
// a job executing against empty queues claims the whole parallel-search
// core budget, waiting jobs dilute the claim, and once the fair share
// drops to a single core the job runs the sequential engine (claim 0).
func TestClaimSearchWorkersScalesWithQueueDepth(t *testing.T) {
	s, err := New(Config{Workers: 2, SearchWorkers: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Workers are deliberately not started: enqueued jobs stay queued.
	enqueue := func(steps int) {
		t.Helper()
		body := fmt.Sprintf(`{"spec":{"bench":"rd32"},"class":"batch","budget":{"steps":%d}}`, steps)
		var req Request
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		c, rerr := compileRequest(&req, s.cfg.Ceiling)
		if rerr != nil {
			t.Fatalf("compile: %v", rerr)
		}
		if _, _, err := s.admit(c, req); err != nil {
			t.Fatalf("admit: %v", err)
		}
	}

	if got := s.claimSearchWorkers(); got != 8 {
		t.Errorf("empty queue: claim = %d, want 8 (the whole budget)", got)
	}
	enqueue(1001) // depth 1: 8/2 = 4
	if got := s.claimSearchWorkers(); got != 4 {
		t.Errorf("depth 1: claim = %d, want 4", got)
	}
	enqueue(1002)
	enqueue(1003) // depth 3: 8/4 = 2
	if got := s.claimSearchWorkers(); got != 2 {
		t.Errorf("depth 3: claim = %d, want 2", got)
	}
	for i := 0; i < 4; i++ {
		enqueue(2000 + i)
	}
	// Depth 7: the share is a single core — parallel overhead without
	// parallelism, so the job must run the sequential engine.
	if got := s.claimSearchWorkers(); got != 0 {
		t.Errorf("depth 7: claim = %d, want 0 (sequential)", got)
	}

	// The knob off means off, whatever the queue looks like.
	s2, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := s2.claimSearchWorkers(); got != 0 {
		t.Errorf("SearchWorkers unset: claim = %d, want 0", got)
	}
}
