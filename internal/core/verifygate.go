package core

import (
	"repro/internal/circuit"
	"repro/internal/pprm"
	"repro/internal/verify"
)

// CorruptResultHook, when non-nil, mutates every found circuit immediately
// before the post-synthesis verification gate inspects it. It exists solely
// so tests can prove an injected miscompile cannot escape the gate through
// any entry point (core, CLI, server, sweeps). Production code must never
// set it; it is package-level (not an Option) precisely so it cannot travel
// through a request.
var CorruptResultHook func(*circuit.Circuit)

// verifyGate is the always-on post-synthesis correctness gate: every found
// circuit is re-simulated by the independent internal/verify oracle against
// the PPRM specification the search consumed. A pass marks the Result
// Verified; a failure withdraws the circuit entirely — the caller gets
// Found false, StopVerifyFailed, and the typed *verify.Error (which still
// carries the rejected cascade for quarantine) rather than a wrong answer.
// Skipped (Verified stays false) when the caller opted out or the function
// is too wide to tabulate.
func verifyGate(spec *pprm.Spec, opts *Options, res Result) Result {
	if res.Err != nil || !res.Found || res.Circuit == nil {
		return res
	}
	if CorruptResultHook != nil {
		CorruptResultHook(res.Circuit)
	}
	if opts.SkipVerify || !verify.Feasible(spec.N) {
		return res
	}
	if err := verify.Spec(verify.StageSearch, res.Circuit, spec); err != nil {
		res.Found = false
		res.Circuit = nil
		res.StopReason = StopVerifyFailed
		res.Err = err
		if opts.Observe != nil {
			opts.Observe.Finish(StopVerifyFailed.String())
		}
		return res
	}
	res.Verified = true
	if opts.Observe != nil {
		opts.Observe.SetVerified(true)
	}
	return res
}
