// Package verify is the independent correctness gate for synthesized
// cascades: it re-simulates a circuit gate by gate and compares the realized
// permutation against the source specification, sharing no evaluation code
// with the PPRM search path (no Gate.Apply, no Circuit.Perm, no Spec.Eval).
// A shared bug between producer and checker would make the check vacuous, so
// the oracle re-derives everything from the data structures alone: gate
// semantics from the Target/Controls fields, the specified function from the
// raw PPRM term sets via an independent subset-XOR transform, and PLA
// conformance from the partial table's care masks.
//
// The package also attributes failures to pipeline stages: Transform checks
// that an optimizer or lowering pass (peephole, template, decomp) preserved
// the permutation its input realized, so a mismatch names the stage that
// introduced it rather than just "the output is wrong".
//
// Everything here is exact tabulation over 2^n inputs and is therefore
// bounded by MaxVars; Feasible tells callers when the gate applies. See
// docs/VERIFICATION.md.
package verify

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/tt"
)

// MaxVars is the widest function the oracle tabulates: 2^20 rows keeps a
// full verification under ~10 ms and a few MB, comfortably above every
// benchmark the engine verifies today. Wider circuits skip the gate
// (Result.Verified stays false — unchecked, not wrong).
const MaxVars = 20

// Feasible reports whether an n-wire function is narrow enough for exact
// tabulated verification.
func Feasible(n int) bool { return n >= 1 && n <= MaxVars }

// Stage names the pipeline stage a verification failure is attributed to.
type Stage string

const (
	// StageSearch: the cascade handed back by the synthesis search itself.
	StageSearch Stage = "search"
	// StageSimplify: the algebraic cancellation pass (Circuit.Simplify).
	StageSimplify Stage = "simplify"
	// StagePeephole: the peephole window-resynthesis optimizer.
	StagePeephole Stage = "peephole"
	// StageTemplate: template-based rewriting (reserved for the template
	// pass; every transform entry point must name itself).
	StageTemplate Stage = "template"
	// StageDecomp: Toffoli lowering into the NCT library (internal/decomp).
	StageDecomp Stage = "decomp"
	// StageClient: a client-side re-check of a served result (loadgen).
	StageClient Stage = "client"
	// StageCache: a circuit derived from the answer cache by conjugating
	// a stored cascade with a relabeling/polarity transform
	// (internal/cache). Every cache hit passes this gate before it is
	// returned, so a poisoned or mis-derived entry surfaces as a miss,
	// never as a wrong circuit.
	StageCache Stage = "cache"
	// StageEmbed: the don't-care-aware check of an embedded PLA result
	// against the original partial specification.
	StageEmbed Stage = "embedding"
)

// Error is a verification failure: the realized cascade does not match what
// the named stage was supposed to produce. It carries the first mismatching
// input and the offending cascade in parseable form, so a quarantined
// artifact is enough to reproduce the mismatch offline.
type Error struct {
	// Stage is the pipeline stage the mismatch is attributed to.
	Stage Stage
	// Wires is the cascade width.
	Wires int
	// Input is the first input value whose image is wrong.
	Input uint32
	// Got is the cascade's output for Input; Want is the specified one.
	// For a don't-care (PLA) check both are masked to the cared bits.
	Got, Want uint32
	// Circuit is the rejected cascade in circuit.Parse form ("(identity)"
	// for the empty cascade), preserved for quarantine and offline triage.
	Circuit string
	// Detail overrides the default message for structural failures (bad
	// gate, non-bijective image, width mismatch).
	Detail string
}

func (e *Error) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("verify: stage %s: %s", e.Stage, e.Detail)
	}
	return fmt.Sprintf("verify: stage %s: circuit on %d wires maps input %d to %d, specification wants %d",
		e.Stage, e.Wires, e.Input, e.Got, e.Want)
}

// structural builds an Error for a failure that has no single mismatching
// input (invalid gate, repeated output, width mismatch).
func structural(stage Stage, c *circuit.Circuit, format string, args ...any) *Error {
	e := &Error{Stage: stage, Detail: fmt.Sprintf(format, args...)}
	if c != nil {
		e.Wires = c.Wires
		e.Circuit = c.String()
	}
	return e
}

// Simulate tabulates the permutation a cascade realizes, independently of
// the circuit package's own evaluation: each gate is applied from its raw
// Target/Controls fields (flip the target bit iff every control bit is set),
// and the resulting table is checked to be a bijection. The stage only
// labels any error returned.
func Simulate(stage Stage, c *circuit.Circuit) (perm.Perm, *Error) {
	if c == nil {
		return nil, structural(stage, nil, "no circuit")
	}
	if !Feasible(c.Wires) {
		return nil, structural(stage, c, "cannot tabulate %d wires (max %d)", c.Wires, MaxVars)
	}
	n := uint(c.Wires)
	size := uint32(1) << n
	for i, g := range c.Gates {
		if g.Target < 0 || g.Target >= c.Wires {
			return nil, structural(stage, c, "gate %d targets wire %d of %d", i, g.Target, c.Wires)
		}
		if uint32(g.Controls) >= size {
			return nil, structural(stage, c, "gate %d controls exceed %d wires", i, c.Wires)
		}
		if g.Controls>>uint(g.Target)&1 == 1 {
			return nil, structural(stage, c, "gate %d controls its own target wire %d", i, g.Target)
		}
	}
	out := make(perm.Perm, size)
	for x := uint32(0); x < size; x++ {
		v := x
		for _, g := range c.Gates {
			if v&uint32(g.Controls) == uint32(g.Controls) {
				v ^= 1 << uint(g.Target)
			}
		}
		out[x] = v
	}
	// A cascade of self-inverse gates is always a bijection; a failure here
	// means the gate validation above missed a malformed circuit, so check
	// anyway — the oracle trusts nothing.
	seen := make([]bool, size)
	for x, v := range out {
		if v >= size {
			return nil, structural(stage, c, "output %d of input %d exceeds %d wires", v, x, c.Wires)
		}
		if seen[v] {
			return nil, structural(stage, c, "not a bijection: output %d repeats at input %d", v, x)
		}
		seen[v] = true
	}
	return out, nil
}

// Circuit checks that the cascade realizes exactly the permutation want.
// A nil return means every one of the 2^n inputs maps correctly.
func Circuit(stage Stage, c *circuit.Circuit, want perm.Perm) error {
	got, verr := Simulate(stage, c)
	if verr != nil {
		return verr
	}
	if len(got) != len(want) {
		return structural(stage, c, "circuit tabulates %d rows, specification has %d", len(got), len(want))
	}
	for x := range got {
		if got[x] != want[x] {
			return &Error{Stage: stage, Wires: c.Wires, Input: uint32(x),
				Got: got[x], Want: want[x], Circuit: c.String()}
		}
	}
	return nil
}

// Spec checks the cascade against a PPRM specification, evaluating the
// expansion independently of pprm's own Eval/ToPerm: for each output, the
// term set is scattered into an indicator vector and a subset-XOR (zeta over
// GF(2)) transform turns coefficients into function values — f_j(x) is the
// XOR of the coefficients of all terms covered by x. O(n·2^n) per output
// regardless of term count.
func Spec(stage Stage, c *circuit.Circuit, s *pprm.Spec) error {
	if s == nil {
		return structural(stage, c, "no specification")
	}
	if c != nil && c.Wires != s.N {
		return structural(stage, c, "circuit has %d wires, specification %d", c.Wires, s.N)
	}
	got, verr := Simulate(stage, c)
	if verr != nil {
		return verr
	}
	want := specTable(s)
	for x := range got {
		if got[x] != want[x] {
			return &Error{Stage: stage, Wires: c.Wires, Input: uint32(x),
				Got: got[x], Want: want[x], Circuit: c.String()}
		}
	}
	return nil
}

// specTable tabulates a PPRM specification over all 2^n inputs.
func specTable(s *pprm.Spec) []uint32 {
	size := uint32(1) << uint(s.N)
	want := make([]uint32, size)
	vec := make([]byte, size)
	for j, out := range s.Out {
		clear(vec)
		for _, t := range out.Terms() {
			vec[uint32(t)&(size-1)] ^= 1
		}
		for b := uint(0); b < uint(s.N); b++ {
			bit := uint32(1) << b
			for x := uint32(0); x < size; x++ {
				if x&bit != 0 {
					vec[x] ^= vec[x&^bit]
				}
			}
		}
		for x := uint32(0); x < size; x++ {
			want[x] |= uint32(vec[x]) << uint(j)
		}
	}
	return want
}

// Transform checks that a rewriting stage preserved the function: after
// must realize exactly the permutation before realizes. This is the
// stage-boundary check that attributes a miscompile to the pass that
// introduced it — the returned Error carries the stage name and the
// rejected (post-transform) cascade. Lowering passes may widen the circuit
// with ancilla wires; extra wires must be returned to their input value
// (clean ancilla, any initial value) for every input.
func Transform(stage Stage, before, after *circuit.Circuit) error {
	if before == nil || after == nil {
		return structural(stage, after, "missing circuit")
	}
	ref, verr := Simulate(stage, before)
	if verr != nil {
		verr.Detail = "input cascade already broken: " + verr.Detail
		return verr
	}
	got, verr := Simulate(stage, after)
	if verr != nil {
		return verr
	}
	if after.Wires < before.Wires {
		return structural(stage, after, "transform narrowed the cascade from %d to %d wires", before.Wires, after.Wires)
	}
	base := uint32(1) << uint(before.Wires)
	high := uint32(len(got)) / base // ancilla-value combinations (1 when widths match)
	for a := uint32(0); a < high; a++ {
		for x := uint32(0); x < base; x++ {
			in := a<<uint(before.Wires) | x
			want := a<<uint(before.Wires) | ref[x]
			if got[in] != want {
				return &Error{Stage: stage, Wires: after.Wires, Input: in,
					Got: got[in], Want: want, Circuit: after.String()}
			}
		}
	}
	return nil
}

// PLA checks a cascade against the original incompletely-specified function
// it was synthesized from: for every real input row, the embedding's
// original-output bits must match the PLA row on every cared bit; don't-care
// bits are free. Constant inputs occupy the high wires and are driven 0, so
// the real input x is the circuit input verbatim.
func PLA(stage Stage, c *circuit.Circuit, emb *tt.Embedding, pt *tt.PartialTable) error {
	if emb == nil || pt == nil {
		return structural(stage, c, "missing embedding or partial table")
	}
	got, verr := Simulate(stage, c)
	if verr != nil {
		return verr
	}
	if c.Wires != emb.Wires {
		return structural(stage, c, "circuit has %d wires, embedding %d", c.Wires, emb.Wires)
	}
	if pt.Inputs > c.Wires {
		return structural(stage, c, "PLA has %d inputs, circuit only %d wires", pt.Inputs, c.Wires)
	}
	for x := range pt.Rows {
		y := emb.OriginalOutput(got[x])
		if diff := (y ^ pt.Rows[x]) & pt.Care[x]; diff != 0 {
			return &Error{Stage: stage, Wires: c.Wires, Input: uint32(x),
				Got: y & pt.Care[x], Want: pt.Rows[x] & pt.Care[x], Circuit: c.String()}
		}
	}
	return nil
}
