package decomp

import (
	"errors"
	"testing"

	"repro/internal/circuit"
	"repro/internal/rng"
	"repro/internal/verify"
)

// TestDecomposeAllArityOracle lowers a single m-control Toffoli for every
// supported width and control arity, and judges each lowering with the
// independent verification oracle (verify.Transform) instead of the circuit
// package's own evaluator — the decomposition and the checker share no
// simulation code. A gate that touches every wire with three or more
// controls has no free wire for the Barenco construction and must be
// rejected with ErrNoAncilla; every other combination must lower to an
// NCT-only cascade realizing the same permutation.
func TestDecomposeAllArityOracle(t *testing.T) {
	for wires := 3; wires <= 9; wires++ {
		for m := 0; m <= wires-1; m++ {
			controls := make([]int, m)
			for i := range controls {
				controls[i] = i + 1
			}
			before := circuit.New(wires)
			before.Append(circuit.NewGate(0, controls...))
			after, err := DecomposeCircuit(before)
			if m >= 3 && m == wires-1 {
				if !errors.Is(err, ErrNoAncilla) {
					t.Errorf("%d controls on %d wires: err = %v, want ErrNoAncilla", m, wires, err)
				}
				continue
			}
			if err != nil {
				t.Errorf("%d controls on %d wires: %v", m, wires, err)
				continue
			}
			if !after.NCTOnly() {
				t.Errorf("%d controls on %d wires: lowering contains non-NCT gates: %s", m, wires, after)
				continue
			}
			if err := verify.Transform(verify.StageDecomp, before, after); err != nil {
				t.Errorf("%d controls on %d wires: oracle rejects the lowering: %v", m, wires, err)
			}
		}
	}
}

// TestDecomposeCascadeOracle lowers random multi-gate cascades and checks
// each whole-circuit lowering with the oracle's stage-boundary check.
func TestDecomposeCascadeOracle(t *testing.T) {
	src := rng.New(17)
	for trial := 0; trial < 40; trial++ {
		wires := 4 + src.Intn(5)
		before := circuit.Random(wires, 1+src.Intn(12), circuit.GT, src)
		after, err := DecomposeCircuit(before)
		if errors.Is(err, ErrNoAncilla) {
			continue // a random gate happened to touch every wire
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.Transform(verify.StageDecomp, before, after); err != nil {
			t.Fatalf("trial %d on %d wires: oracle rejects the lowering: %v", trial, wires, err)
		}
	}
}
