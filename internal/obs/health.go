package obs

import (
	"expvar"
	"sync/atomic"
)

// Process-wide fault-domain supervision counters, published as expvars so
// a scraper sees degradation without asking the service's own endpoints.
// A trip means a fault domain (cache store, checkpoints, ledger,
// quarantine) shed its feature; a recovery means the half-open probe
// succeeded and the domain re-closed. open_domains is the live gauge of
// domains currently away from closed — its steady-state value is zero.
var (
	healthTrips      = expvar.NewInt("rmrls.health_trips")
	healthProbes     = expvar.NewInt("rmrls.health_probes")
	healthRecoveries = expvar.NewInt("rmrls.health_recoveries")
	healthOpen       = expvar.NewInt("rmrls.health_open_domains")
	healthOpenGauge  atomic.Int64
)

// IncBreakerTrip counts one fault-domain trip (closed → open).
func IncBreakerTrip() { healthTrips.Add(1) }

// IncBreakerProbe counts one half-open probe admission.
func IncBreakerProbe() { healthProbes.Add(1) }

// IncBreakerRecovery counts one domain re-close after a successful probe.
func IncBreakerRecovery() { healthRecoveries.Add(1) }

// AddOpenDomains moves the live open-domain gauge (+1 on trip, -1 on
// recovery).
func AddOpenDomains(delta int64) {
	healthOpen.Set(healthOpenGauge.Add(delta))
}

// HealthTrips returns the process-wide trip count.
func HealthTrips() int64 { return healthTrips.Value() }

// HealthRecoveries returns the process-wide recovery count.
func HealthRecoveries() int64 { return healthRecoveries.Value() }

// HealthOpenDomains returns the live count of open fault domains.
func HealthOpenDomains() int64 { return healthOpenGauge.Load() }
