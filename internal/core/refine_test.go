package core

import (
	"context"
	"testing"

	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
)

func TestIterativeNeverWorse(t *testing.T) {
	src := rng.New(55)
	for trial := 0; trial < 15; trial++ {
		p := perm.Random(4, src)
		spec, err := pprm.FromPerm(p)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.TotalSteps = 20000
		opts.ImproveSteps = 2000
		base := Synthesize(spec, opts)
		iter := SynthesizeIterative(spec, opts, 3)
		if base.Found != iter.Found {
			t.Fatalf("trial %d: found mismatch base=%v iter=%v", trial, base.Found, iter.Found)
		}
		if !base.Found {
			continue
		}
		if iter.Circuit.Len() > base.Circuit.Len() {
			t.Errorf("trial %d: tightening grew the circuit %d → %d",
				trial, base.Circuit.Len(), iter.Circuit.Len())
		}
		if err := Verify(iter.Circuit, p); err != nil {
			t.Error(err)
		}
	}
}

func TestIterativeOnUnsolvable(t *testing.T) {
	spec, _ := pprm.Parse(2, "a' = b\nb' = b")
	opts := DefaultOptions()
	opts.TotalSteps = 5000
	opts.MaxGates = 8
	if res := SynthesizeIterative(spec, opts, 3); res.Found {
		t.Error("iterative found a circuit for a non-reversible spec")
	}
}

func TestPortfolioSolvesPlateauFunction(t *testing.T) {
	// rd53-like counting functions defeat the default charge but not the
	// portfolio; use a small weight-counting embedding that exhibits the
	// same plateau structure.
	p := perm.Random(4, rng.New(4242))
	spec, _ := pprm.FromPerm(p)
	opts := DefaultOptions()
	opts.TotalSteps = 30000
	opts.ImproveSteps = 3000
	res := SynthesizePortfolio(spec, opts, 2)
	if !res.Found {
		t.Fatal("portfolio failed on a random 4-variable function")
	}
	if err := Verify(res.Circuit, p); err != nil {
		t.Error(err)
	}
	// Portfolio accounting must reflect all variants.
	single := Synthesize(spec, opts)
	if res.Steps <= single.Steps {
		t.Errorf("portfolio steps (%d) should exceed a single run's (%d)", res.Steps, single.Steps)
	}
}

func TestPortfolioQualityAtLeastSingle(t *testing.T) {
	src := rng.New(77)
	for trial := 0; trial < 8; trial++ {
		p := perm.Random(4, src)
		spec, _ := pprm.FromPerm(p)
		opts := DefaultOptions()
		opts.TotalSteps = 15000
		opts.ImproveSteps = 1500
		single := Synthesize(spec, opts)
		port := SynthesizePortfolio(spec, opts, 2)
		if single.Found && (!port.Found || port.Circuit.Len() > single.Circuit.Len()) {
			t.Errorf("trial %d: portfolio worse than single run (%v/%d vs %v/%d)",
				trial, port.Found, gateLen(port), single.Found, single.Circuit.Len())
		}
		if port.Found {
			if err := Verify(port.Circuit, p); err != nil {
				t.Error(err)
			}
		}
	}
}

func gateLen(r Result) int {
	if r.Circuit == nil {
		return -1
	}
	return r.Circuit.Len()
}

// TestPortfolioDeterministic is the acceptance test for the parallel
// portfolio: under deterministic budgets the goroutine schedule must not
// leak into the answer. Repeated runs return byte-identical circuits.
func TestPortfolioDeterministic(t *testing.T) {
	for _, seed := range []uint64{11, 12, 13} {
		p := perm.Random(5, rng.New(seed))
		spec, err := pprm.FromPerm(p)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.TotalSteps = 20000
		opts.ImproveSteps = 2000
		var first Result
		for rep := 0; rep < 3; rep++ {
			res := SynthesizePortfolio(spec, opts, 2)
			if rep == 0 {
				first = res
				if res.Found {
					if err := Verify(res.Circuit, p); err != nil {
						t.Fatal(err)
					}
				}
				continue
			}
			if res.Found != first.Found {
				t.Fatalf("seed %d rep %d: found=%v, first run found=%v",
					seed, rep, res.Found, first.Found)
			}
			if !res.Found {
				continue
			}
			if got, want := res.Circuit.String(), first.Circuit.String(); got != want {
				t.Errorf("seed %d rep %d: portfolio not deterministic:\n got %s\nwant %s",
					seed, rep, got, want)
			}
			if res.Steps != first.Steps {
				t.Errorf("seed %d rep %d: Steps = %d, first run %d",
					seed, rep, res.Steps, first.Steps)
			}
		}
	}
}

// TestPortfolioCanceled: a pre-canceled context must come back quickly
// with StopCanceled and no crash from the worker goroutines.
func TestPortfolioCanceled(t *testing.T) {
	p := perm.Random(6, rng.New(99))
	spec, err := pprm.FromPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.TotalSteps = 1 << 30
	res := SynthesizePortfolioContext(ctx, spec, opts, 3)
	if res.Found {
		t.Error("pre-canceled portfolio claims a circuit")
	}
	if res.StopReason != StopCanceled {
		t.Errorf("StopReason = %v, want %v", res.StopReason, StopCanceled)
	}
}

// TestPortfolioFirstSolution: the latency-over-determinism mode still
// returns a valid, verified circuit.
func TestPortfolioFirstSolution(t *testing.T) {
	p := perm.Random(5, rng.New(101))
	spec, err := pprm.FromPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.FirstSolution = true
	opts.TotalSteps = 200000
	res := SynthesizePortfolio(spec, opts, 0)
	if !res.Found {
		t.Fatal("portfolio failed on a random 5-variable function")
	}
	if res.StopReason != StopSolved {
		t.Errorf("StopReason = %v, want %v", res.StopReason, StopSolved)
	}
	if err := Verify(res.Circuit, p); err != nil {
		t.Error(err)
	}
}

// TestIterativeCanceled: the round loop must notice cancellation between
// rounds and surface it.
func TestIterativeCanceled(t *testing.T) {
	p := perm.Random(5, rng.New(202))
	spec, err := pprm.FromPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.TotalSteps = 1 << 30
	res := SynthesizeIterativeContext(ctx, spec, opts, 3)
	if res.Found {
		t.Error("pre-canceled iterative synthesis claims a circuit")
	}
	if res.StopReason != StopCanceled {
		t.Errorf("StopReason = %v, want %v", res.StopReason, StopCanceled)
	}
}
