package exp

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
)

// BenchmarkConfig controls the Table IV reproduction.
type BenchmarkConfig struct {
	// TimeLimit per benchmark (the paper uses 60 s).
	TimeLimit time.Duration
	// TotalSteps optionally replaces the wall clock with a deterministic
	// budget (0 = wall clock only).
	TotalSteps int
	// ImproveSteps bounds post-solution improvement.
	ImproveSteps int
	// Rounds of iterative tightening per benchmark (0 = default of 4).
	Rounds int
	// Only restricts the run to the named benchmarks (empty = Table IV).
	Only []string
}

// BenchmarkRow is one synthesized benchmark.
type BenchmarkRow struct {
	Bench    *bench.Benchmark
	Found    bool
	Gates    int
	Cost     int
	Verified bool // simulation check ran and passed (wide specs skip it)
	Elapsed  time.Duration
	Steps    int
	// Stop records why the synthesis returned; for a failed row it names
	// the limit that ended the search.
	Stop core.StopReason
}

// BenchmarkResult is the reproduction of Table IV.
type BenchmarkResult struct {
	Rows []BenchmarkRow
}

// Benchmarks synthesizes the Table IV suite. Canceling ctx stops the
// suite after the in-flight benchmark; completed rows are kept.
func Benchmarks(ctx context.Context, cfg BenchmarkConfig) *BenchmarkResult {
	list := bench.TableIV()
	if len(cfg.Only) > 0 {
		list = list[:0:0]
		for _, name := range cfg.Only {
			b, err := bench.ByName(name)
			if err != nil {
				panic(err)
			}
			list = append(list, b)
		}
	}
	res := &BenchmarkResult{}
	for _, b := range list {
		if ctx.Err() != nil {
			break
		}
		res.Rows = append(res.Rows, runBenchmark(ctx, b, cfg))
	}
	return res
}

func runBenchmark(ctx context.Context, b *bench.Benchmark, cfg BenchmarkConfig) BenchmarkRow {
	row := BenchmarkRow{Bench: b, Gates: -1, Cost: -1}
	spec, err := b.PPRMSpec()
	if err != nil {
		panic(err)
	}
	opts := core.DefaultOptions()
	opts.TimeLimit = cfg.TimeLimit
	if opts.TimeLimit == 0 {
		opts.TimeLimit = 60 * time.Second
	}
	opts.TotalSteps = cfg.TotalSteps
	if opts.TotalSteps == 0 {
		opts.TotalSteps = 300000
	}
	opts.ImproveSteps = cfg.ImproveSteps
	if opts.ImproveSteps == 0 {
		opts.ImproveSteps = 30000
	}
	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = 4
	}
	r := core.SynthesizePortfolioContext(ctx, spec, opts, rounds)
	row.Elapsed = r.Elapsed
	row.Steps = r.Steps
	row.Stop = r.StopReason
	if !r.Found {
		return row
	}
	row.Found = true
	row.Gates = r.Circuit.Len()
	row.Cost = r.Circuit.QuantumCost()
	// The engine's always-on gate already re-simulated the circuit through
	// the independent oracle; a gate failure comes back as Found=false with
	// a typed error instead of reaching this row at all.
	row.Verified = r.Verified
	return row
}

// Write renders Table IV with the paper's own results and the best
// published ones beside ours.
func (r *BenchmarkResult) Write(w io.Writer) {
	header := []string{"benchmark", "real", "garbage", "gates", "cost",
		"paper gates", "paper cost", "[13] gates", "[13] cost", "lib", "note"}
	var rows [][]string
	for _, row := range r.Rows {
		b := row.Bench
		lib := "GT"
		if b.NCT {
			lib = "NCT"
		}
		note := ""
		if b.StandIn {
			note = "stand-in spec"
		}
		if !row.Found {
			note = fmt.Sprintf("NOT FOUND (stop=%s)", row.Stop)
		} else if row.Verified {
			note += " ✓"
		}
		bestG, bestC := 0, 0
		if b.Best != nil {
			bestG, bestC = b.Best.Gates, b.Best.Cost
		}
		rows = append(rows, []string{
			b.Name, itoa(b.RealInputs), itoa(b.GarbageInputs),
			orDash(row.Gates, row.Found), orDash(row.Cost, row.Found),
			orDash(b.PaperGates, b.PaperGates > 0), orDash(b.PaperCost, b.PaperCost > 0),
			orDash(bestG, b.Best != nil), orDash(bestC, b.Best != nil),
			lib, note,
		})
	}
	writeTable(w, header, rows)
}

// ExampleRow is one of the Section V-C worked examples.
type ExampleRow struct {
	Name       string
	Circuit    string
	Gates      int
	PaperGates int
	Found      bool
	Verified   bool
}

// Examples synthesizes the paper's fourteen worked examples and returns
// the cascades, reproducing the circuits printed in Section V-C (and
// Figs. 7 and 8). Canceling ctx skips the remaining examples.
func Examples(ctx context.Context, totalSteps int) []ExampleRow {
	// Gate counts of the circuits printed in the paper for Examples 1–14.
	paperGates := map[string]int{
		"ex1": 4, "shiftright3": 3, "fredkin3": 3, "swap3": 6, "swap4": 7,
		"shiftleft3": 3, "shiftleft4": 4, "fulladder": 4, "rd53": 13,
		"majority5": 16, "decod24": 11, "5one013": 19, "alu": 18,
		"shift10": 27,
	}
	var rows []ExampleRow
	for _, b := range bench.Examples() {
		if ctx.Err() != nil {
			break
		}
		row := ExampleRow{Name: b.Name, PaperGates: paperGates[b.Name]}
		spec, err := b.PPRMSpec()
		if err != nil {
			panic(err)
		}
		opts := core.DefaultOptions()
		opts.TotalSteps = totalSteps
		opts.ImproveSteps = totalSteps / 8
		opts.TimeLimit = 60 * time.Second
		r := core.SynthesizePortfolioContext(ctx, spec, opts, 4)
		if r.Found {
			row.Found = true
			row.Circuit = r.Circuit.String()
			row.Gates = r.Circuit.Len()
			row.Verified = r.Verified
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteExamples renders the worked examples; Examples 1 and 8 also get
// circuit drawings, reproducing the paper's Figs. 7 and 8.
func WriteExamples(w io.Writer, rows []ExampleRow) {
	for _, r := range rows {
		status := "FAILED"
		if r.Found {
			status = fmt.Sprintf("%d gates (paper: %d)", r.Gates, r.PaperGates)
			if r.Verified {
				status += " ✓verified"
			}
		}
		fmt.Fprintf(w, "%-12s %s\n", r.Name, status)
		if r.Found {
			fmt.Fprintf(w, "             %s\n", r.Circuit)
		}
		if !r.Found || (r.Name != "ex1" && r.Name != "fulladder") {
			continue
		}
		b, err := bench.ByName(r.Name)
		if err != nil {
			continue
		}
		if c, err := circuit.Parse(b.Wires, r.Circuit); err == nil {
			fig := "Fig. 7"
			if r.Name == "fulladder" {
				fig = "Fig. 8"
			}
			fmt.Fprintf(w, "  (%s)\n%s\n", fig, indent(c.Diagram(), "  "))
		}
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}

// Extended synthesizes the extra benchmark families (hwb#, rd#, #sym, …)
// the paper mentions but does not tabulate; see internal/bench/extended.go.
func Extended(ctx context.Context, cfg BenchmarkConfig) *BenchmarkResult {
	res := &BenchmarkResult{}
	for _, b := range bench.ExtendedFamilies() {
		if ctx.Err() != nil {
			break
		}
		res.Rows = append(res.Rows, runBenchmark(ctx, b, cfg))
	}
	return res
}
