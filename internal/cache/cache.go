// Package cache is the persistent answer cache over the canonical-form
// classifier (internal/canon). A Put records the cascade synthesized for
// one member of an equivalence class together with the transform from
// that member to the class representative; a Lookup for any member of the
// same class derives its circuit by conjugating the stored cascade with
// the composed transform — a hash lookup plus wire renaming and at most
// 2n NOT gates instead of a full search.
//
// Correctness does not rest on the classifier or on disk integrity: every
// derived circuit is re-simulated against the request through the
// independent verify oracle (verify.StageCache) before it is returned,
// entries store the full representative (compared on lookup, so a hash
// collision is a miss, not a wrong answer), and persistent entries are
// CRC-checked, written atomically through the internal/snapshot FS seam,
// and dropped as misses when torn or corrupt.
//
// Entries are keyed by (class hash, options fingerprint): results found
// under one option set (gate library, MaxGates, cost weights, …) are
// never served to a request with a different one. Budgets are excluded
// from the fingerprint, matching the checkpoint-compatibility rule.
package cache

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/canon"
	"repro/internal/circuit"
	"repro/internal/perm"
	"repro/internal/snapshot"
	"repro/internal/verify"
)

// MaxVars bounds the specification width the cache handles. Wider
// requests bypass the cache entirely: an entry tabulates the full
// representative permutation (2^n rows), and every hit is re-verified by
// full simulation, both of which stop being cheap well before the
// engine's own limits do.
const MaxVars = 16

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups answered with a verified circuit.
	Hits int64
	// Misses counts lookups that found no usable entry (including
	// corrupt or verification-rejected ones).
	Misses int64
	// Derives counts hits answered through a non-identity conjugation —
	// the request was a different member of the stored class.
	Derives int64
	// Stores counts accepted Puts.
	Stores int64
	// CorruptDropped counts persistent entries discarded for bad magic,
	// CRC mismatch, truncation, or undecodable payloads.
	CorruptDropped int64
	// VerifyRejected counts entries dropped because the derived circuit
	// failed the verification gate.
	VerifyRejected int64
	// DiskShed counts disk operations skipped because the guard reported
	// the cache-store fault domain open (lookups served memory-only,
	// stores kept in memory without persistence).
	DiskShed int64
}

type key struct {
	class, fp uint64
}

type entry struct {
	rep  perm.Perm       // class representative (collision guard)
	to   canon.Transform // member→representative: rep = to∘member∘to⁻¹
	circ *circuit.Circuit
}

// Guard gates the cache's disk traffic for fault-domain supervision.
// When Allow returns false the cache skips the disk entirely — lookups
// fall back to memory, stores keep only the in-memory entry — and no
// error surfaces to the caller: the feature is shed, the job proceeds.
// Every disk outcome is reported through Record so the guard can trip on
// persistent faults and heal on a successful probe.
// *health.Breaker satisfies Guard directly.
type Guard interface {
	Allow() bool
	Record(err error)
}

// Cache is safe for concurrent use.
type Cache struct {
	dir string // "" = memory-only
	fs  snapshot.FS

	guard Guard // nil = disk always allowed

	mu  sync.Mutex
	mem map[key]*entry

	hits, misses, derives, stores atomic.Int64
	corrupt, rejected             atomic.Int64
	shed                          atomic.Int64
}

// New returns a memory-only cache (no persistence).
func New() *Cache {
	return &Cache{mem: make(map[key]*entry)}
}

// Open returns a cache persisted under dir, creating the directory if
// needed. Writes go through fsys (nil means the real filesystem) using
// the snapshot package's atomic protocol. An empty dir means memory-only.
func Open(dir string, fsys snapshot.FS) (*Cache, error) {
	c := New()
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c.dir = dir
	c.fs = fsys
	return c, nil
}

// Dir returns the persistence directory ("" for memory-only caches).
func (c *Cache) Dir() string { return c.dir }

// Len returns the number of entries resident in memory (persistent
// entries not yet looked up are not counted).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Derives:        c.derives.Load(),
		Stores:         c.stores.Load(),
		CorruptDropped: c.corrupt.Load(),
		VerifyRejected: c.rejected.Load(),
		DiskShed:       c.shed.Load(),
	}
}

// SetGuard installs the fault-domain guard for the cache's disk traffic.
// A nil guard (the default) means the disk is always allowed. Call before
// the cache is shared between goroutines.
func (c *Cache) SetGuard(g Guard) { c.guard = g }

// diskAllowed consults the guard before touching the persistence dir.
func (c *Cache) diskAllowed() bool {
	if c.guard == nil || c.guard.Allow() {
		return true
	}
	c.shed.Add(1)
	return false
}

// record reports one disk outcome to the guard, if any.
func (c *Cache) record(err error) {
	if c.guard != nil {
		c.guard.Record(err)
	}
}

// Cacheable reports whether the cache handles n-variable specifications.
func Cacheable(n int) bool { return n >= 1 && n <= MaxVars }

// Hit is a successful lookup.
type Hit struct {
	// Circuit realizes the requested permutation; it is freshly built
	// and verified, never aliased to cache-internal state.
	Circuit *circuit.Circuit
	// Class is the canonical class hash (also reported on misses via
	// Lookup's class return).
	Class uint64
	// Derived reports that a non-identity conjugation produced the
	// circuit — the stored cascade was synthesized for a different
	// member of the class.
	Derived bool
}

// Lookup finds a circuit for p under the options fingerprint fp. The
// class hash is returned even on a miss so callers can report it without
// re-canonicalizing. ok is false when the cache has no verified answer;
// for specifications the cache does not handle (width, invalid table) the
// class is 0 and no counter moves.
func (c *Cache) Lookup(p perm.Perm, fp uint64) (Hit, bool) {
	rep, t, err := canonicalizeFor(p)
	if err != nil {
		return Hit{}, false
	}
	k := key{class: canon.Hash(rep), fp: fp}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.loadLocked(k)
	if e == nil {
		c.misses.Add(1)
		return Hit{Class: k.class}, false
	}
	if !e.rep.Equal(rep) {
		// The entry at this key answers a different class — a 64-bit hash
		// collision or a misfiled/tampered file. Drop it so the slot is
		// re-earned honestly.
		c.dropLocked(k)
		c.rejected.Add(1)
		c.misses.Add(1)
		return Hit{Class: k.class}, false
	}
	// rep = t∘p∘t⁻¹ = e.to∘m∘e.to⁻¹ for the stored member m, so
	// p = v∘m∘v⁻¹ with v = t⁻¹∘e.to.
	v := t.Inverse().Compose(e.to)
	derived, err := v.ConjugateCircuit(e.circ)
	if err == nil {
		err = verify.Circuit(verify.StageCache, derived, p)
	}
	if err != nil {
		// The entry cannot answer this class correctly: poisoned on
		// disk, a classifier bug, or a hash-collision slip. Drop it so
		// it is re-synthesized, and answer miss — never the bad circuit.
		c.dropLocked(k)
		c.rejected.Add(1)
		c.misses.Add(1)
		return Hit{Class: k.class}, false
	}
	c.hits.Add(1)
	if !v.IsIdentity() {
		c.derives.Add(1)
	}
	return Hit{Circuit: derived, Class: k.class, Derived: !v.IsIdentity()}, true
}

// Put records circ as a verified realization of p under the options
// fingerprint fp. It returns the class hash and whether the entry was
// stored (an existing entry with no more gates is kept instead; wider or
// invalid specifications are ignored). The caller is responsible for only
// offering verified circuits — core's verification gate runs before every
// Put, and SkipVerify results are never offered.
func (c *Cache) Put(p perm.Perm, fp uint64, circ *circuit.Circuit) (uint64, bool, error) {
	rep, t, err := canonicalizeFor(p)
	if err != nil {
		return 0, false, nil
	}
	if circ == nil || circ.Wires != p.Vars() {
		return 0, false, fmt.Errorf("cache: circuit does not match a %d-variable specification", p.Vars())
	}
	if err := circ.Validate(); err != nil {
		return 0, false, fmt.Errorf("cache: %w", err)
	}
	k := key{class: canon.Hash(rep), fp: fp}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.loadLocked(k); e != nil && e.rep.Equal(rep) && len(e.circ.Gates) <= len(circ.Gates) {
		return k.class, false, nil
	}
	stored := &circuit.Circuit{Wires: circ.Wires, Gates: append([]circuit.Gate(nil), circ.Gates...)}
	e := &entry{rep: rep, to: t, circ: stored}
	c.mem[k] = e
	c.stores.Add(1)
	if c.dir == "" {
		return k.class, true, nil
	}
	if !c.diskAllowed() {
		// Cache-store domain open: the entry stands in memory and the
		// store is transparently non-durable — no error, no syscall.
		return k.class, true, nil
	}
	if err := snapshot.WriteRaw(c.fs, c.path(k), encodeEntry(e)); err != nil {
		// The in-memory entry stands; only durability failed.
		c.record(err)
		return k.class, true, fmt.Errorf("cache: persist: %w", err)
	}
	c.record(nil)
	return k.class, true, nil
}

// canonicalizeFor canonicalizes p when the cache handles it.
func canonicalizeFor(p perm.Perm) (perm.Perm, canon.Transform, error) {
	if !Cacheable(p.Vars()) {
		return nil, canon.Transform{}, errors.New("cache: width not cacheable")
	}
	return canon.Canonicalize(p)
}

func (c *Cache) path(k key) string {
	return filepath.Join(c.dir, fmt.Sprintf("%016x-%016x%s", k.class, k.fp, entryExt))
}

// loadLocked returns the entry for k, reading through to disk on a memory
// miss. Unreadable or corrupt files are removed and counted; they read as
// no entry.
func (c *Cache) loadLocked(k key) *entry {
	if e, ok := c.mem[k]; ok {
		return e
	}
	if c.dir == "" {
		return nil
	}
	if !c.diskAllowed() {
		// Cache-store domain open: a memory miss is a miss; the job
		// synthesizes from scratch instead of waiting on a sick disk.
		return nil
	}
	fsys := c.fs
	if fsys == nil {
		fsys = snapshot.DiskFS
	}
	data, err := fsys.ReadFile(c.path(k))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.record(err)
			c.corrupt.Add(1)
		} else {
			// "No entry" is a healthy answer from the device.
			c.record(nil)
		}
		return nil
	}
	c.record(nil)
	e, err := decodeEntry(data)
	if err != nil {
		// Corrupt bytes, but the device delivered them fine — an
		// integrity problem, not an availability one: drop the file,
		// leave the fault domain alone.
		c.corrupt.Add(1)
		c.removeFile(k)
		return nil
	}
	c.mem[k] = e
	return e
}

func (c *Cache) dropLocked(k key) {
	delete(c.mem, k)
	if c.dir != "" {
		c.removeFile(k)
	}
}

func (c *Cache) removeFile(k key) {
	fsys := c.fs
	if fsys == nil {
		fsys = snapshot.DiskFS
	}
	_ = fsys.Remove(c.path(k))
}
