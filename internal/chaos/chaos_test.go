package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/snapshot"
)

func TestENOSPCFailsWritesButNotReads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.snap")
	fs := New(nil)
	if err := snapshot.WriteRaw(fs, path, []byte("before")); err != nil {
		t.Fatalf("healthy write: %v", err)
	}

	fs.Fail(dir, ENOSPC)
	err := snapshot.WriteRaw(fs, path, []byte("after"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write under enospc = %v, want ENOSPC", err)
	}
	// Reads still serve the old bytes.
	data, err := fs.ReadFile(path)
	if err != nil || string(data) != "before" {
		t.Fatalf("read under enospc = %q/%v, want old contents", data, err)
	}
	// Remove still works — that is how full disks get fixed.
	if err := fs.Remove(path); err != nil {
		t.Fatalf("remove under enospc: %v", err)
	}

	fs.Heal(dir)
	if err := snapshot.WriteRaw(fs, path, []byte("healed")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if w, r := fs.InjectedErrors(); w == 0 || r != 0 {
		t.Errorf("injected errors = %d/%d, want writes>0 reads=0", w, r)
	}
}

func TestEIOFailsReadsToo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := New(nil)
	fs.Fail(dir, EIO)
	if _, err := fs.ReadFile(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read under eio = %v, want EIO", err)
	}
	if err := fs.Remove(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("remove under eio = %v, want EIO", err)
	}
}

func TestEROFSFailsWritesAndRemoves(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := New(nil)
	fs.Fail(dir, EROFS)
	if err := snapshot.WriteRaw(fs, path, []byte("y")); !errors.Is(err, syscall.EROFS) {
		t.Fatalf("write under rofs = %v, want EROFS", err)
	}
	if err := fs.Remove(path); !errors.Is(err, syscall.EROFS) {
		t.Fatalf("remove under rofs = %v, want EROFS", err)
	}
	if data, err := fs.ReadFile(path); err != nil || string(data) != "x" {
		t.Fatalf("read under rofs = %q/%v, want contents", data, err)
	}
}

func TestPrefixScoping(t *testing.T) {
	root := t.TempDir()
	cacheDir := filepath.Join(root, "cache")
	stateDir := filepath.Join(root, "state")
	for _, d := range []string{cacheDir, stateDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	fs := New(nil)
	fs.Fail(cacheDir, ENOSPC)
	if err := snapshot.WriteRaw(fs, filepath.Join(cacheDir, "a"), []byte("x")); err == nil {
		t.Fatal("write under faulted prefix succeeded")
	}
	if err := snapshot.WriteRaw(fs, filepath.Join(stateDir, "a"), []byte("x")); err != nil {
		t.Fatalf("write under healthy sibling prefix: %v", err)
	}
}

func TestMidWriteFaultTearsTheAtomicProtocol(t *testing.T) {
	// A fault injected between CreateTemp and Sync fails the in-flight
	// write: the destination must be untouched.
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fs := New(nil)
	if err := snapshot.WriteRaw(fs, path, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	f, err := fs.CreateTemp(dir, "f.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	fs.Fail(dir, ENOSPC)
	if _, err := f.Write([]byte("torn")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("mid-flight write = %v, want ENOSPC", err)
	}
	f.Close()
	if data, _ := fs.ReadFile(path); string(data) != "committed" {
		t.Fatalf("destination = %q, want previous contents", data)
	}
}

func TestParseScheduleAndRun(t *testing.T) {
	sched, err := ParseSchedule(" +0ms fail cache enospc ; 30ms heal cache,+10ms fail state eio ")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 3 {
		t.Fatalf("parsed %d events, want 3", len(sched))
	}
	// Sorted by offset.
	if !(sched[0].After <= sched[1].After && sched[1].After <= sched[2].After) {
		t.Fatalf("schedule not sorted: %v", sched)
	}
	root := t.TempDir()
	sched = sched.Rewrite(map[string]string{
		"cache": filepath.Join(root, "cache"),
		"state": filepath.Join(root, "state"),
	})

	fs := New(nil)
	fired := make(chan Event, 3)
	stop := sched.Run(fs, func(ev Event) { fired <- ev })
	defer stop()
	for i := 0; i < 3; i++ {
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Fatalf("event %d never fired", i)
		}
	}
	// End state: cache healed, state faulted with EIO.
	if _, err := fs.ReadFile(filepath.Join(root, "state", "x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("state read = %v, want EIO", err)
	}
	if err := os.MkdirAll(filepath.Join(root, "cache"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := snapshot.WriteRaw(fs, filepath.Join(root, "cache", "x"), []byte("y")); err != nil {
		t.Fatalf("cache write after heal: %v", err)
	}
}

func TestParseScheduleRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"+1s explode cache",
		"+1s fail cache",
		"+1s fail cache warp",
		"+1s heal cache extra",
		"soon fail cache eio",
		"-1s fail cache eio",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted garbage", bad)
		}
	}
	if s, err := ParseSchedule(""); err != nil || len(s) != 0 {
		t.Errorf("empty schedule = %v/%v, want empty/nil", s, err)
	}
}

func TestLatency(t *testing.T) {
	fs := New(nil)
	fs.SetLatency(30 * time.Millisecond)
	dir := t.TempDir()
	start := time.Now()
	if _, err := fs.ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file read succeeded")
	}
	if took := time.Since(start); took < 25*time.Millisecond {
		t.Errorf("latency not applied: op took %v", took)
	}
}
