// Package canon classifies reversible specifications up to input/output
// relabeling and polarity. Two permutations p and q are equivalent when
// q = T∘p∘T⁻¹ for a transform T that permutes the wires and inverts some
// of them — conjugation by an element of the hyperoctahedral group of
// order n!·2^n. Equivalent specifications have synthesis problems of
// identical difficulty, and a circuit for one converts into a circuit for
// the other by renaming wires and adding a NOT sandwich (see
// Transform.ConjugateCircuit), which is what the answer cache in
// internal/cache exploits: synthesize one class member, answer the whole
// class by conjugation.
//
// Canonicalize maps a permutation to a canonical class representative and
// the transform reaching it. For n ≤ ExactVars the representative is the
// exact orbit minimum (lexicographically smallest conjugate over all
// n!·2^n transforms), so equivalence is decided exactly. Above that the
// orbit is too large to scan, so a deterministic greedy normalization is
// used instead: it is a *sound under-approximation* — equal canonical
// forms always mean equivalent functions (the transform is returned and
// checkable), but two equivalent functions may normalize differently and
// land in distinct classes. For a cache that only costs hit rate, never
// correctness.
package canon

import (
	"fmt"
	"sort"

	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/perm"
)

// ExactVars is the largest variable count for which Canonicalize scans the
// entire orbit and returns the exact lexicographic minimum. 3!·2^3 = 48
// transforms over 8-entry tables is trivial; 4 variables would already be
// 384 transforms over 16 entries per call, still cheap, but the exhaustive
// class-partition test that pins the classifier (all 8! = 40320 functions)
// is only feasible at 3, so that is where the exactness claim is proven
// and where it stops.
const ExactVars = 3

// Transform is an element of the hyperoctahedral group on n wires: first
// relabel (bit w of the input moves to bit Wires[w]), then invert the
// wires set in Polarity. As a function on assignments,
//
//	T(x) = scatter(x, Wires) ^ Polarity.
type Transform struct {
	// Wires is the relabeling: wire w is renamed to Wires[w]. It must be
	// a permutation of 0..n-1.
	Wires []int
	// Polarity has bit v set when output wire v is inverted after the
	// relabeling.
	Polarity uint32
}

// Identity returns the identity transform on n wires.
func Identity(n int) Transform {
	w := make([]int, n)
	for i := range w {
		w[i] = i
	}
	return Transform{Wires: w}
}

// N returns the number of wires the transform acts on.
func (t Transform) N() int { return len(t.Wires) }

// Validate checks that Wires is a permutation and Polarity fits in n bits.
func (t Transform) Validate() error {
	n := len(t.Wires)
	if n < 1 || n > 32 {
		return fmt.Errorf("canon: transform on %d wires", n)
	}
	seen := make([]bool, n)
	for _, w := range t.Wires {
		if w < 0 || w >= n || seen[w] {
			return fmt.Errorf("canon: wire map %v is not a permutation of %d wires", t.Wires, n)
		}
		seen[w] = true
	}
	if n < 32 && t.Polarity>>uint(n) != 0 {
		return fmt.Errorf("canon: polarity %#x exceeds %d wires", t.Polarity, n)
	}
	return nil
}

// IsIdentity reports whether the transform maps every assignment to itself.
func (t Transform) IsIdentity() bool {
	if t.Polarity != 0 {
		return false
	}
	for w, nw := range t.Wires {
		if w != nw {
			return false
		}
	}
	return true
}

// scatter moves bit w of x to bit m[w] for every wire (same convention as
// internal/verify's relabeling helpers).
func scatter(x uint32, m []int) uint32 {
	var out uint32
	for w, nw := range m {
		out |= (x >> uint(w) & 1) << uint(nw)
	}
	return out
}

// Apply evaluates the transform on one assignment.
func (t Transform) Apply(x uint32) uint32 {
	return scatter(x, t.Wires) ^ t.Polarity
}

// Compose returns the transform "t after u": Compose(x) = t(u(x)).
func (t Transform) Compose(u Transform) Transform {
	if len(t.Wires) != len(u.Wires) {
		panic("canon: Compose size mismatch")
	}
	w := make([]int, len(t.Wires))
	for i := range w {
		w[i] = t.Wires[u.Wires[i]]
	}
	return Transform{Wires: w, Polarity: scatter(u.Polarity, t.Wires) ^ t.Polarity}
}

// Inverse returns the transform undoing t.
func (t Transform) Inverse() Transform {
	w := make([]int, len(t.Wires))
	for i, nw := range t.Wires {
		w[nw] = i
	}
	return Transform{Wires: w, Polarity: scatter(t.Polarity, w)}
}

// Conjugate returns T∘p∘T⁻¹, the permutation of the same function seen
// through relabeled and re-polarized wires. p must have exactly 2^n rows
// for the transform's n.
func (t Transform) Conjugate(p perm.Perm) perm.Perm {
	if len(p) != 1<<uint(len(t.Wires)) {
		panic(fmt.Sprintf("canon: Conjugate: %d-entry permutation under %d-wire transform", len(p), len(t.Wires)))
	}
	q := make(perm.Perm, len(p))
	for x, y := range p {
		q[t.Apply(uint32(x))] = t.Apply(y)
	}
	return q
}

// ConjugateCircuit builds a cascade realizing T∘f∘T⁻¹ from a cascade c
// realizing f: a NOT layer for the polarity bits, the gates of c with
// wires renamed through the relabeling, and the NOT layer again. The
// result has at most len(c.Gates) + 2·popcount(Polarity) gates; for the
// identity transform it is a fresh gate-for-gate copy of c.
func (t Transform) ConjugateCircuit(c *circuit.Circuit) (*circuit.Circuit, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(t.Wires) != c.Wires {
		return nil, fmt.Errorf("canon: %d-wire transform applied to %d-wire circuit", len(t.Wires), c.Wires)
	}
	out := circuit.New(c.Wires)
	appendNots := func() {
		for w := 0; w < c.Wires; w++ {
			if t.Polarity>>uint(w)&1 != 0 {
				out.Append(circuit.Gate{Target: w})
			}
		}
	}
	appendNots()
	for _, g := range c.Gates {
		out.Append(circuit.Gate{
			Target:   t.Wires[g.Target],
			Controls: bits.Mask(scatter(uint32(g.Controls), t.Wires)),
		})
	}
	appendNots()
	return out, nil
}

// String renders the transform compactly, e.g. "[2 0 1]^5".
func (t Transform) String() string {
	return fmt.Sprintf("%v^%d", t.Wires, t.Polarity)
}

// Canonicalize maps p to its canonical class representative rep and a
// transform t with rep = t∘p∘t⁻¹. For n ≤ ExactVars, rep is the exact
// lexicographic minimum of the conjugation orbit (ties broken by
// enumeration order, so the result is deterministic); above that it is a
// deterministic greedy normalization (see the package comment for what
// that weakens). The input must be a valid permutation on 1..32 variables.
func Canonicalize(p perm.Perm) (perm.Perm, Transform, error) {
	n := p.Vars()
	if n < 1 || n > 32 {
		return nil, Transform{}, fmt.Errorf("canon: %d-entry table is not a permutation on 1..32 variables", len(p))
	}
	if err := p.Validate(); err != nil {
		return nil, Transform{}, err
	}
	if n <= ExactVars {
		rep, t := canonExact(p, n)
		return rep, t, nil
	}
	rep, t := canonGreedy(p, n)
	return rep, t, nil
}

// canonExact scans all n!·2^n conjugates and keeps the smallest.
func canonExact(p perm.Perm, n int) (perm.Perm, Transform) {
	var best perm.Perm
	var bestT Transform
	wires := Identity(n).Wires
	for {
		for pol := uint32(0); pol < 1<<uint(n); pol++ {
			t := Transform{Wires: wires, Polarity: pol}
			q := t.Conjugate(p)
			if best == nil || lexLess(q, best) {
				best = q
				bestT = Transform{Wires: append([]int(nil), wires...), Polarity: pol}
			}
		}
		if !nextPermutation(wires) {
			break
		}
	}
	return best, bestT
}

// canonGreedy normalizes deterministically without scanning the orbit:
// first the polarity that makes the smallest input map to the smallest
// image (ties to the smaller polarity), then wires sorted by their output
// truth-table columns. Both steps depend only on the function, so the
// same permutation always normalizes identically; conjugates of it merely
// *usually* do.
func canonGreedy(p perm.Perm, n int) (perm.Perm, Transform) {
	// Polarity choice: conjugating by X_c maps row c to p[c]^c at row 0,
	// so pick the c whose image-of-zero is smallest.
	bestC := uint32(0)
	bestVal := p[0]
	for c := uint32(1); c < uint32(len(p)); c++ {
		if v := p[c] ^ c; v < bestVal {
			bestC, bestVal = c, v
		}
	}
	p1 := make(perm.Perm, len(p))
	for x, y := range p {
		p1[uint32(x)^bestC] = y ^ bestC
	}
	// Wire order: sort wires by their output columns of the de-polarized
	// function, packed most-significant-input-first so the comparison is
	// a plain lexicographic one. Ties keep the original wire order.
	cols := make([][]uint64, n)
	for w := 0; w < n; w++ {
		col := make([]uint64, (len(p1)+63)/64)
		for x, y := range p1 {
			if y>>uint(w)&1 != 0 {
				col[x/64] |= 1 << uint(63-x%64)
			}
		}
		cols[w] = col
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := cols[order[a]], cols[order[b]]
		for i := range ca {
			if ca[i] != cb[i] {
				return ca[i] < cb[i]
			}
		}
		return false
	})
	m := make([]int, n)
	for pos, w := range order {
		m[w] = pos
	}
	// As a function the normalization is R_m∘X_c, which in Transform
	// form (relabel first, then flip) is {m, scatter(c, m)}.
	t := Transform{Wires: m, Polarity: scatter(bestC, m)}
	return t.Conjugate(p), t
}

// lexLess reports whether a < b lexicographically. Both must be the same
// length.
func lexLess(a, b perm.Perm) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// nextPermutation advances w to the next permutation in lexicographic
// order, returning false (and leaving w sorted ascending) after the last.
func nextPermutation(w []int) bool {
	i := len(w) - 2
	for i >= 0 && w[i] >= w[i+1] {
		i--
	}
	if i < 0 {
		sort.Ints(w)
		return false
	}
	j := len(w) - 1
	for w[j] <= w[i] {
		j--
	}
	w[i], w[j] = w[j], w[i]
	for l, r := i+1, len(w)-1; l < r; l, r = l+1, r-1 {
		w[l], w[r] = w[r], w[l]
	}
	return true
}

// Hash returns a 64-bit FNV-1a hash of a canonical representative — the
// class identifier the answer cache keys on. Collisions are possible in
// principle, which is why cache entries store the representative itself
// and compare it on lookup; the hash only names the bucket.
func Hash(rep perm.Perm) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	n := rep.Vars()
	mix(byte(n))
	for _, v := range rep {
		mix(byte(v))
		mix(byte(v >> 8))
		mix(byte(v >> 16))
		mix(byte(v >> 24))
	}
	return h
}
