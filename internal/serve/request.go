package serve

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/bits"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/tt"
)

// Request is the submit-endpoint body. Exactly one SpecInput field must be
// set; everything else is optional.
type Request struct {
	// Spec is the function to synthesize.
	Spec SpecInput `json:"spec"`
	// Class selects the scheduling class: "interactive" (the default) is
	// dequeued before "batch" and is meant for small, latency-sensitive
	// requests; "batch" is for big-budget background work that tolerates
	// shedding.
	Class string `json:"class,omitempty"`
	// Budget bounds the search. Zero fields default to the server's
	// ceilings; over-ceiling values are clamped (and reported in the job's
	// "clamped" notes).
	Budget Budget `json:"budget,omitempty"`
	// FirstSolution stops at the first circuit found instead of spending
	// the improvement budget.
	FirstSolution bool `json:"first_solution,omitempty"`
	// Library selects the gate library: "gt" (default) or "nct".
	Library string `json:"library,omitempty"`
	// Wait, on the submit endpoint, blocks the HTTP request until the job
	// completes and returns the finished job instead of 202.
	Wait bool `json:"wait,omitempty"`
}

// SpecInput is the function specification: exactly one field must be set.
type SpecInput struct {
	// Bench names a built-in paper benchmark ("rd53", "hwb8", ...).
	Bench string `json:"bench,omitempty"`
	// Perm is a permutation in the paper's notation: "{1, 0, 7, 2, 3, 4, 5, 6}".
	Perm string `json:"perm,omitempty"`
	// PPRM is a positive-polarity Reed–Muller expansion, one output per line.
	PPRM *PPRMInput `json:"pprm,omitempty"`
	// PLA is a Berkeley-format truth table; irreversible functions are
	// embedded (garbage outputs + constant inputs) before synthesis.
	PLA string `json:"pla,omitempty"`
}

// PPRMInput is a PPRM expansion with its variable count.
type PPRMInput struct {
	Vars int    `json:"vars"`
	Text string `json:"text"`
}

// Budget is the per-request resource budget, in client-friendly units.
type Budget struct {
	// TimeMillis bounds wall-clock search time.
	TimeMillis int64 `json:"time_ms,omitempty"`
	// Steps bounds total node expansions (the deterministic budget).
	Steps int `json:"steps,omitempty"`
	// MemoryMiB bounds the bytes pinned by queued search nodes.
	MemoryMiB int64 `json:"memory_mib,omitempty"`
	// MaxGates bounds the synthesized circuit size.
	MaxGates int `json:"max_gates,omitempty"`
}

// RequestError is a validation failure: Field locates the offending request
// field (dot-path), Message says what is wrong with it — line-precise for
// the text formats, reusing the parsers' own diagnostics. It maps to a 400.
type RequestError struct {
	Field   string `json:"field"`
	Message string `json:"message"`
}

func (e *RequestError) Error() string { return e.Field + ": " + e.Message }

func reqErr(field, format string, args ...any) *RequestError {
	return &RequestError{Field: field, Message: fmt.Sprintf(format, args...)}
}

// maxPermEntries bounds the permutation input size: 2^16 entries covers
// every tabulated workload the engine verifies (n ≤ 16) while keeping a
// single request's parse cost trivial. Wider functions must come in as
// PPRM text, which stays polynomial in the written size.
const maxPermEntries = 1 << 16

// PLA embedding parameters: fixed so a request's compiled spec — and
// therefore its idempotency key — is deterministic, and recorded in
// quarantine artifacts so an offline replay reproduces the same embedding.
const (
	plaEmbedTries        = 16
	plaEmbedSeed  uint64 = 1
)

// compiled is a validated, engine-ready request.
type compiled struct {
	spec   *pprm.Spec
	perm   perm.Perm // nil when the function is too wide to tabulate
	opts   core.Options
	class  Class
	clamps []string
	key    uint64
}

// compileRequest validates req against the server ceilings and compiles it
// into an engine-ready form. Every failure is a *RequestError naming the
// bad field; nothing is allocated into the job queue before this passes.
func compileRequest(req *Request, ceiling core.BudgetCeiling) (*compiled, *RequestError) {
	class, err := parseClass(req.Class)
	if err != nil {
		return nil, reqErr("class", "%v", err)
	}
	if req.Budget.TimeMillis < 0 {
		return nil, reqErr("budget.time_ms", "must be non-negative, got %d", req.Budget.TimeMillis)
	}
	if req.Budget.Steps < 0 {
		return nil, reqErr("budget.steps", "must be non-negative, got %d", req.Budget.Steps)
	}
	if req.Budget.MemoryMiB < 0 {
		return nil, reqErr("budget.memory_mib", "must be non-negative, got %d", req.Budget.MemoryMiB)
	}
	if req.Budget.MaxGates < 0 {
		return nil, reqErr("budget.max_gates", "must be non-negative, got %d", req.Budget.MaxGates)
	}

	opts := core.DefaultOptions()
	opts.FirstSolution = req.FirstSolution
	switch strings.ToLower(req.Library) {
	case "", "gt":
	case "nct":
		opts.Library = circuit.NCT
	default:
		return nil, reqErr("library", "unknown library %q (want \"gt\" or \"nct\")", req.Library)
	}
	opts.TimeLimit = time.Duration(req.Budget.TimeMillis) * time.Millisecond
	opts.TotalSteps = req.Budget.Steps
	opts.MaxMemory = req.Budget.MemoryMiB << 20
	opts.MaxGates = req.Budget.MaxGates
	clamps := opts.ClampBudget(ceiling)

	spec, p, rerr := compileSpec(&req.Spec)
	if rerr != nil {
		return nil, rerr
	}

	c := &compiled{spec: spec, perm: p, opts: opts, class: class, clamps: clamps}
	c.key = idempotencyKey(c)
	return c, nil
}

// compileSpec resolves the four spec input modes to a PPRM expansion (and,
// where tabulation is feasible, a permutation for verification).
func compileSpec(in *SpecInput) (*pprm.Spec, perm.Perm, *RequestError) {
	set := 0
	for _, ok := range []bool{in.Bench != "", in.Perm != "", in.PPRM != nil, in.PLA != ""} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return nil, nil, reqErr("spec", "exactly one of bench, perm, pprm, pla must be set (got %d)", set)
	}

	switch {
	case in.Bench != "":
		b, err := bench.ByName(in.Bench)
		if err != nil {
			return nil, nil, reqErr("spec.bench", "%v", err)
		}
		spec, err := b.PPRMSpec()
		if err != nil {
			return nil, nil, reqErr("spec.bench", "%v", err)
		}
		return spec, b.Spec, nil

	case in.Perm != "":
		p, err := perm.Parse(in.Perm)
		if err != nil {
			return nil, nil, reqErr("spec.perm", "%v", err)
		}
		if len(p) > maxPermEntries {
			return nil, nil, reqErr("spec.perm",
				"permutation has %d entries; the tabulated limit is %d — submit wide functions as PPRM text", len(p), maxPermEntries)
		}
		spec, err := pprm.FromPerm(p)
		if err != nil {
			return nil, nil, reqErr("spec.perm", "%v", err)
		}
		return spec, p, nil

	case in.PPRM != nil:
		if in.PPRM.Vars < 1 || in.PPRM.Vars > bits.MaxVars {
			return nil, nil, reqErr("spec.pprm.vars", "must be between 1 and %d, got %d", bits.MaxVars, in.PPRM.Vars)
		}
		spec, err := pprm.Parse(in.PPRM.Vars, in.PPRM.Text)
		if err != nil {
			return nil, nil, reqErr("spec.pprm.text", "%v", err)
		}
		if in.PPRM.Vars <= 16 {
			p := spec.ToPerm()
			if err := p.Validate(); err != nil {
				return nil, nil, reqErr("spec.pprm.text", "PPRM does not describe a reversible function: %v", err)
			}
			return spec, p, nil
		}
		return spec, nil, nil

	default: // PLA
		pt, err := tt.ParsePLAPartial(in.PLA)
		if err != nil {
			return nil, nil, reqErr("spec.pla", "%v", err)
		}
		emb, _, err := tt.EmbedPartial(pt, plaEmbedTries, plaEmbedSeed)
		if err != nil {
			return nil, nil, reqErr("spec.pla", "%v", err)
		}
		p := perm.Perm(emb.Spec)
		spec, err := pprm.FromPerm(p)
		if err != nil {
			return nil, nil, reqErr("spec.pla", "%v", err)
		}
		return spec, p, nil
	}
}

// idempotencyKey hashes everything that makes two submissions "the same
// job": the compiled function, the decision-shaping options, the budgets
// (a bigger budget is a different job — it can find a better circuit), and
// the scheduling class. FNV-1a over the component hashes.
func idempotencyKey(c *compiled) uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
	}
	mix(c.spec.Hash())
	mix(core.OptionsFingerprint(&c.opts))
	mix(uint64(c.opts.TimeLimit))
	mix(uint64(int64(c.opts.TotalSteps)))
	mix(uint64(int64(c.opts.ImproveSteps)))
	if c.opts.FirstSolution {
		mix(1)
	} else {
		mix(0)
	}
	mix(uint64(c.class))
	return h
}
