package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/verify"
)

// corruptingRunner wraps the real engine and appends an unconditional NOT
// to the found circuit on the attempts selected by corrupt — fabricating
// exactly the miscompile the server-side independent gate exists to catch
// (the result still claims Verified, as a buggy engine would).
func corruptingRunner(srv **Server, attempts *atomic.Int64, corrupt func(attempt int64) bool) func(context.Context, *Job) core.Result {
	return func(ctx context.Context, j *Job) core.Result {
		n := attempts.Add(1)
		res := (*srv).realRun(ctx, j)
		if corrupt(n) && res.Found && res.Circuit != nil {
			res.Circuit.Append(circuit.Gate{Target: 0})
		}
		return res
	}
}

func readQuarantine(t *testing.T, path string) QuarantineArtifact {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("quarantine artifact unreadable: %v", err)
	}
	var art QuarantineArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("quarantine artifact is not valid JSON: %v\n%s", err, data)
	}
	return art
}

// TestVerifyDegradedRerunRecovers: the first attempt returns a corrupt
// circuit, the degraded re-run a correct one. The client must get a
// verified 200, the evidence must be quarantined, and the counters must
// record exactly one failure and one re-run.
func TestVerifyDegradedRerunRecovers(t *testing.T) {
	stateDir := t.TempDir()
	var srv *Server
	var attempts atomic.Int64
	cfg := Config{
		Workers:  1,
		StateDir: stateDir,
		Runner:   corruptingRunner(&srv, &attempts, func(n int64) bool { return n == 1 }),
	}
	s, ts := startTestServer(t, cfg)
	srv = s

	resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1",
		`{"spec":{"bench":"rd32"},"budget":{"time_ms":30000}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if v.Status != string(StatusDone) {
		t.Errorf("status = %q, want done", v.Status)
	}
	if !v.Degraded {
		t.Error("job not marked degraded")
	}
	if !strings.Contains(v.Note, "quarantined") || !strings.Contains(v.Note, "degraded") {
		t.Errorf("note does not explain the re-run: %q", v.Note)
	}
	if v.Result == nil || !v.Result.Found {
		t.Fatalf("degraded re-run produced no circuit: %+v", v.Result)
	}
	if v.Result.Verified == nil || !*v.Result.Verified {
		t.Errorf("recovered circuit not verified: %v", v.Result.Verified)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2 (primary + one degraded re-run)", got)
	}

	st := s.Stats()
	if st.VerifyFailures != 1 || st.DegradedReruns != 1 {
		t.Errorf("stats = %d failures / %d reruns, want 1/1", st.VerifyFailures, st.DegradedReruns)
	}
	if st.Failed != 0 || st.Completed != 1 {
		t.Errorf("failed=%d completed=%d, want 0/1", st.Failed, st.Completed)
	}

	art := readQuarantine(t, s.quarantinePath(s.mustJob(t, v.ID), "primary"))
	if art.JobID != v.ID || art.Stage != string(verify.StageSearch) {
		t.Errorf("artifact identity: job=%q stage=%q", art.JobID, art.Stage)
	}
	if art.Circuit == "" || art.Mismatch == "" {
		t.Errorf("artifact missing evidence: circuit=%q mismatch=%q", art.Circuit, art.Mismatch)
	}
	if art.Request.Spec.Bench != "rd32" {
		t.Errorf("artifact lost the original request: %+v", art.Request)
	}
	if art.SpecHash == "" || art.OptionsFingerprint == "" {
		t.Errorf("artifact missing fingerprints: %+v", art)
	}
}

// mustJob fetches a registered job by ID for white-box assertions.
func (s *Server) mustJob(t *testing.T, id string) *Job {
	t.Helper()
	j, ok := s.job(id)
	if !ok {
		t.Fatalf("job %q not registered", id)
	}
	return j
}

// TestVerifyPersistentMiscompileFailsWith500: when the degraded re-run is
// corrupt too, the job must fail — 500, never a wrong 200 — with both
// attempts' evidence quarantined.
func TestVerifyPersistentMiscompileFailsWith500(t *testing.T) {
	stateDir := t.TempDir()
	var srv *Server
	var attempts atomic.Int64
	cfg := Config{
		Workers:  1,
		StateDir: stateDir,
		Runner:   corruptingRunner(&srv, &attempts, func(int64) bool { return true }),
	}
	s, ts := startTestServer(t, cfg)
	srv = s

	resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1",
		`{"spec":{"bench":"rd32"},"budget":{"time_ms":30000}}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if v.Status != string(StatusFailed) {
		t.Errorf("status = %q, want failed", v.Status)
	}
	if !strings.Contains(v.Error, "verification failed after degraded re-run") {
		t.Errorf("error does not name the gate: %q", v.Error)
	}
	if v.Result == nil || v.Result.Found || v.Result.Circuit != "" {
		t.Errorf("failed job leaked a circuit: %+v", v.Result)
	}
	if v.Result != nil && v.Result.Stop != core.StopVerifyFailed.String() {
		t.Errorf("stop = %q, want %q", v.Result.Stop, core.StopVerifyFailed)
	}

	st := s.Stats()
	if st.VerifyFailures != 2 || st.DegradedReruns != 1 {
		t.Errorf("stats = %d failures / %d reruns, want 2/1", st.VerifyFailures, st.DegradedReruns)
	}
	j := s.mustJob(t, v.ID)
	for _, attempt := range []string{"primary", "degraded"} {
		if _, err := os.Stat(s.quarantinePath(j, attempt)); err != nil {
			t.Errorf("missing %s quarantine artifact: %v", attempt, err)
		}
	}
}

// TestVerifyInjectedMiscompileRealEngine drives the true production path:
// the engine-side fault hook corrupts every found circuit before the core
// gate, so the typed verification error (not a fabricated result) reaches
// the server, which must quarantine and fail with 500.
func TestVerifyInjectedMiscompileRealEngine(t *testing.T) {
	core.CorruptResultHook = func(c *circuit.Circuit) { c.Append(circuit.Gate{Target: 0}) }
	defer func() { core.CorruptResultHook = nil }()

	stateDir := t.TempDir()
	s, ts := startTestServer(t, Config{Workers: 1, StateDir: stateDir})

	resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1",
		`{"spec":{"bench":"rd32"},"budget":{"time_ms":30000}}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	art := readQuarantine(t, s.quarantinePath(s.mustJob(t, v.ID), "primary"))
	if art.Circuit == "" {
		t.Error("core-gate quarantine lost the rejected cascade")
	}
	if !strings.Contains(art.Mismatch, "maps input") {
		t.Errorf("mismatch not a counterexample: %q", art.Mismatch)
	}

	// Healthz reflects the gate counters for scrapers.
	hresp, hbody := getURL(t, ts.URL+"/v1/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", hresp.StatusCode)
	}
	var hv struct {
		Stats Stats `json:"stats"`
	}
	if err := json.Unmarshal(hbody, &hv); err != nil {
		t.Fatalf("unmarshal healthz: %v", err)
	}
	if hv.Stats.VerifyFailures != 2 || hv.Stats.DegradedReruns != 1 {
		t.Errorf("healthz stats = %d failures / %d reruns, want 2/1",
			hv.Stats.VerifyFailures, hv.Stats.DegradedReruns)
	}
}
