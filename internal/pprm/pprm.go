// Package pprm implements positive-polarity Reed–Muller (PPRM) expansions
// of reversible functions (Section II-C of the paper) and the substitution
// operation the synthesis algorithm is built on.
//
// The PPRM expansion of a Boolean function is the canonical EXOR
// sum-of-products using only uncomplemented variables:
//
//	f = a0 ⊕ a1·x1 ⊕ … ⊕ an·xn ⊕ a12·x1x2 ⊕ … ⊕ a12…n·x1x2…xn
//
// Each product term is stored as a bit mask (see internal/bits); an output's
// expansion is the set of terms with coefficient 1. A reversible function of
// n variables is represented by n expansions, one per output.
package pprm

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/bits"
	"repro/internal/perm"
)

// Spec is the PPRM expansion of an n-variable reversible function: Out[i]
// is the expansion of output variable v_out,i in terms of the inputs.
type Spec struct {
	N   int
	Out []TermSet
}

// NewSpec returns a Spec with empty expansions (the constant-0 function on
// every output; not reversible until filled in).
func NewSpec(n int) *Spec {
	return &Spec{N: n, Out: make([]TermSet, n)}
}

// Identity returns the PPRM of the identity function: v_out,i = v_i.
func Identity(n int) *Spec {
	s := NewSpec(n)
	for i := 0; i < n; i++ {
		s.Out[i].Toggle(bits.Bit(i))
	}
	return s
}

// Clone deep-copies the Spec.
func (s *Spec) Clone() *Spec {
	out := &Spec{N: s.N, Out: make([]TermSet, len(s.Out))}
	for i := range s.Out {
		out.Out[i] = s.Out[i].Clone()
	}
	return out
}

// Terms returns the total number of terms across all outputs — the size
// measure driving the algorithm's pruning and priorities.
func (s *Spec) Terms() int {
	n := 0
	for i := range s.Out {
		n += s.Out[i].Len()
	}
	return n
}

// MemBytes approximates the resident size of the Spec in bytes: the struct
// and slice headers plus the backing term storage of every output. The
// synthesis search uses it to enforce the paper's memory ceiling on queued
// expansions, so it counts capacity (what the allocator holds), not length.
func (s *Spec) MemBytes() int64 {
	const (
		specHeader    = 8 + 24 // N + Out slice header
		termSetHeader = 24     // terms slice header
		termBytes     = 4      // one bits.Mask
	)
	b := int64(specHeader)
	for i := range s.Out {
		b += termSetHeader + int64(cap(s.Out[i].terms))*termBytes
	}
	return b
}

// OutputIsIdentity reports whether output i has been reduced to v_i.
func (s *Spec) OutputIsIdentity(i int) bool {
	return s.Out[i].Len() == 1 && s.Out[i].Has(bits.Bit(i))
}

// IsIdentity reports whether every output is its corresponding input — the
// algorithm's solution condition.
func (s *Spec) IsIdentity() bool {
	for i := range s.Out {
		if !s.OutputIsIdentity(i) {
			return false
		}
	}
	return true
}

// Eval evaluates every output on input assignment x, returning the output
// assignment.
func (s *Spec) Eval(x uint32) uint32 {
	var y uint32
	for i := range s.Out {
		parity := uint32(0)
		for _, t := range s.Out[i].Terms() {
			if x&t == t {
				parity ^= 1
			}
		}
		y |= parity << uint(i)
	}
	return y
}

// FromPerm computes the PPRM expansion of a reversible function via the
// GF(2) Reed–Muller (Möbius) transform of each output column. The PPRM
// expansion is canonical, so this exact route produces the same expansion
// the paper obtains through EXORCISM-4 followed by polarity conversion.
func FromPerm(p perm.Perm) (*Spec, error) {
	n := p.Vars()
	if n < 0 || n > bits.MaxVars {
		return nil, fmt.Errorf("pprm: unsupported function size %d", len(p))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := NewSpec(n)
	size := len(p)
	col := make([]byte, size)
	for out := 0; out < n; out++ {
		for x := 0; x < size; x++ {
			col[x] = byte(p[x]>>uint(out)) & 1
		}
		mobius(col)
		terms := make([]bits.Mask, 0, size/4)
		for m := 0; m < size; m++ {
			if col[m] == 1 {
				terms = append(terms, bits.Mask(m)) // ascending ⇒ sorted
			}
		}
		s.Out[out] = newSortedTermSet(terms)
	}
	return s, nil
}

// ToPerm evaluates the Spec on every input assignment. The result is a
// valid permutation iff the Spec describes a reversible function; callers
// that require reversibility should Validate the result.
func (s *Spec) ToPerm() perm.Perm {
	size := 1 << uint(s.N)
	col := make([]byte, size)
	p := make(perm.Perm, size)
	for out := 0; out < s.N; out++ {
		for x := range col {
			col[x] = 0
		}
		for _, t := range s.Out[out].Terms() {
			col[t] = 1
		}
		mobius(col) // the transform is an involution: coefficients → values
		for x := 0; x < size; x++ {
			if col[x] == 1 {
				p[x] |= 1 << uint(out)
			}
		}
	}
	return p
}

// mobius applies the in-place GF(2) Möbius (Reed–Muller) butterfly
// transform: a[S] ← XOR of f[T] over T ⊆ S. The transform is its own
// inverse over GF(2).
func mobius(a []byte) {
	n := len(a)
	for step := 1; step < n; step <<= 1 {
		for x := 0; x < n; x++ {
			if x&step != 0 {
				a[x] ^= a[x^step]
			}
		}
	}
}

// Substitute applies v_target = v_target ⊕ factor to every output
// expansion, in place, and returns the change in total term count
// (negative when terms were eliminated). The factor must not contain the
// target variable: a wire cannot be both target and control of the same
// Toffoli gate.
//
// Each term t containing v_target expands as t = v_target·rest into
// v_target·rest ⊕ factor·rest, so the term (t \ v_target) ∪ factor is
// toggled; toggling an existing term cancels it (an even number of
// identical product terms cancels in an EXOR expansion).
func (s *Spec) Substitute(target int, factor bits.Mask) int {
	if bits.Has(factor, target) {
		panic(fmt.Sprintf("pprm: factor %s contains target %s",
			bits.TermString(factor), bits.VarName(target)))
	}
	tb := bits.Bit(target)
	delta := 0
	var toggles, scratch []bits.Mask
	for j := range s.Out {
		ts := &s.Out[j]
		toggles = toggles[:0]
		for _, t := range ts.Terms() {
			if t&tb != 0 {
				toggles = append(toggles, (t&^tb)|factor)
			}
		}
		if len(toggles) == 0 {
			continue
		}
		slices.Sort(toggles)
		toggles = dedupSorted(toggles)
		if cap(scratch) < ts.Len()+len(toggles) {
			scratch = make([]bits.Mask, 0, 2*(ts.Len()+len(toggles)))
		}
		delta += ts.symmetricMerge(toggles, scratch)
	}
	return delta
}

// SubstituteCopy returns a new Spec equal to s with v_target = v_target ⊕
// factor applied, plus the term-count change. Output expansions the
// substitution does not touch are shared (not copied) between s and the
// result, so both must be treated as immutable afterwards — the search
// relies on this to make child-node creation cheap.
func (s *Spec) SubstituteCopy(target int, factor bits.Mask) (*Spec, int) {
	if bits.Has(factor, target) {
		panic(fmt.Sprintf("pprm: factor %s contains target %s",
			bits.TermString(factor), bits.VarName(target)))
	}
	tb := bits.Bit(target)
	out := &Spec{N: s.N, Out: make([]TermSet, len(s.Out))}
	delta := 0
	var toggles []bits.Mask
	for j := range s.Out {
		ts := &s.Out[j]
		toggles = toggles[:0]
		var tx uint64
		for _, t := range ts.Terms() {
			if t&tb != 0 {
				nt := (t &^ tb) | factor
				toggles = append(toggles, nt)
				tx ^= termHash(nt)
			}
		}
		if len(toggles) == 0 {
			out.Out[j] = *ts // share storage (incl. hash and sorted cache)
			continue
		}
		slices.Sort(toggles)
		toggles = dedupSorted(toggles)
		merged := make([]bits.Mask, 0, ts.Len()+len(toggles))
		a := ts.Terms()
		i, k := 0, 0
		for i < len(a) && k < len(toggles) {
			switch {
			case a[i] < toggles[k]:
				merged = append(merged, a[i])
				i++
			case a[i] > toggles[k]:
				merged = append(merged, toggles[k])
				k++
			default:
				i++
				k++
			}
		}
		merged = append(merged, a[i:]...)
		merged = append(merged, toggles[k:]...)
		delta += len(merged) - len(a)
		// Toggle keys cancel in XOR pairs exactly like the terms, so the
		// raw-toggle XOR tx is the hash delta even after deduplication.
		out.Out[j] = TermSet{terms: merged, hash: ts.hash ^ tx}
	}
	return out, delta
}

// SubstituteDelta computes the term-count change Substitute(target, factor)
// would produce, without modifying the Spec. The synthesis search uses it
// to score every candidate before materializing only the survivors.
// scratch is an optional reusable buffer.
func (s *Spec) SubstituteDelta(target int, factor bits.Mask, scratch []bits.Mask) (int, []bits.Mask) {
	tb := bits.Bit(target)
	delta := 0
	toggles := scratch[:0]
	for j := range s.Out {
		ts := &s.Out[j]
		toggles = toggles[:0]
		for _, t := range ts.Terms() {
			if t&tb != 0 {
				toggles = append(toggles, (t&^tb)|factor)
			}
		}
		if len(toggles) == 0 {
			continue
		}
		slices.Sort(toggles)
		toggles = dedupSorted(toggles)
		// Merge-count: toggles present in the set cancel (−1), absent
		// ones are inserted (+1).
		a := ts.Terms()
		i, j2 := 0, 0
		for i < len(a) && j2 < len(toggles) {
			switch {
			case a[i] < toggles[j2]:
				i++
			case a[i] > toggles[j2]:
				delta++
				j2++
			default:
				delta--
				i++
				j2++
			}
		}
		delta += len(toggles) - j2
	}
	return delta, toggles
}

// Equal reports whether the two Specs are the same expansion.
func (s *Spec) Equal(o *Spec) bool {
	if s.N != o.N {
		return false
	}
	for i := range s.Out {
		if !s.Out[i].Equal(&o.Out[i]) {
			return false
		}
	}
	return true
}

// String renders the expansion in the paper's style, one output per line:
//
//	a' = 1 ^ a
//	b' = b ^ c ^ ac
func (s *Spec) String() string {
	var b strings.Builder
	for i := 0; i < s.N; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(bits.VarName(i))
		b.WriteString("' = ")
		terms := s.Out[i].Sorted()
		if len(terms) == 0 {
			b.WriteString("0")
			continue
		}
		for j, t := range terms {
			if j > 0 {
				b.WriteString(" ^ ")
			}
			b.WriteString(bits.TermString(t))
		}
	}
	return b.String()
}

// Parse reads a Spec in the String format. Lines look like
// "b' = b ^ c ^ ac" (also accepting "b_out", "bo" or "b" before the "=",
// and "⊕", "+", or "^" as the EXOR operator). n is the number of
// variables; every output must be defined exactly once.
func Parse(n int, text string) (*Spec, error) {
	s := NewSpec(n)
	defined := make([]bool, n)
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("pprm: line %d: missing '='", lineNo+1)
		}
		lhs := strings.TrimSpace(line[:eq])
		lhs = strings.TrimSuffix(lhs, "'")
		lhs = strings.TrimSuffix(lhs, "_out")
		lhs = strings.TrimSuffix(lhs, "o")
		if lhs == "" { // output named exactly "o": the trims above ate it
			lhs = "o"
		}
		out := bits.VarIndex(lhs)
		if out < 0 || out >= n {
			return nil, fmt.Errorf("pprm: line %d: unknown output %q", lineNo+1, strings.TrimSpace(line[:eq]))
		}
		if defined[out] {
			return nil, fmt.Errorf("pprm: line %d: output %s defined twice", lineNo+1, bits.VarName(out))
		}
		defined[out] = true
		rhs := strings.TrimSpace(line[eq+1:])
		if rhs == "0" {
			continue
		}
		rhs = strings.ReplaceAll(rhs, "⊕", "^")
		rhs = strings.ReplaceAll(rhs, "+", "^")
		for _, tok := range strings.Split(rhs, "^") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				return nil, fmt.Errorf("pprm: line %d: empty term", lineNo+1)
			}
			m, ok := bits.ParseTerm(tok)
			if !ok {
				return nil, fmt.Errorf("pprm: line %d: bad term %q", lineNo+1, tok)
			}
			if m >= 1<<uint(n) {
				return nil, fmt.Errorf("pprm: line %d: term %q uses variables beyond %d", lineNo+1, tok, n)
			}
			s.Out[out].Toggle(m)
		}
	}
	for i, ok := range defined {
		if !ok {
			return nil, fmt.Errorf("pprm: output %s not defined", bits.VarName(i))
		}
	}
	return s, nil
}
