// Package chaos is a persistent-fault filesystem for proving graceful
// degradation. Where faultfs simulates one crash (every operation after
// the crash point fails, modelling a dead process), chaos models a *sick
// device that stays up*: operations under a faulted path prefix keep
// failing with a realistic errno — ENOSPC, EIO, EROFS — until the fault
// is healed, and optionally take extra latency. That is exactly the
// environment the health supervisor is built for: the process keeps
// serving jobs while the breaker sheds the feature, then re-closes once
// the fault clears.
//
// Faults are keyed by path prefix so one FS can serve a whole state
// directory with the cache subtree on a "full disk" while checkpoints
// stay healthy. Faults are injected programmatically (Fail/Heal) or by a
// timed Schedule — a CLI-parsable script like
//
//	+2s fail /var/cache enospc; +10s heal /var/cache
//
// that rmrlsd replays in-process for end-to-end chaos runs.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/snapshot"
)

// Mode selects which errno a faulted prefix returns and which operations
// it affects.
type Mode int

const (
	// ENOSPC: writes fail with "no space left on device"; reads still work
	// (a full disk serves existing bytes fine).
	ENOSPC Mode = iota
	// EIO: every operation fails with "input/output error" — a dying
	// device, reads included.
	EIO
	// EROFS: writes and removes fail with "read-only file system"; reads
	// still work. What a kernel remount-ro after an error looks like.
	EROFS
)

func (m Mode) String() string {
	switch m {
	case ENOSPC:
		return "enospc"
	case EIO:
		return "eio"
	case EROFS:
		return "rofs"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode parses the CLI spelling of a fault mode.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "enospc", "full":
		return ENOSPC, nil
	case "eio", "io":
		return EIO, nil
	case "rofs", "erofs", "ro":
		return EROFS, nil
	}
	return 0, fmt.Errorf("chaos: unknown fault mode %q (want enospc, eio, or rofs)", s)
}

func (m Mode) errno() error {
	switch m {
	case ENOSPC:
		return syscall.ENOSPC
	case EROFS:
		return syscall.EROFS
	default:
		return syscall.EIO
	}
}

// failsReads reports whether the mode breaks the read path too.
func (m Mode) failsReads() bool { return m == EIO }

type fault struct {
	prefix string
	mode   Mode
}

// FS wraps an inner snapshot.FS with persistent per-path-prefix faults.
// The zero value is unusable; use New. Safe for concurrent use.
type FS struct {
	inner snapshot.FS

	mu      sync.Mutex
	faults  []fault // longest-prefix match wins
	latency time.Duration

	writeErrs, readErrs int64
}

// New wraps inner (nil: the real disk) with no faults active.
func New(inner snapshot.FS) *FS {
	if inner == nil {
		inner = snapshot.DiskFS
	}
	return &FS{inner: inner}
}

// Fail makes every operation under prefix fault with mode until Heal.
// Re-failing an already-faulted prefix replaces its mode.
func (f *FS) Fail(prefix string, mode Mode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.faults {
		if f.faults[i].prefix == prefix {
			f.faults[i].mode = mode
			return
		}
	}
	f.faults = append(f.faults, fault{prefix: prefix, mode: mode})
	// Longest prefix first so nested faults shadow outer ones.
	sort.SliceStable(f.faults, func(i, j int) bool {
		return len(f.faults[i].prefix) > len(f.faults[j].prefix)
	})
}

// Heal clears the fault on prefix. Healing a healthy prefix is a no-op.
func (f *FS) Heal(prefix string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.faults {
		if f.faults[i].prefix == prefix {
			f.faults = append(f.faults[:i], f.faults[i+1:]...)
			return
		}
	}
}

// HealAll clears every fault.
func (f *FS) HealAll() {
	f.mu.Lock()
	f.faults = nil
	f.mu.Unlock()
}

// SetLatency adds a fixed delay to every operation (faulted or not) —
// a slow device rather than a broken one. Zero disables.
func (f *FS) SetLatency(d time.Duration) {
	f.mu.Lock()
	f.latency = d
	f.mu.Unlock()
}

// InjectedErrors reports how many operations failed by injection
// (writes+removes, reads).
func (f *FS) InjectedErrors() (writes, reads int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeErrs, f.readErrs
}

// check consults the fault table for one operation on path. write says
// whether the operation mutates the device.
func (f *FS) check(path string, write bool) error {
	f.mu.Lock()
	lat := f.latency
	var ferr error
	for _, fa := range f.faults {
		if strings.HasPrefix(path, fa.prefix) {
			if write || fa.mode.failsReads() {
				ferr = fa.mode.errno()
				if write {
					f.writeErrs++
				} else {
					f.readErrs++
				}
			}
			break
		}
	}
	f.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	return ferr
}

func (f *FS) CreateTemp(dir, pattern string) (snapshot.File, error) {
	if err := f.check(dir, true); err != nil {
		return nil, &pathError{"createtemp", dir, err}
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: f, inner: file}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.check(newpath, true); err != nil {
		return &pathError{"rename", newpath, err}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	// ENOSPC does not break unlink — removing files is how a full disk
	// gets fixed. EROFS and EIO do.
	f.mu.Lock()
	var ferr error
	for _, fa := range f.faults {
		if strings.HasPrefix(name, fa.prefix) {
			if fa.mode != ENOSPC {
				ferr = fa.mode.errno()
				f.writeErrs++
			}
			break
		}
	}
	lat := f.latency
	f.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	if ferr != nil {
		return &pathError{"remove", name, ferr}
	}
	return f.inner.Remove(name)
}

func (f *FS) SyncDir(dir string) error {
	if err := f.check(dir, true); err != nil {
		return &pathError{"syncdir", dir, err}
	}
	return f.inner.SyncDir(dir)
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if err := f.check(name, false); err != nil {
		return nil, &pathError{"readfile", name, err}
	}
	return f.inner.ReadFile(name)
}

// pathError mirrors the shape of os.PathError so injected errors print
// and unwrap like real ones (errors.Is(err, syscall.ENOSPC) works).
type pathError struct {
	op   string
	path string
	err  error
}

func (e *pathError) Error() string { return "chaos: " + e.op + " " + e.path + ": " + e.err.Error() }
func (e *pathError) Unwrap() error { return e.err }

type chaosFile struct {
	fs    *FS
	inner snapshot.File
}

func (f *chaosFile) Name() string { return f.inner.Name() }

func (f *chaosFile) Write(p []byte) (int, error) {
	if err := f.fs.check(f.inner.Name(), true); err != nil {
		return 0, &pathError{"write", f.inner.Name(), err}
	}
	return f.inner.Write(p)
}

func (f *chaosFile) Sync() error {
	if err := f.fs.check(f.inner.Name(), true); err != nil {
		return &pathError{"sync", f.inner.Name(), err}
	}
	return f.inner.Sync()
}

func (f *chaosFile) Close() error {
	// Close always reaches the device: leaking descriptors because the
	// disk is full would turn one fault into two.
	return f.inner.Close()
}
