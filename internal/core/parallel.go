package core

// Parallel search engines over the shared logical frontier. Two engines,
// selected by Options.Workers / Options.FreeRunning (see options.go):
//
//   - runBatched, the deterministic-merge engine: the coordinator pops a
//     fixed-size batch of nodes, fans their candidate generation (the PPRM
//     probe/score/sort math, the bulk of an expansion's cost) out across
//     workers, then merges every queue/table/counter mutation sequentially
//     in batch order. Because the batch size is a constant — never derived
//     from the worker count — the search trajectory, all Result counters,
//     and every checkpoint are byte-identical across Workers=1, 4, 8 and
//     across runs.
//
//   - runFree, the work-stealing free-running engine: each worker owns a
//     shard of the frontier (internal/frontier primitives: per-worker
//     heaps with hash-routed ownership, a lock-striped transposition
//     table, a global best-depth bound), idle workers steal from the
//     deepest peer, and the first solution to publish wins. Fastest
//     wall-clock, nondeterministic pop order.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frontier"
	"repro/internal/obs"
)

// scoringClone returns a searcher stripped to the state generate reads —
// options, weights, widths — with its own scratch buffers and no queue,
// table, or counters. Each parallel worker generates through its own
// clone, so the shared searcher's buffers are never touched concurrently.
func (s *searcher) scoringClone() *searcher {
	return &searcher{
		opts:      s.opts,
		alpha:     s.alpha,
		beta:      s.beta,
		gamma:     s.gamma,
		n:         s.n,
		initTerms: s.initTerms,
	}
}

// batchStride is how many priority-queue pops the deterministic-merge
// engine commits per round. It is a fixed constant, independent of the
// worker count — that independence is the entire determinism argument:
// rounds select, generate, and merge the same nodes in the same order no
// matter how many goroutines did the generating. It equals pollStride, so
// cancellation latency (one poll per round) matches the sequential engine.
const batchStride = pollStride

// roundPoll checks the caller's context and wall-clock deadline once per
// batch round — the batched engine's analogue of interrupted(). Rounds are
// at most batchStride pops, so the latency bound is the sequential one.
func (s *searcher) roundPoll() (StopReason, bool) {
	s.observe()
	if s.done != nil {
		select {
		case <-s.done:
			return StopCanceled, true
		default:
		}
	}
	if s.hasDeadline && time.Now().After(s.deadline) {
		return StopDeadline, true
	}
	return StopNone, false
}

// generateBatch runs generate for every batch node, fanning the work out
// across the scratch clones. Assignment of nodes to clones is racy (an
// atomic claim counter) and deliberately irrelevant: generate is a pure
// function of the node and the shared scoring configuration, so gens[i]
// is identical no matter which clone computed it.
func generateBatch(clones []*searcher, batch []*node, gens []genResult) {
	w := len(clones)
	if w > len(batch) {
		w = len(batch)
	}
	if w <= 1 {
		for i, parent := range batch {
			clones[0].generate(parent, &gens[i])
		}
		return
	}
	var next atomic.Int64
	claim := func(c *searcher) {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(batch) {
				return
			}
			c.generate(batch[i], &gens[i])
		}
	}
	var wg sync.WaitGroup
	for k := 1; k < w; k++ {
		wg.Add(1)
		go func(c *searcher) {
			defer wg.Done()
			claim(c)
		}(clones[k])
	}
	claim(clones[0]) // the coordinator takes a share too
	wg.Wait()
}

// runBatched is the deterministic-merge parallel search loop. Structure of
// one round: budget checks and checkpointing at the (clean) round
// boundary, one cancellation/deadline poll, a sequential pop phase of at
// most batchStride nodes, parallel candidate generation, and a sequential
// commit phase in pop order. Budgets clamp the batch size so a budget
// never splits a round, which keeps every checkpoint at a boundary the
// resumed run reproduces exactly.
func (s *searcher) runBatched() Result {
	if res, done := s.begin(); done {
		res.Workers = s.opts.Workers
		return res
	}
	workers := s.opts.Workers
	if workers < 1 {
		workers = 1
	}
	clones := make([]*searcher, workers)
	for i := range clones {
		clones[i] = s.scoringClone()
	}
	batch := make([]*node, 0, batchStride)
	gens := make([]genResult, batchStride)

	stop := StopNone
loop:
	for {
		if s.stepHook != nil {
			s.stepHook(s)
		}
		s.maybeCheckpoint()
		if s.opts.TotalSteps > 0 && s.steps >= s.opts.TotalSteps {
			stop = StopStepLimit
			break
		}
		if s.bestSol != nil {
			if s.opts.FirstSolution {
				stop = StopSolved
				break
			}
			if s.opts.ImproveSteps > 0 && s.steps-s.solSteps >= s.opts.ImproveSteps {
				stop = StopSolved
				break
			}
		}
		if s.opts.MaxSteps > 0 && s.stepsSinceRestart >= s.opts.MaxSteps && s.bestSol == nil {
			if !s.restart() {
				stop = s.exhaustionReason()
				break
			}
		}
		if r, halt := s.roundPoll(); halt {
			// Nothing is popped yet, so the stop lands on a clean round
			// boundary — the final checkpoint needs no rollback.
			stop = r
			break
		}

		// The batch budget: never pop past a limit mid-round, so the
		// round-boundary checks above are the only places budgets fire.
		limit := batchStride
		if s.opts.TotalSteps > 0 && limit > s.opts.TotalSteps-s.steps {
			limit = s.opts.TotalSteps - s.steps
		}
		if s.bestSol == nil && s.opts.MaxSteps > 0 && limit > s.opts.MaxSteps-s.stepsSinceRestart {
			limit = s.opts.MaxSteps - s.stepsSinceRestart
		}
		if s.bestSol != nil && s.opts.ImproveSteps > 0 {
			if rem := s.opts.ImproveSteps - (s.steps - s.solSteps); limit > rem {
				limit = rem
			}
		}

		batch = batch[:0]
		popped := 0
		for popped < limit {
			parent, ok := s.pq.Pop()
			if !ok {
				break
			}
			popped++
			s.queueBytes -= parent.mem
			s.steps++
			s.stepsSinceRestart++
			s.emit(EventPop, parent)
			// Depth cutoff against the round-start bound; commits below
			// re-check against the live bound, so a solution found earlier
			// in this same round culls later batch entries too.
			if parent.depth >= s.bestDepth-1 {
				s.recycle(parent)
				continue
			}
			batch = append(batch, parent)
		}
		if popped == 0 {
			// Queue empty at the round boundary: same terminal logic as
			// the sequential engine's failed pop.
			if s.bestSol == nil && s.restart() {
				continue
			}
			if s.bestSol != nil {
				stop = StopSolved
			} else {
				stop = s.exhaustionReason()
			}
			break
		}

		if len(batch) > 0 {
			generateBatch(clones, batch, gens)
			for i, parent := range batch {
				if parent.depth >= s.bestDepth-1 {
					// A solution committed earlier in this batch shrank
					// the bound below this node.
					s.recycle(parent)
					continue
				}
				s.commit(parent, &gens[i])
			}
		}
		if s.pq.Len() > s.opts.maxQueue() {
			s.pq.PruneToFunc(s.opts.maxQueue()/2, s.discardQueued)
			s.recountQueueBytes()
		}
		if s.overMemory() {
			stop = StopMemoryLimit
			break loop
		}
	}

	res := s.finish(stop, nil)
	res.Workers = s.opts.Workers
	return res
}

// Free-running engine stop codes (frontier.Pool reasons; nonzero).
const (
	freeStopSolved = iota + 1
	freeStopDrained
	freeStopRestart
	freeStopCanceled
	freeStopDeadline
	freeStopStepLimit
	freeStopMemory
)

// freeEngine is the shared state of one free-running search: the sharded
// frontier, the striped transposition table, the global best-depth bound,
// and the atomic budget counters every worker checks.
type freeEngine struct {
	s     *searcher
	heaps []*frontier.Heap[*node]
	tt    *frontier.TT // nil when Dedup is off
	bound *frontier.Bound
	pool  *frontier.Pool

	steps atomic.Int64 // global pop count, root segment included
	ssr   atomic.Int64 // pops since the last restart
	solAt atomic.Int64 // steps value when the best solution was published
	peak  atomic.Int64 // high-water totalBytes sample (monotone by CAS-max)

	initBound int // bound value before any solution; bound < initBound ⇔ solved

	mu      sync.Mutex // serializes bestSol/solSteps updates after a Publish win
	workers []*freeWorker
}

type freeWorker struct {
	id            int
	c             *searcher // scoring clone: buffers, free list
	gen           genResult
	steps, nodes  int64
	steals, idles int64
	run           *obs.Run // per-worker child run; nil when unobserved
	pollIn        int
}

// heapMem reports the bytes a queued node pins; node.mem is always set
// before the node is pushed onto any heap.
func heapMem(n *node) int64 { return n.mem }

// runFree is the work-stealing free-running search. The root is expanded
// by the classic sequential machinery (collecting firstMoves for the
// restart heuristic), its children transfer to their owner heaps, and the
// pool runs until a worker raises a stop. Restarts are stop-the-world:
// the pool winds down, the coordinator reseeds, and the pool runs again.
func (s *searcher) runFree() Result {
	// The trace callback cannot be honored — pop order is
	// nondeterministic and events would interleave meaninglessly — so it
	// is dropped, as documented on Options.FreeRunning.
	s.opts.Trace = nil
	if res, done := s.begin(); done {
		res.Workers = s.opts.Workers
		return res
	}
	workers := s.opts.Workers

	// Root expansion, sequential: pops the root begin() pushed.
	root, _ := s.pq.Pop()
	s.queueBytes -= root.mem
	s.steps++
	s.stepsSinceRestart++
	s.expand(root)

	e := &freeEngine{
		s:         s,
		heaps:     make([]*frontier.Heap[*node], workers),
		bound:     frontier.NewBound(s.bestDepth),
		pool:      frontier.NewPool(),
		initBound: s.maxGates + 1,
	}
	for i := range e.heaps {
		e.heaps[i] = frontier.NewHeap(heapMem)
	}
	if s.opts.Dedup {
		e.tt = frontier.NewTT(s.opts.dedupMaxEntries())
		e.tt.Record(s.root.hash, 0)
	}
	e.steps.Store(int64(s.steps))
	e.ssr.Store(int64(s.stepsSinceRestart))
	if s.bestSol != nil {
		e.solAt.Store(int64(s.solSteps))
	}
	e.workers = make([]*freeWorker, workers)
	for i := range e.workers {
		w := &freeWorker{id: i, c: s.scoringClone(), pollIn: 1}
		if s.opts.Observe != nil {
			w.run = s.opts.Observe.Child(fmt.Sprintf("worker-%d", i))
			w.run.Begin(0, 0, 0)
		}
		e.workers[i] = w
	}
	// Transfer the root's children to their owner heaps, seeding the
	// striped table with their marks.
	s.pq.Ordered(func(n *node) {
		if e.tt != nil {
			e.tt.Record(n.hash, n.depth)
		}
		e.pool.AddPending(1)
		e.ownerHeap(n.hash).Push(n, n.priority)
	})
	s.pq.Clear()
	s.queueBytes = 0

	stop := StopNone
	if s.bestSol != nil && s.opts.FirstSolution {
		stop = StopSolved
	} else {
	legs:
		for {
			e.pool.Run(workers, e.work)
			switch e.pool.Reason() {
			case freeStopRestart:
				if !e.restartFree() {
					stop = s.exhaustionReason()
					break legs
				}
				e.pool.Resume()
			case freeStopDrained:
				if s.bestSol == nil && e.restartFree() {
					e.pool.Resume()
					continue
				}
				if s.bestSol != nil {
					stop = StopSolved
				} else {
					stop = s.exhaustionReason()
				}
				break legs
			case freeStopSolved:
				stop = StopSolved
				break legs
			case freeStopCanceled:
				stop = StopCanceled
				break legs
			case freeStopDeadline:
				stop = StopDeadline
				break legs
			case freeStopStepLimit:
				stop = StopStepLimit
				break legs
			case freeStopMemory:
				stop = StopMemoryLimit
				break legs
			default:
				stop = StopInternalError
				break legs
			}
		}
	}

	// Fold the workers' counters and the shards' accounting back into the
	// searcher so finish() assembles the Result the usual way.
	s.steps = int(e.steps.Load())
	for _, w := range e.workers {
		s.nodes += int(w.nodes)
		if w.run != nil {
			w.run.Finish(stop.String())
		}
	}
	s.steals = e.pool.Steals()
	s.idles = e.pool.Idles()
	e.totalBytes() // final watermark sample
	if p := e.peak.Load(); p > s.peakBytes {
		s.peakBytes = p
	}
	var qb int64
	for _, h := range e.heaps {
		qb += h.Bytes()
	}
	s.queueBytes = qb
	res := s.finish(stop, nil)
	if e.tt != nil {
		h, m, ev := e.tt.Stats()
		res.DedupHits += h
		res.DedupMisses += m
		res.DedupEvictions += ev
	}
	res.Workers = workers
	return res
}

func (e *freeEngine) ownerHeap(hash uint64) *frontier.Heap[*node] {
	return e.heaps[hash%uint64(len(e.heaps))]
}

// perHeapQueueCap is each worker's share of Options.MaxQueue.
func (e *freeEngine) perHeapQueueCap() int {
	c := e.s.opts.maxQueue() / len(e.heaps)
	if c < 16 {
		c = 16
	}
	return c
}

// hasSol reports whether any solution has been published yet.
func (e *freeEngine) hasSol() bool { return e.bound.Load() < e.initBound }

// totalBytes samples the global MaxMemory estimate (heap shards plus the
// striped table) and ratchets the peak watermark. Each heap's charge moves
// atomically with its nodes (a stolen node is never charged twice), so the
// sampled sum never exceeds the true live total.
func (e *freeEngine) totalBytes() int64 {
	var t int64
	for _, h := range e.heaps {
		t += h.Bytes()
	}
	if e.tt != nil {
		t += e.tt.Bytes()
	}
	for {
		p := e.peak.Load()
		if t <= p || e.peak.CompareAndSwap(p, t) {
			break
		}
	}
	return t
}

// discard releases a node dropped by a heap prune or restart clear: its
// transposition mark is forgotten (it was never expanded) and its pending
// unit retired. The struct goes to the garbage collector — prunes run
// under the victim heap's lock with no worker free list in reach, and they
// are far off the hot path.
func (e *freeEngine) discard(n *node) {
	if e.tt != nil {
		e.tt.Forget(n.hash, n.depth)
	}
	e.pool.AddPending(-1)
}

// poll is a worker's stride-boundary check: cancellation, deadline, the
// memory ceiling, and the observability update.
func (e *freeEngine) poll(w *freeWorker) {
	s := e.s
	if s.done != nil {
		select {
		case <-s.done:
			e.pool.Stop(freeStopCanceled)
			return
		default:
		}
	}
	if s.hasDeadline && time.Now().After(s.deadline) {
		e.pool.Stop(freeStopDeadline)
		return
	}
	if limit := s.opts.MaxMemory; limit > 0 {
		if e.totalBytes() > limit {
			// Shed half of this worker's own shard; peers shed theirs at
			// their own polls. If the table is the remaining weight, drop
			// it (dedup is an optimization — un-marked states are re-found,
			// not lost). Only when there is nothing left to shed and the
			// estimate still exceeds the ceiling is the search out of road.
			own := e.heaps[w.id]
			own.PruneTo(own.Len()/2, e.discard)
			if e.totalBytes() > limit && e.tt != nil && e.tt.Bytes() > 0 {
				e.tt.Reset()
			}
			if e.totalBytes() > limit {
				lens := 0
				for _, h := range e.heaps {
					lens += h.Len()
				}
				if lens <= len(e.heaps) {
					e.pool.Stop(freeStopMemory)
					return
				}
			}
		}
	}
	if w.run != nil {
		c := obs.Counters{
			Steps:      w.steps,
			Nodes:      w.nodes,
			QueueLen:   int64(e.heaps[w.id].Len()),
			QueueBytes: e.heaps[w.id].Bytes(),
			Steals:     w.steals,
			Idles:      w.idles,
		}
		w.run.Update(c)
	}
}

// work is one worker's loop: pop from the own shard, steal from the
// deepest peer when empty, expand through the local scoring clone, route
// children to their owners.
func (e *freeEngine) work(id int) {
	w := e.workers[id]
	s := e.s
	for !e.pool.Stopped() {
		w.pollIn--
		if w.pollIn <= 0 {
			w.pollIn = pollStride
			e.poll(w)
			if e.pool.Stopped() {
				return
			}
		}
		// Budget gates, checked before the pop so a stopped budget never
		// strands a popped-but-unexpanded node. Races overshoot by at most
		// one pop per worker — free-running counters are approximate by
		// contract.
		if s.opts.TotalSteps > 0 && e.steps.Load() >= int64(s.opts.TotalSteps) {
			e.pool.Stop(freeStopStepLimit)
			return
		}
		if e.hasSol() {
			if s.opts.FirstSolution {
				e.pool.Stop(freeStopSolved)
				return
			}
			if s.opts.ImproveSteps > 0 && e.steps.Load()-e.solAt.Load() >= int64(s.opts.ImproveSteps) {
				e.pool.Stop(freeStopSolved)
				return
			}
		} else if s.opts.MaxSteps > 0 && e.ssr.Load() >= int64(s.opts.MaxSteps) {
			e.pool.Stop(freeStopRestart)
			return
		}

		n, ok := e.heaps[id].Pop()
		if !ok {
			if v := frontier.Deepest(e.heaps, id); v >= 0 {
				if n, ok = e.heaps[v].Steal(); ok {
					e.pool.NoteSteal()
					w.steals++
				}
			}
		}
		if !ok {
			if e.pool.Pending() == 0 {
				// No queued nodes anywhere and no expansion in flight:
				// the frontier is exhausted.
				e.pool.Stop(freeStopDrained)
				return
			}
			e.pool.NoteIdle()
			w.idles++
			runtime.Gosched()
			continue
		}
		e.steps.Add(1)
		e.ssr.Add(1)
		w.steps++
		if n.depth >= e.bound.Load()-1 {
			// Cannot beat the best circuit; retire without expanding.
			e.pool.AddPending(-1)
			w.c.recycle(n)
			continue
		}
		w.c.generate(n, &w.gen)
		e.commitFree(w, n, &w.gen)
		e.pool.AddPending(-1)
	}
}

// commitFree routes one expansion's generated children: admission and
// greedy pruning exactly as the sequential commit, the depth cutoff
// against the shared bound, dedup through the striped table, and pushes to
// each child's owner heap.
func (e *freeEngine) commitFree(w *freeWorker, parent *node, gr *genResult) {
	s := e.s
	childDepth := parent.depth + 1
	queueCap := e.perHeapQueueCap()
	for ti := range gr.targets {
		tg := &gr.targets[ti]
		pushed := 0
		for i := range tg.cands {
			c := &tg.cands[i]
			solutionPossible := c.terms == s.n
			inTopK := c.admit && (s.opts.GreedyK <= 0 || pushed < s.opts.GreedyK)
			if !inTopK && !solutionPossible {
				continue
			}
			bd := e.bound.Load()
			if !solutionPossible && childDepth >= bd-1 {
				continue
			}
			if e.tt != nil && e.tt.Seen(c.hash, childDepth) {
				continue
			}
			if c.identity {
				e.publishSolution(w, parent, tg.target, c, childDepth)
				continue
			}
			if !inTopK || childDepth >= bd-1 {
				continue
			}
			child := w.c.newNode()
			*child = node{
				parent:   parent,
				spec:     c.sol,
				id:       int(w.nodes),
				target:   tg.target,
				factor:   c.factor,
				depth:    childDepth,
				terms:    c.terms,
				elim:     c.elim,
				priority: c.priority,
				hash:     c.hash,
			}
			child.mem = memOf(child)
			w.nodes++
			pushed++
			if e.tt != nil {
				e.tt.Record(child.hash, childDepth)
			}
			e.pool.AddPending(1)
			h := e.ownerHeap(child.hash)
			h.Push(child, child.priority)
			if h.Len() > queueCap {
				h.PruneTo(queueCap/2, e.discard)
			}
		}
	}
}

// publishSolution races the new circuit against the global bound; the
// winner (strict improvement only) installs itself as the searcher's best
// solution under the engine mutex.
func (e *freeEngine) publishSolution(w *freeWorker, parent *node, target int, c *pcand, depth int) {
	if !e.bound.Publish(depth) {
		return
	}
	s := e.s
	sol := &node{
		parent:   parent,
		id:       int(w.nodes),
		target:   target,
		factor:   c.factor,
		depth:    depth,
		terms:    c.terms,
		elim:     c.elim,
		priority: c.priority,
		hash:     c.hash,
	}
	w.nodes++
	if e.tt != nil {
		e.tt.Record(c.hash, depth)
	}
	at := e.steps.Load()
	e.mu.Lock()
	// Publish wins are strictly-decreasing in depth, but two winners can
	// reach this lock out of order; keep the shallower.
	if s.bestSol == nil || sol.depth < s.bestSol.depth {
		s.bestSol = sol
		s.bestDepth = depth
		s.solSteps = int(at)
		e.mu.Unlock()
		e.solAt.Store(at)
		s.observeSolution(sol)
	} else {
		e.mu.Unlock()
	}
	if s.opts.FirstSolution {
		e.pool.Stop(freeStopSolved)
	}
}

// restartFree is the Section IV-E restart for the sharded frontier:
// stop-the-world (the pool has wound down), clear every shard, reset the
// table, and seed the next-best untried first move into its owner heap.
func (e *freeEngine) restartFree() bool {
	s := e.s
	if s.opts.MaxSteps <= 0 {
		return false
	}
	if s.opts.MaxRestarts > 0 && s.restarts >= s.opts.MaxRestarts {
		return false
	}
	if s.nextFirstMove >= len(s.firstMoves) {
		return false
	}
	fm := s.firstMoves[s.nextFirstMove]
	s.nextFirstMove++
	s.restarts++
	e.ssr.Store(0)
	for _, h := range e.heaps {
		h.Clear(func(*node) { e.pool.AddPending(-1) })
	}
	if e.tt != nil {
		e.tt.Reset()
		e.tt.Record(s.root.hash, 0)
	}
	cs, delta := s.root.spec.SubstituteCopy(fm.target, fm.factor)
	child := &node{
		parent: s.root,
		spec:   cs,
		id:     s.nodes,
		target: fm.target,
		factor: fm.factor,
		depth:  1,
		terms:  s.root.terms + delta,
		elim:   -delta,
		hash:   cs.Hash(),
	}
	s.nodes++
	child.priority = s.priorityOf(child)
	child.mem = memOf(child)
	if e.tt != nil {
		e.tt.Record(child.hash, 1)
	}
	e.pool.AddPending(1)
	e.ownerHeap(child.hash).Push(child, child.priority)
	return true
}
