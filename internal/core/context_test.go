package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
)

// hardSpec returns a 6-variable random function: large enough that the
// search runs for many thousands of expansions under a generous budget.
func hardSpec(t testing.TB, seed uint64) *pprm.Spec {
	t.Helper()
	p := perm.Random(6, rng.New(seed))
	spec, err := pprm.FromPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// unsolvableSpec returns a 2-variable non-reversible PPRM: no cascade can
// reduce it to the identity, so every run ends on a limit.
func unsolvableSpec(t testing.TB) *pprm.Spec {
	t.Helper()
	spec, err := pprm.Parse(2, "a' = b\nb' = b")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.TotalSteps = 1 << 30
	res := SynthesizeContext(ctx, hardSpec(t, 1), opts)
	if res.StopReason != StopCanceled {
		t.Fatalf("StopReason = %v, want %v", res.StopReason, StopCanceled)
	}
	if res.Found {
		t.Error("pre-canceled context should not find a circuit")
	}
	if res.Steps > pollStride {
		t.Errorf("pre-canceled run did %d expansions, want ≤ %d", res.Steps, pollStride)
	}
}

// TestCancellationLatencyBounded asserts the tentpole contract: after
// cancel() the search returns within pollStride further expansions. The
// cancel is issued synchronously from the trace callback, so the
// measurement has no scheduling noise.
func TestCancellationLatencyBounded(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = 500
	pops := 0
	opts := DefaultOptions()
	opts.TotalSteps = 1 << 30
	opts.ImproveSteps = 0
	opts.Trace = func(e Event) {
		if e.Kind == EventPop {
			pops++
			if pops == cancelAt {
				cancel()
			}
		}
	}
	res := SynthesizeContext(ctx, hardSpec(t, 2), opts)
	if res.StopReason != StopCanceled {
		t.Fatalf("StopReason = %v, want %v (steps=%d)", res.StopReason, StopCanceled, res.Steps)
	}
	if res.Steps > cancelAt+pollStride {
		t.Errorf("canceled at expansion %d but ran to %d; latency bound is %d",
			cancelAt, res.Steps, pollStride)
	}
	if res.Steps == 0 || res.Nodes == 0 || res.Elapsed <= 0 {
		t.Errorf("canceled Result lost its telemetry: %+v", res)
	}
}

// TestCancelReturnsBestSoFar cancels during the improvement phase and
// checks the partial result still carries the best circuit found.
func TestCancelReturnsBestSoFar(t *testing.T) {
	p := perm.Random(5, rng.New(3))
	spec, err := pprm.FromPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := DefaultOptions()
	opts.TotalSteps = 1 << 30
	opts.ImproveSteps = 0 // improve until canceled
	opts.Trace = func(e Event) {
		if e.Kind == EventSolution {
			cancel()
		}
	}
	res := SynthesizeContext(ctx, spec, opts)
	if !res.Found {
		t.Fatal("canceled run dropped its best-so-far circuit")
	}
	if res.StopReason != StopCanceled {
		t.Fatalf("StopReason = %v, want %v", res.StopReason, StopCanceled)
	}
	if err := Verify(res.Circuit, p); err != nil {
		t.Error(err)
	}
}

func TestStopReasonStepLimit(t *testing.T) {
	opts := DefaultOptions()
	opts.TotalSteps = 50
	res := Synthesize(hardSpec(t, 4), opts)
	if res.StopReason != StopStepLimit {
		t.Errorf("StopReason = %v, want %v", res.StopReason, StopStepLimit)
	}
	if res.Steps > 50 {
		t.Errorf("Steps = %d, exceeds TotalSteps", res.Steps)
	}
}

func TestStopReasonDeadline(t *testing.T) {
	opts := DefaultOptions()
	opts.TimeLimit = time.Nanosecond
	res := Synthesize(hardSpec(t, 5), opts)
	if res.StopReason != StopDeadline {
		t.Errorf("StopReason = %v, want %v", res.StopReason, StopDeadline)
	}
	if res.Found {
		t.Error("1 ns budget should not synthesize a 6-variable function")
	}
}

func TestStopReasonSolved(t *testing.T) {
	res, err := SynthesizePerm(perm.Perm{1, 0, 3, 2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.StopReason != StopSolved {
		t.Errorf("found=%v reason=%v, want solved", res.Found, res.StopReason)
	}
	// The identity short-circuit must report the same reason.
	id, _ := SynthesizePerm(perm.Perm{0, 1, 2, 3}, DefaultOptions())
	if !id.Found || id.StopReason != StopSolved {
		t.Errorf("identity: found=%v reason=%v", id.Found, id.StopReason)
	}
}

func TestStopReasonMemoryLimit(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxSteps = 0 // no restarts: the memory stop must surface directly
	opts.MaxMemory = 256
	opts.TotalSteps = 1 << 30
	res := Synthesize(hardSpec(t, 6), opts)
	if res.StopReason != StopMemoryLimit {
		t.Fatalf("StopReason = %v, want %v", res.StopReason, StopMemoryLimit)
	}
	if res.PeakQueueBytes <= 0 {
		t.Error("PeakQueueBytes not accounted")
	}
	if res.Steps > 1000 {
		t.Errorf("a 256-byte ceiling should stop almost immediately, ran %d steps", res.Steps)
	}
}

func TestPeakQueueBytesAccounted(t *testing.T) {
	opts := DefaultOptions()
	opts.TotalSteps = 2000
	res := Synthesize(hardSpec(t, 7), opts)
	// Every queued node costs at least nodeBytes, and the root carried a
	// materialized spec, so the high-water mark must be well above zero
	// and far below anything absurd for a 2000-step run.
	if res.PeakQueueBytes < nodeBytes {
		t.Errorf("PeakQueueBytes = %d, want ≥ %d", res.PeakQueueBytes, nodeBytes)
	}
	if res.PeakQueueBytes > 1<<30 {
		t.Errorf("PeakQueueBytes = %d looks wildly over-accounted", res.PeakQueueBytes)
	}
}

// TestRecoverInternalPanic feeds the search a structurally invalid Spec
// (more declared variables than output expansions). The expansion loop
// indexes out of range; the panic must come back as an error-carrying
// Result, not kill the process.
func TestRecoverInternalPanic(t *testing.T) {
	bad := pprm.NewSpec(2)
	bad.N = 3 // lie about the width: Out has only 2 entries
	res := SynthesizeContext(context.Background(), bad, DefaultOptions())
	if res.Err == nil {
		t.Fatal("invariant panic was not converted to Result.Err")
	}
	if res.StopReason != StopInternalError {
		t.Errorf("StopReason = %v, want %v", res.StopReason, StopInternalError)
	}
	if res.Found {
		t.Error("errored run claims Found")
	}
}

func TestRecoverPanicInPortfolio(t *testing.T) {
	bad := pprm.NewSpec(2)
	bad.N = 3
	res := SynthesizePortfolio(bad, DefaultOptions(), 2)
	if res.Found {
		t.Error("portfolio found a circuit on a broken spec")
	}
	if res.Err == nil {
		t.Error("portfolio swallowed the variants' internal errors")
	}
	if res.StopReason != StopInternalError {
		t.Errorf("StopReason = %v, want %v", res.StopReason, StopInternalError)
	}
}
