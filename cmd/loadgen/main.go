// Command loadgen exercises a running rmrlsd with a stream of synthesis
// requests and reports per-class latency percentiles plus shed, retry,
// timeout, and error rates — the harness behind the service's backpressure
// acceptance check: under overload, interactive p99 stays bounded while
// excess load sheds with 429 instead of queueing unboundedly.
//
// Usage:
//
//	loadgen -addr localhost:8053 -n 200 -c 16 -batch-frac 0.5
//	loadgen -addr localhost:8053 -burst -expect-shed   # overload probe
//
// Each request is a uniformly random reversible function on -vars
// variables (seeded, so runs are reproducible) submitted with wait=true;
// -bench substitutes a named paper benchmark instead. 429/503 responses
// are retried up to -retries times honoring Retry-After; a request still
// shed after its retry budget is counted (that is the point of an overload
// probe), not an error.
//
// Every solved response is independently re-checked client-side: the
// returned cascade is parsed, re-simulated, and compared against the
// requested function, and the reported gate count is compared against the
// parsed circuit — a differential check of the server's whole pipeline
// (including serialization) that shares no state with the server's own
// verification gate. Exit status: 0 on success, 1 if any request errored,
// any response failed the client-side check, or -expect-shed saw no
// shedding.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/perm"
	"repro/internal/rng"
	"repro/internal/verify"
)

type request struct {
	Spec   specInput `json:"spec"`
	Class  string    `json:"class,omitempty"`
	Budget budget    `json:"budget,omitempty"`
	Wait   bool      `json:"wait"`
}

type specInput struct {
	Bench string `json:"bench,omitempty"`
	Perm  string `json:"perm,omitempty"`
}

type budget struct {
	TimeMillis int64 `json:"time_ms,omitempty"`
	Steps      int   `json:"steps,omitempty"`
}

// jobReply is the subset of the server's job view loadgen inspects.
type jobReply struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Result *struct {
		Found   bool   `json:"found"`
		Stop    string `json:"stop"`
		Circuit string `json:"circuit"`
		Gates   int    `json:"gates"`
	} `json:"result"`
	Error struct {
		Field   string `json:"field"`
		Message string `json:"message"`
	} `json:"error"`
}

// outcome classifies one request's final disposition.
type outcome int

const (
	outSolved outcome = iota
	outNoCircuit
	outShedOut    // still shed after all retries
	outVerifyFail // 200 whose circuit failed the client-side re-check
	outError
	numOutcomes
)

// classStats accumulates one scheduling class's results.
type classStats struct {
	latencies []time.Duration // successful (solved or budget-exhausted) requests
	counts    [numOutcomes]int
	sheds     int // 429s observed (including retried-through ones)
	retries   int
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "localhost:8053", "rmrlsd host:port")
		n         = fs.Int("n", 100, "total requests to send")
		c         = fs.Int("c", 8, "concurrent clients")
		batchFrac = fs.Float64("batch-frac", 0.5, "fraction of requests submitted as batch class")
		vars      = fs.Int("vars", 4, "variable count of the random reversible functions")
		steps     = fs.Int("steps", 50000, "per-request step budget (0 = server default)")
		timeMS    = fs.Int64("time-ms", 10000, "per-request time budget in ms (0 = server default)")
		benchName = fs.String("bench", "", "submit this named benchmark instead of random functions")
		retries   = fs.Int("retries", 3, "retry budget per request on 429/503")
		backoff   = fs.Duration("backoff", 200*time.Millisecond, "fallback retry delay when the server sends no Retry-After")
		burst     = fs.Bool("burst", false, "fire every request at once (ignore -c) to probe shedding")
		seed      = fs.Uint64("seed", 1, "random-function seed (reproducible workloads)")
		expShed   = fs.Bool("expect-shed", false, "exit 1 unless at least one request was shed with 429")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// Pre-generate the workload so the generator RNG is outside the timed
	// region and identical seeds give identical request streams.
	type workItem struct {
		body  []byte
		class string
		want  perm.Perm // expected function for the client-side re-check (nil = skip)
		wires int
	}
	// A bench workload checks every response against the benchmark's own
	// tabulated function; random workloads against the submitted permutation.
	var benchWant perm.Perm
	benchWires := 0
	if *benchName != "" {
		if b, err := bench.ByName(*benchName); err == nil {
			benchWant, benchWires = b.Spec, b.Wires
		}
	}
	src := rng.New(*seed)
	work := make([]workItem, *n)
	for i := range work {
		req := request{Wait: true, Budget: budget{TimeMillis: *timeMS, Steps: *steps}}
		if i < int(float64(*n)**batchFrac) {
			req.Class = "batch"
		}
		item := workItem{want: benchWant, wires: benchWires}
		if *benchName != "" {
			req.Spec.Bench = *benchName
		} else {
			p := perm.Random(*vars, src)
			req.Spec.Perm = p.String()
			item.want, item.wires = p, *vars
		}
		b, err := json.Marshal(&req)
		if err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return 1
		}
		item.body, item.class = b, req.Class
		work[i] = item
	}

	url := "http://" + *addr + "/v1/jobs"
	client := &http.Client{Timeout: time.Duration(*timeMS)*time.Millisecond + 30*time.Second}

	workers := *c
	if *burst {
		workers = *n
	}
	if workers > *n {
		workers = *n
	}

	var mu sync.Mutex
	stats := map[string]*classStats{
		"interactive": {},
		"batch":       {},
	}

	record := func(class string, o outcome, lat time.Duration, sheds, retried int) {
		if class == "" {
			class = "interactive"
		}
		mu.Lock()
		defer mu.Unlock()
		st := stats[class]
		st.counts[o]++
		st.sheds += sheds
		st.retries += retried
		if o == outSolved || o == outNoCircuit {
			st.latencies = append(st.latencies, lat)
		}
	}

	next := make(chan workItem)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range next {
				o, lat, sheds, retried := send(client, url, item.body, item.want, item.wires, *retries, *backoff, stderr)
				record(item.class, o, lat, sheds, retried)
			}
		}()
	}
	for _, item := range work {
		next <- item
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	failed := report(stdout, stats, elapsed)
	totalSheds := stats["interactive"].sheds + stats["batch"].sheds
	if *expShed && totalSheds == 0 {
		fmt.Fprintln(stderr, "loadgen: expected shedding but saw no 429s")
		return 1
	}
	if failed {
		return 1
	}
	return 0
}

// send submits one request, retrying through 429/503 with the server's
// Retry-After hint. Returns the outcome, end-to-end latency (including
// retry waits — that is the latency the client experienced), the number of
// 429s seen, and the number of retries spent. Solved responses are
// re-verified client-side against want (when non-nil and tabulable).
func send(client *http.Client, url string, body []byte, want perm.Perm, wires int, retries int, backoff time.Duration, stderr io.Writer) (outcome, time.Duration, int, int) {
	start := time.Now()
	sheds, retried := 0, 0
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return outError, time.Since(start), sheds, retried
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()

		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted, http.StatusUnprocessableEntity:
			var jr jobReply
			if err := json.Unmarshal(data, &jr); err != nil {
				fmt.Fprintln(stderr, "loadgen: bad response:", err)
				return outError, time.Since(start), sheds, retried
			}
			if jr.Result != nil && jr.Result.Found {
				if want != nil && verify.Feasible(wires) && !verifyReply(&jr, want, wires, stderr) {
					return outVerifyFail, time.Since(start), sheds, retried
				}
				return outSolved, time.Since(start), sheds, retried
			}
			return outNoCircuit, time.Since(start), sheds, retried
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if resp.StatusCode == http.StatusTooManyRequests {
				sheds++
			}
			if attempt >= retries {
				if resp.StatusCode == http.StatusTooManyRequests {
					return outShedOut, time.Since(start), sheds, retried
				}
				return outError, time.Since(start), sheds, retried
			}
			retried++
			time.Sleep(retryDelay(resp, backoff))
		default:
			fmt.Fprintf(stderr, "loadgen: HTTP %d: %s\n", resp.StatusCode, bytes.TrimSpace(data))
			return outError, time.Since(start), sheds, retried
		}
	}
}

// verifyReply re-simulates the returned cascade and checks it realizes the
// requested function, and that the reported gate count matches the parsed
// circuit. This is the client half of the differential check: it consumes
// only what came over the wire, so a serialization bug, a wrong-but-
// "verified" server answer, or a gate-count lie all surface here.
func verifyReply(jr *jobReply, want perm.Perm, wires int, stderr io.Writer) bool {
	var c *circuit.Circuit
	if jr.Result.Gates == 0 {
		// The empty cascade renders as "(identity)", which the parser
		// (by design) does not accept; it realizes the identity.
		c = circuit.New(wires)
	} else {
		var err error
		c, err = circuit.Parse(wires, jr.Result.Circuit)
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: job %s: unparseable circuit %q: %v\n", jr.ID, jr.Result.Circuit, err)
			return false
		}
	}
	if c.Len() != jr.Result.Gates {
		fmt.Fprintf(stderr, "loadgen: job %s: reported gates=%d but returned circuit has %d\n",
			jr.ID, jr.Result.Gates, c.Len())
		return false
	}
	got, verr := verify.Simulate(verify.StageClient, c)
	if verr != nil {
		fmt.Fprintf(stderr, "loadgen: job %s: %v\n", jr.ID, verr)
		return false
	}
	if !got.Equal(want) {
		fmt.Fprintf(stderr, "loadgen: job %s: returned circuit does not realize the requested function\n", jr.ID)
		return false
	}
	return true
}

// retryDelay honors the server's Retry-After hint, falling back to the
// client-side backoff when absent or unparsable.
func retryDelay(resp *http.Response, fallback time.Duration) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

// percentile picks the p-quantile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Floor(p * (float64(n) - 0.51)))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// report prints the per-class summary and returns whether any request
// ultimately failed (errors or client-side verification failures).
func report(w io.Writer, stats map[string]*classStats, elapsed time.Duration) bool {
	failed := false
	total := 0
	for _, class := range []string{"interactive", "batch"} {
		st := stats[class]
		sent := 0
		for _, c := range st.counts {
			sent += c
		}
		total += sent
		if sent == 0 {
			continue
		}
		sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
		fmt.Fprintf(w, "%-11s  sent=%-4d solved=%-4d nocircuit=%-3d shed=%-3d verifyfail=%-3d errors=%-3d retries=%-3d\n",
			class, sent, st.counts[outSolved], st.counts[outNoCircuit],
			st.counts[outShedOut], st.counts[outVerifyFail], st.counts[outError], st.retries)
		if len(st.latencies) > 0 {
			fmt.Fprintf(w, "%-11s  p50=%v p90=%v p99=%v\n", class,
				percentile(st.latencies, 0.50).Round(time.Millisecond),
				percentile(st.latencies, 0.90).Round(time.Millisecond),
				percentile(st.latencies, 0.99).Round(time.Millisecond))
		}
		if st.counts[outError] > 0 || st.counts[outVerifyFail] > 0 {
			failed = true
		}
	}
	if elapsed > 0 && total > 0 {
		fmt.Fprintf(w, "total        %d requests in %v (%.1f req/s)\n",
			total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	}
	return failed
}
