// Differential and metamorphic fuzz targets for the verification oracle.
// External test package: these targets drive the real synthesis engine
// (internal/core) and the transformation-based baseline (internal/mmd)
// against the oracle, which the in-package tests cannot do without an
// import cycle (core imports verify).
//
// `go test` exercises the seed corpus; CI runs a short `-fuzz` smoke on
// each target; `go test -fuzz=FuzzVerifyX` explores further locally.
package verify_test

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mmd"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/rng"
	"repro/internal/tt"
	"repro/internal/verify"
)

// fuzzOptions is a deliberately small budget: fuzzing wants many cheap
// iterations, and an unsolved sample is simply skipped.
func fuzzOptions() core.Options {
	opts := core.DefaultOptions()
	opts.FirstSolution = true
	opts.TotalSteps = 20000
	return opts
}

// FuzzVerifySynthesizeRandomPerm: every circuit the engine hands back for a
// random permutation must pass the independent gate (Result.Verified) and
// re-simulate to exactly that permutation.
func FuzzVerifySynthesizeRandomPerm(f *testing.F) {
	f.Add(3, uint64(1))
	f.Add(4, uint64(7))
	f.Add(5, uint64(42))
	f.Fuzz(func(t *testing.T, n int, seed uint64) {
		if n < 1 || n > 5 {
			return
		}
		p := perm.Random(n, rng.New(seed))
		res, err := core.SynthesizePerm(p, fuzzOptions())
		if err != nil {
			t.Fatalf("SynthesizePerm(%v): %v", p, err)
		}
		if !res.Found {
			return
		}
		if !res.Verified {
			t.Fatalf("engine returned an unverified circuit for %d vars seed %d", n, seed)
		}
		if err := verify.Circuit(verify.StageSearch, res.Circuit, p); err != nil {
			t.Fatalf("independent re-check rejected the engine's circuit: %v", err)
		}
	})
}

// FuzzVerifyPLA: embed a random incompletely-specified function, synthesize
// the embedding, and check the circuit against the original partial table on
// every cared bit — the end-to-end PLA path with the don't-care-aware check.
func FuzzVerifyPLA(f *testing.F) {
	f.Add(2, 2, uint64(1))
	f.Add(3, 1, uint64(9))
	f.Add(3, 2, uint64(5))
	f.Fuzz(func(t *testing.T, inputs, outputs int, seed uint64) {
		if inputs < 1 || inputs > 3 || outputs < 1 || outputs > 3 {
			return
		}
		src := rng.New(seed)
		size := 1 << uint(inputs)
		outMask := uint32(1)<<uint(outputs) - 1
		pt := &tt.PartialTable{Inputs: inputs, Outputs: outputs,
			Rows: make([]uint32, size), Care: make([]uint32, size)}
		for x := 0; x < size; x++ {
			pt.Care[x] = uint32(src.Uint64()) & outMask
			pt.Rows[x] = uint32(src.Uint64()) & pt.Care[x]
		}
		if err := pt.Validate(); err != nil {
			t.Fatalf("generated an invalid partial table: %v", err)
		}
		emb, _, err := tt.EmbedPartial(pt, 4, seed)
		if err != nil {
			t.Fatalf("EmbedPartial: %v", err)
		}
		spec, err := pprm.FromPerm(perm.Perm(emb.Spec))
		if err != nil {
			t.Fatalf("FromPerm on embedding: %v", err)
		}
		res := core.Synthesize(spec, fuzzOptions())
		if !res.Found {
			return
		}
		if !res.Verified {
			t.Fatalf("engine returned an unverified circuit for the embedding")
		}
		if err := verify.PLA(verify.StageEmbed, res.Circuit, emb, pt); err != nil {
			t.Fatalf("circuit violates a cared bit of the source PLA: %v", err)
		}
	})
}

// FuzzVerifyRelabelMetamorphic pins the relabeling equivalence the oracle's
// helpers promise: renaming the wires of a cascade conjugates its realized
// permutation by the same wire map.
func FuzzVerifyRelabelMetamorphic(f *testing.F) {
	f.Add(3, 5, uint64(1), uint64(2))
	f.Add(4, 8, uint64(3), uint64(4))
	f.Add(5, 12, uint64(5), uint64(6))
	f.Fuzz(func(t *testing.T, n, gates int, circuitSeed, mapSeed uint64) {
		if n < 1 || n > 6 || gates < 1 || gates > 20 {
			return
		}
		c := circuit.Random(n, gates, circuit.GT, rng.New(circuitSeed))
		m := rng.New(mapSeed).Perm(n)

		rc, err := verify.RelabelCircuit(c, m)
		if err != nil {
			t.Fatalf("RelabelCircuit(%v): %v", m, err)
		}
		p, verr := verify.Simulate(verify.StageSearch, c)
		if verr != nil {
			t.Fatalf("Simulate(original): %v", verr)
		}
		rp, err := verify.RelabelPerm(p, m)
		if err != nil {
			t.Fatalf("RelabelPerm(%v): %v", m, err)
		}
		got, verr := verify.Simulate(verify.StageSearch, rc)
		if verr != nil {
			t.Fatalf("Simulate(relabeled): %v", verr)
		}
		if !got.Equal(rp) {
			t.Fatalf("relabeled cascade realizes %v, conjugated permutation is %v (map %v)", got, rp, m)
		}
	})
}

// FuzzVerifyMMDDifferential: two independent synthesizers (RMRLS search and
// the MMD transformation baseline) must both produce circuits the oracle
// accepts for the same random function — a differential check with no shared
// synthesis code between the two producers.
func FuzzVerifyMMDDifferential(f *testing.F) {
	f.Add(3, uint64(1))
	f.Add(4, uint64(11))
	f.Add(5, uint64(23))
	f.Fuzz(func(t *testing.T, n int, seed uint64) {
		if n < 1 || n > 5 {
			return
		}
		p := perm.Random(n, rng.New(seed))
		uni := mmd.Synthesize(p, mmd.Unidirectional)
		if err := verify.Circuit(verify.StageSearch, uni, p); err != nil {
			t.Fatalf("oracle rejects the unidirectional MMD circuit: %v", err)
		}
		bi := mmd.Synthesize(p, mmd.Bidirectional)
		if err := verify.Circuit(verify.StageSearch, bi, p); err != nil {
			t.Fatalf("oracle rejects the bidirectional MMD circuit: %v", err)
		}
		res, err := core.SynthesizePerm(p, fuzzOptions())
		if err != nil {
			t.Fatalf("SynthesizePerm(%v): %v", p, err)
		}
		if !res.Found {
			return
		}
		// Both producers solved the same function: their circuits must
		// realize the same permutation even though they share no code.
		rmrlsPerm, verr := verify.Simulate(verify.StageSearch, res.Circuit)
		if verr != nil {
			t.Fatalf("Simulate(rmrls circuit): %v", verr)
		}
		mmdPerm, verr := verify.Simulate(verify.StageSearch, uni)
		if verr != nil {
			t.Fatalf("Simulate(mmd circuit): %v", verr)
		}
		if !rmrlsPerm.Equal(mmdPerm) {
			t.Fatalf("rmrls and mmd disagree on seed %d: %v vs %v", seed, rmrlsPerm, mmdPerm)
		}
	})
}
