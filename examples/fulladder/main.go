// Fulladder: reproduce Section II-A of the paper end to end — take the
// irreversible augmented full-adder (carry, sum, propagate; Fig. 2(a)),
// lift it to a reversible specification by adding garbage outputs and a
// constant input, and synthesize it (the paper's Example 8 / Fig. 8).
package main

import (
	"fmt"
	"log"

	rmrls "repro"
)

func main() {
	// The augmented full-adder: 3 inputs (a, b, cin), 3 outputs
	// (propagate, sum, carry — output 0 is the LSB).
	adder := &rmrls.TruthTable{Inputs: 3, Outputs: 3, Rows: make([]uint32, 8)}
	for x := uint32(0); x < 8; x++ {
		a, b, cin := x&1, x>>1&1, x>>2&1
		prop := a ^ b
		sum := a ^ b ^ cin
		carry := a&b | b&cin | a&cin
		adder.Rows[x] = carry<<2 | sum<<1 | prop
	}

	// Two output rows repeat (the † rows of Fig. 2(a)), so one garbage
	// output and one constant input are required.
	emb, err := rmrls.Embed(adder)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedding: %d wires, %d garbage output(s), %d constant input(s)\n",
		emb.Wires, emb.GarbageOutputs, emb.ConstantInputs)

	spec := rmrls.Perm(emb.Spec)
	res, err := rmrls.Synthesize(spec, rmrls.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatal("no circuit found")
	}
	fmt.Printf("circuit: %s\n", res.Circuit)
	fmt.Printf("gates: %d (paper's Example 8 circuit: 4)   quantum cost: %d\n",
		res.Circuit.Len(), res.Circuit.QuantumCost())
	if err := rmrls.Verify(res.Circuit, spec); err != nil {
		log.Fatal(err)
	}

	// Drive the synthesized circuit as a full adder: constant input 0,
	// original outputs extracted from their wires.
	fmt.Println("\n a b cin | carry sum prop")
	for x := uint32(0); x < 8; x++ {
		y := emb.OriginalOutput(res.Circuit.Apply(x))
		fmt.Printf(" %d %d  %d  |   %d    %d    %d\n",
			x&1, x>>1&1, x>>2&1, y>>2&1, y>>1&1, y&1)
	}
}
