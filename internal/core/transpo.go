package core

// transpo is the search's transposition table: a map from 64-bit PPRM state
// hashes (pprm.Spec.Hash) to the shallowest search depth at which that
// state has been queued or solved. The RMRLS search tree re-derives the
// same expansion along many substitution orders — applying b=b⊕ac then
// c=c⊕ab reaches the same state as the reverse — and without the table
// every rediscovery costs a full child scoring, clone, and queue insert.
//
// The replacement policy is depth-aware: an entry records the *minimum*
// depth seen, a probe at depth ≥ the stored depth is a hit (the duplicate
// is pruned), and a shallower rediscovery misses, superseding the entry
// when it is enqueued. A shallower path to a state can only shorten every
// circuit through it, so pruning the deeper duplicates can never force a
// longer result; the reverse replacement would.
//
// Soundness against "blocked forever" states is maintained by the callers:
// states are recorded when their node is enqueued (or proves to be a
// solution), forgotten again when a queued-but-unexpanded node is pruned
// by the queue/memory caps (forget), and the whole table is dropped on a
// restart (reset) — the restart heuristic exists precisely to re-explore
// from a different first move, so stale "visited" marks from the abandoned
// frontier must not survive it.
//
// Hash collisions (two distinct states sharing all 64 bits) would prune a
// genuinely new state; with m distinct states recorded the probability of
// any collision is ≈ m²/2⁶⁵ — about 10⁻⁸ for the million-entry default
// table — and every reported circuit is verified by simulation regardless.
type transpo struct {
	entries   map[uint64]int32
	limit     int // maximum entries; exceeding it clears the table
	hits      int64
	misses    int64
	evictions int64
}

// ttEntryBytes approximates the resident cost of one table entry for the
// Options.MaxMemory accounting: 12 bytes of key+value rounded up to Go map
// bucket overhead. Coarse on purpose, like the node estimates (see memOf).
const ttEntryBytes = 32

func newTranspo(limit int) *transpo {
	return &transpo{entries: make(map[uint64]int32), limit: limit}
}

// seen probes the table: it reports whether state h has already been
// reached at depth ≤ depth, counting the probe as a hit or miss. It never
// modifies the table — recording is the caller's decision (a probed child
// can still be discarded by greedy-k or admission pruning, and recording
// those would block their later rediscovery forever).
func (t *transpo) seen(h uint64, depth int) bool {
	if d, ok := t.entries[h]; ok && int(d) <= depth {
		t.hits++
		return true
	}
	t.misses++
	return false
}

// record stores state h at the given depth, keeping the shallower of the
// new and existing depths. When the table is full it is cleared wholesale
// (generation reset, counted as evictions) rather than evicting piecemeal:
// the search's value is concentrated in recent states, and a cleared
// table only costs re-exploration, never correctness.
func (t *transpo) record(h uint64, depth int) {
	d, ok := t.entries[h]
	if ok {
		if int32(depth) < d {
			t.entries[h] = int32(depth)
		}
		return
	}
	if len(t.entries) >= t.limit {
		t.evictions += int64(len(t.entries))
		clear(t.entries)
	}
	t.entries[h] = int32(depth)
}

// forget removes the entry for state h, but only if it still records
// exactly the given depth — a shallower duplicate enqueued later must keep
// its (shallower) mark even when the deeper node that first recorded the
// state is pruned.
func (t *transpo) forget(h uint64, depth int) {
	if d, ok := t.entries[h]; ok && d == int32(depth) {
		delete(t.entries, h)
	}
}

// reset drops every entry (restart or memory-pressure escalation), counting
// them as evictions.
func (t *transpo) reset() {
	t.evictions += int64(len(t.entries))
	clear(t.entries)
}

// bytes is the table's contribution to the MaxMemory estimate.
func (t *transpo) bytes() int64 {
	return int64(len(t.entries)) * ttEntryBytes
}
