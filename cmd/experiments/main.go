// Command experiments regenerates every table and figure of the paper's
// evaluation (Section V). Each subcommand reproduces one artifact; "all"
// runs the full suite with default sizes (scaled down from the paper's
// counts; raise -samples/-pervar for the full-size runs).
//
// A long sweep can be interrupted (Ctrl-C / SIGTERM): the in-flight
// synthesis is canceled, completed rows are rendered, and failed rows
// report the stop reason that ended them.
//
// Usage:
//
//	experiments table1 [-samples N] [-full]
//	experiments table2 [-samples N]
//	experiments table3 [-samples N]
//	experiments table4 [-time D] [-only name,name]
//	experiments table5|table6|table7 [-pervar N] [-checkpoint-dir D]
//	experiments examples
//	experiments fig5
//	experiments searchbench [-samples N] [-steps N]
//	experiments all [-out dir]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/exp"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	dispatch(ctx, os.Args[1], os.Args[2:])
}

func dispatch(ctx context.Context, cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		samples = fs.Int("samples", 0, "sample count (0 = subcommand default)")
		full    = fs.Bool("full", false, "table1: enumerate all 40320 functions")
		perVar  = fs.Int("pervar", 0, "tables 5-7: samples per variable count")
		seed    = fs.Uint64("seed", 2026, "workload seed")
		timeLim = fs.Duration("time", 60*time.Second, "table4: per-benchmark time limit")
		steps   = fs.Int("steps", 0, "deterministic per-function step budget override")
		only    = fs.String("only", "", "table4: comma-separated benchmark names")
		ckptDir = fs.String("checkpoint-dir", "", "tables 5-7: make the sweep interruptible — progress ledger + in-flight search checkpoint in this directory; rerun with the same flags to continue")

		progress     = fs.Bool("progress", false, "tables 5-7: live single-line progress display on stderr")
		metricsJSON  = fs.String("metrics-json", "", "tables 5-7: append periodic JSON-lines progress snapshots to this file")
		metricsAddr  = fs.String("metrics-addr", "", "tables 5-7: serve /debug/vars (expvar) and /debug/pprof on this host:port")
		metricsEvery = fs.Duration("metrics-interval", obs.DefaultInterval, "progress snapshot cadence")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	w := os.Stdout
	switch cmd {
	case "table1":
		n := *samples
		if *full {
			n = 0
		} else if n == 0 {
			n = 4000
		}
		fmt.Fprintf(w, "== Table I: all 3-variable reversible functions (NCT) ==\n")
		exp.Table1(ctx, exp.Table1Config{Samples: n, Seed: *seed, TotalSteps: *steps}).Write(w)

	case "table2":
		n := defaultInt(*samples, 1000)
		fmt.Fprintf(w, "== Table II: random 4-variable reversible functions (paper: 50000 samples) ==\n")
		cfg := exp.Table2Config(n, *seed)
		if *steps > 0 {
			cfg.TotalSteps = *steps
		}
		exp.RandomFunctions(ctx, cfg).Write(w)

	case "table3":
		n := defaultInt(*samples, 150)
		fmt.Fprintf(w, "== Table III: random 5-variable reversible functions (paper: 3000 samples) ==\n")
		cfg := exp.Table3Config(n, *seed)
		if *steps > 0 {
			cfg.TotalSteps = *steps
		}
		exp.RandomFunctions(ctx, cfg).Write(w)

	case "table4":
		fmt.Fprintf(w, "== Table IV: reversible logic benchmarks ==\n")
		cfg := exp.BenchmarkConfig{TimeLimit: *timeLim, TotalSteps: *steps}
		if *only != "" {
			cfg.Only = strings.Split(*only, ",")
		}
		exp.Benchmarks(ctx, cfg).Write(w)

	case "extended":
		fmt.Fprintf(w, "== Extended families (hwb#, rd#, #sym; not tabulated in the paper) ==\n")
		cfg := exp.BenchmarkConfig{TimeLimit: *timeLim, TotalSteps: *steps}
		exp.Extended(ctx, cfg).Write(w)

	case "table5", "table6", "table7":
		var cfg exp.ScalabilityConfig
		switch cmd {
		case "table5":
			cfg = exp.TableVConfig(defaultInt(*perVar, 50), *seed)
			fmt.Fprintf(w, "== Table V: random circuits, max 15 gates (paper: 500/var) ==\n")
		case "table6":
			cfg = exp.TableVIConfig(defaultInt(*perVar, 60), *seed)
			fmt.Fprintf(w, "== Table VI: random circuits, max 20 gates (paper: 1000/var) ==\n")
		default:
			cfg = exp.TableVIIConfig(defaultInt(*perVar, 60), *seed)
			fmt.Fprintf(w, "== Table VII: random circuits, max 25 gates (paper: 1000/var) ==\n")
		}
		if *steps > 0 {
			cfg.TotalSteps = *steps
		}
		cfg.CheckpointDir = *ckptDir
		pipeOpts := obs.PipelineOptions{
			Progress: *progress,
			JSONPath: *metricsJSON,
			Addr:     *metricsAddr,
			Interval: *metricsEvery,
		}
		var pipe *obs.Pipeline
		if pipeOpts.Enabled() {
			cfg.Observe = obs.NewRun(cmd)
			var err error
			pipe, err = obs.StartPipeline(cfg.Observe, pipeOpts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if addr := pipe.Addr(); addr != "" {
				fmt.Fprintf(os.Stderr, "# metrics: http://%s/debug/vars and /debug/pprof\n", addr)
			}
			defer pipe.Stop()
		}
		res := exp.Scalability(ctx, cfg)
		pipe.Stop() // release the progress line before rendering the table
		res.Write(w)

	case "examples":
		fmt.Fprintf(w, "== Section V-C worked examples (Figs. 3(d), 7, 8) ==\n")
		exp.WriteExamples(w, exp.Examples(ctx, defaultInt(*steps, 400000)))

	case "fig5":
		fmt.Fprintf(w, "== Fig. 5: search-tree walkthrough on the Fig. 1 function ==\n")
		if err := exp.Fig5(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

	case "searchbench":
		fmt.Fprintf(w, "== Search benchmark trajectory (transposition table off vs on) ==\n")
		cfg := bench.SearchBenchConfig{Seed: *seed, TotalSteps: *steps}
		if *samples > 0 {
			cfg.Table1Sample = *samples
		}
		report, err := bench.RunSearchBench(ctx, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exp.WriteSearchBench(w, report)

	case "all":
		for _, sub := range []string{"fig5", "examples", "table1", "table2",
			"table3", "table4", "table5", "table6", "table7", "extended"} {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "experiments: interrupted, skipping remaining subcommands\n")
				break
			}
			fmt.Fprintf(w, "\n")
			dispatch(ctx, sub, nil)
		}

	default:
		usage()
	}
}

func defaultInt(v, dflt int) int {
	if v > 0 {
		return v
	}
	return dflt
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments <table1|table2|table3|table4|table5|table6|table7|examples|extended|fig5|searchbench|all> [flags]`)
	os.Exit(2)
}
