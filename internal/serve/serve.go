// Package serve wraps the RMRLS engine in the robustness machinery of a
// network synthesis service — the layer cmd/rmrlsd is a thin shell around.
//
// The design goals, in priority order, are the ones a synthesis service
// breaks first under load:
//
//   - Bounded everything. The job queue has a per-class capacity and sheds
//     with 429 + Retry-After when full; every request's budgets (time,
//     steps, memory, gates) are clamped against server-wide ceilings
//     (core.BudgetCeiling) so no single request can starve the worker pool;
//     request bodies are size-capped before they are parsed.
//   - Validate before enqueue. A malformed permutation, truth table, or
//     PPRM expansion is rejected with a field- and line-precise 400 at
//     submit time, never after it has consumed a queue slot.
//   - Idempotent retries. Every job is keyed by a hash of its compiled
//     specification, decision-shaping options, budgets, and class; a client
//     retry (or two clients asking for the same function) joins the
//     existing job instead of running it twice.
//   - Survive crashes and restarts. Graceful drain stops intake, cancels
//     in-flight searches so they flush a final checkpoint through
//     internal/snapshot, and persists a ledger of unfinished jobs; the next
//     start re-enqueues them, resuming checkpointed searches exactly where
//     they stopped (byte-identical results, courtesy of the core resume
//     determinism machinery). Damage anywhere degrades to a fresh run,
//     never a failed start.
//   - Observable per job. Each job owns an obs.Run; clients stream its
//     progress snapshots as JSON lines while the search runs.
//
// The worker pool runs core.SynthesizeContext with panic isolation (core
// already converts internal panics into error-carrying Results; the pool
// adds a second recover around the pluggable runner seam) and per-job
// deadlines enforced both by the engine's own TimeLimit and by a context
// deadline, so even a misbehaving runner cannot wedge a worker forever.
package serve
