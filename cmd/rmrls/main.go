// Command rmrls synthesizes reversible functions into Toffoli-gate
// cascades using the Reed–Muller reversible logic synthesis algorithm.
//
// Usage:
//
//	rmrls [flags] '{1, 0, 7, 2, 3, 4, 5, 6}'   # permutation specification
//	rmrls [flags] -pprm -n 3 spec.pprm          # PPRM file, one output per line
//	rmrls [flags] -bench rd53                   # a named paper benchmark
//
// The output is the synthesized cascade in the paper's notation, its gate
// count and quantum cost, and (where feasible) a simulation-based
// verification verdict.
//
// Interrupting a run (Ctrl-C / SIGTERM) cancels the search gracefully: the
// best-so-far circuit is printed together with the stop reason, and the
// exit status reflects whether any circuit was found. With -checkpoint the
// interrupted state is flushed to disk first, and -resume continues it in a
// later invocation exactly where it left off (see docs/OPERATIONS.md). A
// second interrupt forces immediate exit with status 130; the atomic
// checkpoint protocol guarantees the file on disk is still a complete,
// usable snapshot (the previous one, if the forced exit cut a write short).
// Exit codes: 0 a circuit was printed; 1 bad usage or input; 2 no circuit
// found within the limits; 3 verification failure; 130 forced interrupt.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/bits"
	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/fredkin"
	"repro/internal/mmd"
	"repro/internal/obs"
	"repro/internal/peephole"
	"repro/internal/perm"
	"repro/internal/pprm"
	"repro/internal/tt"
	"repro/internal/verify"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go handleSignals(sig, cancel, os.Stderr, os.Exit)
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// handleSignals implements the two-stage interrupt protocol: the first
// signal cancels the synthesis context — the search stops at the next poll,
// flushes a final checkpoint if one is configured, and the best-so-far
// circuit is printed — and the second forces the process down with the
// conventional 128+SIGINT exit status for an interrupted command.
func handleSignals(sig <-chan os.Signal, cancel context.CancelFunc, stderr io.Writer, exit func(int)) {
	<-sig
	cancel()
	fmt.Fprintln(stderr, "rmrls: interrupt — stopping gracefully (interrupt again to force exit)")
	<-sig
	exit(130)
}

// run is main's testable body: it parses args, synthesizes, and returns
// the process exit code instead of calling os.Exit.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rmrls", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName = fs.String("bench", "", "synthesize a named paper benchmark (see -list)")
		list      = fs.Bool("list", false, "list available benchmark names and exit")
		isPPRM    = fs.Bool("pprm", false, "treat the argument as a PPRM file instead of a permutation")
		isPLA     = fs.Bool("pla", false, "treat the argument as a PLA truth-table file (don't-cares allowed); the function is embedded before synthesis")
		vars      = fs.Int("n", 0, "variable count (required with -pprm)")
		timeLimit = fs.Duration("time", 30*time.Second, "synthesis time limit")
		steps     = fs.Int("steps", 0, "deterministic step limit (0 = none)")
		maxGates  = fs.Int("maxgates", 0, "maximum circuit size (0 = automatic)")
		memMB     = fs.Int64("mem", 768, "memory ceiling for queued search nodes, in MiB (0 = unlimited; paper: 768)")
		greedyK   = fs.Int("k", 4, "greedy pruning width (0 = keep all substitutions)")
		basic     = fs.Bool("basic", false, "use the basic algorithm (no heuristics)")
		nodedup   = fs.Bool("nodedup", false, "disable the transposition-table search deduplication")
		library   = fs.String("library", "gt", "gate library: gt or nct")
		first     = fs.Bool("first", false, "stop at the first solution found")
		workers   = fs.Int("workers", 0, "parallel search workers (0 = sequential engine)")
		free      = fs.Bool("free", false, "with -workers, use the free-running work-stealing engine: faster, but runs are not reproducible (incompatible with -checkpoint and -trace)")
		simplify  = fs.Bool("simplify", false, "apply peephole simplification to the result")
		peep      = fs.Bool("peephole", false, "apply the window-resynthesis peephole optimizer to the result")
		lower     = fs.Bool("lower", false, "lower the result to the NCT library (ancilla-free Toffoli decomposition)")
		noverify  = fs.Bool("noverify", false, "skip the independent result verification gate (not recommended)")
		baseline  = fs.Bool("mmd", false, "also run the transformation-based baseline")
		portfolio = fs.Bool("portfolio", false, "run the parallel search portfolio + tightening (slower, better circuits)")
		cacheDir  = fs.String("cache-dir", "", "persistent canonical-form answer cache directory; repeated or relabeled requests are answered from it without a search")
		ckptPath  = fs.String("checkpoint", "", "periodically save the search state to this file (crash-safe atomic writes)")
		ckptEvery = fs.Duration("checkpoint-interval", 30*time.Second, "wall-clock interval between periodic checkpoints")
		resume    = fs.Bool("resume", false, "continue from the -checkpoint file if it holds a usable snapshot (falls back to a fresh start)")
		fredkinF  = fs.Bool("fredkin", false, "report the mixed Fredkin/Toffoli form of the result")
		diagram   = fs.Bool("diagram", false, "draw the circuit")
		trace     = fs.Bool("trace", false, "print the search trace (pops/pushes/solutions)")
		quiet     = fs.Bool("q", false, "print only the circuit")

		progress     = fs.Bool("progress", false, "show a live single-line progress display on stderr")
		metricsJSON  = fs.String("metrics-json", "", "append periodic JSON-lines progress snapshots to this file")
		metricsAddr  = fs.String("metrics-addr", "", "serve /debug/vars (expvar) and /debug/pprof on this host:port")
		metricsEvery = fs.Duration("metrics-interval", obs.DefaultInterval, "progress snapshot cadence")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *list {
		for _, b := range bench.All() {
			fmt.Fprintf(stdout, "%-12s %2d wires  %s\n", b.Name, b.Wires, b.Description)
		}
		return 0
	}

	spec, p, pla, err := loadSpec(*benchName, *isPPRM, *isPLA, *vars, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "rmrls:", err)
		return 1
	}

	opts := core.DefaultOptions()
	if *basic {
		opts = core.BasicOptions()
	}
	opts.SkipVerify = *noverify
	opts.TimeLimit = *timeLimit
	opts.TotalSteps = *steps
	opts.MaxGates = *maxGates
	opts.MaxMemory = *memMB << 20
	opts.GreedyK = *greedyK
	opts.FirstSolution = *first
	opts.Workers = *workers
	opts.FreeRunning = *free
	if *free && *workers <= 1 {
		fmt.Fprintln(stderr, "rmrls: -free requires -workers >= 2")
		return 1
	}
	if *free && *ckptPath != "" {
		// Options would silently fall back to det-merge here; the CLI is
		// explicit so the user knows which engine they are getting.
		fmt.Fprintln(stderr, "rmrls: -free cannot be combined with -checkpoint (free-running runs are not resumable; drop -free to checkpoint a parallel search)")
		return 1
	}
	if *nodedup {
		opts.Dedup = false
	}
	switch strings.ToLower(*library) {
	case "gt":
	case "nct":
		opts.Library = circuit.NCT
	default:
		fmt.Fprintf(stderr, "rmrls: unknown library %q\n", *library)
		return 1
	}
	if *trace {
		if *free {
			// The free-running engine pops from per-worker heaps
			// concurrently; an interleaved event stream would be misleading
			// and the engine disables it. Refuse rather than surprise.
			fmt.Fprintln(stderr, "rmrls: -trace cannot be combined with -free (events interleave arbitrarily; use det-merge -workers without -free)")
			return 1
		}
		opts.Trace = func(e core.Event) { printEvent(stdout, e) }
	}
	if *resume && *ckptPath == "" {
		fmt.Fprintln(stderr, "rmrls: -resume requires -checkpoint")
		return 1
	}
	if *portfolio && *ckptPath != "" {
		// The portfolio runs several differently-configured searches; a
		// single-searcher snapshot cannot represent it.
		fmt.Fprintln(stderr, "rmrls: -checkpoint/-resume cannot be combined with -portfolio")
		return 1
	}
	if *cacheDir != "" {
		ac, err := cache.Open(*cacheDir, nil)
		if err != nil {
			// The cache is an accelerator, not a dependency: an unusable
			// directory sheds the feature and the synthesis proceeds.
			fmt.Fprintf(stdout, "# cache: disabled (%v)\n", err)
		} else {
			opts.Cache = ac
		}
	}
	if *ckptPath != "" {
		opts.Checkpoint = core.Checkpoint{
			Path:     *ckptPath,
			Interval: *ckptEvery,
			OnError: func(err error) {
				fmt.Fprintln(stderr, "rmrls: checkpoint write failed (search continues):", err)
			},
		}
	}

	pipeOpts := obs.PipelineOptions{
		Progress: *progress,
		TTYOut:   stderr,
		JSONPath: *metricsJSON,
		Addr:     *metricsAddr,
		Interval: *metricsEvery,
	}
	var pipe *obs.Pipeline
	if pipeOpts.Enabled() {
		opts.Observe = obs.NewRun("rmrls")
		var err error
		pipe, err = obs.StartPipeline(opts.Observe, pipeOpts)
		if err != nil {
			fmt.Fprintln(stderr, "rmrls:", err)
			return 1
		}
		if addr := pipe.Addr(); addr != "" {
			fmt.Fprintf(stderr, "# metrics: http://%s/debug/vars and /debug/pprof\n", addr)
		}
		// Stop is idempotent: the eager call below releases the progress
		// line before the circuit prints; the defer covers early returns.
		defer pipe.Stop()
	}

	var res core.Result
	switch {
	case *portfolio:
		res = core.SynthesizePortfolioContext(ctx, spec, opts, 4)
	case *resume:
		var err error
		res, err = core.ResumeContext(ctx, spec, opts, *ckptPath)
		switch {
		case err == nil:
			fmt.Fprintf(stderr, "# resumed from checkpoint %s\n", *ckptPath)
		case errors.Is(err, os.ErrNotExist):
			// No checkpoint yet: a fresh start is exactly what -resume in a
			// retry loop wants, silently.
			res = core.SynthesizeContext(ctx, spec, opts)
		default:
			// Damaged or mismatched snapshot: graceful degradation. Say
			// why, then start over; the periodic checkpoints of the fresh
			// run will overwrite the unusable file.
			fmt.Fprintf(stderr, "rmrls: cannot resume from %s (%v); starting fresh\n", *ckptPath, err)
			res = core.SynthesizeContext(ctx, spec, opts)
		}
	default:
		res = core.SynthesizeContext(ctx, spec, opts)
	}
	pipe.Stop() // flush the final snapshots before printing the result
	if *ckptPath != "" {
		switch res.StopReason {
		case core.StopSolved, core.StopQueueExhausted, core.StopRestartsExhausted:
			// The run is complete — there is nothing left to continue, and a
			// stale snapshot would confuse the next -resume.
			os.Remove(*ckptPath)
		default:
			if res.Checkpoints > 0 {
				fmt.Fprintf(stderr, "# checkpoint saved to %s; rerun with -resume to continue\n", *ckptPath)
			}
		}
	}
	if res.Err != nil {
		var verr *verify.Error
		if errors.As(res.Err, &verr) {
			// The engine's always-on gate withdrew the circuit: the search
			// produced a cascade that does not realize the specification.
			// This is an engine bug, not a property of the input — report
			// the counterexample and the rejected cascade for triage.
			fmt.Fprintln(stderr, "rmrls: VERIFICATION FAILED:", verr)
			fmt.Fprintln(stderr, "rmrls: rejected cascade:", verr.Circuit)
			return 3
		}
		fmt.Fprintln(stderr, "rmrls:", res.Err)
		return 2
	}
	if !res.Found {
		// A script must be able to tell "no circuit" from success, and a
		// human must be able to tell which limit stopped the search.
		fmt.Fprintf(stderr, "rmrls: no circuit found within limits (stop=%s, %d steps, %d restarts, %v)\n",
			res.StopReason, res.Steps, res.Restarts, res.Elapsed.Round(time.Millisecond))
		return 2
	}
	if res.StopReason == core.StopCanceled {
		fmt.Fprintf(stderr, "rmrls: interrupted; printing best-so-far circuit\n")
	}
	c := res.Circuit
	// Post-search transforms each re-verify through the independent oracle:
	// a stage that breaks the realized permutation is named in the failure,
	// so a miscompiling optimizer cannot silently ship a wrong circuit.
	stageCheck := func(stage verify.Stage, before, after *circuit.Circuit) bool {
		if opts.SkipVerify || !verify.Feasible(spec.N) {
			return true
		}
		if err := verify.Transform(stage, before, after); err != nil {
			fmt.Fprintln(stderr, "rmrls: VERIFICATION FAILED:", err)
			return false
		}
		return true
	}
	if *simplify {
		sc := c.Simplify()
		if !stageCheck(verify.StageSimplify, c, sc) {
			return 3
		}
		c = sc
	}
	if *peep {
		pc := peephole.New().Optimize(c)
		if !stageCheck(verify.StagePeephole, c, pc) {
			return 3
		}
		c = pc
	}
	if *lower {
		lc, err := decomp.DecomposeCircuit(c)
		if err != nil {
			fmt.Fprintln(stderr, "rmrls:", err)
			return 2
		}
		if !stageCheck(verify.StageDecomp, c, lc) {
			return 3
		}
		c = lc
	}
	// For embedded PLA inputs the permutation equivalence above is stricter
	// than needed; what the user actually asked for is the partial table.
	// Check the final cascade against it directly, care bits only.
	plaOK := false
	if pla != nil && !opts.SkipVerify && verify.Feasible(c.Wires) {
		if err := verify.PLA(verify.StageEmbed, c, pla.emb, pla.pt); err != nil {
			fmt.Fprintln(stderr, "rmrls: VERIFICATION FAILED:", err)
			return 3
		}
		plaOK = true
	}
	fmt.Fprintln(stdout, c)
	if !*quiet {
		fmt.Fprintf(stdout, "# gates=%d quantum-cost=%d steps=%d nodes=%d elapsed=%v stop=%s\n",
			c.Len(), c.QuantumCost(), res.Steps, res.Nodes, res.Elapsed.Round(time.Microsecond), res.StopReason)
		if res.Workers > 0 {
			mode := "det-merge"
			if *free {
				mode = "free-running"
			}
			fmt.Fprintf(stdout, "# parallel: %d workers (%s), %d steals, %d idle spins\n",
				res.Workers, mode, res.Steals, res.Idles)
		}
		if probes := res.DedupHits + res.DedupMisses; probes > 0 {
			fmt.Fprintf(stdout, "# dedup: %d/%d duplicate states pruned (%.1f%% hit rate, %d evictions)\n",
				res.DedupHits, probes, 100*float64(res.DedupHits)/float64(probes), res.DedupEvictions)
		}
		if opts.Cache != nil && res.CanonicalClass != 0 {
			if res.CacheHit {
				fmt.Fprintf(stdout, "# cache: hit class=%016x (answered by conjugation, no search)\n", res.CanonicalClass)
			} else if st := opts.Cache.Stats(); st.Stores > 0 {
				fmt.Fprintf(stdout, "# cache: miss class=%016x (result stored for the next run)\n", res.CanonicalClass)
			} else {
				fmt.Fprintf(stdout, "# cache: miss class=%016x\n", res.CanonicalClass)
			}
		}
		if res.Verified {
			fmt.Fprintln(stdout, "# verified: circuit realizes the specification")
		}
		if plaOK {
			fmt.Fprintln(stdout, "# verified: circuit matches the PLA on every care bit")
		}
	}

	if *diagram {
		fmt.Fprintln(stdout, c.Diagram())
	}
	if *fredkinF {
		mixed := fredkin.Recognize(c)
		fmt.Fprintf(stdout, "# fredkin form (%d gates, %d fredkin): %s\n",
			mixed.Len(), mixed.FredkinCount(), mixed)
	}
	if *baseline && p != nil {
		b := mmd.Synthesize(p, mmd.Bidirectional)
		fmt.Fprintf(stdout, "# baseline (Miller/Maslov/Dueck bidirectional): %d gates, cost %d\n",
			b.Len(), b.QuantumCost())
	}
	return 0
}

// plaInput carries the parsed partial truth table and its reversible
// embedding alongside the compiled spec, so the final cascade can be
// checked against what the user actually wrote (care bits only) rather
// than only against the stricter embedded permutation.
type plaInput struct {
	pt  *tt.PartialTable
	emb *tt.Embedding
}

// loadSpec resolves the input modes to a PPRM expansion (and, where
// available, a permutation for verification; for -pla also the original
// partial table and embedding for the don't-care-aware check).
func loadSpec(benchName string, isPPRM, isPLA bool, vars int, args []string) (*pprm.Spec, perm.Perm, *plaInput, error) {
	if benchName != "" {
		b, err := bench.ByName(benchName)
		if err != nil {
			return nil, nil, nil, err
		}
		spec, err := b.PPRMSpec()
		return spec, b.Spec, nil, err
	}
	if len(args) != 1 {
		return nil, nil, nil, fmt.Errorf("expected exactly one specification argument (or -bench/-list)")
	}
	arg := args[0]
	if isPLA {
		text, err := os.ReadFile(arg)
		if err != nil {
			return nil, nil, nil, err
		}
		pt, err := tt.ParsePLAPartial(string(text))
		if err != nil {
			return nil, nil, nil, err
		}
		emb, _, err := tt.EmbedPartial(pt, 16, 1)
		if err != nil {
			return nil, nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "# embedded: %d wires, %d garbage outputs, %d constant inputs, %d don't-care bits assigned\n",
			emb.Wires, emb.GarbageOutputs, emb.ConstantInputs, pt.DontCareBits())
		p := perm.Perm(emb.Spec)
		spec, err := pprm.FromPerm(p)
		return spec, p, &plaInput{pt: pt, emb: emb}, err
	}
	if isPPRM {
		if vars < 1 || vars > bits.MaxVars {
			return nil, nil, nil, fmt.Errorf("-pprm requires -n between 1 and %d", bits.MaxVars)
		}
		text, err := os.ReadFile(arg)
		if err != nil {
			return nil, nil, nil, err
		}
		spec, err := pprm.Parse(vars, string(text))
		if err != nil {
			return nil, nil, nil, err
		}
		if vars <= 22 {
			p := spec.ToPerm()
			if err := p.Validate(); err != nil {
				return nil, nil, nil, fmt.Errorf("PPRM does not describe a reversible function: %v", err)
			}
			return spec, p, nil, nil
		}
		return spec, nil, nil, nil
	}
	text := arg
	if data, err := os.ReadFile(arg); err == nil {
		text = string(data)
	}
	p, err := perm.Parse(text)
	if err != nil {
		return nil, nil, nil, err
	}
	spec, err := pprm.FromPerm(p)
	return spec, p, nil, err
}

func printEvent(w io.Writer, e core.Event) {
	kind := map[core.EventKind]string{
		core.EventPush:     "push",
		core.EventPop:      "pop ",
		core.EventSolution: "SOLN",
		core.EventRestart:  "rstr",
	}[e.Kind]
	sub := "-"
	if e.Target >= 0 {
		sub = fmt.Sprintf("%s=%s^%s", bits.VarName(e.Target), bits.VarName(e.Target), bits.TermString(e.Factor))
	}
	fmt.Fprintf(w, "# %s id=%-6d parent=%-6d depth=%-2d %-14s terms=%-3d elim=%-3d prio=%.3f\n",
		kind, e.ID, e.Parent, e.Depth, sub, e.Terms, e.Elim, e.Priority)
}
