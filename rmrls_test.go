package rmrls

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/esop"
	"repro/internal/pprm"
	"repro/internal/rng"
)

func TestQuickstartFlow(t *testing.T) {
	spec := MustParseSpec("{1, 0, 7, 2, 3, 4, 5, 6}")
	res, err := Synthesize(spec, DefaultOptions())
	if err != nil || !res.Found {
		t.Fatalf("synthesize: %v %+v", err, res)
	}
	if res.Circuit.Len() != 3 {
		t.Errorf("gates = %d, want 3", res.Circuit.Len())
	}
	if err := Verify(res.Circuit, spec); err != nil {
		t.Error(err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	if _, err := ParseSpec("{0, 0, 1}"); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestPPRMParseSynthesize(t *testing.T) {
	spec, err := ParsePPRM(3, "a' = a ^ 1\nb' = b ^ c ^ ac\nc' = b ^ ab ^ ac")
	if err != nil {
		t.Fatal(err)
	}
	res := SynthesizeSpec(spec, DefaultOptions())
	if !res.Found || res.Circuit.Len() != 3 {
		t.Fatalf("PPRM synthesis failed: %+v", res)
	}
}

func TestCircuitParseFacade(t *testing.T) {
	c, err := ParseCircuit(3, "TOF1(a) TOF3(c,a,b) TOF3(b,a,c)")
	if err != nil {
		t.Fatal(err)
	}
	want := MustParseSpec("{1, 0, 7, 2, 3, 4, 5, 6}")
	if err := Verify(c, want); err != nil {
		t.Error(err)
	}
}

func TestMMDFacade(t *testing.T) {
	p := RandomFunction(4, 99)
	for _, bi := range []bool{false, true} {
		c := SynthesizeMMD(p, bi)
		if err := Verify(c, p); err != nil {
			t.Errorf("bidirectional=%v: %v", bi, err)
		}
	}
}

func TestRandomCircuitFacade(t *testing.T) {
	c, err := RandomCircuit(6, 12, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 12 || !c.NCTOnly() {
		t.Errorf("RandomCircuit shape wrong: %d gates, NCT=%v", c.Len(), c.NCTOnly())
	}
	if _, err := RandomCircuit(0, 3, false, 1); err == nil {
		t.Error("zero wires should fail")
	}
}

func TestQuantumCostFacade(t *testing.T) {
	if QuantumCost(3, 3) != 5 {
		t.Error("TOF3 cost should be 5")
	}
}

func TestBenchmarksFacade(t *testing.T) {
	if len(Benchmarks()) < 29 {
		t.Errorf("only %d benchmarks registered", len(Benchmarks()))
	}
	b, err := BenchmarkByName("graycode6")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(b.Spec, DefaultOptions())
	if err != nil || !res.Found {
		t.Fatalf("graycode6: %v %+v", err, res)
	}
	// Binary→Gray needs exactly n−1 CNOTs; our search must find the
	// 5-gate optimum the paper reports.
	if res.Circuit.Len() != 5 {
		t.Errorf("graycode6 gates = %d, want 5", res.Circuit.Len())
	}
}

// TestPipelineESOPAgreesWithMobius checks Section II-E end to end: the
// minterm→ESOP→minimize→PPRM route must agree with the exact Möbius
// transform for every output of random reversible functions.
func TestPipelineESOPAgreesWithMobius(t *testing.T) {
	src := rng.New(20)
	for trial := 0; trial < 15; trial++ {
		n := 2 + src.Intn(3)
		p := RandomFunction(n, src.Uint64())
		exact, err := PPRMOf(p)
		if err != nil {
			t.Fatal(err)
		}
		for out := 0; out < n; out++ {
			e, err := esop.FromColumn(p.OutputBit(out))
			if err != nil {
				t.Fatal(err)
			}
			got := e.Minimize().ToPPRM()
			want := exact.Out[out]
			if !got.Equal(&want) {
				t.Fatalf("trial %d output %d: ESOP pipeline PPRM differs from Möbius", trial, out)
			}
		}
	}
}

// TestSynthesisIsSoundProperty is the repository's central property: every
// circuit the search reports realizes its specification.
func TestSynthesisIsSoundProperty(t *testing.T) {
	f := func(seed uint64, vars uint8) bool {
		n := int(vars%4) + 1
		p := RandomFunction(n, seed)
		opts := DefaultOptions()
		opts.TotalSteps = 30000
		opts.ImproveSteps = 3000
		res, err := Synthesize(p, opts)
		if err != nil {
			return false
		}
		if !res.Found {
			return true // not finding is allowed; lying is not
		}
		return Verify(res.Circuit, p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEmbedThenSynthesizeProperty: embedding an arbitrary irreversible
// table and synthesizing the result must reproduce the original function
// on the real rows.
func TestEmbedThenSynthesizeProperty(t *testing.T) {
	src := rng.New(21)
	for trial := 0; trial < 10; trial++ {
		in := 2 + src.Intn(2)
		out := 1 + src.Intn(2)
		tab := &TruthTable{Inputs: in, Outputs: out, Rows: make([]uint32, 1<<uint(in))}
		for x := range tab.Rows {
			tab.Rows[x] = uint32(src.Intn(1 << uint(out)))
		}
		emb, err := Embed(tab)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.TotalSteps = 50000
		res, err := Synthesize(Perm(emb.Spec), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Logf("trial %d: embedding not synthesized in budget (allowed)", trial)
			continue
		}
		for x := uint32(0); x < uint32(len(tab.Rows)); x++ {
			if got := emb.OriginalOutput(res.Circuit.Apply(x)); got != tab.Rows[x] {
				t.Fatalf("trial %d: circuit computes %d at row %d, want %d",
					trial, got, x, tab.Rows[x])
			}
		}
	}
}

func TestOptimalFacade(t *testing.T) {
	tab := OptimalDistances(false)
	d, err := tab.Lookup(MustParseSpec("{1, 0, 7, 2, 3, 4, 5, 6}"))
	if err != nil || d != 3 {
		t.Errorf("optimal distance = %d, %v; want 3", d, err)
	}
}

// TestSynthesisNearOptimal3Var quantifies solution quality against the
// exact optimum on a sample, mirroring Table I's "ours vs optimal" gap
// (paper: 6.10 vs 5.87 average, i.e. ≈0.25 extra gates per function).
func TestSynthesisNearOptimal3Var(t *testing.T) {
	tab := OptimalDistances(false)
	src := rng.New(23)
	totalGap, samples := 0, 120
	opts := DefaultOptions()
	opts.Library = NCT
	opts.TotalSteps = 4000
	opts.ImproveSteps = 1500
	opts.MaxGates = 20
	found := 0
	for i := 0; i < samples; i++ {
		p := RandomFunction(3, src.Uint64())
		res, err := Synthesize(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			continue
		}
		found++
		opt, err := tab.Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		gap := res.Circuit.Len() - opt
		if gap < 0 {
			t.Fatalf("circuit beats the proven optimum for %s: %d < %d", p, res.Circuit.Len(), opt)
		}
		totalGap += gap
	}
	if found < samples*9/10 {
		t.Errorf("only %d/%d 3-variable functions synthesized", found, samples)
	}
	if avg := float64(totalGap) / float64(found); avg > 1.5 {
		t.Errorf("average optimality gap %.2f gates is far above the paper's ≈0.25", avg)
	}
}

func TestBenchListNamesFormatted(t *testing.T) {
	for _, b := range Benchmarks() {
		if strings.TrimSpace(b.Name) == "" || b.Wires < 1 {
			t.Errorf("malformed benchmark entry: %+v", b)
		}
	}
}

var _ = pprm.Identity // keep the import pinned for the type alias check below

// Compile-time checks that the facade aliases stay aligned.
var (
	_ *Spec   = pprm.Identity(2)
	_ Options = DefaultOptions()
)

func TestDecomposeNCTFacade(t *testing.T) {
	c, err := ParseCircuit(6, "TOF5(e,d,c,b,a) TOF2(a,b)")
	if err != nil {
		t.Fatal(err)
	}
	nct, err := DecomposeNCT(c)
	if err != nil {
		t.Fatal(err)
	}
	if !nct.NCTOnly() {
		t.Error("output not NCT")
	}
	if !nct.Perm().Equal(c.Perm()) {
		t.Error("decomposition changed the function")
	}
}

func TestRecognizeFredkinFacade(t *testing.T) {
	c, _ := ParseCircuit(3, "TOF3(c,a,b) TOF3(c,b,a) TOF3(c,a,b)")
	mixed := RecognizeFredkin(c)
	if mixed.FredkinCount() != 1 {
		t.Errorf("fredkin not recognized: %s", mixed)
	}
}

func TestPeepholeFacade(t *testing.T) {
	c, _ := ParseCircuit(3, "TOF1(a) TOF1(a) TOF2(a,b)")
	out := NewPeepholeOptimizer().Optimize(c)
	if out.Len() != 1 {
		t.Errorf("peephole left %d gates", out.Len())
	}
	if !out.Perm().Equal(c.Perm()) {
		t.Error("function changed")
	}
}

// TestPostprocessPipelineProperty: synthesize → peephole → decompose on a
// widened circuit preserves the function for random specifications.
func TestPostprocessPipelineProperty(t *testing.T) {
	po := NewPeepholeOptimizer()
	src := rng.New(808)
	for trial := 0; trial < 6; trial++ {
		p := RandomFunction(4, src.Uint64())
		opts := DefaultOptions()
		opts.TotalSteps = 30000
		res, err := Synthesize(p, opts)
		if err != nil || !res.Found {
			t.Fatalf("trial %d: synthesis failed", trial)
		}
		small := po.Optimize(res.Circuit)
		if err := Verify(small, p); err != nil {
			t.Fatalf("trial %d peephole: %v", trial, err)
		}
		wide := &Circuit{Wires: small.Wires + 1, Gates: small.Gates}
		nct, err := DecomposeNCT(wide)
		if err != nil {
			t.Fatalf("trial %d decompose: %v", trial, err)
		}
		widePerm := make(Perm, 2*len(p))
		for x, y := range p {
			widePerm[x] = y
			widePerm[x+len(p)] = y + uint32(len(p))
		}
		if err := Verify(nct, widePerm); err != nil {
			t.Fatalf("trial %d NCT: %v", trial, err)
		}
	}
}

// TestContextFacade exercises the context-aware entry points and the
// re-exported stop-reason constants through the public API alone.
func TestContextFacade(t *testing.T) {
	p := RandomFunction(6, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.TotalSteps = 1 << 30
	res, err := SynthesizeContext(ctx, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.StopReason != StopCanceled {
		t.Errorf("canceled run: found=%v stop=%v", res.Found, res.StopReason)
	}
	if res.StopReason.String() != "canceled" {
		t.Errorf("StopReason.String() = %q", res.StopReason.String())
	}

	solved, err := SynthesizeContext(context.Background(), MustParseSpec("{1, 0, 3, 2}"), DefaultOptions())
	if err != nil || !solved.Found || solved.StopReason != StopSolved {
		t.Errorf("solved run: err=%v found=%v stop=%v", err, solved.Found, solved.StopReason)
	}

	spec, err := PPRMOf(RandomFunction(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	port := SynthesizePortfolioContext(context.Background(), spec, opts2(20000), 2)
	if !port.Found || port.StopReason != StopSolved {
		t.Errorf("portfolio: found=%v stop=%v", port.Found, port.StopReason)
	}
	iter := SynthesizeIterativeContext(context.Background(), spec, opts2(20000), 2)
	if !iter.Found || iter.StopReason != StopSolved {
		t.Errorf("iterative: found=%v stop=%v", iter.Found, iter.StopReason)
	}
}

func opts2(steps int) Options {
	o := DefaultOptions()
	o.TotalSteps = steps
	o.ImproveSteps = steps / 10
	return o
}

func TestSynthesizePortfolioFacade(t *testing.T) {
	b, err := BenchmarkByName("hwb4")
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := b.PPRMSpec()
	opts := DefaultOptions()
	opts.TotalSteps = 40000
	res := SynthesizePortfolio(spec, opts, 2)
	if !res.Found {
		t.Fatal("portfolio failed on hwb4")
	}
	if err := Verify(res.Circuit, b.Spec); err != nil {
		t.Error(err)
	}
}
