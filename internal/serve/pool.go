package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/verify"
)

// worker is one pool goroutine: dequeue, execute, repeat until drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.Dequeue()
		if !ok {
			return
		}
		s.execute(j)
	}
}

// execute runs one job to a terminal state. The per-job deadline is
// enforced twice: the engine's own TimeLimit stops the search with
// StopDeadline, and a slightly larger context deadline backstops it (and
// any injected test runner) so a wedged run cannot hold the worker past its
// budget. Panics from the runner seam are isolated into a failed job, never
// a dead worker.
//
// Every found circuit must clear the independent verification gate before
// the client sees it. A gate failure is an engine bug surfacing in
// production: the evidence is quarantined, the counters bump, and the job
// gets exactly one graceful-degradation re-run with the optimizers disabled
// before it is failed with a 500 — never a wrong 200.
func (s *Server) execute(j *Job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	j.markRunning(time.Now())

	res := s.attempt(j)
	if s.parkIfDraining(j, res) {
		return
	}

	if verr := s.gateError(j, &res); verr != nil {
		s.stats.verifyFailures.Add(1)
		obs.IncVerifyFailure()
		note := "independent verification failed"
		if path := s.quarantine(j, verr, "primary"); path != "" {
			note += "; evidence quarantined to " + path
		}
		note += "; retrying degraded (optimizers disabled)"
		j.setDegraded(note)
		s.stats.degradedReruns.Add(1)
		obs.IncDegradedRerun()

		res = s.attempt(j)
		if s.parkIfDraining(j, res) {
			return
		}
		if verr2 := s.gateError(j, &res); verr2 != nil {
			s.stats.verifyFailures.Add(1)
			obs.IncVerifyFailure()
			s.quarantine(j, verr2, "degraded")
			s.stats.failed.Add(1)
			j.finish(StatusFailed, res, nil,
				fmt.Sprintf("verification failed after degraded re-run: %v", verr2), time.Now())
			s.removeCheckpoint(j)
			return
		}
	}

	if res.Err != nil {
		s.stats.failed.Add(1)
		j.finish(StatusFailed, res, nil, res.Err.Error(), time.Now())
		s.removeCheckpoint(j)
		return
	}

	var verified *bool
	if res.Found && res.Circuit != nil && res.Verified {
		v := true
		verified = &v
	}
	s.cacheStore(j, &res)
	s.stats.completed.Add(1)
	j.finish(StatusDone, res, verified, "", time.Now())
	s.removeCheckpoint(j)
}

// attempt runs the job once under its own deadline-backstopped context, so
// a degraded re-run gets a fresh time budget instead of the tail of the
// first attempt's. The context also cancels when the last waiting client
// of an unpinned interactive job disconnects (Job.dropWatcher) — the
// TimeLimit+5s backstop stays in force either way.
func (s *Server) attempt(j *Job) core.Result {
	ctx := s.drainCtx
	if tl := j.opts.TimeLimit; tl > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, tl+5*time.Second)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func(done <-chan struct{}) {
		select {
		case <-j.abortCh():
			cancel()
		case <-done:
		}
	}(ctx.Done())
	return s.invoke(ctx, j)
}

// parkIfDraining handles the one non-terminal outcome: when a drain
// canceled a resumable search and a checkpoint directory is configured, the
// engine has already flushed the final snapshot — park the job for the
// ledger instead of finishing it.
func (s *Server) parkIfDraining(j *Job, res core.Result) bool {
	if !s.draining.Load() || res.Err != nil || res.StopReason != core.StopCanceled || s.cfg.StateDir == "" {
		return false
	}
	s.stats.interrupted.Add(1)
	j.mu.Lock()
	j.status = StatusInterrupted
	j.res = res
	j.mu.Unlock()
	select {
	case <-j.done:
	default:
		close(j.done)
	}
	return true
}

// gateError decides whether a result is a verification failure. Two ways
// in: the engine's own always-on gate already withdrew the circuit (the
// typed *verify.Error rides in res.Err), or the server's second, fully
// independent check against the tabulated function finds a mismatch the
// engine-side gate missed (possible only through the Runner test seam or a
// bug in the gate itself — exactly what an independent check is for). In
// the second case the circuit is withdrawn here so no later path can hand
// it to a client.
func (s *Server) gateError(j *Job, res *core.Result) *verify.Error {
	var verr *verify.Error
	if errors.As(res.Err, &verr) {
		return verr
	}
	if res.Err != nil || !res.Found || res.Circuit == nil {
		return nil
	}
	if j.fperm == nil || !verify.Feasible(j.spec.N) {
		return nil
	}
	if err := verify.Circuit(verify.StageSearch, res.Circuit, j.fperm); err != nil && errors.As(err, &verr) {
		res.Found = false
		res.Circuit = nil
		res.Verified = false
		res.StopReason = core.StopVerifyFailed
		res.Err = verr
		return verr
	}
	return nil
}

// invoke runs the configured runner (the real engine by default) with
// panic isolation.
func (s *Server) invoke(ctx context.Context, j *Job) (res core.Result) {
	defer func() {
		if r := recover(); r != nil {
			res = core.Result{
				StopReason: core.StopInternalError,
				Err:        fmt.Errorf("serve: job runner panicked: %v", r),
			}
		}
	}()
	if s.cfg.Runner != nil {
		return s.cfg.Runner(ctx, j)
	}
	return s.realRun(ctx, j)
}

// claimSearchWorkers decides how many parallel-search workers the job
// being executed may claim from the pool's SearchWorkers core budget.
// With shallow queues the latency win of the det-merge engine is free —
// the cores would otherwise idle; each waiting job dilutes the claim,
// and once the share drops to a single core the job runs the sequential
// engine (a one-worker parallel run is pure overhead). Returns 0 for
// "sequential".
func (s *Server) claimSearchWorkers() int {
	total := s.cfg.SearchWorkers
	if total <= 1 {
		return 0
	}
	qi, qb := s.queue.Depths()
	claim := total / (1 + qi + qb)
	if claim <= 1 {
		return 0
	}
	return claim
}

// realRun executes the job on the RMRLS engine: checkpointing into the
// state directory when one is configured, resuming from a recovered drain
// checkpoint when present, and degrading a broken checkpoint to a fresh
// start (the resume contract: every resume error means "start fresh").
func (s *Server) realRun(ctx context.Context, j *Job) core.Result {
	opts := j.opts
	if j.isDegraded() {
		opts = opts.Degraded()
	}
	opts.Observe = j.run
	// Parallel search is always the deterministic-merge engine here: the
	// worker count does not enter the options fingerprint, so cached
	// answers and drain checkpoints stay valid whatever the queue depth
	// was when the job (or its resume) happened to run.
	opts.Workers = s.claimSearchWorkers()
	if s.cfg.StateDir != "" {
		opts.Checkpoint = core.Checkpoint{
			Path:       s.checkpointPath(j),
			Interval:   s.cfg.CheckpointInterval,
			EverySteps: s.cfg.CheckpointEverySteps,
			// Writes go through the checkpoint fault domain: a sick disk
			// trips the breaker and later snapshots fast-fail with no
			// syscall until a probe heals it. The engine already treats a
			// failed snapshot as "resumability degrades, the search goes
			// on" (Result.CheckpointErrors counts them).
			FS: s.ckptFS,
		}
	}
	if st := j.resume; st != nil {
		j.resume = nil
		res, err := core.ResumeStateContext(ctx, j.spec, opts, st)
		if err == nil {
			j.mu.Lock()
			j.resumed = true
			j.mu.Unlock()
			return res
		}
		j.mu.Lock()
		j.note = fmt.Sprintf("checkpoint unusable (%v); restarted fresh", err)
		j.mu.Unlock()
	}
	return core.SynthesizeContext(ctx, j.spec, opts)
}
