// Package fredkin implements generalized Fredkin (controlled-swap) gates
// and their interchange with Toffoli cascades — the paper's first
// future-work item ("A Fredkin gate is equivalent to three Toffoli gates.
// Thus, the use of Fredkin gates could yield a significant improvement in
// circuit quality", Section VI).
//
// A generalized Fredkin gate FRE(C; a, b) swaps wires a and b when every
// wire in the control set C is 1. The classic 3-bit Fredkin gate has one
// control. The package provides the gate model, the exact three-Toffoli
// expansion, and a recognizer that rewrites a Toffoli cascade's
// swap-shaped triples into Fredkin gates, quantifying how much of the
// future-work gain is available on synthesized circuits.
package fredkin

import (
	"fmt"
	"strings"

	"repro/internal/bits"
	"repro/internal/circuit"
)

// Gate is a generalized Fredkin gate: wires A and B are exchanged when all
// wires in Controls are 1. A and B must differ and not appear in Controls.
type Gate struct {
	A, B     int
	Controls bits.Mask
}

// NewGate builds a Fredkin gate and validates its wiring.
func NewGate(a, b int, controls ...int) (Gate, error) {
	if a == b {
		return Gate{}, fmt.Errorf("fredkin: swap wires must differ (both %d)", a)
	}
	var m bits.Mask
	for _, c := range controls {
		if c == a || c == b {
			return Gate{}, fmt.Errorf("fredkin: wire %d is both swapped and a control", c)
		}
		m |= bits.Bit(c)
	}
	return Gate{A: a, B: b, Controls: m}, nil
}

// Apply computes the gate's action on one assignment.
func (g Gate) Apply(x uint32) uint32 {
	if x&g.Controls != g.Controls {
		return x
	}
	ba := x >> uint(g.A) & 1
	bb := x >> uint(g.B) & 1
	if ba != bb {
		x ^= bits.Bit(g.A) | bits.Bit(g.B)
	}
	return x
}

// Size returns the gate width: controls + 2.
func (g Gate) Size() int { return bits.Count(g.Controls) + 2 }

// String renders the gate as FRE<n>(controls; a, b), e.g. "FRE3(c;a,b)".
func (g Gate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FRE%d(", g.Size())
	vars := bits.Vars(g.Controls)
	for i := len(vars) - 1; i >= 0; i-- {
		b.WriteString(bits.VarName(vars[i]))
		if i > 0 {
			b.WriteByte(',')
		}
	}
	b.WriteByte(';')
	b.WriteString(bits.VarName(g.A))
	b.WriteByte(',')
	b.WriteString(bits.VarName(g.B))
	b.WriteByte(')')
	return b.String()
}

// ToToffoli returns the exact three-Toffoli expansion
// TOF(C∪{b}; a) TOF(C∪{a}; b) TOF(C∪{b}; a).
func (g Gate) ToToffoli() [3]circuit.Gate {
	t1 := circuit.Gate{Target: g.A, Controls: g.Controls | bits.Bit(g.B)}
	t2 := circuit.Gate{Target: g.B, Controls: g.Controls | bits.Bit(g.A)}
	return [3]circuit.Gate{t1, t2, t1}
}

// Element is one gate of a mixed Fredkin/Toffoli cascade.
type Element struct {
	Toffoli *circuit.Gate
	Fredkin *Gate
}

func (e Element) String() string {
	if e.Fredkin != nil {
		return e.Fredkin.String()
	}
	return e.Toffoli.String()
}

// Cascade is a mixed cascade on Wires wires.
type Cascade struct {
	Wires    int
	Elements []Element
}

// Apply runs the cascade on one assignment.
func (c *Cascade) Apply(x uint32) uint32 {
	for _, e := range c.Elements {
		if e.Fredkin != nil {
			x = e.Fredkin.Apply(x)
		} else {
			x = e.Toffoli.Apply(x)
		}
	}
	return x
}

// Len returns the mixed gate count.
func (c *Cascade) Len() int { return len(c.Elements) }

// FredkinCount returns how many elements are Fredkin gates.
func (c *Cascade) FredkinCount() int {
	n := 0
	for _, e := range c.Elements {
		if e.Fredkin != nil {
			n++
		}
	}
	return n
}

// ToToffoli expands every Fredkin gate, returning a plain Toffoli cascade.
func (c *Cascade) ToToffoli() *circuit.Circuit {
	out := circuit.New(c.Wires)
	for _, e := range c.Elements {
		if e.Fredkin != nil {
			g := e.Fredkin.ToToffoli()
			out.Append(g[0], g[1], g[2])
		} else {
			out.Append(*e.Toffoli)
		}
	}
	return out
}

// String renders the mixed cascade.
func (c *Cascade) String() string {
	if len(c.Elements) == 0 {
		return "(identity)"
	}
	parts := make([]string, len(c.Elements))
	for i, e := range c.Elements {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// Recognize rewrites swap-shaped Toffoli triples in a cascade into Fredkin
// gates: three consecutive gates T(C∪{b};a) T(C∪{a};b) T(C∪{b};a) become
// FRE(C; a, b). Each rewrite replaces three gates with one, the quality
// gain the paper's future-work section anticipates.
func Recognize(c *circuit.Circuit) *Cascade {
	out := &Cascade{Wires: c.Wires}
	gates := c.Gates
	for i := 0; i < len(gates); i++ {
		if i+2 < len(gates) {
			if f, ok := matchTriple(gates[i], gates[i+1], gates[i+2]); ok {
				out.Elements = append(out.Elements, Element{Fredkin: &f})
				i += 2
				continue
			}
		}
		g := gates[i]
		out.Elements = append(out.Elements, Element{Toffoli: &g})
	}
	return out
}

// matchTriple reports whether g1 g2 g3 is the canonical Fredkin expansion.
func matchTriple(g1, g2, g3 circuit.Gate) (Gate, bool) {
	if g1 != g3 {
		return Gate{}, false
	}
	a, b := g1.Target, g2.Target
	if a == b {
		return Gate{}, false
	}
	base1 := g1.Controls &^ bits.Bit(b)
	base2 := g2.Controls &^ bits.Bit(a)
	if base1 != base2 {
		return Gate{}, false
	}
	if !bits.Has(g1.Controls, b) || !bits.Has(g2.Controls, a) {
		return Gate{}, false
	}
	return Gate{A: a, B: b, Controls: base1}, true
}
